// Side-by-side comparison: runs ImDiffusion and three representative
// baselines (isolation trees, forecasting, reconstruction+transformer) on the
// same water-treatment-style dataset, printing the full metric panel. The
// programmatic analogue of the paper's Table 2 workflow for a single dataset.

#include <cstdio>

#include "eval/runner.h"
#include "eval/tables.h"

int main() {
  using namespace imdiff;

  MtsDataset dataset = MakeBenchmarkDataset(BenchmarkId::kSwat, /*seed=*/11,
                                            /*size_scale=*/0.25f);
  std::printf("dataset %s: %lld features, %lld/%lld train/test samples\n\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.num_features()),
              static_cast<long long>(dataset.train_length()),
              static_cast<long long>(dataset.test_length()));

  TextTable table(
      {"Detector", "P", "R", "F1", "R-AUC-PR", "ADD", "fit s", "points/s"});
  for (const char* name : {"IForest", "LSTM-AD", "TranAD", "ImDiffusion"}) {
    auto detector = MakeDetector(name, /*seed=*/3, SpeedProfile::kFast);
    RunMetrics m = EvaluateDetector(*detector, dataset);
    table.AddRow({name, FormatMetric(m.precision, 3), FormatMetric(m.recall, 3),
                  FormatMetric(m.f1, 3), FormatMetric(m.r_auc_pr, 3),
                  FormatMetric(m.add, 1), FormatMetric(m.fit_seconds, 1),
                  FormatMetric(m.points_per_second, 1)});
    std::printf("%s evaluated\n", name);
    std::fflush(stdout);
  }
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
