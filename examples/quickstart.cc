// Quickstart: train ImDiffusion on a synthetic multivariate series and detect
// the anomalies injected into its test split.
//
//   ./build/examples/quickstart
//
// Demonstrates the minimal public API: dataset construction, normalization,
// ImDiffusionDetector Fit/Run, and metric computation.

#include <cstdio>

#include "core/imdiffusion.h"
#include "data/benchmarks.h"
#include "metrics/classification.h"
#include "metrics/range_auc.h"

int main() {
  using namespace imdiff;

  // 1. Get data: a small simulated server-machine benchmark. Any [L, K]
  //    Tensor pair works — see data/dataset.h for the CSV loader.
  MtsDataset dataset = MakeBenchmarkDataset(BenchmarkId::kSmd, /*seed=*/1,
                                            /*size_scale=*/0.25f);
  std::printf("dataset %s: train %lld x %lld, test %lld\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.train_length()),
              static_cast<long long>(dataset.num_features()),
              static_cast<long long>(dataset.test_length()));

  // 2. Normalize with train statistics only.
  MtsDataset norm = NormalizeDataset(dataset);

  // 3. Configure and train the detector. FastImDiffusionConfig() is sized for
  //    CPU; PaperImDiffusionConfig() reproduces Table 1.
  ImDiffusionConfig config = FastImDiffusionConfig();
  config.epochs = 10;  // quickstart-sized
  config.seed = 42;
  config.verbose = true;
  ImDiffusionDetector detector(config);
  detector.Fit(norm.train);

  // 4. Score the test split. `scores` is a per-timestamp anomaly score;
  //    `labels` is the built-in ensemble-voting decision.
  DetectionResult result = detector.Run(norm.test);

  // 5. Evaluate.
  BinaryMetrics best;
  BestF1Threshold(result.scores, norm.test_labels, 64, &best);
  std::printf(
      "point-adjusted metrics at the best threshold: precision %.3f, recall "
      "%.3f, F1 %.3f\n",
      best.precision, best.recall, best.f1);
  std::printf("R-AUC-PR (threshold-free): %.3f\n",
              RangeAucPr(result.scores, norm.test_labels));

  // 6. Inspect a few flagged regions.
  std::printf("flagged timestamps:");
  int shown = 0;
  for (size_t t = 0; t < result.labels.size() && shown < 12; ++t) {
    if (result.labels[t]) {
      std::printf(" %zu", t);
      ++shown;
    }
  }
  std::printf("%s\n", shown == 12 ? " ..." : "");
  return 0;
}
