// Spacecraft-telemetry scenario (SMAP/MSL-style data): short, strongly
// inter-correlated channels where the anomalies of interest are inter-metric
// correlation breaks. Shows per-step model introspection via RunWithTrace —
// the step-wise ensemble votes that make the decision explainable.

#include <cstdio>

#include "core/imdiffusion.h"
#include "data/benchmarks.h"
#include "metrics/classification.h"

int main() {
  using namespace imdiff;

  MtsDataset dataset = MakeBenchmarkDataset(BenchmarkId::kMsl, /*seed=*/5,
                                            /*size_scale=*/0.25f);
  MtsDataset norm = NormalizeDataset(dataset);
  std::printf("telemetry: %lld channels, %lld samples\n",
              static_cast<long long>(norm.num_features()),
              static_cast<long long>(norm.test_length()));

  ImDiffusionConfig config = FastImDiffusionConfig();
  config.seed = 21;
  ImDiffusionDetector detector(config);
  detector.Fit(norm.train);

  ImDiffusionDetector::StepTrace trace;
  DetectionResult result = detector.RunWithTrace(norm.test, &trace);

  BinaryMetrics m = ComputeAdjustedMetrics(norm.test_labels, result.labels);
  std::printf("voting rule: precision %.3f recall %.3f F1 %.3f\n", m.precision,
              m.recall, m.f1);

  // Explainability: for the strongest alert, show how the votes accumulated
  // across denoising steps.
  size_t peak = 0;
  for (size_t t = 1; t < result.scores.size(); ++t) {
    if (result.scores[t] > result.scores[peak]) peak = t;
  }
  std::printf("\nstrongest alert at t=%zu (true label %d):\n", peak,
              norm.test_labels[peak]);
  for (size_t s = 0; s < trace.steps.size(); ++s) {
    std::printf("  denoising step %2d: error %.4f -> vote %s\n",
                trace.steps[s], trace.step_errors[s][peak],
                trace.step_labels[s][peak] ? "ANOMALY" : "normal");
  }
  std::printf("  total votes %d / %zu (threshold xi = %d)\n",
              trace.votes[peak], trace.steps.size(),
              detector.config().vote_threshold);
  return 0;
}
