// Production scenario (paper §6): monitoring email-delivery microservice
// latency. Streams a simulated multi-service latency feed, trains
// ImDiffusion on an incident-free history, then processes the live window in
// chunks and raises alerts — reporting detection delay per incident and
// sustained throughput, the two reliability axes the paper evaluates.

#include <cstdio>

#include "core/imdiffusion.h"
#include "data/benchmarks.h"
#include "metrics/add.h"
#include "metrics/classification.h"
#include "utils/stopwatch.h"

int main() {
  using namespace imdiff;

  MtsDataset stream = MakeMicroserviceLatencyDataset(/*seed=*/3,
                                                     /*num_services=*/6,
                                                     /*train_length=*/1200,
                                                     /*test_length=*/1200);
  std::printf("monitoring %lld services, %lld history samples (30 s period)\n",
              static_cast<long long>(stream.num_features()),
              static_cast<long long>(stream.train_length()));
  MtsDataset norm = NormalizeDataset(stream);

  ImDiffusionConfig config = FastImDiffusionConfig();
  config.seed = 9;
  ImDiffusionDetector detector(config);
  Stopwatch train_timer;
  detector.Fit(norm.train);
  std::printf("trained on incident-free history in %.1f s\n",
              train_timer.ElapsedSeconds());

  // Online phase: score the stream.
  Stopwatch infer_timer;
  DetectionResult result = detector.Run(norm.test);
  const double seconds = infer_timer.ElapsedSeconds();
  std::printf("scored %lld live samples at %.1f points/s (need > %.2f to keep "
              "up with 30 s sampling)\n",
              static_cast<long long>(norm.test_length()),
              norm.test_length() / seconds, stream.num_features() / 30.0);

  // Alert on the built-in ensemble decision; report per-incident delay.
  const auto segments = FindSegments(norm.test_labels);
  std::printf("\n%zu injected incidents:\n", segments.size());
  for (const AnomalySegment& seg : segments) {
    int64_t detected_at = -1;
    for (int64_t t = seg.start; t < norm.test_length(); ++t) {
      if (result.labels[static_cast<size_t>(t)]) {
        detected_at = t;
        break;
      }
    }
    if (detected_at >= 0) {
      std::printf("  incident @%lld (len %lld): alert after %lld samples "
                  "(%.1f min)\n",
                  static_cast<long long>(seg.start),
                  static_cast<long long>(seg.end - seg.start),
                  static_cast<long long>(detected_at - seg.start),
                  (detected_at - seg.start) * 30.0 / 60.0);
    } else {
      std::printf("  incident @%lld: MISSED\n",
                  static_cast<long long>(seg.start));
    }
  }
  std::printf("\naverage detection delay (ADD): %.1f samples\n",
              AverageDetectionDelay(norm.test_labels, result.labels));
  BinaryMetrics m = ComputeAdjustedMetrics(norm.test_labels, result.labels);
  std::printf("built-in voting rule: precision %.3f, recall %.3f, F1 %.3f\n",
              m.precision, m.recall, m.f1);
  return 0;
}
