// Randomized property tests on cross-module invariants. Each property is
// swept over several seeds/shapes with parameterized gtest.

#include <cmath>

#include <gtest/gtest.h>

#include "core/masking.h"
#include "diffusion/ddpm.h"
#include "metrics/classification.h"
#include "metrics/range_auc.h"
#include "nn/autograd.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace imdiff {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

// (A + B) C == AC + BC : linearity of matmul.
TEST_P(SeededProperty, MatMulDistributesOverAdd) {
  Rng rng(GetParam());
  Tensor a = Tensor::Randn({3, 4}, rng);
  Tensor b = Tensor::Randn({3, 4}, rng);
  Tensor c = Tensor::Randn({4, 5}, rng);
  Tensor lhs = MatMul(Add(a, b), c);
  Tensor rhs = Add(MatMul(a, c), MatMul(b, c));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.flat(i), rhs.flat(i), 1e-4);
  }
}

// (AB)^T == B^T A^T.
TEST_P(SeededProperty, MatMulTransposeIdentity) {
  Rng rng(GetParam());
  Tensor a = Tensor::Randn({3, 4}, rng);
  Tensor b = Tensor::Randn({4, 2}, rng);
  Tensor lhs = Permute(MatMul(a, b), {1, 0});
  Tensor rhs = MatMul(Permute(b, {1, 0}), Permute(a, {1, 0}));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.flat(i), rhs.flat(i), 1e-4);
  }
}

// Softmax is shift-invariant along the last dim.
TEST_P(SeededProperty, SoftmaxShiftInvariance) {
  Rng rng(GetParam());
  Tensor t = Tensor::Randn({4, 6}, rng);
  Tensor shifted = AddScalar(t, 13.5f);
  Tensor a = SoftmaxLastDim(t);
  Tensor b = SoftmaxLastDim(shifted);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.flat(i), b.flat(i), 1e-5);
  }
}

// Autograd gradient of a random composite expression is finite and non-zero
// somewhere.
TEST_P(SeededProperty, CompositeGraphGradientsFinite) {
  Rng rng(GetParam());
  nn::Var x(Tensor::Randn({3, 5}, rng), true);
  nn::Var w(Tensor::Randn({5, 4}, rng), true);
  nn::Var h = nn::TanhV(nn::MatMulV(x, w));
  h = nn::SoftmaxV(Add(h, h));
  nn::Var loss = nn::MeanV(Mul(h, h));
  nn::Backward(loss);
  double total = 0;
  for (int64_t i = 0; i < x.grad().numel(); ++i) {
    EXPECT_TRUE(std::isfinite(x.grad().flat(i)));
    total += std::abs(x.grad().flat(i));
  }
  EXPECT_GT(total, 0.0);
}

// q(x_t | x_0) preserves the signal/noise split: Var = ᾱ Var(x0) + (1-ᾱ).
TEST_P(SeededProperty, ForwardProcessVariance) {
  Rng rng(GetParam());
  ScheduleConfig config;
  config.num_steps = 30;
  GaussianDiffusion diffusion(config);
  Tensor x0 = Tensor::Randn({4000}, rng);  // unit variance signal
  const int t = static_cast<int>(rng.UniformInt(5, 29));
  Tensor xt = diffusion.QSample(x0, t, rng, nullptr);
  double var = 0;
  for (int64_t i = 0; i < xt.numel(); ++i) var += xt.flat(i) * xt.flat(i);
  var /= xt.numel();
  const double expected = diffusion.schedule().alpha_bar(t) +
                          (1.0 - diffusion.schedule().alpha_bar(t));
  EXPECT_NEAR(var, expected, 0.15);
}

// Point-adjusted F1 never decreases relative to raw F1.
TEST_P(SeededProperty, PointAdjustNeverHurtsF1) {
  Rng rng(GetParam());
  std::vector<uint8_t> labels(300, 0), preds(300, 0);
  // Random segments + random predictions.
  for (int s = 0; s < 4; ++s) {
    const int64_t start = rng.UniformInt(0, 280);
    const int64_t len = rng.UniformInt(3, 15);
    for (int64_t t = start; t < std::min<int64_t>(300, start + len); ++t) {
      labels[static_cast<size_t>(t)] = 1;
    }
  }
  for (auto& p : preds) p = rng.Bernoulli(0.1) ? 1 : 0;
  const double raw = ComputeMetrics(labels, preds).f1;
  const double adjusted = ComputeAdjustedMetrics(labels, preds).f1;
  EXPECT_GE(adjusted + 1e-12, raw);
}

// Range-AUC is invariant to strictly monotone score transformations.
TEST_P(SeededProperty, RangeAucMonotoneInvariance) {
  Rng rng(GetParam());
  std::vector<uint8_t> labels(200, 0);
  for (int64_t t = 80; t < 110; ++t) labels[static_cast<size_t>(t)] = 1;
  std::vector<float> scores(200);
  for (auto& s : scores) s = static_cast<float>(rng.Uniform());
  std::vector<float> transformed = scores;
  for (auto& s : transformed) s = std::exp(2.0f * s) + 5.0f;
  EXPECT_NEAR(RangeAucPr(scores, labels), RangeAucPr(transformed, labels),
              1e-9);
  EXPECT_NEAR(RangeAucRoc(scores, labels), RangeAucRoc(transformed, labels),
              1e-9);
}

// Grating masks partition the window for every (features, window, count).
TEST_P(SeededProperty, GratingMasksPartition) {
  Rng rng(GetParam());
  const int64_t k = rng.UniformInt(1, 12);
  const int num_masked = static_cast<int>(rng.UniformInt(1, 5));
  const int64_t window = rng.UniformInt(2 * num_masked, 120);
  Tensor m0 = MakeGratingMask(k, window, num_masked, 0);
  Tensor m1 = MakeGratingMask(k, window, num_masked, 1);
  for (int64_t i = 0; i < m0.numel(); ++i) {
    EXPECT_EQ(m0.flat(i) + m1.flat(i), 1.0f);
  }
}

// ReduceToShape(broadcast(x)) recovers sums: sum is preserved.
TEST_P(SeededProperty, BroadcastReduceSumPreserved) {
  Rng rng(GetParam());
  Tensor small = Tensor::Randn({4}, rng);
  Tensor big = Add(Tensor::Zeros({3, 5, 4}), small);  // tile 15x
  Tensor back = ReduceToShape(big, {4});
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(back.flat(i), 15.0f * small.flat(i), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

}  // namespace
}  // namespace imdiff
