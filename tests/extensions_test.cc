// Tests for the extension features the paper points to: nonparametric
// dynamic thresholding (future work in §5.2.1) and the online streaming
// wrapper (§6 deployment mode).

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/lstm_ad.h"
#include "core/online_detector.h"
#include "data/synthetic.h"
#include "metrics/classification.h"
#include "metrics/dynamic_threshold.h"

namespace imdiff {
namespace {

TEST(DynamicThresholdTest, FlagsInjectedSpikesOnly) {
  Rng rng(1);
  std::vector<float> scores(1000);
  for (auto& s : scores) s = static_cast<float>(rng.Normal(1.0, 0.1));
  for (int64_t t = 500; t < 510; ++t) scores[static_cast<size_t>(t)] = 4.0f;
  DynamicThresholdConfig config;
  auto preds = DynamicThreshold(scores, config);
  int64_t in = 0, out = 0;
  for (int64_t t = 0; t < 1000; ++t) {
    const bool anomaly = t >= 500 && t < 510;
    if (preds[static_cast<size_t>(t)]) (anomaly ? in : out) += 1;
  }
  EXPECT_GE(in, 8);
  EXPECT_LT(out, 20);
}

TEST(DynamicThresholdTest, AdaptsToRegimeShiftInScores) {
  // Score level doubles halfway: a global threshold would flag the entire
  // second half; the dynamic threshold re-centers per window.
  Rng rng(2);
  std::vector<float> scores(1200);
  for (int64_t t = 0; t < 1200; ++t) {
    const double base = t < 600 ? 1.0 : 2.0;
    scores[static_cast<size_t>(t)] =
        static_cast<float>(rng.Normal(base, 0.05));
  }
  scores[300] = 3.0f;   // spike in regime 1
  scores[900] = 6.0f;   // spike in regime 2
  DynamicThresholdConfig config;
  config.window = 300;
  config.stride = 50;
  auto preds = DynamicThreshold(scores, config);
  EXPECT_EQ(preds[300], 1);
  EXPECT_EQ(preds[900], 1);
  int64_t second_half_flags = 0;
  for (int64_t t = 650; t < 1200; ++t) {
    second_half_flags += preds[static_cast<size_t>(t)];
  }
  // Far fewer than the 550 points a frozen first-half threshold would flag.
  EXPECT_LT(second_half_flags, 60);
}

TEST(DynamicThresholdTest, ConstantScoresNoAlarms) {
  std::vector<float> scores(500, 1.0f);
  auto preds = DynamicThreshold(scores, DynamicThresholdConfig{});
  for (uint8_t p : preds) EXPECT_EQ(p, 0);
}

TEST(DynamicThresholdTest, WindowThresholdAboveMean) {
  Rng rng(3);
  std::vector<float> window(400);
  for (auto& v : window) v = static_cast<float>(rng.Normal(0.5, 0.1));
  const float threshold = SelectWindowThreshold(window, {2.0f, 3.0f, 4.0f});
  EXPECT_GT(threshold, 0.6f);
}

TEST(OnlineDetectorTest, StreamsAndAlertsOnShift) {
  // Fast baseline detector keeps the test quick.
  SyntheticConfig signal;
  signal.length = 900;
  signal.dims = 3;
  signal.noise_sigma = 0.02f;
  signal.burst_rate = 0.0;
  signal.bump_rate = 0.0;
  signal.ar_sigma = 0.01f;
  Rng rng(4);
  Tensor full = GenerateCleanSeries(signal, rng);
  Tensor train({500, 3});
  std::copy_n(full.data(), 500 * 3, train.mutable_data());

  LstmAdConfig lstm_config;
  lstm_config.epochs = 3;
  LstmAdDetector detector(lstm_config);
  OnlineDetector::Options options;
  options.block = 50;
  options.context = 50;
  OnlineDetector online(&detector, options);
  online.Fit(train);

  // Stream the live segment with a level shift at samples [200, 240).
  int64_t alerts = 0;
  bool shift_alerted = false;
  for (int64_t t = 500; t < 900; ++t) {
    std::vector<float> sample(3);
    for (int64_t k = 0; k < 3; ++k) {
      sample[static_cast<size_t>(k)] = full.at(t, k);
      if (t >= 700 && t < 740) sample[static_cast<size_t>(k)] += 4.0f;
    }
    OnlineDetector::Alert alert = online.Append(sample);
    if (alert.scores.empty()) continue;
    ++alerts;
    EXPECT_EQ(alert.scores.size(), 50u);
    // Check whether the shifted region scored high within its block.
    for (size_t i = 0; i < alert.scores.size(); ++i) {
      const int64_t global = alert.start + static_cast<int64_t>(i);
      if (global >= 205 && global < 235 && alert.scores[i] > 0.05f) {
        shift_alerted = true;
      }
    }
  }
  EXPECT_EQ(alerts, 400 / 50);
  EXPECT_TRUE(shift_alerted);
  EXPECT_EQ(online.total_samples(), 400);
}

// Minimal windowed detector: scores only positions with a full trailing
// window, so a series of length L yields max(0, L - W + 1) scores — fewer
// than the input on short series, like real windowed detectors before
// tail-padding.
class WindowedStubDetector : public AnomalyDetector {
 public:
  explicit WindowedStubDetector(int64_t window) : window_(window) {}

  std::string name() const override { return "WindowedStub"; }
  void Fit(const Tensor&) override {}

  DetectionResult Run(const Tensor& test) override {
    DetectionResult result;
    const int64_t n = std::max<int64_t>(0, test.dim(0) - window_ + 1);
    result.scores.assign(static_cast<size_t>(n), 0.5f);
    result.labels.assign(static_cast<size_t>(n), 0);
    return result;
  }

 private:
  int64_t window_;
};

// Regression: a windowed detector returning fewer scores than the block size
// used to underflow `result.scores.end() - emit` (UB) on a short first
// block. The emitted tail must clamp to what the detector produced.
TEST(OnlineDetectorTest, ShortFirstBlockThroughWindowedDetector) {
  WindowedStubDetector detector(40);
  OnlineDetector::Options options;
  options.block = 20;
  options.context = 20;
  OnlineDetector online(&detector, options);
  Rng rng(6);
  online.Fit(Tensor::Randn({100, 2}, rng));

  std::vector<OnlineDetector::Alert> alerts;
  for (int64_t t = 0; t < 40; ++t) {
    OnlineDetector::Alert alert = online.Append({0.1f, 0.2f});
    if (t == 19 || t == 39) alerts.push_back(std::move(alert));
  }
  ASSERT_EQ(alerts.size(), 2u);
  // First block: 20 buffered samples, detector window 40 → zero scores.
  EXPECT_TRUE(alerts[0].scores.empty());
  EXPECT_TRUE(alerts[0].labels.empty());
  // Second block: 40 buffered samples → exactly one scored position; the
  // alert carries that clamped tail and start indexes its global position.
  ASSERT_EQ(alerts[1].scores.size(), 1u);
  EXPECT_EQ(alerts[1].labels.size(), 1u);
  EXPECT_EQ(alerts[1].start, 39);
  EXPECT_FLOAT_EQ(alerts[1].scores[0], 0.5f);
}

TEST(OnlineDetectorTest, RejectsAppendBeforeFit) {
  LstmAdConfig config;
  LstmAdDetector detector(config);
  OnlineDetector online(&detector, OnlineDetector::Options{});
  EXPECT_DEATH(online.Append({1.0f, 2.0f}),
               "Fit or SetNormalization must be called");
}

TEST(OnlineDetectorTest, RejectsWrongSampleWidth) {
  LstmAdConfig config;
  config.epochs = 1;
  LstmAdDetector detector(config);
  OnlineDetector online(&detector, OnlineDetector::Options{});
  Rng rng(5);
  online.Fit(Tensor::Randn({100, 3}, rng));
  EXPECT_DEATH(online.Append({1.0f, 2.0f}), "check failed");
}

}  // namespace
}  // namespace imdiff
