// Fault-injection framework tests (utils/fault.h): spec grammar and trigger
// semantics, schedule determinism under a fixed seed, keyed (order-free)
// triggers, FaultScope save/restore, the seeded backoff schedule, and the
// arena's allocation-fault fallback path.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/arena.h"
#include "utils/fault.h"
#include "utils/metrics.h"

namespace imdiff {
namespace {

FaultPoint* Point(const char* name) {
  return FaultRegistry::Global().GetPoint(name);
}

TEST(FaultSpecTest, CountTriggerFiresExactlyOnThatCall) {
  FaultScope scope("test.count:#3", 42);
  FaultPoint* point = Point("test.count");
  std::vector<int> fired_calls;
  for (int call = 1; call <= 10; ++call) {
    if (point->Fire()) fired_calls.push_back(call);
  }
  EXPECT_EQ(fired_calls, std::vector<int>{3});
  EXPECT_EQ(point->calls(), 10);
  EXPECT_EQ(point->fired(), 1);
}

TEST(FaultSpecTest, ProbabilityEndpointsAreExact) {
  {
    FaultScope scope("test.p1:1", 7);
    FaultPoint* point = Point("test.p1");
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(point->Fire());
  }
  // Unconfigured points are disarmed and never fire.
  FaultPoint* never = Point("test.never");
  EXPECT_FALSE(never->armed());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(never->Fire());
}

TEST(FaultSpecTest, ProbabilityRateIsRoughlyHonored) {
  FaultScope scope("test.rate:0.2", 11);
  FaultPoint* point = Point("test.rate");
  constexpr int kCalls = 5000;
  int fired = 0;
  for (int i = 0; i < kCalls; ++i) fired += point->Fire() ? 1 : 0;
  // Binomial(5000, 0.2): mean 1000, sd ~28. A +-6 sd band keeps the test
  // deterministic-in-practice while catching a broken hash->uniform mapping.
  EXPECT_GT(fired, 830);
  EXPECT_LT(fired, 1170);
  EXPECT_EQ(point->fired(), fired);
}

TEST(FaultSpecTest, FireCapBoundsTotalFires) {
  FaultScope scope("test.cap:0.5x3", 13);
  FaultPoint* point = Point("test.cap");
  for (int i = 0; i < 200; ++i) point->Fire();
  EXPECT_EQ(point->fired(), 3);
}

TEST(FaultSpecTest, SameSeedReplaysIdenticalSchedule) {
  auto schedule = [](uint64_t seed) {
    FaultScope scope("test.replay:0.3", seed);
    FaultPoint* point = Point("test.replay");
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(point->Fire());
    return fires;
  };
  EXPECT_EQ(schedule(5), schedule(5));
  EXPECT_NE(schedule(5), schedule(6));
}

TEST(FaultSpecTest, ConfigureResetsCountersAndReplaysFromCallOne) {
  FaultScope scope("test.reset:#1", 9);
  FaultPoint* point = Point("test.reset");
  EXPECT_TRUE(point->Fire());
  EXPECT_FALSE(point->Fire());  // #N fires once
  FaultRegistry::Global().Configure("test.reset:#1", 9);
  EXPECT_EQ(point->calls(), 0);
  EXPECT_TRUE(point->Fire());  // the schedule replays from the start
}

TEST(FaultSpecTest, MultiPointSpecArmsEveryPoint) {
  FaultScope scope("test.multi_a:1,test.multi_b:#2,test.multi_c:0.5x1", 3);
  EXPECT_TRUE(Point("test.multi_a")->armed());
  EXPECT_TRUE(Point("test.multi_b")->armed());
  EXPECT_TRUE(Point("test.multi_c")->armed());
  EXPECT_TRUE(FaultRegistry::Global().armed());
}

TEST(FaultKeyedTest, DecisionIsPureInSeedAndKey) {
  FaultScope scope("test.keyed:0.5", 17);
  FaultPoint* point = Point("test.keyed");
  std::map<uint64_t, bool> first_pass;
  int fired = 0;
  for (uint64_t key = 0; key < 200; ++key) {
    first_pass[key] = point->FireKeyed(key);
    fired += first_pass[key] ? 1 : 0;
  }
  EXPECT_GT(fired, 60);  // roughly half of 200
  EXPECT_LT(fired, 140);
  // Reversed order, and with sequence calls interleaved: same decisions.
  point->Fire();
  point->Fire();
  for (uint64_t key = 200; key-- > 0;) {
    EXPECT_EQ(point->FireKeyed(key), first_pass[key]) << "key " << key;
  }
}

TEST(FaultScopeTest, RestoresPreviousConfiguration) {
  FaultRegistry& registry = FaultRegistry::Global();
  FaultScope outer("test.outer:1", 3);
  EXPECT_TRUE(Point("test.outer")->armed());
  {
    FaultScope inner("test.inner:#1", 4);
    EXPECT_TRUE(Point("test.inner")->armed());
    EXPECT_FALSE(Point("test.outer")->armed());  // Configure replaces, not adds
    EXPECT_EQ(registry.spec(), "test.inner:#1");
    EXPECT_EQ(registry.seed(), 4u);
  }
  EXPECT_EQ(registry.spec(), "test.outer:1");
  EXPECT_EQ(registry.seed(), 3u);
  EXPECT_TRUE(Point("test.outer")->armed());
  EXPECT_FALSE(Point("test.inner")->armed());
}

TEST(FaultMacroTest, MacroTracksActiveConfiguration) {
  FaultScope quiet("", 1);
  EXPECT_FALSE(IMDIFF_FAULT("test.macro"));
  {
    FaultScope armed("test.macro:1", 1);
    EXPECT_TRUE(IMDIFF_FAULT("test.macro"));
  }
  EXPECT_FALSE(IMDIFF_FAULT("test.macro"));
}

TEST(FaultRegistryTest, FireCountsReportPerPointTotals) {
  FaultScope scope("test.fc_a:1,test.fc_b:#5", 2);
  for (int i = 0; i < 3; ++i) Point("test.fc_a")->Fire();
  Point("test.fc_b")->Fire();  // call 1 of 5: no fire
  const std::map<std::string, int64_t> counts =
      FaultRegistry::Global().FireCounts();
  EXPECT_EQ(counts.at("test.fc_a"), 3);
  EXPECT_EQ(counts.at("test.fc_b"), 0);
}

TEST(BackoffTest, ScheduleIsDeterministicAndBounded) {
  BackoffPolicy policy;  // 4 attempts, 5 ms base, x2, 50% jitter
  const std::vector<double> a = BackoffSchedule(policy, 77);
  EXPECT_EQ(a, BackoffSchedule(policy, 77));
  EXPECT_NE(a, BackoffSchedule(policy, 78));
  ASSERT_EQ(a.size(), 3u);  // max_attempts - 1 delays
  double base = policy.base_seconds;
  for (double delay : a) {
    EXPECT_GE(delay, base * (1.0 - policy.jitter) - 1e-12);
    EXPECT_LE(delay, base + 1e-12);
    base *= policy.multiplier;
  }
}

TEST(FaultArenaTest, AllocFaultFallsBackToUsableSystemAllocation) {
  Counter* fallbacks = MetricsRegistry::Global().GetCounter("arena.fallback");
  const int64_t before = fallbacks->value();
  FaultScope scope("arena.alloc:1", 21);
  constexpr size_t kFloats = 300;  // bucket capacity 512: fallback must size up
  float* buffer = Arena::Global().Acquire(kFloats);
  ASSERT_NE(buffer, nullptr);
  EXPECT_GT(fallbacks->value(), before);
  // The degraded allocation is fully usable memory.
  std::fill_n(buffer, kFloats, 1.5f);
  EXPECT_EQ(buffer[kFloats - 1], 1.5f);
  Arena::Global().Release(buffer, kFloats);
}

}  // namespace
}  // namespace imdiff
