// Serving-layer tests (src/serve): seeded-scoring batch invariance, the
// cross-session micro-batcher, session eviction/rehydration, the model
// registry (hot swap + crash-safe warm load), ingest backpressure, and the
// multi-producer concurrency test that the TSan CI job runs.

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/online_detector.h"
#include "data/benchmarks.h"
#include "nn/serialize.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/replay.h"
#include "utils/fault.h"
#include "utils/metrics.h"
#include "utils/rng.h"

namespace imdiff {
namespace {

using serve::BlockRequest;
using serve::ModelEntry;
using serve::ModelRegistry;
using serve::SessionManager;
using serve::StreamServer;
using serve::TenantStream;

// Tiny configuration (see imdiffusion_test.cc) with stochastic sampling ON:
// the seeded path's per-window noise streams are exactly what makes batch
// composition unobservable, so the serving tests must exercise them.
ImDiffusionConfig ServeTinyConfig(uint64_t seed) {
  ImDiffusionConfig config;
  config.model.window = 40;
  config.model.hidden = 16;
  config.model.num_blocks = 1;
  config.model.num_heads = 2;
  config.model.ff_dim = 32;
  config.model.step_embed_dim = 16;
  config.model.side_dim = 8;
  config.schedule.num_steps = 6;
  config.schedule.beta_end = 0.7f;
  config.num_masked_windows = 2;
  config.epochs = 4;
  config.batch_size = 4;
  config.train_stride = 10;
  config.vote_last_steps = 4;
  config.vote_stride = 1;
  config.stochastic_sampling = true;
  config.seed = seed;
  return config;
}

// One shared fitted model for the whole suite: fitting dominates test time
// and every serving test only needs *a* fitted model, not a fresh one.
std::shared_ptr<const ModelEntry> SharedModel() {
  static const std::shared_ptr<const ModelEntry> entry = [] {
    const MtsDataset history = MakeMicroserviceLatencyDataset(
        /*seed=*/3, /*num_services=*/3, /*train_length=*/240,
        /*test_length=*/1);
    auto e = std::make_shared<ModelEntry>();
    e->name = "latency";
    e->version = 1;
    e->stats = FitMinMax(history.train);
    auto detector = std::make_shared<ImDiffusionDetector>(ServeTinyConfig(11));
    detector->Fit(ApplyMinMax(history.train, e->stats));
    e->detector = std::move(detector);
    return e;
  }();
  return entry;
}

TenantStream MakeStream(const std::string& tenant, uint64_t seed,
                        int64_t length) {
  TenantStream stream;
  stream.tenant = tenant;
  stream.samples = MakeMicroserviceLatencyDataset(seed, /*num_services=*/3,
                                                  /*train_length=*/1,
                                                  /*test_length=*/length)
                       .test;
  return stream;
}

int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name)->value();
}

// Near-instant backoff for retry tests: same schedule shape, no real sleeps.
BackoffPolicy FastBackoff() {
  BackoffPolicy policy;
  policy.base_seconds = 1e-4;
  return policy;
}

// Replays `streams` through a StreamServer built from `options` and expects
// every tenant's assembled score stream to be bitwise identical to the
// serial single-session replay.
void ExpectServedMatchesSerial(const std::vector<TenantStream>& streams,
                               const StreamServer::Options& options) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  const serve::ReplayStats served =
      serve::ReplayThroughServer(model, streams, options);
  for (const TenantStream& stream : streams) {
    const std::vector<float> serial = serve::ReplaySerial(
        *model, options.session.online, options.session.seed_base, stream);
    EXPECT_EQ(serial, served.scores.at(stream.tenant)) << stream.tenant;
  }
}

TEST(ServeSeedTest, TenantSeedsAreStableAndDistinct) {
  const uint64_t a = serve::TenantSeed(7, "tenant-a");
  EXPECT_EQ(a, serve::TenantSeed(7, "tenant-a"));
  EXPECT_NE(a, serve::TenantSeed(7, "tenant-b"));
  EXPECT_NE(a, serve::TenantSeed(8, "tenant-a"));
  EXPECT_NE(serve::WindowSeed(a, 0), serve::WindowSeed(a, 40));
}

// The load-bearing property of the whole subsystem: a window's score only
// depends on (content, seed, model), not on which other windows share the
// ScoreWindowBatch call or in what order.
TEST(ServeBatchTest, WindowScoreIsBatchCompositionInvariant) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  const ImDiffusionDetector& detector = *model->detector;
  const TenantStream stream = MakeStream("mix", 21, 140);
  const Tensor series = ApplyMinMax(stream.samples, model->stats);
  const ImDiffusionDetector::WindowPlan plan = detector.PlanWindows(series);
  const int64_t n = plan.windows.dim(0);
  const int64_t k = plan.windows.dim(1);
  const int64_t w = plan.windows.dim(2);
  ASSERT_GE(n, 3);
  std::vector<uint64_t> seeds;
  for (int64_t i = 0; i < n; ++i) seeds.push_back(MixSeed(123, i));

  const std::vector<ImDiffusionDetector::WindowScore> together =
      detector.ScoreWindowBatch(plan.windows, seeds);

  // Each window scored alone matches its in-batch score bitwise.
  for (int64_t i = 0; i < n; ++i) {
    Tensor one({1, k, w});
    std::copy_n(plan.windows.data() + i * k * w, k * w, one.mutable_data());
    const std::vector<ImDiffusionDetector::WindowScore> alone =
        detector.ScoreWindowBatch(one, {seeds[i]});
    ASSERT_EQ(alone.size(), 1u);
    EXPECT_EQ(alone[0].step_errors, together[i].step_errors) << "window " << i;
  }

  // Reversing the batch order permutes the results, nothing else.
  Tensor reversed({n, k, w});
  std::vector<uint64_t> reversed_seeds(seeds.rbegin(), seeds.rend());
  for (int64_t i = 0; i < n; ++i) {
    std::copy_n(plan.windows.data() + (n - 1 - i) * k * w, k * w,
                reversed.mutable_data() + i * k * w);
  }
  const std::vector<ImDiffusionDetector::WindowScore> backwards =
      detector.ScoreWindowBatch(reversed, reversed_seeds);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(backwards[n - 1 - i].step_errors, together[i].step_errors);
  }
}

// ScoreBlocks (one concatenated ScoreWindowBatch across tenants) must equal
// per-block ScoreBlock for every request in the batch.
TEST(ServeBatchTest, ScoreBlocksMatchesSerialScoreBlock) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  SessionManager::Options options;
  options.online.block = 50;
  options.online.context = 50;
  options.seed_base = 7;
  SessionManager sessions(model, options);

  const std::vector<TenantStream> streams = {MakeStream("alpha", 31, 100),
                                             MakeStream("beta", 32, 100),
                                             MakeStream("gamma", 33, 100)};
  std::vector<BlockRequest> requests;
  const int64_t k = streams.front().samples.dim(1);
  std::vector<float> sample(static_cast<size_t>(k));
  for (int64_t l = 0; l < 100; ++l) {
    for (const TenantStream& stream : streams) {
      std::copy_n(stream.samples.data() + l * k, k, sample.begin());
      BlockRequest request;
      if (sessions.Append(stream.tenant, sample, &request)) {
        requests.push_back(std::move(request));
      }
    }
  }
  ASSERT_EQ(requests.size(), 6u);  // 2 blocks per tenant
  EXPECT_EQ(sessions.pending_blocks(), 6);

  std::vector<DetectionResult> serial;
  for (const BlockRequest& request : requests) {
    serial.push_back(serve::ScoreBlock(*model->detector, request.session_seed,
                                       request.ready));
  }
  const std::vector<DetectionResult> batched = serve::ScoreBlocks(&requests);
  ASSERT_EQ(batched.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].scores, batched[i].scores) << "request " << i;
    EXPECT_EQ(serial[i].labels, batched[i].labels) << "request " << i;
  }
  for (const BlockRequest& request : requests) {
    sessions.CompleteBlock(request);
  }
  EXPECT_EQ(sessions.pending_blocks(), 0);
}

// Window-score reuse across overlapping blocks (block and context multiples
// of the model window, so consecutive blocks share window start positions)
// must be bitwise invisible.
TEST(ServeSessionTest, CacheReuseIsBitwise) {
  StreamServer::Options options;
  options.session.online.block = 40;   // == model window
  options.session.online.context = 80; // two windows of history
  options.session.seed_base = 5;
  options.batch.flush_window_seconds = 0.002;
  const int64_t hits_before = CounterValue("serve.cache_hits");
  ExpectServedMatchesSerial({MakeStream("cache-a", 41, 200),
                             MakeStream("cache-b", 42, 200),
                             MakeStream("cache-c", 43, 200),
                             MakeStream("cache-d", 44, 200)},
                            options);
  EXPECT_GT(CounterValue("serve.cache_hits"), hits_before);
}

// LRU eviction + rehydration under a resident cap far below the tenant
// count: evicted sessions must continue bitwise identically.
TEST(ServeSessionTest, EvictionRehydratesBitwise) {
  StreamServer::Options options;
  options.session.online.block = 50;
  options.session.online.context = 50;
  options.session.max_resident = 2;
  options.session.seed_base = 9;
  options.batch.flush_window_seconds = 0.002;
  const int64_t evicted_before = CounterValue("serve.sessions_evicted");
  const int64_t rehydrated_before = CounterValue("serve.sessions_rehydrated");
  ExpectServedMatchesSerial({MakeStream("evict-a", 51, 150),
                             MakeStream("evict-b", 52, 150),
                             MakeStream("evict-c", 53, 150),
                             MakeStream("evict-d", 54, 150)},
                            options);
  EXPECT_GT(CounterValue("serve.sessions_evicted"), evicted_before);
  EXPECT_GT(CounterValue("serve.sessions_rehydrated"), rehydrated_before);
}

TEST(ServeRegistryTest, PublishAcquireAndHotSwap) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  ModelRegistry registry;
  EXPECT_EQ(registry.Acquire("latency"), nullptr);
  EXPECT_EQ(registry.latest_version("latency"), 0);

  EXPECT_EQ(registry.Publish("latency", model->detector, model->stats), 1);
  std::shared_ptr<const ModelEntry> v1 = registry.Acquire("latency");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1);

  // Hot swap: a new version replaces the registry pointer; the entry already
  // acquired stays valid and keeps its version.
  EXPECT_EQ(registry.Publish("latency", model->detector, model->stats), 2);
  EXPECT_EQ(registry.latest_version("latency"), 2);
  EXPECT_EQ(registry.Acquire("latency")->version, 2);
  EXPECT_EQ(v1->version, 1);
  EXPECT_TRUE(v1->detector->fitted());
}

// Regression: the degradation ladder's p90 cost estimate
// (serve.batch_score_seconds) must be re-seeded on model hot-swap. Before
// StreamServer::SwapModel reset it, the histogram carried the old model's
// timings across a registry publish, so a swap kept degrading (or kept
// full-quality) based on stale history until the window refilled.
TEST(ServeRegistryTest, SwapModelResetsDegradeCostEstimate) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  Histogram* batch_score =
      MetricsRegistry::Global().GetHistogram("serve.batch_score_seconds");
  batch_score->Reset();
  // Stale history from a (pretend) heavier model: p90 of 10s against a 5s
  // deadline predicts an overshoot, so every ready block degrades to level 1.
  batch_score->Record(10.0);
  batch_score->Record(10.0);

  StreamServer::Options options;
  options.num_workers = 1;
  options.deadline_seconds = 5.0;
  options.session.online.block = 50;
  options.session.online.context = 50;
  options.session.seed_base = 17;
  options.batch.flush_window_seconds = 0.002;

  std::mutex mu;
  std::vector<int> levels;
  StreamServer server(model, options,
                      [&](const StreamServer::ScoredBlock& scored) {
                        std::lock_guard<std::mutex> lock(mu);
                        levels.push_back(scored.degrade_level);
                      });
  const TenantStream stream = MakeStream("swap", 151, 100);
  const int64_t k = stream.samples.dim(1);
  std::vector<float> sample(static_cast<size_t>(k));
  auto feed = [&](int64_t begin, int64_t end) {
    for (int64_t l = begin; l < end; ++l) {
      std::copy_n(stream.samples.data() + l * k, k, sample.begin());
      while (!server.Submit("swap", sample)) std::this_thread::yield();
    }
    server.Drain();
  };

  feed(0, 50);  // first block: stale estimate says the deadline is blown
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(levels.size(), 1u);
    EXPECT_EQ(levels[0], 1);
  }

  // Hot swap. The estimate resets with it, so the next block takes the
  // "no history yet" optimistic branch and scores at full quality; the real
  // (millisecond-scale) timings recorded since re-seed the predictor.
  server.SwapModel(model);
  EXPECT_EQ(batch_score->count(), 0);
  feed(50, 100);
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[1], 0);
  }
  server.Shutdown();
  batch_score->Reset();
}

// force_degrade_level pins every block regardless of the deadline policy's
// cost estimate — the knob backend-comparison replays rely on to decouple
// level choice from wall-clock speed.
TEST(ServeRegistryTest, ForcedDegradeLevelOverridesDeadlinePolicy) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  Histogram* batch_score =
      MetricsRegistry::Global().GetHistogram("serve.batch_score_seconds");
  batch_score->Reset();
  // Stale estimate that would otherwise force level 1 (as in the test above).
  batch_score->Record(10.0);

  StreamServer::Options options;
  options.num_workers = 1;
  options.deadline_seconds = 5.0;
  options.force_degrade_level = 2;
  options.session.online.block = 50;
  options.session.online.context = 50;
  options.session.seed_base = 17;
  options.batch.flush_window_seconds = 0.002;

  std::mutex mu;
  std::vector<int> levels;
  StreamServer server(model, options,
                      [&](const StreamServer::ScoredBlock& scored) {
                        std::lock_guard<std::mutex> lock(mu);
                        levels.push_back(scored.degrade_level);
                      });
  const TenantStream stream = MakeStream("forced", 153, 100);
  const int64_t k = stream.samples.dim(1);
  std::vector<float> sample(static_cast<size_t>(k));
  for (int64_t l = 0; l < 100; ++l) {
    std::copy_n(stream.samples.data() + l * k, k, sample.begin());
    while (!server.Submit("forced", sample)) std::this_thread::yield();
  }
  server.Drain();
  server.Shutdown();
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[0], 2);
    EXPECT_EQ(levels[1], 2);
  }
  batch_score->Reset();
}

TEST(ServeRegistryTest, WarmLoadsCheckpointAndRejectsMissingFile) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  const std::string path = ::testing::TempDir() + "serve_registry_ckpt.bin";
  model->detector->SaveModel(path);

  const ImDiffusionConfig config = ServeTinyConfig(11);
  ModelRegistry registry;
  EXPECT_EQ(registry.PublishFromFile("warm", config, path,
                                     /*num_features=*/3, model->stats),
            1);
  std::shared_ptr<const ModelEntry> warm = registry.Acquire("warm");
  ASSERT_NE(warm, nullptr);
  ASSERT_TRUE(warm->detector->fitted());

  // The warm-loaded detector is the same model: identical seeded scores.
  const TenantStream stream = MakeStream("warm", 61, 120);
  const Tensor series = ApplyMinMax(stream.samples, model->stats);
  EXPECT_EQ(model->detector->RunSeeded(series, 99).scores,
            warm->detector->RunSeeded(series, 99).scores);

  // A missing file exhausts every retry; with a previous version published
  // the registry keeps serving it and reports that version.
  const int64_t fallbacks_before = CounterValue("registry.load_fallbacks");
  EXPECT_EQ(registry.PublishFromFile("warm", config, path + ".missing",
                                     /*num_features=*/3, model->stats,
                                     FastBackoff()),
            1);
  EXPECT_EQ(registry.latest_version("warm"), 1);
  EXPECT_EQ(CounterValue("registry.load_fallbacks") - fallbacks_before, 1);
  // With nothing to fall back to the publish fails outright.
  EXPECT_EQ(registry.PublishFromFile("fresh", config, path + ".missing",
                                     /*num_features=*/3, model->stats,
                                     FastBackoff()),
            -1);
  EXPECT_EQ(registry.latest_version("fresh"), 0);
}

// Injected load faults: a transient fault is retried away; a persistent one
// exhausts the budget and falls back to the previously published version.
TEST(ServeRegistryTest, LoadFaultRetriesThenFallsBackToPrevious) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  const std::string path = ::testing::TempDir() + "serve_retry_ckpt.bin";
  model->detector->SaveModel(path);
  const ImDiffusionConfig config = ServeTinyConfig(11);
  ModelRegistry registry;

  {
    // First attempt fails, retry loads: the publish succeeds at version 1.
    FaultScope faults("registry.load_io:#1", 3);
    const int64_t retries_before = CounterValue("registry.load_retries");
    EXPECT_EQ(registry.PublishFromFile("fb", config, path,
                                       /*num_features=*/3, model->stats,
                                       FastBackoff()),
              1);
    EXPECT_EQ(CounterValue("registry.load_retries") - retries_before, 1);
  }
  {
    // Every attempt fails: the previous version keeps serving.
    FaultScope faults("registry.load_io:1", 3);
    const int64_t retries_before = CounterValue("registry.load_retries");
    const int64_t fallbacks_before = CounterValue("registry.load_fallbacks");
    const BackoffPolicy backoff = FastBackoff();
    EXPECT_EQ(registry.PublishFromFile("fb", config, path,
                                       /*num_features=*/3, model->stats,
                                       backoff),
              1);
    EXPECT_EQ(registry.latest_version("fb"), 1);  // nothing new published
    EXPECT_EQ(CounterValue("registry.load_retries") - retries_before,
              backoff.max_attempts - 1);
    EXPECT_EQ(CounterValue("registry.load_fallbacks") - fallbacks_before, 1);
  }
  // Faults cleared: the same call now loads and publishes version 2.
  EXPECT_EQ(registry.PublishFromFile("fb", config, path,
                                     /*num_features=*/3, model->stats),
            2);
}

// A crash injected mid-save must leave the previously committed checkpoint
// intact and loadable (tmp + rename in nn/serialize).
TEST(ServeCheckpointTest, CrashMidSaveKeepsOldCheckpoint) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  const std::string path = ::testing::TempDir() + "serve_crash_ckpt.bin";
  model->detector->SaveModel(path);

  // A differently-seeded fit whose save "crashes" after one tensor.
  const MtsDataset history = MakeMicroserviceLatencyDataset(
      /*seed=*/3, /*num_services=*/3, /*train_length=*/240, /*test_length=*/1);
  ImDiffusionConfig other_config = ServeTinyConfig(77);
  other_config.epochs = 1;
  ImDiffusionDetector other(other_config);
  other.Fit(ApplyMinMax(history.train, model->stats));
  {
    FaultScope faults("serialize.save_io:#1", 3);
    EXPECT_THROW(other.SaveModel(path), std::runtime_error);
  }

  // The old checkpoint survives byte-for-byte usable: it loads and scores
  // exactly like the original model.
  ImDiffusionDetector restored(ServeTinyConfig(11));
  ASSERT_TRUE(restored.LoadModel(path, /*num_features=*/3));
  const TenantStream stream = MakeStream("crash", 71, 120);
  const Tensor series = ApplyMinMax(stream.samples, model->stats);
  EXPECT_EQ(model->detector->RunSeeded(series, 5).scores,
            restored.RunSeeded(series, 5).scores);
}

// SaveModelWithRetry turns the same injected mid-stream crash into a
// successful save on the second attempt, and the checkpoint round-trips.
TEST(ServeCheckpointTest, SaveRetriesAfterInjectedMidStreamCrash) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  const std::string path = ::testing::TempDir() + "serve_save_retry_ckpt.bin";
  const int64_t retries_before = CounterValue("registry.save_retries");
  {
    FaultScope faults("serialize.save_io:#1", 3);
    EXPECT_TRUE(serve::SaveModelWithRetry(*model->detector, path,
                                          FastBackoff()));
  }
  EXPECT_EQ(CounterValue("registry.save_retries") - retries_before, 1);
  ImDiffusionDetector restored(ServeTinyConfig(11));
  ASSERT_TRUE(restored.LoadModel(path, /*num_features=*/3));
  const TenantStream stream = MakeStream("save-retry", 72, 120);
  const Tensor series = ApplyMinMax(stream.samples, model->stats);
  EXPECT_EQ(model->detector->RunSeeded(series, 6).scores,
            restored.RunSeeded(series, 6).scores);
}

// Persistent save faults exhaust the retry budget and report failure without
// corrupting the previously committed checkpoint.
TEST(ServeCheckpointTest, SaveFailureAfterRetriesKeepsOldCheckpoint) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  const std::string path = ::testing::TempDir() + "serve_save_fail_ckpt.bin";
  model->detector->SaveModel(path);
  const int64_t failures_before = CounterValue("registry.save_failures");
  {
    FaultScope faults("registry.save_io:1", 3);
    EXPECT_FALSE(serve::SaveModelWithRetry(*model->detector, path,
                                           FastBackoff()));
  }
  EXPECT_EQ(CounterValue("registry.save_failures") - failures_before, 1);
  ImDiffusionDetector restored(ServeTinyConfig(11));
  ASSERT_TRUE(restored.LoadModel(path, /*num_features=*/3));
}

// Evict/rehydrate primitive: an exported mid-stream state imported into a
// fresh wrapper continues bitwise identically.
TEST(ServeStateTest, ExportImportContinuesBitwise) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  OnlineDetector::Options options;
  options.block = 50;
  options.context = 50;
  const TenantStream stream = MakeStream("state", 81, 150);
  const int64_t k = stream.samples.dim(1);
  std::vector<float> sample(static_cast<size_t>(k));

  // Reference: one uninterrupted pass, recording every ready block.
  OnlineDetector reference(nullptr, options);
  reference.SetNormalization(model->stats);
  std::vector<OnlineDetector::ReadyBlock> expected;
  for (int64_t l = 0; l < 150; ++l) {
    std::copy_n(stream.samples.data() + l * k, k, sample.begin());
    OnlineDetector::ReadyBlock ready;
    if (reference.AppendBuffered(sample, &ready)) {
      expected.push_back(std::move(ready));
    }
  }
  ASSERT_EQ(expected.size(), 3u);

  // Interrupted pass: export mid-block, import into a fresh wrapper (no
  // SetNormalization — the state carries it), continue.
  OnlineDetector first(nullptr, options);
  first.SetNormalization(model->stats);
  for (int64_t l = 0; l < 70; ++l) {
    std::copy_n(stream.samples.data() + l * k, k, sample.begin());
    OnlineDetector::ReadyBlock ready;
    first.AppendBuffered(sample, &ready);
  }
  const OnlineDetector::State state = first.ExportState();

  OnlineDetector resumed(nullptr, options);
  resumed.ImportState(state);
  EXPECT_EQ(resumed.total_samples(), 70);
  std::vector<OnlineDetector::ReadyBlock> continued;
  for (int64_t l = 70; l < 150; ++l) {
    std::copy_n(stream.samples.data() + l * k, k, sample.begin());
    OnlineDetector::ReadyBlock ready;
    if (resumed.AppendBuffered(sample, &ready)) {
      continued.push_back(std::move(ready));
    }
  }
  ASSERT_EQ(continued.size(), 2u);
  for (size_t b = 0; b < continued.size(); ++b) {
    const OnlineDetector::ReadyBlock& want = expected[b + 1];
    const OnlineDetector::ReadyBlock& got = continued[b];
    EXPECT_EQ(got.total_at_ready, want.total_at_ready);
    ASSERT_EQ(got.series.dim(0), want.series.dim(0));
    EXPECT_TRUE(std::equal(got.series.data(),
                           got.series.data() + got.series.numel(),
                           want.series.data()));
  }
}

TEST(ServeStateTest, ResetKeepsNormalization) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  OnlineDetector::Options options;
  options.block = 50;
  options.context = 50;
  const TenantStream stream = MakeStream("reset", 82, 50);
  const int64_t k = stream.samples.dim(1);
  std::vector<float> sample(static_cast<size_t>(k));

  OnlineDetector online(nullptr, options);
  online.SetNormalization(model->stats);
  auto push_all = [&](std::vector<OnlineDetector::ReadyBlock>* out) {
    for (int64_t l = 0; l < 50; ++l) {
      std::copy_n(stream.samples.data() + l * k, k, sample.begin());
      OnlineDetector::ReadyBlock ready;
      if (online.AppendBuffered(sample, &ready)) out->push_back(std::move(ready));
    }
  };
  std::vector<OnlineDetector::ReadyBlock> before;
  push_all(&before);
  ASSERT_EQ(before.size(), 1u);

  online.Reset();
  EXPECT_EQ(online.total_samples(), 0);
  // Normalization survives Reset: the re-streamed block is bitwise the same.
  std::vector<OnlineDetector::ReadyBlock> after;
  push_all(&after);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].total_at_ready, before[0].total_at_ready);
  EXPECT_TRUE(std::equal(after[0].series.data(),
                         after[0].series.data() + after[0].series.numel(),
                         before[0].series.data()));
}

// Backpressure: a full shard queue rejects the sample instead of blocking
// the producer, and the rejection is counted.
TEST(ServeServerTest, BackpressureRejectsWhenQueueFull) {
  StreamServer::Options options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.session.online.block = 100000;  // buffer only, no scoring
  const int64_t dropped_before = CounterValue("serve.requests_dropped");
  StreamServer server(SharedModel(), options, [](const StreamServer::ScoredBlock&) {});
  const std::vector<float> sample = {0.1f, 0.2f, 0.3f};
  int64_t accepted = 0;
  int64_t rejected = 0;
  // Tight burst against a capacity-1 queue: the producer outruns the single
  // worker, so some submissions must shed.
  for (int i = 0; i < 2000; ++i) {
    if (server.Submit("burst", sample)) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(server.accepted(), accepted);
  EXPECT_EQ(server.dropped(), rejected);
  EXPECT_EQ(CounterValue("serve.requests_dropped") - dropped_before, rejected);
  server.Drain();
  server.Shutdown();
}

// Satellite concurrency test (runs under TSan in CI, see the ServeConcurrency
// regex in .github/workflows/ci.yml): several producer threads drive disjoint
// tenants plus tenants shared across producers, with the micro-batcher
// flushing concurrently and the resident cap forcing eviction churn. Every
// per-session score stream must still be bitwise identical to the serial
// single-threaded replay.
TEST(ServeConcurrencyTest, ConcurrentProducersMatchSerialReplay) {
  constexpr int kProducers = 4;
  constexpr int64_t kLength = 150;
  std::shared_ptr<const ModelEntry> model = SharedModel();

  std::vector<TenantStream> streams;
  for (int p = 0; p < kProducers; ++p) {
    streams.push_back(MakeStream("own-" + std::to_string(p),
                                 100 + static_cast<uint64_t>(p), kLength));
  }
  streams.push_back(MakeStream("shared-x", 110, kLength));
  streams.push_back(MakeStream("shared-y", 111, kLength));

  StreamServer::Options options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  options.session.online.block = 50;
  options.session.online.context = 50;
  options.session.max_resident = 4;  // below the tenant count: eviction churn
  options.session.seed_base = 13;
  options.batch.flush_window_seconds = 0.002;

  std::mutex score_mu;
  std::map<std::string, std::vector<float>> served;
  for (const TenantStream& stream : streams) {
    served[stream.tenant] = std::vector<float>(static_cast<size_t>(kLength), 0.0f);
  }
  StreamServer server(model, options,
                      [&](const StreamServer::ScoredBlock& scored) {
                        std::lock_guard<std::mutex> lock(score_mu);
                        std::vector<float>& out = served.at(scored.tenant);
                        for (size_t i = 0; i < scored.alert.scores.size(); ++i) {
                          const int64_t pos =
                              scored.alert.start + static_cast<int64_t>(i);
                          if (pos < kLength) {
                            out[static_cast<size_t>(pos)] =
                                scored.alert.scores[i];
                          }
                        }
                      });

  const int64_t k = streams.front().samples.dim(1);
  auto submit = [&](const TenantStream& stream, int64_t l) {
    std::vector<float> sample(static_cast<size_t>(k));
    std::copy_n(stream.samples.data() + l * k, k, sample.begin());
    while (!server.Submit(stream.tenant, sample)) std::this_thread::yield();
  };

  // Shared tenants: any producer may submit the next sample, but the
  // (cursor, submit) pair happens under the tenant's mutex so the per-tenant
  // arrival order — the one ordering the session layer requires — holds.
  struct SharedFeed {
    const TenantStream* stream;
    std::mutex mu;
    int64_t next = 0;
  };
  SharedFeed shared[2];
  shared[0].stream = &streams[kProducers];
  shared[1].stream = &streams[kProducers + 1];

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int64_t l = 0; l < kLength; ++l) {
        submit(streams[static_cast<size_t>(p)], l);
        for (SharedFeed& feed : shared) {
          std::lock_guard<std::mutex> lock(feed.mu);
          if (feed.next < kLength) {
            submit(*feed.stream, feed.next);
            ++feed.next;
          }
        }
      }
      // Finish whatever the shared feeds still owe.
      for (SharedFeed& feed : shared) {
        std::lock_guard<std::mutex> lock(feed.mu);
        while (feed.next < kLength) {
          submit(*feed.stream, feed.next);
          ++feed.next;
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  server.Drain();
  server.Shutdown();

  for (const TenantStream& stream : streams) {
    const std::vector<float> serial = serve::ReplaySerial(
        *model, options.session.online, options.session.seed_base, stream);
    EXPECT_EQ(serial, served.at(stream.tenant)) << stream.tenant;
  }
}

// Regression (stash leak): every distinct tenant used to leave a stash
// behind forever — at Zipf-scale tenant churn the stash was the serving
// layer's only unbounded state. The cap drops the least recently evicted
// stash and counts the drop; a dropped tenant restarts fresh.
TEST(ServeSessionTest, StashCapDropsLeastRecentlyEvicted) {
  SessionManager::Options options;
  options.online.block = 100000;  // buffer only: sessions stay idle/evictable
  options.max_resident = 2;
  options.max_stashed = 3;
  options.seed_base = 77;
  SessionManager sessions(SharedModel(), options);

  const std::vector<float> sample = {0.1f, 0.2f, 0.3f};
  const int64_t drops_before = CounterValue("serve.stash_evictions");
  BlockRequest request;
  for (int t = 0; t < 10; ++t) {
    sessions.Append("stash-" + std::to_string(t), sample, &request);
    EXPECT_LE(sessions.resident_sessions(), 2);
    EXPECT_LE(sessions.stashed_sessions(), 3);
  }
  // 10 tenants through a 2-resident cap: 8 evictions into a 3-stash cap
  // leaves 5 drops, oldest-evicted first.
  EXPECT_EQ(sessions.resident_sessions(), 2);
  EXPECT_EQ(sessions.stashed_sessions(), 3);
  EXPECT_EQ(CounterValue("serve.stash_evictions") - drops_before, 5);
  const double stash_gauge =
      MetricsRegistry::Global().GetGauge("serve.stash_size")->value();
  EXPECT_EQ(stash_gauge, 3.0);

  // A dropped tenant is not wedged: its next sample starts a fresh session.
  const int64_t created_before = CounterValue("serve.sessions_created");
  sessions.Append("stash-0", sample, &request);
  EXPECT_EQ(CounterValue("serve.sessions_created") - created_before, 1);
}

// Regression: pending_blocks() used to count a whole in-flight batch as one
// block, so drain progress and load reporting undercounted by up to the
// batch size. With the first completion callback gated, the count must equal
// the real number of uncompleted blocks.
TEST(ServeBatcherTest, PendingBlocksCountsEveryInFlightBlock) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  SessionManager::Options session_options;
  session_options.online.block = 50;
  session_options.online.context = 50;
  session_options.seed_base = 83;
  SessionManager sessions(model, session_options);

  std::mutex mu;
  std::condition_variable cv;
  bool in_callback = false;
  bool release = false;
  int completed = 0;
  serve::MicroBatcher::Options batch_options;
  batch_options.max_batch_windows = 1 << 30;  // flusher never fires on size
  batch_options.flush_window_seconds = 3600.0;  // ... or on time
  serve::MicroBatcher batcher(
      &sessions, batch_options,
      [&](const BlockRequest&, const DetectionResult&) {
        std::unique_lock<std::mutex> lock(mu);
        ++completed;
        if (completed == 1) {
          in_callback = true;
          cv.notify_all();
          cv.wait(lock, [&] { return release; });
        }
      });

  // Three tenants, one ready block each, all submitted before any flush.
  const std::vector<TenantStream> streams = {MakeStream("pb-a", 171, 50),
                                             MakeStream("pb-b", 172, 50),
                                             MakeStream("pb-c", 173, 50)};
  const int64_t k = streams.front().samples.dim(1);
  std::vector<float> sample(static_cast<size_t>(k));
  for (const TenantStream& stream : streams) {
    for (int64_t l = 0; l < 50; ++l) {
      std::copy_n(stream.samples.data() + l * k, k, sample.begin());
      BlockRequest request;
      if (sessions.Append(stream.tenant, sample, &request)) {
        batcher.Submit(std::move(request));
      }
    }
  }
  EXPECT_EQ(batcher.pending_blocks(), 3);

  std::thread flusher([&] { batcher.Flush(); });
  {
    // The first block's callback is parked mid-delivery: its alert is not
    // out yet, and blocks 2 and 3 have not even been scored. All three are
    // still pending work. The old implementation collapsed the whole
    // scoring batch to 1 here.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return in_callback; });
  }
  EXPECT_EQ(batcher.pending_blocks(), 3);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  flusher.join();
  EXPECT_EQ(batcher.pending_blocks(), 0);
  EXPECT_EQ(completed, 3);
  batcher.Shutdown();
}

// Property test for the window-score cache prune bound: replaying the same
// overlapping blocks with pruning on and off must hit the cache identically
// (every pruned entry was unreachable), while the pruned cache stays at the
// reachable-window bound. The seed bound total - (context + block) kept a
// dead block-span per session — the size assertion fails against it.
TEST(ServeSessionTest, CachePruneKeepsEveryReachableEntry) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  const TenantStream stream = MakeStream("prune", 181, 400);
  const int64_t k = stream.samples.dim(1);

  SessionManager::Options base;
  base.online.block = 40;   // == model window: consecutive blocks overlap
  base.online.context = 80;
  base.seed_base = 19;

  // With block == context == multiples of the window (40), a completed block
  // at stream position `total` leaves reachable keys {total-80, total-40}.
  const int64_t max_reachable = base.online.context / 40;

  auto run = [&](bool prune, std::vector<int64_t>* hits_per_block,
                 std::vector<float>* all_scores, int64_t* max_cached) {
    SessionManager::Options options = base;
    options.prune_window_cache = prune;
    SessionManager sessions(model, options);
    std::vector<float> sample(static_cast<size_t>(k));
    *max_cached = 0;
    for (int64_t l = 0; l < 400; ++l) {
      std::copy_n(stream.samples.data() + l * k, k, sample.begin());
      BlockRequest request;
      if (!sessions.Append("prune", sample, &request)) continue;
      int64_t hits = 0;
      for (uint8_t h : request.hit) hits += h;
      hits_per_block->push_back(hits);
      std::vector<BlockRequest> batch;
      batch.push_back(std::move(request));
      const std::vector<DetectionResult> results = serve::ScoreBlocks(&batch);
      for (float s : results[0].scores) all_scores->push_back(s);
      sessions.CompleteBlock(batch[0]);
      *max_cached = std::max(*max_cached, sessions.cached_window_scores());
    }
  };

  std::vector<int64_t> pruned_hits, unbounded_hits;
  std::vector<float> pruned_scores, unbounded_scores;
  int64_t pruned_max = 0, unbounded_max = 0;
  run(true, &pruned_hits, &pruned_scores, &pruned_max);
  run(false, &unbounded_hits, &unbounded_scores, &unbounded_max);

  ASSERT_GT(pruned_hits.size(), 3u);
  EXPECT_EQ(pruned_hits, unbounded_hits);      // no reachable entry was pruned
  EXPECT_EQ(pruned_scores, unbounded_scores);  // and scores are bitwise equal
  int64_t total_hits = 0;
  for (int64_t h : pruned_hits) total_hits += h;
  EXPECT_GT(total_hits, 0);  // overlap actually exercised the cache
  EXPECT_LE(pruned_max, max_reachable);  // fails at the old off-by-block bound
  EXPECT_GT(unbounded_max, max_reachable);  // unbounded cache really grows
}

// Pin: a session evicted under model A and rehydrated after a hot swap to
// model B keeps A's normalization statistics. The rehydrated stream must
// continue bitwise as if never evicted — re-normalizing mid-stream with B's
// stats would silently shift every subsequent window.
TEST(ServeSessionTest, RehydrateAfterHotSwapKeepsOldNormalization) {
  std::shared_ptr<const ModelEntry> model_a = SharedModel();
  // Same detector, different training-history statistics: the swapped-in
  // model normalizes identical raw samples differently.
  auto model_b = std::make_shared<ModelEntry>(*model_a);
  model_b->version = 2;
  for (float& m : model_b->stats.max) m *= 2.0f;

  const TenantStream stream = MakeStream("swap-rehy", 191, 100);
  const int64_t k = stream.samples.dim(1);
  std::vector<float> sample(static_cast<size_t>(k));

  SessionManager::Options options;
  options.online.block = 50;
  options.online.context = 50;
  options.max_resident = 1;
  options.seed_base = 37;
  SessionManager sessions(model_a, options);

  auto feed = [&](const std::string& tenant, int64_t begin, int64_t end,
                  OnlineDetector::ReadyBlock* out) {
    for (int64_t l = begin; l < end; ++l) {
      std::copy_n(stream.samples.data() + l * k, k, sample.begin());
      BlockRequest request;
      if (sessions.Append(tenant, sample, &request)) {
        *out = std::move(request.ready);
        sessions.CompleteBlock(request);
      }
    }
  };

  OnlineDetector::ReadyBlock unused;
  feed("victim", 0, 30, &unused);      // mid-block, idle: evictable
  feed("intruder", 0, 1, &unused);     // max_resident=1: evicts "victim"
  EXPECT_EQ(sessions.stashed_sessions(), 1);
  sessions.SwapModel(model_b);
  OnlineDetector::ReadyBlock rehydrated;
  feed("victim", 30, 60, &rehydrated);  // rehydrates under model B
  ASSERT_GT(rehydrated.series.numel(), 0);

  // Reference: the same stream through A's normalization, never evicted.
  OnlineDetector reference(nullptr, options.online);
  reference.SetNormalization(model_a->stats);
  OnlineDetector::ReadyBlock expected;
  for (int64_t l = 0; l < 60; ++l) {
    std::copy_n(stream.samples.data() + l * k, k, sample.begin());
    OnlineDetector::ReadyBlock ready;
    if (reference.AppendBuffered(sample, &ready)) expected = std::move(ready);
  }
  ASSERT_EQ(rehydrated.series.numel(), expected.series.numel());
  EXPECT_TRUE(std::equal(rehydrated.series.data(),
                         rehydrated.series.data() + rehydrated.series.numel(),
                         expected.series.data()));

  // Sanity that the pin means something: B's stats normalize differently.
  OnlineDetector other(nullptr, options.online);
  other.SetNormalization(model_b->stats);
  OnlineDetector::ReadyBlock with_b;
  for (int64_t l = 0; l < 60; ++l) {
    std::copy_n(stream.samples.data() + l * k, k, sample.begin());
    OnlineDetector::ReadyBlock ready;
    if (other.AppendBuffered(sample, &ready)) with_b = std::move(ready);
  }
  EXPECT_FALSE(std::equal(rehydrated.series.data(),
                          rehydrated.series.data() + rehydrated.series.numel(),
                          with_b.series.data()));
}

// The Zipf load generator end to end (small scale): the run completes, the
// schedule touches many tenants, churn shows up in the stats, and two
// same-seed runs produce bitwise-identical score streams.
TEST(ServeLoadTest, ZipfLoadIsDeterministicWithChurn) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  serve::LoadConfig load;
  load.num_tenants = 60;
  load.total_samples = 6000;
  load.seed = 5;
  load.zipf_exponent = 1.1;
  load.drain_every = 512;
  load.stream.missing_rate = 0.05;
  load.stream.gap_rate = 0.002;
  load.stream.drift_rate = 0.001f;
  load.stream.shift_rate = 0.002;
  load.collect_scores = true;

  StreamServer::Options options;
  options.num_workers = 1;  // determinism: single ingest order
  options.session.online.block = 40;
  options.session.online.context = 80;
  options.session.max_resident = 8;
  options.session.max_stashed = 16;
  options.session.seed_base = 5;
  options.batch.max_batch_windows = 1 << 30;  // flush only at drain points
  options.batch.flush_window_seconds = 3600.0;

  const serve::LoadStats first = serve::ReplayLoad(model, load, options);
  EXPECT_GT(first.tenants, 10);
  EXPECT_GT(first.alerts, 0);
  EXPECT_GT(first.missing_filled, 0);
  EXPECT_GT(first.sessions_evicted, 0);
  EXPECT_GT(first.stash_evictions, 0);
  EXPECT_GT(first.cache_hits + first.cache_misses, 0);
  EXPECT_GT(first.tenant_p99.max, 0.0);

  const serve::LoadStats second = serve::ReplayLoad(model, load, options);
  EXPECT_EQ(first.scores, second.scores);
  EXPECT_EQ(first.alerts, second.alerts);
  EXPECT_EQ(first.cache_hits, second.cache_hits);
  EXPECT_EQ(first.sessions_evicted, second.sessions_evicted);
  EXPECT_EQ(first.stash_evictions, second.stash_evictions);
}

// The degradation ladder's core contract: a degraded score is a pure
// function of (content, seed, degrade level) — deterministic across calls —
// and each ladder rung actually changes the chain (distinct outputs).
TEST(ServeDegradeTest, DegradedScoresAreDeterministicPerLevel) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  const ImDiffusionDetector& detector = *model->detector;
  // Ladder rungs are strictly shorter chains (tiny config: 6 steps, vote 4).
  EXPECT_GT(detector.ChainStartForDegradeLevel(0),
            detector.ChainStartForDegradeLevel(1));
  EXPECT_GT(detector.ChainStartForDegradeLevel(1),
            detector.ChainStartForDegradeLevel(2));
  EXPECT_EQ(detector.ChainStartForDegradeLevel(2),
            detector.ChainStartForDegradeLevel(7));  // ladder bottoms out

  const TenantStream stream = MakeStream("degrade", 91, 140);
  const Tensor series = ApplyMinMax(stream.samples, model->stats);
  const ImDiffusionDetector::WindowPlan plan = detector.PlanWindows(series);
  std::vector<uint64_t> seeds;
  for (int64_t i = 0; i < plan.windows.dim(0); ++i) {
    seeds.push_back(MixSeed(55, static_cast<uint64_t>(i)));
  }

  auto score = [&](int level) {
    return detector.ScoreWindowBatch(plan.windows, seeds, level);
  };
  for (int level : {0, 1, 2}) {
    const auto a = score(level);
    const auto b = score(level);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].step_errors, b[i].step_errors)
          << "level " << level << " window " << i;
    }
  }
  // Distinct rungs score distinct chains (stochastic sampling draws differ).
  EXPECT_NE(score(0)[0].step_errors, score(1)[0].step_errors);
  EXPECT_NE(score(1)[0].step_errors, score(2)[0].step_errors);

  // End-to-end RunSeeded carries the level with the same determinism.
  EXPECT_EQ(detector.RunSeeded(series, 9, /*degrade_level=*/1).scores,
            detector.RunSeeded(series, 9, /*degrade_level=*/1).scores);
  EXPECT_NE(detector.RunSeeded(series, 9, /*degrade_level=*/1).scores,
            detector.RunSeeded(series, 9).scores);
}

// Served deadline degradation under the keyed chaos trigger: every block
// degrades (probability 1), the result is tagged, bitwise-reproducible
// across runs, and equal to a serial replay pinned at the same ladder rung.
TEST(ServeDegradeTest, DeadlineDegradationIsDeterministicAndTagged) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  FaultScope faults("serve.deadline:1", 99);
  StreamServer::Options options;
  options.num_workers = 1;
  options.session.online.block = 50;
  options.session.online.context = 50;
  options.session.seed_base = 23;
  options.batch.flush_window_seconds = 0.002;
  const std::vector<TenantStream> streams = {MakeStream("ddl-a", 121, 150),
                                             MakeStream("ddl-b", 122, 150)};

  const int64_t degraded_before = CounterValue("serve.degraded_blocks");
  const serve::ReplayStats first =
      serve::ReplayThroughServer(model, streams, options);
  const int64_t degraded_first =
      CounterValue("serve.degraded_blocks") - degraded_before;
  EXPECT_EQ(degraded_first, first.alerts);  // every block degraded
  EXPECT_EQ(first.degraded_alerts, first.alerts);

  const serve::ReplayStats second =
      serve::ReplayThroughServer(model, streams, options);
  EXPECT_EQ(first.scores, second.scores);  // bitwise-reproducible chaos
  EXPECT_EQ(CounterValue("serve.degraded_blocks") - degraded_before,
            2 * degraded_first);

  // The ladder bottom (level 2) scored serially is the exact reference.
  for (const TenantStream& stream : streams) {
    EXPECT_EQ(serve::ReplaySerial(*model, options.session.online,
                                  options.session.seed_base, stream,
                                  /*degrade_level=*/2),
              first.scores.at(stream.tenant))
        << stream.tenant;
  }
}

// force_precision pins every block to a reduced precision: blocks are tagged
// end-to-end, the run is bitwise reproducible, it matches a serial replay
// pinned at the same rung — and reduced-precision scores never enter the
// window-score cache (the cache is an fp32-only contract).
TEST(ServePrecisionTest, ForcedPrecisionPinsTagsAndSkipsCache) {
  // The fp32 phase below must really score at fp32 to differ from the
  // forced-int8 phase; neutralize any IMDIFF_PRECISION override (the
  // forced-precision CI legs) for the duration of the test.
  ScopedPrecisionOverrideClear no_override;
  std::shared_ptr<const ModelEntry> model = SharedModel();
  StreamServer::Options options;
  options.num_workers = 1;
  options.session.online.block = 50;
  options.session.online.context = 50;
  options.session.seed_base = 37;
  options.batch.flush_window_seconds = 0.002;
  // Two tenants with identical content: at fp32 the second tenant's windows
  // hit the shared window-score cache.
  const std::vector<TenantStream> streams = {MakeStream("pin-a", 161, 200),
                                             MakeStream("pin-b", 161, 200)};
  const int64_t hits_before = CounterValue("serve.cache_hits");
  const serve::ReplayStats fp32_run =
      serve::ReplayThroughServer(model, streams, options);
  EXPECT_GT(CounterValue("serve.cache_hits"), hits_before);
  EXPECT_EQ(fp32_run.precision_dropped_alerts, 0);

  options.force_precision = static_cast<int>(Precision::kInt8);
  const int64_t hits_fp32 = CounterValue("serve.cache_hits");
  const int64_t drops_before = CounterValue("serve.precision_drops");
  const serve::ReplayStats first =
      serve::ReplayThroughServer(model, streams, options);
  // Identical windows recur, but nothing was cached and nothing hit.
  EXPECT_EQ(CounterValue("serve.cache_hits"), hits_fp32);
  EXPECT_EQ(first.precision_dropped_alerts, first.alerts);
  EXPECT_EQ(CounterValue("serve.precision_drops") - drops_before,
            first.alerts);
  // Pinned rung, seeded noise: a second run reproduces every bit, and the
  // serial replay pinned at (level 0, int8) is the exact reference.
  const serve::ReplayStats second =
      serve::ReplayThroughServer(model, streams, options);
  EXPECT_EQ(first.scores, second.scores);
  for (const TenantStream& stream : streams) {
    EXPECT_EQ(serve::ReplaySerial(*model, options.session.online,
                                  options.session.seed_base, stream,
                                  /*degrade_level=*/0, Precision::kInt8),
              first.scores.at(stream.tenant))
        << stream.tenant;
  }
  EXPECT_NE(first.scores.at("pin-a"), fp32_run.scores.at("pin-a"));
}

// The keyed "serve.precision" chaos point drops every block to int8
// (probability 1): tagged, bitwise-reproducible, equal to the serial replay
// pinned at the same precision with the chain untouched.
TEST(ServePrecisionTest, PrecisionChaosIsDeterministicAndTagged) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  FaultScope faults("serve.precision:1", 77);
  StreamServer::Options options;
  options.num_workers = 1;
  options.session.online.block = 50;
  options.session.online.context = 50;
  options.session.seed_base = 41;
  options.batch.flush_window_seconds = 0.002;
  const std::vector<TenantStream> streams = {MakeStream("chaos-a", 171, 150),
                                             MakeStream("chaos-b", 172, 150)};

  const serve::ReplayStats first =
      serve::ReplayThroughServer(model, streams, options);
  EXPECT_EQ(first.precision_dropped_alerts, first.alerts);
  EXPECT_EQ(first.degraded_alerts, 0);  // precision axis only — full chain
  const serve::ReplayStats second =
      serve::ReplayThroughServer(model, streams, options);
  EXPECT_EQ(first.scores, second.scores);
  for (const TenantStream& stream : streams) {
    EXPECT_EQ(serve::ReplaySerial(*model, options.session.online,
                                  options.session.seed_base, stream,
                                  /*degrade_level=*/0, Precision::kInt8),
              first.scores.at(stream.tenant))
        << stream.tenant;
  }
}

// Mild deadline pressure drops precision before it truncates the chain: an
// overshoot within the bf16 speedup credit scores at (level 0, bf16) — vote
// diversity is spent only after both precision rungs.
TEST(ServePrecisionTest, DeadlinePressureDropsPrecisionBeforeSteps) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  Histogram* batch_score =
      MetricsRegistry::Global().GetHistogram("serve.batch_score_seconds");
  batch_score->Reset();
  // p90 of 6s against a 5s deadline: over = 1.2, inside the bf16 credit.
  batch_score->Record(6.0);

  StreamServer::Options options;
  options.num_workers = 1;
  options.deadline_seconds = 5.0;
  options.session.online.block = 50;
  options.session.online.context = 50;
  options.session.seed_base = 43;
  options.batch.flush_window_seconds = 0.002;

  std::mutex mu;
  std::vector<std::pair<int, Precision>> rungs;
  StreamServer server(model, options,
                      [&](const StreamServer::ScoredBlock& scored) {
                        std::lock_guard<std::mutex> lock(mu);
                        rungs.emplace_back(scored.degrade_level,
                                           scored.precision);
                      });
  const TenantStream stream = MakeStream("pressure", 181, 50);
  const int64_t k = stream.samples.dim(1);
  std::vector<float> sample(static_cast<size_t>(k));
  for (int64_t l = 0; l < 50; ++l) {
    std::copy_n(stream.samples.data() + l * k, k, sample.begin());
    while (!server.Submit("pressure", sample)) std::this_thread::yield();
  }
  server.Drain();
  server.Shutdown();
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(rungs.size(), 1u);
    EXPECT_EQ(rungs[0].first, 0);  // chain untouched
    EXPECT_EQ(rungs[0].second, Precision::kBf16);
  }
  batch_score->Reset();
}

// A failed session rehydrate (corrupt/lost stash) rebuilds the session from
// the live stream: the replay completes, later blocks still score, and the
// failure is counted — no crash, no wedged tenant.
TEST(ServeFaultTest, RehydrateFailureRebuildsSessionFromStream) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  FaultScope faults("session.rehydrate:#1", 7);
  StreamServer::Options options;
  options.num_workers = 1;
  options.session.online.block = 50;
  options.session.online.context = 50;
  options.session.max_resident = 1;  // every tenant switch evicts
  options.session.seed_base = 29;
  options.batch.flush_window_seconds = 0.002;
  const int64_t failures_before = CounterValue("serve.rehydrate_failures");
  const serve::ReplayStats served = serve::ReplayThroughServer(
      model, {MakeStream("rehy-a", 131, 150), MakeStream("rehy-b", 132, 150)},
      options);
  EXPECT_EQ(CounterValue("serve.rehydrate_failures") - failures_before, 1);
  EXPECT_GT(served.alerts, 0);  // the rebuilt session kept emitting blocks
}

// Bitwise-neutral faults (arena fallback, forced flushes, slow pool tasks)
// perturb timing and batch composition but must not perturb a single score:
// the served streams still match the fault-free serial replay exactly.
TEST(ServeFaultTest, BitwiseNeutralFaultsKeepServedMatchingSerial) {
  FaultScope faults(
      "arena.alloc:0.05,batcher.flush_timeout:0.5,pool.slow_task:0.01", 5);
  StreamServer::Options options;
  options.session.online.block = 50;
  options.session.online.context = 50;
  options.session.seed_base = 31;
  options.batch.flush_window_seconds = 0.002;
  const int64_t fallbacks_before = CounterValue("arena.fallback");
  const int64_t flushes_before = CounterValue("serve.flush_timeouts");
  ExpectServedMatchesSerial({MakeStream("neutral-a", 141, 150),
                             MakeStream("neutral-b", 142, 150)},
                            options);
  // The faults actually exercised their degradation paths.
  EXPECT_GT(CounterValue("arena.fallback"), fallbacks_before);
  EXPECT_GT(CounterValue("serve.flush_timeouts"), flushes_before);
}

// Cross-process session continuity (DESIGN.md §16): a session exported from
// one server, shipped as the wire byte format resharding moves use, and
// imported into a *fresh* server (a stand-in for another process sharing the
// published model) continues scoring bitwise-identically to one
// uninterrupted serial replay.
TEST(ServeStateTest, SessionByteRoundTripContinuesAcrossServersBitwise) {
  std::shared_ptr<const ModelEntry> model = SharedModel();
  StreamServer::Options options;
  options.num_workers = 1;
  options.queue_capacity = 4096;
  options.session.online.block = 50;
  options.session.online.context = 50;
  options.session.seed_base = 9;
  options.batch.max_batch_windows = 1 << 20;
  options.batch.flush_window_seconds = 1e6;  // flush only at Drain

  const TenantStream stream = MakeStream("roundtrip", 83, 150);
  const int64_t k = stream.samples.dim(1);
  std::vector<float> sample(static_cast<size_t>(k));

  std::mutex mu;
  std::vector<float> assembled(150, 0.0f);
  auto on_block = [&](const StreamServer::ScoredBlock& block) {
    std::lock_guard<std::mutex> lock(mu);
    for (size_t i = 0; i < block.alert.scores.size(); ++i) {
      assembled[static_cast<size_t>(block.alert.start) + i] =
          block.alert.scores[i];
    }
  };
  auto submit_range = [&](StreamServer& server, int64_t begin, int64_t end) {
    for (int64_t l = begin; l < end; ++l) {
      std::copy_n(stream.samples.data() + l * k, k, sample.begin());
      ASSERT_TRUE(server.Submit("roundtrip", sample, {}));
    }
  };

  std::vector<uint8_t> bytes;
  {
    StreamServer first(model, options, on_block);
    submit_range(first, 0, 70);
    first.Drain();
    serve::SessionSnapshot snapshot;
    ASSERT_TRUE(first.sessions().ExportSession("roundtrip", &snapshot));
    bytes = serve::SerializeSession(snapshot);
    first.Shutdown();
  }

  // The byte format is self-consistent (serialize . deserialize = identity)
  // and rejects truncation instead of half-applying it.
  serve::SessionSnapshot decoded;
  ASSERT_TRUE(serve::DeserializeSession(bytes, &decoded));
  EXPECT_EQ(serve::SerializeSession(decoded), bytes);
  serve::SessionSnapshot rejected;
  EXPECT_FALSE(serve::DeserializeSession(
      std::vector<uint8_t>(bytes.begin(), bytes.end() - 1), &rejected));

  {
    StreamServer second(model, options, on_block);
    second.sessions().ImportSession("roundtrip", decoded);
    submit_range(second, 70, 150);
    second.Drain();
    second.Shutdown();
  }

  const std::vector<float> want = serve::ReplaySerial(
      *model, options.session.online, options.session.seed_base, stream);
  EXPECT_EQ(assembled, want);
}

}  // namespace
}  // namespace imdiff
