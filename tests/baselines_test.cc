#include <cmath>

#include <gtest/gtest.h>

#include "baselines/iforest.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "metrics/classification.h"

namespace imdiff {
namespace {

// Shared tiny dataset with one obvious level-shift anomaly.
MtsDataset TinyDataset(uint64_t seed) {
  SyntheticConfig signal;
  signal.length = 500;
  signal.dims = 3;
  signal.noise_sigma = 0.02f;
  signal.burst_rate = 0.0;
  signal.bump_rate = 0.0;
  signal.ar_sigma = 0.01f;
  Rng rng(seed);
  Tensor full = GenerateCleanSeries(signal, rng);
  MtsDataset ds;
  ds.name = "tiny";
  Tensor train({250, 3});
  Tensor test({250, 3});
  std::copy_n(full.data(), 250 * 3, train.mutable_data());
  std::copy_n(full.data() + 250 * 3, 250 * 3, test.mutable_data());
  ds.train = std::move(train);
  ds.test = std::move(test);
  for (int64_t t = 120; t < 160; ++t) {
    for (int64_t k = 0; k < 3; ++k) {
      ds.test.mutable_data()[t * 3 + k] += 4.0f;
    }
  }
  ds.test_labels.assign(250, 0);
  for (int64_t t = 120; t < 160; ++t) ds.test_labels[t] = 1;
  return ds;
}

TEST(IsolationForestTest, SeparatesObviousOutliers) {
  IsolationForestConfig config;
  config.num_trees = 50;
  IsolationForest forest(config);
  MtsDataset ds = NormalizeDataset(TinyDataset(1));
  forest.Fit(ds.train);
  DetectionResult result = forest.Run(ds.test);
  // Mean score inside the anomaly clearly exceeds the normal mean.
  double anomaly_mean = 0, normal_mean = 0;
  int na = 0, nn = 0;
  for (size_t i = 0; i < result.scores.size(); ++i) {
    if (ds.test_labels[i]) {
      anomaly_mean += result.scores[i];
      ++na;
    } else {
      normal_mean += result.scores[i];
      ++nn;
    }
  }
  EXPECT_GT(anomaly_mean / na, normal_mean / nn + 0.05);
}

TEST(IsolationForestTest, ScoresInUnitRange) {
  IsolationForestConfig config;
  IsolationForest forest(config);
  MtsDataset ds = NormalizeDataset(TinyDataset(2));
  forest.Fit(ds.train);
  DetectionResult result = forest.Run(ds.test);
  for (float s : result.scores) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
}

TEST(IsolationForestTest, DeterministicGivenSeed) {
  MtsDataset ds = NormalizeDataset(TinyDataset(3));
  IsolationForestConfig config;
  config.seed = 9;
  IsolationForest a(config);
  IsolationForest b(config);
  a.Fit(ds.train);
  b.Fit(ds.train);
  DetectionResult ra = a.Run(ds.test);
  DetectionResult rb = b.Run(ds.test);
  for (size_t i = 0; i < ra.scores.size(); ++i) {
    EXPECT_EQ(ra.scores[i], rb.scores[i]);
  }
}

// Every baseline must fit, run, emit a full finite score series, and give
// anomalies a higher mean score than normal data on an easy task.
class BaselineSmokeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineSmokeTest, FitRunAndSeparate) {
  MtsDataset ds = NormalizeDataset(TinyDataset(4));
  auto detector = MakeDetector(GetParam(), 11, SpeedProfile::kFast);
  ASSERT_NE(detector, nullptr);
  EXPECT_EQ(detector->name(), GetParam());
  detector->Fit(ds.train);
  DetectionResult result = detector->Run(ds.test);
  ASSERT_EQ(result.scores.size(), ds.test_labels.size());
  for (float s : result.scores) EXPECT_TRUE(std::isfinite(s));
  BinaryMetrics best;
  BestF1Threshold(result.scores, ds.test_labels, 32, &best);
  // Easy 4-sigma shift: every method should reach a usable F1.
  EXPECT_GT(best.f1, 0.5) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineSmokeTest,
    ::testing::Values("IForest", "BeatGAN", "LSTM-AD", "InterFusion",
                      "OmniAnomaly", "GDN", "MAD-GAN", "MTAD-GAT", "MSCRED",
                      "TranAD"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace imdiff
