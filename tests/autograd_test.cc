#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "nn/autograd.h"
#include "utils/rng.h"

namespace imdiff {
namespace nn {
namespace {

// Central-difference numerical gradient of a scalar function of one tensor
// input, compared against the autograd gradient.
void CheckGradient(const std::function<Var(const Var&)>& f, const Shape& shape,
                   uint64_t seed, float tol = 2e-2f) {
  Rng rng(seed);
  Tensor x0 = Tensor::Randn(shape, rng, 0.5f);
  Var x(x0.Clone(), /*requires_grad=*/true);
  Var loss = SumV(f(x));
  Backward(loss);
  const Tensor& grad = x.grad();
  const float eps = 1e-3f;
  for (int64_t i = 0; i < x0.numel(); ++i) {
    Tensor plus = x0.Clone();
    plus.mutable_data()[i] += eps;
    Tensor minus = x0.Clone();
    minus.mutable_data()[i] -= eps;
    const double fp = SumV(f(Var(plus))).value().flat(0);
    const double fm = SumV(f(Var(minus))).value().flat(0);
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(grad.flat(i), numeric, tol)
        << "coordinate " << i << " of " << ShapeToString(shape);
  }
}

TEST(AutogradTest, AddGradient) {
  CheckGradient([](const Var& x) { return Add(x, x); }, {2, 3}, 1);
}

TEST(AutogradTest, SubGradient) {
  Rng rng(2);
  Tensor c = Tensor::Randn({2, 3}, rng);
  CheckGradient([&](const Var& x) { return Sub(x, Var(c)); }, {2, 3}, 2);
}

TEST(AutogradTest, MulGradient) {
  CheckGradient([](const Var& x) { return Mul(x, x); }, {4}, 3);
}

TEST(AutogradTest, BroadcastAddGradient) {
  // Gradient must reduce over the broadcast axis.
  Rng rng(4);
  Tensor big = Tensor::Randn({3, 4}, rng);
  CheckGradient([&](const Var& x) { return Add(Var(big), x); }, {4}, 4);
}

TEST(AutogradTest, ScaleNegAddScalar) {
  CheckGradient(
      [](const Var& x) { return AddScalarV(Neg(ScaleV(x, 3.0f)), 2.0f); },
      {5}, 5);
}

TEST(AutogradTest, MulConstGradient) {
  Rng rng(6);
  Tensor c = Tensor::Randn({2, 3}, rng);
  CheckGradient([&](const Var& x) { return MulConst(x, c); }, {2, 3}, 6);
}

TEST(AutogradTest, MatMulGradientAllTransposeVariants) {
  Rng rng(7);
  Tensor w = Tensor::Randn({3, 4}, rng);
  CheckGradient([&](const Var& x) { return MatMulV(x, Var(w)); }, {2, 3}, 7);
  Tensor wt = Tensor::Randn({4, 3}, rng);
  CheckGradient([&](const Var& x) { return MatMulV(x, Var(wt), false, true); },
                {2, 3}, 8);
  CheckGradient([&](const Var& x) { return MatMulV(x, Var(w), true, false); },
                {3, 2}, 9);
}

TEST(AutogradTest, MatMulWeightGradient) {
  Rng rng(10);
  Tensor x = Tensor::Randn({2, 3}, rng);
  CheckGradient([&](const Var& w) { return MatMulV(Var(x), w); }, {3, 4}, 10);
}

TEST(AutogradTest, BatchedMatMulGradient) {
  Rng rng(11);
  Tensor b = Tensor::Randn({2, 3, 2}, rng);
  CheckGradient([&](const Var& x) { return BatchedMatMulV(x, Var(b)); },
                {2, 2, 3}, 11);
  CheckGradient(
      [&](const Var& x) { return BatchedMatMulV(x, Var(b), true, false); },
      {2, 3, 2}, 12);
}

TEST(AutogradTest, ReshapePermuteGradient) {
  CheckGradient(
      [](const Var& x) {
        return PermuteV(ReshapeV(x, {2, 3}), {1, 0});
      },
      {6}, 13);
}

TEST(AutogradTest, ConcatSliceGradient) {
  CheckGradient(
      [](const Var& x) {
        Var a = SliceV(x, 0, 0, 2);
        Var b = SliceV(x, 0, 2, 2);
        return ConcatV({Mul(a, a), ScaleV(b, 2.0f)}, 0);
      },
      {4, 2}, 14);
}

TEST(AutogradTest, GatherRowsGradient) {
  // Repeated indices must accumulate.
  Rng rng(15);
  Tensor table0 = Tensor::Randn({3, 2}, rng);
  Var table(table0.Clone(), true);
  Var out = GatherRowsV(table, {0, 2, 0});
  Backward(SumV(out));
  EXPECT_NEAR(table.grad().at(0, 0), 2.0f, 1e-5);
  EXPECT_NEAR(table.grad().at(1, 0), 0.0f, 1e-5);
  EXPECT_NEAR(table.grad().at(2, 1), 1.0f, 1e-5);
}

// Parameterized gradient check over every unary activation.
using UnaryFn = Var (*)(const Var&);
class UnaryGradTest
    : public ::testing::TestWithParam<std::pair<const char*, UnaryFn>> {};

TEST_P(UnaryGradTest, MatchesNumerical) {
  UnaryFn fn = GetParam().second;
  CheckGradient([fn](const Var& x) { return fn(x); }, {3, 4},
                static_cast<uint64_t>(std::hash<std::string>{}(
                    GetParam().first)) % 1000 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Activations, UnaryGradTest,
    ::testing::Values(std::make_pair("relu", &ReluV),
                      std::make_pair("gelu", &GeluV),
                      std::make_pair("silu", &SiluV),
                      std::make_pair("tanh", &TanhV),
                      std::make_pair("sigmoid", &SigmoidV),
                      std::make_pair("exp", &ExpV),
                      std::make_pair("softplus", &SoftplusV),
                      std::make_pair("softmax", &SoftmaxV)),
    [](const ::testing::TestParamInfo<std::pair<const char*, UnaryFn>>& info) {
      return info.param.first;
    });

TEST(AutogradTest, LayerNormGradient) {
  Rng rng(20);
  Tensor gamma = Tensor::Randn({4}, rng);
  Tensor beta = Tensor::Randn({4}, rng);
  CheckGradient(
      [&](const Var& x) {
        return LayerNormV(x, Var(gamma), Var(beta));
      },
      {3, 4}, 20, 5e-2f);
}

TEST(AutogradTest, LayerNormParamGradients) {
  Rng rng(21);
  Tensor x = Tensor::Randn({3, 4}, rng);
  Var gamma(Tensor::Full({4}, 1.0f), true);
  Var beta(Tensor::Zeros({4}), true);
  Backward(SumV(LayerNormV(Var(x), gamma, beta)));
  // d/dbeta of sum = number of rows for each column.
  for (int64_t j = 0; j < 4; ++j) EXPECT_NEAR(beta.grad().flat(j), 3.0f, 1e-4);
  EXPECT_TRUE(gamma.has_grad());
}

TEST(AutogradTest, MseLossGradient) {
  Rng rng(22);
  Tensor target = Tensor::Randn({2, 3}, rng);
  CheckGradient([&](const Var& x) { return MseLossV(x, target); }, {2, 3}, 22);
}

TEST(AutogradTest, MaskedMseGradientZeroOutsideMask) {
  Rng rng(23);
  Tensor target = Tensor::Randn({2, 2}, rng);
  Tensor mask({2, 2}, {1, 0, 0, 1});
  Tensor x0 = Tensor::Randn({2, 2}, rng);
  Var x(x0, true);
  Backward(MaskedMseLossV(x, target, mask));
  EXPECT_NE(x.grad().flat(0), 0.0f);
  EXPECT_EQ(x.grad().flat(1), 0.0f);
  EXPECT_EQ(x.grad().flat(2), 0.0f);
  EXPECT_NE(x.grad().flat(3), 0.0f);
}

TEST(AutogradTest, GradientAccumulatesAcrossUses) {
  Var x(Tensor::Full({2}, 3.0f), true);
  // loss = sum(x) + sum(2x) -> d/dx = 3.
  Var loss = Add(SumV(x), SumV(ScaleV(x, 2.0f)));
  Backward(loss);
  EXPECT_NEAR(x.grad().flat(0), 3.0f, 1e-5);
}

TEST(AutogradTest, ClearGradResets) {
  Var x(Tensor::Full({2}, 1.0f), true);
  Backward(SumV(x));
  EXPECT_TRUE(x.has_grad());
  x.ClearGrad();
  EXPECT_FALSE(x.has_grad());
  Backward(SumV(ScaleV(x, 2.0f)));
  EXPECT_NEAR(x.grad().flat(0), 2.0f, 1e-5);
}

TEST(AutogradTest, NoGradForConstants) {
  Var x(Tensor::Full({2}, 1.0f), /*requires_grad=*/false);
  Var y = ScaleV(x, 2.0f);
  Backward(SumV(y));
  EXPECT_FALSE(x.has_grad());
}

TEST(AutogradTest, DeepChainGradient) {
  // 30 chained ops; gradient should be exact product of scales.
  Var x(Tensor::Full({1}, 1.0f), true);
  Var y = x;
  for (int i = 0; i < 30; ++i) y = ScaleV(y, 1.1f);
  Backward(SumV(y));
  EXPECT_NEAR(x.grad().flat(0), std::pow(1.1f, 30.0f), 1e-2);
}

TEST(AutogradTest, DropoutZeroProbabilityIsIdentity) {
  Rng rng(30);
  Tensor x0 = Tensor::Randn({4, 4}, rng);
  Var x(x0, true);
  Var y = DropoutV(x, 0.0f, rng);
  for (int64_t i = 0; i < x0.numel(); ++i) {
    EXPECT_EQ(y.value().flat(i), x0.flat(i));
  }
}

TEST(AutogradTest, DropoutScalesSurvivors) {
  Rng rng(31);
  Tensor x0 = Tensor::Full({1000}, 1.0f);
  Var y = DropoutV(Var(x0), 0.5f, rng);
  int zeros = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    const float v = y.value().flat(i);
    EXPECT_TRUE(v == 0.0f || std::abs(v - 2.0f) < 1e-5);
    zeros += v == 0.0f;
  }
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
}

TEST(AutogradTest, MeanVAndSumVRelate) {
  Rng rng(32);
  Tensor t = Tensor::Randn({5, 4}, rng);
  Var x(t);
  EXPECT_NEAR(SumV(x).value().flat(0) / 20.0f, MeanV(x).value().flat(0), 1e-4);
}

}  // namespace
}  // namespace nn
}  // namespace imdiff
