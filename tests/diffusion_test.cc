#include <cmath>

#include <gtest/gtest.h>

#include "diffusion/ddpm.h"
#include "diffusion/schedule.h"

namespace imdiff {
namespace {

class ScheduleTypeTest : public ::testing::TestWithParam<ScheduleType> {};

TEST_P(ScheduleTypeTest, Invariants) {
  ScheduleConfig config;
  config.type = GetParam();
  config.num_steps = 50;
  NoiseSchedule schedule(config);
  EXPECT_EQ(schedule.num_steps(), 50);
  float prev_bar = 1.0f;
  for (int t = 0; t < 50; ++t) {
    EXPECT_GT(schedule.beta(t), 0.0f);
    EXPECT_LT(schedule.beta(t), 1.0f);
    EXPECT_NEAR(schedule.alpha(t), 1.0f - schedule.beta(t), 1e-6);
    // ᾱ monotonically decreasing in (0, 1].
    EXPECT_LT(schedule.alpha_bar(t), prev_bar + 1e-7);
    EXPECT_GT(schedule.alpha_bar(t), 0.0f);
    prev_bar = schedule.alpha_bar(t);
    // sqrt identities.
    EXPECT_NEAR(schedule.sqrt_alpha_bar(t) * schedule.sqrt_alpha_bar(t),
                schedule.alpha_bar(t), 1e-5);
    EXPECT_NEAR(schedule.sqrt_one_minus_alpha_bar(t) *
                    schedule.sqrt_one_minus_alpha_bar(t),
                1.0f - schedule.alpha_bar(t), 1e-5);
    EXPECT_GE(schedule.posterior_variance(t), 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ScheduleTypeTest,
                         ::testing::Values(ScheduleType::kLinear,
                                           ScheduleType::kQuadratic,
                                           ScheduleType::kCosine),
                         [](const ::testing::TestParamInfo<ScheduleType>& i) {
                           switch (i.param) {
                             case ScheduleType::kLinear:
                               return "Linear";
                             case ScheduleType::kQuadratic:
                               return "Quadratic";
                             case ScheduleType::kCosine:
                               return "Cosine";
                           }
                           return "Unknown";
                         });

TEST(ScheduleTest, LinearEndpoints) {
  ScheduleConfig config;
  config.type = ScheduleType::kLinear;
  config.num_steps = 10;
  config.beta_start = 0.001f;
  config.beta_end = 0.2f;
  NoiseSchedule schedule(config);
  EXPECT_NEAR(schedule.beta(0), 0.001f, 1e-6);
  EXPECT_NEAR(schedule.beta(9), 0.2f, 1e-6);
}

TEST(ScheduleTest, QuadraticSqrtSpacing) {
  ScheduleConfig config;
  config.type = ScheduleType::kQuadratic;
  config.num_steps = 3;
  config.beta_start = 0.01f;
  config.beta_end = 0.09f;
  NoiseSchedule schedule(config);
  // sqrt(beta) evenly spaced: 0.1, 0.2, 0.3.
  EXPECT_NEAR(schedule.beta(0), 0.01f, 1e-5);
  EXPECT_NEAR(schedule.beta(1), 0.04f, 1e-5);
  EXPECT_NEAR(schedule.beta(2), 0.09f, 1e-5);
}

TEST(DdpmTest, QSampleMatchesClosedForm) {
  ScheduleConfig config;
  config.num_steps = 20;
  GaussianDiffusion diffusion(config);
  Rng rng(1);
  Tensor x0 = Tensor::Full({4}, 2.0f);
  Tensor eps = Tensor::Full({4}, 1.0f);
  const int t = 7;
  Tensor xt = diffusion.QSampleWithNoise(x0, t, eps);
  const float a = diffusion.schedule().sqrt_alpha_bar(t);
  const float b = diffusion.schedule().sqrt_one_minus_alpha_bar(t);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(xt.flat(i), a * 2.0f + b * 1.0f, 1e-5);
  }
}

TEST(DdpmTest, QSampleVarianceGrowsWithT) {
  ScheduleConfig config;
  config.num_steps = 50;
  GaussianDiffusion diffusion(config);
  Rng rng(2);
  Tensor x0 = Tensor::Zeros({5000});
  Tensor early = diffusion.QSample(x0, 1, rng, nullptr);
  Tensor late = diffusion.QSample(x0, 49, rng, nullptr);
  auto variance = [](const Tensor& t) {
    double var = 0;
    for (int64_t i = 0; i < t.numel(); ++i) var += t.flat(i) * t.flat(i);
    return var / t.numel();
  };
  EXPECT_LT(variance(early), variance(late));
  // At the final step the signal is almost fully corrupted: variance ~ 1-ᾱ.
  EXPECT_NEAR(variance(late), 1.0 - diffusion.schedule().alpha_bar(49), 0.1);
}

TEST(DdpmTest, PredictX0InvertsQSample) {
  // With the true noise, PredictX0 must exactly recover x0.
  ScheduleConfig config;
  config.num_steps = 30;
  GaussianDiffusion diffusion(config);
  Rng rng(3);
  Tensor x0 = Tensor::Randn({8}, rng);
  for (int t : {0, 10, 29}) {
    Tensor eps;
    Tensor xt = diffusion.QSample(x0, t, rng, &eps);
    Tensor rec = diffusion.PredictX0(xt, eps, t);
    for (int64_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(rec.flat(i), x0.flat(i), 1e-3) << "t=" << t;
    }
  }
}

TEST(DdpmTest, PosteriorMeanFormula) {
  ScheduleConfig config;
  config.num_steps = 10;
  GaussianDiffusion diffusion(config);
  Tensor xt = Tensor::Full({2}, 1.0f);
  Tensor eps = Tensor::Full({2}, 0.5f);
  const int t = 4;
  Tensor mean = diffusion.PosteriorMean(xt, eps, t);
  const NoiseSchedule& s = diffusion.schedule();
  const float expected =
      (1.0f - s.beta(t) / s.sqrt_one_minus_alpha_bar(t) * 0.5f) /
      std::sqrt(s.alpha(t));
  EXPECT_NEAR(mean.flat(0), expected, 1e-5);
}

TEST(DdpmTest, PStepIsDeterministicAtT0) {
  ScheduleConfig config;
  config.num_steps = 10;
  GaussianDiffusion diffusion(config);
  Rng rng1(4);
  Rng rng2(5);
  Tensor xt = Tensor::Full({3}, 0.7f);
  Tensor eps = Tensor::Full({3}, 0.1f);
  Tensor a = diffusion.PStep(xt, eps, 0, rng1);
  Tensor b = diffusion.PStep(xt, eps, 0, rng2);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(a.flat(i), b.flat(i));
}

TEST(DdpmTest, PStepAddsNoiseAboveT0) {
  ScheduleConfig config;
  config.num_steps = 10;
  GaussianDiffusion diffusion(config);
  Rng rng1(6);
  Rng rng2(7);
  Tensor xt = Tensor::Full({64}, 0.7f);
  Tensor eps = Tensor::Full({64}, 0.1f);
  Tensor a = diffusion.PStep(xt, eps, 5, rng1);
  Tensor b = diffusion.PStep(xt, eps, 5, rng2);
  double diff = 0;
  for (int64_t i = 0; i < 64; ++i) diff += std::abs(a.flat(i) - b.flat(i));
  EXPECT_GT(diff, 1e-3);
}

// Full-chain property: denoising with oracle noise recovers a constant signal
// when sampling is deterministic (posterior mean only).
TEST(DdpmTest, OracleReverseChainConverges) {
  ScheduleConfig config;
  config.num_steps = 25;
  config.beta_end = 0.5f;
  GaussianDiffusion diffusion(config);
  Rng rng(8);
  Tensor x0 = Tensor::Full({16}, 0.6f);
  Tensor eps_total = Tensor::Randn({16}, rng);
  // Start from the fully corrupted sample.
  Tensor cur = diffusion.QSampleWithNoise(x0, 24, eps_total);
  for (int t = 24; t >= 0; --t) {
    // Oracle ε̂ consistent with the current state: ε = (x_t - sqrt(ᾱ)x0)/σ.
    const float a = diffusion.schedule().sqrt_alpha_bar(t);
    const float b = diffusion.schedule().sqrt_one_minus_alpha_bar(t);
    Tensor eps_hat(cur.shape());
    for (int64_t i = 0; i < 16; ++i) {
      eps_hat.mutable_data()[i] = (cur.flat(i) - a * x0.flat(i)) / b;
    }
    cur = diffusion.PosteriorMean(cur, eps_hat, t);
  }
  for (int64_t i = 0; i < 16; ++i) EXPECT_NEAR(cur.flat(i), 0.6f, 0.05f);
}

}  // namespace
}  // namespace imdiff
