// Cross-module integration tests: the full evaluation pipeline
// (simulate -> normalize -> fit -> score -> metrics) on micro-sized
// workloads, plus failure-injection checks on the harness contracts.

#include <cmath>

#include <gtest/gtest.h>

#include "core/imdiffusion.h"
#include "eval/runner.h"
#include "metrics/add.h"
#include "metrics/classification.h"
#include "metrics/pot.h"
#include "metrics/range_auc.h"

namespace imdiff {
namespace {

TEST(IntegrationTest, FullPipelineOnMicroBenchmark) {
  MtsDataset dataset = MakeBenchmarkDataset(BenchmarkId::kGcp, 17, 0.15f);
  // Detector with a micro config to keep the test fast.
  ImDiffusionConfig config = FastImDiffusionConfig();
  config.epochs = 4;
  config.schedule.num_steps = 8;
  config.vote_last_steps = 6;
  config.seed = 3;
  ImDiffusionDetector detector(config);
  RunMetrics metrics = EvaluateDetector(detector, dataset);
  EXPECT_GE(metrics.f1, 0.0);
  EXPECT_LE(metrics.f1, 1.0);
  EXPECT_GE(metrics.r_auc_pr, 0.0);
  EXPECT_GT(metrics.fit_seconds, 0.0);
  EXPECT_GT(metrics.points_per_second, 0.0);
}

TEST(IntegrationTest, PotThresholdUsableOnDetectorScores) {
  // OmniAnomaly-style usage: POT threshold from the score distribution.
  MtsDataset dataset = MakeBenchmarkDataset(BenchmarkId::kSmd, 19, 0.15f);
  MtsDataset norm = NormalizeDataset(dataset);
  auto detector = MakeDetector("OmniAnomaly", 5, SpeedProfile::kFast);
  detector->Fit(norm.train);
  DetectionResult result = detector->Run(norm.test);
  PotConfig pot;
  pot.initial_quantile = 0.95;
  const float threshold = PotThreshold(result.scores, pot);
  EXPECT_TRUE(std::isfinite(threshold));
  auto preds = ThresholdScores(result.scores, threshold);
  // POT targets a small exceedance probability: few positives.
  int64_t positives = 0;
  for (uint8_t p : preds) positives += p;
  EXPECT_LT(positives, static_cast<int64_t>(preds.size()) / 4);
}

TEST(IntegrationTest, MetricsConsistentAcrossProtocol) {
  // On scores that perfectly separate, every metric saturates together.
  std::vector<uint8_t> labels(400, 0);
  std::vector<float> scores(400, 0.1f);
  for (int64_t t = 200; t < 230; ++t) {
    labels[static_cast<size_t>(t)] = 1;
    scores[static_cast<size_t>(t)] = 9.0f;
  }
  BinaryMetrics best;
  const float threshold = BestF1Threshold(scores, labels, 64, &best);
  EXPECT_NEAR(best.f1, 1.0, 1e-9);
  EXPECT_EQ(AverageDetectionDelay(labels, ThresholdScores(scores, threshold)),
            0.0);
  EXPECT_GT(RangeAucRoc(scores, labels, 0), 0.99);
}

TEST(IntegrationTest, DetectorsRejectRunBeforeFit) {
  auto detector = MakeDetector("TranAD", 1, SpeedProfile::kFast);
  EXPECT_DEATH(detector->Run(Tensor::Zeros({50, 3})),
               "Fit must be called before Run");
}

TEST(IntegrationTest, ImDiffusionRejectsFeatureMismatch) {
  ImDiffusionConfig config = FastImDiffusionConfig();
  config.epochs = 1;
  config.schedule.num_steps = 4;
  ImDiffusionDetector detector(config);
  Rng rng(1);
  detector.Fit(Tensor::Randn({220, 3}, rng));
  // Test series with a different K must abort loudly, not corrupt memory.
  EXPECT_DEATH(detector.Run(Tensor::Randn({220, 5}, rng)), "check failed");
}

TEST(IntegrationTest, NormalizationUsesTrainStatisticsOnly) {
  MtsDataset dataset;
  dataset.name = "t";
  dataset.train = Tensor({4, 1}, {0, 1, 2, 4});
  dataset.test = Tensor({2, 1}, {8, -4});
  dataset.test_labels = {0, 0};
  MtsDataset norm = NormalizeDataset(dataset);
  // Test values outside the train range clamp to [-1, 2].
  EXPECT_EQ(norm.test.flat(0), 2.0f);
  EXPECT_EQ(norm.test.flat(1), -1.0f);
}

TEST(IntegrationTest, SeedsProduceIndependentRunsButStableAggregates) {
  MtsDataset dataset = MakeBenchmarkDataset(BenchmarkId::kGcp, 23, 0.15f);
  AggregateMetrics agg =
      EvaluateManySeeds("IForest", dataset, 3, SpeedProfile::kFast);
  EXPECT_EQ(agg.num_runs, 3);
  // IForest is nearly deterministic given data; F1 std should be small.
  EXPECT_LT(agg.f1_std, 0.3);
}

}  // namespace
}  // namespace imdiff
