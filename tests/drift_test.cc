#include "metrics/drift.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "utils/rng.h"

namespace imdiff {
namespace {

// True rank of `value` in `sorted` (number of elements <= value).
double ExactRank(const std::vector<double>& sorted, double value) {
  return static_cast<double>(
      std::upper_bound(sorted.begin(), sorted.end(), value) - sorted.begin());
}

std::vector<double> GaussianSamples(uint64_t seed, int n, double mean,
                                    double stddev) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    values.push_back(rng.Normal(mean, stddev));
  }
  return values;
}

TEST(QuantileSketchTest, RankErrorWithinEpsilonBound) {
  const double eps = 0.01;
  const int n = 5000;
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < n; ++i) values.push_back(rng.Uniform());

  QuantileSketch sketch(eps);
  for (double v : values) sketch.Add(v);
  ASSERT_EQ(sketch.count(), n);

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double estimate = sketch.Quantile(q);
    const double rank = ExactRank(sorted, estimate);
    // GK guarantees eps * n rank error; allow a small slack for the midpoint
    // tie-break at the boundaries.
    EXPECT_NEAR(rank, q * n, 2.0 * eps * n) << "q=" << q;
  }
}

TEST(QuantileSketchTest, ExactExtremaAndMean) {
  QuantileSketch sketch(0.02);
  double sum = 0.0;
  for (int i = 100; i >= 1; --i) {
    sketch.Add(static_cast<double>(i));
    sum += i;
  }
  EXPECT_DOUBLE_EQ(sketch.min(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 100.0);
  EXPECT_DOUBLE_EQ(sketch.Mean(), sum / 100.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), sketch.min());
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), sketch.max());
}

TEST(QuantileSketchTest, DeterministicInInsertionSequence) {
  const std::vector<double> values = GaussianSamples(11, 3000, 0.0, 1.0);
  QuantileSketch a(0.01);
  QuantileSketch b(0.01);
  for (double v : values) a.Add(v);
  for (double v : values) b.Add(v);
  for (int i = 0; i <= 20; ++i) {
    const double q = i / 20.0;
    // Bitwise: same insertion sequence, same summary, same answers.
    EXPECT_EQ(a.Quantile(q), b.Quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(a.Rank(0.5), b.Rank(0.5));
}

TEST(QuantileSketchTest, CdfMonotoneAndBounded) {
  QuantileSketch sketch(0.02);
  for (double v : GaussianSamples(3, 2000, 5.0, 2.0)) sketch.Add(v);
  double prev = -1.0;
  for (int i = 0; i <= 40; ++i) {
    const double x = -3.0 + 16.0 * i / 40.0;
    const double c = sketch.Cdf(x);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(sketch.Cdf(sketch.max()), 1.0);
}

TEST(DriftTest, PsiNearZeroForMatchingDistributions) {
  QuantileSketch expected(0.01);
  QuantileSketch actual(0.01);
  for (double v : GaussianSamples(21, 4000, 0.0, 1.0)) expected.Add(v);
  for (double v : GaussianSamples(22, 4000, 0.0, 1.0)) actual.Add(v);
  EXPECT_LT(Psi(expected, actual), 0.05);
}

TEST(DriftTest, PsiLargeForShiftedDistribution) {
  QuantileSketch expected(0.01);
  QuantileSketch shifted(0.01);
  for (double v : GaussianSamples(31, 4000, 0.0, 1.0)) expected.Add(v);
  for (double v : GaussianSamples(32, 4000, 2.0, 1.0)) shifted.Add(v);
  // A two-sigma mean shift is far past the conventional 0.25 "material
  // shift" reading.
  EXPECT_GT(Psi(expected, shifted), 1.0);
}

TEST(DriftTest, PsiEmptySketchIsZero) {
  QuantileSketch empty(0.01);
  QuantileSketch full(0.01);
  for (double v : GaussianSamples(41, 100, 0.0, 1.0)) full.Add(v);
  EXPECT_EQ(Psi(empty, full), 0.0);
  EXPECT_EQ(Psi(full, empty), 0.0);
}

TEST(DriftTest, KsMatchesAnalyticValueForShiftedGaussians) {
  QuantileSketch a(0.005);
  QuantileSketch b(0.005);
  for (double v : GaussianSamples(51, 8000, 0.0, 1.0)) a.Add(v);
  for (double v : GaussianSamples(52, 8000, 1.0, 1.0)) b.Add(v);
  // KS of N(0,1) vs N(1,1) is 2*Phi(0.5) - 1 ~= 0.3829.
  EXPECT_NEAR(KsDistance(a, b), 0.3829, 0.05);
}

TEST(DriftTest, KsNearZeroForMatchingDistributions) {
  QuantileSketch a(0.005);
  QuantileSketch b(0.005);
  for (double v : GaussianSamples(61, 8000, 0.0, 1.0)) a.Add(v);
  for (double v : GaussianSamples(62, 8000, 0.0, 1.0)) b.Add(v);
  EXPECT_LT(KsDistance(a, b), 0.05);
}

TEST(DriftTest, AgreementRateZeroAlertEdgeCases) {
  AlertAgreement agreement;
  // No pairs yet: no evidence of divergence.
  EXPECT_DOUBLE_EQ(agreement.Rate(), 1.0);

  // All-normal stream: both models silent on every pair is full agreement.
  for (int i = 0; i < 10; ++i) agreement.Record(false, false);
  EXPECT_EQ(agreement.pairs(), 10);
  EXPECT_DOUBLE_EQ(agreement.Rate(), 1.0);

  agreement.Record(true, false);
  agreement.Record(false, true);
  agreement.Record(true, true);
  EXPECT_EQ(agreement.pairs(), 13);
  EXPECT_DOUBLE_EQ(agreement.Rate(), 11.0 / 13.0);

  agreement.Reset();
  EXPECT_EQ(agreement.pairs(), 0);
  EXPECT_DOUBLE_EQ(agreement.Rate(), 1.0);
}

}  // namespace
}  // namespace imdiff
