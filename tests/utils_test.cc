#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "utils/check.h"
#include "utils/rng.h"
#include "utils/stopwatch.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace {

TEST(CheckTest, PassingConditionIsSilent) {
  IMDIFF_CHECK(1 + 1 == 2) << "never shown";
  IMDIFF_CHECK_EQ(3, 3);
  IMDIFF_CHECK_LT(1, 2);
  SUCCEED();
}

TEST(CheckDeathTest, FailingConditionAborts) {
  EXPECT_DEATH(IMDIFF_CHECK(false) << "boom", "check failed");
  EXPECT_DEATH(IMDIFF_CHECK_EQ(1, 2), "1 +vs +2");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(RngTest, BernoulliRespectsP) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_GT(hits, 2600);
  EXPECT_LT(hits, 3400);
}

TEST(RngTest, ForkedChildrenDiffer) {
  Rng parent(4);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  // Two forks from the same parent are decorrelated.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += c1.UniformInt(0, 1 << 30) == c2.UniformInt(0, 1 << 30);
  }
  EXPECT_LT(equal, 5);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(&pool, 100, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInlineWithoutPool) {
  int sum = 0;
  ParallelFor(nullptr, 10, [&sum](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, ChunkedParallelForCoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(
      &pool, 1000, [&hits](size_t i) { hits[i].fetch_add(1); },
      /*grain=*/64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRangeChunksAreDisjoint) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  ParallelForRange(&pool, 500, 32, [&hits](size_t begin, size_t end) {
    EXPECT_LT(begin, end);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Regression: a throwing task used to escape WorkerLoop (std::terminate) and
// skip the in-flight bookkeeping, deadlocking Wait(). Now the first exception
// is rethrown from Wait() and the pool stays usable.
TEST(ThreadPoolTest, ThrowingTaskPropagatesFromWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(counter.load(), 10);
  // The error is cleared; the pool keeps working.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(ParallelFor(&pool, 100,
                           [&ran](size_t i) {
                             ran.fetch_add(1);
                             if (i == 37) throw std::runtime_error("body boom");
                           }),
               std::runtime_error);
  // The latch counted every chunk down and the pool stays usable.
  std::atomic<int> after{0};
  ParallelFor(&pool, 10, [&after](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

// Regression: ParallelFor issued from inside a pool task used to deadlock
// (every worker blocked in Wait with nobody left to drain the queue). Nested
// calls now run inline on the issuing worker.
TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(16 * 16);
  ParallelFor(&pool, 16, [&pool, &hits](size_t outer) {
    EXPECT_TRUE(pool.InWorkerThread());
    ParallelFor(&pool, 16, [&hits, outer](size_t inner) {
      hits[outer * 16 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Two external threads issuing ParallelFor on one pool concurrently: each
// call waits on its own latch, so neither deadlocks nor returns before its
// own chunks finish (the old global in-flight wait could do both).
TEST(ThreadPoolTest, ConcurrentParallelForFromTwoThreads) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> a(256), b(256);
  std::thread ta([&] {
    for (int round = 0; round < 20; ++round) {
      ParallelFor(&pool, a.size(), [&a](size_t i) { a[i].fetch_add(1); });
    }
  });
  std::thread tb([&] {
    for (int round = 0; round < 20; ++round) {
      ParallelFor(&pool, b.size(), [&b](size_t i) { b[i].fetch_add(1); });
    }
  });
  ta.join();
  tb.join();
  for (const auto& h : a) EXPECT_EQ(h.load(), 20);
  for (const auto& h : b) EXPECT_EQ(h.load(), 20);
}

TEST(ComputePoolTest, SetComputeThreadsRebuildsPool) {
  SetComputeThreads(4);
  EXPECT_EQ(ComputeThreads(), 4u);
  ThreadPool* pool = ComputePool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->num_threads(), 4u);
  std::atomic<int> counter{0};
  ParallelFor(pool, 100, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
  // 1 = exact serial execution: no pool at all, ParallelFor runs inline.
  SetComputeThreads(1);
  EXPECT_EQ(ComputeThreads(), 1u);
  EXPECT_EQ(ComputePool(), nullptr);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  const double t0 = sw.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  (void)sink;
  EXPECT_GE(sw.ElapsedSeconds(), t0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace imdiff
