#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "utils/check.h"
#include "utils/rng.h"
#include "utils/stopwatch.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace {

TEST(CheckTest, PassingConditionIsSilent) {
  IMDIFF_CHECK(1 + 1 == 2) << "never shown";
  IMDIFF_CHECK_EQ(3, 3);
  IMDIFF_CHECK_LT(1, 2);
  SUCCEED();
}

TEST(CheckDeathTest, FailingConditionAborts) {
  EXPECT_DEATH(IMDIFF_CHECK(false) << "boom", "check failed");
  EXPECT_DEATH(IMDIFF_CHECK_EQ(1, 2), "1 +vs +2");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(RngTest, BernoulliRespectsP) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_GT(hits, 2600);
  EXPECT_LT(hits, 3400);
}

TEST(RngTest, ForkedChildrenDiffer) {
  Rng parent(4);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  // Two forks from the same parent are decorrelated.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += c1.UniformInt(0, 1 << 30) == c2.UniformInt(0, 1 << 30);
  }
  EXPECT_LT(equal, 5);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(&pool, 100, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInlineWithoutPool) {
  int sum = 0;
  ParallelFor(nullptr, 10, [&sum](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  const double t0 = sw.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  (void)sink;
  EXPECT_GE(sw.ElapsedSeconds(), t0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace imdiff
