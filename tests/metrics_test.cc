#include <cmath>

#include <gtest/gtest.h>

#include "metrics/add.h"
#include "metrics/classification.h"
#include "metrics/pot.h"
#include "metrics/range_auc.h"
#include "utils/rng.h"

namespace imdiff {
namespace {

TEST(ClassificationTest, HandComputedCounts) {
  std::vector<uint8_t> labels = {0, 1, 1, 0, 0, 1};
  std::vector<uint8_t> preds = {0, 1, 0, 1, 0, 1};
  BinaryMetrics m = ComputeMetrics(labels, preds);
  EXPECT_EQ(m.tp, 2);
  EXPECT_EQ(m.fp, 1);
  EXPECT_EQ(m.fn, 1);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.f1, 2.0 / 3.0, 1e-9);
}

TEST(ClassificationTest, EmptyPredictionsZeroPrecision) {
  std::vector<uint8_t> labels = {1, 1};
  std::vector<uint8_t> preds = {0, 0};
  BinaryMetrics m = ComputeMetrics(labels, preds);
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.recall, 0.0);
  EXPECT_EQ(m.f1, 0.0);
}

TEST(PointAdjustTest, ExpandsHitSegments) {
  std::vector<uint8_t> labels = {0, 1, 1, 1, 0, 1, 1, 0};
  std::vector<uint8_t> preds = {0, 0, 1, 0, 0, 0, 0, 0};
  auto adjusted = PointAdjust(labels, preds);
  // First segment fully credited; second untouched.
  EXPECT_EQ(adjusted[1], 1);
  EXPECT_EQ(adjusted[2], 1);
  EXPECT_EQ(adjusted[3], 1);
  EXPECT_EQ(adjusted[5], 0);
  EXPECT_EQ(adjusted[6], 0);
}

TEST(PointAdjustTest, PreservesFalsePositives) {
  std::vector<uint8_t> labels = {0, 0, 1};
  std::vector<uint8_t> preds = {1, 0, 0};
  auto adjusted = PointAdjust(labels, preds);
  EXPECT_EQ(adjusted[0], 1);
  EXPECT_EQ(adjusted[2], 0);
}

TEST(PointAdjustTest, SegmentAtEnd) {
  std::vector<uint8_t> labels = {0, 1, 1};
  std::vector<uint8_t> preds = {0, 0, 1};
  auto adjusted = PointAdjust(labels, preds);
  EXPECT_EQ(adjusted[1], 1);
}

TEST(ThresholdTest, BestF1FindsSeparator) {
  // Scores perfectly separate labels; best-F1 threshold must achieve 1.0.
  std::vector<float> scores;
  std::vector<uint8_t> labels;
  for (int i = 0; i < 100; ++i) {
    const bool anomaly = i >= 90;
    scores.push_back(anomaly ? 5.0f + i * 0.01f : 1.0f + i * 0.001f);
    labels.push_back(anomaly ? 1 : 0);
  }
  BinaryMetrics best;
  const float threshold = BestF1Threshold(scores, labels, 64, &best);
  EXPECT_NEAR(best.f1, 1.0, 1e-9);
  EXPECT_GT(threshold, 1.2f);
  EXPECT_LE(threshold, 5.0f);
}

TEST(ThresholdTest, QuantileInterpolates) {
  std::vector<float> v = {1, 2, 3, 4, 5};
  EXPECT_NEAR(Quantile(v, 0.0), 1.0f, 1e-6);
  EXPECT_NEAR(Quantile(v, 1.0), 5.0f, 1e-6);
  EXPECT_NEAR(Quantile(v, 0.5), 3.0f, 1e-6);
  EXPECT_NEAR(Quantile(v, 0.25), 2.0f, 1e-6);
}

TEST(ThresholdScoresTest, InclusiveBoundary) {
  auto preds = ThresholdScores({0.5f, 1.0f, 1.5f}, 1.0f);
  EXPECT_EQ(preds[0], 0);
  EXPECT_EQ(preds[1], 1);
  EXPECT_EQ(preds[2], 1);
}

TEST(RangeAucTest, SoftLabelsRampAroundSegments) {
  std::vector<uint8_t> labels = {0, 0, 0, 1, 1, 0, 0, 0};
  auto soft = SoftenLabels(labels, 2);
  EXPECT_EQ(soft[3], 1.0);
  EXPECT_EQ(soft[4], 1.0);
  EXPECT_GT(soft[2], 0.0);
  EXPECT_GT(soft[5], 0.0);
  EXPECT_GT(soft[2], soft[1]);
  EXPECT_EQ(soft[0], 0.0);
}

TEST(RangeAucTest, PerfectScoresGiveHighAuc) {
  std::vector<uint8_t> labels(200, 0);
  std::vector<float> scores(200, 0.0f);
  for (int i = 100; i < 120; ++i) {
    labels[i] = 1;
    scores[i] = 10.0f;
  }
  // Exact separation without buffers scores perfectly.
  EXPECT_GT(RangeAucRoc(scores, labels, 0), 0.99);
  EXPECT_GT(RangeAucPr(scores, labels, 0), 0.99);
  // With buffers, part of the positive mass lies in the (unscored) ramp, so
  // the AUC is below 1 but still clearly better than chance.
  EXPECT_GT(RangeAucRoc(scores, labels), 0.65);
  EXPECT_GT(RangeAucPr(scores, labels), 0.6);
}

TEST(RangeAucTest, RandomScoresNearHalfRoc) {
  Rng rng(1);
  std::vector<uint8_t> labels(2000, 0);
  for (int i = 500; i < 700; ++i) labels[i] = 1;
  std::vector<float> scores(2000);
  for (auto& s : scores) s = static_cast<float>(rng.Uniform());
  const double auc = RangeAucRoc(scores, labels);
  EXPECT_GT(auc, 0.4);
  EXPECT_LT(auc, 0.6);
}

TEST(RangeAucTest, InvertedScoresGiveLowAuc) {
  std::vector<uint8_t> labels(100, 0);
  std::vector<float> scores(100, 0.0f);
  for (int i = 0; i < 100; ++i) {
    labels[i] = i >= 80 ? 1 : 0;
    scores[i] = i >= 80 ? 0.0f : 1.0f;  // exactly wrong
  }
  EXPECT_LT(RangeAucRoc(scores, labels), 0.3);
}

TEST(RangeAucTest, NearMissRewardedByBuffer) {
  // Detection 3 steps before the true range: zero credit point-wise, partial
  // credit with buffers.
  std::vector<uint8_t> labels(300, 0);
  std::vector<float> scores(300, 0.0f);
  for (int i = 150; i < 170; ++i) labels[i] = 1;
  for (int i = 145; i < 149; ++i) scores[i] = 5.0f;
  EXPECT_GT(RangeAucPr(scores, labels, 20), RangeAucPr(scores, labels, 0));
}

TEST(AddTest, ImmediateDetectionZeroDelay) {
  std::vector<uint8_t> labels = {0, 0, 1, 1, 1, 0};
  std::vector<uint8_t> preds = {0, 0, 1, 0, 0, 0};
  EXPECT_EQ(AverageDetectionDelay(labels, preds), 0.0);
}

TEST(AddTest, DelayCountsFromSegmentStart) {
  std::vector<uint8_t> labels = {0, 1, 1, 1, 1, 0};
  std::vector<uint8_t> preds = {0, 0, 0, 1, 0, 0};
  EXPECT_EQ(AverageDetectionDelay(labels, preds), 2.0);
}

TEST(AddTest, DetectionAfterSegmentStillCounts) {
  // Alarm after the event ends is a (late) detection in the ADD sense.
  std::vector<uint8_t> labels = {1, 1, 0, 0, 0};
  std::vector<uint8_t> preds = {0, 0, 0, 1, 0};
  EXPECT_EQ(AverageDetectionDelay(labels, preds), 3.0);
}

TEST(AddTest, MissedEventPenalizedWithRemainingLength) {
  std::vector<uint8_t> labels = {0, 0, 1, 1, 0, 0, 0, 0, 0, 0};
  std::vector<uint8_t> preds(10, 0);
  EXPECT_EQ(AverageDetectionDelay(labels, preds), 8.0);  // 10 - 2
}

TEST(AddTest, AveragesOverEvents) {
  std::vector<uint8_t> labels = {1, 0, 0, 1, 0};
  std::vector<uint8_t> preds = {1, 0, 0, 0, 1};
  // Event 0: delay 0. Event 1 (start 3): first alarm at 4 -> delay 1.
  EXPECT_EQ(AverageDetectionDelay(labels, preds), 0.5);
}

TEST(AddTest, NoEventsZero) {
  std::vector<uint8_t> labels(5, 0);
  std::vector<uint8_t> preds(5, 1);
  EXPECT_EQ(AverageDetectionDelay(labels, preds), 0.0);
}

TEST(PotTest, GpdMomentsOnExponentialTail) {
  // Exponential(1) exceedances: GPD shape ~ 0, scale ~ 1.
  Rng rng(2);
  std::vector<float> exceedances;
  for (int i = 0; i < 20000; ++i) {
    exceedances.push_back(static_cast<float>(-std::log(1.0 - rng.Uniform())));
  }
  GpdFit fit = FitGpdMoments(exceedances);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.shape, 0.0, 0.1);
  EXPECT_NEAR(fit.scale, 1.0, 0.1);
}

TEST(PotTest, ThresholdAboveInitialQuantile) {
  Rng rng(3);
  std::vector<float> scores;
  for (int i = 0; i < 5000; ++i) {
    scores.push_back(static_cast<float>(-std::log(1.0 - rng.Uniform())));
  }
  PotConfig config;
  const float u = Quantile(scores, config.initial_quantile);
  const float threshold = PotThreshold(scores, config);
  EXPECT_GT(threshold, u);
}

TEST(PotTest, DegenerateFallsBackToQuantile) {
  std::vector<float> scores(100, 1.0f);  // no variance
  PotConfig config;
  EXPECT_NEAR(PotThreshold(scores, config), 1.0f, 1e-5);
}

TEST(PotTest, FewExceedancesInvalidFit) {
  EXPECT_FALSE(FitGpdMoments({1.0f, 2.0f}).valid);
}

}  // namespace
}  // namespace imdiff
