// Tests for the inference graph executor (src/graph): the captured /
// lowered / arena-planned denoiser must be bitwise identical to the legacy
// autograd layer stack for every (batch shape, degrade level, kernel mode)
// combination — the DESIGN.md §12 determinism contract — and captures must
// be invalidated (and retraced) when the detector's model is hot-swapped.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/imdiffusion.h"
#include "data/benchmarks.h"
#include "graph/graph.h"
#include "tensor/simd.h"
#include "utils/metrics.h"
#include "utils/rng.h"

namespace imdiff {
namespace {

// Tiny configuration (see serve_test.cc) with stochastic sampling ON so the
// executor's per-window forked noise streams are exercised.
ImDiffusionConfig GraphTinyConfig(uint64_t seed) {
  ImDiffusionConfig config;
  config.model.window = 40;
  config.model.hidden = 16;
  config.model.num_blocks = 1;
  config.model.num_heads = 2;
  config.model.ff_dim = 32;
  config.model.step_embed_dim = 16;
  config.model.side_dim = 8;
  config.schedule.num_steps = 6;
  config.schedule.beta_end = 0.7f;
  config.num_masked_windows = 2;
  config.epochs = 2;
  config.batch_size = 4;
  config.train_stride = 10;
  config.infer_batch = 4;
  config.vote_last_steps = 4;
  config.vote_stride = 1;
  config.stochastic_sampling = true;
  config.seed = seed;
  return config;
}

MtsDataset GraphDataset() {
  return MakeMicroserviceLatencyDataset(/*seed=*/5, /*num_services=*/3,
                                        /*train_length=*/200,
                                        /*test_length=*/280);
}

std::vector<uint64_t> SeedsFor(int64_t n) {
  std::vector<uint64_t> seeds(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    seeds[static_cast<size_t>(i)] = MixSeed(1234, static_cast<uint64_t>(i));
  }
  return seeds;
}

// One shared fitted detector: fitting dominates test time and every test in
// this file needs *a* frozen model, not a fresh one.
const ImDiffusionDetector& SharedDetector() {
  static const ImDiffusionDetector* detector = [] {
    auto* d = new ImDiffusionDetector(GraphTinyConfig(17));
    d->Fit(GraphDataset().train);
    return d;
  }();
  return *detector;
}

void ExpectScoresBitwiseEqual(
    const std::vector<ImDiffusionDetector::WindowScore>& a,
    const std::vector<ImDiffusionDetector::WindowScore>& b,
    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t w = 0; w < a.size(); ++w) {
    ASSERT_EQ(a[w].step_errors.size(), b[w].step_errors.size()) << what;
    for (size_t s = 0; s < a[w].step_errors.size(); ++s) {
      const std::vector<float>& ra = a[w].step_errors[s];
      const std::vector<float>& rb = b[w].step_errors[s];
      ASSERT_EQ(ra.size(), rb.size()) << what;
      EXPECT_EQ(0, std::memcmp(ra.data(), rb.data(),
                               ra.size() * sizeof(float)))
          << what << " window " << w << " vote step " << s;
    }
  }
}

int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name)->value();
}

// Property: every (batch shape x degrade level x forced-scalar on/off)
// combination scores bitwise identically through the captured graph and the
// legacy layer stack.
TEST(GraphExecutorTest, BitwiseMatchesLegacyStackEverywhere) {
  const ImDiffusionDetector& detector = SharedDetector();
  const MtsDataset data = GraphDataset();
  const ImDiffusionDetector::WindowPlan plan =
      detector.PlanWindows(data.test);
  const int64_t total = plan.windows.dim(0);
  ASSERT_GE(total, 5);
  const int64_t k = plan.windows.dim(1);
  const int64_t window = plan.windows.dim(2);

  const int64_t failures_before = CounterValue("graph.validation_failures");
  const int64_t executions_before = CounterValue("graph.executions");

  // 1 window (sub-chunk), 5 (partial tail chunk), and the full plan
  // (multiple chunks, tail partial).
  const std::vector<int64_t> shapes = {1, 5, total};
  for (const bool force_scalar : {false, true}) {
    simd::SetForceScalar(force_scalar);
    for (int level = 0; level <= 2; ++level) {
      for (const int64_t n : shapes) {
        Tensor subset = Tensor::Uninitialized({n, k, window});
        std::copy_n(plan.windows.data(), n * k * window,
                    subset.mutable_data());
        const std::vector<uint64_t> seeds = SeedsFor(n);
        graph::SetGraphEnabled(true);
        const auto graph_scores =
            detector.ScoreWindowBatch(subset, seeds, level);
        graph::SetGraphEnabled(false);
        const auto stack_scores =
            detector.ScoreWindowBatch(subset, seeds, level);
        ExpectScoresBitwiseEqual(
            graph_scores, stack_scores,
            "scalar=" + std::to_string(force_scalar) +
                " level=" + std::to_string(level) + " n=" + std::to_string(n));
      }
    }
  }
  simd::SetForceScalar(false);
  graph::SetGraphEnabled(true);

  // The graph path actually ran, and no capture failed its first-execution
  // validation against the legacy stack.
  EXPECT_GT(CounterValue("graph.executions"), executions_before);
  EXPECT_EQ(CounterValue("graph.validation_failures"), failures_before);
}

// The precision axis obeys the same contract as every other knob: for each
// (precision x degrade level x forced-scalar) combination the captured graph
// and the legacy stack score bitwise identically, repeats at one precision
// are bitwise stable, and reduced precisions genuinely change the bits.
TEST(GraphExecutorTest, ReducedPrecisionMatchesLegacyStackPerLevel) {
  // This test requests specific precisions per call; an IMDIFF_PRECISION
  // override (the forced-precision CI legs) would collapse the fp32
  // baseline onto the forced rung and break the EXPECT_NE below.
  ScopedPrecisionOverrideClear no_override;
  const ImDiffusionDetector& detector = SharedDetector();
  const MtsDataset data = GraphDataset();
  const ImDiffusionDetector::WindowPlan plan = detector.PlanWindows(data.test);
  const int64_t n = std::min<int64_t>(5, plan.windows.dim(0));
  Tensor subset = Tensor::Uninitialized({n, plan.windows.dim(1),
                                         plan.windows.dim(2)});
  std::copy_n(plan.windows.data(),
              n * plan.windows.dim(1) * plan.windows.dim(2),
              subset.mutable_data());
  const std::vector<uint64_t> seeds = SeedsFor(n);

  const int64_t failures_before = CounterValue("graph.validation_failures");
  auto score = [&](bool use_graph, int level, Precision p) {
    graph::SetGraphEnabled(use_graph);
    return detector.ScoreWindowBatch(subset, seeds, level, p);
  };
  for (const bool force_scalar : {false, true}) {
    simd::SetForceScalar(force_scalar);
    for (const Precision p : {Precision::kBf16, Precision::kInt8}) {
      for (int level = 0; level <= 2; ++level) {
        const auto graph_scores = score(true, level, p);
        const auto stack_scores = score(false, level, p);
        const std::string what = std::string(PrecisionName(p)) +
                                 " scalar=" + std::to_string(force_scalar) +
                                 " level=" + std::to_string(level);
        ExpectScoresBitwiseEqual(graph_scores, stack_scores, what);
        // Same precision scores the same bits on a repeat...
        ExpectScoresBitwiseEqual(graph_scores, score(true, level, p),
                                 what + " repeat");
        // ...and different bits than the fp32 rung.
        EXPECT_NE(graph_scores[0].step_errors,
                  score(true, level, Precision::kF32)[0].step_errors)
            << what;
      }
    }
  }
  simd::SetForceScalar(false);
  graph::SetGraphEnabled(true);
  EXPECT_EQ(CounterValue("graph.validation_failures"), failures_before);
}

// Full seeded pass (windowing + scoring + reduction) agrees end to end.
TEST(GraphExecutorTest, RunSeededMatchesLegacyStack) {
  const ImDiffusionDetector& detector = SharedDetector();
  const MtsDataset data = GraphDataset();
  for (int level = 0; level <= 2; ++level) {
    graph::SetGraphEnabled(true);
    const DetectionResult with_graph = detector.RunSeeded(data.test, 7, level);
    graph::SetGraphEnabled(false);
    const DetectionResult with_stack = detector.RunSeeded(data.test, 7, level);
    graph::SetGraphEnabled(true);
    ASSERT_EQ(with_graph.scores.size(), with_stack.scores.size());
    EXPECT_EQ(0, std::memcmp(with_graph.scores.data(),
                             with_stack.scores.data(),
                             with_graph.scores.size() * sizeof(float)))
        << "level " << level;
    EXPECT_EQ(with_graph.labels, with_stack.labels);
  }
}

// Hot-swapping the model must drop stale captures (which hold raw pointers
// into the old weights) and retrace: scoring after LoadModel captures fresh
// graphs and still matches the legacy stack bitwise.
TEST(GraphExecutorTest, ModelHotSwapInvalidatesAndRetraces) {
  const MtsDataset data = GraphDataset();
  ImDiffusionDetector detector(GraphTinyConfig(23));
  detector.Fit(data.train);

  const ImDiffusionDetector::WindowPlan plan = detector.PlanWindows(data.test);
  const std::vector<uint64_t> seeds = SeedsFor(plan.windows.dim(0));

  graph::SetGraphEnabled(true);
  const int64_t captures0 = CounterValue("graph.captures");
  const auto before = detector.ScoreWindowBatch(plan.windows, seeds, 0);
  const int64_t captures1 = CounterValue("graph.captures");
  EXPECT_GT(captures1, captures0) << "first scoring pass must capture";

  // Warm repeat on the same model: pooled contexts are reused, no recapture.
  const auto warm = detector.ScoreWindowBatch(plan.windows, seeds, 0);
  ExpectScoresBitwiseEqual(before, warm, "warm repeat");
  EXPECT_EQ(CounterValue("graph.captures"), captures1);

  // Swap the model in place. Same weights round-trip through the checkpoint,
  // so scores must stay bitwise identical — but via *new* captures.
  const std::string path = ::testing::TempDir() + "graph_swap_ckpt.bin";
  detector.SaveModel(path);
  ASSERT_TRUE(detector.LoadModel(path, data.train.dim(1)));
  const auto after = detector.ScoreWindowBatch(plan.windows, seeds, 0);
  EXPECT_GT(CounterValue("graph.captures"), captures1)
      << "hot swap must invalidate captured graphs and retrace";
  ExpectScoresBitwiseEqual(before, after, "post-swap");

  graph::SetGraphEnabled(false);
  const auto stack = detector.ScoreWindowBatch(plan.windows, seeds, 0);
  graph::SetGraphEnabled(true);
  ExpectScoresBitwiseEqual(after, stack, "post-swap vs stack");
}

// The IMDIFF_GRAPH=0 escape hatch (and its runtime override) routes scoring
// through the legacy stack: no executions, no captures.
TEST(GraphExecutorTest, DisabledExecutorNeverRuns) {
  const ImDiffusionDetector& detector = SharedDetector();
  const MtsDataset data = GraphDataset();
  const ImDiffusionDetector::WindowPlan plan = detector.PlanWindows(data.test);
  const std::vector<uint64_t> seeds = SeedsFor(plan.windows.dim(0));

  graph::SetGraphEnabled(false);
  const int64_t executions = CounterValue("graph.executions");
  const int64_t captures = CounterValue("graph.captures");
  (void)detector.ScoreWindowBatch(plan.windows, seeds, 0);
  EXPECT_EQ(CounterValue("graph.executions"), executions);
  EXPECT_EQ(CounterValue("graph.captures"), captures);
  graph::SetGraphEnabled(true);
}

}  // namespace
}  // namespace imdiff
