// Ugly-stream generator tests (data/ugly_stream): determinism, the shape of
// each distortion (missing data, gaps, drift, regime shifts), and the bridge
// into the detector — MaskFromObserved, the online carry-forward fill, and
// ImputeWindow — including the masked-values-are-never-read invariant.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/imdiffusion.h"
#include "core/masking.h"
#include "core/online_detector.h"
#include "data/ugly_stream.h"
#include "utils/metrics.h"
#include "utils/rng.h"

namespace imdiff {
namespace {

bool SameStream(const UglyStream& a, const UglyStream& b) {
  return a.samples.numel() == b.samples.numel() &&
         std::equal(a.samples.data(), a.samples.data() + a.samples.numel(),
                    b.samples.data()) &&
         a.observed == b.observed && a.labels == b.labels &&
         a.missing == b.missing && a.gaps == b.gaps && a.shifts == b.shifts;
}

TEST(UglyStreamTest, PureFunctionOfSeedAndConfig) {
  UglyStreamConfig config;
  config.length = 400;
  config.dims = 4;
  config.missing_rate = 0.1;
  config.gap_rate = 0.01;
  config.drift_rate = 0.005f;
  config.shift_rate = 0.01;
  config.season_amplitude = 0.3f;
  config.anomaly_rate = 0.02;
  EXPECT_TRUE(SameStream(MakeUglyStream(7, config), MakeUglyStream(7, config)));
  EXPECT_FALSE(
      SameStream(MakeUglyStream(7, config), MakeUglyStream(8, config)));
}

TEST(UglyStreamTest, MissingRateAndOutageGaps) {
  UglyStreamConfig config;
  config.length = 2000;
  config.dims = 5;
  config.missing_rate = 0.2;
  config.gap_rate = 0.01;
  const UglyStream stream = MakeUglyStream(11, config);
  ASSERT_EQ(stream.observed.size(),
            static_cast<size_t>(config.length * config.dims));
  const double missing_fraction =
      static_cast<double>(stream.missing) /
      static_cast<double>(config.length * config.dims);
  EXPECT_GT(missing_fraction, 0.15);
  EXPECT_LT(missing_fraction, 0.45);
  EXPECT_GT(stream.gaps, 0);
  // A gap darkens every channel of its rows at once.
  int64_t dark_rows = 0;
  for (int64_t t = 0; t < config.length; ++t) {
    bool all_dark = true;
    for (int64_t j = 0; j < config.dims; ++j) {
      if (stream.observed[static_cast<size_t>(t * config.dims + j)]) {
        all_dark = false;
        break;
      }
    }
    dark_rows += all_dark ? 1 : 0;
  }
  EXPECT_GE(dark_rows, 2 * stream.gaps);  // gap_min_length == 2

  // Ground truth survives under the mask: every sample is finite.
  for (int64_t i = 0; i < stream.samples.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(stream.samples.data()[i]));
  }
}

TEST(UglyStreamTest, DriftRampsLateValuesUp) {
  UglyStreamConfig config;
  config.length = 800;
  config.dims = 3;
  UglyStreamConfig drifting = config;
  drifting.drift_rate = 0.01f;
  const UglyStream flat = MakeUglyStream(13, config);
  const UglyStream ramped = MakeUglyStream(13, drifting);
  // Both runs share the clean-series draw (drift consumes RNG only after
  // generation), so the late-window difference isolates the ramp: at least
  // 0.5 * drift_rate * t integrated, times the minimum channel gain 0.5.
  auto late_mean = [&](const UglyStream& s) {
    double sum = 0.0;
    const int64_t begin = (config.length - 100) * config.dims;
    for (int64_t i = begin; i < config.length * config.dims; ++i) {
      sum += s.samples.data()[i];
    }
    return sum / static_cast<double>(100 * config.dims);
  };
  EXPECT_GT(late_mean(ramped) - late_mean(flat),
            0.5 * 0.01 * (800.0 - 100.0) * 0.5);
}

TEST(UglyStreamTest, RegimeShiftsAreCountedAndBounded) {
  UglyStreamConfig config;
  config.length = 1000;
  config.dims = 3;
  config.shift_rate = 0.01;
  const UglyStream stream = MakeUglyStream(17, config);
  EXPECT_GT(stream.shifts, 0);
  EXPECT_LT(stream.shifts, 60);  // ~10 expected at rate 0.01
  for (int64_t i = 0; i < stream.samples.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(stream.samples.data()[i]));
  }
}

TEST(UglyStreamTest, HeavyTailSampleStaysInBounds) {
  Rng rng(23);
  int64_t near_min = 0;
  int64_t above = 0;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = SampleHeavyTail(rng, 4, 1.2, 256);
    ASSERT_GE(v, 4);
    ASSERT_LE(v, 256);
    near_min += v <= 8 ? 1 : 0;  // within 2x of the minimum
    above += v > 16 ? 1 : 0;
  }
  // Pareto shape: short bursts dominate but the tail is real.
  // P(v <= 2*min) = 1 - 2^-1.2 ~ 0.56; P(v > 4*min) = 4^-1.2 ~ 0.19.
  EXPECT_GT(near_min, 800);
  EXPECT_GT(above, 150);
}

TEST(MaskingTest, MaskFromObservedTransposesStreamLayout) {
  // Time-major observed flags for W=3 steps of K=2 features.
  const std::vector<uint8_t> observed = {1, 0,   // t=0: f0 observed, f1 not
                                         0, 1,   // t=1
                                         1, 1};  // t=2
  const Tensor mask = MaskFromObserved(observed, /*num_features=*/2,
                                       /*window=*/3);
  ASSERT_EQ(mask.dim(0), 2);
  ASSERT_EQ(mask.dim(1), 3);
  const float* p = mask.data();
  // Feature-major [K, W]: row 0 = feature 0 over time.
  EXPECT_EQ(p[0], 1.0f);
  EXPECT_EQ(p[1], 0.0f);
  EXPECT_EQ(p[2], 1.0f);
  EXPECT_EQ(p[3], 0.0f);
  EXPECT_EQ(p[4], 1.0f);
  EXPECT_EQ(p[5], 1.0f);
}

// Identity-range normalization (min 0, max 1) so buffered values can be read
// back directly.
MinMaxStats IdentityStats(int64_t k) {
  MinMaxStats stats;
  stats.min.assign(static_cast<size_t>(k), 0.0f);
  stats.max.assign(static_cast<size_t>(k), 1.0f);
  return stats;
}

TEST(OnlineMissingTest, CarryForwardFillUsesLastObservedValue) {
  OnlineDetector::Options options;
  options.block = 4;
  options.context = 0;
  OnlineDetector online(nullptr, options);
  online.SetNormalization(IdentityStats(2));

  const int64_t filled_before =
      MetricsRegistry::Global().GetCounter("online.missing_filled")->value();
  OnlineDetector::ReadyBlock ready;
  // t=0: feature 0 missing before any observation -> mid-range 0.5.
  EXPECT_FALSE(online.AppendBuffered({9.0f, 0.5f}, {0, 1}, &ready));
  // t=1: both observed.
  EXPECT_FALSE(online.AppendBuffered({0.25f, 0.75f}, {1, 1}, &ready));
  // t=2: feature 0 missing again -> carries 0.25, not 0.5 and not 9.0.
  EXPECT_FALSE(online.AppendBuffered({9.0f, 0.1f}, {0, 1}, &ready));
  // t=3: block fills.
  ASSERT_TRUE(online.AppendBuffered({0.6f, 0.2f}, {}, &ready));
  ASSERT_EQ(ready.series.dim(0), 4);
  ASSERT_EQ(ready.series.dim(1), 2);
  const float* s = ready.series.data();
  EXPECT_FLOAT_EQ(s[0 * 2 + 0], 0.5f);   // pre-observation fill
  EXPECT_FLOAT_EQ(s[1 * 2 + 0], 0.25f);  // observed
  EXPECT_FLOAT_EQ(s[2 * 2 + 0], 0.25f);  // carried forward
  EXPECT_FLOAT_EQ(s[3 * 2 + 0], 0.6f);
  EXPECT_FLOAT_EQ(s[2 * 2 + 1], 0.1f);  // feature 1 never filled
  EXPECT_EQ(MetricsRegistry::Global()
                    .GetCounter("online.missing_filled")
                    ->value() -
                filled_before,
            2);
}

// The invariant the whole missing-data path hangs on: a masked value is
// NEVER read. Corrupting every unobserved entry must not change a single
// buffered series value.
TEST(OnlineMissingTest, MaskedValuesAreNeverRead) {
  UglyStreamConfig config;
  config.length = 300;
  config.dims = 4;
  config.missing_rate = 0.15;
  config.gap_rate = 0.01;
  const UglyStream stream = MakeUglyStream(29, config);
  ASSERT_GT(stream.missing, 0);

  // Corrupted twin: poison every masked entry.
  std::vector<float> poisoned(stream.samples.data(),
                              stream.samples.data() + stream.samples.numel());
  for (size_t i = 0; i < stream.observed.size(); ++i) {
    if (!stream.observed[i]) poisoned[i] = 1e9f;
  }

  OnlineDetector::Options options;
  options.block = 50;
  options.context = 50;
  auto run = [&](const float* values) {
    OnlineDetector online(nullptr, options);
    online.SetNormalization(IdentityStats(config.dims));
    std::vector<Tensor> blocks;
    std::vector<float> sample(static_cast<size_t>(config.dims));
    std::vector<uint8_t> observed(static_cast<size_t>(config.dims));
    for (int64_t t = 0; t < config.length; ++t) {
      for (int64_t j = 0; j < config.dims; ++j) {
        sample[static_cast<size_t>(j)] = values[t * config.dims + j];
        observed[static_cast<size_t>(j)] =
            stream.observed[static_cast<size_t>(t * config.dims + j)];
      }
      OnlineDetector::ReadyBlock ready;
      if (online.AppendBuffered(sample, observed, &ready)) {
        blocks.push_back(std::move(ready.series));
      }
    }
    return blocks;
  };

  const std::vector<Tensor> clean = run(stream.samples.data());
  const std::vector<Tensor> corrupt = run(poisoned.data());
  ASSERT_EQ(clean.size(), corrupt.size());
  ASSERT_GT(clean.size(), 0u);
  for (size_t b = 0; b < clean.size(); ++b) {
    ASSERT_EQ(clean[b].numel(), corrupt[b].numel());
    EXPECT_TRUE(std::equal(clean[b].data(), clean[b].data() + clean[b].numel(),
                           corrupt[b].data()))
        << "block " << b;
  }
}

// Fill state must survive evict/rehydrate: exporting mid-stream and resuming
// continues the carry-forward exactly.
TEST(OnlineMissingTest, FillStateRoundTripsThroughExportImport) {
  OnlineDetector::Options options;
  options.block = 4;
  options.context = 0;
  OnlineDetector first(nullptr, options);
  first.SetNormalization(IdentityStats(1));
  OnlineDetector::ReadyBlock ready;
  EXPECT_FALSE(first.AppendBuffered({0.3f}, {1}, &ready));
  const OnlineDetector::State state = first.ExportState();
  EXPECT_EQ(state.fill, std::vector<float>{0.3f});

  OnlineDetector resumed(nullptr, options);
  resumed.ImportState(state);
  EXPECT_FALSE(resumed.AppendBuffered({5.0f}, {0}, &ready));  // carries 0.3
  EXPECT_FALSE(resumed.AppendBuffered({5.0f}, {0}, &ready));
  ASSERT_TRUE(resumed.AppendBuffered({0.9f}, {1}, &ready));
  const float* s = ready.series.data();
  EXPECT_FLOAT_EQ(s[0], 0.3f);
  EXPECT_FLOAT_EQ(s[1], 0.3f);
  EXPECT_FLOAT_EQ(s[2], 0.3f);
  EXPECT_FLOAT_EQ(s[3], 0.9f);
}

// Shared tiny fitted detector for the ImputeWindow tests (stochastic
// sampling on: the seeded noise path is the determinism contract).
const ImDiffusionDetector& FittedDetector() {
  static const ImDiffusionDetector* detector = [] {
    ImDiffusionConfig config;
    config.model.window = 40;
    config.model.hidden = 16;
    config.model.num_blocks = 1;
    config.model.num_heads = 2;
    config.model.ff_dim = 32;
    config.model.step_embed_dim = 16;
    config.model.side_dim = 8;
    config.schedule.num_steps = 6;
    config.schedule.beta_end = 0.7f;
    config.num_masked_windows = 2;
    config.epochs = 2;
    config.batch_size = 4;
    config.train_stride = 10;
    config.vote_last_steps = 4;
    config.vote_stride = 1;
    config.stochastic_sampling = true;
    config.seed = 41;
    auto* d = new ImDiffusionDetector(config);
    UglyStreamConfig train;
    train.length = 200;
    train.dims = 3;
    d->Fit(MakeUglyStream(41, train).samples);
    return d;
  }();
  return *detector;
}

TEST(ImputeWindowTest, DeterministicAndPassesThroughObserved) {
  const ImDiffusionDetector& detector = FittedDetector();
  const int64_t k = 3;
  const int64_t w = 40;
  Rng rng(43);
  Tensor window = Tensor::Randn({k, w}, rng);
  // Mask out a contiguous run per feature plus some scattered points.
  std::vector<uint8_t> observed(static_cast<size_t>(k * w), 1);
  Tensor mask({k, w});
  for (int64_t j = 0; j < k; ++j) {
    for (int64_t l = 10; l < 18; ++l) {
      observed[static_cast<size_t>(l * k + j)] = 0;
    }
  }
  observed[static_cast<size_t>(25 * k + 1)] = 0;
  mask = MaskFromObserved(observed, k, w);

  const Tensor a = detector.ImputeWindow(window, mask, 99);
  const Tensor b = detector.ImputeWindow(window, mask, 99);
  ASSERT_EQ(a.numel(), window.numel());
  EXPECT_TRUE(std::equal(a.data(), a.data() + a.numel(), b.data()));

  // Observed entries pass through untouched; imputed ones are finite and
  // actually rewritten by the chain.
  int64_t rewritten = 0;
  for (int64_t j = 0; j < k; ++j) {
    for (int64_t l = 0; l < w; ++l) {
      const int64_t i = j * w + l;
      if (mask.data()[i] != 0.0f) {
        EXPECT_EQ(a.data()[i], window.data()[i]);
      } else {
        EXPECT_TRUE(std::isfinite(a.data()[i]));
        rewritten += a.data()[i] != window.data()[i] ? 1 : 0;
      }
    }
  }
  EXPECT_GT(rewritten, 0);

  // A different seed draws a different chain on the missing region.
  const Tensor c = detector.ImputeWindow(window, mask, 100);
  EXPECT_FALSE(std::equal(a.data(), a.data() + a.numel(), c.data()));

  // Fully observed: imputation is the identity.
  const Tensor all = Tensor::Full({k, w}, 1.0f);
  const Tensor same = detector.ImputeWindow(window, all, 7);
  EXPECT_TRUE(std::equal(same.data(), same.data() + same.numel(),
                         window.data()));
}

}  // namespace
}  // namespace imdiff
