#include <cmath>
#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"
#include "nn/serialize.h"

namespace imdiff {
namespace nn {
namespace {

TEST(LinearTest, ShapePreservesLeadingDims) {
  Rng rng(1);
  Linear lin(5, 3, rng);
  Var y = lin.Forward(Var(Tensor::Randn({2, 4, 5}, rng)));
  EXPECT_EQ(y.shape(), (Shape{2, 4, 3}));
  EXPECT_EQ(lin.Parameters().size(), 2u);
  EXPECT_EQ(ParameterCount(lin), 5 * 3 + 3);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(2);
  Linear lin(4, 2, rng, /*bias=*/false);
  EXPECT_EQ(lin.Parameters().size(), 1u);
  Var y = lin.Forward(Var(Tensor::Zeros({3, 4})));
  for (int64_t i = 0; i < y.value().numel(); ++i) {
    EXPECT_EQ(y.value().flat(i), 0.0f);
  }
}

TEST(LinearTest, TrainsOnLeastSquares) {
  // y = 2x + 1 recovered by Adam in a few hundred steps.
  Rng rng(3);
  Linear lin(1, 1, rng);
  Adam adam(lin.Parameters(), {.lr = 0.05f});
  for (int step = 0; step < 300; ++step) {
    Tensor x({8, 1});
    Tensor y({8, 1});
    for (int64_t i = 0; i < 8; ++i) {
      const float v = static_cast<float>(rng.Uniform(-1, 1));
      x.mutable_data()[i] = v;
      y.mutable_data()[i] = 2.0f * v + 1.0f;
    }
    Var loss = MseLossV(lin.Forward(Var(x)), y);
    Backward(loss);
    adam.Step();
  }
  Tensor probe({1, 1}, {0.5f});
  EXPECT_NEAR(lin.Forward(Var(probe)).value().flat(0), 2.0f, 0.1f);
}

TEST(Conv1dLayerTest, SamePaddingKeepsLength) {
  Rng rng(4);
  Conv1dLayer conv(3, 5, 3, 1, rng);
  Var y = conv.Forward(Var(Tensor::Randn({2, 3, 10}, rng)));
  EXPECT_EQ(y.shape(), (Shape{2, 5, 10}));
}

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(5);
  LayerNorm norm(6);
  Var y = norm.Forward(Var(Tensor::Randn({4, 6}, rng, 5.0f)));
  // With gamma=1, beta=0 each row has ~zero mean, ~unit variance.
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0, var = 0;
    for (int64_t j = 0; j < 6; ++j) mean += y.value().at(r, j);
    mean /= 6;
    for (int64_t j = 0; j < 6; ++j) {
      var += (y.value().at(r, j) - mean) * (y.value().at(r, j) - mean);
    }
    var /= 6;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(EmbeddingTest, LookupAndShape) {
  Rng rng(6);
  Embedding embed(10, 4, rng);
  Var rows = embed.Forward({3, 3, 7});
  EXPECT_EQ(rows.shape(), (Shape{3, 4}));
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(rows.value().at(0, j), rows.value().at(1, j));
  }
}

TEST(MlpTest, ShapesAndParams) {
  Rng rng(7);
  Mlp mlp(4, 8, 2, rng, Mlp::Activation::kGelu);
  Var y = mlp.Forward(Var(Tensor::Randn({5, 4}, rng)));
  EXPECT_EQ(y.shape(), (Shape{5, 2}));
  EXPECT_EQ(ParameterCount(mlp), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(SinusoidalEmbeddingTest, RangeAndDistinctness) {
  Tensor e = SinusoidalEmbedding({0, 1, 2, 50}, 16);
  EXPECT_EQ(e.shape(), (Shape{4, 16}));
  for (int64_t i = 0; i < e.numel(); ++i) {
    EXPECT_LE(std::abs(e.flat(i)), 1.0f + 1e-5f);
  }
  // Position 0: sin part 0, cos part 1.
  EXPECT_NEAR(e.at(0, 0), 0.0f, 1e-6);
  EXPECT_NEAR(e.at(0, 8), 1.0f, 1e-6);
  // Different positions embed differently.
  float diff = 0;
  for (int64_t j = 0; j < 16; ++j) diff += std::abs(e.at(1, j) - e.at(3, j));
  EXPECT_GT(diff, 0.1f);
}

TEST(AttentionTest, ShapeAndPermutationEquivariance) {
  Rng rng(8);
  MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::Randn({2, 5, 8}, rng);
  Var y = attn.Forward(Var(x));
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8}));
  // Self-attention without positional info is permutation-equivariant:
  // swapping two tokens swaps the outputs.
  Tensor xs = x.Clone();
  for (int64_t j = 0; j < 8; ++j) {
    std::swap(xs.mutable_data()[0 * 5 * 8 + 1 * 8 + j],
              xs.mutable_data()[0 * 5 * 8 + 3 * 8 + j]);
  }
  Var ys = attn.Forward(Var(xs));
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(ys.value().at(0, 1, j), y.value().at(0, 3, j), 1e-4);
    EXPECT_NEAR(ys.value().at(0, 3, j), y.value().at(0, 1, j), 1e-4);
  }
}

TEST(AttentionTest, GradientsFlowToAllParameters) {
  Rng rng(9);
  TransformerEncoderLayer layer(8, 2, 16, rng);
  Var y = layer.Forward(Var(Tensor::Randn({1, 4, 8}, rng)));
  Backward(SumV(y));
  for (const Var& p : layer.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(RnnTest, LstmShapesAndStatePropagation) {
  Rng rng(10);
  LstmCell cell(3, 6, rng);
  Var out = RunLstm(cell, Var(Tensor::Randn({2, 7, 3}, rng)));
  EXPECT_EQ(out.shape(), (Shape{2, 7, 6}));
  Var final_h;
  RunLstm(cell, Var(Tensor::Randn({2, 7, 3}, rng)), &final_h);
  EXPECT_EQ(final_h.shape(), (Shape{2, 6}));
}

TEST(RnnTest, GruShapes) {
  Rng rng(11);
  GruCell cell(3, 5, rng);
  Var out = RunGru(cell, Var(Tensor::Randn({2, 4, 3}, rng)));
  EXPECT_EQ(out.shape(), (Shape{2, 4, 5}));
}

TEST(RnnTest, LstmLearnsToRememberSign) {
  // Task: output sign of the first input summed over the sequence.
  Rng rng(12);
  LstmCell cell(1, 8, rng);
  Linear head(8, 1, rng);
  std::vector<Var> params = cell.Parameters();
  for (const Var& p : head.Parameters()) params.push_back(p);
  Adam adam(params, {.lr = 0.02f});
  for (int step = 0; step < 150; ++step) {
    Tensor x({4, 6, 1});
    Tensor y({4, 1});
    for (int64_t b = 0; b < 4; ++b) {
      const float sign = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
      x.mutable_data()[b * 6] = sign;
      for (int64_t t = 1; t < 6; ++t) {
        x.mutable_data()[b * 6 + t] = static_cast<float>(rng.Normal(0, 0.1));
      }
      y.mutable_data()[b] = sign;
    }
    Var final_h;
    RunLstm(cell, Var(x), &final_h);
    Var loss = MseLossV(head.Forward(final_h), y);
    Backward(loss);
    adam.Step();
  }
  Tensor probe({1, 6, 1}, {1, 0, 0, 0, 0, 0});
  Var final_h;
  RunLstm(cell, Var(probe), &final_h);
  EXPECT_GT(head.Forward(final_h).value().flat(0), 0.3f);
}

TEST(OptimizerTest, AdamReducesQuadratic) {
  Var w(Tensor::Full({3}, 5.0f), true);
  Adam adam({w}, {.lr = 0.1f});
  for (int i = 0; i < 200; ++i) {
    Var loss = SumV(Mul(w, w));
    Backward(loss);
    adam.Step();
  }
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(w.value().flat(i), 0.0f, 0.05f);
}

TEST(OptimizerTest, GradientClippingBoundsStep) {
  Var w(Tensor::Full({1}, 0.0f), true);
  Adam::Options opt;
  opt.lr = 1.0f;
  opt.grad_clip_norm = 1.0f;
  Adam adam({w}, opt);
  // Huge gradient.
  w.node()->AccumulateGrad(Tensor::Full({1}, 1e6f));
  adam.Step();
  EXPECT_LT(std::abs(w.value().flat(0)), 2.0f);
}

TEST(OptimizerTest, SgdWithMomentumConverges) {
  Var w(Tensor::Full({2}, 3.0f), true);
  Sgd sgd({w}, 0.05f, 0.9f);
  for (int i = 0; i < 100; ++i) {
    Backward(SumV(Mul(w, w)));
    sgd.Step();
  }
  EXPECT_NEAR(w.value().flat(0), 0.0f, 0.1f);
}

TEST(SerializeTest, RoundTrip) {
  Rng rng(13);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);
  const std::string path = ::testing::TempDir() + "/params.bin";
  std::vector<Var> pa = a.Parameters();
  std::vector<Var> pb = b.Parameters();
  SaveParameters(pa, path);
  ASSERT_TRUE(LoadParameters(pb, path));
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i].value().numel(); ++j) {
      EXPECT_EQ(pa[i].value().flat(j), pb[i].value().flat(j));
    }
  }
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(14);
  Linear a(4, 3, rng);
  Linear b(5, 3, rng);
  const std::string path = ::testing::TempDir() + "/params_mismatch.bin";
  std::vector<Var> pa = a.Parameters();
  std::vector<Var> pb = b.Parameters();
  SaveParameters(pa, path);
  EXPECT_FALSE(LoadParameters(pb, path));
}

TEST(SerializeTest, MissingFileReturnsFalse) {
  Rng rng(15);
  Linear a(2, 2, rng);
  std::vector<Var> pa = a.Parameters();
  EXPECT_FALSE(LoadParameters(pa, "/nonexistent/path/params.bin"));
}

TEST(SerializeTest, FailedLoadFromTruncatedFileLeavesParamsUntouched) {
  Rng rng(16);
  Linear a(6, 4, rng);
  Linear b(6, 4, rng);
  const std::string path = ::testing::TempDir() + "/params_truncated.bin";
  std::vector<Var> pa = a.Parameters();
  SaveParameters(pa, path);

  // Truncate mid-payload of the last tensor: the header and the first
  // tensor parse fine, so a non-transactional loader would have already
  // clobbered b's first parameter by the time it notices.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 8u);
    bytes.resize(bytes.size() - 8);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::vector<Var> pb = b.Parameters();
  std::vector<std::vector<float>> before;
  for (const Var& p : pb) {
    before.emplace_back(p.value().data(), p.value().data() + p.value().numel());
  }

  EXPECT_FALSE(LoadParameters(pb, path));
  for (size_t i = 0; i < pb.size(); ++i) {
    const float* data = pb[i].value().data();
    for (int64_t j = 0; j < pb[i].value().numel(); ++j) {
      // Byte-identical: exact float comparison on purpose.
      EXPECT_EQ(data[j], before[i][static_cast<size_t>(j)])
          << "param " << i << " index " << j << " modified by failed load";
    }
  }
}

}  // namespace
}  // namespace nn
}  // namespace imdiff
