// Scalar-vs-SIMD parity for the kernel layer (tensor/simd.h and the packed
// GEMM in tensor/tensor_ops.cc).
//
// Each test computes a result with the vectorized path enabled, flips
// simd::SetForceScalar(true), recomputes, and compares within float tolerance.
// On builds without a vector ISA the two paths coincide and the comparisons
// are trivially exact — the suite still exercises the kernels' odd-shape
// handling.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace imdiff {
namespace {

class SimdParityTest : public ::testing::Test {
 protected:
  void SetUp() override { simd::SetForceScalar(false); }
  // Restore the default dispatch for whatever test runs next.
  void TearDown() override { simd::SetForceScalar(false); }
};

Tensor RandomTensor(const Shape& shape, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(shape, rng, scale);
}

void ExpectNear(const Tensor& a, const Tensor& b, float tol) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float ref = b.flat(i);
    const float scale = std::max(1.0f, std::fabs(ref));
    ASSERT_NEAR(a.flat(i), ref, tol * scale) << "at flat index " << i;
  }
}

// ---- GEMM: all four transpose layouts over odd shapes ----------------------

TEST_F(SimdParityTest, MatMulAllTransposesOddShapes) {
  const int64_t dims[] = {1, 3, 7, 17, 64, 65};
  uint64_t seed = 1;
  for (int64_t m : dims) {
    for (int64_t k : dims) {
      for (int64_t n : dims) {
        for (int ta = 0; ta < 2; ++ta) {
          for (int tb = 0; tb < 2; ++tb) {
            const Tensor a =
                RandomTensor(ta ? Shape{k, m} : Shape{m, k}, seed++);
            const Tensor b =
                RandomTensor(tb ? Shape{n, k} : Shape{k, n}, seed++);
            simd::SetForceScalar(false);
            const Tensor fast = MatMul(a, b, ta != 0, tb != 0);
            simd::SetForceScalar(true);
            const Tensor ref = MatMul(a, b, ta != 0, tb != 0);
            // k float products per output element; loose per-element bound.
            const float tol =
                1e-5f * std::sqrt(static_cast<float>(std::max<int64_t>(1, k)));
            ExpectNear(fast, ref, tol);
          }
        }
      }
    }
  }
}

TEST_F(SimdParityTest, BatchedMatMulMatchesScalar) {
  const Tensor a = RandomTensor({3, 17, 65}, 7);
  const Tensor b = RandomTensor({3, 65, 7}, 8);
  simd::SetForceScalar(false);
  const Tensor fast = BatchedMatMul(a, b);
  simd::SetForceScalar(true);
  const Tensor ref = BatchedMatMul(a, b);
  ExpectNear(fast, ref, 1e-4f);
}

TEST_F(SimdParityTest, MatMulZeroInnerDimIsZero) {
  // k == 0: the packed kernel must still store (zeros) into the
  // uninitialized output.
  const Tensor a = Tensor::Uninitialized({5, 0});
  const Tensor b = Tensor::Uninitialized({0, 9});
  const Tensor c = MatMul(a, b);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c.flat(i), 0.0f);
}

// ---- Elementwise / reduction kernels ----------------------------------------

TEST_F(SimdParityTest, DotAndAxpyOddLengths) {
  for (int64_t n : {1, 3, 7, 17, 64, 65}) {
    const Tensor x = RandomTensor({n}, 100 + static_cast<uint64_t>(n));
    const Tensor yv = RandomTensor({n}, 200 + static_cast<uint64_t>(n));
    simd::SetForceScalar(false);
    const float dot_fast = simd::Dot(x.data(), yv.data(), n);
    std::vector<float> acc_fast(yv.data(), yv.data() + n);
    simd::Axpy(0.37f, x.data(), acc_fast.data(), n);
    simd::SetForceScalar(true);
    const float dot_ref = simd::Dot(x.data(), yv.data(), n);
    std::vector<float> acc_ref(yv.data(), yv.data() + n);
    simd::Axpy(0.37f, x.data(), acc_ref.data(), n);
    EXPECT_NEAR(dot_fast, dot_ref, 1e-4f * static_cast<float>(n));
    for (int64_t i = 0; i < n; ++i) {
      // Same Madd arithmetic in tail and scalar path: bitwise equal.
      EXPECT_EQ(acc_fast[static_cast<size_t>(i)],
                acc_ref[static_cast<size_t>(i)]);
    }
  }
}

TEST_F(SimdParityTest, ExpMatchesScalarTailExactly) {
  // The vector body and scalar tail share one polynomial, so exp is a pure
  // function of the input value: compute the same values at different
  // alignments and require bitwise equality.
  const int64_t n = 67;
  const Tensor x = RandomTensor({n}, 42, 3.0f);
  std::vector<float> a(static_cast<size_t>(n)), b(static_cast<size_t>(n) + 3);
  simd::ExpInto(a.data(), x.data(), n);
  // Recompute shifted: element i lands at a different lane offset.
  std::vector<float> shifted(static_cast<size_t>(n) + 3);
  std::copy_n(x.data(), n, shifted.data() + 3);
  shifted[0] = shifted[1] = shifted[2] = 0.0f;
  simd::ExpInto(b.data(), shifted.data(), n + 3);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(a[static_cast<size_t>(i)], b[static_cast<size_t>(i) + 3])
        << "exp not position-independent at " << i;
  }
}

TEST_F(SimdParityTest, ExpAccuracyAgainstLibm) {
  for (float v : {-87.0f, -10.0f, -1.0f, -1e-3f, 0.0f, 1e-3f, 0.5f, 1.0f,
                  10.0f, 88.0f}) {
    const float got = simd::ExpScalar(v);
    const float want = std::exp(v);
    EXPECT_NEAR(got, want, 4e-7f * std::max(1.0f, want)) << "exp(" << v << ")";
  }
}

TEST_F(SimdParityTest, SoftmaxParityAndRowSums) {
  for (int64_t last : {1, 3, 7, 17, 64, 65}) {
    const Tensor x = RandomTensor({5, last}, 300 + static_cast<uint64_t>(last),
                                  2.0f);
    simd::SetForceScalar(false);
    const Tensor fast = SoftmaxLastDim(x);
    simd::SetForceScalar(true);
    const Tensor ref = SoftmaxLastDim(x);
    ExpectNear(fast, ref, 1e-5f);
    for (int64_t r = 0; r < 5; ++r) {
      float sum = 0.0f;
      for (int64_t j = 0; j < last; ++j) sum += fast.at(r, j);
      EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
  }
}

TEST_F(SimdParityTest, GeluSiluTanhParity) {
  const int64_t n = 131;
  const Tensor x = RandomTensor({n}, 9, 2.5f);
  simd::SetForceScalar(false);
  const Tensor gelu_fast = GeluForward(x);
  const Tensor silu_fast = SiluForward(x);
  std::vector<float> tanh_fast(static_cast<size_t>(n));
  simd::TanhInto(tanh_fast.data(), x.data(), n);
  simd::SetForceScalar(true);
  const Tensor gelu_ref = GeluForward(x);
  const Tensor silu_ref = SiluForward(x);
  std::vector<float> tanh_ref(static_cast<size_t>(n));
  simd::TanhInto(tanh_ref.data(), x.data(), n);
  ExpectNear(gelu_fast, gelu_ref, 1e-5f);
  ExpectNear(silu_fast, silu_ref, 1e-5f);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(tanh_fast[static_cast<size_t>(i)],
                tanh_ref[static_cast<size_t>(i)], 1e-5f);
    // Reference values against libm.
    EXPECT_NEAR(tanh_fast[static_cast<size_t>(i)], std::tanh(x.flat(i)),
                2e-6f);
  }
}

TEST_F(SimdParityTest, GeluGradSiluGradParity) {
  const int64_t n = 67;
  const Tensor x = RandomTensor({n}, 10, 2.0f);
  const Tensor g = RandomTensor({n}, 11);
  simd::SetForceScalar(false);
  const Tensor dg_fast = GeluBackward(x, g);
  const Tensor ds_fast = SiluBackward(x, g);
  simd::SetForceScalar(true);
  const Tensor dg_ref = GeluBackward(x, g);
  const Tensor ds_ref = SiluBackward(x, g);
  ExpectNear(dg_fast, dg_ref, 1e-5f);
  ExpectNear(ds_fast, ds_ref, 1e-5f);
}

TEST_F(SimdParityTest, LayerNormParity) {
  for (int64_t last : {1, 3, 7, 17, 64, 65}) {
    const Tensor x =
        RandomTensor({4, last}, 500 + static_cast<uint64_t>(last), 3.0f);
    const Tensor gamma = RandomTensor({last}, 600 + static_cast<uint64_t>(last));
    const Tensor beta = RandomTensor({last}, 700 + static_cast<uint64_t>(last));
    Tensor y_fast, h_fast, is_fast, y_ref, h_ref, is_ref;
    simd::SetForceScalar(false);
    LayerNormForward(x, gamma, beta, 1e-5f, &y_fast, &h_fast, &is_fast);
    simd::SetForceScalar(true);
    LayerNormForward(x, gamma, beta, 1e-5f, &y_ref, &h_ref, &is_ref);
    ExpectNear(y_fast, y_ref, 1e-4f);
    ExpectNear(h_fast, h_ref, 1e-4f);
    ExpectNear(is_fast, is_ref, 1e-4f);
  }
}

TEST_F(SimdParityTest, ElementwiseBinaryParity) {
  const int64_t n = 65;
  const Tensor a = RandomTensor({n}, 20);
  Tensor b = RandomTensor({n}, 21);
  // Keep divisors away from zero.
  for (int64_t i = 0; i < n; ++i)
    b.set_flat(i, b.flat(i) + (b.flat(i) >= 0.0f ? 1.0f : -1.0f));
  simd::SetForceScalar(false);
  const Tensor add_f = Add(a, b), sub_f = Sub(a, b), mul_f = Mul(a, b),
               div_f = Div(a, b);
  simd::SetForceScalar(true);
  const Tensor add_r = Add(a, b), sub_r = Sub(a, b), mul_r = Mul(a, b),
               div_r = Div(a, b);
  // Lane arithmetic for + - * / is IEEE-identical to scalar: bitwise equal.
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(add_f.flat(i), add_r.flat(i));
    EXPECT_EQ(sub_f.flat(i), sub_r.flat(i));
    EXPECT_EQ(mul_f.flat(i), mul_r.flat(i));
    EXPECT_EQ(div_f.flat(i), div_r.flat(i));
  }
}

TEST_F(SimdParityTest, Conv1dParity) {
  const Tensor x = RandomTensor({2, 3, 31}, 30);
  const Tensor w = RandomTensor({5, 3, 3}, 31);
  const Tensor bias = RandomTensor({5}, 32);
  simd::SetForceScalar(false);
  const Tensor fast = Conv1d(x, w, bias, 1);
  simd::SetForceScalar(true);
  const Tensor ref = Conv1d(x, w, bias, 1);
  ExpectNear(fast, ref, 1e-5f);
}

}  // namespace
}  // namespace imdiff
