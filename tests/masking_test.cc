#include <gtest/gtest.h>

#include "core/masking.h"

namespace imdiff {
namespace {

TEST(GratingMaskTest, Table1Configuration) {
  // Window 100, 5 masked + 5 unmasked sub-windows of 10 steps each.
  Tensor m0 = MakeGratingMask(4, 100, 5, 0);
  Tensor m1 = MakeGratingMask(4, 100, 5, 1);
  // Policy 0 masks even sub-windows: positions 0-9, 20-29, ...
  EXPECT_EQ(m0.at(0, 0), 0.0f);
  EXPECT_EQ(m0.at(0, 9), 0.0f);
  EXPECT_EQ(m0.at(0, 10), 1.0f);
  EXPECT_EQ(m0.at(0, 25), 0.0f);
  // Policy 1 is the complement.
  for (int64_t i = 0; i < m0.numel(); ++i) {
    EXPECT_EQ(m0.flat(i) + m1.flat(i), 1.0f);
  }
  // Exactly half the positions are masked.
  double sum = 0;
  for (int64_t i = 0; i < m0.numel(); ++i) sum += m0.flat(i);
  EXPECT_EQ(sum, 200.0);  // 4 features * 50 observed positions
}

TEST(GratingMaskTest, MasksSpanAllFeatures) {
  Tensor m = MakeGratingMask(6, 40, 2, 0);
  for (int64_t l = 0; l < 40; ++l) {
    const float first = m.at(0, l);
    for (int64_t k = 1; k < 6; ++k) EXPECT_EQ(m.at(k, l), first);
  }
}

TEST(GratingMaskTest, UnevenWindowIsHandled) {
  // 23 steps into 4 sub-windows: even partition, complementary.
  Tensor m0 = MakeGratingMask(2, 23, 2, 0);
  Tensor m1 = MakeGratingMask(2, 23, 2, 1);
  for (int64_t i = 0; i < m0.numel(); ++i) {
    EXPECT_EQ(m0.flat(i) + m1.flat(i), 1.0f);
  }
}

class MaskStrategyTest : public ::testing::TestWithParam<MaskStrategy> {};

TEST_P(MaskStrategyTest, PairCoversEveryPositionExactlyOnceForTwoPolicy) {
  Rng rng(1);
  auto pair = MakeMaskPair(GetParam(), 3, 60, 5, &rng);
  EXPECT_EQ(pair.first.shape(), (Shape{3, 60}));
  EXPECT_EQ(pair.second.shape(), (Shape{3, 60}));
  if (NumPolicies(GetParam()) == 2) {
    // Complementary: every coordinate masked (0) in exactly one policy.
    for (int64_t i = 0; i < pair.first.numel(); ++i) {
      EXPECT_EQ(pair.first.flat(i) + pair.second.flat(i), 1.0f);
    }
  }
}

TEST_P(MaskStrategyTest, ValuesAreBinary) {
  Rng rng(2);
  auto pair = MakeMaskPair(GetParam(), 4, 50, 5, &rng);
  for (int64_t i = 0; i < pair.first.numel(); ++i) {
    const float v = pair.first.flat(i);
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, MaskStrategyTest,
    ::testing::Values(MaskStrategy::kGrating, MaskStrategy::kRandom,
                      MaskStrategy::kForecasting,
                      MaskStrategy::kReconstruction),
    [](const ::testing::TestParamInfo<MaskStrategy>& info) {
      switch (info.param) {
        case MaskStrategy::kGrating:
          return "Grating";
        case MaskStrategy::kRandom:
          return "Random";
        case MaskStrategy::kForecasting:
          return "Forecasting";
        case MaskStrategy::kReconstruction:
          return "Reconstruction";
      }
      return "Unknown";
    });

TEST(MaskStrategyModesTest, ForecastingMasksSecondHalf) {
  auto pair = MakeMaskPair(MaskStrategy::kForecasting, 2, 10, 5, nullptr);
  for (int64_t l = 0; l < 5; ++l) EXPECT_EQ(pair.first.at(0, l), 1.0f);
  for (int64_t l = 5; l < 10; ++l) EXPECT_EQ(pair.first.at(0, l), 0.0f);
}

TEST(MaskStrategyModesTest, ReconstructionMasksEverything) {
  auto pair = MakeMaskPair(MaskStrategy::kReconstruction, 2, 10, 5, nullptr);
  for (int64_t i = 0; i < pair.first.numel(); ++i) {
    EXPECT_EQ(pair.first.flat(i), 0.0f);
  }
}

TEST(MaskStrategyModesTest, RandomMaskRoughlyHalf) {
  Rng rng(3);
  auto pair = MakeMaskPair(MaskStrategy::kRandom, 10, 100, 5, &rng);
  double sum = 0;
  for (int64_t i = 0; i < pair.first.numel(); ++i) sum += pair.first.flat(i);
  EXPECT_GT(sum, 400.0);
  EXPECT_LT(sum, 600.0);
}

TEST(MaskStrategyModesTest, PolicyCounts) {
  EXPECT_EQ(NumPolicies(MaskStrategy::kGrating), 2);
  EXPECT_EQ(NumPolicies(MaskStrategy::kRandom), 2);
  EXPECT_EQ(NumPolicies(MaskStrategy::kForecasting), 1);
  EXPECT_EQ(NumPolicies(MaskStrategy::kReconstruction), 1);
}

}  // namespace
}  // namespace imdiff
