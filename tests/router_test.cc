// Sharded-serving tests (src/serve/router + src/serve/worker): a real
// ShardRouter talking to RunShardWorker dispatch loops over unix-domain
// sockets (workers run as in-test threads — the loop body is identical to
// the process main). The invariant under test everywhere: the assembled
// score streams are bitwise identical to the single-session serial replay,
// through sharding, live resharding moves, and a chaos shard kill recovered
// from the router's journal + stash.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "net/messages.h"
#include "serve/model_registry.h"
#include "serve/replay.h"
#include "serve/router.h"
#include "serve/worker.h"
#include "utils/fault.h"

namespace imdiff {
namespace {

using serve::ModelEntry;
using serve::TenantStream;

constexpr uint64_t kSeedBase = 7;
constexpr int64_t kBlock = 50;
constexpr int64_t kContext = 50;

// Tiny config with stochastic sampling ON (see serve_test.cc): the seeded
// per-window noise streams are what makes shard placement unobservable.
ImDiffusionConfig RouterTinyConfig(uint64_t seed) {
  ImDiffusionConfig config;
  config.model.window = 40;
  config.model.hidden = 16;
  config.model.num_blocks = 1;
  config.model.num_heads = 2;
  config.model.ff_dim = 32;
  config.model.side_dim = 8;
  config.model.step_embed_dim = 16;
  config.schedule.num_steps = 6;
  config.schedule.beta_end = 0.7f;
  config.num_masked_windows = 2;
  config.epochs = 4;
  config.batch_size = 4;
  config.train_stride = 10;
  config.vote_last_steps = 4;
  config.vote_stride = 1;
  config.stochastic_sampling = true;
  config.seed = seed;
  return config;
}

// One fitted model for the suite, saved once as the checkpoint every worker
// warm-loads (the kPublish path) and kept in memory as the serial reference.
struct SuiteModel {
  std::shared_ptr<const ModelEntry> entry;
  std::string checkpoint;
};

const SuiteModel& SharedSuiteModel() {
  static const SuiteModel* suite = [] {
    const MtsDataset history = MakeMicroserviceLatencyDataset(
        /*seed=*/3, /*num_services=*/3, /*train_length=*/240,
        /*test_length=*/1);
    auto e = std::make_shared<ModelEntry>();
    e->name = "latency";
    e->version = 1;
    e->stats = FitMinMax(history.train);
    auto detector = std::make_shared<ImDiffusionDetector>(RouterTinyConfig(11));
    detector->Fit(ApplyMinMax(history.train, e->stats));
    auto* s = new SuiteModel;
    s->checkpoint = testing::TempDir() + "imdiff_router_model.ckpt";
    EXPECT_TRUE(serve::SaveModelWithRetry(*detector, s->checkpoint));
    e->detector = std::move(detector);
    s->entry = std::move(e);
    return s;
  }();
  return *suite;
}

TenantStream MakeStream(const std::string& tenant, uint64_t seed,
                        int64_t length) {
  TenantStream stream;
  stream.tenant = tenant;
  stream.samples = MakeMicroserviceLatencyDataset(seed, /*num_services=*/3,
                                                  /*train_length=*/1,
                                                  /*test_length=*/length)
                       .test;
  return stream;
}

// Positional score assembly with the router-grade conflict check: duplicate
// deliveries (recovery replays) must match the first delivery bitwise.
struct Assembler {
  void OnBlock(const net::ScoredBlockMsg& msg) {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<float>& scores = streams[msg.tenant];
    std::vector<uint8_t>& written = mask[msg.tenant];
    const size_t end = static_cast<size_t>(msg.start) + msg.scores.size();
    if (scores.size() < end) {
      scores.resize(end, 0.0f);
      written.resize(end, 0);
    }
    for (size_t i = 0; i < msg.scores.size(); ++i) {
      const size_t pos = static_cast<size_t>(msg.start) + i;
      if (written[pos] && scores[pos] != msg.scores[i]) ++conflicts;
      scores[pos] = msg.scores[i];
      written[pos] = 1;
    }
  }

  std::mutex mu;
  std::map<std::string, std::vector<float>> streams;
  std::map<std::string, std::vector<uint8_t>> mask;
  int64_t conflicts = 0;
};

// N in-thread workers + a connected, published router wired to `assembler`.
class Cluster {
 public:
  Cluster(int64_t shards, const char* name, Assembler* assembler) {
    serve::RouterOptions options;
    options.seed = 21;
    // Generous dial budget: the worker threads are still binding.
    options.reconnect.max_attempts = 10;
    options.reconnect.base_seconds = 0.01;
    for (int64_t s = 0; s < shards; ++s) {
      serve::WorkerOptions worker;
      worker.socket_path = testing::TempDir() + "imdiff_router_" + name +
                           "_" + std::to_string(s) + ".sock";
      // A crashed earlier run may have left a stale socket; the worker
      // fail-fasts on it by design, so clean up explicitly first.
      std::remove(worker.socket_path.c_str());
      worker.shard_id = s;
      worker.config = RouterTinyConfig(11);
      worker.serve.num_workers = 1;
      worker.serve.queue_capacity = 4096;
      worker.serve.session.online.block = kBlock;
      worker.serve.session.online.context = kContext;
      worker.serve.session.seed_base = kSeedBase;
      worker.serve.batch.max_batch_windows = 1 << 20;
      worker.serve.batch.flush_window_seconds = 1e6;
      threads_.emplace_back([this, worker] {
        SetExitCode(worker.shard_id, RunShardWorker(worker));
      });
      serve::ShardSpec spec;
      spec.id = s;
      spec.socket_path = worker.socket_path;
      options.shards.push_back(std::move(spec));
    }
    router_ = std::make_unique<serve::ShardRouter>(
        options, [assembler](int64_t, const net::ScoredBlockMsg& msg) {
          assembler->OnBlock(msg);
        });
    const SuiteModel& suite = SharedSuiteModel();
    EXPECT_TRUE(router_->Connect()) << router_->error();
    EXPECT_TRUE(router_->Publish(
        "latency", suite.checkpoint, /*num_features=*/3, /*config_seed=*/11,
        suite.entry->stats.min, suite.entry->stats.max))
        << router_->error();
  }

  ~Cluster() {
    router_->ShutdownAll();
    for (std::thread& t : threads_) t.join();
  }

  // Worker exit codes by shard id, written as each dispatch loop returns;
  // -1 while the worker is still running.
  void SetExitCode(int64_t shard, int code) {
    std::lock_guard<std::mutex> lock(exit_mu_);
    exit_codes_[shard] = code;
  }
  int GetExitCode(int64_t shard) {
    std::lock_guard<std::mutex> lock(exit_mu_);
    auto it = exit_codes_.find(shard);
    return it == exit_codes_.end() ? -1 : it->second;
  }

  serve::ShardRouter& router() { return *router_; }

 private:
  std::mutex exit_mu_;
  std::map<int64_t, int> exit_codes_;
  std::vector<std::thread> threads_;
  std::unique_ptr<serve::ShardRouter> router_;
};

std::vector<float> SerialReference(const TenantStream& stream) {
  OnlineDetector::Options online;
  online.block = kBlock;
  online.context = kContext;
  return serve::ReplaySerial(*SharedSuiteModel().entry, online, kSeedBase,
                             stream);
}

void SubmitRange(serve::ShardRouter& router, const TenantStream& stream,
                 int64_t begin, int64_t end) {
  const int64_t k = stream.samples.dim(1);
  std::vector<float> sample(static_cast<size_t>(k));
  for (int64_t l = begin; l < end; ++l) {
    std::copy_n(stream.samples.data() + l * k, k, sample.begin());
    ASSERT_TRUE(router.Submit(stream.tenant, sample, {})) << router.error();
  }
}

TEST(RouterTest, ShardedReplayMatchesSerialBitwise) {
  Assembler assembler;
  Cluster cluster(/*shards=*/3, "basic", &assembler);
  std::vector<TenantStream> streams;
  for (int t = 0; t < 4; ++t) {
    streams.push_back(MakeStream("tenant-" + std::to_string(t),
                                 /*seed=*/101 + t, /*length=*/150));
  }
  // Round-robin interleave, like a real multi-tenant ingest.
  for (int64_t l = 0; l < 150; ++l) {
    for (const TenantStream& stream : streams) {
      SubmitRange(cluster.router(), stream, l, l + 1);
    }
  }
  serve::ShardRouter::DrainTotals totals;
  ASSERT_TRUE(cluster.router().DrainAll(&totals));
  EXPECT_EQ(totals.accepted, 600);
  EXPECT_EQ(totals.shed, 0);

  // Consistent hashing spreads load: over a spray of probe names (ShardOf on
  // an unpinned tenant is a pure ring lookup) every shard sees placements.
  std::map<int64_t, int> placement;
  for (int t = 0; t < 64; ++t) {
    ++placement[cluster.router().ShardOf("probe-" + std::to_string(t))];
  }
  EXPECT_EQ(placement.size(), 3u);

  std::lock_guard<std::mutex> lock(assembler.mu);
  EXPECT_EQ(assembler.conflicts, 0);
  for (const TenantStream& stream : streams) {
    const std::vector<float> want = SerialReference(stream);
    std::vector<float> got = assembler.streams.at(stream.tenant);
    got.resize(want.size(), 0.0f);  // positions past the last block stay 0
    EXPECT_EQ(got, want) << stream.tenant;
  }
}

TEST(RouterTest, MoveTenantContinuesBitwise) {
  Assembler assembler;
  Cluster cluster(/*shards=*/2, "move", &assembler);
  const TenantStream stream = MakeStream("mover", /*seed=*/201, /*length=*/150);

  SubmitRange(cluster.router(), stream, 0, 70);
  serve::ShardRouter::DrainTotals totals;
  ASSERT_TRUE(cluster.router().DrainAll(&totals));

  // Move to the other shard at the barrier, then keep streaming.
  const int64_t source = cluster.router().ShardOf("mover");
  const int64_t target = source == 0 ? 1 : 0;
  ASSERT_TRUE(cluster.router().MoveTenant("mover", target));
  EXPECT_EQ(cluster.router().ShardOf("mover"), target);

  SubmitRange(cluster.router(), stream, 70, 150);
  ASSERT_TRUE(cluster.router().DrainAll(&totals));

  std::lock_guard<std::mutex> lock(assembler.mu);
  EXPECT_EQ(assembler.conflicts, 0);
  const std::vector<float> want = SerialReference(stream);
  std::vector<float> got = assembler.streams.at("mover");
  got.resize(want.size(), 0.0f);
  EXPECT_EQ(got, want);
}

TEST(RouterTest, CrashedShardRecoversFromJournalAndStashBitwise) {
  Assembler assembler;
  Cluster cluster(/*shards=*/2, "crash", &assembler);
  std::vector<TenantStream> streams;
  for (int t = 0; t < 3; ++t) {
    streams.push_back(MakeStream("crash-" + std::to_string(t),
                                 /*seed=*/301 + t, /*length=*/150));
  }
  // Barrier at 70: every session's state lands in the router's stash copy;
  // the 30 samples after it sit in the journal when the shard dies.
  for (const TenantStream& stream : streams) {
    SubmitRange(cluster.router(), stream, 0, 70);
  }
  serve::ShardRouter::DrainTotals totals;
  ASSERT_TRUE(cluster.router().DrainAll(&totals));
  for (const TenantStream& stream : streams) {
    SubmitRange(cluster.router(), stream, 70, 100);
  }

  const std::vector<int64_t> alive = cluster.router().AliveShards();
  ASSERT_EQ(alive.size(), 2u);
  cluster.router().CrashShard(alive.front());
  EXPECT_EQ(cluster.router().alive_shards(), 1);
  // The killed worker's dispatch loop exited with the crash code.
  for (int spin = 0; spin < 2000; ++spin) {
    if (cluster.GetExitCode(alive.front()) >= 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(cluster.GetExitCode(alive.front()), serve::kWorkerExitCrashed);

  // Every tenant now lives on the survivor; the stream just continues.
  for (const TenantStream& stream : streams) {
    EXPECT_EQ(cluster.router().ShardOf(stream.tenant), alive.back());
    SubmitRange(cluster.router(), stream, 100, 150);
  }
  ASSERT_TRUE(cluster.router().DrainAll(&totals));

  std::lock_guard<std::mutex> lock(assembler.mu);
  // Recovery re-scores the journal tail, so duplicate deliveries are fine —
  // but they must be bitwise equal to the originals, and nothing may be lost.
  EXPECT_EQ(assembler.conflicts, 0);
  for (const TenantStream& stream : streams) {
    const std::vector<float> want = SerialReference(stream);
    std::vector<float> got = assembler.streams.at(stream.tenant);
    got.resize(want.size(), 0.0f);
    EXPECT_EQ(got, want) << stream.tenant;
  }
}

TEST(RouterTest, ConnectFailsFastOnDuplicateShardIds) {
  serve::RouterOptions options;
  options.reconnect.base_seconds = 1e-4;
  for (int i = 0; i < 2; ++i) {
    serve::ShardSpec spec;
    spec.id = 0;  // duplicate on purpose
    spec.socket_path = testing::TempDir() + "imdiff_router_dup.sock";
    options.shards.push_back(std::move(spec));
  }
  serve::ShardRouter router(options);
  EXPECT_FALSE(router.Connect());
  EXPECT_FALSE(router.error().empty());
}

}  // namespace
}  // namespace imdiff
