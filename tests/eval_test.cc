#include <gtest/gtest.h>

#include "eval/runner.h"
#include "eval/tables.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace {

TEST(RunnerTest, DetectorNameLists) {
  const auto table2 = Table2DetectorNames();
  EXPECT_EQ(table2.size(), 11u);
  EXPECT_EQ(table2.front(), "IForest");
  EXPECT_EQ(table2.back(), "ImDiffusion");
  const auto ablation = AblationDetectorNames();
  EXPECT_EQ(ablation.size(), 8u);
  EXPECT_EQ(ablation.front(), "ImDiffusion");
}

TEST(RunnerTest, MakeDetectorCoversAllNames) {
  for (const std::string& name : Table2DetectorNames()) {
    EXPECT_NE(MakeDetector(name, 1, SpeedProfile::kFast), nullptr) << name;
  }
  for (const std::string& name : AblationDetectorNames()) {
    EXPECT_NE(MakeDetector(name, 1, SpeedProfile::kFast), nullptr) << name;
  }
}

TEST(RunnerTest, EvaluateDetectorProducesAllMetrics) {
  MtsDataset ds = MakeBenchmarkDataset(BenchmarkId::kGcp, 3, 0.2f);
  auto detector = MakeDetector("IForest", 5, SpeedProfile::kFast);
  RunMetrics metrics = EvaluateDetector(*detector, ds);
  EXPECT_GE(metrics.f1, 0.0);
  EXPECT_LE(metrics.f1, 1.0);
  EXPECT_GE(metrics.precision, 0.0);
  EXPECT_GE(metrics.recall, 0.0);
  EXPECT_GE(metrics.r_auc_pr, 0.0);
  EXPECT_LE(metrics.r_auc_pr, 1.0);
  EXPECT_GE(metrics.add, 0.0);
  EXPECT_GT(metrics.points_per_second, 0.0);
}

TEST(RunnerTest, EvaluateManySeedsAggregates) {
  MtsDataset ds = MakeBenchmarkDataset(BenchmarkId::kGcp, 3, 0.2f);
  AggregateMetrics agg =
      EvaluateManySeeds("IForest", ds, 2, SpeedProfile::kFast);
  EXPECT_EQ(agg.num_runs, 2);
  EXPECT_GE(agg.f1_std, 0.0);
  EXPECT_GE(agg.f1, 0.0);
}

TEST(RunnerTest, AverageAggregates) {
  AggregateMetrics a;
  a.f1 = 0.8;
  a.add = 100;
  AggregateMetrics b;
  b.f1 = 0.6;
  b.add = 200;
  AggregateMetrics avg = AverageAggregates({a, b});
  EXPECT_NEAR(avg.f1, 0.7, 1e-9);
  EXPECT_NEAR(avg.add, 150, 1e-9);
}

TEST(RunnerTest, ParseHarnessOptions) {
  const char* argv[] = {"bench", "--seeds", "4", "--scale", "0.25", "--paper",
                        "--dataset-seed", "99"};
  HarnessOptions options =
      ParseHarnessOptions(8, const_cast<char**>(argv));
  EXPECT_EQ(options.num_seeds, 4);
  EXPECT_FLOAT_EQ(options.size_scale, 0.25f);
  EXPECT_EQ(options.profile, SpeedProfile::kPaper);
  EXPECT_EQ(options.dataset_seed, 99u);
}

TEST(RunnerTest, ParseHarnessDefaults) {
  const char* argv[] = {"bench"};
  HarnessOptions options = ParseHarnessOptions(1, const_cast<char**>(argv));
  EXPECT_EQ(options.num_seeds, 2);
  EXPECT_EQ(options.profile, SpeedProfile::kFast);
}

// Regression: --seeds 0 / negative and non-positive --scale used to flow
// straight into EvaluateManySeeds and the dataset simulators, dividing by
// zero and emitting NaN tables. They now fail fast with a clear message.
TEST(RunnerDeathTest, ParseHarnessRejectsNonPositiveSeeds) {
  const char* zero[] = {"bench", "--seeds", "0"};
  EXPECT_DEATH(ParseHarnessOptions(3, const_cast<char**>(zero)),
               "--seeds must be a positive integer");
  const char* negative[] = {"bench", "--seeds", "-3"};
  EXPECT_DEATH(ParseHarnessOptions(3, const_cast<char**>(negative)),
               "--seeds must be a positive integer");
}

TEST(RunnerDeathTest, ParseHarnessRejectsNonPositiveScale) {
  const char* zero[] = {"bench", "--scale", "0"};
  EXPECT_DEATH(ParseHarnessOptions(3, const_cast<char**>(zero)),
               "--scale must be a positive number");
  const char* negative[] = {"bench", "--scale", "-0.5"};
  EXPECT_DEATH(ParseHarnessOptions(3, const_cast<char**>(negative)),
               "--scale must be a positive number");
}

// The (detector, seed) runs of EvaluateManySeeds execute in parallel on the
// compute pool; every run owns its detector and Rng, so the aggregate must
// match the serial execution exactly.
TEST(RunnerTest, EvaluateManySeedsIdenticalAcrossThreadCounts) {
  MtsDataset ds = MakeBenchmarkDataset(BenchmarkId::kGcp, 3, 0.2f);
  SetComputeThreads(1);
  AggregateMetrics serial =
      EvaluateManySeeds("IForest", ds, 3, SpeedProfile::kFast);
  SetComputeThreads(4);
  AggregateMetrics parallel =
      EvaluateManySeeds("IForest", ds, 3, SpeedProfile::kFast);
  SetComputeThreads(1);
  EXPECT_EQ(serial.precision, parallel.precision);
  EXPECT_EQ(serial.recall, parallel.recall);
  EXPECT_EQ(serial.f1, parallel.f1);
  EXPECT_EQ(serial.f1_std, parallel.f1_std);
  EXPECT_EQ(serial.r_auc_pr, parallel.r_auc_pr);
  EXPECT_EQ(serial.add, parallel.add);
  EXPECT_EQ(serial.num_runs, parallel.num_runs);
}

TEST(TablesTest, RendersAlignedColumns) {
  TextTable table({"Method", "F1"});
  table.AddRow({"ImDiffusion", "0.9284"});
  table.AddRow({"X", "0.1"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("Method"), std::string::npos);
  EXPECT_NE(rendered.find("ImDiffusion"), std::string::npos);
  EXPECT_NE(rendered.find("----"), std::string::npos);
}

TEST(TablesTest, Formatters) {
  EXPECT_EQ(FormatMetric(0.92837, 4), "0.9284");
  EXPECT_EQ(FormatMetric(1.0, 2), "1.00");
  EXPECT_EQ(FormatMeanStd(104.4, 13.6, 0), "104 +- 14");
}

}  // namespace
}  // namespace imdiff
