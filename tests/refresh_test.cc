// Continuous-refresh tests (src/serve/refresh, DESIGN.md §18): shadow block
// tagging and live-path isolation, the stale-cache-across-promotion
// regression, fault recovery at every refresh fault point, and the two-run
// bitwise determinism contract of the promotion decision log.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/online_detector.h"
#include "data/benchmarks.h"
#include "serve/model_registry.h"
#include "serve/refresh.h"
#include "serve/replay.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "utils/fault.h"
#include "utils/metrics.h"

namespace imdiff {
namespace {

using serve::BlockRequest;
using serve::ModelEntry;
using serve::ModelRegistry;
using serve::RefreshTrainer;
using serve::SessionManager;
using serve::StreamServer;
using serve::TenantStream;

using Event = RefreshTrainer::Event;

// Tiny configuration (see serve_test.cc) with stochastic sampling ON so the
// shadow dual-score shares the live block's seeded noise streams.
ImDiffusionConfig RefreshTinyConfig(uint64_t seed) {
  ImDiffusionConfig config;
  config.model.window = 40;
  config.model.hidden = 16;
  config.model.num_blocks = 1;
  config.model.num_heads = 2;
  config.model.ff_dim = 32;
  config.model.step_embed_dim = 16;
  config.model.side_dim = 8;
  config.schedule.num_steps = 6;
  config.schedule.beta_end = 0.7f;
  config.num_masked_windows = 2;
  config.epochs = 4;
  config.batch_size = 4;
  config.train_stride = 10;
  config.vote_last_steps = 4;
  config.vote_stride = 1;
  config.stochastic_sampling = true;
  config.seed = seed;
  return config;
}

// One shared fitted live model for the suite (fitting dominates test time).
std::shared_ptr<const ModelEntry> SharedModel() {
  static const std::shared_ptr<const ModelEntry> entry = [] {
    const MtsDataset history = MakeMicroserviceLatencyDataset(
        /*seed=*/3, /*num_services=*/3, /*train_length=*/240,
        /*test_length=*/1);
    auto e = std::make_shared<ModelEntry>();
    e->name = "latency";
    e->version = 1;
    e->stats = FitMinMax(history.train);
    auto detector = std::make_shared<ImDiffusionDetector>(RefreshTinyConfig(11));
    detector->Fit(ApplyMinMax(history.train, e->stats));
    e->detector = std::move(detector);
    return e;
  }();
  return entry;
}

// A second fitted model with different weights but the SAME normalization
// stats, so a stale cache entry from version 1 is numerically detectable
// after a swap to version 2.
std::shared_ptr<const ModelEntry> AltModel() {
  static const std::shared_ptr<const ModelEntry> entry = [] {
    const MtsDataset history = MakeMicroserviceLatencyDataset(
        /*seed=*/3, /*num_services=*/3, /*train_length=*/240,
        /*test_length=*/1);
    auto e = std::make_shared<ModelEntry>();
    e->name = "latency";
    e->version = 2;
    e->stats = SharedModel()->stats;
    auto detector = std::make_shared<ImDiffusionDetector>(RefreshTinyConfig(29));
    detector->Fit(ApplyMinMax(history.train, e->stats));
    e->detector = std::move(detector);
    return e;
  }();
  return entry;
}

TenantStream MakeStream(const std::string& tenant, uint64_t seed,
                        int64_t length) {
  TenantStream stream;
  stream.tenant = tenant;
  stream.samples = MakeMicroserviceLatencyDataset(seed, /*num_services=*/3,
                                                  /*train_length=*/1,
                                                  /*test_length=*/length)
                       .test;
  return stream;
}

int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name)->value();
}

// Thread-safe scored-block collector (the callback runs on batcher threads).
struct BlockLog {
  std::mutex mu;
  std::vector<StreamServer::ScoredBlock> blocks;

  StreamServer::AlertCallback Callback() {
    return [this](const StreamServer::ScoredBlock& block) {
      std::lock_guard<std::mutex> lock(mu);
      blocks.push_back(block);
    };
  }
  // Assembled live (non-shadow) score stream for one tenant, in block order.
  std::vector<float> LiveScores(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(mu);
    std::map<int64_t, const StreamServer::ScoredBlock*> ordered;
    for (const auto& block : blocks) {
      if (block.shadow || block.tenant != tenant) continue;
      ordered[block.block_index] = &block;
    }
    std::vector<float> scores;
    for (const auto& [index, block] : ordered) {
      scores.insert(scores.end(), block->alert.scores.begin(),
                    block->alert.scores.end());
    }
    return scores;
  }
  int64_t ShadowCount() {
    std::lock_guard<std::mutex> lock(mu);
    int64_t n = 0;
    for (const auto& block : blocks) n += block.shadow ? 1 : 0;
    return n;
  }
};

// Worker=1 base options with drain-point-only batcher flushes: every refresh
// decision then resolves at a Drain() call, a pure function of the stream.
StreamServer::Options RefreshBaseOptions() {
  StreamServer::Options options;
  options.num_workers = 1;
  options.queue_capacity = 4096;
  options.session.online.block = 20;
  options.session.online.context = 40;
  options.session.seed_base = 7;
  options.session.refresh_recent = 128;
  options.batch.max_batch_windows = INT64_C(1) << 30;
  options.batch.flush_window_seconds = 1e9;
  return options;
}

void ArmRefresh(StreamServer::Options* options, ModelRegistry* registry,
                int64_t refresh_every, int64_t verdict_pairs) {
  options->refresh.enabled = true;
  options->refresh.registry = registry;
  options->refresh.model_name = "latency";
  options->refresh.refresh_every = refresh_every;
  options->refresh.fit_epochs = 1;
  options->refresh.verdict_pairs = verdict_pairs;
  options->refresh.shadow_fraction = 1.0;
}

std::shared_ptr<const ModelEntry> PublishLive(ModelRegistry* registry) {
  std::shared_ptr<const ModelEntry> base = SharedModel();
  registry->Publish("latency", base->detector, base->stats);
  return registry->Acquire("latency");
}

// Submits samples [begin, end) of `stream`, then drains: a deterministic
// flush point at which pending blocks score and verdicts resolve.
void SubmitChunkAndDrain(StreamServer* server, const TenantStream& stream,
                         int64_t begin, int64_t end) {
  const int64_t k = stream.samples.dim(1);
  const float* p = stream.samples.data();
  for (int64_t t = begin; t < end; ++t) {
    std::vector<float> sample(p + t * k, p + (t + 1) * k);
    ASSERT_TRUE(server->Submit(stream.tenant, std::move(sample)));
  }
  server->Drain();
}

int64_t CountEvents(const std::vector<Event>& events, Event::Kind kind) {
  int64_t n = 0;
  for (const Event& event : events) n += event.kind == kind ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Refresh window collection

TEST(RefreshWindowTest, CollectRefreshSegmentsSkipsShortTenants) {
  StreamServer::Options base = RefreshBaseOptions();
  base.session.refresh_recent = 64;
  SessionManager sessions(SharedModel(), base.session);

  const TenantStream long_a = MakeStream("a", 21, 50);
  const TenantStream long_b = MakeStream("b", 22, 50);
  const TenantStream short_c = MakeStream("c", 23, 10);
  BlockRequest request;
  for (const TenantStream* stream : {&long_b, &long_a, &short_c}) {
    const int64_t k = stream->samples.dim(1);
    const float* p = stream->samples.data();
    for (int64_t t = 0; t < stream->samples.dim(0); ++t) {
      sessions.Append(stream->tenant,
                      std::vector<float>(p + t * k, p + (t + 1) * k), &request);
    }
  }

  // min_rows = model window: "c" (10 rows) is skipped, "a" and "b" qualify,
  // in tenant-name order, each one contiguous [rows, K] segment.
  std::vector<Tensor> segments;
  ASSERT_TRUE(sessions.CollectRefreshSegments(40, &segments));
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].dim(0), 50);
  EXPECT_EQ(segments[1].dim(0), 50);
  const float* a = long_a.samples.data();
  const float* got = segments[0].data();
  for (int64_t i = 0; i < segments[0].numel(); ++i) {
    ASSERT_EQ(got[i], a[i]) << "segment 0 is not tenant a's raw rows at " << i;
  }

  // No tenant retains 60 rows -> nothing to fit on.
  EXPECT_FALSE(sessions.CollectRefreshSegments(60, &segments));
  EXPECT_TRUE(segments.empty());
}

// ---------------------------------------------------------------------------
// Shadow scoring

TEST(RefreshShadowTest, ShadowBlocksAreTaggedAndLeaveLiveScoresUntouched) {
  ModelRegistry registry;
  std::shared_ptr<const ModelEntry> live = PublishLive(&registry);
  StreamServer::Options options = RefreshBaseOptions();
  // A verdict that never resolves keeps the shadow active for the whole run.
  ArmRefresh(&options, &registry, /*refresh_every=*/100,
             /*verdict_pairs=*/1000000);

  const TenantStream stream = MakeStream("t0", 5, 400);
  const int64_t shadow_before = CounterValue("serve.shadow_blocks");
  BlockLog log;
  StreamServer server(live, options, log.Callback());
  for (int64_t begin = 0; begin < 400; begin += 100) {
    SubmitChunkAndDrain(&server, stream, begin, begin + 100);
  }
  ASSERT_NE(server.refresh(), nullptr);
  EXPECT_TRUE(server.refresh()->shadow_active());
  const std::vector<Event> events = server.refresh()->events();
  server.Shutdown();

  EXPECT_GE(CountEvents(events, Event::Kind::kShadowStaged), 1);
  EXPECT_EQ(CountEvents(events, Event::Kind::kPromoted), 0);
  EXPECT_GT(log.ShadowCount(), 0);
  EXPECT_EQ(CounterValue("serve.shadow_blocks") - shadow_before,
            log.ShadowCount());

  // Every shadow block is full quality and pairs with a live block of the
  // same ordinal (same windows, same seeds).
  std::map<int64_t, int> live_blocks;
  {
    std::lock_guard<std::mutex> lock(log.mu);
    for (const auto& block : log.blocks) {
      if (!block.shadow) live_blocks[block.block_index] += 1;
    }
    for (const auto& block : log.blocks) {
      if (!block.shadow) continue;
      EXPECT_EQ(block.degrade_level, 0);
      EXPECT_EQ(block.precision, Precision::kF32);
      EXPECT_EQ(live_blocks.count(block.block_index), 1u) << block.block_index;
    }
  }

  // Dual-scoring is observability-only: the live score stream must be
  // bitwise identical to the serial no-refresh ground truth. A shadow score
  // leaking into the window-score cache would corrupt later live blocks and
  // fail this comparison.
  const std::vector<float> serial = serve::ReplaySerial(
      *live, options.session.online, options.session.seed_base, stream);
  EXPECT_EQ(serial, log.LiveScores("t0"));
}

// ---------------------------------------------------------------------------
// Stale-cache-across-promotion regression

// A promotion hot-swaps the model under sessions whose window-score caches
// hold OLD-version scores; reusing them would splice version-1 scores into
// version-2 blocks. The fix clears resident caches in SwapModel, so a swap
// mid-stream must be bitwise equivalent to the same swap with the cache
// disabled entirely.
TEST(RefreshPromotionTest, SwapModelInvalidatesWindowScoreCache) {
  const TenantStream stream = MakeStream("t0", 9, 240);
  auto run = [&stream](bool cache_enabled) {
    StreamServer::Options options = RefreshBaseOptions();
    options.session.cache_window_scores = cache_enabled;
    BlockLog log;
    StreamServer server(SharedModel(), options, log.Callback());
    SubmitChunkAndDrain(&server, stream, 0, 120);
    if (cache_enabled) {
      EXPECT_GT(server.sessions().cached_window_scores(), 0);
    }
    server.SwapModel(AltModel());
    // The regression: any version-1 entry surviving the swap would be
    // served as a version-2 score in the overlap windows below.
    EXPECT_EQ(server.sessions().cached_window_scores(), 0);
    SubmitChunkAndDrain(&server, stream, 120, 240);
    server.Shutdown();
    return log.LiveScores("t0");
  };
  const std::vector<float> cached = run(/*cache_enabled=*/true);
  const std::vector<float> uncached = run(/*cache_enabled=*/false);
  ASSERT_EQ(cached.size(), 240u);
  EXPECT_EQ(cached, uncached);
}

TEST(RefreshPromotionTest, AlwaysPromoteVerdictHotSwapsAndKeepsServing) {
  ModelRegistry registry;
  std::shared_ptr<const ModelEntry> live = PublishLive(&registry);
  StreamServer::Options options = RefreshBaseOptions();
  ArmRefresh(&options, &registry, /*refresh_every=*/100, /*verdict_pairs=*/2);
  // Force-promote thresholds: any divergence counts (psi >= 0 always) and
  // the improvement gate accepts any mean ratio.
  options.refresh.psi_promote = 0.0;
  options.refresh.mean_ratio_promote = 1e9;

  const TenantStream stream = MakeStream("t0", 5, 400);
  BlockLog log;
  StreamServer server(live, options, log.Callback());
  for (int64_t begin = 0; begin < 400; begin += 100) {
    SubmitChunkAndDrain(&server, stream, begin, begin + 100);
  }
  const std::vector<Event> events = server.refresh()->events();
  const int64_t live_version = server.sessions().model()->version;
  server.Shutdown();

  ASSERT_GE(CountEvents(events, Event::Kind::kPromoted), 1);
  EXPECT_GE(registry.latest_version("latency"), 2);
  EXPECT_EQ(live_version, registry.latest_version("latency"));
  // The first promotion swaps version 1 -> 2 and records the verdict inputs.
  for (const Event& event : events) {
    if (event.kind != Event::Kind::kPromoted) continue;
    EXPECT_EQ(event.live_version, event.shadow_version - 1);
    EXPECT_GT(event.shadow_mean, 0.0);
    EXPECT_GT(event.live_mean, 0.0);
    break;
  }
  // Serving continued after the swap: blocks past the promotion point were
  // delivered (400 samples / block 20 = 20 live blocks).
  EXPECT_EQ(log.LiveScores("t0").size(), 400u);
}

// ---------------------------------------------------------------------------
// Fault recovery

TEST(RefreshFaultTest, FitFaultKeepsServingTheLiveVersion) {
  ModelRegistry registry;
  std::shared_ptr<const ModelEntry> live = PublishLive(&registry);
  StreamServer::Options options = RefreshBaseOptions();
  ArmRefresh(&options, &registry, /*refresh_every=*/100, /*verdict_pairs=*/2);

  const int64_t failures_before = CounterValue("refresh.fit_failures");
  FaultScope faults("refresh.fit:1", 5);
  const TenantStream stream = MakeStream("t0", 5, 300);
  BlockLog log;
  StreamServer server(live, options, log.Callback());
  for (int64_t begin = 0; begin < 300; begin += 100) {
    SubmitChunkAndDrain(&server, stream, begin, begin + 100);
  }
  const std::vector<Event> events = server.refresh()->events();
  server.Shutdown();

  // Every cadence tick retried the fit, failed, and kept serving.
  EXPECT_GE(CountEvents(events, Event::Kind::kFitFailed), 2);
  EXPECT_EQ(CountEvents(events, Event::Kind::kShadowStaged), 0);
  EXPECT_GE(CounterValue("refresh.fit_failures") - failures_before, 2);
  EXPECT_EQ(log.ShadowCount(), 0);
  EXPECT_EQ(registry.latest_version("latency"), 1);
  const std::vector<float> serial = serve::ReplaySerial(
      *live, options.session.online, options.session.seed_base, stream);
  EXPECT_EQ(serial, log.LiveScores("t0"));
}

TEST(RefreshFaultTest, ShadowScoreFaultDiscardsTheRoundCleanly) {
  ModelRegistry registry;
  std::shared_ptr<const ModelEntry> live = PublishLive(&registry);
  StreamServer::Options options = RefreshBaseOptions();
  ArmRefresh(&options, &registry, /*refresh_every=*/100,
             /*verdict_pairs=*/1000000);

  const int64_t aborts_before = CounterValue("refresh.shadow_aborts");
  FaultScope faults("refresh.shadow_score:1", 5);
  const TenantStream stream = MakeStream("t0", 5, 400);
  BlockLog log;
  StreamServer server(live, options, log.Callback());
  for (int64_t begin = 0; begin < 400; begin += 100) {
    SubmitChunkAndDrain(&server, stream, begin, begin + 100);
  }
  const std::vector<Event> events = server.refresh()->events();
  const bool still_shadowing = server.refresh()->shadow_active();
  server.Shutdown();

  // Each staged round died at its first selected block: the shadow and all
  // drift state were discarded, no dual-score was ever delivered, and the
  // next cadence tick staged a fresh round.
  EXPECT_GE(CountEvents(events, Event::Kind::kShadowAborted), 2);
  EXPECT_EQ(CountEvents(events, Event::Kind::kShadowStaged),
            CountEvents(events, Event::Kind::kShadowAborted) +
                (still_shadowing ? 1 : 0));
  EXPECT_GE(CounterValue("refresh.shadow_aborts") - aborts_before, 2);
  EXPECT_EQ(log.ShadowCount(), 0);
  EXPECT_EQ(registry.latest_version("latency"), 1);
  const std::vector<float> serial = serve::ReplaySerial(
      *live, options.session.online, options.session.seed_base, stream);
  EXPECT_EQ(serial, log.LiveScores("t0"));
}

TEST(RefreshFaultTest, PromoteFaultRollsBackWithLiveVersionIntact) {
  ModelRegistry registry;
  std::shared_ptr<const ModelEntry> live = PublishLive(&registry);
  StreamServer::Options options = RefreshBaseOptions();
  ArmRefresh(&options, &registry, /*refresh_every=*/100, /*verdict_pairs=*/2);
  options.refresh.psi_promote = 0.0;  // verdict always says promote...
  options.refresh.mean_ratio_promote = 1e9;

  const int64_t failures_before = CounterValue("refresh.promote_failures");
  FaultScope faults("refresh.promote:1", 5);  // ...and the promotion fails
  const TenantStream stream = MakeStream("t0", 5, 400);
  BlockLog log;
  StreamServer server(live, options, log.Callback());
  for (int64_t begin = 0; begin < 400; begin += 100) {
    SubmitChunkAndDrain(&server, stream, begin, begin + 100);
  }
  const std::vector<Event> events = server.refresh()->events();
  const int64_t live_version = server.sessions().model()->version;
  server.Shutdown();

  EXPECT_GE(CountEvents(events, Event::Kind::kPromoteFailed), 1);
  EXPECT_EQ(CountEvents(events, Event::Kind::kPromoted), 0);
  EXPECT_GE(CounterValue("refresh.promote_failures") - failures_before, 1);
  // The shadow was dropped and the live version never changed.
  EXPECT_EQ(registry.latest_version("latency"), 1);
  EXPECT_EQ(live_version, 1);
  const std::vector<float> serial = serve::ReplaySerial(
      *live, options.session.online, options.session.seed_base, stream);
  EXPECT_EQ(serial, log.LiveScores("t0"));
}

// ---------------------------------------------------------------------------
// Determinism

// Two replays of the same stream with the same refresh config must make
// bitwise-identical promotion decisions — the property the refresh-drift CI
// job checks end to end on the zipf harness.
TEST(RefreshDeterminismTest, TwoRunsProduceIdenticalDecisionLogs) {
  const std::vector<TenantStream> streams = {MakeStream("t0", 5, 300),
                                             MakeStream("t1", 6, 300)};
  auto run = [&streams]() {
    ModelRegistry registry;
    std::shared_ptr<const ModelEntry> live = PublishLive(&registry);
    StreamServer::Options options = RefreshBaseOptions();
    ArmRefresh(&options, &registry, /*refresh_every=*/150,
               /*verdict_pairs=*/3);
    BlockLog log;
    StreamServer server(live, options, log.Callback());
    const int64_t k = streams[0].samples.dim(1);
    for (int64_t begin = 0; begin < 300; begin += 100) {
      // Round-robin interleave, the ingest order a router produces.
      for (int64_t t = begin; t < begin + 100; ++t) {
        for (const TenantStream& stream : streams) {
          const float* p = stream.samples.data();
          EXPECT_TRUE(server.Submit(
              stream.tenant, std::vector<float>(p + t * k, p + (t + 1) * k)));
        }
      }
      server.Drain();
    }
    const std::vector<Event> events = server.refresh()->events();
    std::map<std::string, std::vector<float>> scores;
    for (const TenantStream& stream : streams) {
      scores[stream.tenant] = log.LiveScores(stream.tenant);
    }
    server.Shutdown();
    return std::make_pair(events, scores);
  };

  const auto [events_a, scores_a] = run();
  const auto [events_b, scores_b] = run();
  ASSERT_EQ(events_a.size(), events_b.size());
  ASSERT_GE(events_a.size(), 1u);  // at least one resolved transition
  for (size_t i = 0; i < events_a.size(); ++i) {
    const Event& a = events_a[i];
    const Event& b = events_b[i];
    EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << i;
    EXPECT_EQ(a.fit_ordinal, b.fit_ordinal) << i;
    EXPECT_EQ(a.at_sample, b.at_sample) << i;
    EXPECT_EQ(a.live_version, b.live_version) << i;
    EXPECT_EQ(a.shadow_version, b.shadow_version) << i;
    // Bitwise: the verdict inputs are doubles compared exactly.
    EXPECT_EQ(a.psi, b.psi) << i;
    EXPECT_EQ(a.ks, b.ks) << i;
    EXPECT_EQ(a.agreement, b.agreement) << i;
    EXPECT_EQ(a.live_mean, b.live_mean) << i;
    EXPECT_EQ(a.shadow_mean, b.shadow_mean) << i;
  }
  EXPECT_EQ(scores_a, scores_b);
}

}  // namespace
}  // namespace imdiff
