// Shard-transport tests (src/net): wire serialization round-trips and
// truncation safety, framing over a real socketpair, fail-fast socket
// binding, seeded dial retries, and the ClientChannel reconnect-and-resend
// recovery under injected transport faults (exactly-once delivery of frames
// whose write failed).

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/channel.h"
#include "net/frame.h"
#include "net/messages.h"
#include "net/socket.h"
#include "net/wire.h"
#include "utils/fault.h"

namespace imdiff {
namespace {

std::string TestSocketPath(const char* name) {
  return testing::TempDir() + "imdiff_net_" + name + ".sock";
}

BackoffPolicy FastBackoff() {
  BackoffPolicy policy;
  policy.base_seconds = 1e-4;
  return policy;
}

TEST(WireTest, RoundTripsEveryScalarAndContainer) {
  net::WireWriter w;
  w.U8(7);
  w.U32(0xdeadbeefu);
  w.U64(0x0123456789abcdefull);
  w.I64(-42);
  w.F32(1.5f);
  w.F64(-2.25);
  w.Str("tenant-000001");
  w.Bytes({0, 255, 128});
  w.FloatVec({0.5f, -0.25f});

  net::WireReader r(w.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  float f32 = 0.0f;
  double f64 = 0.0;
  std::string s;
  std::vector<uint8_t> b;
  std::vector<float> fv;
  EXPECT_TRUE(r.U8(&u8));
  EXPECT_TRUE(r.U32(&u32));
  EXPECT_TRUE(r.U64(&u64));
  EXPECT_TRUE(r.I64(&i64));
  EXPECT_TRUE(r.F32(&f32));
  EXPECT_TRUE(r.F64(&f64));
  EXPECT_TRUE(r.Str(&s));
  EXPECT_TRUE(r.Bytes(&b));
  EXPECT_TRUE(r.FloatVec(&fv));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(s, "tenant-000001");
  EXPECT_EQ(b, (std::vector<uint8_t>{0, 255, 128}));
  EXPECT_EQ(fv, (std::vector<float>{0.5f, -0.25f}));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, TruncatedInputFailsWithoutAborting) {
  net::WireWriter w;
  w.Str("hello");
  w.U64(99);
  const std::vector<uint8_t>& bytes = w.bytes();
  // Every strict prefix must fail cleanly on some read, never crash.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    net::WireReader r(bytes.data(), cut);
    std::string s;
    uint64_t v = 0;
    const bool full = r.Str(&s) && r.U64(&v);
    EXPECT_FALSE(full) << "prefix of " << cut << " bytes decoded fully";
    EXPECT_FALSE(r.ok());
  }
}

TEST(MessagesTest, SubmitAndScoredBlockRoundTrip) {
  net::SubmitMsg submit;
  submit.tenant = "tenant-000042";
  submit.sample = {1.0f, 2.0f, 3.0f};
  submit.observed = {1, 0, 1};
  net::SubmitMsg submit2;
  ASSERT_TRUE(net::Decode(net::Encode(submit), &submit2));
  EXPECT_EQ(submit2.tenant, submit.tenant);
  EXPECT_EQ(submit2.sample, submit.sample);
  EXPECT_EQ(submit2.observed, submit.observed);

  net::ScoredBlockMsg block;
  block.tenant = "tenant-000042";
  block.block_index = 3;
  block.start = 150;
  block.degrade_level = 1;
  block.precision = 2;
  block.latency_seconds = 0.125;
  block.scores = {0.5f, 0.75f};
  net::ScoredBlockMsg block2;
  ASSERT_TRUE(net::Decode(net::Encode(block), &block2));
  EXPECT_EQ(block2.tenant, block.tenant);
  EXPECT_EQ(block2.block_index, block.block_index);
  EXPECT_EQ(block2.start, block.start);
  EXPECT_EQ(block2.degrade_level, block.degrade_level);
  EXPECT_EQ(block2.precision, block.precision);
  EXPECT_EQ(block2.latency_seconds, block.latency_seconds);
  EXPECT_EQ(block2.scores, block.scores);
}

TEST(MessagesTest, PublishAndSnapshotRoundTrip) {
  net::PublishMsg publish;
  publish.name = "latency";
  publish.checkpoint_path = "/tmp/model.ckpt";
  publish.num_features = 6;
  publish.config_seed = 42;
  publish.stats_min = {-1.0f, 0.0f};
  publish.stats_max = {1.0f, 2.0f};
  net::PublishMsg publish2;
  ASSERT_TRUE(net::Decode(net::Encode(publish), &publish2));
  EXPECT_EQ(publish2.name, publish.name);
  EXPECT_EQ(publish2.checkpoint_path, publish.checkpoint_path);
  EXPECT_EQ(publish2.num_features, publish.num_features);
  EXPECT_EQ(publish2.config_seed, publish.config_seed);
  EXPECT_EQ(publish2.stats_min, publish.stats_min);
  EXPECT_EQ(publish2.stats_max, publish.stats_max);

  net::SnapshotResultMsg snap;
  snap.token = 9;
  net::SessionBlob blob;
  blob.tenant = "tenant-000001";
  blob.state = {1, 2, 3, 4};
  snap.sessions.push_back(blob);
  blob.tenant = "tenant-000002";
  blob.state = {};
  snap.sessions.push_back(blob);
  net::SnapshotResultMsg snap2;
  ASSERT_TRUE(net::Decode(net::Encode(snap), &snap2));
  EXPECT_EQ(snap2.token, 9u);
  ASSERT_EQ(snap2.sessions.size(), 2u);
  EXPECT_EQ(snap2.sessions[0].tenant, "tenant-000001");
  EXPECT_EQ(snap2.sessions[0].state, (std::vector<uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(snap2.sessions[1].tenant, "tenant-000002");
  EXPECT_TRUE(snap2.sessions[1].state.empty());
}

TEST(MessagesTest, DecodeRejectsWrongTypeAndTruncation) {
  net::SubmitMsg submit;
  submit.tenant = "t";
  submit.sample = {1.0f};
  net::Frame frame = net::Encode(submit);

  // Wrong frame type: a submit payload must not decode as a scored block.
  net::ScoredBlockMsg block;
  EXPECT_FALSE(net::Decode(frame, &block));

  // Truncated payloads are rejected as a unit, never half-applied.
  for (size_t cut = 0; cut < frame.payload.size(); ++cut) {
    net::Frame truncated;
    truncated.type = frame.type;
    truncated.payload.assign(frame.payload.begin(),
                             frame.payload.begin() + cut);
    net::SubmitMsg out;
    EXPECT_FALSE(net::Decode(truncated, &out)) << "cut at " << cut;
  }

  // Trailing garbage means a framing bug upstream: also rejected.
  net::Frame padded = frame;
  padded.payload.push_back(0);
  net::SubmitMsg out;
  EXPECT_FALSE(net::Decode(padded, &out));
}

TEST(FrameTest, RoundTripsOverSocketpairAndDiscardsTruncatedTail) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::Frame frame;
  frame.type = static_cast<uint8_t>(net::MsgType::kSubmit);
  frame.payload = {10, 20, 30};
  ASSERT_TRUE(net::WriteFrame(fds[0], frame));

  net::Frame got;
  ASSERT_EQ(net::ReadFrame(fds[1], &got), net::ReadResult::kOk);
  EXPECT_EQ(got.type, frame.type);
  EXPECT_EQ(got.payload, frame.payload);

  // A short write (EOF mid-frame) must surface as kClosed, not as a frame.
  const std::vector<uint8_t> bytes = net::EncodeFrame(frame);
  ASSERT_TRUE(net::SendAll(fds[0], bytes.data(), bytes.size() - 2));
  ::close(fds[0]);
  EXPECT_EQ(net::ReadFrame(fds[1], &got), net::ReadResult::kClosed);
  ::close(fds[1]);
}

TEST(SocketTest, ListenerRefusesToClobberExistingPath) {
  const std::string path = TestSocketPath("stale");
  std::string error;
  net::UnixListener first;
  ASSERT_TRUE(first.Create(path, &error)) << error;
  EXPECT_TRUE(net::PathExists(path));

  // Second bind on the same live path fails fast with a descriptive error.
  net::UnixListener second;
  EXPECT_FALSE(second.Create(path, &error));
  EXPECT_FALSE(error.empty());

  // Close unlinks, so a fresh bind succeeds.
  first.Close();
  EXPECT_FALSE(net::PathExists(path));
  net::UnixListener third;
  EXPECT_TRUE(third.Create(path, &error)) << error;
  third.Close();
}

TEST(SocketTest, DialRetryGivesUpOnMissingPath) {
  const std::string path = TestSocketPath("nobody_home");
  EXPECT_EQ(net::DialUnixRetry(path, FastBackoff(), /*seed=*/5), -1);
}

TEST(SocketTest, ProbeSocketDirCreatesAndValidates) {
  const std::string dir = testing::TempDir() + "imdiff_net_probe_dir";
  std::string error;
  EXPECT_TRUE(net::ProbeSocketDir(dir, &error)) << error;
  EXPECT_TRUE(net::PathExists(dir));
  // Probing again (the directory now exists) still succeeds.
  EXPECT_TRUE(net::ProbeSocketDir(dir, &error)) << error;
  // A path that cannot be created fails with a description.
  EXPECT_FALSE(net::ProbeSocketDir("/proc/imdiff_cannot_write_here", &error));
  EXPECT_FALSE(error.empty());
}

// Runs a ServerChannel dispatch loop that records every kSubmit payload it
// sees, in order, until Close. The worker side of the channel tests.
struct RecordingServer {
  explicit RecordingServer(const std::string& path) {
    std::string error;
    net::UnixListener listener;
    EXPECT_TRUE(listener.Create(path, &error)) << error;
    channel = std::make_unique<net::ServerChannel>(std::move(listener));
    net::HelloMsg hello;
    hello.shard_id = 0;
    channel->set_hello(net::Encode(hello));
    thread = std::thread([this] {
      net::Frame frame;
      while (channel->Next(&frame) == net::ServerChannel::Status::kFrame) {
        if (frame.type != static_cast<uint8_t>(net::MsgType::kSubmit)) continue;
        std::lock_guard<std::mutex> lock(mu);
        payloads.push_back(frame.payload);
      }
    });
  }
  ~RecordingServer() {
    channel->Close();
    thread.join();
  }
  size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return payloads.size();
  }

  std::unique_ptr<net::ServerChannel> channel;
  std::thread thread;
  std::mutex mu;
  std::vector<std::vector<uint8_t>> payloads;
};

// Sends N frames through a ClientChannel against `spec`-injected transport
// faults and expects exactly-once, in-order delivery: the reader redials and
// the sender resends the frame whose write failed, and frames that were
// fully written are never resent.
void ExpectExactlyOnceUnderFaults(const char* name, const std::string& spec) {
  const std::string path = TestSocketPath(name);
  RecordingServer server(path);

  FaultRegistry::Global().Configure(spec, /*seed=*/17);
  net::ClientChannel client(path, FastBackoff(), /*seed=*/17,
                            /*inject_faults=*/true);
  ASSERT_TRUE(client.Connect());
  // The reader owns recovery: pump it like the router's reader thread does.
  std::thread reader([&client] {
    net::Frame frame;
    while (client.Recv(&frame) == net::ClientChannel::Status::kFrame) {
    }
  });

  constexpr int kFrames = 8;
  for (int i = 0; i < kFrames; ++i) {
    net::Frame frame;
    frame.type = static_cast<uint8_t>(net::MsgType::kSubmit);
    frame.payload = {static_cast<uint8_t>(i)};
    ASSERT_TRUE(client.Send(frame)) << "frame " << i;
  }
  // Delivery is asynchronous past the injected fault (reconnect + resend).
  for (int spin = 0; spin < 2000 && server.count() < kFrames; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FaultRegistry::Global().Configure("", 0);
  client.Close();
  reader.join();

  std::lock_guard<std::mutex> lock(server.mu);
  ASSERT_EQ(server.payloads.size(), static_cast<size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(server.payloads[i],
              std::vector<uint8_t>{static_cast<uint8_t>(i)})
        << "frame " << i;
  }
}

TEST(ChannelTest, InjectedDropIsRedeliveredExactlyOnce) {
  ExpectExactlyOnceUnderFaults("drop", "transport.drop:#3");
}

TEST(ChannelTest, InjectedShortWriteIsRedeliveredExactlyOnce) {
  ExpectExactlyOnceUnderFaults("short_write", "transport.short_write:#2");
}

TEST(ChannelTest, ServerSendsQueuedWhileDisconnectedAreFlushedOnAccept) {
  const std::string path = TestSocketPath("queued");
  std::string error;
  net::UnixListener listener;
  ASSERT_TRUE(listener.Create(path, &error)) << error;
  net::ServerChannel server(std::move(listener));
  net::HelloMsg hello;
  hello.shard_id = 4;
  server.set_hello(net::Encode(hello));

  // No connection yet: the scored block is queued, not lost.
  net::Frame queued;
  queued.type = static_cast<uint8_t>(net::MsgType::kScoredBlock);
  queued.payload = {9, 9};
  EXPECT_TRUE(server.Send(queued));

  std::thread dispatcher([&server] {
    net::Frame frame;
    while (server.Next(&frame) == net::ServerChannel::Status::kFrame) {
    }
  });

  net::ClientChannel client(path, FastBackoff(), /*seed=*/1,
                            /*inject_faults=*/false);
  ASSERT_TRUE(client.Connect());
  // Hello first (the shard-id handshake), then the queued frame.
  net::Frame frame;
  ASSERT_EQ(client.Recv(&frame), net::ClientChannel::Status::kFrame);
  EXPECT_EQ(frame.type, static_cast<uint8_t>(net::MsgType::kHello));
  net::HelloMsg got;
  ASSERT_TRUE(net::Decode(frame, &got));
  EXPECT_EQ(got.shard_id, 4);
  ASSERT_EQ(client.Recv(&frame), net::ClientChannel::Status::kFrame);
  EXPECT_EQ(frame.type, static_cast<uint8_t>(net::MsgType::kScoredBlock));
  EXPECT_EQ(frame.payload, (std::vector<uint8_t>{9, 9}));

  client.Close();
  server.Close();
  dispatcher.join();
}

}  // namespace
}  // namespace imdiff
