#include <cstdio>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "data/windowing.h"
#include "utils/csv.h"

namespace imdiff {
namespace {

TEST(SyntheticTest, ShapeAndDeterminism) {
  SyntheticConfig config;
  config.length = 300;
  config.dims = 5;
  Rng rng1(7);
  Rng rng2(7);
  Tensor a = GenerateCleanSeries(config, rng1);
  Tensor b = GenerateCleanSeries(config, rng2);
  EXPECT_EQ(a.shape(), (Shape{300, 5}));
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.flat(i), b.flat(i));
}

TEST(SyntheticTest, ChannelsAreCorrelated) {
  // Channels loading the same factor must correlate strongly.
  SyntheticConfig config;
  config.length = 1000;
  config.dims = 4;
  config.num_factors = 2;
  config.noise_sigma = 0.01f;
  config.burst_rate = 0.0;
  config.bump_rate = 0.0;
  Rng rng(8);
  Tensor s = GenerateCleanSeries(config, rng);
  // Channels 0 and 2 share primary factor 0.
  double c00 = 0, c22 = 0, c02 = 0, m0 = 0, m2 = 0;
  for (int64_t t = 0; t < 1000; ++t) {
    m0 += s.at(t, 0);
    m2 += s.at(t, 2);
  }
  m0 /= 1000;
  m2 /= 1000;
  for (int64_t t = 0; t < 1000; ++t) {
    c00 += (s.at(t, 0) - m0) * (s.at(t, 0) - m0);
    c22 += (s.at(t, 2) - m2) * (s.at(t, 2) - m2);
    c02 += (s.at(t, 0) - m0) * (s.at(t, 2) - m2);
  }
  const double corr = c02 / std::sqrt(c00 * c22);
  EXPECT_GT(std::abs(corr), 0.5);
}

TEST(InjectionTest, RateAndLabelsConsistent) {
  SyntheticConfig config;
  config.length = 2000;
  config.dims = 4;
  Rng rng(9);
  Tensor series = GenerateCleanSeries(config, rng);
  InjectionConfig inject;
  inject.anomaly_rate = 0.10;
  auto events = InjectAnomalies(series, inject, rng);
  EXPECT_FALSE(events.empty());
  auto labels = LabelsFromEvents(events, 2000, /*margin=*/0);
  int64_t anomalous = 0;
  for (uint8_t l : labels) anomalous += l;
  // Within a factor of the target rate.
  EXPECT_GT(anomalous, 2000 * 0.03);
  EXPECT_LT(anomalous, 2000 * 0.2);
}

TEST(InjectionTest, EventsDoNotOverlap) {
  SyntheticConfig config;
  config.length = 1500;
  config.dims = 3;
  Rng rng(10);
  Tensor series = GenerateCleanSeries(config, rng);
  InjectionConfig inject;
  inject.anomaly_rate = 0.15;
  auto events = InjectAnomalies(series, inject, rng);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start, events[i - 1].start + events[i - 1].length);
  }
}

TEST(InjectionTest, ActuallyPerturbsAffectedChannels) {
  SyntheticConfig config;
  config.length = 800;
  config.dims = 4;
  Rng rng(11);
  Tensor clean = GenerateCleanSeries(config, rng);
  Tensor dirty = clean.Clone();
  InjectionConfig inject;
  inject.anomaly_rate = 0.1;
  inject.types = {AnomalyType::kLevelShift};
  Rng rng2(12);
  auto events = InjectAnomalies(dirty, inject, rng2);
  ASSERT_FALSE(events.empty());
  const AnomalyEvent& e = events[0];
  double diff = 0;
  for (int64_t t = e.start; t < e.start + e.length; ++t) {
    diff += std::abs(dirty.at(t, e.channels[0]) - clean.at(t, e.channels[0]));
  }
  EXPECT_GT(diff, 0.1);
}

TEST(LabelsTest, MarginExtendsEvents) {
  AnomalyEvent e;
  e.start = 10;
  e.length = 5;
  auto labels = LabelsFromEvents({e}, 30, 3);
  EXPECT_EQ(labels[6], 0);
  EXPECT_EQ(labels[7], 1);
  EXPECT_EQ(labels[14], 1);
  EXPECT_EQ(labels[17], 1);
  EXPECT_EQ(labels[18], 0);
}

TEST(NormalizationTest, MapsTrainToUnitRange) {
  Tensor train({4, 2}, {0, 10, 1, 20, 2, 30, 4, 40});
  MinMaxStats stats = FitMinMax(train);
  EXPECT_EQ(stats.min[0], 0.0f);
  EXPECT_EQ(stats.max[1], 40.0f);
  Tensor norm = ApplyMinMax(train, stats);
  EXPECT_EQ(norm.at(0, 0), 0.0f);
  EXPECT_EQ(norm.at(3, 0), 1.0f);
  EXPECT_NEAR(norm.at(1, 1), 1.0f / 3.0f, 1e-5);
}

TEST(NormalizationTest, ClampsExtremeTestValues) {
  Tensor train({2, 1}, {0, 1});
  MinMaxStats stats = FitMinMax(train);
  Tensor test({2, 1}, {100.0f, -100.0f});
  Tensor norm = ApplyMinMax(test, stats);
  EXPECT_EQ(norm.flat(0), 2.0f);
  EXPECT_EQ(norm.flat(1), -1.0f);
}

TEST(NormalizationTest, ConstantChannelMapsToZero) {
  Tensor train({3, 1}, {5, 5, 5});
  Tensor norm = ApplyMinMax(train, FitMinMax(train));
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(norm.flat(i), 0.0f);
}

TEST(WindowingTest, StartsCoverSeries) {
  auto starts = WindowStarts(250, 100, 100);
  EXPECT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts.back(), 150);  // tail window aligned to the end
}

TEST(WindowingTest, ShortSeriesSingleWindow) {
  auto starts = WindowStarts(50, 100, 100);
  EXPECT_EQ(starts.size(), 1u);
  Tensor batch = WindowBatch(Tensor({50, 2}), 100, 100);
  EXPECT_EQ(batch.shape(), (Shape{1, 100, 2}));
}

TEST(WindowingTest, WindowContentsMatchSeries) {
  Tensor series({10, 1}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor batch = WindowBatch(series, 4, 3);
  auto starts = WindowStarts(10, 4, 3);
  for (size_t n = 0; n < starts.size(); ++n) {
    for (int64_t i = 0; i < 4; ++i) {
      EXPECT_EQ(batch.at(static_cast<int64_t>(n), i, 0),
                series.at(starts[n] + i, 0));
    }
  }
}

TEST(WindowingTest, OverlapAverageBlendsWindows) {
  std::vector<std::vector<float>> scores = {{1, 1, 1, 1}, {3, 3, 3, 3}};
  std::vector<int64_t> starts = {0, 2};
  auto series = OverlapAverage(scores, starts, 6, 4);
  EXPECT_EQ(series[0], 1.0f);
  EXPECT_EQ(series[2], 2.0f);  // overlap averages 1 and 3
  EXPECT_EQ(series[5], 3.0f);
}

class BenchmarkIdTest : public ::testing::TestWithParam<BenchmarkId> {};

TEST_P(BenchmarkIdTest, DatasetWellFormed) {
  MtsDataset ds = MakeBenchmarkDataset(GetParam(), 1, 0.25f);
  EXPECT_FALSE(ds.name.empty());
  EXPECT_GT(ds.train_length(), 0);
  EXPECT_GT(ds.test_length(), 0);
  EXPECT_EQ(ds.train.dim(1), ds.test.dim(1));
  EXPECT_EQ(static_cast<int64_t>(ds.test_labels.size()), ds.test_length());
  int64_t anomalous = 0;
  for (uint8_t l : ds.test_labels) anomalous += l;
  EXPECT_GT(anomalous, 0);
  EXPECT_LT(anomalous, ds.test_length() / 2);
}

TEST_P(BenchmarkIdTest, SeedChangesData) {
  MtsDataset a = MakeBenchmarkDataset(GetParam(), 1, 0.25f);
  MtsDataset b = MakeBenchmarkDataset(GetParam(), 2, 0.25f);
  bool differs = false;
  for (int64_t i = 0; i < std::min(a.train.numel(), b.train.numel()); ++i) {
    if (a.train.flat(i) != b.train.flat(i)) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkIdTest,
                         ::testing::ValuesIn(AllBenchmarks()),
                         [](const ::testing::TestParamInfo<BenchmarkId>& i) {
                           return BenchmarkName(i.param);
                         });

TEST(BenchmarkTest, SwatHasHighestDims) {
  MtsDataset swat = MakeBenchmarkDataset(BenchmarkId::kSwat, 1, 0.25f);
  for (BenchmarkId id : AllBenchmarks()) {
    MtsDataset other = MakeBenchmarkDataset(id, 1, 0.25f);
    EXPECT_LE(other.num_features(), swat.num_features());
  }
}

TEST(BenchmarkTest, MicroserviceLatencyStream) {
  MtsDataset ds = MakeMicroserviceLatencyDataset(1, 4, 400, 400);
  EXPECT_EQ(ds.num_features(), 4);
  EXPECT_EQ(ds.train_length(), 400);
  // Latencies are positive.
  for (int64_t i = 0; i < ds.train.numel(); ++i) {
    EXPECT_GT(ds.train.flat(i), 0.0f);
  }
  int64_t anomalous = 0;
  for (uint8_t l : ds.test_labels) anomalous += l;
  EXPECT_GT(anomalous, 0);
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/data.csv";
  WriteCsv(path, {"a", "b"}, {{1.5f, 2.5f}, {3.0f, 4.0f}});
  auto rows = ReadCsv(path, /*skip_header=*/true);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], 2.5f);
  EXPECT_EQ(rows[1][0], 3.0f);
}

TEST(CsvDatasetTest, LoadsSplits) {
  const std::string dir = ::testing::TempDir();
  WriteCsv(dir + "/train.csv", {}, {{1, 2}, {3, 4}, {5, 6}});
  WriteCsv(dir + "/test.csv", {}, {{7, 8}, {9, 10}});
  WriteCsv(dir + "/labels.csv", {}, {{0}, {1}});
  MtsDataset ds = LoadCsvDataset("csvset", dir + "/train.csv",
                                 dir + "/test.csv", dir + "/labels.csv");
  EXPECT_EQ(ds.train_length(), 3);
  EXPECT_EQ(ds.test_length(), 2);
  EXPECT_EQ(ds.test_labels[1], 1);
}

TEST(SegmentsTest, FindSegments) {
  auto segs = FindSegments({0, 1, 1, 0, 1, 0, 0, 1});
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].start, 1);
  EXPECT_EQ(segs[0].end, 3);
  EXPECT_EQ(segs[2].start, 7);
  EXPECT_EQ(segs[2].end, 8);
}

}  // namespace
}  // namespace imdiff
