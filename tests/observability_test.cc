// Tests for the metrics/tracing observability layer (utils/metrics.h):
// registry identity, lock-free aggregation under ParallelFor, the scoped
// timer macro, the disabled path, and the JSON export.

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "utils/metrics.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace {

TEST(MetricsTest, CounterIncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  Gauge gauge;
  gauge.Set(1.5);
  gauge.Set(-2.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.25);
}

TEST(MetricsTest, HistogramStatsAndPercentiles) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 0.0);
  hist.Record(0.001);
  hist.Record(0.002);
  hist.Record(0.004);
  hist.Record(0.100);
  EXPECT_EQ(hist.count(), 4);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.107);
  EXPECT_DOUBLE_EQ(hist.min(), 0.001);
  EXPECT_DOUBLE_EQ(hist.max(), 0.100);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.107 / 4);
  // Bucket bounds are powers of two of 1µs, so percentiles land on the
  // bound of the observation's bucket (capped at the exact max).
  EXPECT_GE(hist.Percentile(0.5), 0.002);
  EXPECT_LE(hist.Percentile(0.5), 0.004096);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 0.100);
}

// Regression: q=0 used to yield rank 0, so the loop exited on bucket 0 even
// when it was empty and returned min(BucketBound(0), max()) = 1µs instead of
// the observed minimum. Every estimate must also be clamped from below by
// min() so coarse buckets can never undercut the smallest recorded sample.
TEST(MetricsTest, PercentileZeroReturnsObservedMinimum) {
  Histogram hist;
  hist.Record(0.004);  // lands in a bucket whose lower bound is well above 1µs
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 0.004);
  EXPECT_DOUBLE_EQ(hist.Percentile(-3.0), 0.004);  // clamped into [0, 1]
  // Never below the observed min, even for mid-range quantiles whose bucket
  // bound sits under it.
  for (double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_GE(hist.Percentile(q), 0.004) << "q=" << q;
    EXPECT_LE(hist.Percentile(q), 0.004) << "q=" << q;
  }
  hist.Record(3.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 0.004);
  EXPECT_GE(hist.Percentile(0.5), 0.004);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 3.0);
}

TEST(MetricsTest, RegistryReturnsStableHandles) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test.registry.counter");
  Counter* b = registry.GetCounter("test.registry.counter");
  EXPECT_EQ(a, b);
  a->Increment();
  registry.Reset();
  // Reset zeroes values but never invalidates handles.
  EXPECT_EQ(registry.GetCounter("test.registry.counter"), a);
  EXPECT_EQ(a->value(), 0);
}

// The satellite requirement: counter and histogram aggregation must be exact
// when hammered by ParallelFor from 4 threads.
TEST(MetricsTest, AggregationExactUnderParallelFor) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.parallel.counter");
  Histogram* hist = registry.GetHistogram("test.parallel.hist_seconds");
  counter->Reset();
  hist->Reset();

  ThreadPool pool(4);
  constexpr size_t kIterations = 10000;
  ParallelFor(&pool, kIterations, [&](size_t i) {
    counter->Increment();
    // 1.0 is exactly representable, so the CAS-summed total is exact
    // regardless of accumulation order; alternate a second bucket value.
    hist->Record(i % 2 == 0 ? 1.0 : 0.5);
  });

  EXPECT_EQ(counter->value(), static_cast<int64_t>(kIterations));
  EXPECT_EQ(hist->count(), static_cast<int64_t>(kIterations));
  EXPECT_DOUBLE_EQ(hist->sum(), 10000 / 2 * 1.0 + 10000 / 2 * 0.5);
  EXPECT_DOUBLE_EQ(hist->min(), 0.5);
  EXPECT_DOUBLE_EQ(hist->max(), 1.0);
}

TEST(MetricsTest, TraceScopeRecordsElapsedTime) {
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.scope_seconds");
  hist->Reset();
  {
    IMDIFF_TRACE_SCOPE("test.scope_seconds");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(hist->count(), 1);
  EXPECT_GE(hist->sum(), 0.001);
}

TEST(MetricsTest, DisabledScopeRecordsNothing) {
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.disabled_seconds");
  hist->Reset();
  SetMetricsEnabled(false);
  {
    IMDIFF_TRACE_SCOPE("test.disabled_seconds");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SetMetricsEnabled(true);
  EXPECT_EQ(hist->count(), 0);
}

TEST(MetricsTest, JsonExportContainsInstruments) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json.counter")->Increment(7);
  registry.GetGauge("test.json.gauge")->Set(2.5);
  registry.GetHistogram("test.json.hist_seconds")->Record(0.003);

  const std::string json = MetricsToJson();
  EXPECT_NE(json.find("\"test.json.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  // Structurally a JSON object with balanced braces.
  EXPECT_EQ(json.front(), '{');
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsTest, JsonEscapesInstrumentNames) {
  MetricsRegistry::Global()
      .GetCounter("test.json.\"quoted\\name\"")
      ->Increment();
  const std::string json = MetricsToJson();
  EXPECT_NE(json.find("test.json.\\\"quoted\\\\name\\\""), std::string::npos);
}

// The thread-pool path itself is instrumented: pool tasks bump
// pool.tasks_executed and record execution latency.
TEST(MetricsTest, PoolTasksAreCounted) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* tasks = registry.GetCounter("pool.tasks_executed");
  Histogram* task_seconds = registry.GetHistogram("pool.task_seconds");
  const int64_t tasks_before = tasks->value();
  const int64_t recorded_before = task_seconds->count();

  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] {});
  }
  pool.Wait();

  EXPECT_EQ(tasks->value(), tasks_before + 8);
  EXPECT_EQ(task_seconds->count(), recorded_before + 8);
}

// --- MergeMetricsJson: folding per-process snapshots into one report. ------

TEST(MergeMetricsTest, CountersSumAndGaugesMax) {
  const std::string a =
      "{\n  \"counters\": {\n    \"a\": 3,\n    \"b\": 1\n  },\n"
      "  \"gauges\": {\n    \"g\": 2.5,\n    \"h\": 7\n  },\n"
      "  \"histograms\": {}\n}\n";
  const std::string b =
      "{\n  \"counters\": {\n    \"a\": 4,\n    \"c\": 10\n  },\n"
      "  \"gauges\": {\n    \"g\": 9,\n    \"h\": 1\n  },\n"
      "  \"histograms\": {}\n}\n";
  const std::string merged = MergeMetricsJson({a, b});
  EXPECT_NE(merged.find("\"a\": 7"), std::string::npos);
  EXPECT_NE(merged.find("\"b\": 1"), std::string::npos);
  EXPECT_NE(merged.find("\"c\": 10"), std::string::npos);
  EXPECT_NE(merged.find("\"g\": 9"), std::string::npos);
  EXPECT_NE(merged.find("\"h\": 7"), std::string::npos);
}

TEST(MergeMetricsTest, HistogramsMergeBucketwise) {
  // Latencies 0.25 and 0.5 land in the 0.262144 / 0.524288 buckets
  // (1µs · 2^18 / 2^19); 4 lands in 4.194304; 1200 exceeds the last finite
  // bound (~1073.7s) and lands in the unbounded tail bucket.
  const std::string a =
      "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {\n"
      "    \"lat\": {\"count\": 2, \"sum\": 0.75, \"min\": 0.25, "
      "\"max\": 0.5, \"mean\": 0.375, \"p50\": 0.262144, \"p90\": 0.5, "
      "\"p99\": 0.5, \"buckets\": [{\"le\": 0.262144, \"count\": 1}, "
      "{\"le\": 0.524288, \"count\": 1}]}\n  }\n}\n";
  const std::string b =
      "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {\n"
      "    \"lat\": {\"count\": 2, \"sum\": 1204, \"min\": 4, "
      "\"max\": 1200, \"mean\": 602, \"p50\": 4, \"p90\": 1200, "
      "\"p99\": 1200, \"buckets\": [{\"le\": 4.194304, \"count\": 1}, "
      "{\"le\": \"inf\", \"count\": 1}]}\n  }\n}\n";
  const std::string merged = MergeMetricsJson({a, b});
  EXPECT_NE(merged.find("\"count\": 4"), std::string::npos);
  EXPECT_NE(merged.find("\"sum\": 1204.75"), std::string::npos);
  EXPECT_NE(merged.find("\"min\": 0.25"), std::string::npos);
  EXPECT_NE(merged.find("\"max\": 1200"), std::string::npos);
  EXPECT_NE(merged.find("\"mean\": 301.1875"), std::string::npos);
  // Rank-2 of 4 observations is the 0.524288 bucket; rank-4 lands in the
  // unbounded tail, which the estimator caps at the observed max.
  EXPECT_NE(merged.find("\"p50\": 0.524288"), std::string::npos);
  EXPECT_NE(merged.find("\"p99\": 1200"), std::string::npos);
  EXPECT_NE(merged.find("\"buckets\": [{\"le\": 0.262144, \"count\": 1}, "
                        "{\"le\": 0.524288, \"count\": 1}, "
                        "{\"le\": 4.194304, \"count\": 1}, "
                        "{\"le\": \"inf\", \"count\": 1}]"),
            std::string::npos);
}

TEST(MergeMetricsTest, EmptyHistogramMinMaxAreNotObservations) {
  // An empty histogram serializes min/max as 0 placeholders; merging must
  // not let that 0 undercut the real minimum of a populated sibling.
  const std::string empty =
      "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {\n"
      "    \"lat\": {\"count\": 0, \"sum\": 0, \"min\": 0, \"max\": 0, "
      "\"mean\": 0, \"p50\": 0, \"p90\": 0, \"p99\": 0, \"buckets\": []}\n"
      "  }\n}\n";
  const std::string full =
      "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {\n"
      "    \"lat\": {\"count\": 1, \"sum\": 0.5, \"min\": 0.5, \"max\": 0.5, "
      "\"mean\": 0.5, \"p50\": 0.5, \"p90\": 0.5, \"p99\": 0.5, "
      "\"buckets\": [{\"le\": 0.524288, \"count\": 1}]}\n  }\n}\n";
  const std::string merged = MergeMetricsJson({empty, full});
  EXPECT_NE(merged.find("\"min\": 0.5"), std::string::npos);
  EXPECT_NE(merged.find("\"max\": 0.5"), std::string::npos);
  EXPECT_NE(merged.find("\"count\": 1"), std::string::npos);
}

TEST(MergeMetricsTest, UnparsableSnapshotsAreSkippedAndCounted) {
  Counter* failures =
      MetricsRegistry::Global().GetCounter("merge.parse_failures");
  const int64_t before = failures->value();
  const std::string good =
      "{\n  \"counters\": {\n    \"a\": 2\n  },\n  \"gauges\": {},\n"
      "  \"histograms\": {}\n}\n";
  const std::string merged =
      MergeMetricsJson({"not json", good, "{\"counters\": {"});
  EXPECT_EQ(failures->value(), before + 2);
  EXPECT_NE(merged.find("\"a\": 2"), std::string::npos);
}

// Splitting a workload across two snapshots and merging reproduces the
// never-split single-process histogram line byte-for-byte — the property
// that makes the router's merged report comparable with a 1-shard run.
TEST(MergeMetricsTest, MergeOfSplitRunMatchesUnsplitRun) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram* hist = registry.GetHistogram("merge.live_seconds");
  Counter* counter = registry.GetCounter("merge.live_count");

  auto line_for = [](const std::string& json, const std::string& name) {
    const size_t pos = json.find("\"" + name + "\": {");
    EXPECT_NE(pos, std::string::npos);
    const size_t end = json.find('\n', pos);
    return json.substr(pos, end - pos);
  };

  registry.Reset();
  hist->Record(0.25);
  hist->Record(0.5);
  counter->Increment(3);
  const std::string first_half = MetricsToJson();

  registry.Reset();
  hist->Record(4.0);
  counter->Increment(2);
  const std::string second_half = MetricsToJson();

  registry.Reset();
  hist->Record(0.25);
  hist->Record(0.5);
  hist->Record(4.0);
  counter->Increment(5);
  const std::string unsplit = MetricsToJson();

  const std::string merged = MergeMetricsJson({first_half, second_half});
  EXPECT_EQ(line_for(merged, "merge.live_seconds"),
            line_for(unsplit, "merge.live_seconds"));
  EXPECT_NE(merged.find("\"merge.live_count\": 5"), std::string::npos);
}

}  // namespace
}  // namespace imdiff
