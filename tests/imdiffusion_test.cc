#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/im_transformer.h"
#include "core/imdiffusion.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "metrics/classification.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace {

// Tiny configuration so the full train+infer cycle stays fast in unit tests.
ImDiffusionConfig TinyConfig(uint64_t seed) {
  ImDiffusionConfig config;
  config.model.window = 40;
  config.model.hidden = 16;
  config.model.num_blocks = 1;
  config.model.num_heads = 2;
  config.model.ff_dim = 32;
  config.model.step_embed_dim = 16;
  config.model.side_dim = 8;
  config.schedule.num_steps = 6;
  config.schedule.beta_end = 0.7f;
  config.num_masked_windows = 2;
  config.epochs = 4;
  config.batch_size = 4;
  config.train_stride = 10;
  config.vote_last_steps = 4;
  config.vote_stride = 1;
  config.stochastic_sampling = false;
  config.seed = seed;
  return config;
}

// A small easy dataset: smooth sine mixture with one obvious level shift.
MtsDataset EasyDataset(uint64_t seed) {
  SyntheticConfig signal;
  signal.length = 480;
  signal.dims = 3;
  signal.num_factors = 2;
  signal.noise_sigma = 0.02f;
  signal.burst_rate = 0.0;
  signal.bump_rate = 0.0;
  signal.ar_sigma = 0.01f;
  Rng rng(seed);
  Tensor full = GenerateCleanSeries(signal, rng);
  MtsDataset ds;
  ds.name = "easy";
  Tensor train({240, 3});
  Tensor test({240, 3});
  std::copy_n(full.data(), 240 * 3, train.mutable_data());
  std::copy_n(full.data() + 240 * 3, 240 * 3, test.mutable_data());
  ds.train = std::move(train);
  ds.test = std::move(test);
  // One strong level shift on all channels at [100, 140).
  for (int64_t t = 100; t < 140; ++t) {
    for (int64_t k = 0; k < 3; ++k) {
      ds.test.mutable_data()[t * 3 + k] += 3.0f;
    }
  }
  ds.test_labels.assign(240, 0);
  for (int64_t t = 100; t < 140; ++t) ds.test_labels[t] = 1;
  return ds;
}

TEST(ImTransformerTest, ForwardShape) {
  ImTransformerConfig config;
  config.num_features = 3;
  config.window = 20;
  config.hidden = 8;
  config.num_blocks = 1;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.step_embed_dim = 8;
  config.side_dim = 4;
  config.num_diffusion_steps = 5;
  Rng rng(1);
  ImTransformer model(config, rng);
  Tensor x = Tensor::Randn({2, 3, 20}, rng);
  Tensor ref = Tensor::Randn({2, 3, 20}, rng);
  Tensor mask = Tensor::Full({2, 3, 20}, 1.0f);
  nn::Var out = model.Forward(x, ref, mask, 2, {0, 1});
  EXPECT_EQ(out.shape(), (Shape{2, 3, 20}));
  EXPECT_GT(nn::ParameterCount(model), 0);
}

TEST(ImTransformerTest, AblationsDropParameters) {
  ImTransformerConfig config;
  config.num_features = 3;
  config.window = 20;
  config.hidden = 8;
  config.num_blocks = 1;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.step_embed_dim = 8;
  config.side_dim = 4;
  Rng rng(2);
  ImTransformer full(config, rng);
  config.use_spatial = false;
  Rng rng2(2);
  ImTransformer no_spatial(config, rng2);
  EXPECT_LT(nn::ParameterCount(no_spatial), nn::ParameterCount(full));
  // Forward still works without the spatial transformer.
  Tensor x = Tensor::Randn({1, 3, 20}, rng);
  nn::Var out = no_spatial.Forward(x, Tensor::Zeros({1, 3, 20}),
                                   Tensor::Full({1, 3, 20}, 1.0f), 1, {0});
  EXPECT_EQ(out.shape(), (Shape{1, 3, 20}));
}

TEST(ImTransformerTest, GradientsReachAllParameters) {
  ImTransformerConfig config;
  config.num_features = 2;
  config.window = 16;
  config.hidden = 8;
  config.num_blocks = 2;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.step_embed_dim = 8;
  config.side_dim = 4;
  Rng rng(3);
  ImTransformer model(config, rng);
  Tensor x = Tensor::Randn({2, 2, 16}, rng);
  Tensor ref = Tensor::Randn({2, 2, 16}, rng);
  Tensor mask({2, 2, 16});
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.mutable_data()[i] = i % 2 == 0 ? 1.0f : 0.0f;
  }
  nn::Var out = model.Forward(x, ref, mask, 1, {0, 1});
  nn::Backward(nn::SumV(out));
  for (const nn::Var& p : model.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(ImDiffusionTest, EndToEndDetectsObviousShift) {
  MtsDataset ds = NormalizeDataset(EasyDataset(5));
  ImDiffusionDetector detector(TinyConfig(7));
  detector.Fit(ds.train);
  DetectionResult result = detector.Run(ds.test);
  ASSERT_EQ(result.scores.size(), 240u);
  ASSERT_EQ(result.labels.size(), 240u);
  BinaryMetrics best;
  BestF1Threshold(result.scores, ds.test_labels, 32, &best);
  // The shift is 3x the signal scale: even a tiny model must find it.
  EXPECT_GT(best.f1, 0.8);
  // Scores must be finite everywhere.
  for (float s : result.scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(ImDiffusionTest, TrainingLossDecreases) {
  MtsDataset ds = NormalizeDataset(EasyDataset(6));
  ImDiffusionConfig config = TinyConfig(8);
  config.epochs = 8;
  ImDiffusionDetector detector(config);
  detector.Fit(ds.train);
  const auto& history = detector.train_loss_history();
  ASSERT_EQ(history.size(), 8u);
  // Mean of the last three epochs below the first epoch (noisy per-epoch
  // losses because t is resampled, so compare aggregates).
  const float head = history[0];
  const float tail =
      (history[5] + history[6] + history[7]) / 3.0f;
  EXPECT_LT(tail, head * 1.2f);
}

TEST(ImDiffusionTest, TraceShapesConsistent) {
  MtsDataset ds = NormalizeDataset(EasyDataset(9));
  ImDiffusionDetector detector(TinyConfig(10));
  detector.Fit(ds.train);
  ImDiffusionDetector::StepTrace trace;
  DetectionResult result = detector.RunWithTrace(ds.test, &trace);
  ASSERT_EQ(trace.steps.size(), trace.step_errors.size());
  ASSERT_EQ(trace.steps.size(), trace.step_labels.size());
  ASSERT_EQ(trace.steps.size(), trace.step_imputed.size());
  EXPECT_EQ(trace.votes.size(), result.scores.size());
  for (const auto& errs : trace.step_errors) {
    EXPECT_EQ(errs.size(), result.scores.size());
  }
  // Vote counts bounded by the number of vote steps.
  for (int v : trace.votes) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, static_cast<int>(trace.steps.size()));
  }
  // Reverse-step indices are increasing and end at T.
  for (size_t i = 1; i < trace.steps.size(); ++i) {
    EXPECT_GT(trace.steps[i], trace.steps[i - 1]);
  }
  EXPECT_EQ(trace.steps.back(), detector.config().schedule.num_steps);
}

TEST(ImDiffusionTest, DeterministicGivenSeed) {
  MtsDataset ds = NormalizeDataset(EasyDataset(11));
  ImDiffusionDetector a(TinyConfig(12));
  ImDiffusionDetector b(TinyConfig(12));
  a.Fit(ds.train);
  b.Fit(ds.train);
  DetectionResult ra = a.Run(ds.test);
  DetectionResult rb = b.Run(ds.test);
  for (size_t i = 0; i < ra.scores.size(); ++i) {
    EXPECT_EQ(ra.scores[i], rb.scores[i]);
  }
}

// Every ablation variant must run end-to-end and produce finite scores.
class ImDiffusionVariantTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ImDiffusionVariantTest, RunsEndToEnd) {
  ImDiffusionConfig config = TinyConfig(13);
  const std::string variant = GetParam();
  if (variant == "forecasting") {
    config.mask_strategy = MaskStrategy::kForecasting;
  } else if (variant == "reconstruction") {
    config.mask_strategy = MaskStrategy::kReconstruction;
  } else if (variant == "random_mask") {
    config.mask_strategy = MaskStrategy::kRandom;
  } else if (variant == "conditional") {
    config.conditional = true;
  } else if (variant == "non_ensemble") {
    config.ensemble = false;
  } else if (variant == "no_spatial") {
    config.model.use_spatial = false;
  } else if (variant == "no_temporal") {
    config.model.use_temporal = false;
  } else if (variant == "stochastic") {
    config.stochastic_sampling = true;
  }
  MtsDataset ds = NormalizeDataset(EasyDataset(14));
  ImDiffusionDetector detector(config);
  detector.Fit(ds.train);
  DetectionResult result = detector.Run(ds.test);
  EXPECT_EQ(result.scores.size(), 240u);
  for (float s : result.scores) EXPECT_TRUE(std::isfinite(s));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ImDiffusionVariantTest,
    ::testing::Values("grating", "forecasting", "reconstruction",
                      "random_mask", "conditional", "non_ensemble",
                      "no_spatial", "no_temporal", "stochastic"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

TEST(ImDiffusionTest, VariantNamesDistinguishConfig) {
  ImDiffusionConfig config = TinyConfig(1);
  EXPECT_EQ(ImDiffusionDetector(config).name(), "ImDiffusion");
  config.conditional = true;
  EXPECT_EQ(ImDiffusionDetector(config).name(), "ImDiffusion-Conditional");
  config.conditional = false;
  config.mask_strategy = MaskStrategy::kForecasting;
  EXPECT_EQ(ImDiffusionDetector(config).name(), "ImDiffusion-Forecasting");
}

// Threading determinism contract (DESIGN.md): every parallel unit writes a
// disjoint output slice and randomness is drawn serially, so the number of
// compute threads (IMDIFF_NUM_THREADS in production, SetComputeThreads here)
// must not change a single bit of the detection scores.
TEST(ImDiffusionTest, ScoresBitwiseIdenticalAcrossThreadCounts) {
  MtsDataset ds = NormalizeDataset(EasyDataset(31));

  SetComputeThreads(1);
  ImDiffusionDetector serial(TinyConfig(32));
  serial.Fit(ds.train);
  const DetectionResult serial_result = serial.Run(ds.test);

  SetComputeThreads(4);
  ImDiffusionDetector parallel(TinyConfig(32));
  parallel.Fit(ds.train);
  const DetectionResult parallel_result = parallel.Run(ds.test);
  SetComputeThreads(1);

  ASSERT_EQ(serial_result.scores.size(), parallel_result.scores.size());
  for (size_t i = 0; i < serial_result.scores.size(); ++i) {
    ASSERT_EQ(serial_result.scores[i], parallel_result.scores[i])
        << "score diverged at position " << i;
  }
  EXPECT_EQ(serial_result.labels, parallel_result.labels);
}

// Same contract for the stochastic (ancestral DDPM) sampler: the per-chain
// sampling noise comes from serially forked generators, not the thread
// schedule.
TEST(ImDiffusionTest, StochasticScoresBitwiseIdenticalAcrossThreadCounts) {
  MtsDataset ds = NormalizeDataset(EasyDataset(33));
  ImDiffusionConfig config = TinyConfig(34);
  config.stochastic_sampling = true;
  config.infer_batch = 2;  // several chunks so the parallel loop is exercised

  SetComputeThreads(1);
  ImDiffusionDetector serial(config);
  serial.Fit(ds.train);
  const DetectionResult serial_result = serial.Run(ds.test);

  SetComputeThreads(4);
  ImDiffusionDetector parallel(config);
  parallel.Fit(ds.train);
  const DetectionResult parallel_result = parallel.Run(ds.test);
  SetComputeThreads(1);

  ASSERT_EQ(serial_result.scores.size(), parallel_result.scores.size());
  for (size_t i = 0; i < serial_result.scores.size(); ++i) {
    ASSERT_EQ(serial_result.scores[i], parallel_result.scores[i])
        << "score diverged at position " << i;
  }
}

TEST(ImDiffusionTest, PaperConfigMatchesTable1) {
  ImDiffusionConfig config = PaperImDiffusionConfig();
  EXPECT_EQ(config.model.window, 100);
  EXPECT_EQ(config.model.num_blocks, 4);
  EXPECT_EQ(config.model.hidden, 128);
  EXPECT_EQ(config.schedule.num_steps, 50);
  EXPECT_EQ(config.num_masked_windows, 5);
  EXPECT_EQ(config.vote_last_steps, 30);
  EXPECT_EQ(config.vote_stride, 3);
}

}  // namespace
}  // namespace imdiff
