// Arena allocator: bucket math, free-list reuse, accounting, Tensor
// integration, and an interleaved multi-threaded stress test (the suite name
// keeps these in the TSan CI shard).

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/arena.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace imdiff {
namespace {

// Pins recycling on (or off) for one test and restores the prior state, so
// the pooling-behavior assertions hold even when the whole suite runs with
// IMDIFF_ARENA=0.
class PoolingGuard {
 public:
  explicit PoolingGuard(bool enabled)
      : prev_(Arena::Global().pooling_enabled()) {
    Arena::Global().set_pooling_enabled(enabled);
  }
  ~PoolingGuard() { Arena::Global().set_pooling_enabled(prev_); }

 private:
  bool prev_;
};

TEST(ArenaTest, BucketRounding) {
  EXPECT_EQ(Arena::BucketIndex(1), 0);
  EXPECT_EQ(Arena::BucketIndex(64), 0);
  EXPECT_EQ(Arena::BucketIndex(65), 1);
  EXPECT_EQ(Arena::BucketIndex(128), 1);
  EXPECT_EQ(Arena::BucketIndex(size_t{1} << 24), Arena::kNumBuckets - 1);
  // Above the largest bucket: oversize.
  EXPECT_EQ(Arena::BucketIndex((size_t{1} << 24) + 1), -1);
  for (int b = 0; b < Arena::kNumBuckets; ++b) {
    EXPECT_EQ(Arena::BucketIndex(Arena::BucketFloats(b)), b);
  }
}

TEST(ArenaTest, FreeListReuseIsAHit) {
  PoolingGuard pooling(true);
  Arena& arena = Arena::Global();
  // Drain any pooled buffer of this class so the first Acquire is a miss.
  arena.Trim();
  const Arena::Stats before = arena.stats();
  float* p = arena.Acquire(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u) << "not 64-byte aligned";
  arena.Release(p, 100);
  // Same bucket (rounds to 128 floats) — must come back from the free list.
  float* q = arena.Acquire(120);
  EXPECT_EQ(q, p);
  arena.Release(q, 120);
  const Arena::Stats after = arena.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses + 1);
}

TEST(ArenaTest, LiveAndPooledByteAccounting) {
  PoolingGuard pooling(true);
  Arena& arena = Arena::Global();
  arena.Trim();
  const Arena::Stats base = arena.stats();
  constexpr size_t kFloats = 1000;  // bucket capacity 1024 floats
  const int64_t bucket_bytes = static_cast<int64_t>(
      Arena::BucketFloats(Arena::BucketIndex(kFloats)) * sizeof(float));
  float* p = arena.Acquire(kFloats);
  EXPECT_EQ(arena.stats().live_bytes, base.live_bytes + bucket_bytes);
  arena.Release(p, kFloats);
  EXPECT_EQ(arena.stats().live_bytes, base.live_bytes);
  EXPECT_EQ(arena.stats().pooled_bytes, base.pooled_bytes + bucket_bytes);
  arena.Trim();
  EXPECT_EQ(arena.stats().pooled_bytes, 0);
}

TEST(ArenaTest, OversizeBypassesFreeLists) {
  Arena& arena = Arena::Global();
  const size_t n = (size_t{1} << 24) + 1;
  const Arena::Stats before = arena.stats();
  float* p = arena.Acquire(n);
  ASSERT_NE(p, nullptr);
  p[0] = 1.0f;
  p[n - 1] = 2.0f;
  arena.Release(p, n);
  const Arena::Stats after = arena.stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.pooled_bytes, before.pooled_bytes);  // never pooled
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST(ArenaTest, ZeroSizedAcquire) {
  EXPECT_EQ(Arena::Global().Acquire(0), nullptr);
  Arena::Global().Release(nullptr, 0);  // must be a no-op
}

TEST(ArenaTest, TensorZeroCtorClearsRecycledBuffer) {
  // Dirty a buffer through one tensor, drop it, and check the zeroing
  // constructor really clears the recycled storage.
  {
    Tensor t = Tensor::Uninitialized({32});
    std::memset(t.mutable_data(), 0xAB, 32 * sizeof(float));
  }
  Tensor z({32});
  for (int64_t i = 0; i < z.numel(); ++i) EXPECT_EQ(z.flat(i), 0.0f);
}

TEST(ArenaTest, TensorRoundTripReusesStorage) {
  PoolingGuard pooling(true);
  Arena::Global().Trim();
  const Arena::Stats before = Arena::Global().stats();
  for (int iter = 0; iter < 10; ++iter) {
    Tensor t = Tensor::Uninitialized({257});  // bucket 512
    t.set_flat(0, static_cast<float>(iter));
  }
  const Arena::Stats after = Arena::Global().stats();
  // First iteration misses; the other nine reuse the same pooled buffer.
  EXPECT_GE(after.hits, before.hits + 9);
}

TEST(ArenaTest, PoolingDisabledStillWorks) {
  PoolingGuard pooling(false);
  Arena& arena = Arena::Global();
  const Arena::Stats before = arena.stats();
  float* p = arena.Acquire(64);
  ASSERT_NE(p, nullptr);
  arena.Release(p, 64);
  const Arena::Stats after = arena.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.pooled_bytes, before.pooled_bytes);
}

// Interleaved alloc/free across 8 threads; run under -DIMDIFF_SANITIZE=thread
// and =address in CI. Each thread hammers a mix of bucket sizes and writes a
// thread-unique pattern to detect any buffer handed to two owners at once.
TEST(ArenaStressTest, InterleavedAllocFreeAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([tid, &failures] {
      Rng rng(static_cast<uint64_t>(tid) * 7919 + 1);
      const float pattern = static_cast<float>(tid + 1);
      // Up to 8 outstanding buffers per thread, freed in random order.
      std::vector<std::pair<float*, size_t>> held;
      for (int it = 0; it < kItersPerThread; ++it) {
        if (held.size() < 8 && (held.empty() || rng.Bernoulli(0.6))) {
          const size_t n =
              static_cast<size_t>(rng.UniformInt(1, 4096));
          float* p = Arena::Global().Acquire(n);
          if (p == nullptr) {
            failures.fetch_add(1);
            continue;
          }
          p[0] = pattern;
          p[n - 1] = pattern;
          held.emplace_back(p, n);
        } else {
          const size_t pick = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(held.size()) - 1));
          auto [p, n] = held[pick];
          // If another thread got this buffer while we held it, the pattern
          // is torn.
          if (p[0] != pattern || p[n - 1] != pattern) failures.fetch_add(1);
          Arena::Global().Release(p, n);
          held[pick] = held.back();
          held.pop_back();
        }
      }
      for (auto [p, n] : held) Arena::Global().Release(p, n);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace imdiff
