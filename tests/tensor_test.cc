#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.flat(i), 0.0f);
}

TEST(TensorTest, FromValues) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, FullAndScalar) {
  Tensor t = Tensor::Full({3}, 2.5f);
  EXPECT_EQ(t.flat(2), 2.5f);
  EXPECT_EQ(Tensor::Scalar(7.0f).flat(0), 7.0f);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  // Shared storage: mutating the original is visible through the view.
  t.mutable_data()[0] = 42.0f;
  EXPECT_EQ(r.flat(0), 42.0f);
}

TEST(TensorTest, ReshapeInfersDimension) {
  Tensor t({4, 3});
  EXPECT_EQ(t.Reshape({2, -1}).dim(1), 6);
  EXPECT_EQ(t.Reshape({-1}).dim(0), 12);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor t({2}, {1, 2});
  Tensor c = t.Clone();
  t.mutable_data()[0] = 9.0f;
  EXPECT_EQ(c.flat(0), 1.0f);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(1);
  Tensor t = Tensor::Randn({10000}, rng);
  double mean = MeanAll(t);
  double var = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    var += (t.flat(i) - mean) * (t.flat(i) - mean);
  }
  var /= t.numel();
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(MatMulTest, Basic2D) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

// All four transpose variants must agree with explicitly permuted inputs.
TEST(MatMulTest, TransposeFlagsAgree) {
  Rng rng(2);
  Tensor a = Tensor::Randn({4, 5}, rng);
  Tensor b = Tensor::Randn({5, 3}, rng);
  Tensor expected = MatMul(a, b);
  Tensor at = Permute(a, {1, 0});
  Tensor bt = Permute(b, {1, 0});
  Tensor r1 = MatMul(at, b, /*ta=*/true, false);
  Tensor r2 = MatMul(a, bt, false, /*tb=*/true);
  Tensor r3 = MatMul(at, bt, true, true);
  for (int64_t i = 0; i < expected.numel(); ++i) {
    EXPECT_NEAR(r1.flat(i), expected.flat(i), 1e-4);
    EXPECT_NEAR(r2.flat(i), expected.flat(i), 1e-4);
    EXPECT_NEAR(r3.flat(i), expected.flat(i), 1e-4);
  }
}

// Unrolled kernel must match a naive reference on odd sizes (remainder path).
TEST(MatMulTest, MatchesNaiveOnOddSizes) {
  Rng rng(3);
  for (int64_t k : {1, 2, 3, 5, 7, 9}) {
    Tensor a = Tensor::Randn({3, k}, rng);
    Tensor b = Tensor::Randn({k, 4}, rng);
    Tensor c = MatMul(a, b);
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t j = 0; j < 4; ++j) {
        float acc = 0;
        for (int64_t p = 0; p < k; ++p) acc += a.at(i, p) * b.at(p, j);
        EXPECT_NEAR(c.at(i, j), acc, 1e-4) << "k=" << k;
      }
    }
  }
}

TEST(MatMulTest, Batched) {
  Rng rng(4);
  Tensor a = Tensor::Randn({3, 2, 4}, rng);
  Tensor b = Tensor::Randn({3, 4, 5}, rng);
  Tensor c = BatchedMatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 2, 5}));
  // Spot check one batch against the 2D kernel.
  Tensor a1 = Slice(a, 0, 1, 1).Reshape({2, 4});
  Tensor b1 = Slice(b, 0, 1, 1).Reshape({4, 5});
  Tensor c1 = MatMul(a1, b1);
  for (int64_t i = 0; i < c1.numel(); ++i) {
    EXPECT_NEAR(c.flat(c1.numel() + i), c1.flat(i), 1e-4);
  }
}

TEST(BroadcastTest, ShapeRules) {
  EXPECT_EQ(BroadcastShape({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShape({2, 1, 4}, {3, 1}), (Shape{2, 3, 4}));
  EXPECT_EQ(BroadcastShape({5}, {5}), (Shape{5}));
}

TEST(BroadcastTest, AddBiasRow) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3}, {10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.at(0, 0), 11.0f);
  EXPECT_EQ(c.at(1, 2), 36.0f);
}

TEST(BroadcastTest, MulMiddleAxis) {
  Tensor a({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor b({2, 1, 2}, {1, 10, 100, 1000});
  Tensor c = Mul(a, b);
  EXPECT_EQ(c.at(0, 1, 1), 40.0f);
  EXPECT_EQ(c.at(1, 0, 0), 500.0f);
}

TEST(BroadcastTest, ReduceToShapeInvertsBroadcast) {
  Rng rng(5);
  Tensor g = Tensor::Randn({2, 3, 4}, rng);
  Tensor reduced = ReduceToShape(g, {3, 1});
  EXPECT_EQ(reduced.shape(), (Shape{3, 1}));
  // Entry (1,0) must equal the sum over axes 0 and 2 at middle index 1.
  double expected = 0;
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 4; ++j) expected += g.at(i, 1, j);
  }
  EXPECT_NEAR(reduced.flat(1), expected, 1e-4);
}

TEST(StructuralTest, PermuteRoundTrip) {
  Rng rng(6);
  Tensor t = Tensor::Randn({2, 3, 4}, rng);
  Tensor p = Permute(t, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  EXPECT_EQ(p.at(1, 0, 2), t.at(0, 2, 1));
  Tensor back = Permute(p, {1, 2, 0});
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(back.flat(i), t.flat(i));
}

TEST(StructuralTest, ConcatAndSliceInverse) {
  Rng rng(7);
  Tensor a = Tensor::Randn({2, 3}, rng);
  Tensor b = Tensor::Randn({2, 2}, rng);
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 5}));
  Tensor a2 = Slice(c, 1, 0, 3);
  Tensor b2 = Slice(c, 1, 3, 2);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a2.flat(i), a.flat(i));
  for (int64_t i = 0; i < b.numel(); ++i) EXPECT_EQ(b2.flat(i), b.flat(i));
}

TEST(StructuralTest, SliceBackwardScatters) {
  Tensor g({2, 2}, {1, 2, 3, 4});
  Tensor full = SliceBackward(g, {2, 4}, 1, 1);
  EXPECT_EQ(full.at(0, 0), 0.0f);
  EXPECT_EQ(full.at(0, 1), 1.0f);
  EXPECT_EQ(full.at(0, 2), 2.0f);
  EXPECT_EQ(full.at(1, 1), 3.0f);
  EXPECT_EQ(full.at(1, 3), 0.0f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(8);
  Tensor t = Tensor::Randn({5, 7}, rng, 3.0f);
  Tensor s = SoftmaxLastDim(t);
  for (int64_t r = 0; r < 5; ++r) {
    double sum = 0;
    for (int64_t j = 0; j < 7; ++j) {
      sum += s.at(r, j);
      EXPECT_GT(s.at(r, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, StableUnderLargeInputs) {
  Tensor t({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = SoftmaxLastDim(t);
  for (int64_t j = 0; j < 3; ++j) EXPECT_NEAR(s.flat(j), 1.0f / 3.0f, 1e-5);
}

TEST(ReduceTest, SumAxisKeepdim) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = ReduceSumAxis(t, 0, true);
  EXPECT_EQ(s0.shape(), (Shape{1, 3}));
  EXPECT_EQ(s0.flat(0), 5.0f);
  Tensor s1 = ReduceSumAxis(t, 1, false);
  EXPECT_EQ(s1.shape(), (Shape{2}));
  EXPECT_EQ(s1.flat(1), 15.0f);
  EXPECT_EQ(SumAll(t), 21.0);
  EXPECT_NEAR(MeanAll(t), 3.5, 1e-9);
}

TEST(Conv1dTest, IdentityKernel) {
  Tensor x({1, 1, 5}, {1, 2, 3, 4, 5});
  Tensor w({1, 1, 1}, {1});
  Tensor y = Conv1d(x, w, Tensor(), 0);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(y.flat(i), x.flat(i));
}

TEST(Conv1dTest, MatchesNaive) {
  Rng rng(9);
  Tensor x = Tensor::Randn({2, 3, 8}, rng);
  Tensor w = Tensor::Randn({4, 3, 3}, rng);
  Tensor bias = Tensor::Randn({4}, rng);
  const int pad = 1;
  Tensor y = Conv1d(x, w, bias, pad);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 8}));
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t co = 0; co < 4; ++co) {
      for (int64_t l = 0; l < 8; ++l) {
        float acc = bias.flat(co);
        for (int64_t ci = 0; ci < 3; ++ci) {
          for (int64_t kk = 0; kk < 3; ++kk) {
            const int64_t pos = l + kk - pad;
            if (pos >= 0 && pos < 8) acc += w.at(co, ci, kk) * x.at(b, ci, pos);
          }
        }
        EXPECT_NEAR(y.at(b, co, l), acc, 1e-4);
      }
    }
  }
}

TEST(Conv1dTest, BackwardMatchesNumericalGradient) {
  Rng rng(10);
  Tensor x = Tensor::Randn({1, 2, 6}, rng);
  Tensor w = Tensor::Randn({2, 2, 3}, rng);
  Tensor bias = Tensor::Randn({2}, rng);
  const int pad = 1;
  Tensor y = Conv1d(x, w, bias, pad);
  Tensor grad_out = Tensor::Full(y.shape(), 1.0f);
  Tensor gx, gw, gb;
  Conv1dBackward(x, w, pad, grad_out, &gx, &gw, &gb);
  const float eps = 1e-3f;
  auto loss = [&](const Tensor& xx, const Tensor& ww, const Tensor& bb) {
    return SumAll(Conv1d(xx, ww, bb, pad));
  };
  // Check a few coordinates of each gradient numerically.
  for (int64_t i : {0, 3, 7}) {
    Tensor xp = x.Clone();
    xp.mutable_data()[i] += eps;
    const double num = (loss(xp, w, bias) - loss(x, w, bias)) / eps;
    EXPECT_NEAR(gx.flat(i), num, 5e-2);
  }
  for (int64_t i : {0, 5, 11}) {
    Tensor wp = w.Clone();
    wp.mutable_data()[i] += eps;
    const double num = (loss(x, wp, bias) - loss(x, w, bias)) / eps;
    EXPECT_NEAR(gw.flat(i), num, 5e-2);
  }
  for (int64_t i : {0, 1}) {
    Tensor bp = bias.Clone();
    bp.mutable_data()[i] += eps;
    const double num = (loss(x, w, bp) - loss(x, w, bias)) / eps;
    EXPECT_NEAR(gb.flat(i), num, 5e-2);
  }
}

// Property sweep: Map/Scale/AddScalar agree with their definitions across
// shapes.
class ElementwiseShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(ElementwiseShapeTest, ScaleMapAddScalar) {
  Rng rng(11);
  Tensor t = Tensor::Randn(GetParam(), rng);
  Tensor s = Scale(t, 2.0f);
  Tensor a = AddScalar(t, 1.5f);
  Tensor m = Map(t, [](float v) { return v * v; });
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(s.flat(i), 2.0f * t.flat(i));
    EXPECT_EQ(a.flat(i), t.flat(i) + 1.5f);
    EXPECT_EQ(m.flat(i), t.flat(i) * t.flat(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ElementwiseShapeTest,
                         ::testing::Values(Shape{1}, Shape{7}, Shape{2, 3},
                                           Shape{2, 3, 4}, Shape{1, 1, 5, 2}));

// The parallel kernels split work over disjoint output slices, so every
// thread count must produce bitwise-identical results. Runs each kernel with
// the serial compute pool and with 4 threads and compares exactly.
class ParallelKernelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetComputeThreads(1); }

  static void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
    ASSERT_EQ(a.shape(), b.shape());
    for (int64_t i = 0; i < a.numel(); ++i) {
      ASSERT_EQ(a.flat(i), b.flat(i)) << "at flat index " << i;
    }
  }
};

TEST_F(ParallelKernelTest, MatMulBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(21);
  Tensor a = Tensor::Randn({37, 29}, rng);
  Tensor b = Tensor::Randn({29, 41}, rng);
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      const Tensor lhs = ta ? Tensor::Randn({29, 37}, rng) : a;
      const Tensor rhs = tb ? Tensor::Randn({41, 29}, rng) : b;
      SetComputeThreads(1);
      Tensor serial = MatMul(lhs, rhs, ta, tb);
      SetComputeThreads(4);
      Tensor parallel = MatMul(lhs, rhs, ta, tb);
      ExpectBitwiseEqual(serial, parallel);
    }
  }
}

TEST_F(ParallelKernelTest, BatchedMatMulBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(22);
  Tensor a = Tensor::Randn({6, 17, 13}, rng);
  Tensor b = Tensor::Randn({6, 13, 19}, rng);
  SetComputeThreads(1);
  Tensor serial = BatchedMatMul(a, b);
  SetComputeThreads(4);
  Tensor parallel = BatchedMatMul(a, b);
  ExpectBitwiseEqual(serial, parallel);
}

TEST_F(ParallelKernelTest, Conv1dBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(23);
  Tensor x = Tensor::Randn({5, 4, 50}, rng);
  Tensor w = Tensor::Randn({6, 4, 5}, rng);
  Tensor bias = Tensor::Randn({6}, rng);
  SetComputeThreads(1);
  Tensor serial = Conv1d(x, w, bias, 2);
  SetComputeThreads(4);
  Tensor parallel = Conv1d(x, w, bias, 2);
  ExpectBitwiseEqual(serial, parallel);
}

TEST_F(ParallelKernelTest, SoftmaxBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(24);
  Tensor t = Tensor::Randn({64, 33}, rng);
  SetComputeThreads(1);
  Tensor serial = SoftmaxLastDim(t);
  SetComputeThreads(4);
  Tensor parallel = SoftmaxLastDim(t);
  ExpectBitwiseEqual(serial, parallel);
}

}  // namespace
}  // namespace imdiff
