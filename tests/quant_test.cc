// Tests for the reduced-precision GEMM kernels (src/tensor/quant): bf16
// pack/unpack exactness and rounding, int8 quantization error bounds, the
// int8 scalar == vector == AMX bitwise identity, pack purity across storage
// layouts, and the precision override plumbing (tensor/precision.h).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/precision.h"
#include "tensor/quant.h"
#include "tensor/simd.h"
#include "utils/rng.h"

namespace imdiff {
namespace {

std::vector<float> RandomMatrix(int64_t rows, int64_t cols, uint64_t seed,
                                float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  std::vector<float> m(static_cast<size_t>(rows * cols));
  for (float& v : m) v = lo + (hi - lo) * rng.Uniform();
  return m;
}

// Double-precision reference GEMM: c[m, n] = a[m, k] @ b[k, n].
std::vector<double> ReferenceGemm(const std::vector<float>& a,
                                  const std::vector<float>& b, int64_t m,
                                  int64_t k, int64_t n) {
  std::vector<double> c(static_cast<size_t>(m * n), 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t g = 0; g < k; ++g) {
      const double av = a[static_cast<size_t>(i * k + g)];
      for (int64_t j = 0; j < n; ++j) {
        c[static_cast<size_t>(i * n + j)] +=
            av * b[static_cast<size_t>(g * n + j)];
      }
    }
  }
  return c;
}

double RelL2(const std::vector<float>& got, const std::vector<double>& want) {
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < got.size(); ++i) {
    const double d = got[i] - want[i];
    num += d * d;
    den += want[i] * want[i];
  }
  return std::sqrt(num / den);
}

// ---- bf16 conversion -----------------------------------------------------

// Every value whose mantissa fits in bf16's 8 bits (including zeros,
// denormal-range powers of two, and infinities) round-trips exactly.
TEST(QuantBf16Test, RepresentableValuesRoundTripExactly) {
  const float exact[] = {0.0f,   -0.0f, 1.0f,     -1.0f,  0.5f,
                         2.0f,   -3.5f, 0.15625f, 192.0f, -0.00390625f,
                         256.0f, 255.0f, -1024.0f, 0x1.fep8f};
  for (float f : exact) {
    EXPECT_EQ(quant::F32FromBf16(quant::Bf16FromF32(f)), f) << f;
  }
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(quant::F32FromBf16(quant::Bf16FromF32(inf)), inf);
  EXPECT_EQ(quant::F32FromBf16(quant::Bf16FromF32(-inf)), -inf);
}

// Round-to-nearest-even at the mantissa cut: the tie halfway between two
// representable values goes to the even one, non-ties to the nearest.
TEST(QuantBf16Test, RoundsToNearestEven) {
  // bf16 keeps 7 mantissa bits, so ulp(1.0) = 2^-7. The exact tie between
  // bf16(1.0) and bf16(1.0078125) is 1 + 2^-8; even mantissa wins -> 1.0.
  EXPECT_EQ(quant::F32FromBf16(quant::Bf16FromF32(1.0f + 0x1p-8f)), 1.0f);
  // The tie between the odd mantissa 1.0078125 and the even 1.015625 rounds
  // up to the even one.
  EXPECT_EQ(quant::F32FromBf16(quant::Bf16FromF32(1.0078125f + 0x1p-8f)),
            1.015625f);
  // Just above the tie rounds up, just below rounds down.
  EXPECT_EQ(quant::F32FromBf16(quant::Bf16FromF32(1.0f + 0x1p-8f + 0x1p-16f)),
            1.0078125f);
  EXPECT_EQ(quant::F32FromBf16(quant::Bf16FromF32(1.0f + 0x1p-8f - 0x1p-16f)),
            1.0f);
  // Rounding error is bounded by half a ulp (2^-9 relative).
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float f = 2.0f * rng.Uniform() - 1.0f;
    const float r = quant::F32FromBf16(quant::Bf16FromF32(f));
    EXPECT_LE(std::fabs(r - f), std::fabs(f) * 0x1p-8f + 1e-38f) << f;
  }
}

TEST(QuantBf16Test, NanIsQuietedNotRounded) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(quant::F32FromBf16(quant::Bf16FromF32(nan))));
  // A signaling-ish payload must stay a NaN (the rounding add alone could
  // carry it into the infinity pattern).
  uint32_t bits = 0x7f800001u;
  float snan;
  std::memcpy(&snan, &bits, sizeof(snan));
  EXPECT_TRUE(std::isnan(quant::F32FromBf16(quant::Bf16FromF32(snan))));
}

// ---- GEMM accuracy bounds ------------------------------------------------

TEST(QuantGemmTest, Bf16GemmIsCloseToFp32Reference) {
  const int64_t m = 17, k = 64, n = 50;  // ragged n: partial panel covered
  const std::vector<float> a = RandomMatrix(m, k, 21);
  const std::vector<float> b = RandomMatrix(k, n, 22);
  quant::PackedBf16 packed;
  quant::PackBf16(b.data(), k, n, /*tb=*/false, &packed);
  std::vector<float> c(static_cast<size_t>(m * n));
  quant::GemmRowsBf16(a.data(), packed, c.data(), k, n, 0, m);
  // 8-bit mantissas on both operands, fp32 accumulation: well under 1%.
  EXPECT_LT(RelL2(c, ReferenceGemm(a, b, m, k, n)), 0.01);
}

// int8 round-trip bound: per-output-channel symmetric weights and per-row
// asymmetric activations keep the quantized GEMM within a small relative L2
// of the fp32 reference — the numeric contract the accuracy gate leans on.
TEST(QuantGemmTest, Int8GemmIsWithinQuantizationBound) {
  const int64_t m = 17, k = 64, n = 50;
  const std::vector<float> a = RandomMatrix(m, k, 31);
  const std::vector<float> b = RandomMatrix(k, n, 32);
  quant::PackedInt8 packed;
  quant::PackInt8(b.data(), k, n, /*tb=*/false, &packed);
  std::vector<float> c(static_cast<size_t>(m * n));
  quant::GemmRowsInt8(a.data(), packed, c.data(), k, n, 0, m);
  EXPECT_LT(RelL2(c, ReferenceGemm(a, b, m, k, n)), 0.05);

  // Per-channel scaling means a wildly hot column cannot poison the others:
  // scale one weight column by 1000x and the rest must stay tight.
  std::vector<float> hot = b;
  for (int64_t g = 0; g < k; ++g) hot[static_cast<size_t>(g * n)] *= 1000.0f;
  quant::PackedInt8 hot_packed;
  quant::PackInt8(hot.data(), k, n, /*tb=*/false, &hot_packed);
  std::vector<float> hot_c(static_cast<size_t>(m * n));
  quant::GemmRowsInt8(a.data(), hot_packed, hot_c.data(), k, n, 0, m);
  const std::vector<double> hot_ref = ReferenceGemm(a, hot, m, k, n);
  double num = 0.0, den = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 1; j < n; ++j) {  // all columns except the hot one
      const double d = hot_c[static_cast<size_t>(i * n + j)] -
                       hot_ref[static_cast<size_t>(i * n + j)];
      num += d * d;
      den += hot_ref[static_cast<size_t>(i * n + j)] *
             hot_ref[static_cast<size_t>(i * n + j)];
    }
  }
  EXPECT_LT(std::sqrt(num / den), 0.05);
}

// ---- pack purity and kernel-mode identities ------------------------------

// Packing is a pure function of the logical weight matrix: the [k, n] and
// transposed-storage [n, k] layouts of the same operand pack to identical
// bytes, scales, and column sums.
TEST(QuantPackTest, PackIsLayoutInvariant) {
  const int64_t k = 37, n = 41;  // both ragged vs panel geometry
  const std::vector<float> b = RandomMatrix(k, n, 43);
  std::vector<float> bt(static_cast<size_t>(n * k));
  for (int64_t g = 0; g < k; ++g) {
    for (int64_t j = 0; j < n; ++j) {
      bt[static_cast<size_t>(j * k + g)] = b[static_cast<size_t>(g * n + j)];
    }
  }
  quant::PackedBf16 h0, h1;
  quant::PackBf16(b.data(), k, n, /*tb=*/false, &h0);
  quant::PackBf16(bt.data(), k, n, /*tb=*/true, &h1);
  EXPECT_EQ(h0.data, h1.data);

  quant::PackedInt8 q0, q1;
  quant::PackInt8(b.data(), k, n, /*tb=*/false, &q0);
  quant::PackInt8(bt.data(), k, n, /*tb=*/true, &q1);
  EXPECT_EQ(q0.data, q1.data);
  EXPECT_EQ(q0.scale, q1.scale);
  EXPECT_EQ(q0.colsum, q1.colsum);
}

// The int8 kernel's scalar, AVX-512, and AMX bodies accumulate the same
// exact integers and share the dequant epilogue: all available modes must
// agree bitwise in one process.
TEST(QuantKernelModeTest, Int8ScalarVectorAmxBitwiseIdentical) {
  const int64_t m = 23, k = 70, n = 45;  // ragged k: padded reduction groups
  const std::vector<float> a = RandomMatrix(m, k, 51, -2.0f, 3.0f);
  const std::vector<float> b = RandomMatrix(k, n, 52);
  quant::PackedInt8 packed;
  quant::PackInt8(b.data(), k, n, /*tb=*/false, &packed);

  auto run = [&]() {
    std::vector<float> c(static_cast<size_t>(m * n));
    quant::GemmRowsInt8(a.data(), packed, c.data(), k, n, 0, m);
    return c;
  };
  simd::SetForceScalar(true);
  const std::vector<float> scalar = run();
  simd::SetForceScalar(false);
  if (quant::HasVectorInt8()) {
    quant::SetDisableAmx(true);
    EXPECT_EQ(run(), scalar) << "AVX-512 VNNI body diverged from scalar";
    quant::SetDisableAmx(false);
  }
  if (quant::HasAmxInt8()) {
    EXPECT_EQ(run(), scalar) << "AMX tile body diverged from scalar";
  }
}

// bf16 scalar and vector modes are separate bit patterns (like the fp32
// kernels), but each mode is individually deterministic.
TEST(QuantKernelModeTest, Bf16ModesAreIndividuallyDeterministic) {
  const int64_t m = 9, k = 33, n = 40;
  const std::vector<float> a = RandomMatrix(m, k, 61);
  const std::vector<float> b = RandomMatrix(k, n, 62);
  quant::PackedBf16 packed;
  quant::PackBf16(b.data(), k, n, /*tb=*/false, &packed);
  auto run = [&]() {
    std::vector<float> c(static_cast<size_t>(m * n));
    quant::GemmRowsBf16(a.data(), packed, c.data(), k, n, 0, m);
    return c;
  };
  simd::SetForceScalar(true);
  EXPECT_EQ(run(), run());
  simd::SetForceScalar(false);
  EXPECT_EQ(run(), run());
}

// Row-range calls assemble the same matrix as one full-range call, so any
// ParallelForRange partition of the rows is unobservable.
TEST(QuantKernelModeTest, RowPartitionIsUnobservable) {
  const int64_t m = 16, k = 40, n = 37;
  const std::vector<float> a = RandomMatrix(m, k, 71);
  const std::vector<float> b = RandomMatrix(k, n, 72);
  quant::PackedInt8 q;
  quant::PackInt8(b.data(), k, n, /*tb=*/false, &q);
  quant::PackedBf16 h;
  quant::PackBf16(b.data(), k, n, /*tb=*/false, &h);

  std::vector<float> whole(static_cast<size_t>(m * n));
  std::vector<float> split(static_cast<size_t>(m * n));
  quant::GemmRowsInt8(a.data(), q, whole.data(), k, n, 0, m);
  quant::GemmRowsInt8(a.data(), q, split.data(), k, n, 0, 5);
  quant::GemmRowsInt8(a.data(), q, split.data(), k, n, 5, 6);
  quant::GemmRowsInt8(a.data(), q, split.data(), k, n, 6, m);
  EXPECT_EQ(whole, split);

  quant::GemmRowsBf16(a.data(), h, whole.data(), k, n, 0, m);
  quant::GemmRowsBf16(a.data(), h, split.data(), k, n, 0, 11);
  quant::GemmRowsBf16(a.data(), h, split.data(), k, n, 11, m);
  EXPECT_EQ(whole, split);
}

// LinearInto (the legacy-stack entry) is the pack-per-call twin of
// GemmRows*: same bits, plus the bias row epilogue.
TEST(QuantKernelModeTest, LinearIntoMatchesPrepackedGemmPlusBias) {
  const int64_t m = 8, k = 24, n = 19;
  const std::vector<float> x = RandomMatrix(m, k, 81);
  const std::vector<float> w = RandomMatrix(k, n, 82);
  const std::vector<float> bias = RandomMatrix(1, n, 83);

  for (Precision p : {Precision::kBf16, Precision::kInt8}) {
    std::vector<float> want(static_cast<size_t>(m * n));
    if (p == Precision::kBf16) {
      quant::PackedBf16 packed;
      quant::PackBf16(w.data(), k, n, /*tb=*/false, &packed);
      quant::GemmRowsBf16(x.data(), packed, want.data(), k, n, 0, m);
    } else {
      quant::PackedInt8 packed;
      quant::PackInt8(w.data(), k, n, /*tb=*/false, &packed);
      quant::GemmRowsInt8(x.data(), packed, want.data(), k, n, 0, m);
    }
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        want[static_cast<size_t>(i * n + j)] += bias[static_cast<size_t>(j)];
      }
    }
    std::vector<float> got(static_cast<size_t>(m * n));
    quant::LinearInto(x.data(), w.data(), bias.data(), got.data(), m, k, n, p);
    EXPECT_EQ(got, want) << PrecisionName(p);
  }
}

// ---- precision override plumbing -----------------------------------------

TEST(PrecisionOverrideTest, ForceWinsOverRequestAndClears) {
  ClearForcePrecision();
  EXPECT_EQ(ResolvePrecision(Precision::kBf16), Precision::kBf16);
  SetForcePrecision(Precision::kInt8);
  EXPECT_EQ(ResolvePrecision(Precision::kF32), Precision::kInt8);
  EXPECT_EQ(ResolvePrecision(Precision::kBf16), Precision::kInt8);
  ClearForcePrecision();
  EXPECT_EQ(ResolvePrecision(Precision::kF32), Precision::kF32);
}

TEST(PrecisionOverrideTest, ParseAndNameRoundTrip) {
  Precision p;
  ASSERT_TRUE(ParsePrecision("fp32", &p));
  EXPECT_EQ(p, Precision::kF32);
  ASSERT_TRUE(ParsePrecision("bf16", &p));
  EXPECT_EQ(p, Precision::kBf16);
  ASSERT_TRUE(ParsePrecision("int8", &p));
  EXPECT_EQ(p, Precision::kInt8);
  EXPECT_FALSE(ParsePrecision("fp16", &p));
  EXPECT_FALSE(ParsePrecision(nullptr, &p));
  for (Precision q :
       {Precision::kF32, Precision::kBf16, Precision::kInt8}) {
    Precision back;
    ASSERT_TRUE(ParsePrecision(PrecisionName(q), &back));
    EXPECT_EQ(back, q);
  }
}

TEST(PrecisionOverrideTest, ScopedPrecisionRestoresOnExit) {
  EXPECT_EQ(ActivePrecision(), Precision::kF32);
  {
    ScopedPrecision outer(Precision::kBf16);
    EXPECT_EQ(ActivePrecision(), Precision::kBf16);
    {
      ScopedPrecision inner(Precision::kInt8);
      EXPECT_EQ(ActivePrecision(), Precision::kInt8);
    }
    EXPECT_EQ(ActivePrecision(), Precision::kBf16);
  }
  EXPECT_EQ(ActivePrecision(), Precision::kF32);
}

}  // namespace
}  // namespace imdiff
