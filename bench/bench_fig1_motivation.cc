// Reproduces Fig. 1: reconstruction vs forecasting vs imputation modeling of
// the same series around an outlier period. Prints the per-timestep predicted
// error of each approach (diffusion backbone identical; only the masking
// differs) so the crossover the figure shows — comparable error inside the
// outlier, imputation clearly lower on normal ranges — can be read off.
//
// Usage: bench_fig1_motivation [--scale F] [--metrics-out PATH]

#include <cstdio>

#include "core/imdiffusion.h"
#include "eval/runner.h"

namespace imdiff {
namespace {

int Main(int argc, char** argv) {
  HarnessOptions options = ParseHarnessOptions(argc, argv);
  MtsDataset dataset =
      MakeBenchmarkDataset(BenchmarkId::kSmd, options.dataset_seed, 0.25f);
  MtsDataset norm = NormalizeDataset(dataset);

  std::printf("=== Fig. 1: modeling-approach comparison on one series ===\n");
  const char* kVariants[] = {"ImDiffusion", "Forecasting", "Reconstruction"};
  std::vector<std::vector<float>> scores;
  for (const char* name : kVariants) {
    auto detector = MakeDetector(name, 7, options.profile);
    detector->Fit(norm.train);
    scores.push_back(detector->Run(norm.test).scores);
    std::printf("%s scored\n", name);
    std::fflush(stdout);
  }
  // Locate the first anomalous segment and print errors around it.
  const auto segments = FindSegments(norm.test_labels);
  int64_t lo = 0, hi = std::min<int64_t>(120, norm.test_length());
  if (!segments.empty()) {
    lo = std::max<int64_t>(segments[0].start - 40, 0);
    hi = std::min<int64_t>(segments[0].end + 40, norm.test_length());
  }
  std::printf("\nt,label,imputation_error,forecasting_error,"
              "reconstruction_error\n");
  for (int64_t t = lo; t < hi; ++t) {
    std::printf("%lld,%d,%.5f,%.5f,%.5f\n", static_cast<long long>(t),
                norm.test_labels[static_cast<size_t>(t)],
                scores[0][static_cast<size_t>(t)],
                scores[1][static_cast<size_t>(t)],
                scores[2][static_cast<size_t>(t)]);
  }
  // Aggregate view (the figure's visual claim).
  for (int v = 0; v < 3; ++v) {
    double normal = 0, abnormal = 0;
    int nn = 0, na = 0;
    for (size_t t = 0; t < scores[v].size(); ++t) {
      if (norm.test_labels[t]) {
        abnormal += scores[v][t];
        ++na;
      } else {
        normal += scores[v][t];
        ++nn;
      }
    }
    std::printf("%s: mean normal-range error %.4f, mean outlier error %.4f\n",
                kVariants[v], normal / std::max(nn, 1),
                abnormal / std::max(na, 1));
  }
  WriteMetricsIfRequested(options);
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
