// Reproduces Table 7: online production comparison on the simulated
// email-delivery microservice latency stream. The paper reports only
// *relative* improvements of ImDiffusion over the legacy deep-learning
// detector (confidentiality); we therefore print both absolute values and the
// relative deltas, plus inference throughput in points/second on CPU.
//
// The "legacy" detector is an LSTM forecaster with static thresholding —
// the class of deep detector the paper describes replacing.
//
// The ImDiffusion row runs through the serving path (serve/replay.h): the
// test split streams through a StreamServer, so points/second is end-to-end
// throughput (queueing + batching + scoring) and ADD counts a detection only
// from the moment its block is emitted — the numbers a production consumer
// of the alert stream would measure, matching the paper's deployment story.
//
// Usage: bench_table7_production [--seeds N] [--paper] [--metrics-out PATH]

#include <cstdio>

#include "baselines/lstm_ad.h"
#include "core/imdiffusion.h"
#include "eval/runner.h"
#include "eval/tables.h"
#include "serve/replay.h"

namespace imdiff {
namespace {

int Main(int argc, char** argv) {
  HarnessOptions options = ParseHarnessOptions(argc, argv);
  std::printf(
      "=== Table 7: production microservice-latency monitoring (seeds=%d) "
      "===\n\n",
      options.num_seeds);
  MtsDataset stream = MakeMicroserviceLatencyDataset(options.dataset_seed);

  const AggregateMetrics legacy =
      EvaluateManySeeds("LSTM-AD", stream, options.num_seeds, options.profile);
  serve::StreamServer::Options served;
  const AggregateMetrics imdiff = serve::EvaluateServedManySeeds(
      stream, options.num_seeds, options.profile, served);

  TextTable table({"Detector", "P", "R", "F1", "R-AUC-PR", "ADD",
                   "points/second"});
  table.AddRow({"Legacy (LSTM forecaster)", FormatMetric(legacy.precision),
                FormatMetric(legacy.recall), FormatMetric(legacy.f1),
                FormatMetric(legacy.r_auc_pr), FormatMetric(legacy.add, 1),
                FormatMetric(legacy.points_per_second, 1)});
  table.AddRow({"ImDiffusion (served)", FormatMetric(imdiff.precision),
                FormatMetric(imdiff.recall), FormatMetric(imdiff.f1),
                FormatMetric(imdiff.r_auc_pr), FormatMetric(imdiff.add, 1),
                FormatMetric(imdiff.points_per_second, 1)});
  std::printf("%s\n", table.ToString().c_str());

  auto rel = [](double ours, double theirs) {
    return theirs > 0 ? (ours - theirs) / theirs * 100.0 : 0.0;
  };
  std::printf("Relative improvement of ImDiffusion over the legacy detector\n");
  std::printf("(paper reports: P +9.0%%, R +12.7%%, F1 +11.4%%, R-AUC-PR "
              "+14.4%%, ADD -30.2%%, 5.8 points/s):\n");
  TextTable delta({"P", "R", "F1", "R-AUC-PR", "ADD reduction",
                   "ImDiffusion points/second"});
  delta.AddRow({FormatMetric(rel(imdiff.precision, legacy.precision), 1) + "%",
                FormatMetric(rel(imdiff.recall, legacy.recall), 1) + "%",
                FormatMetric(rel(imdiff.f1, legacy.f1), 1) + "%",
                FormatMetric(rel(imdiff.r_auc_pr, legacy.r_auc_pr), 1) + "%",
                FormatMetric(-rel(imdiff.add, legacy.add), 1) + "%",
                FormatMetric(imdiff.points_per_second, 1)});
  std::printf("%s", delta.ToString().c_str());
  // 30-second sampling means anything above ~0.04 points/s/service keeps up.
  std::printf(
      "\nLatency samples arrive every 30 s; end-to-end serving at %.1f "
      "points/s %s the online requirement.\n",
      imdiff.points_per_second,
      imdiff.points_per_second > 1.0 ? "comfortably meets" : "misses");
  WriteMetricsIfRequested(options);
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
