#!/usr/bin/env python3
"""Kernel perf-regression gate for CI.

Compares a freshly measured kernel sweep (bench_micro --kernels-out) against
the committed baseline BENCH_kernels.json and fails when any (kernel, variant)
row's throughput dropped by more than --max-drop (default 30%, loose enough
for shared CI runners but tight enough to catch a scalarized kernel or a
vectorization regression).

Throughput per row: gflops when the baseline reports one (> 0), otherwise
1 / seconds_per_op — memory-bound kernels (softmax, gelu, layernorm) report
gflops as 0.000, so ops/s is the comparable quantity there.

Rows present in the baseline but missing from the current sweep fail the gate
(a silently dropped benchmark is a regression in coverage, not a pass). New
rows in the current sweep are reported but do not fail.

Usage:
  check_kernels.py BASELINE CURRENT [--max-drop 0.30]
  check_kernels.py --self-test BASELINE

--self-test synthesizes a 50% slowdown of every baseline row and asserts the
gate trips on it (and that an identical copy passes): the CI gate proves on
every run that it is still capable of failing.
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[(row["kernel"], row["variant"])] = row
    if not rows:
        sys.exit(f"error: no kernel rows in {path}")
    return rows


def throughput(baseline_row, row):
    # The BASELINE row decides the metric so both sides are compared in the
    # same units even if the current sweep starts reporting gflops.
    if baseline_row.get("gflops", 0.0) > 0.0:
        return row.get("gflops", 0.0)
    seconds = row.get("seconds_per_op", 0.0)
    return 1.0 / seconds if seconds > 0.0 else 0.0


def compare(baseline, current, max_drop):
    """Returns a list of failure strings; empty means the gate passes."""
    failures = []
    for key, base_row in sorted(baseline.items()):
        kernel, variant = key
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"{kernel}/{variant}: missing from current sweep")
            continue
        base = throughput(base_row, base_row)
        cur = throughput(base_row, cur_row)
        if base <= 0.0:
            failures.append(f"{kernel}/{variant}: baseline throughput is 0")
            continue
        drop = 1.0 - cur / base
        status = "FAIL" if drop > max_drop else "ok"
        print(f"  {status:4s} {kernel}/{variant}: "
              f"{base:.3g} -> {cur:.3g} ({-drop:+.1%})")
        if drop > max_drop:
            failures.append(
                f"{kernel}/{variant}: throughput dropped {drop:.1%} "
                f"(limit {max_drop:.0%})")
    for key in sorted(set(current) - set(baseline)):
        print(f"  new  {key[0]}/{key[1]}: not in baseline (ignored)")
    return failures


def self_test(baseline, max_drop):
    identical = compare(baseline, dict(baseline), max_drop)
    if identical:
        sys.exit("self-test FAILED: identical sweep did not pass: "
                 + "; ".join(identical))
    slowed = {}
    for key, row in baseline.items():
        slow = dict(row)
        slow["seconds_per_op"] = row.get("seconds_per_op", 0.0) * 2.0
        slow["gflops"] = row.get("gflops", 0.0) * 0.5
        slowed[key] = slow
    failures = compare(baseline, slowed, max_drop)
    if len(failures) != len(baseline):
        sys.exit("self-test FAILED: synthetic 50% slowdown tripped "
                 f"{len(failures)}/{len(baseline)} rows")
    print(f"self-test passed: 50% slowdown trips all {len(baseline)} rows, "
          "identical sweep passes")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--max-drop", type=float, default=0.30,
                        help="max tolerated relative throughput drop")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on a synthetic slowdown")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    if args.self_test:
        self_test(baseline, args.max_drop)
        return
    if args.current is None:
        parser.error("CURRENT is required unless --self-test")
    failures = compare(baseline, load_rows(args.current), args.max_drop)
    if failures:
        print("\nperf gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        print("\nIf the regression is expected (e.g. an intentional "
              "algorithm change), update BENCH_kernels.json from a quiet "
              "machine or apply the 'allow-perf-regression' PR label.")
        sys.exit(1)
    print("perf gate passed")


if __name__ == "__main__":
    main()
