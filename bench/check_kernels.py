#!/usr/bin/env python3
"""Kernel perf-regression gate for CI.

Compares a freshly measured kernel sweep (bench_micro --kernels-out) against
the committed baseline BENCH_kernels.json and fails when any (kernel, variant)
row's throughput dropped by more than --max-drop (default 30%, loose enough
for shared CI runners but tight enough to catch a scalarized kernel or a
vectorization regression).

Throughput per row: gflops when the baseline reports one (> 0), then gbps —
memory-bound kernels (softmax, gelu, layernorm, pack_*) report gflops as
0.000 but carry bandwidth — and finally 1 / seconds_per_op for rows that
report neither (composite kernels like block_score).

The current sweep's summary is also gated on absolute speedup floors for the
reduced-precision GEMMs: matmul_bf16_speedup >= 1.3 and
matmul_int8_speedup >= 2.0 over the prepacked fp32 SIMD GEMM. A quantized
kernel that is not decisively faster than fp32 has no business on the
deadline-degradation ladder.

Rows present in the baseline but missing from the current sweep fail the gate
(a silently dropped benchmark is a regression in coverage, not a pass). New
rows in the current sweep are reported but do not fail.

Usage:
  check_kernels.py BASELINE CURRENT [--max-drop 0.30]
  check_kernels.py --self-test BASELINE

--self-test synthesizes a 50% slowdown of every baseline row and asserts the
gate trips on it (and that an identical copy passes): the CI gate proves on
every run that it is still capable of failing.
"""

import argparse
import json
import sys


SPEEDUP_FLOORS = {
    "matmul_bf16_speedup": 1.3,
    "matmul_int8_speedup": 2.0,
}


def load_doc(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[(row["kernel"], row["variant"])] = row
    if not rows:
        sys.exit(f"error: no kernel rows in {path}")
    return rows, doc.get("summary", {})


def throughput(baseline_row, row):
    # The BASELINE row decides the metric so both sides are compared in the
    # same units even if the current sweep starts reporting gflops.
    if baseline_row.get("gflops", 0.0) > 0.0:
        return row.get("gflops", 0.0)
    if baseline_row.get("gbps", 0.0) > 0.0:
        return row.get("gbps", 0.0)
    seconds = row.get("seconds_per_op", 0.0)
    return 1.0 / seconds if seconds > 0.0 else 0.0


def compare(baseline, current, max_drop):
    """Returns a list of failure strings; empty means the gate passes."""
    failures = []
    for key, base_row in sorted(baseline.items()):
        kernel, variant = key
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"{kernel}/{variant}: missing from current sweep")
            continue
        base = throughput(base_row, base_row)
        cur = throughput(base_row, cur_row)
        if base <= 0.0:
            failures.append(f"{kernel}/{variant}: baseline throughput is 0")
            continue
        drop = 1.0 - cur / base
        status = "FAIL" if drop > max_drop else "ok"
        print(f"  {status:4s} {kernel}/{variant}: "
              f"{base:.3g} -> {cur:.3g} ({-drop:+.1%})")
        if drop > max_drop:
            failures.append(
                f"{kernel}/{variant}: throughput dropped {drop:.1%} "
                f"(limit {max_drop:.0%})")
    for key in sorted(set(current) - set(baseline)):
        print(f"  new  {key[0]}/{key[1]}: not in baseline (ignored)")
    return failures


def check_floors(summary):
    """Gates the current sweep's summary speedups against absolute floors."""
    failures = []
    for name, floor in sorted(SPEEDUP_FLOORS.items()):
        value = summary.get(name)
        if value is None:
            failures.append(f"{name}: missing from current sweep's summary")
            continue
        status = "FAIL" if value < floor else "ok"
        print(f"  {status:4s} {name}: {value:.2f}x (floor {floor:.1f}x)")
        if value < floor:
            failures.append(
                f"{name}: {value:.2f}x below the {floor:.1f}x floor")
    return failures


def self_test(baseline, baseline_summary, max_drop):
    identical = compare(baseline, dict(baseline), max_drop)
    identical += check_floors(baseline_summary)
    if identical:
        sys.exit("self-test FAILED: identical sweep did not pass: "
                 + "; ".join(identical))
    slowed = {}
    for key, row in baseline.items():
        slow = dict(row)
        slow["seconds_per_op"] = row.get("seconds_per_op", 0.0) * 2.0
        slow["gflops"] = row.get("gflops", 0.0) * 0.5
        slow["gbps"] = row.get("gbps", 0.0) * 0.5
        slowed[key] = slow
    failures = compare(baseline, slowed, max_drop)
    if len(failures) != len(baseline):
        sys.exit("self-test FAILED: synthetic 50% slowdown tripped "
                 f"{len(failures)}/{len(baseline)} rows")
    sunk = {name: floor - 0.1 for name, floor in SPEEDUP_FLOORS.items()}
    floor_failures = check_floors(sunk)
    if len(floor_failures) != len(SPEEDUP_FLOORS):
        sys.exit("self-test FAILED: sub-floor speedups tripped "
                 f"{len(floor_failures)}/{len(SPEEDUP_FLOORS)} floors")
    print(f"self-test passed: 50% slowdown trips all {len(baseline)} rows, "
          f"sub-floor speedups trip all {len(SPEEDUP_FLOORS)} floors, "
          "identical sweep passes")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--max-drop", type=float, default=0.30,
                        help="max tolerated relative throughput drop")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on a synthetic slowdown")
    args = parser.parse_args()

    baseline, baseline_summary = load_doc(args.baseline)
    if args.self_test:
        self_test(baseline, baseline_summary, args.max_drop)
        return
    if args.current is None:
        parser.error("CURRENT is required unless --self-test")
    current, current_summary = load_doc(args.current)
    failures = compare(baseline, current, args.max_drop)
    failures += check_floors(current_summary)
    if failures:
        print("\nperf gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        print("\nIf the regression is expected (e.g. an intentional "
              "algorithm change), update BENCH_kernels.json from a quiet "
              "machine or apply the 'allow-perf-regression' PR label.")
        sys.exit(1)
    print("perf gate passed")


if __name__ == "__main__":
    main()
