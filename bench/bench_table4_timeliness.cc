// Reproduces Table 4: ADD (average detection delay, mean ± std over seeds)
// of every detector on every dataset, plus the cross-dataset average.
//
// Usage: bench_table4_timeliness [--seeds N] [--scale F] [--paper] [--metrics-out PATH]

#include <cstdio>
#include <vector>

#include "eval/runner.h"
#include "eval/tables.h"

namespace imdiff {
namespace {

int Main(int argc, char** argv) {
  HarnessOptions options = ParseHarnessOptions(argc, argv);
  std::printf(
      "=== Table 4: ADD (mean +- std) per dataset (seeds=%d, scale=%.2f) "
      "===\n\n",
      options.num_seeds, options.size_scale);
  const std::vector<std::string> detectors = Table2DetectorNames();
  std::vector<std::string> header = {"Method"};
  for (BenchmarkId id : AllBenchmarks()) header.push_back(BenchmarkName(id));
  header.push_back("Average");
  TextTable table(header);

  // Pre-generate datasets once.
  std::vector<MtsDataset> datasets;
  for (BenchmarkId id : AllBenchmarks()) {
    datasets.push_back(
        MakeBenchmarkDataset(id, options.dataset_seed, options.size_scale));
  }
  for (const std::string& name : detectors) {
    std::vector<std::string> row = {name};
    double total = 0, total_std = 0;
    for (const MtsDataset& dataset : datasets) {
      const AggregateMetrics agg =
          EvaluateManySeeds(name, dataset, options.num_seeds, options.profile);
      row.push_back(FormatMeanStd(agg.add, agg.add_std));
      total += agg.add;
      total_std += agg.add_std;
    }
    row.push_back(FormatMeanStd(total / datasets.size(),
                                total_std / datasets.size()));
    table.AddRow(std::move(row));
    std::printf("%s done\n", name.c_str());
    std::fflush(stdout);
  }
  std::printf("\n%s", table.ToString().c_str());
  WriteMetricsIfRequested(options);
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
