// Reproduces Fig. 9: overall / normal / abnormal predicted error and the
// abnormal-normal difference for conditional vs unconditional diffusion
// models, averaged over all datasets. The paper's claim: the unconditional
// model has a higher overall error but a *larger* abnormal-normal gap, i.e. a
// cleaner decision boundary.
//
// Usage: bench_fig9_error_gap [--scale F] [--metrics-out PATH]

#include <cstdio>

#include "core/imdiffusion.h"
#include "eval/runner.h"
#include "eval/tables.h"

namespace imdiff {
namespace {

struct ErrorSplit {
  double overall = 0;
  double normal = 0;
  double abnormal = 0;
};

int Main(int argc, char** argv) {
  HarnessOptions options = ParseHarnessOptions(argc, argv);
  std::printf(
      "=== Fig. 9: normal/abnormal error split, conditional vs unconditional "
      "(scale=%.2f) ===\n\n",
      options.size_scale);
  ErrorSplit uncond, cond;
  for (BenchmarkId id : AllBenchmarks()) {
    MtsDataset dataset =
        MakeBenchmarkDataset(id, options.dataset_seed, options.size_scale);
    MtsDataset norm = NormalizeDataset(dataset);
    for (int variant = 0; variant < 2; ++variant) {
      auto detector = MakeDetector(variant == 0 ? "ImDiffusion" : "Conditional",
                                   7, options.profile);
      detector->Fit(norm.train);
      const DetectionResult result = detector->Run(norm.test);
      double normal = 0, abnormal = 0;
      int nn = 0, na = 0;
      for (size_t t = 0; t < result.scores.size(); ++t) {
        if (norm.test_labels[t]) {
          abnormal += result.scores[t];
          ++na;
        } else {
          normal += result.scores[t];
          ++nn;
        }
      }
      ErrorSplit& split = variant == 0 ? uncond : cond;
      split.normal += normal / std::max(nn, 1) / 6.0;
      split.abnormal += abnormal / std::max(na, 1) / 6.0;
      split.overall += (normal + abnormal) /
                       std::max<size_t>(result.scores.size(), 1) / 6.0;
    }
    std::printf("%s done\n", dataset.name.c_str());
    std::fflush(stdout);
  }
  TextTable table({"Model", "Overall", "Normal", "Abnormal",
                   "Difference (abnormal - normal)"});
  table.AddRow({"Unconditional", FormatMetric(uncond.overall),
                FormatMetric(uncond.normal), FormatMetric(uncond.abnormal),
                FormatMetric(uncond.abnormal - uncond.normal)});
  table.AddRow({"Conditional", FormatMetric(cond.overall),
                FormatMetric(cond.normal), FormatMetric(cond.abnormal),
                FormatMetric(cond.abnormal - cond.normal)});
  std::printf("\n%s", table.ToString().c_str());
  std::printf(
      "\n(Fig. 9's claim: the unconditional row has the larger "
      "difference.)\n");
  WriteMetricsIfRequested(options);
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
