// Reproduces Fig. 2: conditional vs unconditional imputed diffusion on a
// series with anomalies. The unconditional model's imputed error separates
// normal from abnormal points much more sharply because anomalous unmasked
// values are never revealed directly.
//
// Usage: bench_fig2_conditional [--scale F] [--metrics-out PATH]

#include <cstdio>

#include "core/imdiffusion.h"
#include "eval/runner.h"

namespace imdiff {
namespace {

int Main(int argc, char** argv) {
  HarnessOptions options = ParseHarnessOptions(argc, argv);
  MtsDataset dataset =
      MakeBenchmarkDataset(BenchmarkId::kPsm, options.dataset_seed, 0.25f);
  MtsDataset norm = NormalizeDataset(dataset);

  std::printf("=== Fig. 2: conditional vs unconditional imputed error ===\n");
  std::vector<std::vector<float>> scores;
  for (const char* name : {"ImDiffusion", "Conditional"}) {
    auto detector = MakeDetector(name, 7, options.profile);
    detector->Fit(norm.train);
    scores.push_back(detector->Run(norm.test).scores);
    std::printf("%s scored\n", name);
    std::fflush(stdout);
  }
  double uncond_normal = 0, uncond_abnormal = 0;
  double cond_normal = 0, cond_abnormal = 0;
  int nn = 0, na = 0;
  for (size_t t = 0; t < scores[0].size(); ++t) {
    if (norm.test_labels[t]) {
      uncond_abnormal += scores[0][t];
      cond_abnormal += scores[1][t];
      ++na;
    } else {
      uncond_normal += scores[0][t];
      cond_normal += scores[1][t];
      ++nn;
    }
  }
  uncond_normal /= std::max(nn, 1);
  uncond_abnormal /= std::max(na, 1);
  cond_normal /= std::max(nn, 1);
  cond_abnormal /= std::max(na, 1);
  std::printf("\nmodel,normal_error,abnormal_error,separation_ratio\n");
  std::printf("unconditional,%.4f,%.4f,%.2f\n", uncond_normal, uncond_abnormal,
              uncond_abnormal / std::max(uncond_normal, 1e-9));
  std::printf("conditional,%.4f,%.4f,%.2f\n", cond_normal, cond_abnormal,
              cond_abnormal / std::max(cond_normal, 1e-9));
  std::printf(
      "\nPaper's claim: the unconditional model yields the larger "
      "normal/abnormal error gap (separation ratio).\n");
  WriteMetricsIfRequested(options);
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
