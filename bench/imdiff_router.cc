// Router front process for multi-process sharded serving (DESIGN.md §16).
//
// Attaches to N running `imdiff_worker` processes over their unix-domain
// sockets (`<socket-dir>/shard-<id>.sock`, the convention `serve_replay
// --shards` uses when it spawns workers itself) and runs operator commands
// against the fleet: a health probe of every shard, one merged metrics
// report (MergeMetricsJson over all shard snapshots plus the router's own),
// live tenant moves, a deterministic chaos kill, and graceful shutdown.
//
// Usage: imdiff_router --shards N [--socket-dir D] [--seed S]
//   [--metrics-out PATH] [--move TENANT=SHARD]... [--crash SHARD]
//   [--shutdown]
//
// Commands run in a fixed order: health probe (always printed), then moves,
// then --crash, then --metrics-out, then --shutdown. Exits nonzero when any
// shard is unreachable, misidentified, or a command fails.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "serve/router.h"
#include "utils/check.h"
#include "utils/logging.h"

namespace imdiff {
namespace {

struct RouterFlags {
  int64_t shards = 0;
  std::string socket_dir = ".";
  uint64_t seed = 1;
  std::string metrics_out;
  std::vector<std::pair<std::string, int64_t>> moves;  // tenant -> shard
  int64_t crash_shard = -1;
  bool shutdown = false;
};

RouterFlags ParseFlags(int argc, char** argv) {
  RouterFlags flags;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) {
      IMDIFF_CHECK(i + 1 < argc) << flag << "needs a value";
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--shards") == 0) {
      flags.shards = std::atoll(next("--shards"));
    } else if (std::strcmp(argv[i], "--socket-dir") == 0) {
      flags.socket_dir = next("--socket-dir");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      flags.seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      flags.metrics_out = next("--metrics-out");
    } else if (std::strcmp(argv[i], "--move") == 0) {
      const std::string spec = next("--move");
      const size_t eq = spec.rfind('=');
      IMDIFF_CHECK(eq != std::string::npos && eq > 0)
          << "--move wants TENANT=SHARD, got" << spec;
      flags.moves.emplace_back(spec.substr(0, eq),
                               std::atoll(spec.c_str() + eq + 1));
    } else if (std::strcmp(argv[i], "--crash") == 0) {
      flags.crash_shard = std::atoll(next("--crash"));
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      flags.shutdown = true;
    } else {
      IMDIFF_CHECK(false) << "unknown flag" << argv[i];
    }
  }
  IMDIFF_CHECK_GE(flags.shards, 1) << "--shards is required";
  return flags;
}

int Main(int argc, char** argv) {
  const RouterFlags flags = ParseFlags(argc, argv);

  serve::RouterOptions options;
  options.seed = flags.seed;
  for (int64_t s = 0; s < flags.shards; ++s) {
    serve::ShardSpec spec;
    spec.id = s;
    char name[64];
    std::snprintf(name, sizeof(name), "/shard-%02" PRId64 ".sock", s);
    spec.socket_path = flags.socket_dir + name;
    options.shards.push_back(std::move(spec));
  }

  serve::ShardRouter router(options);
  if (!router.Connect()) {
    IMDIFF_LOG(Error) << "connect failed: " << router.error();
    return 1;
  }

  int exit_code = 0;
  const std::vector<int64_t> alive = router.AliveShards();
  const std::vector<net::HealthResultMsg> health = router.Health();
  std::printf("shard  pid      accepted  shed  resident  stashed\n");
  for (size_t i = 0; i < health.size() && i < alive.size(); ++i) {
    std::printf("%-5" PRId64 "  %-7" PRId64 "  %-8" PRId64 "  %-4" PRId64
                "  %-8" PRId64 "  %" PRId64 "\n",
                alive[i], health[i].pid, health[i].accepted, health[i].shed,
                health[i].resident_sessions, health[i].stashed_sessions);
  }
  if (health.size() != static_cast<size_t>(flags.shards)) {
    IMDIFF_LOG(Error) << "health: " << health.size() << " of " << flags.shards
                      << " shards responded";
    exit_code = 1;
  }

  for (const auto& [tenant, shard] : flags.moves) {
    if (router.MoveTenant(tenant, shard)) {
      std::printf("move: %s -> shard %" PRId64 "\n", tenant.c_str(), shard);
    } else {
      IMDIFF_LOG(Error) << "move failed: " << tenant << " -> shard " << shard;
      exit_code = 1;
    }
  }

  if (flags.crash_shard >= 0) {
    router.CrashShard(flags.crash_shard);
    std::printf("crash: shard %" PRId64 " killed, %" PRId64
                " shards remain\n",
                flags.crash_shard, router.alive_shards());
  }

  if (!flags.metrics_out.empty()) {
    std::ofstream out(flags.metrics_out);
    out << router.MergedMetricsJson();
    out.flush();
    if (out.good()) {
      IMDIFF_LOG(Info) << "merged metrics written to " << flags.metrics_out;
    } else {
      IMDIFF_LOG(Error) << "failed to write merged metrics to "
                        << flags.metrics_out;
      exit_code = 1;
    }
  }

  if (flags.shutdown) {
    router.ShutdownAll();
    std::printf("shutdown: all shards stopped\n");
  }
  return exit_code;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
