// Traffic-replay load harness for the serving layer (DESIGN.md §11).
//
// Simulated microservice-latency streams (the Table 7 generator, one
// realization per tenant) are replayed as N interleaved tenants through a
// StreamServer: bounded ingest queues -> sharded workers -> per-tenant
// sessions -> cross-session micro-batching. The harness then replays every
// tenant serially (fresh per-block scoring, no batching, no window cache)
// and checks that the served score streams are BITWISE identical to the
// serial ones, and reports the aggregate throughput ratio — the speedup
// cross-session batching + window-score reuse buys at equal results.
//
// Usage: serve_replay [--tenants N] [--samples L] [--block B] [--context C]
//   [--flush-ms F] [--batch-windows W] [--queue Q] [--workers N]
//   [--max-resident S] [--max-stashed S] [--train L] [--epochs E]
//   [--model PATH] [--no-compare-serial] [--seed S] [--metrics-out PATH]
//   [--faults SPEC] [--fault-seed S] [--deadline-ms D] [--scores-out PATH]
//   [--force-degrade L]
//   [--zipf EXP] [--total-samples N] [--missing R] [--gaps R] [--drift R]
//   [--shifts R] [--season A] [--burst-min N] [--burst-tail T]
//   [--drain-every N]
//
// --zipf EXP switches to load-generator mode (DESIGN.md §15): --tenants
// tenants (10k+ works) drawing Zipf(EXP)-distributed traffic in heavy-tailed
// bursts until --total-samples is spent, each tenant streaming an "ugly"
// series (--missing element dropouts, --gaps outage gaps, --drift slow drift,
// --shifts regime jumps, --season load envelope; data/ugly_stream.h). The
// report adds per-tenant latency percentile spreads, the cache hit rate,
// session/stash churn, and peak RSS. Two runs with identical flags produce
// bitwise-identical --scores-out dumps when --workers 1 and flushes land only
// at drain points (large --flush-ms and --batch-windows) — eviction order is
// deterministic exactly when block completion is.
//
// --model PATH warm-loads the checkpoint when it exists (skipping training)
// and writes it after training otherwise, so repeated runs exercise the
// registry's warm-load path.
//
// Chaos mode (DESIGN.md §13): --faults takes an IMDIFF_FAULTS spec
// ("arena.alloc:0.02,session.rehydrate:0.3,..."), --fault-seed pins the
// injection sequence, and --deadline-ms arms the degradation ladder. The
// serial bitwise comparison is skipped (with a printed reason) when faults
// degraded blocks or dropped session state — the chaos CI instead diffs
// --scores-out dumps (hex-exact score streams + fault counters) between two
// identical runs to prove fault handling is deterministic.
//
// --force-degrade L pins every block to degradation level L (bypassing the
// deadline policy), so two runs that differ only in execution backend — e.g.
// IMDIFF_GRAPH=0 vs 1 — produce comparable --scores-out dumps at a fixed
// level instead of coupling level choice to wall-clock speed.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/imdiffusion.h"
#include "data/benchmarks.h"
#include "serve/replay.h"
#include "utils/fault.h"
#include "utils/logging.h"
#include "utils/metrics.h"
#include "utils/stopwatch.h"

namespace imdiff {
namespace {

struct ReplayFlags {
  int64_t tenants = 8;
  int64_t samples = 800;   // test samples per tenant
  int64_t block = 100;
  // Two blocks of history: each ready block spans three windows, two of
  // which overlap earlier blocks and hit the window-score cache.
  int64_t context = 200;
  double flush_ms = 10.0;
  int64_t batch_windows = 64;
  int64_t queue = 4096;
  int workers = 2;
  int64_t max_resident = 64;
  int64_t train = 1600;
  int epochs = -1;  // <0: keep the fast-profile default
  std::string model_path;
  bool compare_serial = true;
  uint64_t seed = 42;
  std::string metrics_out;
  std::string faults;       // IMDIFF_FAULTS-style spec; empty = no injection
  uint64_t fault_seed = 0;  // base seed for fault triggers and backoff jitter
  double deadline_ms = 0.0;
  int force_degrade = -1;  // >= 0 pins every block's degradation level
  std::string scores_out;
  int64_t max_stashed = 1024;
  // Load-generator mode (> 0 enables): Zipf tenant popularity exponent.
  double zipf = 0.0;
  int64_t total_samples = 0;  // 0: defaults to tenants * samples
  double missing = 0.0;
  double gaps = 0.0;
  double drift = 0.0;
  double shifts = 0.0;
  double season = 0.0;
  int64_t burst_min = 4;
  double burst_tail = 1.2;
  int64_t drain_every = 4096;
};

ReplayFlags ParseFlags(int argc, char** argv) {
  ReplayFlags flags;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) {
      IMDIFF_CHECK(i + 1 < argc) << flag << "needs a value";
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--tenants") == 0) {
      flags.tenants = std::atoll(next("--tenants"));
    } else if (std::strcmp(argv[i], "--samples") == 0) {
      flags.samples = std::atoll(next("--samples"));
    } else if (std::strcmp(argv[i], "--block") == 0) {
      flags.block = std::atoll(next("--block"));
    } else if (std::strcmp(argv[i], "--context") == 0) {
      flags.context = std::atoll(next("--context"));
    } else if (std::strcmp(argv[i], "--flush-ms") == 0) {
      flags.flush_ms = std::atof(next("--flush-ms"));
    } else if (std::strcmp(argv[i], "--batch-windows") == 0) {
      flags.batch_windows = std::atoll(next("--batch-windows"));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      flags.queue = std::atoll(next("--queue"));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      flags.workers = std::atoi(next("--workers"));
    } else if (std::strcmp(argv[i], "--max-resident") == 0) {
      flags.max_resident = std::atoll(next("--max-resident"));
    } else if (std::strcmp(argv[i], "--train") == 0) {
      flags.train = std::atoll(next("--train"));
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      flags.epochs = std::atoi(next("--epochs"));
    } else if (std::strcmp(argv[i], "--model") == 0) {
      flags.model_path = next("--model");
    } else if (std::strcmp(argv[i], "--no-compare-serial") == 0) {
      flags.compare_serial = false;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      flags.seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      flags.metrics_out = next("--metrics-out");
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      flags.faults = next("--faults");
    } else if (std::strcmp(argv[i], "--fault-seed") == 0) {
      flags.fault_seed = static_cast<uint64_t>(std::atoll(next("--fault-seed")));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      flags.deadline_ms = std::atof(next("--deadline-ms"));
    } else if (std::strcmp(argv[i], "--force-degrade") == 0) {
      flags.force_degrade = std::atoi(next("--force-degrade"));
    } else if (std::strcmp(argv[i], "--scores-out") == 0) {
      flags.scores_out = next("--scores-out");
    } else if (std::strcmp(argv[i], "--max-stashed") == 0) {
      flags.max_stashed = std::atoll(next("--max-stashed"));
    } else if (std::strcmp(argv[i], "--zipf") == 0) {
      flags.zipf = std::atof(next("--zipf"));
    } else if (std::strcmp(argv[i], "--total-samples") == 0) {
      flags.total_samples = std::atoll(next("--total-samples"));
    } else if (std::strcmp(argv[i], "--missing") == 0) {
      flags.missing = std::atof(next("--missing"));
    } else if (std::strcmp(argv[i], "--gaps") == 0) {
      flags.gaps = std::atof(next("--gaps"));
    } else if (std::strcmp(argv[i], "--drift") == 0) {
      flags.drift = std::atof(next("--drift"));
    } else if (std::strcmp(argv[i], "--shifts") == 0) {
      flags.shifts = std::atof(next("--shifts"));
    } else if (std::strcmp(argv[i], "--season") == 0) {
      flags.season = std::atof(next("--season"));
    } else if (std::strcmp(argv[i], "--burst-min") == 0) {
      flags.burst_min = std::atoll(next("--burst-min"));
    } else if (std::strcmp(argv[i], "--burst-tail") == 0) {
      flags.burst_tail = std::atof(next("--burst-tail"));
    } else if (std::strcmp(argv[i], "--drain-every") == 0) {
      flags.drain_every = std::atoll(next("--drain-every"));
    } else {
      IMDIFF_CHECK(false) << "unknown flag" << argv[i];
    }
  }
  IMDIFF_CHECK_GE(flags.tenants, 1);
  IMDIFF_CHECK_GT(flags.samples, 0);
  return flags;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

// Load-generator mode: Zipf tenants, heavy-tailed bursts, ugly streams.
int RunZipfLoad(const ReplayFlags& flags,
                std::shared_ptr<const serve::ModelEntry> model,
                const serve::StreamServer::Options& options) {
  serve::LoadConfig load;
  load.num_tenants = flags.tenants;
  load.total_samples = flags.total_samples > 0
                           ? flags.total_samples
                           : flags.tenants * flags.samples;
  load.seed = flags.seed;
  load.zipf_exponent = flags.zipf;
  load.burst_min = flags.burst_min;
  load.burst_tail = flags.burst_tail;
  load.drain_every = flags.drain_every;
  load.stream.missing_rate = flags.missing;
  load.stream.gap_rate = flags.gaps;
  load.stream.drift_rate = static_cast<float>(flags.drift);
  load.stream.shift_rate = flags.shifts;
  load.stream.season_amplitude = static_cast<float>(flags.season);
  load.collect_scores = !flags.scores_out.empty();

  std::printf("load: %" PRId64 " tenants, %" PRId64
              " samples, zipf=%.2f bursts=[%" PRId64
              ", tail %.2f] missing=%.3f gaps=%.3f drift=%.4f shifts=%.4f "
              "(max_resident=%" PRId64 " max_stashed=%" PRId64
              " drain_every=%" PRId64 " workers=%d)\n",
              load.num_tenants, load.total_samples, load.zipf_exponent,
              load.burst_min, load.burst_tail, flags.missing, flags.gaps,
              flags.drift, flags.shifts, flags.max_resident, flags.max_stashed,
              load.drain_every, flags.workers);
  const serve::LoadStats stats = serve::ReplayLoad(std::move(model), load, options);

  std::printf("load: %" PRId64 " active tenants, %.2fs, %.1f points/s, %" PRId64
              " alerts (%" PRId64 " degraded), %" PRId64 " rejected submits, "
              "%" PRId64 " values carry-forward filled\n",
              stats.tenants, stats.seconds, stats.points_per_second,
              stats.alerts, stats.degraded_alerts, stats.rejected,
              stats.missing_filled);
  std::printf("tenant latency: p50 across tenants p50=%.1fms p90=%.1fms "
              "p99=%.1fms max=%.1fms | p99 across tenants p50=%.1fms "
              "p90=%.1fms p99=%.1fms max=%.1fms\n",
              stats.tenant_p50.p50 * 1e3, stats.tenant_p50.p90 * 1e3,
              stats.tenant_p50.p99 * 1e3, stats.tenant_p50.max * 1e3,
              stats.tenant_p99.p50 * 1e3, stats.tenant_p99.p90 * 1e3,
              stats.tenant_p99.p99 * 1e3, stats.tenant_p99.max * 1e3);
  std::printf("cache: %" PRId64 " hits / %" PRId64
              " misses (hit rate %.1f%%)\n",
              stats.cache_hits, stats.cache_misses,
              stats.cache_hit_rate * 100.0);
  std::printf("churn: %" PRId64 " sessions evicted, %" PRId64
              " rehydrated, %" PRId64 " rehydrate failures, %" PRId64
              " stashes dropped | peak rss %" PRId64 " KB\n",
              stats.sessions_evicted, stats.sessions_rehydrated,
              stats.rehydrate_failures, stats.stash_evictions,
              stats.peak_rss_kb);
  MetricsRegistry::Global()
      .GetGauge("process.peak_rss_kb")
      ->Set(static_cast<double>(stats.peak_rss_kb));

  int exit_code = 0;
  if (!flags.scores_out.empty()) {
    // Same hex-exact format as classic mode: one "tenant score..." line per
    // tenant plus the counters whose drift would explain a mismatch. Two
    // same-flag runs must produce byte-identical files (--workers 1 with
    // drain-point-only flushes).
    std::ofstream out(flags.scores_out);
    for (const auto& [tenant, scores] : stats.scores) {
      out << tenant;
      char buf[40];
      for (float s : scores) {
        std::snprintf(buf, sizeof(buf), " %a", static_cast<double>(s));
        out << buf;
      }
      out << "\n";
    }
    out << "serve.degraded_blocks "
        << MetricsRegistry::Global().GetCounter("serve.degraded_blocks")->value()
        << "\n";
    out << "serve.stash_evictions " << stats.stash_evictions << "\n";
    out << "serve.sessions_evicted " << stats.sessions_evicted << "\n";
    out.flush();
    if (out.good()) {
      IMDIFF_LOG(Info) << "score dump written to " << flags.scores_out;
    } else {
      IMDIFF_LOG(Error) << "failed to write score dump to "
                        << flags.scores_out;
      exit_code = 1;
    }
  }
  if (!flags.metrics_out.empty()) {
    if (WriteMetricsJson(flags.metrics_out)) {
      IMDIFF_LOG(Info) << "metrics snapshot written to " << flags.metrics_out;
    } else {
      IMDIFF_LOG(Error) << "failed to write metrics snapshot to "
                        << flags.metrics_out;
      exit_code = 1;
    }
  }
  return exit_code;
}

int Main(int argc, char** argv) {
  const ReplayFlags flags = ParseFlags(argc, argv);

  // Fail fast on unwritable output paths — a long replay must not end with
  // its results unrecordable.
  IMDIFF_CHECK(flags.metrics_out.empty() || ProbeWritable(flags.metrics_out))
      << "--metrics-out path is not writable:" << flags.metrics_out;
  IMDIFF_CHECK(flags.scores_out.empty() || ProbeWritable(flags.scores_out))
      << "--scores-out path is not writable:" << flags.scores_out;

  // Arm fault injection before any faultable work (the warm-load below is an
  // injection point). The spec mirrors IMDIFF_FAULTS and overrides it.
  if (!flags.faults.empty()) {
    FaultRegistry::Global().Configure(flags.faults, flags.fault_seed);
    std::printf("faults: armed \"%s\" (seed %" PRIu64 ")\n",
                flags.faults.c_str(), flags.fault_seed);
  }

  // Shared fitted model: one training history (all tenants run the same
  // service fleet), published once, shared read-only by every session.
  const MtsDataset train_set = MakeMicroserviceLatencyDataset(
      flags.seed, /*num_services=*/6, /*train_length=*/flags.train,
      /*test_length=*/1);
  const MinMaxStats stats = FitMinMax(train_set.train);
  ImDiffusionConfig config = FastImDiffusionConfig();
  config.seed = flags.seed;
  if (flags.epochs >= 0) config.epochs = flags.epochs;

  serve::ModelRegistry registry;
  const int64_t k = train_set.num_features();
  const bool warm = !flags.model_path.empty() && FileExists(flags.model_path);
  bool published = false;
  if (warm) {
    const int64_t version = registry.PublishFromFile(
        "latency", config, flags.model_path, k, stats);
    if (version > 0) {
      published = true;
      std::printf("model: warm-loaded %s (version %" PRId64 ")\n",
                  flags.model_path.c_str(), version);
    } else {
      // Load failed past every retry and there is no previous version to
      // fall back to — degrade to training a fresh model instead of dying.
      IMDIFF_LOG(Warning) << "checkpoint load failed; training from scratch: "
                          << flags.model_path;
    }
  }
  if (!published) {
    auto detector = std::make_shared<ImDiffusionDetector>(config);
    Stopwatch fit_timer;
    detector->Fit(ApplyMinMax(train_set.train, stats));
    std::printf("model: fitted in %.1fs\n", fit_timer.ElapsedSeconds());
    if (!flags.model_path.empty()) {
      if (serve::SaveModelWithRetry(*detector, flags.model_path)) {
        std::printf("model: checkpoint written to %s\n",
                    flags.model_path.c_str());
      } else {
        IMDIFF_LOG(Warning) << "checkpoint save failed; continuing with the "
                               "in-memory model";
      }
    }
    registry.Publish("latency", std::move(detector), stats);
  }
  std::shared_ptr<const serve::ModelEntry> model = registry.Acquire("latency");
  IMDIFF_CHECK(model != nullptr);

  // One stream realization per tenant (classic mode only: load-generator
  // streams are scheduled and generated inside ReplayLoad).
  std::vector<serve::TenantStream> streams;
  if (flags.zipf <= 0.0) {
    for (int64_t t = 0; t < flags.tenants; ++t) {
      serve::TenantStream stream;
      char name[32];
      std::snprintf(name, sizeof(name), "tenant-%02" PRId64, t);
      stream.tenant = name;
      stream.samples = MakeMicroserviceLatencyDataset(
                           flags.seed + 1 + static_cast<uint64_t>(t),
                           /*num_services=*/6, /*train_length=*/1,
                           /*test_length=*/flags.samples)
                           .test;
      streams.push_back(std::move(stream));
    }
  }

  serve::StreamServer::Options options;
  options.num_workers = flags.workers;
  options.queue_capacity = flags.queue;
  options.session.online.block = flags.block;
  options.session.online.context = flags.context;
  options.session.max_resident = flags.max_resident;
  options.session.max_stashed = flags.max_stashed;
  options.session.seed_base = flags.seed;
  options.batch.max_batch_windows = flags.batch_windows;
  options.batch.flush_window_seconds = flags.flush_ms / 1000.0;
  options.deadline_seconds = flags.deadline_ms / 1000.0;
  options.force_degrade_level = flags.force_degrade;

  if (flags.zipf > 0.0) return RunZipfLoad(flags, std::move(model), options);

  std::printf(
      "replay: %" PRId64 " tenants x %" PRId64
      " samples (block=%" PRId64 " context=%" PRId64 " flush=%.1fms "
      "workers=%d queue=%" PRId64 " max_resident=%" PRId64 ")\n",
      flags.tenants, flags.samples, flags.block, flags.context, flags.flush_ms,
      flags.workers, flags.queue, flags.max_resident);
  const serve::ReplayStats served =
      serve::ReplayThroughServer(model, streams, options);

  MetricsRegistry& metrics = MetricsRegistry::Global();
  const int64_t cache_hits = metrics.GetCounter("serve.cache_hits")->value();
  const int64_t cache_misses =
      metrics.GetCounter("serve.cache_misses")->value();
  const int64_t dropped =
      metrics.GetCounter("serve.requests_dropped")->value();
  std::printf(
      "served: %.2fs, %.1f points/s, %" PRId64 " alerts, %" PRId64
      " rejected submits, %" PRId64 " batches (%" PRId64
      " windows scored, %" PRId64 " cache hits / %" PRId64 " misses)\n",
      served.seconds, served.points_per_second, served.alerts, served.rejected,
      metrics.GetCounter("serve.batches")->value(),
      metrics.GetCounter("serve.batched_windows")->value(), cache_hits,
      cache_misses);
  Histogram* queue_wait = metrics.GetHistogram("serve.queue_wait_seconds");
  Histogram* alert_latency =
      metrics.GetHistogram("serve.alert_latency_seconds");
  std::printf(
      "latency: queue_wait p50=%.1fms p90=%.1fms p99=%.1fms | "
      "ready->alert p50=%.1fms p90=%.1fms p99=%.1fms | drops=%" PRId64 "\n",
      queue_wait->Percentile(0.5) * 1e3, queue_wait->Percentile(0.9) * 1e3,
      queue_wait->Percentile(0.99) * 1e3, alert_latency->Percentile(0.5) * 1e3,
      alert_latency->Percentile(0.9) * 1e3,
      alert_latency->Percentile(0.99) * 1e3, dropped);
  std::printf("sessions: %" PRId64 " created, %" PRId64 " evictions, %" PRId64
              " rehydrations\n",
              metrics.GetCounter("serve.sessions_created")->value(),
              metrics.GetCounter("serve.sessions_evicted")->value(),
              metrics.GetCounter("serve.sessions_rehydrated")->value());

  const int64_t degraded = metrics.GetCounter("serve.degraded_blocks")->value();
  const int64_t rehydrate_failures =
      metrics.GetCounter("serve.rehydrate_failures")->value();
  const int64_t arena_fallbacks = metrics.GetCounter("arena.fallback")->value();
  if (!flags.faults.empty() || flags.deadline_ms > 0.0) {
    std::printf("degradation: %" PRId64 " degraded blocks (%" PRId64
                " degraded alerts), %" PRId64 " arena fallbacks, %" PRId64
                " forced flushes, %" PRId64 " rehydrate failures\n",
                degraded, served.degraded_alerts, arena_fallbacks,
                metrics.GetCounter("serve.flush_timeouts")->value(),
                rehydrate_failures);
    std::printf("registry: %" PRId64 " load retries, %" PRId64
                " load fallbacks, %" PRId64 " save retries, %" PRId64
                " save failures\n",
                metrics.GetCounter("registry.load_retries")->value(),
                metrics.GetCounter("registry.load_fallbacks")->value(),
                metrics.GetCounter("registry.save_retries")->value(),
                metrics.GetCounter("registry.save_failures")->value());
  }

  int exit_code = 0;
  if (flags.compare_serial && (degraded > 0 || rehydrate_failures > 0)) {
    // Degraded blocks score a truncated chain and a dropped stash resets a
    // tenant's stream positions — either makes the full-quality serial
    // baseline the wrong reference. Determinism is checked differently in
    // chaos runs: two identical runs must produce identical --scores-out.
    std::printf("serial: comparison skipped (%" PRId64 " degraded blocks, "
                "%" PRId64 " rehydrate failures)\n",
                degraded, rehydrate_failures);
  } else if (flags.compare_serial) {
    // Serial baseline: per-tenant fresh scoring, no batching, no cache.
    Stopwatch serial_timer;
    int64_t mismatched_tenants = 0;
    for (const serve::TenantStream& stream : streams) {
      const std::vector<float> serial = serve::ReplaySerial(
          *model, options.session.online, options.session.seed_base, stream);
      const std::vector<float>& batched = served.scores.at(stream.tenant);
      if (serial != batched) {
        ++mismatched_tenants;
        IMDIFF_LOG(Error) << "score stream mismatch for " << stream.tenant;
      }
    }
    const double serial_seconds = serial_timer.ElapsedSeconds();
    const double ratio =
        served.seconds > 0.0 ? serial_seconds / served.seconds : 0.0;
    std::printf(
        "serial: %.2fs (%.1f points/s) -> aggregate speedup %.2fx, "
        "bitwise %s\n",
        serial_seconds,
        serial_seconds > 0.0 ? static_cast<double>(served.submitted) /
                                   serial_seconds
                             : 0.0,
        ratio, mismatched_tenants == 0 ? "IDENTICAL" : "MISMATCH");
    if (mismatched_tenants > 0) exit_code = 1;
  }

  if (!flags.scores_out.empty()) {
    // Hex-exact dump for cross-run bitwise comparison: one line per tenant
    // ("tenant score score ..."), then the fault-visible counters. Two runs
    // with identical flags (including --faults/--fault-seed) must produce
    // byte-identical files.
    std::ofstream out(flags.scores_out);
    for (const auto& [tenant, scores] : served.scores) {
      out << tenant;
      char buf[40];
      for (float s : scores) {
        std::snprintf(buf, sizeof(buf), " %a", static_cast<double>(s));
        out << buf;
      }
      out << "\n";
    }
    out << "serve.degraded_blocks " << degraded << "\n";
    out << "arena.fallback " << arena_fallbacks << "\n";
    out.flush();
    if (out.good()) {
      IMDIFF_LOG(Info) << "score dump written to " << flags.scores_out;
    } else {
      IMDIFF_LOG(Error) << "failed to write score dump to "
                        << flags.scores_out;
      exit_code = 1;
    }
  }

  if (!flags.metrics_out.empty()) {
    if (WriteMetricsJson(flags.metrics_out)) {
      IMDIFF_LOG(Info) << "metrics snapshot written to " << flags.metrics_out;
    } else {
      IMDIFF_LOG(Error) << "failed to write metrics snapshot to "
                        << flags.metrics_out;
      exit_code = 1;
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
