// Traffic-replay load harness for the serving layer (DESIGN.md §11).
//
// Simulated microservice-latency streams (the Table 7 generator, one
// realization per tenant) are replayed as N interleaved tenants through a
// StreamServer: bounded ingest queues -> sharded workers -> per-tenant
// sessions -> cross-session micro-batching. The harness then replays every
// tenant serially (fresh per-block scoring, no batching, no window cache)
// and checks that the served score streams are BITWISE identical to the
// serial ones, and reports the aggregate throughput ratio — the speedup
// cross-session batching + window-score reuse buys at equal results.
//
// Usage: serve_replay [--tenants N] [--samples L] [--block B] [--context C]
//   [--flush-ms F] [--batch-windows W] [--queue Q] [--workers N]
//   [--max-resident S] [--max-stashed S] [--train L] [--epochs E]
//   [--model PATH] [--no-compare-serial] [--seed S] [--metrics-out PATH]
//   [--faults SPEC] [--fault-seed S] [--deadline-ms D] [--scores-out PATH]
//   [--force-degrade L] [--precision {fp32,bf16,int8}]
//   [--zipf EXP] [--total-samples N] [--missing R] [--gaps R] [--drift R]
//   [--shifts R] [--season A] [--dynamics-scale F] [--dynamics-break B]
//   [--burst-min N] [--burst-tail T] [--drain-every N]
//   [--shards N] [--socket-dir D] [--worker-bin PATH] [--worker-threads T]
//   [--fail-on-shed] [--reshard-every N] [--reshard-tenants M]
//   [--refresh-every N] [--refresh-recent N] [--shadow-fraction F]
//   [--verdict-pairs P] [--refresh-psi X] [--refresh-ks X]
//   [--refresh-mean-ratio X] [--refresh-epochs N]
//
// --refresh-every N > 0 (requires --zipf) arms the continuous-refresh loop
// (DESIGN.md §18): every N accepted samples a candidate model is refitted on
// the sessions' recent-sample window (--refresh-recent per-tenant cap),
// staged as the registry shadow, dual-scored against --shadow-fraction of
// full-quality traffic until --verdict-pairs paired blocks complete, and
// promoted or rolled back on the drift verdict (--refresh-psi / --refresh-ks
// divergence gates, --refresh-mean-ratio improvement gate). The whole loop
// is a pure function of the stream and the seeds: with --workers 1 and
// drain-point-only flushes, two identical runs produce bitwise-identical
// promotion logs, which --scores-out records as hex "refresh ..." lines —
// the refresh-drift CI job cmp's them. In sharded mode the flags are
// forwarded to every worker and each shard refreshes independently.
//
// --shards N (requires --zipf) switches to multi-process sharded serving
// (DESIGN.md §16): N imdiff_worker processes are spawned on unix-domain
// sockets under --socket-dir, tenants are placed on them by consistent
// hashing, and the identical deterministic workload is driven through a
// ShardRouter. The --scores-out dump's tenant lines are bitwise identical to
// the single-process run's, and the whole file is identical across shard
// counts and across identically-seeded runs. --reshard-every R moves
// --reshard-tenants tenants to the next shard after every R-th drain barrier
// (live resharding); --faults router.shard_down:#K kills a live shard
// mid-run and must lose nothing. --fail-on-shed exits nonzero when any
// submission was shed or any re-delivered block mismatched its first
// delivery bitwise.
//
// --zipf EXP switches to load-generator mode (DESIGN.md §15): --tenants
// tenants (10k+ works) drawing Zipf(EXP)-distributed traffic in heavy-tailed
// bursts until --total-samples is spent, each tenant streaming an "ugly"
// series (--missing element dropouts, --gaps outage gaps, --drift slow drift,
// --shifts regime jumps, --season load envelope; data/ugly_stream.h). The
// report adds per-tenant latency percentile spreads, the cache hit rate,
// session/stash churn, and peak RSS. Two runs with identical flags produce
// bitwise-identical --scores-out dumps when --workers 1 and flushes land only
// at drain points (large --flush-ms and --batch-windows) — eviction order is
// deterministic exactly when block completion is.
//
// --model PATH warm-loads the checkpoint when it exists (skipping training)
// and writes it after training otherwise, so repeated runs exercise the
// registry's warm-load path.
//
// Chaos mode (DESIGN.md §13): --faults takes an IMDIFF_FAULTS spec
// ("arena.alloc:0.02,session.rehydrate:0.3,..."), --fault-seed pins the
// injection sequence, and --deadline-ms arms the degradation ladder. The
// serial bitwise comparison is skipped (with a printed reason) when faults
// degraded blocks or dropped session state — the chaos CI instead diffs
// --scores-out dumps (hex-exact score streams + fault counters) between two
// identical runs to prove fault handling is deterministic.
//
// --force-degrade L pins every block to degradation level L (bypassing the
// deadline policy), so two runs that differ only in execution backend — e.g.
// IMDIFF_GRAPH=0 vs 1 — produce comparable --scores-out dumps at a fixed
// level instead of coupling level choice to wall-clock speed.
//
// --precision P pins every block to scoring precision P (fp32/bf16/int8),
// the same knob for the ladder's precision axis (DESIGN.md §17). The serial
// baseline is scored at the pinned rung too, so the bitwise comparison still
// runs: same-precision scoring is deterministic end to end. In sharded mode
// the flag is forwarded to every worker.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/imdiffusion.h"
#include "data/benchmarks.h"
#include "net/socket.h"
#include "serve/replay.h"
#include "serve/router.h"
#include "serve/worker.h"
#include "utils/fault.h"
#include "utils/logging.h"
#include "utils/metrics.h"
#include "utils/stopwatch.h"

namespace imdiff {
namespace {

struct ReplayFlags {
  int64_t tenants = 8;
  int64_t samples = 800;   // test samples per tenant
  int64_t block = 100;
  // Two blocks of history: each ready block spans three windows, two of
  // which overlap earlier blocks and hit the window-score cache.
  int64_t context = 200;
  double flush_ms = 10.0;
  int64_t batch_windows = 64;
  int64_t queue = 4096;
  int workers = 2;
  int64_t max_resident = 64;
  int64_t train = 1600;
  int epochs = -1;  // <0: keep the fast-profile default
  std::string model_path;
  bool compare_serial = true;
  uint64_t seed = 42;
  std::string metrics_out;
  std::string faults;       // IMDIFF_FAULTS-style spec; empty = no injection
  uint64_t fault_seed = 0;  // base seed for fault triggers and backoff jitter
  double deadline_ms = 0.0;
  int force_degrade = -1;  // >= 0 pins every block's degradation level
  int force_precision = -1;  // >= 0 pins every block's scoring precision
  std::string scores_out;
  int64_t max_stashed = 1024;
  // Load-generator mode (> 0 enables): Zipf tenant popularity exponent.
  double zipf = 0.0;
  int64_t total_samples = 0;  // 0: defaults to tenants * samples
  double missing = 0.0;
  double gaps = 0.0;
  double drift = 0.0;
  double shifts = 0.0;
  double season = 0.0;
  // Dynamics break (concept drift in the frequency content): period scale
  // applied from --dynamics-break (stream fraction) on. 1.0 disables.
  double dynamics_scale = 1.0;
  double dynamics_break = 0.25;
  int64_t burst_min = 4;
  double burst_tail = 1.2;
  int64_t drain_every = 4096;
  // Sharded mode (> 0 enables; requires --zipf): number of worker processes.
  int64_t shards = 0;
  std::string socket_dir;   // empty: /tmp/imdiff-shards-<pid>
  std::string worker_bin;   // empty: imdiff_worker next to this binary
  int worker_threads = 0;   // ingest threads per worker; 0: --workers
  bool fail_on_shed = false;
  int64_t reshard_every = 0;  // move tenants after every Nth drain barrier
  int64_t reshard_tenants = 1;
  // Continuous refresh (> 0 enables; requires --zipf): fit cadence in
  // accepted samples, per-tenant recent-sample cap, shadow selection
  // fraction, verdict pair count, and the drift-verdict gates.
  int64_t refresh_every = 0;
  int64_t refresh_recent = 256;
  double shadow_fraction = 0.25;
  int64_t verdict_pairs = 12;
  double refresh_psi = 0.25;
  double refresh_ks = 0.5;
  double refresh_mean_ratio = 0.8;
  int64_t refresh_epochs = 0;  // <= 0 inherits the live model's epochs
};

ReplayFlags ParseFlags(int argc, char** argv) {
  ReplayFlags flags;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) {
      IMDIFF_CHECK(i + 1 < argc) << flag << "needs a value";
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--tenants") == 0) {
      flags.tenants = std::atoll(next("--tenants"));
    } else if (std::strcmp(argv[i], "--samples") == 0) {
      flags.samples = std::atoll(next("--samples"));
    } else if (std::strcmp(argv[i], "--block") == 0) {
      flags.block = std::atoll(next("--block"));
    } else if (std::strcmp(argv[i], "--context") == 0) {
      flags.context = std::atoll(next("--context"));
    } else if (std::strcmp(argv[i], "--flush-ms") == 0) {
      flags.flush_ms = std::atof(next("--flush-ms"));
    } else if (std::strcmp(argv[i], "--batch-windows") == 0) {
      flags.batch_windows = std::atoll(next("--batch-windows"));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      flags.queue = std::atoll(next("--queue"));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      flags.workers = std::atoi(next("--workers"));
    } else if (std::strcmp(argv[i], "--max-resident") == 0) {
      flags.max_resident = std::atoll(next("--max-resident"));
    } else if (std::strcmp(argv[i], "--train") == 0) {
      flags.train = std::atoll(next("--train"));
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      flags.epochs = std::atoi(next("--epochs"));
    } else if (std::strcmp(argv[i], "--model") == 0) {
      flags.model_path = next("--model");
    } else if (std::strcmp(argv[i], "--no-compare-serial") == 0) {
      flags.compare_serial = false;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      flags.seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      flags.metrics_out = next("--metrics-out");
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      flags.faults = next("--faults");
    } else if (std::strcmp(argv[i], "--fault-seed") == 0) {
      flags.fault_seed = static_cast<uint64_t>(std::atoll(next("--fault-seed")));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      flags.deadline_ms = std::atof(next("--deadline-ms"));
    } else if (std::strcmp(argv[i], "--force-degrade") == 0) {
      flags.force_degrade = std::atoi(next("--force-degrade"));
    } else if (std::strcmp(argv[i], "--precision") == 0) {
      Precision p;
      const char* name = next("--precision");
      IMDIFF_CHECK(ParsePrecision(name, &p))
          << "--precision must be fp32, bf16, or int8, got" << name;
      flags.force_precision = static_cast<int>(p);
    } else if (std::strcmp(argv[i], "--scores-out") == 0) {
      flags.scores_out = next("--scores-out");
    } else if (std::strcmp(argv[i], "--max-stashed") == 0) {
      flags.max_stashed = std::atoll(next("--max-stashed"));
    } else if (std::strcmp(argv[i], "--zipf") == 0) {
      flags.zipf = std::atof(next("--zipf"));
    } else if (std::strcmp(argv[i], "--total-samples") == 0) {
      flags.total_samples = std::atoll(next("--total-samples"));
    } else if (std::strcmp(argv[i], "--missing") == 0) {
      flags.missing = std::atof(next("--missing"));
    } else if (std::strcmp(argv[i], "--gaps") == 0) {
      flags.gaps = std::atof(next("--gaps"));
    } else if (std::strcmp(argv[i], "--drift") == 0) {
      flags.drift = std::atof(next("--drift"));
    } else if (std::strcmp(argv[i], "--shifts") == 0) {
      flags.shifts = std::atof(next("--shifts"));
    } else if (std::strcmp(argv[i], "--season") == 0) {
      flags.season = std::atof(next("--season"));
    } else if (std::strcmp(argv[i], "--dynamics-scale") == 0) {
      flags.dynamics_scale = std::atof(next("--dynamics-scale"));
    } else if (std::strcmp(argv[i], "--dynamics-break") == 0) {
      flags.dynamics_break = std::atof(next("--dynamics-break"));
    } else if (std::strcmp(argv[i], "--burst-min") == 0) {
      flags.burst_min = std::atoll(next("--burst-min"));
    } else if (std::strcmp(argv[i], "--burst-tail") == 0) {
      flags.burst_tail = std::atof(next("--burst-tail"));
    } else if (std::strcmp(argv[i], "--drain-every") == 0) {
      flags.drain_every = std::atoll(next("--drain-every"));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      flags.shards = std::atoll(next("--shards"));
    } else if (std::strcmp(argv[i], "--socket-dir") == 0) {
      flags.socket_dir = next("--socket-dir");
    } else if (std::strcmp(argv[i], "--worker-bin") == 0) {
      flags.worker_bin = next("--worker-bin");
    } else if (std::strcmp(argv[i], "--worker-threads") == 0) {
      flags.worker_threads = std::atoi(next("--worker-threads"));
    } else if (std::strcmp(argv[i], "--fail-on-shed") == 0) {
      flags.fail_on_shed = true;
    } else if (std::strcmp(argv[i], "--reshard-every") == 0) {
      flags.reshard_every = std::atoll(next("--reshard-every"));
    } else if (std::strcmp(argv[i], "--reshard-tenants") == 0) {
      flags.reshard_tenants = std::atoll(next("--reshard-tenants"));
    } else if (std::strcmp(argv[i], "--refresh-every") == 0) {
      flags.refresh_every = std::atoll(next("--refresh-every"));
    } else if (std::strcmp(argv[i], "--refresh-recent") == 0) {
      flags.refresh_recent = std::atoll(next("--refresh-recent"));
    } else if (std::strcmp(argv[i], "--shadow-fraction") == 0) {
      flags.shadow_fraction = std::atof(next("--shadow-fraction"));
    } else if (std::strcmp(argv[i], "--verdict-pairs") == 0) {
      flags.verdict_pairs = std::atoll(next("--verdict-pairs"));
    } else if (std::strcmp(argv[i], "--refresh-psi") == 0) {
      flags.refresh_psi = std::atof(next("--refresh-psi"));
    } else if (std::strcmp(argv[i], "--refresh-ks") == 0) {
      flags.refresh_ks = std::atof(next("--refresh-ks"));
    } else if (std::strcmp(argv[i], "--refresh-mean-ratio") == 0) {
      flags.refresh_mean_ratio = std::atof(next("--refresh-mean-ratio"));
    } else if (std::strcmp(argv[i], "--refresh-epochs") == 0) {
      flags.refresh_epochs = std::atoll(next("--refresh-epochs"));
    } else {
      IMDIFF_CHECK(false) << "unknown flag" << argv[i];
    }
  }
  IMDIFF_CHECK_GE(flags.tenants, 1);
  IMDIFF_CHECK_GT(flags.samples, 0);
  return flags;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

// Place the generic synthetic tenant channels into the middle of the model's
// training band (see UglyStreamConfig::channel_offset): sessions normalize
// tenant traffic with the model's min-max statistics, so a stream generated
// at the synthetic base's unit scale would clamp wholesale to the
// normalization boundary and the scored content would be constant. The clean
// base emits roughly +/-2-scale series; gain = range/8 keeps typical values
// inside the middle half of [min, max] with headroom for drift ramps and
// regime shifts to move the data before the clamp bites.
void RebaseStreamToStats(const MinMaxStats& stats, UglyStreamConfig* stream) {
  const size_t k = stats.min.size();
  stream->channel_offset.resize(k);
  stream->channel_gain.resize(k);
  for (size_t j = 0; j < k; ++j) {
    const float range = stats.max[j] - stats.min[j];
    stream->channel_offset[j] = 0.5f * (stats.min[j] + stats.max[j]);
    stream->channel_gain[j] = range / 8.0f;
  }
}

// One LoadConfig for every consumer of the plan (single-process load,
// sharded load, and the training-corpus builder below): the plan is a pure
// function of this config, so all three must construct it identically.
serve::LoadConfig BuildLoadConfigFromFlags(const ReplayFlags& flags,
                                           const MinMaxStats& stats) {
  serve::LoadConfig load;
  load.num_tenants = flags.tenants;
  load.total_samples = flags.total_samples > 0
                           ? flags.total_samples
                           : flags.tenants * flags.samples;
  load.seed = flags.seed;
  load.zipf_exponent = flags.zipf;
  load.burst_min = flags.burst_min;
  load.burst_tail = flags.burst_tail;
  load.drain_every = flags.drain_every;
  load.stream.missing_rate = flags.missing;
  load.stream.gap_rate = flags.gaps;
  load.stream.drift_rate = static_cast<float>(flags.drift);
  load.stream.shift_rate = flags.shifts;
  load.stream.season_amplitude = static_cast<float>(flags.season);
  load.stream.dynamics_period_scale = static_cast<float>(flags.dynamics_scale);
  load.stream.dynamics_break = flags.dynamics_break;
  RebaseStreamToStats(stats, &load.stream);
  return load;
}

// Training corpus for the load-generator mode: the head tenants' own stream
// realizations with every distortion zeroed — "yesterday's traffic", before
// any drift arrived. MakeUglyStream draws the clean base before applying
// distortions, so a tenant's clean-config samples are bitwise the
// pre-distortion base of the stream the run will score. Training the live
// model on these makes a control (no-distortion) replay score in-sample
// traffic: the refresh loop's refit has nothing to improve and rolls back,
// and only genuine distortion-driven drift can move the promotion verdict.
std::vector<Tensor> BuildZipfTrainingSegments(const ReplayFlags& flags,
                                              const MinMaxStats& stats,
                                              int64_t num_features,
                                              int64_t min_rows) {
  serve::LoadConfig load = BuildLoadConfigFromFlags(flags, stats);
  load.stream.missing_rate = 0.0;
  load.stream.gap_rate = 0.0;
  load.stream.drift_rate = 0.0f;
  load.stream.shift_rate = 0.0;
  load.stream.season_amplitude = 0.0f;
  load.stream.dynamics_period_scale = 1.0f;
  const serve::LoadPlan plan = serve::BuildLoadPlan(load, num_features);
  std::vector<Tensor> segments;
  for (int64_t t = 0;
       t < load.num_tenants && segments.size() < 8; ++t) {
    const auto it = plan.streams.find(t);
    if (it == plan.streams.end()) continue;
    if (it->second.samples.dim(0) < min_rows) continue;
    segments.push_back(it->second.samples);
  }
  return segments;
}

// Load-generator mode: Zipf tenants, heavy-tailed bursts, ugly streams.
int RunZipfLoad(const ReplayFlags& flags,
                std::shared_ptr<const serve::ModelEntry> model,
                const serve::StreamServer::Options& options) {
  serve::LoadConfig load = BuildLoadConfigFromFlags(flags, model->stats);
  load.collect_scores = !flags.scores_out.empty();

  std::printf("load: %" PRId64 " tenants, %" PRId64
              " samples, zipf=%.2f bursts=[%" PRId64
              ", tail %.2f] missing=%.3f gaps=%.3f drift=%.4f shifts=%.4f "
              "(max_resident=%" PRId64 " max_stashed=%" PRId64
              " drain_every=%" PRId64 " workers=%d)\n",
              load.num_tenants, load.total_samples, load.zipf_exponent,
              load.burst_min, load.burst_tail, flags.missing, flags.gaps,
              flags.drift, flags.shifts, flags.max_resident, flags.max_stashed,
              load.drain_every, flags.workers);
  const serve::LoadStats stats = serve::ReplayLoad(std::move(model), load, options);

  std::printf("load: %" PRId64 " active tenants, %.2fs, %.1f points/s, %" PRId64
              " alerts (%" PRId64 " degraded, %" PRId64
              " precision-dropped), %" PRId64 " rejected submits, "
              "%" PRId64 " values carry-forward filled\n",
              stats.tenants, stats.seconds, stats.points_per_second,
              stats.alerts, stats.degraded_alerts,
              stats.precision_dropped_alerts, stats.rejected,
              stats.missing_filled);
  std::printf("tenant latency: p50 across tenants p50=%.1fms p90=%.1fms "
              "p99=%.1fms max=%.1fms | p99 across tenants p50=%.1fms "
              "p90=%.1fms p99=%.1fms max=%.1fms\n",
              stats.tenant_p50.p50 * 1e3, stats.tenant_p50.p90 * 1e3,
              stats.tenant_p50.p99 * 1e3, stats.tenant_p50.max * 1e3,
              stats.tenant_p99.p50 * 1e3, stats.tenant_p99.p90 * 1e3,
              stats.tenant_p99.p99 * 1e3, stats.tenant_p99.max * 1e3);
  std::printf("cache: %" PRId64 " hits / %" PRId64
              " misses (hit rate %.1f%%)\n",
              stats.cache_hits, stats.cache_misses,
              stats.cache_hit_rate * 100.0);
  std::printf("churn: %" PRId64 " sessions evicted, %" PRId64
              " rehydrated, %" PRId64 " rehydrate failures, %" PRId64
              " stashes dropped | peak rss %" PRId64 " KB\n",
              stats.sessions_evicted, stats.sessions_rehydrated,
              stats.rehydrate_failures, stats.stash_evictions,
              stats.peak_rss_kb);
  if (flags.refresh_every > 0) {
    MetricsRegistry& metrics = MetricsRegistry::Global();
    std::printf("refresh: %" PRId64 " fits staged, %" PRId64
                " promoted, %" PRId64 " rolled back, %" PRId64
                " fit failures, %" PRId64 " promote failures, %" PRId64
                " shadow aborts, %" PRId64 " windows too short | %" PRId64
                " shadow blocks dual-scored\n",
                metrics.GetCounter("refresh.fits")->value(),
                metrics.GetCounter("refresh.promotions")->value(),
                metrics.GetCounter("refresh.rollbacks")->value(),
                metrics.GetCounter("refresh.fit_failures")->value(),
                metrics.GetCounter("refresh.promote_failures")->value(),
                metrics.GetCounter("refresh.shadow_aborts")->value(),
                metrics.GetCounter("refresh.window_short")->value(),
                stats.shadow_blocks);
    for (const auto& event : stats.refresh_events) {
      std::printf("refresh event: %s fit=%" PRId64 " at=%" PRId64
                  " live=v%" PRId64 " shadow=v%" PRId64
                  " psi=%.3f ks=%.3f agree=%.2f means=%.4f/%.4f\n",
                  serve::RefreshTrainer::KindName(event.kind),
                  event.fit_ordinal, event.at_sample, event.live_version,
                  event.shadow_version, event.psi, event.ks, event.agreement,
                  event.live_mean, event.shadow_mean);
    }
  }
  MetricsRegistry::Global()
      .GetGauge("process.peak_rss_kb")
      ->Set(static_cast<double>(stats.peak_rss_kb));

  int exit_code = 0;
  if (!flags.scores_out.empty()) {
    // Same hex-exact format as classic mode: one "tenant score..." line per
    // tenant plus the counters whose drift would explain a mismatch. Two
    // same-flag runs must produce byte-identical files (--workers 1 with
    // drain-point-only flushes).
    std::ofstream out(flags.scores_out);
    for (const auto& [tenant, scores] : stats.scores) {
      out << tenant;
      char buf[40];
      for (float s : scores) {
        std::snprintf(buf, sizeof(buf), " %a", static_cast<double>(s));
        out << buf;
      }
      out << "\n";
    }
    out << "serve.degraded_blocks "
        << MetricsRegistry::Global().GetCounter("serve.degraded_blocks")->value()
        << "\n";
    out << "serve.precision_drops "
        << MetricsRegistry::Global().GetCounter("serve.precision_drops")->value()
        << "\n";
    out << "serve.stash_evictions " << stats.stash_evictions << "\n";
    out << "serve.sessions_evicted " << stats.sessions_evicted << "\n";
    if (flags.refresh_every > 0) {
      // Promotion-decision log in hex (%a) — bitwise-comparable across runs.
      // Two identically-flagged runs must produce identical lines: the
      // refresh-drift CI job cmp's whole files.
      MetricsRegistry& metrics = MetricsRegistry::Global();
      char buf[256];
      for (const auto& event : stats.refresh_events) {
        std::snprintf(buf, sizeof(buf),
                      " fit=%" PRId64 " at=%" PRId64 " live=%" PRId64
                      " shadow=%" PRId64,
                      event.fit_ordinal, event.at_sample, event.live_version,
                      event.shadow_version);
        out << "refresh " << serve::RefreshTrainer::KindName(event.kind)
            << buf;
        std::snprintf(buf, sizeof(buf),
                      " psi=%a ks=%a agree=%a live_mean=%a shadow_mean=%a",
                      event.psi, event.ks, event.agreement, event.live_mean,
                      event.shadow_mean);
        out << buf << "\n";
      }
      out << "serve.shadow_blocks " << stats.shadow_blocks << "\n";
      out << "refresh.fits " << metrics.GetCounter("refresh.fits")->value()
          << "\n";
      out << "refresh.promotions "
          << metrics.GetCounter("refresh.promotions")->value() << "\n";
      out << "refresh.rollbacks "
          << metrics.GetCounter("refresh.rollbacks")->value() << "\n";
      out << "refresh.fit_failures "
          << metrics.GetCounter("refresh.fit_failures")->value() << "\n";
      out << "refresh.promote_failures "
          << metrics.GetCounter("refresh.promote_failures")->value() << "\n";
      out << "refresh.shadow_aborts "
          << metrics.GetCounter("refresh.shadow_aborts")->value() << "\n";
      out << "refresh.window_short "
          << metrics.GetCounter("refresh.window_short")->value() << "\n";
    }
    out.flush();
    if (out.good()) {
      IMDIFF_LOG(Info) << "score dump written to " << flags.scores_out;
    } else {
      IMDIFF_LOG(Error) << "failed to write score dump to "
                        << flags.scores_out;
      exit_code = 1;
    }
  }
  if (!flags.metrics_out.empty()) {
    if (WriteMetricsJson(flags.metrics_out)) {
      IMDIFF_LOG(Info) << "metrics snapshot written to " << flags.metrics_out;
    } else {
      IMDIFF_LOG(Error) << "failed to write metrics snapshot to "
                        << flags.metrics_out;
      exit_code = 1;
    }
  }
  if (flags.fail_on_shed && stats.rejected > 0) {
    IMDIFF_LOG(Error) << "--fail-on-shed: " << stats.rejected
                      << " submissions were shed (retried)";
    exit_code = 1;
  }
  return exit_code;
}

// ---------------------------------------------------------------------------
// Sharded mode (DESIGN.md §16): spawn N imdiff_worker processes, drive the
// same deterministic Zipf workload through a ShardRouter.

std::string ShardSocketPath(const std::string& dir, int64_t shard) {
  char name[64];
  std::snprintf(name, sizeof(name), "/shard-%02" PRId64 ".sock", shard);
  return dir + name;
}

std::string DirName(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

// fork + execv one worker. The parent is multithreaded by now (the compute
// pool ran training), so only async-signal-safe calls may happen between
// fork and exec — argv is fully materialized beforehand and the environment
// is inherited as-is.
pid_t SpawnWorker(const std::string& worker_bin,
                  const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(worker_bin.c_str()));
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(worker_bin.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

int RunShardedLoad(const ReplayFlags& flags, const MinMaxStats& norm,
                   int64_t num_features) {
  IMDIFF_CHECK(FileExists(flags.model_path))
      << "sharded mode needs the checkpoint on disk:" << flags.model_path;

  // Worker serving options mirror this process's flags so every shard scores
  // exactly like the single-process baseline (the bitwise-parity invariant).
  const int worker_threads =
      flags.worker_threads > 0 ? flags.worker_threads : flags.workers;
  struct ShardProcess {
    int64_t id = 0;
    pid_t pid = -1;
  };
  std::vector<ShardProcess> workers;
  for (int64_t s = 0; s < flags.shards; ++s) {
    std::vector<std::string> args = {
        "--socket",        ShardSocketPath(flags.socket_dir, s),
        "--shard-id",      std::to_string(s),
        "--block",         std::to_string(flags.block),
        "--context",       std::to_string(flags.context),
        "--flush-ms",      std::to_string(flags.flush_ms),
        "--batch-windows", std::to_string(flags.batch_windows),
        "--queue",         std::to_string(flags.queue),
        "--workers",       std::to_string(worker_threads),
        "--max-resident",  std::to_string(flags.max_resident),
        "--max-stashed",   std::to_string(flags.max_stashed),
        "--seed",          std::to_string(flags.seed),
        "--deadline-ms",   std::to_string(flags.deadline_ms),
    };
    if (flags.epochs >= 0) {
      args.push_back("--epochs");
      args.push_back(std::to_string(flags.epochs));
    }
    if (flags.force_degrade >= 0) {
      args.push_back("--force-degrade");
      args.push_back(std::to_string(flags.force_degrade));
    }
    if (flags.force_precision >= 0) {
      args.push_back("--precision");
      args.push_back(
          PrecisionName(static_cast<Precision>(flags.force_precision)));
    }
    if (flags.refresh_every > 0) {
      args.push_back("--refresh-every");
      args.push_back(std::to_string(flags.refresh_every));
      args.push_back("--refresh-recent");
      args.push_back(std::to_string(flags.refresh_recent));
      args.push_back("--shadow-fraction");
      args.push_back(std::to_string(flags.shadow_fraction));
      args.push_back("--verdict-pairs");
      args.push_back(std::to_string(flags.verdict_pairs));
      args.push_back("--refresh-psi");
      args.push_back(std::to_string(flags.refresh_psi));
      args.push_back("--refresh-ks");
      args.push_back(std::to_string(flags.refresh_ks));
      args.push_back("--refresh-mean-ratio");
      args.push_back(std::to_string(flags.refresh_mean_ratio));
      args.push_back("--refresh-epochs");
      args.push_back(std::to_string(flags.refresh_epochs));
    }
    ShardProcess p;
    p.id = s;
    p.pid = SpawnWorker(flags.worker_bin, args);
    IMDIFF_CHECK(p.pid > 0) << "fork failed for shard" << s;
    workers.push_back(p);
  }
  std::printf("shards: %" PRId64 " workers spawned (dir %s, %d ingest "
              "thread%s each)\n",
              flags.shards, flags.socket_dir.c_str(), worker_threads,
              worker_threads == 1 ? "" : "s");

  int exit_code = 0;
  int64_t expected_crashes = 0;
  {
    serve::RouterOptions options;
    options.seed = flags.fault_seed;
    // Generous dial budget: it also covers the worker-spawn race at startup.
    options.reconnect.max_attempts = 10;
    options.reconnect.base_seconds = 0.01;
    for (int64_t s = 0; s < flags.shards; ++s) {
      serve::ShardSpec spec;
      spec.id = s;
      spec.socket_path = ShardSocketPath(flags.socket_dir, s);
      options.shards.push_back(std::move(spec));
    }
    serve::ShardRouter router(options);
    IMDIFF_CHECK(router.Connect()) << "connect failed: " << router.error();
    IMDIFF_CHECK(router.Publish("latency", flags.model_path, num_features,
                                flags.seed, norm.min, norm.max))
        << "publish failed: " << router.error();

    serve::ShardedLoadConfig config;
    config.load = BuildLoadConfigFromFlags(flags, norm);
    config.load.collect_scores = !flags.scores_out.empty();
    config.reshard_every = flags.reshard_every;
    config.reshard_tenants = flags.reshard_tenants;

    const serve::ShardedLoadStats stats =
        serve::ReplayLoadSharded(router, config, num_features);
    expected_crashes = stats.crashes;

    std::printf("sharded load: %" PRId64 " active tenants, %.2fs, %.1f "
                "points/s, %" PRId64 " blocks delivered (%" PRId64
                " degraded alerts, %" PRId64 " precision-dropped)\n",
                stats.tenants, stats.seconds, stats.points_per_second,
                stats.alerts, stats.degraded_alerts,
                stats.precision_dropped_alerts);
    std::printf("assembly: %" PRId64 " positions written, %" PRId64
                " duplicate blocks, %" PRId64 " score conflicts | drain: %"
                PRId64 " accepted, %" PRId64 " shed, %" PRId64
                " degraded blocks\n",
                stats.positions_written, stats.duplicate_blocks,
                stats.score_conflicts, stats.accepted, stats.shed,
                stats.degraded_blocks);
    std::printf("chaos: %" PRId64 " moves, %" PRId64 " shard crashes, %"
                PRId64 " of %" PRId64 " shards alive at exit\n",
                stats.moves, stats.crashes, router.alive_shards(),
                flags.shards);
    if (flags.refresh_every > 0) {
      std::printf("refresh: %" PRId64 " promotions, %" PRId64
                  " shadow blocks dual-scored across shards\n",
                  stats.promotions, stats.shadow_blocks);
    }
    std::printf("tenant latency: p50 across tenants p50=%.1fms p99=%.1fms | "
                "p99 across tenants p50=%.1fms p99=%.1fms | peak rss %" PRId64
                " KB\n",
                stats.tenant_p50.p50 * 1e3, stats.tenant_p50.p99 * 1e3,
                stats.tenant_p99.p50 * 1e3, stats.tenant_p99.p99 * 1e3,
                stats.peak_rss_kb);

    if (!flags.scores_out.empty()) {
      // Same hex-exact tenant lines as the single-process dump, plus the one
      // counter that is invariant across shard counts. Whole-file cmp works
      // between any two sharded runs (any --shards); against the
      // single-process dump, compare the '^tenant-' lines.
      std::ofstream out(flags.scores_out);
      for (const auto& [tenant, scores] : stats.scores) {
        out << tenant;
        char buf[40];
        for (float s : scores) {
          std::snprintf(buf, sizeof(buf), " %a", static_cast<double>(s));
          out << buf;
        }
        out << "\n";
      }
      out << "serve.degraded_blocks " << stats.degraded_blocks << "\n";
      out << "serve.precision_drops " << stats.precision_drops << "\n";
      out.flush();
      if (out.good()) {
        IMDIFF_LOG(Info) << "score dump written to " << flags.scores_out;
      } else {
        IMDIFF_LOG(Error) << "failed to write score dump to "
                          << flags.scores_out;
        exit_code = 1;
      }
    }

    if (!flags.metrics_out.empty()) {
      // One merged report across every surviving shard plus the router.
      std::ofstream out(flags.metrics_out);
      out << router.MergedMetricsJson();
      out.flush();
      if (out.good()) {
        IMDIFF_LOG(Info) << "merged metrics written to " << flags.metrics_out;
      } else {
        IMDIFF_LOG(Error) << "failed to write merged metrics to "
                          << flags.metrics_out;
        exit_code = 1;
      }
    }

    if (flags.fail_on_shed &&
        (stats.score_conflicts > 0 || stats.shed > 0)) {
      IMDIFF_LOG(Error) << "--fail-on-shed: " << stats.score_conflicts
                        << " score conflicts, " << stats.shed
                        << " shed submissions";
      exit_code = 1;
    }
    router.ShutdownAll();
  }

  // Reap the workers: kShutdown exits 0, a chaos kCrash exits 2. Anything
  // else (bind failure, exec failure, signal, or a hang past the grace
  // period) is a harness failure.
  int64_t crashed = 0;
  for (ShardProcess& p : workers) {
    int status = 0;
    pid_t got = 0;
    for (int spin = 0; spin < 1000; ++spin) {  // ~10 s grace
      got = ::waitpid(p.pid, &status, WNOHANG);
      if (got == p.pid || got < 0) break;
      ::usleep(10000);
    }
    if (got != p.pid) {
      IMDIFF_LOG(Error) << "worker shard " << p.id << " (pid " << p.pid
                        << ") did not exit; killing";
      ::kill(p.pid, SIGKILL);
      ::waitpid(p.pid, &status, 0);
      exit_code = 1;
      continue;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == serve::kWorkerExitCrashed) {
      ++crashed;
    } else if (!WIFEXITED(status) ||
               WEXITSTATUS(status) != serve::kWorkerExitOk) {
      IMDIFF_LOG(Error) << "worker shard " << p.id << " exited abnormally "
                        << "(status " << status << ")";
      exit_code = 1;
    }
  }
  if (crashed != expected_crashes) {
    IMDIFF_LOG(Error) << crashed << " workers exited crashed but the run "
                      << "crashed " << expected_crashes;
    exit_code = 1;
  }
  return exit_code;
}

int Main(int argc, char** argv) {
  ReplayFlags flags = ParseFlags(argc, argv);

  // Sharded mode: resolve and validate every path before training — a
  // stale socket or missing worker binary must fail in the first second.
  if (flags.shards > 0) {
    IMDIFF_CHECK(flags.zipf > 0.0) << "--shards requires the --zipf load mode";
    if (flags.socket_dir.empty()) {
      char dir[64];
      std::snprintf(dir, sizeof(dir), "/tmp/imdiff-shards-%d",
                    static_cast<int>(::getpid()));
      flags.socket_dir = dir;
    }
    std::string error;
    IMDIFF_CHECK(net::ProbeSocketDir(flags.socket_dir, &error)) << error;
    for (int64_t s = 0; s < flags.shards; ++s) {
      const std::string path = ShardSocketPath(flags.socket_dir, s);
      IMDIFF_CHECK(!net::PathExists(path))
          << "stale socket (dead worker? remove it first):" << path;
    }
    if (flags.worker_bin.empty()) {
      flags.worker_bin = DirName(argv[0]) + "/imdiff_worker";
    }
    IMDIFF_CHECK(FileExists(flags.worker_bin))
        << "worker binary not found:" << flags.worker_bin;
    // Workers load the model by checkpoint path; make sure one gets written.
    if (flags.model_path.empty()) {
      flags.model_path = flags.socket_dir + "/model.ckpt";
    }
  }

  // Fail fast on unwritable output paths — a long replay must not end with
  // its results unrecordable.
  IMDIFF_CHECK(flags.metrics_out.empty() || ProbeWritable(flags.metrics_out))
      << "--metrics-out path is not writable:" << flags.metrics_out;
  IMDIFF_CHECK(flags.scores_out.empty() || ProbeWritable(flags.scores_out))
      << "--scores-out path is not writable:" << flags.scores_out;

  // Arm fault injection before any faultable work (the warm-load below is an
  // injection point). The spec mirrors IMDIFF_FAULTS and overrides it.
  if (!flags.faults.empty()) {
    FaultRegistry::Global().Configure(flags.faults, flags.fault_seed);
    std::printf("faults: armed \"%s\" (seed %" PRIu64 ")\n",
                flags.faults.c_str(), flags.fault_seed);
  }

  // Shared fitted model: one training history (all tenants run the same
  // service fleet), published once, shared read-only by every session.
  const MtsDataset train_set = MakeMicroserviceLatencyDataset(
      flags.seed, /*num_services=*/6, /*train_length=*/flags.train,
      /*test_length=*/1);
  const MinMaxStats stats = FitMinMax(train_set.train);
  ImDiffusionConfig config = FastImDiffusionConfig();
  config.seed = flags.seed;
  if (flags.epochs >= 0) config.epochs = flags.epochs;

  serve::ModelRegistry registry;
  const int64_t k = train_set.num_features();
  const bool warm = !flags.model_path.empty() && FileExists(flags.model_path);
  bool published = false;
  if (warm) {
    const int64_t version = registry.PublishFromFile(
        "latency", config, flags.model_path, k, stats);
    if (version > 0) {
      published = true;
      std::printf("model: warm-loaded %s (version %" PRId64 ")\n",
                  flags.model_path.c_str(), version);
    } else {
      // Load failed past every retry and there is no previous version to
      // fall back to — degrade to training a fresh model instead of dying.
      IMDIFF_LOG(Warning) << "checkpoint load failed; training from scratch: "
                          << flags.model_path;
    }
  }
  if (!published) {
    auto detector = std::make_shared<ImDiffusionDetector>(config);
    Stopwatch fit_timer;
    if (flags.zipf > 0.0) {
      // Load-generator mode: train on the head tenants' own clean stream
      // histories (BuildZipfTrainingSegments) through the same segment-fit
      // path the refresh loop's candidates use.
      const std::vector<Tensor> segments = BuildZipfTrainingSegments(
          flags, stats, k, /*min_rows=*/config.model.window);
      IMDIFF_CHECK(!segments.empty())
          << "no tenant stream is long enough to train on; raise "
             "--total-samples or lower --tenants";
      detector->FitRawSegments(segments, &stats);
    } else {
      detector->Fit(ApplyMinMax(train_set.train, stats));
    }
    std::printf("model: fitted in %.1fs\n", fit_timer.ElapsedSeconds());
    if (!flags.model_path.empty()) {
      if (serve::SaveModelWithRetry(*detector, flags.model_path)) {
        std::printf("model: checkpoint written to %s\n",
                    flags.model_path.c_str());
      } else {
        IMDIFF_LOG(Warning) << "checkpoint save failed; continuing with the "
                               "in-memory model";
      }
    }
    registry.Publish("latency", std::move(detector), stats);
  }
  std::shared_ptr<const serve::ModelEntry> model = registry.Acquire("latency");
  IMDIFF_CHECK(model != nullptr);

  // One stream realization per tenant (classic mode only: load-generator
  // streams are scheduled and generated inside ReplayLoad).
  std::vector<serve::TenantStream> streams;
  if (flags.zipf <= 0.0) {
    for (int64_t t = 0; t < flags.tenants; ++t) {
      serve::TenantStream stream;
      char name[32];
      std::snprintf(name, sizeof(name), "tenant-%02" PRId64, t);
      stream.tenant = name;
      stream.samples = MakeMicroserviceLatencyDataset(
                           flags.seed + 1 + static_cast<uint64_t>(t),
                           /*num_services=*/6, /*train_length=*/1,
                           /*test_length=*/flags.samples)
                           .test;
      streams.push_back(std::move(stream));
    }
  }

  serve::StreamServer::Options options;
  options.num_workers = flags.workers;
  options.queue_capacity = flags.queue;
  options.session.online.block = flags.block;
  options.session.online.context = flags.context;
  options.session.max_resident = flags.max_resident;
  options.session.max_stashed = flags.max_stashed;
  options.session.seed_base = flags.seed;
  options.batch.max_batch_windows = flags.batch_windows;
  options.batch.flush_window_seconds = flags.flush_ms / 1000.0;
  options.deadline_seconds = flags.deadline_ms / 1000.0;
  options.force_degrade_level = flags.force_degrade;
  options.force_precision = flags.force_precision;
  if (flags.refresh_every > 0) {
    IMDIFF_CHECK(flags.zipf > 0.0)
        << "--refresh-every requires the --zipf load mode";
    options.session.refresh_recent = flags.refresh_recent;
    options.refresh.enabled = true;
    options.refresh.registry = &registry;  // outlives the server (this frame)
    options.refresh.model_name = "latency";
    options.refresh.refresh_every = flags.refresh_every;
    options.refresh.shadow_fraction = flags.shadow_fraction;
    options.refresh.verdict_pairs = flags.verdict_pairs;
    options.refresh.psi_promote = flags.refresh_psi;
    options.refresh.ks_promote = flags.refresh_ks;
    options.refresh.mean_ratio_promote = flags.refresh_mean_ratio;
    options.refresh.fit_epochs = static_cast<int>(flags.refresh_epochs);
  }

  if (flags.shards > 0) {
    return RunShardedLoad(flags, stats, k);
  }
  if (flags.zipf > 0.0) return RunZipfLoad(flags, std::move(model), options);

  std::printf(
      "replay: %" PRId64 " tenants x %" PRId64
      " samples (block=%" PRId64 " context=%" PRId64 " flush=%.1fms "
      "workers=%d queue=%" PRId64 " max_resident=%" PRId64 ")\n",
      flags.tenants, flags.samples, flags.block, flags.context, flags.flush_ms,
      flags.workers, flags.queue, flags.max_resident);
  const serve::ReplayStats served =
      serve::ReplayThroughServer(model, streams, options);

  MetricsRegistry& metrics = MetricsRegistry::Global();
  const int64_t cache_hits = metrics.GetCounter("serve.cache_hits")->value();
  const int64_t cache_misses =
      metrics.GetCounter("serve.cache_misses")->value();
  const int64_t dropped =
      metrics.GetCounter("serve.requests_dropped")->value();
  std::printf(
      "served: %.2fs, %.1f points/s, %" PRId64 " alerts, %" PRId64
      " rejected submits, %" PRId64 " batches (%" PRId64
      " windows scored, %" PRId64 " cache hits / %" PRId64 " misses)\n",
      served.seconds, served.points_per_second, served.alerts, served.rejected,
      metrics.GetCounter("serve.batches")->value(),
      metrics.GetCounter("serve.batched_windows")->value(), cache_hits,
      cache_misses);
  Histogram* queue_wait = metrics.GetHistogram("serve.queue_wait_seconds");
  Histogram* alert_latency =
      metrics.GetHistogram("serve.alert_latency_seconds");
  std::printf(
      "latency: queue_wait p50=%.1fms p90=%.1fms p99=%.1fms | "
      "ready->alert p50=%.1fms p90=%.1fms p99=%.1fms | drops=%" PRId64 "\n",
      queue_wait->Percentile(0.5) * 1e3, queue_wait->Percentile(0.9) * 1e3,
      queue_wait->Percentile(0.99) * 1e3, alert_latency->Percentile(0.5) * 1e3,
      alert_latency->Percentile(0.9) * 1e3,
      alert_latency->Percentile(0.99) * 1e3, dropped);
  std::printf("sessions: %" PRId64 " created, %" PRId64 " evictions, %" PRId64
              " rehydrations\n",
              metrics.GetCounter("serve.sessions_created")->value(),
              metrics.GetCounter("serve.sessions_evicted")->value(),
              metrics.GetCounter("serve.sessions_rehydrated")->value());

  const int64_t degraded = metrics.GetCounter("serve.degraded_blocks")->value();
  const int64_t precision_drops =
      metrics.GetCounter("serve.precision_drops")->value();
  const int64_t rehydrate_failures =
      metrics.GetCounter("serve.rehydrate_failures")->value();
  const int64_t arena_fallbacks = metrics.GetCounter("arena.fallback")->value();
  if (!flags.faults.empty() || flags.deadline_ms > 0.0) {
    std::printf("degradation: %" PRId64 " degraded blocks (%" PRId64
                " degraded alerts), %" PRId64 " precision drops (%" PRId64
                " precision-dropped alerts), %" PRId64 " arena fallbacks, %"
                PRId64 " forced flushes, %" PRId64 " rehydrate failures\n",
                degraded, served.degraded_alerts, precision_drops,
                served.precision_dropped_alerts, arena_fallbacks,
                metrics.GetCounter("serve.flush_timeouts")->value(),
                rehydrate_failures);
    std::printf("registry: %" PRId64 " load retries, %" PRId64
                " load fallbacks, %" PRId64 " save retries, %" PRId64
                " save failures\n",
                metrics.GetCounter("registry.load_retries")->value(),
                metrics.GetCounter("registry.load_fallbacks")->value(),
                metrics.GetCounter("registry.save_retries")->value(),
                metrics.GetCounter("registry.save_failures")->value());
  }

  int exit_code = 0;
  // Forced rungs (--force-degrade / --precision) apply uniformly to every
  // block, so the serial baseline is scored at the same rung and the bitwise
  // comparison still runs. Only policy- or chaos-chosen degradation — whose
  // placement depends on queue timing or the fault seed — or dropped session
  // state makes the serial reference wrong.
  const bool forced_rungs =
      flags.force_degrade >= 0 || flags.force_precision >= 0;
  const int64_t unforced_degraded = forced_rungs ? 0 : degraded;
  const int64_t unforced_drops = forced_rungs ? 0 : precision_drops;
  if (flags.compare_serial &&
      (unforced_degraded > 0 || unforced_drops > 0 || rehydrate_failures > 0)) {
    // Degraded blocks score a truncated chain or reduced precision and a
    // dropped stash resets a tenant's stream positions — either makes the
    // full-quality serial baseline the wrong reference. Determinism is
    // checked differently in chaos runs: two identical runs must produce
    // identical --scores-out.
    std::printf("serial: comparison skipped (%" PRId64 " degraded blocks, "
                "%" PRId64 " precision drops, %" PRId64
                " rehydrate failures)\n",
                degraded, precision_drops, rehydrate_failures);
  } else if (flags.compare_serial) {
    // Serial baseline: per-tenant fresh scoring, no batching, no cache —
    // pinned to the forced rung when one is set.
    const int serial_level = flags.force_degrade >= 0 ? flags.force_degrade : 0;
    const Precision serial_precision =
        flags.force_precision >= 0
            ? static_cast<Precision>(flags.force_precision)
            : Precision::kF32;
    Stopwatch serial_timer;
    int64_t mismatched_tenants = 0;
    for (const serve::TenantStream& stream : streams) {
      const std::vector<float> serial = serve::ReplaySerial(
          *model, options.session.online, options.session.seed_base, stream,
          serial_level, serial_precision);
      const std::vector<float>& batched = served.scores.at(stream.tenant);
      if (serial != batched) {
        ++mismatched_tenants;
        IMDIFF_LOG(Error) << "score stream mismatch for " << stream.tenant;
      }
    }
    const double serial_seconds = serial_timer.ElapsedSeconds();
    const double ratio =
        served.seconds > 0.0 ? serial_seconds / served.seconds : 0.0;
    std::printf(
        "serial: %.2fs (%.1f points/s) -> aggregate speedup %.2fx, "
        "bitwise %s\n",
        serial_seconds,
        serial_seconds > 0.0 ? static_cast<double>(served.submitted) /
                                   serial_seconds
                             : 0.0,
        ratio, mismatched_tenants == 0 ? "IDENTICAL" : "MISMATCH");
    if (mismatched_tenants > 0) exit_code = 1;
  }

  if (!flags.scores_out.empty()) {
    // Hex-exact dump for cross-run bitwise comparison: one line per tenant
    // ("tenant score score ..."), then the fault-visible counters. Two runs
    // with identical flags (including --faults/--fault-seed) must produce
    // byte-identical files.
    std::ofstream out(flags.scores_out);
    for (const auto& [tenant, scores] : served.scores) {
      out << tenant;
      char buf[40];
      for (float s : scores) {
        std::snprintf(buf, sizeof(buf), " %a", static_cast<double>(s));
        out << buf;
      }
      out << "\n";
    }
    out << "serve.degraded_blocks " << degraded << "\n";
    out << "serve.precision_drops " << precision_drops << "\n";
    out << "arena.fallback " << arena_fallbacks << "\n";
    out.flush();
    if (out.good()) {
      IMDIFF_LOG(Info) << "score dump written to " << flags.scores_out;
    } else {
      IMDIFF_LOG(Error) << "failed to write score dump to "
                        << flags.scores_out;
      exit_code = 1;
    }
  }

  if (!flags.metrics_out.empty()) {
    if (WriteMetricsJson(flags.metrics_out)) {
      IMDIFF_LOG(Info) << "metrics snapshot written to " << flags.metrics_out;
    } else {
      IMDIFF_LOG(Error) << "failed to write metrics snapshot to "
                        << flags.metrics_out;
      exit_code = 1;
    }
  }
  if (flags.fail_on_shed && dropped > 0) {
    IMDIFF_LOG(Error) << "--fail-on-shed: " << dropped
                      << " submissions were dropped at ingest";
    exit_code = 1;
  }
  return exit_code;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
