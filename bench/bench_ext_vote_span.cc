// Ablation of the ensemble vote span (DESIGN.md §7.7): how many of the final
// reverse-chain steps should vote. The paper uses 60% of a 50-step chain with
// a large denoiser; with the CPU-scaled denoiser the informative span is
// shorter. Sweeps the span on an SMD-like dataset.
//
// Usage: bench_ext_vote_span [--scale F] [--seeds N] [--metrics-out PATH]

#include <cstdio>

#include "core/imdiffusion.h"
#include "eval/runner.h"
#include "eval/tables.h"

namespace imdiff {
namespace {

int Main(int argc, char** argv) {
  HarnessOptions options = ParseHarnessOptions(argc, argv);
  MtsDataset dataset = MakeBenchmarkDataset(BenchmarkId::kSmd,
                                            options.dataset_seed, 0.3f);
  std::printf("=== Extension ablation: ensemble vote span (T=16) ===\n\n");
  TextTable table({"vote_last_steps", "P", "R", "F1", "R-AUC-PR", "ADD"});
  for (int span : {2, 4, 6, 10, 16}) {
    ImDiffusionConfig config = options.profile == SpeedProfile::kPaper
                                   ? PaperImDiffusionConfig()
                                   : FastImDiffusionConfig();
    config.vote_last_steps = span;
    config.seed = 7;
    ImDiffusionDetector detector(config);
    RunMetrics m = EvaluateDetector(detector, dataset);
    table.AddRow({FormatMetric(span, 0), FormatMetric(m.precision, 3),
                  FormatMetric(m.recall, 3), FormatMetric(m.f1, 3),
                  FormatMetric(m.r_auc_pr, 3), FormatMetric(m.add, 1)});
    std::printf("span %d done\n", span);
    std::fflush(stdout);
  }
  std::printf("\n%s", table.ToString().c_str());
  WriteMetricsIfRequested(options);
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
