// Reproduces Table 2 (per-dataset P/R/F1/F1-std/R-AUC-PR of all detectors)
// and Table 3 (averages over the six datasets).
//
// Usage: bench_table2_accuracy [--seeds N] [--scale F] [--paper] [--metrics-out PATH]
// Defaults are scaled for a single CPU core; see EXPERIMENTS.md.

#include <cstdio>
#include <vector>

#include "eval/runner.h"
#include "eval/tables.h"

namespace imdiff {
namespace {

int Main(int argc, char** argv) {
  const HarnessOptions options = ParseHarnessOptions(argc, argv);
  std::printf(
      "=== Table 2: accuracy on the six simulated benchmarks "
      "(seeds=%d, scale=%.2f) ===\n",
      options.num_seeds, options.size_scale);
  const std::vector<std::string> detectors = Table2DetectorNames();
  std::vector<std::vector<AggregateMetrics>> all(detectors.size());

  for (BenchmarkId id : AllBenchmarks()) {
    MtsDataset dataset =
        MakeBenchmarkDataset(id, options.dataset_seed, options.size_scale);
    TextTable table({"Method", "P", "R", "F1", "F1-std", "R-AUC-PR"});
    for (size_t d = 0; d < detectors.size(); ++d) {
      const AggregateMetrics agg = EvaluateManySeeds(
          detectors[d], dataset, options.num_seeds, options.profile);
      all[d].push_back(agg);
      table.AddRow({detectors[d], FormatMetric(agg.precision),
                    FormatMetric(agg.recall), FormatMetric(agg.f1),
                    FormatMetric(agg.f1_std), FormatMetric(agg.r_auc_pr)});
    }
    std::printf("\n--- %s ---\n%s", dataset.name.c_str(),
                table.ToString().c_str());
    std::fflush(stdout);
  }

  std::printf("\n=== Table 3: averages over all six datasets ===\n");
  TextTable avg_table({"Method", "P", "R", "F1", "F1-std", "R-AUC-PR"});
  for (size_t d = 0; d < detectors.size(); ++d) {
    const AggregateMetrics avg = AverageAggregates(all[d]);
    avg_table.AddRow({detectors[d], FormatMetric(avg.precision),
                      FormatMetric(avg.recall), FormatMetric(avg.f1),
                      FormatMetric(avg.f1_std), FormatMetric(avg.r_auc_pr)});
  }
  std::printf("%s", avg_table.ToString().c_str());
  WriteMetricsIfRequested(options);
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
