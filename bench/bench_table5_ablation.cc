// Reproduces Table 5 (per-dataset ablation results: ImDiffusion vs
// Forecasting / Reconstruction / Non-ensemble / Conditional / Random Mask /
// w/o spatial / w/o temporal transformer) and Table 6 (ablation averages).
//
// Usage: bench_table5_ablation [--seeds N] [--scale F] [--paper] [--metrics-out PATH]

#include <cstdio>
#include <vector>

#include "eval/runner.h"
#include "eval/tables.h"

namespace imdiff {
namespace {

int Main(int argc, char** argv) {
  HarnessOptions options = ParseHarnessOptions(argc, argv);
  // Ablations are ImDiffusion-only (the heavy detector); default to a single
  // seed and smaller scale so the 8x6 grid completes on one core.
  std::printf(
      "=== Table 5: ablation analysis per dataset (seeds=%d, scale=%.2f) "
      "===\n",
      options.num_seeds, options.size_scale);
  const std::vector<std::string> variants = AblationDetectorNames();
  std::vector<std::vector<AggregateMetrics>> all(variants.size());

  for (BenchmarkId id : AllBenchmarks()) {
    MtsDataset dataset =
        MakeBenchmarkDataset(id, options.dataset_seed, options.size_scale);
    TextTable table({"Method", "P", "R", "F1", "R-AUC-PR", "ADD"});
    for (size_t v = 0; v < variants.size(); ++v) {
      const AggregateMetrics agg = EvaluateManySeeds(
          variants[v], dataset, options.num_seeds, options.profile);
      all[v].push_back(agg);
      table.AddRow({variants[v], FormatMetric(agg.precision, 3),
                    FormatMetric(agg.recall, 3), FormatMetric(agg.f1, 3),
                    FormatMetric(agg.r_auc_pr, 3), FormatMetric(agg.add, 1)});
    }
    std::printf("\n--- %s ---\n%s", dataset.name.c_str(),
                table.ToString().c_str());
    std::fflush(stdout);
  }

  std::printf("\n=== Table 6: ablation averages over all datasets ===\n");
  TextTable avg_table({"Method", "P", "R", "F1", "R-AUC-PR", "ADD"});
  for (size_t v = 0; v < variants.size(); ++v) {
    const AggregateMetrics avg = AverageAggregates(all[v]);
    avg_table.AddRow({variants[v], FormatMetric(avg.precision),
                      FormatMetric(avg.recall), FormatMetric(avg.f1),
                      FormatMetric(avg.r_auc_pr), FormatMetric(avg.add, 0)});
  }
  std::printf("%s", avg_table.ToString().c_str());
  WriteMetricsIfRequested(options);
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
