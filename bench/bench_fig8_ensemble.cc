// Reproduces Fig. 8: the step-wise ensemble inference on an SMD-like window —
// per-denoising-step imputations, errors, per-step anomaly labels (Eq. 12),
// and the final aggregated vote signal with the threshold ξ.
//
// Usage: bench_fig8_ensemble [--scale F] [--metrics-out PATH]

#include <cstdio>

#include "core/imdiffusion.h"
#include "eval/runner.h"

namespace imdiff {
namespace {

int Main(int argc, char** argv) {
  HarnessOptions options = ParseHarnessOptions(argc, argv);
  MtsDataset dataset =
      MakeBenchmarkDataset(BenchmarkId::kSmd, options.dataset_seed, 0.25f);
  MtsDataset norm = NormalizeDataset(dataset);
  ImDiffusionConfig config = options.profile == SpeedProfile::kPaper
                                 ? PaperImDiffusionConfig()
                                 : FastImDiffusionConfig();
  config.seed = 7;
  ImDiffusionDetector detector(config);
  detector.Fit(norm.train);
  ImDiffusionDetector::StepTrace trace;
  DetectionResult result = detector.RunWithTrace(norm.test, &trace);

  std::printf("=== Fig. 8: ensemble inference trace ===\n");
  std::printf("vote steps (reverse-chain index s of T=%d): ",
              config.schedule.num_steps);
  for (int s : trace.steps) std::printf("%d ", s);
  std::printf("\nvote threshold xi = %d\n\n", config.vote_threshold);

  // Focus on the region around the first anomaly.
  const auto segments = FindSegments(norm.test_labels);
  int64_t lo = 0, hi = std::min<int64_t>(80, norm.test_length());
  if (!segments.empty()) {
    lo = std::max<int64_t>(segments[0].start - 25, 0);
    hi = std::min<int64_t>(segments[0].end + 25, norm.test_length());
  }

  // Per-step error + label rows (the figure's 10 sub-plots).
  for (size_t s = 0; s < trace.steps.size(); ++s) {
    std::printf("step s=%d errors: ", trace.steps[s]);
    for (int64_t t = lo; t < hi; t += 4) {
      std::printf("%.3f%s ", trace.step_errors[s][static_cast<size_t>(t)],
                  trace.step_labels[s][static_cast<size_t>(t)] ? "*" : "");
    }
    std::printf("\n");
  }
  std::printf("\nt,true_label,votes,final_label,score\n");
  for (int64_t t = lo; t < hi; ++t) {
    std::printf("%lld,%d,%d,%d,%.4f\n", static_cast<long long>(t),
                norm.test_labels[static_cast<size_t>(t)],
                trace.votes[static_cast<size_t>(t)],
                result.labels[static_cast<size_t>(t)],
                result.scores[static_cast<size_t>(t)]);
  }
  // Demonstrate the ensemble's variance-reduction claim: count points whose
  // final-step label is positive but which the vote rejects (filtered FPs).
  int filtered = 0, kept = 0;
  const auto& final_labels = trace.step_labels.back();
  for (size_t t = 0; t < final_labels.size(); ++t) {
    if (final_labels[t] && !result.labels[t]) {
      norm.test_labels[t] ? ++kept : ++filtered;
    }
  }
  std::printf(
      "\nFinal-step positives rejected by the vote: %d on normal data "
      "(false positives removed), %d on anomalies.\n",
      filtered, kept);
  WriteMetricsIfRequested(options);
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
