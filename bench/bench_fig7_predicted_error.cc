// Reproduces Fig. 7: mean predicted (self-supervised modeling) error of the
// imputation, forecasting, and reconstruction approaches on every dataset,
// plus the average. A lower error indicates better MTS modeling; the paper
// shows imputation lowest everywhere.
//
// Usage: bench_fig7_predicted_error [--scale F] [--metrics-out PATH]

#include <cstdio>

#include "core/imdiffusion.h"
#include "eval/runner.h"
#include "eval/tables.h"

namespace imdiff {
namespace {

int Main(int argc, char** argv) {
  HarnessOptions options = ParseHarnessOptions(argc, argv);
  const float scale = options.size_scale;
  std::printf(
      "=== Fig. 7: mean predicted error per modeling approach (scale=%.2f) "
      "===\n\n",
      scale);
  const char* kVariants[] = {"ImDiffusion", "Forecasting", "Reconstruction"};
  TextTable table({"Dataset", "Imputation", "Forecasting", "Reconstruction"});
  double sums[3] = {0, 0, 0};
  for (BenchmarkId id : AllBenchmarks()) {
    MtsDataset dataset =
        MakeBenchmarkDataset(id, options.dataset_seed, scale);
    MtsDataset norm = NormalizeDataset(dataset);
    std::vector<std::string> row = {dataset.name};
    for (int v = 0; v < 3; ++v) {
      ImDiffusionConfig config = options.profile == SpeedProfile::kPaper
                                     ? PaperImDiffusionConfig()
                                     : FastImDiffusionConfig();
      config.seed = 7;
      if (v == 1) config.mask_strategy = MaskStrategy::kForecasting;
      if (v == 2) config.mask_strategy = MaskStrategy::kReconstruction;
      ImDiffusionDetector detector(config);
      detector.Fit(norm.train);
      detector.Run(norm.test);
      const double err = detector.last_mean_error();
      sums[v] += err;
      row.push_back(FormatMetric(err, 4));
    }
    table.AddRow(std::move(row));
    std::printf("%s done\n", dataset.name.c_str());
    std::fflush(stdout);
  }
  table.AddRow({"Average", FormatMetric(sums[0] / 6, 4),
                FormatMetric(sums[1] / 6, 4), FormatMetric(sums[2] / 6, 4)});
  std::printf("\n%s", table.ToString().c_str());
  std::printf("\n(Fig. 7's claim: the imputation column is lowest.)\n");
  (void)kVariants;
  WriteMetricsIfRequested(options);
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
