// Accuracy gate for the reduced-precision scoring ladder (DESIGN.md §17).
//
// A precision rung is only admissible as a degradation level if it trades
// latency for thousandths of accuracy, not whole detections. This harness
// quantifies that trade on every simulated benchmark: ImDiffusion is fitted
// once per dataset (training is always fp32 — the quantized forward is
// inference-only), then the identical fitted model scores the test split at
// fp32, bf16, and int8, and the bf16/int8 deltas against the fp32 baseline
// are gated:
//
//   best-F1(fp32)   - best-F1(p)     <= 0.01
//   R-AUC-PR(fp32)  - R-AUC-PR(p)    <= 0.02
//
// The gate is one-sided: it bounds detection quality LOST to quantization.
// The best-F1 stage thresholds scores into discrete votes, so a seed's
// delta moves in steps of whole vote flips and can land slightly positive
// as easily as slightly negative; a favorable flip is the same zero-mean
// jitter as an unfavorable one and must not fail CI. (A numerics bug that
// inflates scores shows up in the scoreL2 column and in the per-step
// rel-L2 shadow validation, which are magnitude gates, not quality gates.)
//
// Any breach on any dataset exits nonzero with the offending rows printed —
// this is the CI job that keeps kernel changes honest: a quantization bug
// that survives the per-step rel-L2 shadow validation (looser by design)
// still cannot ship if it moves detection quality.
//
// Usage: accuracy_gate [--seeds N] [--scale F] [--paper] [--dataset-seed S]
//   [--metrics-out PATH]
//
// Protocol: per dataset, `--seeds` independent detector seeds are fitted
// (the paper's independent-runs protocol); each fitted model scores all
// three precisions, so seed variance cancels exactly inside every per-seed
// delta. The per-seed deltas are SIGNED and averaged before gating: the
// ensemble-vote stage thresholds scores into discrete per-step labels, so a
// harmless sub-percent score perturbation can flip votes and move a single
// seed's best-F1 by whole points in either direction — zero-mean jitter the
// averaging cancels — while a real quantization bias (all seeds shifted the
// same way) survives averaging and trips the gate. The scoreL2 column
// reports the continuous perturbation (relative L2 of the reduced-precision
// score stream vs the same seed's fp32 stream) so a metric breach can be
// told apart from a kernel numerics regression at a glance.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/imdiffusion.h"
#include "data/benchmarks.h"
#include "eval/runner.h"
#include "eval/tables.h"
#include "metrics/classification.h"
#include "metrics/range_auc.h"
#include "tensor/precision.h"

namespace imdiff {
namespace {

constexpr double kMaxF1Delta = 0.01;
constexpr double kMaxRAucPrDelta = 0.02;

struct PrecisionMetrics {
  double f1 = 0.0;
  double r_auc_pr = 0.0;
  std::vector<float> scores;
};

// Seeded scoring pass: RunSeeded derives all inference noise from (window
// content, seed), so the three precisions score under bitwise-identical
// noise draws and the only difference between their score streams is the
// GEMM precision itself. (The unseeded Run() would consume the fit-time RNG
// stream — each successive call a fresh noise realization — and drown the
// quantization signal in sampling noise.)
PrecisionMetrics ScoreAt(const ImDiffusionDetector& detector,
                         const MtsDataset& test_set, Precision precision) {
  const DetectionResult result =
      detector.RunSeeded(test_set.test, /*seed=*/777, /*degrade_level=*/0,
                         precision);
  PrecisionMetrics m;
  BinaryMetrics best;
  BestF1Threshold(result.scores, test_set.test_labels, 64, &best);
  m.f1 = best.f1;
  m.r_auc_pr = RangeAucPr(result.scores, test_set.test_labels);
  m.scores = result.scores;
  return m;
}

// Signed delta with an explicit sign so improvement vs loss reads directly
// off the table.
std::string FormatSignedMetric(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.4f", value);
  return buf;
}

// Relative L2 distance between a reduced-precision score stream and the
// fp32 baseline — the continuous perturbation underneath the (discrete)
// metric deltas.
double ScoreRelL2(const std::vector<float>& got,
                  const std::vector<float>& want) {
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < got.size(); ++i) {
    const double d = static_cast<double>(got[i]) - want[i];
    num += d * d;
    den += static_cast<double>(want[i]) * want[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

int Main(int argc, char** argv) {
  const HarnessOptions options = ParseHarnessOptions(argc, argv);
  std::printf(
      "=== Precision accuracy gate: bf16/int8 vs fp32 on the six simulated "
      "benchmarks (scale=%.2f) ===\n",
      options.size_scale);
  std::printf("gates (one-sided, on quality lost): F1 loss <= %.3f, "
              "R-AUC-PR loss <= %.3f\n",
              kMaxF1Delta, kMaxRAucPrDelta);

  std::printf("protocol: %d independent detector seed%s per dataset; deltas "
              "are signed per-seed (same fitted model scores all three "
              "precisions) and averaged, so unbiased vote-flip jitter "
              "cancels and only a systematic quantization bias can trip "
              "the gate\n",
              options.num_seeds, options.num_seeds == 1 ? "" : "s");

  const Precision reduced[] = {Precision::kBf16, Precision::kInt8};
  TextTable table({"Dataset", "Prec", "F1", "dF1", "R-AUC-PR", "dR-AUC-PR",
                   "scoreL2", "Gate"});
  int breaches = 0;
  for (BenchmarkId id : AllBenchmarks()) {
    const MtsDataset dataset =
        MakeBenchmarkDataset(id, options.dataset_seed, options.size_scale);
    const MtsDataset normalized = NormalizeDataset(dataset);

    double base_f1 = 0.0, base_pr = 0.0;
    double f1[2] = {0.0, 0.0}, pr[2] = {0.0, 0.0};
    double df1[2] = {0.0, 0.0}, dpr[2] = {0.0, 0.0};
    double rel_l2[2] = {0.0, 0.0};
    for (int s = 0; s < options.num_seeds; ++s) {
      auto detector = MakeDetector("ImDiffusion",
                                   1000 + static_cast<uint64_t>(s),
                                   options.profile);
      detector->Fit(normalized.train);
      auto* imdiff = dynamic_cast<const ImDiffusionDetector*>(detector.get());
      if (imdiff == nullptr) {
        std::fprintf(stderr, "MakeDetector did not build an ImDiffusion\n");
        return 2;
      }
      const PrecisionMetrics base =
          ScoreAt(*imdiff, normalized, Precision::kF32);
      base_f1 += base.f1;
      base_pr += base.r_auc_pr;
      for (int i = 0; i < 2; ++i) {
        const PrecisionMetrics m = ScoreAt(*imdiff, normalized, reduced[i]);
        f1[i] += m.f1;
        pr[i] += m.r_auc_pr;
        df1[i] += m.f1 - base.f1;
        dpr[i] += m.r_auc_pr - base.r_auc_pr;
        rel_l2[i] += ScoreRelL2(m.scores, base.scores);
      }
      std::printf("%s: seed %d done\n", dataset.name.c_str(), s);
      std::fflush(stdout);
    }
    const double inv = 1.0 / options.num_seeds;
    table.AddRow({dataset.name, "fp32", FormatMetric(base_f1 * inv), "-",
                  FormatMetric(base_pr * inv), "-", "-", "-"});
    for (int i = 0; i < 2; ++i) {
      // Signed mean deltas (reduced - fp32); only the lost-quality side
      // (negative deltas) can breach.
      const double mean_df1 = df1[i] * inv;
      const double mean_dpr = dpr[i] * inv;
      const bool pass = -mean_df1 <= kMaxF1Delta && -mean_dpr <= kMaxRAucPrDelta;
      if (!pass) ++breaches;
      table.AddRow({dataset.name, PrecisionName(reduced[i]),
                    FormatMetric(f1[i] * inv), FormatSignedMetric(mean_df1),
                    FormatMetric(pr[i] * inv), FormatSignedMetric(mean_dpr),
                    FormatMetric(rel_l2[i] * inv), pass ? "ok" : "BREACH"});
    }
  }
  std::printf("\n%s", table.ToString().c_str());

  WriteMetricsIfRequested(options);
  if (breaches > 0) {
    std::printf("\naccuracy gate: %d breach%s — reduced precision lost "
                "detection quality beyond the gate\n",
                breaches, breaches == 1 ? "" : "es");
    return 1;
  }
  std::printf("\naccuracy gate: PASS on all datasets\n");
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
