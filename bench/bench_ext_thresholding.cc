// Extension study (paper §5.2.1 future work): thresholding strategies on the
// same ImDiffusion score series — best-F1 grid (the evaluation protocol),
// fixed upper-quantile (the paper's deployed rule), POT (OmniAnomaly's rule),
// and Hundman-style nonparametric dynamic thresholding.
//
// Usage: bench_ext_thresholding [--scale F] [--metrics-out PATH]

#include <cstdio>

#include "core/imdiffusion.h"
#include "eval/runner.h"
#include "eval/tables.h"
#include "metrics/add.h"
#include "metrics/classification.h"
#include "metrics/dynamic_threshold.h"
#include "metrics/pot.h"

namespace imdiff {
namespace {

int Main(int argc, char** argv) {
  HarnessOptions options = ParseHarnessOptions(argc, argv);
  // SMAP-like data: the dataset where the paper observes fixed-threshold
  // precision loss.
  MtsDataset dataset =
      MakeBenchmarkDataset(BenchmarkId::kSmap, options.dataset_seed, 0.3f);
  MtsDataset norm = NormalizeDataset(dataset);
  auto detector = MakeDetector("ImDiffusion", 7, options.profile);
  detector->Fit(norm.train);
  DetectionResult result = detector->Run(norm.test);

  std::printf("=== Extension: thresholding strategies on ImDiffusion scores "
              "(SMAP-like) ===\n\n");
  TextTable table({"Strategy", "P", "R", "F1", "ADD"});
  auto report = [&](const char* name, const std::vector<uint8_t>& preds) {
    const BinaryMetrics m = ComputeAdjustedMetrics(norm.test_labels, preds);
    table.AddRow({name, FormatMetric(m.precision, 3), FormatMetric(m.recall, 3),
                  FormatMetric(m.f1, 3),
                  FormatMetric(AverageDetectionDelay(norm.test_labels, preds),
                               1)});
  };

  BinaryMetrics best;
  const float best_threshold =
      BestF1Threshold(result.scores, norm.test_labels, 64, &best);
  report("best-F1 grid (oracle)", ThresholdScores(result.scores, best_threshold));

  const float fixed = Quantile(result.scores, 0.97);
  report("fixed 97th percentile", ThresholdScores(result.scores, fixed));

  PotConfig pot;
  report("POT (EVT)", ThresholdScores(result.scores, PotThreshold(result.scores, pot)));

  DynamicThresholdConfig dynamic;
  dynamic.window = std::min<int64_t>(300, norm.test_length());
  dynamic.stride = 50;
  report("dynamic (Hundman)", DynamicThreshold(result.scores, dynamic));

  report("ensemble vote (Eq. 12 + xi)", result.labels);

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nThe paper suggests dynamic thresholding to recover the precision a "
      "fixed threshold loses on SMAP/SWaT-style data.\n");
  WriteMetricsIfRequested(options);
  return 0;
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
