// google-benchmark micro-benchmarks for the substrate: tensor kernels,
// attention, diffusion steps, and end-to-end ImTransformer inference.
//
// Snapshot modes (both skip the benchmark suite):
//   bench_micro --metrics-out <path>   end-to-end workload (ImDiffusion train
//       + inference, online block scoring, parallel kernels) exercising every
//       instrumented phase, then dumps the metrics registry as JSON.
//   bench_micro --kernels-out <path>   kernel-layer comparison — scalar vs
//       SIMD vs arena-off rows with seconds/op, GFLOP/s, and allocations/op —
//       written as BENCH_kernels.json-style machine-readable JSON.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/lstm_ad.h"
#include "core/im_transformer.h"
#include "core/imdiffusion.h"
#include "core/masking.h"
#include "core/online_detector.h"
#include "data/synthetic.h"
#include "diffusion/ddpm.h"
#include "graph/graph.h"
#include "nn/attention.h"
#include "tensor/arena.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "utils/metrics.h"
#include "utils/rng.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace {

// Transformer-shaped GEMM: (batch * seq) x d_model x d_model, the shape the
// attention projections and feed-forward layers feed MatMul.
constexpr int64_t kTfM = 800, kTfK = 64, kTfN = 64;

// Variant encoding shared by the kernel rows: how the kernel layer and the
// allocator are configured for one measurement.
enum KernelVariant { kScalar = 0, kSimd = 1, kSimdArenaOff = 2 };

void ApplyVariant(int variant) {
  simd::SetForceScalar(variant == kScalar);
  Arena::Global().set_pooling_enabled(variant != kSimdArenaOff);
}

void ResetVariant() {
  simd::SetForceScalar(false);
  Arena::Global().set_pooling_enabled(true);
}

const char* VariantName(int variant) {
  switch (variant) {
    case kScalar:
      return "scalar";
    case kSimd:
      return "simd";
    default:
      return "simd_arena_off";
  }
}

// ---- Kernel-layer comparison rows -------------------------------------------
//
// Arg(0) is the KernelVariant. Compare the scalar and simd rows for the
// vectorization speedup and the simd vs simd_arena_off rows for the
// allocations/op drop the arena free lists buy.

void BM_KernelMatMul(benchmark::State& state) {
  ApplyVariant(static_cast<int>(state.range(0)));
  Rng rng(1);
  Tensor a = Tensor::Randn({kTfM, kTfK}, rng);
  Tensor b = Tensor::Randn({kTfK, kTfN}, rng);
  MatMul(a, b);  // warm the free lists before counting
  const Arena::Stats before = Arena::Global().stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  const Arena::Stats after = Arena::Global().stats();
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * kTfM * kTfK * kTfN *
          1e-9,
      benchmark::Counter::kIsRate);
  state.counters["allocs/op"] =
      static_cast<double>(after.misses - before.misses) /
      static_cast<double>(state.iterations());
  ResetVariant();
}
BENCHMARK(BM_KernelMatMul)->Arg(kScalar)->Arg(kSimd)->Arg(kSimdArenaOff);

void BM_KernelSoftmax(benchmark::State& state) {
  ApplyVariant(static_cast<int>(state.range(0)));
  Rng rng(3);
  Tensor t = Tensor::Randn({512, 100}, rng);
  SoftmaxLastDim(t);
  const Arena::Stats before = Arena::Global().stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxLastDim(t));
  }
  const Arena::Stats after = Arena::Global().stats();
  state.counters["allocs/op"] =
      static_cast<double>(after.misses - before.misses) /
      static_cast<double>(state.iterations());
  ResetVariant();
}
BENCHMARK(BM_KernelSoftmax)->Arg(kScalar)->Arg(kSimd)->Arg(kSimdArenaOff);

void BM_KernelGelu(benchmark::State& state) {
  ApplyVariant(static_cast<int>(state.range(0)));
  Rng rng(5);
  Tensor t = Tensor::Randn({80000}, rng);
  GeluForward(t);
  const Arena::Stats before = Arena::Global().stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GeluForward(t));
  }
  const Arena::Stats after = Arena::Global().stats();
  state.counters["allocs/op"] =
      static_cast<double>(after.misses - before.misses) /
      static_cast<double>(state.iterations());
  ResetVariant();
}
BENCHMARK(BM_KernelGelu)->Arg(kScalar)->Arg(kSimd)->Arg(kSimdArenaOff);

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_BatchedMatMul(benchmark::State& state) {
  Rng rng(2);
  Tensor a = Tensor::Randn({64, 100, 24}, rng);
  Tensor b = Tensor::Randn({64, 24, 100}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchedMatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul);

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(3);
  Tensor t = Tensor::Randn({512, 100}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxLastDim(t));
  }
}
BENCHMARK(BM_SoftmaxLastDim);

void BM_Conv1d(benchmark::State& state) {
  Rng rng(4);
  Tensor x = Tensor::Randn({8, 16, 100}, rng);
  Tensor w = Tensor::Randn({16, 16, 5}, rng);
  Tensor bias = Tensor::Randn({16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv1d(x, w, bias, 2));
  }
}
BENCHMARK(BM_Conv1d);

void BM_AttentionForward(benchmark::State& state) {
  Rng rng(5);
  nn::MultiHeadSelfAttention attn(32, 4, rng);
  Tensor x = Tensor::Randn({8, 100, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(nn::Var(x)).value());
  }
}
BENCHMARK(BM_AttentionForward);

void BM_TransformerLayerTrainStep(benchmark::State& state) {
  Rng rng(6);
  nn::TransformerEncoderLayer layer(32, 4, 64, rng);
  Tensor x = Tensor::Randn({8, 100, 32}, rng);
  Tensor target = Tensor::Randn({8, 100, 32}, rng);
  for (auto _ : state) {
    nn::Var out = layer.Forward(nn::Var(x));
    nn::Var loss = nn::MseLossV(out, target);
    nn::Backward(loss);
    for (nn::Var& p : layer.Parameters()) p.ClearGrad();
  }
}
BENCHMARK(BM_TransformerLayerTrainStep);

void BM_DiffusionQSample(benchmark::State& state) {
  ScheduleConfig config;
  config.num_steps = 50;
  GaussianDiffusion diffusion(config);
  Rng rng(7);
  Tensor x0 = Tensor::Randn({16, 8, 100}, rng);
  int t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(diffusion.QSample(x0, t % 50, rng, nullptr));
    ++t;
  }
}
BENCHMARK(BM_DiffusionQSample);

void BM_ImTransformerForward(benchmark::State& state) {
  ImTransformerConfig config;
  config.num_features = 8;
  config.window = 100;
  config.hidden = 24;
  config.num_blocks = 2;
  config.num_heads = 1;
  config.ff_dim = 48;
  config.step_embed_dim = 32;
  config.side_dim = 16;
  config.num_diffusion_steps = 16;
  Rng rng(8);
  ImTransformer model(config, rng);
  Tensor x = Tensor::Randn({8, 8, 100}, rng);
  Tensor ref = Tensor::Randn({8, 8, 100}, rng);
  Tensor mask = MakeGratingMask(8, 100, 5, 0);
  Tensor mask_b({8, 8, 100});
  for (int64_t b = 0; b < 8; ++b) {
    std::copy_n(mask.data(), mask.numel(),
                mask_b.mutable_data() + b * mask.numel());
  }
  std::vector<int64_t> policies(8, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x, ref, mask_b, 5, policies).value());
  }
}
BENCHMARK(BM_ImTransformerForward);

void BM_GratingMask(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeGratingMask(16, 100, 5, 0));
  }
}
BENCHMARK(BM_GratingMask);

// ---- Serial vs compute-pool comparisons ------------------------------------
//
// Arg(0) is the compute-pool thread count (1 = exact serial execution). The
// parallel kernels write disjoint output slices, so every thread count
// produces bitwise-identical results; compare the Arg(1) and Arg(4) rows for
// the speedup. On a machine with a single usable core the rows coincide.

void BM_MatMulPool(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  const int64_t n = state.range(1);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  SetComputeThreads(1);
}
BENCHMARK(BM_MatMulPool)
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({4, 256})
    ->Args({1, 512})
    ->Args({4, 512})
    ->UseRealTime();

void BM_Conv1dPool(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  Rng rng(4);
  Tensor x = Tensor::Randn({32, 16, 400}, rng);
  Tensor w = Tensor::Randn({16, 16, 5}, rng);
  Tensor bias = Tensor::Randn({16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv1d(x, w, bias, 2));
  }
  SetComputeThreads(1);
}
BENCHMARK(BM_Conv1dPool)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_BatchedMatMulPool(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  Rng rng(2);
  Tensor a = Tensor::Randn({64, 100, 24}, rng);
  Tensor b = Tensor::Randn({64, 24, 100}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchedMatMul(a, b));
  }
  SetComputeThreads(1);
}
BENCHMARK(BM_BatchedMatMulPool)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// End-to-end ImDiffusion inference (reverse-diffusion imputation over all test
// windows) with the chunk-level parallel loop on N threads. Fit runs once,
// outside timing.
void BM_ImDiffusionInference(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  ImDiffusionConfig config = FastImDiffusionConfig();
  config.epochs = 2;  // the benchmark times Run, not Fit
  config.seed = 17;
  SyntheticConfig signal;
  signal.length = 1200;
  signal.dims = 5;
  Rng rng(9);
  Tensor series = GenerateCleanSeries(signal, rng);
  Tensor train({600, 5});
  Tensor test({600, 5});
  std::copy_n(series.data(), 600 * 5, train.mutable_data());
  std::copy_n(series.data() + 600 * 5, 600 * 5, test.mutable_data());
  ImDiffusionDetector detector(config);
  detector.Fit(train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Run(test));
  }
  state.SetItemsProcessed(state.iterations() * test.dim(0));
  SetComputeThreads(1);
}
BENCHMARK(BM_ImDiffusionInference)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- Kernel comparison snapshot (--kernels-out) -----------------------------

struct KernelRow {
  std::string kernel;
  std::string variant;
  double seconds_per_op = 0.0;
  double gflops = 0.0;  // 0 when flops aren't meaningful for the row
  // Bandwidth for memory-bound rows (bytes touched / seconds): the comparable
  // throughput for kernels whose flops are not the limiting resource, where
  // gflops reads 0.000.
  double gbps = 0.0;
  double allocs_per_op = 0.0;
};

// Runs fn repeatedly until ~100ms elapse (3 repetitions, best wall time per
// op) and samples arena misses across the timed runs. `flops` drives the
// gflops column (compute-bound rows); `bytes` drives GB/s (bandwidth-bound
// rows); pass 0 for whichever is not meaningful.
template <typename Fn>
KernelRow MeasureKernel(const std::string& kernel, int variant, double flops,
                        double bytes, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  ApplyVariant(variant);
  fn();  // warmup: populate free lists, fault pages
  double best = 1e300;
  int64_t total_iters = 0;
  const Arena::Stats before = Arena::Global().stats();
  for (int rep = 0; rep < 3; ++rep) {
    int64_t iters = 1;
    for (;;) {
      const auto t0 = Clock::now();
      for (int64_t i = 0; i < iters; ++i) fn();
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (elapsed >= 0.1 || iters >= (int64_t{1} << 30)) {
        best = std::min(best, elapsed / static_cast<double>(iters));
        total_iters += iters;
        break;
      }
      iters *= 4;
    }
  }
  const Arena::Stats after = Arena::Global().stats();
  ResetVariant();
  KernelRow row;
  row.kernel = kernel;
  row.variant = VariantName(variant);
  row.seconds_per_op = best;
  row.gflops = flops > 0.0 ? flops / best * 1e-9 : 0.0;
  row.gbps = bytes > 0.0 ? bytes / best * 1e-9 : 0.0;
  row.allocs_per_op = static_cast<double>(after.misses - before.misses) /
                      static_cast<double>(total_iters);
  return row;
}

void AppendRowJson(std::string& out, const KernelRow& row, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"kernel\": \"%s\", \"variant\": \"%s\", "
                "\"seconds_per_op\": %.6e, \"gflops\": %.3f, "
                "\"gbps\": %.3f, \"allocs_per_op\": %.3f}%s\n",
                row.kernel.c_str(), row.variant.c_str(), row.seconds_per_op,
                row.gflops, row.gbps, row.allocs_per_op, last ? "" : ",");
  out += buf;
}

// Measures the kernel layer (scalar vs SIMD vs arena-off) plus one
// reverse-diffusion inference row per arena mode, and writes machine-readable
// JSON. The matmul row uses the transformer projection shape; its
// scalar->simd speedup is the headline number (expected >= 2x on AVX2).
int RunKernelBench(const std::string& path) {
  std::vector<KernelRow> rows;

  {
    Rng rng(1);
    Tensor a = Tensor::Randn({kTfM, kTfK}, rng);
    Tensor b = Tensor::Randn({kTfK, kTfN}, rng);
    const double flops = 2.0 * kTfM * kTfK * kTfN;
    char name[64];
    std::snprintf(name, sizeof(name), "matmul_%ldx%ldx%ld",
                  static_cast<long>(kTfM), static_cast<long>(kTfK),
                  static_cast<long>(kTfN));
    for (int v : {kScalar, kSimd, kSimdArenaOff}) {
      rows.push_back(MeasureKernel(name, v, flops, 0.0,
                                   [&] { benchmark::DoNotOptimize(MatMul(a, b)); }));
    }
  }

  // Reduced-precision weight GEMMs (DESIGN.md §17) at the same transformer
  // projection shape, weights prepacked per precision exactly as a graph
  // capture does. The per-row activation quantization runs inside the timed
  // region (it runs per call in production too). The fp32 row uses the
  // identical prepacked-panel call (gemm::GemmRowsPrepacked), so the
  // bf16/int8 ratios isolate the arithmetic, not the packing strategy.
  {
    Rng rng(11);
    Tensor a = Tensor::Randn({kTfM, kTfK}, rng);
    Tensor b = Tensor::Randn({kTfK, kTfN}, rng);
    Tensor c = Tensor::Uninitialized({kTfM, kTfN});
    const double flops = 2.0 * kTfM * kTfK * kTfN;
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), "%ldx%ldx%ld",
                  static_cast<long>(kTfM), static_cast<long>(kTfK),
                  static_cast<long>(kTfN));
#if defined(IMDIFF_SIMD_ANY)
    {
      std::vector<float> packed(gemm::PackedBFloats(kTfK, kTfN));
      gemm::PackBFull(b.data(), kTfK, kTfN, false, packed.data());
      rows.push_back(MeasureKernel(std::string("gemm_fp32_prepacked_") + suffix,
                                   kSimd, flops, 0.0, [&] {
        gemm::GemmRowsPrepacked(a.data(), packed.data(), c.mutable_data(),
                                kTfM, kTfK, kTfN, 0, kTfM);
        benchmark::DoNotOptimize(c.mutable_data());
      }));
    }
#endif
    quant::PackedBf16 pb;
    quant::PackBf16(b.data(), kTfK, kTfN, false, &pb);
    for (int v : {kScalar, kSimd}) {
      rows.push_back(MeasureKernel(std::string("gemm_bf16_prepacked_") + suffix,
                                   v, flops, 0.0, [&] {
        quant::GemmRowsBf16(a.data(), pb, c.mutable_data(), kTfK, kTfN, 0,
                            kTfM);
        benchmark::DoNotOptimize(c.mutable_data());
      }));
    }
    quant::PackedInt8 pi;
    quant::PackInt8(b.data(), kTfK, kTfN, false, &pi);
    for (int v : {kScalar, kSimd}) {
      rows.push_back(MeasureKernel(std::string("gemm_int8_prepacked_") + suffix,
                                   v, flops, 0.0, [&] {
        quant::GemmRowsInt8(a.data(), pi, c.mutable_data(), kTfK, kTfN, 0,
                            kTfM);
        benchmark::DoNotOptimize(c.mutable_data());
      }));
    }
    // Pack overhead: paid once per weight per graph capture (never per
    // call), reported as bandwidth over the fp32 weight bytes read.
    const double pack_bytes = static_cast<double>(kTfK) * kTfN * 4.0;
    rows.push_back(MeasureKernel("pack_bf16_64x64", kSimd, 0.0, pack_bytes,
                                 [&] {
      quant::PackBf16(b.data(), kTfK, kTfN, false, &pb);
      benchmark::DoNotOptimize(pb.data.data());
    }));
    rows.push_back(MeasureKernel("pack_int8_64x64", kSimd, 0.0, pack_bytes,
                                 [&] {
      quant::PackInt8(b.data(), kTfK, kTfN, false, &pi);
      benchmark::DoNotOptimize(pi.data.data());
    }));
  }

  {
    Rng rng(3);
    Tensor t = Tensor::Randn({512, 100}, rng);
    const double bytes = 2.0 * 512 * 100 * 4;  // read + write
    for (int v : {kScalar, kSimd}) {
      rows.push_back(MeasureKernel("softmax_512x100", v, 0.0, bytes, [&] {
        benchmark::DoNotOptimize(SoftmaxLastDim(t));
      }));
    }
  }
  {
    Rng rng(5);
    Tensor t = Tensor::Randn({80000}, rng);
    const double bytes = 2.0 * 80000 * 4;  // read + write
    for (int v : {kScalar, kSimd}) {
      rows.push_back(MeasureKernel("gelu_80000", v, 0.0, bytes, [&] {
        benchmark::DoNotOptimize(GeluForward(t));
      }));
    }
  }
  {
    Rng rng(6);
    Tensor x = Tensor::Randn({4, 128}, rng);
    Tensor gamma = Tensor::Randn({128}, rng);
    Tensor beta = Tensor::Randn({128}, rng);
    // x read, y and the normalized intermediate written, gamma/beta/inv-std
    // small against those.
    const double bytes = 3.0 * 4 * 128 * 4;
    for (int v : {kScalar, kSimd}) {
      rows.push_back(MeasureKernel("layernorm_4x128", v, 0.0, bytes, [&] {
        Tensor y, h, is;
        LayerNormForward(x, gamma, beta, 1e-5f, &y, &h, &is);
        benchmark::DoNotOptimize(y);
      }));
    }
  }

  // Reverse-diffusion inference: the allocations/op row the arena targets.
  // One op = scoring the full test split (every window x every denoising
  // step); compare allocs/op between the arena-off and arena-on variants.
  {
    ImDiffusionConfig config = FastImDiffusionConfig();
    config.epochs = 2;
    config.seed = 17;
    SyntheticConfig signal;
    signal.length = 900;
    signal.dims = 4;
    Rng rng(9);
    Tensor series = GenerateCleanSeries(signal, rng);
    Tensor train = Tensor::Uninitialized({600, 4});
    Tensor test = Tensor::Uninitialized({300, 4});
    std::copy_n(series.data(), 600 * 4, train.mutable_data());
    std::copy_n(series.data() + 600 * 4, 300 * 4, test.mutable_data());
    ImDiffusionDetector detector(config);
    detector.Fit(train);
    for (int v : {kSimdArenaOff, kSimd}) {
      ApplyVariant(v);
      detector.Run(test);  // warmup under this arena mode
      const Arena::Stats before = Arena::Global().stats();
      const auto t0 = std::chrono::steady_clock::now();
      detector.Run(test);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const Arena::Stats after = Arena::Global().stats();
      ResetVariant();
      KernelRow row;
      row.kernel = "reverse_diffusion_run_300x4";
      row.variant = VariantName(v);
      row.seconds_per_op = elapsed;
      row.allocs_per_op = static_cast<double>(after.misses - before.misses);
      rows.push_back(row);
    }

    // Per-block steady-state scoring: the captured graph executor (src/graph)
    // vs the autograd layer stack. One op = one seeded ScoreWindowBatch over
    // a chunk of `infer_batch` windows. Unlike the other rows, allocs_per_op
    // here counts *all* arena free-list requests (hits + misses): a warm
    // captured graph runs entirely inside its static plan, so its row must
    // read exactly zero.
    {
      const ImDiffusionDetector::WindowPlan plan = detector.PlanWindows(series);
      const Tensor& all = plan.windows;
      const int64_t nb = std::min<int64_t>(config.infer_batch, all.dim(0));
      Tensor chunk =
          Tensor::Uninitialized({nb, all.dim(1), all.dim(2)});
      std::copy_n(all.data(), nb * all.dim(1) * all.dim(2),
                  chunk.mutable_data());
      std::vector<uint64_t> seeds(static_cast<size_t>(nb));
      for (int64_t i = 0; i < nb; ++i) {
        seeds[static_cast<size_t>(i)] = MixSeed(42, static_cast<uint64_t>(i));
      }
      char name[64];
      std::snprintf(name, sizeof(name), "block_score_%ldw",
                    static_cast<long>(nb));
      const struct {
        const char* variant;
        bool graph;
      } modes[] = {{"stack", false}, {"graph", true}};
      for (const auto& mode : modes) {
        graph::SetGraphEnabled(mode.graph);
        ApplyVariant(kSimd);
        // Warmup: the first graph call captures and validates; the second is
        // the steady state being measured.
        detector.ScoreWindowBatch(chunk, seeds, 0);
        detector.ScoreWindowBatch(chunk, seeds, 0);
        const Arena::Stats before = Arena::Global().stats();
        double best = 1e300;
        int64_t total_iters = 0;
        for (int rep = 0; rep < 3; ++rep) {
          int64_t iters = 1;
          for (;;) {
            const auto t0 = std::chrono::steady_clock::now();
            for (int64_t i = 0; i < iters; ++i) {
              benchmark::DoNotOptimize(
                  detector.ScoreWindowBatch(chunk, seeds, 0));
            }
            const double elapsed = std::chrono::duration<double>(
                                       std::chrono::steady_clock::now() - t0)
                                       .count();
            if (elapsed >= 0.1 || iters >= (int64_t{1} << 20)) {
              best = std::min(best, elapsed / static_cast<double>(iters));
              total_iters += iters;
              break;
            }
            iters *= 4;
          }
        }
        const Arena::Stats after = Arena::Global().stats();
        ResetVariant();
        graph::SetGraphEnabled(true);
        KernelRow row;
        row.kernel = name;
        row.variant = mode.variant;
        row.seconds_per_op = best;
        row.allocs_per_op =
            static_cast<double>((after.hits - before.hits) +
                                (after.misses - before.misses)) /
            static_cast<double>(total_iters);
        rows.push_back(row);
      }
    }
  }

  double scalar_s = 0.0, simd_s = 0.0;
  double fp32_pre_s = 0.0, bf16_s = 0.0, int8_s = 0.0;
  double rd_allocs_off = 0.0, rd_allocs_on = 0.0;
  double bs_stack_s = 0.0, bs_graph_s = 0.0, bs_graph_arena = 0.0;
  for (const KernelRow& r : rows) {
    if (r.kernel.rfind("matmul_", 0) == 0 && r.variant == "scalar")
      scalar_s = r.seconds_per_op;
    if (r.kernel.rfind("matmul_", 0) == 0 && r.variant == "simd")
      simd_s = r.seconds_per_op;
    if (r.variant == "simd") {
      if (r.kernel.rfind("gemm_fp32_prepacked_", 0) == 0)
        fp32_pre_s = r.seconds_per_op;
      if (r.kernel.rfind("gemm_bf16_prepacked_", 0) == 0)
        bf16_s = r.seconds_per_op;
      if (r.kernel.rfind("gemm_int8_prepacked_", 0) == 0)
        int8_s = r.seconds_per_op;
    }
    if (r.kernel.rfind("reverse_diffusion", 0) == 0) {
      if (r.variant == "simd_arena_off") rd_allocs_off = r.allocs_per_op;
      if (r.variant == "simd") rd_allocs_on = r.allocs_per_op;
    }
    if (r.kernel.rfind("block_score", 0) == 0) {
      if (r.variant == "stack") bs_stack_s = r.seconds_per_op;
      if (r.variant == "graph") {
        bs_graph_s = r.seconds_per_op;
        bs_graph_arena = r.allocs_per_op;
      }
    }
  }

  std::string out = "{\n";
  out += "  \"isa\": \"";
  out += simd::IsaName();
  out += "\",\n";
  out += "  \"vector_width\": ";
  out += std::to_string(simd::kVectorWidth);
  out += ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    AppendRowJson(out, rows[i], i + 1 == rows.size());
  }
  out += "  ],\n  \"summary\": {\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    \"matmul_simd_speedup\": %.2f,\n"
                "    \"matmul_bf16_speedup\": %.2f,\n"
                "    \"matmul_int8_speedup\": %.2f,\n"
                "    \"reverse_diffusion_allocs_arena_off\": %.0f,\n"
                "    \"reverse_diffusion_allocs_arena_on\": %.0f,\n"
                "    \"block_score_graph_speedup\": %.2f,\n"
                "    \"block_score_graph_arena_ops\": %.0f\n",
                simd_s > 0.0 ? scalar_s / simd_s : 0.0,
                bf16_s > 0.0 ? fp32_pre_s / bf16_s : 0.0,
                int8_s > 0.0 ? fp32_pre_s / int8_s : 0.0, rd_allocs_off,
                rd_allocs_on, bs_graph_s > 0.0 ? bs_stack_s / bs_graph_s : 0.0,
                bs_graph_arena);
  out += buf;
  out += "  }\n}\n";

  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "failed to write kernel snapshot to %s\n",
                 path.c_str());
    return 1;
  }
  f << out;
  std::printf("%s", out.c_str());
  std::printf("kernel snapshot written to %s\n", path.c_str());
  return 0;
}

// Exercises every instrumented phase once — training epochs, the reverse-
// diffusion steps and window scoring of ImDiffusion inference, online block
// scoring, and the thread-pool task path — then writes the registry snapshot.
int RunMetricsSnapshot(const std::string& path) {
  SetComputeThreads(4);  // make the pool.* instruments load-bearing

  SyntheticConfig signal;
  signal.length = 700;
  signal.dims = 4;
  Rng rng(9);
  Tensor series = GenerateCleanSeries(signal, rng);
  Tensor train({400, 4});
  Tensor test({300, 4});
  std::copy_n(series.data(), 400 * 4, train.mutable_data());
  std::copy_n(series.data() + 400 * 4, 300 * 4, test.mutable_data());

  ImDiffusionConfig config = FastImDiffusionConfig();
  config.epochs = 3;
  config.seed = 17;
  ImDiffusionDetector detector(config);
  detector.Fit(train);  // train.* histograms
  detector.Run(test);   // diffusion.step / detector.window_score histograms

  // Online block scoring (the paper's §6 timeliness signal).
  LstmAdConfig lstm;
  lstm.epochs = 2;
  LstmAdDetector online_base(lstm);
  OnlineDetector::Options online_options;
  online_options.block = 25;
  online_options.context = 25;
  OnlineDetector online(&online_base, online_options);
  online.Fit(train);
  std::vector<float> sample(4);
  for (int64_t t = 0; t < 100; ++t) {
    for (int64_t k = 0; k < 4; ++k) sample[static_cast<size_t>(k)] = test.at(t, k);
    online.Append(sample);
  }

  SetComputeThreads(1);
  if (!WriteMetricsJson(path)) {
    std::fprintf(stderr, "failed to write metrics snapshot to %s\n",
                 path.c_str());
    return 1;
  }
  std::printf("metrics snapshot written to %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace imdiff

// Custom main instead of BENCHMARK_MAIN: --metrics-out / --kernels-out must be
// stripped before benchmark::Initialize, which rejects unknown flags.
int main(int argc, char** argv) {
  std::string metrics_out;
  std::string kernels_out;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--kernels-out") == 0 && i + 1 < argc) {
      kernels_out = argv[++i];
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  // Validate output paths up front: a kernel sweep takes minutes, and an
  // unwritable path should not eat the run.
  for (const std::string& path : {metrics_out, kernels_out}) {
    if (!path.empty() && !imdiff::ProbeWritable(path)) {
      std::fprintf(stderr, "output path is not writable: %s\n", path.c_str());
      return 1;
    }
  }
  if (!kernels_out.empty()) return imdiff::RunKernelBench(kernels_out);
  if (!metrics_out.empty()) return imdiff::RunMetricsSnapshot(metrics_out);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
