// google-benchmark micro-benchmarks for the substrate: tensor kernels,
// attention, diffusion steps, and end-to-end ImTransformer inference.
//
// Snapshot mode: `bench_micro --metrics-out <path>` skips the benchmark
// suite and instead runs a small end-to-end workload (ImDiffusion train +
// inference, online block scoring, parallel kernels) that exercises every
// instrumented phase, then dumps the metrics registry as JSON. This is the
// machine-readable perf snapshot the BENCH_*.json trajectory builds on.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/lstm_ad.h"
#include "core/im_transformer.h"
#include "core/imdiffusion.h"
#include "core/masking.h"
#include "core/online_detector.h"
#include "data/synthetic.h"
#include "diffusion/ddpm.h"
#include "nn/attention.h"
#include "tensor/tensor_ops.h"
#include "utils/metrics.h"
#include "utils/rng.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_BatchedMatMul(benchmark::State& state) {
  Rng rng(2);
  Tensor a = Tensor::Randn({64, 100, 24}, rng);
  Tensor b = Tensor::Randn({64, 24, 100}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchedMatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul);

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(3);
  Tensor t = Tensor::Randn({512, 100}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxLastDim(t));
  }
}
BENCHMARK(BM_SoftmaxLastDim);

void BM_Conv1d(benchmark::State& state) {
  Rng rng(4);
  Tensor x = Tensor::Randn({8, 16, 100}, rng);
  Tensor w = Tensor::Randn({16, 16, 5}, rng);
  Tensor bias = Tensor::Randn({16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv1d(x, w, bias, 2));
  }
}
BENCHMARK(BM_Conv1d);

void BM_AttentionForward(benchmark::State& state) {
  Rng rng(5);
  nn::MultiHeadSelfAttention attn(32, 4, rng);
  Tensor x = Tensor::Randn({8, 100, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(nn::Var(x)).value());
  }
}
BENCHMARK(BM_AttentionForward);

void BM_TransformerLayerTrainStep(benchmark::State& state) {
  Rng rng(6);
  nn::TransformerEncoderLayer layer(32, 4, 64, rng);
  Tensor x = Tensor::Randn({8, 100, 32}, rng);
  Tensor target = Tensor::Randn({8, 100, 32}, rng);
  for (auto _ : state) {
    nn::Var out = layer.Forward(nn::Var(x));
    nn::Var loss = nn::MseLossV(out, target);
    nn::Backward(loss);
    for (nn::Var& p : layer.Parameters()) p.ClearGrad();
  }
}
BENCHMARK(BM_TransformerLayerTrainStep);

void BM_DiffusionQSample(benchmark::State& state) {
  ScheduleConfig config;
  config.num_steps = 50;
  GaussianDiffusion diffusion(config);
  Rng rng(7);
  Tensor x0 = Tensor::Randn({16, 8, 100}, rng);
  int t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(diffusion.QSample(x0, t % 50, rng, nullptr));
    ++t;
  }
}
BENCHMARK(BM_DiffusionQSample);

void BM_ImTransformerForward(benchmark::State& state) {
  ImTransformerConfig config;
  config.num_features = 8;
  config.window = 100;
  config.hidden = 24;
  config.num_blocks = 2;
  config.num_heads = 1;
  config.ff_dim = 48;
  config.step_embed_dim = 32;
  config.side_dim = 16;
  config.num_diffusion_steps = 16;
  Rng rng(8);
  ImTransformer model(config, rng);
  Tensor x = Tensor::Randn({8, 8, 100}, rng);
  Tensor ref = Tensor::Randn({8, 8, 100}, rng);
  Tensor mask = MakeGratingMask(8, 100, 5, 0);
  Tensor mask_b({8, 8, 100});
  for (int64_t b = 0; b < 8; ++b) {
    std::copy_n(mask.data(), mask.numel(),
                mask_b.mutable_data() + b * mask.numel());
  }
  std::vector<int64_t> policies(8, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x, ref, mask_b, 5, policies).value());
  }
}
BENCHMARK(BM_ImTransformerForward);

void BM_GratingMask(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeGratingMask(16, 100, 5, 0));
  }
}
BENCHMARK(BM_GratingMask);

// ---- Serial vs compute-pool comparisons ------------------------------------
//
// Arg(0) is the compute-pool thread count (1 = exact serial execution). The
// parallel kernels write disjoint output slices, so every thread count
// produces bitwise-identical results; compare the Arg(1) and Arg(4) rows for
// the speedup. On a machine with a single usable core the rows coincide.

void BM_MatMulPool(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  const int64_t n = state.range(1);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  SetComputeThreads(1);
}
BENCHMARK(BM_MatMulPool)
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({4, 256})
    ->Args({1, 512})
    ->Args({4, 512})
    ->UseRealTime();

void BM_Conv1dPool(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  Rng rng(4);
  Tensor x = Tensor::Randn({32, 16, 400}, rng);
  Tensor w = Tensor::Randn({16, 16, 5}, rng);
  Tensor bias = Tensor::Randn({16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv1d(x, w, bias, 2));
  }
  SetComputeThreads(1);
}
BENCHMARK(BM_Conv1dPool)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_BatchedMatMulPool(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  Rng rng(2);
  Tensor a = Tensor::Randn({64, 100, 24}, rng);
  Tensor b = Tensor::Randn({64, 24, 100}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchedMatMul(a, b));
  }
  SetComputeThreads(1);
}
BENCHMARK(BM_BatchedMatMulPool)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// End-to-end ImDiffusion inference (reverse-diffusion imputation over all test
// windows) with the chunk-level parallel loop on N threads. Fit runs once,
// outside timing.
void BM_ImDiffusionInference(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  ImDiffusionConfig config = FastImDiffusionConfig();
  config.epochs = 2;  // the benchmark times Run, not Fit
  config.seed = 17;
  SyntheticConfig signal;
  signal.length = 1200;
  signal.dims = 5;
  Rng rng(9);
  Tensor series = GenerateCleanSeries(signal, rng);
  Tensor train({600, 5});
  Tensor test({600, 5});
  std::copy_n(series.data(), 600 * 5, train.mutable_data());
  std::copy_n(series.data() + 600 * 5, 600 * 5, test.mutable_data());
  ImDiffusionDetector detector(config);
  detector.Fit(train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Run(test));
  }
  state.SetItemsProcessed(state.iterations() * test.dim(0));
  SetComputeThreads(1);
}
BENCHMARK(BM_ImDiffusionInference)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Exercises every instrumented phase once — training epochs, the reverse-
// diffusion steps and window scoring of ImDiffusion inference, online block
// scoring, and the thread-pool task path — then writes the registry snapshot.
int RunMetricsSnapshot(const std::string& path) {
  SetComputeThreads(4);  // make the pool.* instruments load-bearing

  SyntheticConfig signal;
  signal.length = 700;
  signal.dims = 4;
  Rng rng(9);
  Tensor series = GenerateCleanSeries(signal, rng);
  Tensor train({400, 4});
  Tensor test({300, 4});
  std::copy_n(series.data(), 400 * 4, train.mutable_data());
  std::copy_n(series.data() + 400 * 4, 300 * 4, test.mutable_data());

  ImDiffusionConfig config = FastImDiffusionConfig();
  config.epochs = 3;
  config.seed = 17;
  ImDiffusionDetector detector(config);
  detector.Fit(train);  // train.* histograms
  detector.Run(test);   // diffusion.step / detector.window_score histograms

  // Online block scoring (the paper's §6 timeliness signal).
  LstmAdConfig lstm;
  lstm.epochs = 2;
  LstmAdDetector online_base(lstm);
  OnlineDetector::Options online_options;
  online_options.block = 25;
  online_options.context = 25;
  OnlineDetector online(&online_base, online_options);
  online.Fit(train);
  std::vector<float> sample(4);
  for (int64_t t = 0; t < 100; ++t) {
    for (int64_t k = 0; k < 4; ++k) sample[static_cast<size_t>(k)] = test.at(t, k);
    online.Append(sample);
  }

  SetComputeThreads(1);
  if (!WriteMetricsJson(path)) {
    std::fprintf(stderr, "failed to write metrics snapshot to %s\n",
                 path.c_str());
    return 1;
  }
  std::printf("metrics snapshot written to %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace imdiff

// Custom main instead of BENCHMARK_MAIN: --metrics-out must be stripped
// before benchmark::Initialize, which rejects unknown flags.
int main(int argc, char** argv) {
  std::string metrics_out;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  if (!metrics_out.empty()) return imdiff::RunMetricsSnapshot(metrics_out);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
