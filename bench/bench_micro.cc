// google-benchmark micro-benchmarks for the substrate: tensor kernels,
// attention, diffusion steps, and end-to-end ImTransformer inference.

#include <benchmark/benchmark.h>

#include "core/im_transformer.h"
#include "core/imdiffusion.h"
#include "core/masking.h"
#include "data/synthetic.h"
#include "diffusion/ddpm.h"
#include "nn/attention.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_BatchedMatMul(benchmark::State& state) {
  Rng rng(2);
  Tensor a = Tensor::Randn({64, 100, 24}, rng);
  Tensor b = Tensor::Randn({64, 24, 100}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchedMatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul);

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(3);
  Tensor t = Tensor::Randn({512, 100}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxLastDim(t));
  }
}
BENCHMARK(BM_SoftmaxLastDim);

void BM_Conv1d(benchmark::State& state) {
  Rng rng(4);
  Tensor x = Tensor::Randn({8, 16, 100}, rng);
  Tensor w = Tensor::Randn({16, 16, 5}, rng);
  Tensor bias = Tensor::Randn({16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv1d(x, w, bias, 2));
  }
}
BENCHMARK(BM_Conv1d);

void BM_AttentionForward(benchmark::State& state) {
  Rng rng(5);
  nn::MultiHeadSelfAttention attn(32, 4, rng);
  Tensor x = Tensor::Randn({8, 100, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(nn::Var(x)).value());
  }
}
BENCHMARK(BM_AttentionForward);

void BM_TransformerLayerTrainStep(benchmark::State& state) {
  Rng rng(6);
  nn::TransformerEncoderLayer layer(32, 4, 64, rng);
  Tensor x = Tensor::Randn({8, 100, 32}, rng);
  Tensor target = Tensor::Randn({8, 100, 32}, rng);
  for (auto _ : state) {
    nn::Var out = layer.Forward(nn::Var(x));
    nn::Var loss = nn::MseLossV(out, target);
    nn::Backward(loss);
    for (nn::Var& p : layer.Parameters()) p.ClearGrad();
  }
}
BENCHMARK(BM_TransformerLayerTrainStep);

void BM_DiffusionQSample(benchmark::State& state) {
  ScheduleConfig config;
  config.num_steps = 50;
  GaussianDiffusion diffusion(config);
  Rng rng(7);
  Tensor x0 = Tensor::Randn({16, 8, 100}, rng);
  int t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(diffusion.QSample(x0, t % 50, rng, nullptr));
    ++t;
  }
}
BENCHMARK(BM_DiffusionQSample);

void BM_ImTransformerForward(benchmark::State& state) {
  ImTransformerConfig config;
  config.num_features = 8;
  config.window = 100;
  config.hidden = 24;
  config.num_blocks = 2;
  config.num_heads = 1;
  config.ff_dim = 48;
  config.step_embed_dim = 32;
  config.side_dim = 16;
  config.num_diffusion_steps = 16;
  Rng rng(8);
  ImTransformer model(config, rng);
  Tensor x = Tensor::Randn({8, 8, 100}, rng);
  Tensor ref = Tensor::Randn({8, 8, 100}, rng);
  Tensor mask = MakeGratingMask(8, 100, 5, 0);
  Tensor mask_b({8, 8, 100});
  for (int64_t b = 0; b < 8; ++b) {
    std::copy_n(mask.data(), mask.numel(),
                mask_b.mutable_data() + b * mask.numel());
  }
  std::vector<int64_t> policies(8, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x, ref, mask_b, 5, policies).value());
  }
}
BENCHMARK(BM_ImTransformerForward);

void BM_GratingMask(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeGratingMask(16, 100, 5, 0));
  }
}
BENCHMARK(BM_GratingMask);

// ---- Serial vs compute-pool comparisons ------------------------------------
//
// Arg(0) is the compute-pool thread count (1 = exact serial execution). The
// parallel kernels write disjoint output slices, so every thread count
// produces bitwise-identical results; compare the Arg(1) and Arg(4) rows for
// the speedup. On a machine with a single usable core the rows coincide.

void BM_MatMulPool(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  const int64_t n = state.range(1);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  SetComputeThreads(1);
}
BENCHMARK(BM_MatMulPool)
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({4, 256})
    ->Args({1, 512})
    ->Args({4, 512})
    ->UseRealTime();

void BM_Conv1dPool(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  Rng rng(4);
  Tensor x = Tensor::Randn({32, 16, 400}, rng);
  Tensor w = Tensor::Randn({16, 16, 5}, rng);
  Tensor bias = Tensor::Randn({16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv1d(x, w, bias, 2));
  }
  SetComputeThreads(1);
}
BENCHMARK(BM_Conv1dPool)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_BatchedMatMulPool(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  Rng rng(2);
  Tensor a = Tensor::Randn({64, 100, 24}, rng);
  Tensor b = Tensor::Randn({64, 24, 100}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchedMatMul(a, b));
  }
  SetComputeThreads(1);
}
BENCHMARK(BM_BatchedMatMulPool)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// End-to-end ImDiffusion inference (reverse-diffusion imputation over all test
// windows) with the chunk-level parallel loop on N threads. Fit runs once,
// outside timing.
void BM_ImDiffusionInference(benchmark::State& state) {
  SetComputeThreads(static_cast<size_t>(state.range(0)));
  ImDiffusionConfig config = FastImDiffusionConfig();
  config.epochs = 2;  // the benchmark times Run, not Fit
  config.seed = 17;
  SyntheticConfig signal;
  signal.length = 1200;
  signal.dims = 5;
  Rng rng(9);
  Tensor series = GenerateCleanSeries(signal, rng);
  Tensor train({600, 5});
  Tensor test({600, 5});
  std::copy_n(series.data(), 600 * 5, train.mutable_data());
  std::copy_n(series.data() + 600 * 5, 600 * 5, test.mutable_data());
  ImDiffusionDetector detector(config);
  detector.Fit(train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Run(test));
  }
  state.SetItemsProcessed(state.iterations() * test.dim(0));
  SetComputeThreads(1);
}
BENCHMARK(BM_ImDiffusionInference)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace imdiff

BENCHMARK_MAIN();
