// Shard worker process for multi-process sharded serving (DESIGN.md §16).
//
// Binds a unix-domain socket, announces its shard id, and serves the
// router <-> worker protocol (net/messages.h) over one StreamServer:
// publish-by-checkpoint, submit, drain barriers, session export/import for
// live resharding, bulk snapshots for the router's recovery stash, health
// and metrics probes. Normally spawned by `serve_replay --shards N` or by
// hand under `imdiff_router`.
//
// The StreamServer options must match the run's single-process baseline for
// bitwise score parity, so the serving flags mirror serve_replay's.
//
// Usage: imdiff_worker --socket PATH [--shard-id N] [--block B] [--context C]
//   [--flush-ms F] [--batch-windows W] [--queue Q] [--workers N]
//   [--max-resident S] [--max-stashed S] [--seed S] [--epochs E]
//   [--deadline-ms D] [--force-degrade L] [--precision {fp32,bf16,int8}]
//   [--refresh-every N] [--refresh-recent N] [--shadow-fraction F]
//   [--verdict-pairs P] [--refresh-psi X] [--refresh-ks X]
//   [--refresh-mean-ratio X] [--refresh-epochs N]
//
// --refresh-every N > 0 enables the continuous-refresh loop (DESIGN.md §18)
// on this shard: every N accepted samples the worker refits a candidate on
// its sessions' recent-sample window, shadow-scores a seeded fraction of
// traffic against it, and auto-promotes on the drift verdict. Each shard
// refreshes independently on its own tenants. Shadow blocks never cross the
// wire; drain results report promotions and shadow-block counts.
//
// Exits 0 on a graceful kShutdown (or channel teardown), 1 when the socket
// path is unusable (stale socket file: fail fast, never clobber), 2 on a
// chaos kCrash.

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/imdiffusion.h"
#include "serve/worker.h"
#include "utils/check.h"

namespace imdiff {
namespace {

int Main(int argc, char** argv) {
  serve::WorkerOptions options;
  options.config = FastImDiffusionConfig();
  // Deterministic single-shard scoring by default: one ingest worker, flushes
  // only at drain barriers (the replay harness overrides via flags).
  options.serve.num_workers = 1;
  uint64_t seed = 42;
  int64_t block = 100;
  int64_t context = 200;
  double flush_ms = 10.0;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) {
      IMDIFF_CHECK(i + 1 < argc) << flag << "needs a value";
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      options.socket_path = next("--socket");
    } else if (std::strcmp(argv[i], "--shard-id") == 0) {
      options.shard_id = std::atoll(next("--shard-id"));
    } else if (std::strcmp(argv[i], "--block") == 0) {
      block = std::atoll(next("--block"));
    } else if (std::strcmp(argv[i], "--context") == 0) {
      context = std::atoll(next("--context"));
    } else if (std::strcmp(argv[i], "--flush-ms") == 0) {
      flush_ms = std::atof(next("--flush-ms"));
    } else if (std::strcmp(argv[i], "--batch-windows") == 0) {
      options.serve.batch.max_batch_windows = std::atoll(next("--batch-windows"));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      options.serve.queue_capacity = std::atoll(next("--queue"));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      options.serve.num_workers = std::atoi(next("--workers"));
    } else if (std::strcmp(argv[i], "--max-resident") == 0) {
      options.serve.session.max_resident = std::atoll(next("--max-resident"));
    } else if (std::strcmp(argv[i], "--max-stashed") == 0) {
      options.serve.session.max_stashed = std::atoll(next("--max-stashed"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      options.config.epochs = std::atoi(next("--epochs"));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      options.serve.deadline_seconds = std::atof(next("--deadline-ms")) / 1000.0;
    } else if (std::strcmp(argv[i], "--force-degrade") == 0) {
      options.serve.force_degrade_level = std::atoi(next("--force-degrade"));
    } else if (std::strcmp(argv[i], "--precision") == 0) {
      Precision p;
      const char* name = next("--precision");
      IMDIFF_CHECK(ParsePrecision(name, &p))
          << "--precision must be fp32, bf16, or int8, got" << name;
      options.serve.force_precision = static_cast<int>(p);
    } else if (std::strcmp(argv[i], "--refresh-every") == 0) {
      options.serve.refresh.refresh_every = std::atoll(next("--refresh-every"));
      options.serve.refresh.enabled = options.serve.refresh.refresh_every > 0;
    } else if (std::strcmp(argv[i], "--refresh-recent") == 0) {
      options.serve.session.refresh_recent =
          std::atoll(next("--refresh-recent"));
    } else if (std::strcmp(argv[i], "--shadow-fraction") == 0) {
      options.serve.refresh.shadow_fraction = std::atof(next("--shadow-fraction"));
    } else if (std::strcmp(argv[i], "--verdict-pairs") == 0) {
      options.serve.refresh.verdict_pairs = std::atoll(next("--verdict-pairs"));
    } else if (std::strcmp(argv[i], "--refresh-psi") == 0) {
      options.serve.refresh.psi_promote = std::atof(next("--refresh-psi"));
    } else if (std::strcmp(argv[i], "--refresh-ks") == 0) {
      options.serve.refresh.ks_promote = std::atof(next("--refresh-ks"));
    } else if (std::strcmp(argv[i], "--refresh-mean-ratio") == 0) {
      options.serve.refresh.mean_ratio_promote =
          std::atof(next("--refresh-mean-ratio"));
    } else if (std::strcmp(argv[i], "--refresh-epochs") == 0) {
      options.serve.refresh.fit_epochs =
          static_cast<int>(std::atoll(next("--refresh-epochs")));
    } else {
      IMDIFF_CHECK(false) << "unknown flag" << argv[i];
    }
  }
  IMDIFF_CHECK(!options.socket_path.empty()) << "--socket is required";
  if (options.serve.refresh.enabled &&
      options.serve.session.refresh_recent <= 0) {
    options.serve.session.refresh_recent = 256;  // match serve_replay default
  }
  options.serve.session.online.block = block;
  options.serve.session.online.context = context;
  options.serve.session.seed_base = seed;
  options.serve.batch.flush_window_seconds = flush_ms / 1000.0;
  return serve::RunShardWorker(options);
}

}  // namespace
}  // namespace imdiff

int main(int argc, char** argv) { return imdiff::Main(argc, argv); }
