// Unix-domain stream sockets for the shard transport (DESIGN.md §16).
//
// Fail-fast is the design center: a worker binding onto a stale socket file
// (a previous run that died without cleanup) or a router dialing a dead path
// must produce a clear error, not a hang. Create() therefore refuses to bind
// over an existing path — the operator (or the spawning harness) removes
// stale files explicitly — and DialUnixRetry bounds its attempts with the
// deterministic-jitter BackoffSchedule from utils/fault.h, so reconnect
// timing is reproducible under a fixed seed.

#ifndef IMDIFF_NET_SOCKET_H_
#define IMDIFF_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "utils/fault.h"

namespace imdiff {
namespace net {

// Listening unix-domain socket bound at `path`. Unlinks the path on Close.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener() { Close(); }
  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  // Binds and listens at `path`. Refuses to clobber an existing file: a
  // stale socket file from a dead worker (or a live worker already bound
  // there) fails fast with a descriptive *error instead of hanging a later
  // connect. Returns false on failure.
  bool Create(const std::string& path, std::string* error);

  // Accepts one connection; -1 on error or after Close (including a
  // concurrent Close from another thread, the shutdown path).
  int Accept();

  void Close();
  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

// One connect attempt; returns the connected fd or -1 (errno holds why).
int DialUnix(const std::string& path);

// Dials with bounded retries on the seeded BackoffSchedule (attempt i sleeps
// schedule[i] before retrying). Covers the worker-spawn race at startup and
// transient drops mid-run; returns -1 when every attempt failed.
int DialUnixRetry(const std::string& path, const BackoffPolicy& policy,
                  uint64_t seed);

// Writes exactly `n` bytes (retrying short writes and EINTR); false on error.
bool SendAll(int fd, const void* data, size_t n);

// Reads exactly `n` bytes; returns the byte count actually read, so a caller
// can distinguish clean EOF at a boundary (0) from a truncated tail (< n).
size_t RecvAll(int fd, void* data, size_t n);

// Validates a directory for socket/output files at startup, in the spirit of
// utils/metrics.h ProbeWritable: creates the final path component when
// missing, then proves writability by creating and removing a probe file.
bool ProbeSocketDir(const std::string& dir, std::string* error);

// True when `path` names an existing filesystem entry.
bool PathExists(const std::string& path);

}  // namespace net
}  // namespace imdiff

#endif  // IMDIFF_NET_SOCKET_H_
