// Bounds-checked binary serialization for the shard transport (DESIGN.md
// §16). Little-endian fixed-width encoding — the shard fleet runs on one
// machine (unix-domain sockets), but an explicit byte order keeps the session
// checkpoint format stable if shards ever move off-host.
//
// WireWriter appends; WireReader consumes and *never* aborts on malformed
// input — every Read returns false past the end, and ok() latches the first
// failure, so a truncated or corrupt frame is a recoverable protocol error
// (drop the connection), not a crash.

#ifndef IMDIFF_NET_WIRE_H_
#define IMDIFF_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace imdiff {
namespace net {

class WireWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F32(float v);
  void F64(double v);
  // Length-prefixed (u32) payloads.
  void Str(const std::string& s);
  void Bytes(const std::vector<uint8_t>& b);
  void FloatVec(const std::vector<float>& v);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I64(int64_t* v);
  bool F32(float* v);
  bool F64(double* v);
  bool Str(std::string* s);
  bool Bytes(std::vector<uint8_t>* b);
  bool FloatVec(std::vector<float>* v);

  // True while every Read so far succeeded AND-ed with "fully consumed" being
  // checked separately via remaining().
  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Take(void* out, size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace net
}  // namespace imdiff

#endif  // IMDIFF_NET_WIRE_H_
