// Length-prefixed binary framing over a stream socket (DESIGN.md §16).
//
// On-wire layout per frame:  u32 payload_length | u8 type | payload bytes.
// The length prefix covers only the payload. ReadFrame distinguishes a clean
// close (EOF exactly at a frame boundary) from a truncated frame (EOF
// mid-frame, e.g. the peer's injected short write): both report kClosed —
// partial frames are DISCARDED, never dispatched — and the sender's
// reconnect-and-resend path makes delivery exactly-once for frames whose
// write completed and at-least-once overall (receivers treat duplicates
// idempotently; see serve/router.h).

#ifndef IMDIFF_NET_FRAME_H_
#define IMDIFF_NET_FRAME_H_

#include <cstdint>
#include <vector>

namespace imdiff {
namespace net {

struct Frame {
  uint8_t type = 0;
  std::vector<uint8_t> payload;
};

// Serializes `frame` into the on-wire byte layout.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

// Writes one frame; false on any socket error (caller reconnects).
bool WriteFrame(int fd, const Frame& frame);

enum class ReadResult {
  kOk,      // one complete frame filled
  kClosed,  // clean EOF, truncated frame, or oversized/corrupt length prefix
};
ReadResult ReadFrame(int fd, Frame* out);

}  // namespace net
}  // namespace imdiff

#endif  // IMDIFF_NET_FRAME_H_
