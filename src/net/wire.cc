#include "net/wire.h"

#include <cstring>

namespace imdiff {
namespace net {
namespace {

// A length prefix larger than this is treated as corruption, not a request
// to allocate: the largest legitimate payload (a snapshot of a full stash)
// stays far below it.
constexpr uint32_t kMaxLength = 1u << 30;

}  // namespace

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::F32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U32(bits);
}

void WireWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void WireWriter::Bytes(const std::vector<uint8_t>& b) {
  U32(static_cast<uint32_t>(b.size()));
  bytes_.insert(bytes_.end(), b.begin(), b.end());
}

void WireWriter::FloatVec(const std::vector<float>& v) {
  U32(static_cast<uint32_t>(v.size()));
  for (float f : v) F32(f);
}

bool WireReader::Take(void* out, size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool WireReader::U8(uint8_t* v) { return Take(v, 1); }

bool WireReader::U32(uint32_t* v) {
  uint8_t raw[4];
  if (!Take(raw, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(raw[i]) << (8 * i);
  return true;
}

bool WireReader::U64(uint64_t* v) {
  uint8_t raw[8];
  if (!Take(raw, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(raw[i]) << (8 * i);
  return true;
}

bool WireReader::I64(int64_t* v) {
  uint64_t u;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool WireReader::F32(float* v) {
  uint32_t bits;
  if (!U32(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool WireReader::F64(double* v) {
  uint64_t bits;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool WireReader::Str(std::string* s) {
  uint32_t n;
  if (!U32(&n) || n > kMaxLength || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

bool WireReader::Bytes(std::vector<uint8_t>* b) {
  uint32_t n;
  if (!U32(&n) || n > kMaxLength || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  b->assign(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return true;
}

bool WireReader::FloatVec(std::vector<float>* v) {
  uint32_t n;
  if (!U32(&n) || n > kMaxLength / 4 || size_ - pos_ < 4 * static_cast<size_t>(n)) {
    ok_ = false;
    return false;
  }
  v->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!F32(&(*v)[i])) return false;
  }
  return true;
}

}  // namespace net
}  // namespace imdiff
