#include "net/messages.h"

#include "net/wire.h"

namespace imdiff {
namespace net {
namespace {

Frame MakeFrame(MsgType type, WireWriter w) {
  Frame f;
  f.type = static_cast<uint8_t>(type);
  f.payload = w.Take();
  return f;
}

// A decode succeeds only when the type matches, every field parsed, and the
// payload was consumed exactly.
bool Finish(const Frame& f, MsgType type, const WireReader& r) {
  return f.type == static_cast<uint8_t>(type) && r.ok() && r.remaining() == 0;
}

void PutBlob(WireWriter& w, const SessionBlob& b) {
  w.Str(b.tenant);
  w.Bytes(b.state);
}

bool GetBlob(WireReader& r, SessionBlob* b) {
  return r.Str(&b->tenant) && r.Bytes(&b->state);
}

}  // namespace

Frame Encode(const HelloMsg& m) {
  WireWriter w;
  w.I64(m.shard_id);
  return MakeFrame(MsgType::kHello, std::move(w));
}

bool Decode(const Frame& f, HelloMsg* m) {
  WireReader r(f.payload);
  r.I64(&m->shard_id);
  return Finish(f, MsgType::kHello, r);
}

Frame Encode(const PublishMsg& m) {
  WireWriter w;
  w.Str(m.name);
  w.Str(m.checkpoint_path);
  w.I64(m.num_features);
  w.U64(m.config_seed);
  w.FloatVec(m.stats_min);
  w.FloatVec(m.stats_max);
  return MakeFrame(MsgType::kPublish, std::move(w));
}

bool Decode(const Frame& f, PublishMsg* m) {
  WireReader r(f.payload);
  r.Str(&m->name);
  r.Str(&m->checkpoint_path);
  r.I64(&m->num_features);
  r.U64(&m->config_seed);
  r.FloatVec(&m->stats_min);
  r.FloatVec(&m->stats_max);
  return Finish(f, MsgType::kPublish, r);
}

Frame Encode(const PublishResultMsg& m) {
  WireWriter w;
  w.I64(m.version);
  return MakeFrame(MsgType::kPublishResult, std::move(w));
}

bool Decode(const Frame& f, PublishResultMsg* m) {
  WireReader r(f.payload);
  r.I64(&m->version);
  return Finish(f, MsgType::kPublishResult, r);
}

Frame Encode(const SubmitMsg& m) {
  WireWriter w;
  w.Str(m.tenant);
  w.FloatVec(m.sample);
  w.Bytes(m.observed);
  return MakeFrame(MsgType::kSubmit, std::move(w));
}

bool Decode(const Frame& f, SubmitMsg* m) {
  WireReader r(f.payload);
  r.Str(&m->tenant);
  r.FloatVec(&m->sample);
  r.Bytes(&m->observed);
  return Finish(f, MsgType::kSubmit, r);
}

Frame Encode(const ScoredBlockMsg& m) {
  WireWriter w;
  w.Str(m.tenant);
  w.I64(m.block_index);
  w.I64(m.start);
  w.I64(m.degrade_level);
  w.I64(m.precision);
  w.F64(m.latency_seconds);
  w.FloatVec(m.scores);
  return MakeFrame(MsgType::kScoredBlock, std::move(w));
}

bool Decode(const Frame& f, ScoredBlockMsg* m) {
  WireReader r(f.payload);
  r.Str(&m->tenant);
  r.I64(&m->block_index);
  r.I64(&m->start);
  r.I64(&m->degrade_level);
  r.I64(&m->precision);
  r.F64(&m->latency_seconds);
  r.FloatVec(&m->scores);
  return Finish(f, MsgType::kScoredBlock, r);
}

Frame Encode(const DrainMsg& m) {
  WireWriter w;
  w.U64(m.token);
  return MakeFrame(MsgType::kDrain, std::move(w));
}

bool Decode(const Frame& f, DrainMsg* m) {
  WireReader r(f.payload);
  r.U64(&m->token);
  return Finish(f, MsgType::kDrain, r);
}

Frame Encode(const DrainResultMsg& m) {
  WireWriter w;
  w.U64(m.token);
  w.I64(m.accepted);
  w.I64(m.shed);
  w.I64(m.alerts);
  w.I64(m.degraded_blocks);
  w.I64(m.precision_drops);
  w.I64(m.promotions);
  w.I64(m.shadow_blocks);
  return MakeFrame(MsgType::kDrainResult, std::move(w));
}

bool Decode(const Frame& f, DrainResultMsg* m) {
  WireReader r(f.payload);
  r.U64(&m->token);
  r.I64(&m->accepted);
  r.I64(&m->shed);
  r.I64(&m->alerts);
  r.I64(&m->degraded_blocks);
  r.I64(&m->precision_drops);
  r.I64(&m->promotions);
  r.I64(&m->shadow_blocks);
  return Finish(f, MsgType::kDrainResult, r);
}

Frame Encode(const ExportStateMsg& m) {
  WireWriter w;
  w.Str(m.tenant);
  return MakeFrame(MsgType::kExportState, std::move(w));
}

bool Decode(const Frame& f, ExportStateMsg* m) {
  WireReader r(f.payload);
  r.Str(&m->tenant);
  return Finish(f, MsgType::kExportState, r);
}

Frame Encode(const ExportResultMsg& m) {
  WireWriter w;
  w.U8(m.found);
  PutBlob(w, m.session);
  return MakeFrame(MsgType::kExportResult, std::move(w));
}

bool Decode(const Frame& f, ExportResultMsg* m) {
  WireReader r(f.payload);
  r.U8(&m->found);
  GetBlob(r, &m->session);
  return Finish(f, MsgType::kExportResult, r);
}

Frame Encode(const ImportStateMsg& m) {
  WireWriter w;
  PutBlob(w, m.session);
  return MakeFrame(MsgType::kImportState, std::move(w));
}

bool Decode(const Frame& f, ImportStateMsg* m) {
  WireReader r(f.payload);
  GetBlob(r, &m->session);
  return Finish(f, MsgType::kImportState, r);
}

Frame Encode(const ImportResultMsg& m) {
  WireWriter w;
  w.U8(m.ok);
  return MakeFrame(MsgType::kImportResult, std::move(w));
}

bool Decode(const Frame& f, ImportResultMsg* m) {
  WireReader r(f.payload);
  r.U8(&m->ok);
  return Finish(f, MsgType::kImportResult, r);
}

Frame Encode(const SnapshotMsg& m) {
  WireWriter w;
  w.U64(m.token);
  return MakeFrame(MsgType::kSnapshot, std::move(w));
}

bool Decode(const Frame& f, SnapshotMsg* m) {
  WireReader r(f.payload);
  r.U64(&m->token);
  return Finish(f, MsgType::kSnapshot, r);
}

Frame Encode(const SnapshotResultMsg& m) {
  WireWriter w;
  w.U64(m.token);
  w.U32(static_cast<uint32_t>(m.sessions.size()));
  for (const SessionBlob& b : m.sessions) PutBlob(w, b);
  return MakeFrame(MsgType::kSnapshotResult, std::move(w));
}

bool Decode(const Frame& f, SnapshotResultMsg* m) {
  WireReader r(f.payload);
  r.U64(&m->token);
  uint32_t count = 0;
  r.U32(&count);
  m->sessions.clear();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    SessionBlob b;
    if (!GetBlob(r, &b)) break;
    m->sessions.push_back(std::move(b));
  }
  return Finish(f, MsgType::kSnapshotResult, r) &&
         m->sessions.size() == count;
}

Frame Encode(const HealthMsg&) { return MakeControlFrame(MsgType::kHealth); }

Frame Encode(const HealthResultMsg& m) {
  WireWriter w;
  w.I64(m.pid);
  w.I64(m.accepted);
  w.I64(m.shed);
  w.I64(m.resident_sessions);
  w.I64(m.stashed_sessions);
  return MakeFrame(MsgType::kHealthResult, std::move(w));
}

bool Decode(const Frame& f, HealthResultMsg* m) {
  WireReader r(f.payload);
  r.I64(&m->pid);
  r.I64(&m->accepted);
  r.I64(&m->shed);
  r.I64(&m->resident_sessions);
  r.I64(&m->stashed_sessions);
  return Finish(f, MsgType::kHealthResult, r);
}

Frame Encode(const MetricsMsg&) { return MakeControlFrame(MsgType::kMetrics); }

Frame Encode(const MetricsResultMsg& m) {
  WireWriter w;
  w.Str(m.json);
  return MakeFrame(MsgType::kMetricsResult, std::move(w));
}

bool Decode(const Frame& f, MetricsResultMsg* m) {
  WireReader r(f.payload);
  r.Str(&m->json);
  return Finish(f, MsgType::kMetricsResult, r);
}

Frame MakeControlFrame(MsgType type) {
  Frame f;
  f.type = static_cast<uint8_t>(type);
  return f;
}

}  // namespace net
}  // namespace imdiff
