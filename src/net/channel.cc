#include "net/channel.h"

#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "utils/metrics.h"
#include "utils/rng.h"

namespace imdiff {
namespace net {

ClientChannel::ClientChannel(std::string path, BackoffPolicy reconnect,
                             uint64_t seed, bool inject_faults)
    : path_(std::move(path)),
      reconnect_(reconnect),
      seed_(seed),
      inject_faults_(inject_faults) {}

ClientChannel::~ClientChannel() {
  Close();
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ClientChannel::Connect() {
  const int fd = DialUnixRetry(path_, reconnect_, seed_);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd < 0 || closing_) {
    if (fd >= 0) ::close(fd);
    state_ = State::kDown;
    cv_.notify_all();
    return false;
  }
  fd_ = fd;
  state_ = State::kConnected;
  cv_.notify_all();
  return true;
}

bool ClientChannel::Send(const Frame& frame) {
  std::lock_guard<std::mutex> send_lock(send_mu_);
  MetricsRegistry& registry = MetricsRegistry::Global();
  while (true) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return state_ == State::kConnected || state_ == State::kDown;
      });
      if (state_ == State::kDown) return false;
      fd = fd_;
    }
    const bool drop = inject_faults_ && IMDIFF_FAULT("transport.drop");
    const bool short_write =
        inject_faults_ && !drop && IMDIFF_FAULT("transport.short_write");
    bool ok = false;
    if (drop) {
      // Injected full loss: the frame never reaches the wire.
      registry.GetCounter("transport.drops")->Increment();
    } else {
      const std::vector<uint8_t> bytes = EncodeFrame(frame);
      if (short_write) {
        // Injected truncation: half a frame goes out; the receiver discards
        // the partial frame at EOF and the retry resends it whole.
        registry.GetCounter("transport.short_writes")->Increment();
        SendAll(fd, bytes.data(), bytes.size() / 2);
      } else {
        ok = SendAll(fd, bytes.data(), bytes.size());
      }
    }
    if (ok) return true;
    // Break the send direction only and let the reader rebuild: in-flight
    // peer->us frames drain before the reader sees EOF (see header).
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (state_ == State::kConnected && fd_ == fd) {
        state_ = State::kBroken;
        ::shutdown(fd_, SHUT_WR);
        registry.GetCounter("transport.reconnects")->Increment();
      }
    }
  }
}

ClientChannel::Status ClientChannel::Recv(Frame* out) {
  while (true) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Wait out the window before Connect() finishes; the mid-loop
      // kDisconnected is only ever held synchronously by this reader.
      cv_.wait(lock, [&] { return state_ != State::kDisconnected; });
      if (state_ == State::kDown) return Status::kDown;
      fd = fd_;
    }
    if (ReadFrame(fd, out) == ReadResult::kOk) return Status::kFrame;
    // Connection gone (peer closed after our SHUT_WR, crashed, or sent a
    // truncated frame). The reader owns the rebuild.
    bool terminal;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ::close(fd_);
      fd_ = -1;
      terminal = expect_close_ || closing_;
      state_ = terminal ? State::kDown : State::kDisconnected;
      if (terminal) cv_.notify_all();
    }
    if (terminal) return Status::kDown;
    const int nfd =
        DialUnixRetry(path_, reconnect_, MixSeed(seed_, ++generation_));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (nfd < 0 || closing_) {
        if (nfd >= 0) ::close(nfd);
        state_ = State::kDown;
        cv_.notify_all();
        return Status::kDown;
      }
      fd_ = nfd;
      state_ = State::kConnected;
      cv_.notify_all();
    }
  }
}

void ClientChannel::ExpectClose() {
  std::lock_guard<std::mutex> lock(mu_);
  expect_close_ = true;
}

bool ClientChannel::down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == State::kDown;
}

void ClientChannel::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closing_ = true;
  // Wake a blocked reader; it observes closing_ and goes down. A channel
  // with no reader running settles in the destructor.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  if (state_ != State::kConnected && state_ != State::kBroken) {
    state_ = State::kDown;
  }
  cv_.notify_all();
}

ServerChannel::ServerChannel(UnixListener listener)
    : listener_(std::move(listener)) {}

ServerChannel::~ServerChannel() {
  Close();
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServerChannel::set_hello(Frame hello) {
  std::lock_guard<std::mutex> lock(mu_);
  hello_ = std::move(hello);
  has_hello_ = true;
}

ServerChannel::Status ServerChannel::Next(Frame* out) {
  while (true) {
    int fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closing_) return Status::kDown;
      fd = fd_;
    }
    if (fd < 0) {
      const int conn = listener_.Accept();
      std::lock_guard<std::mutex> lock(mu_);
      if (conn < 0 || closing_) {
        if (conn >= 0) ::close(conn);
        return Status::kDown;
      }
      // Hello first, then everything queued while disconnected, in order.
      bool ok = !has_hello_ || WriteFrame(conn, hello_);
      while (ok && !queue_.empty()) {
        ok = WriteFrame(conn, queue_.front());
        if (ok) queue_.pop_front();
      }
      if (!ok) {
        ::close(conn);
        continue;  // peer vanished mid-handshake; re-accept
      }
      fd_ = conn;
      continue;
    }
    if (ReadFrame(fd, out) == ReadResult::kOk) return Status::kFrame;
    // EOF (router reconnecting, or shutting down): drop the connection and
    // go back to accept.
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ == fd) {
      ::close(fd_);
      fd_ = -1;
    }
  }
}

bool ServerChannel::Send(const Frame& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closing_) return false;
  if (fd_ < 0) {
    queue_.push_back(frame);
    return true;
  }
  if (!WriteFrame(fd_, frame)) {
    // Queue for re-delivery and kick the dispatch loop off the dead
    // connection. Fully written earlier frames are already in the peer's
    // receive queue (same-host UDS), so re-delivery starts exactly here.
    queue_.push_back(frame);
    ::shutdown(fd_, SHUT_RDWR);
  }
  return true;
}

void ServerChannel::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closing_ = true;
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  listener_.Close();  // wakes a blocked Accept, unlinks the socket path
}

}  // namespace net
}  // namespace imdiff
