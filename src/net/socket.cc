#include "net/socket.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include "utils/metrics.h"

namespace imdiff {
namespace net {
namespace {

bool FillAddr(const std::string& path, sockaddr_un* addr, std::string* error) {
  if (path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) {
      *error = "socket path too long (" + std::to_string(path.size()) +
               " bytes, max " + std::to_string(sizeof(addr->sun_path) - 1) +
               "): " + path;
    }
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

bool UnixListener::Create(const std::string& path, std::string* error) {
  Close();
  sockaddr_un addr;
  if (!FillAddr(path, &addr, error)) return false;
  if (PathExists(path)) {
    // Never bind over an existing path. A live worker there would silently
    // lose its socket; a stale file from a crashed run would make bind fail
    // with a less actionable EADDRINUSE. Name the remedy explicitly.
    if (error != nullptr) {
      *error = "socket path already exists (stale socket file from a dead "
               "worker, or a duplicate shard id?); remove it or pick a fresh "
               "--socket-dir: " + path;
    }
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    if (error != nullptr) {
      *error = std::string("bind/listen failed for ") + path + ": " +
               std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  fd_ = fd;
  path_ = path;
  return true;
}

int UnixListener::Accept() {
  if (fd_ < 0) return -1;
  while (true) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return conn;
    if (errno == EINTR) continue;
    return -1;
  }
}

void UnixListener::Close() {
  if (fd_ >= 0) {
    // shutdown() wakes a concurrent Accept() blocked in another thread;
    // close() alone does not reliably do so on Linux.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    std::remove(path_.c_str());
    path_.clear();
  }
}

int DialUnix(const std::string& path) {
  sockaddr_un addr;
  if (!FillAddr(path, &addr, nullptr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int DialUnixRetry(const std::string& path, const BackoffPolicy& policy,
                  uint64_t seed) {
  const std::vector<double> schedule = BackoffSchedule(policy, seed);
  Counter* const retries =
      MetricsRegistry::Global().GetCounter("transport.dial_retries");
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    const int fd = DialUnix(path);
    if (fd >= 0) return fd;
    if (attempt < static_cast<int>(schedule.size())) {
      retries->Increment();
      std::this_thread::sleep_for(
          std::chrono::duration<double>(schedule[static_cast<size_t>(attempt)]));
    }
  }
  return -1;
}

bool SendAll(int fd, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that died mid-write surfaces as EPIPE, not a
    // process-killing SIGPIPE — the caller's reconnect path handles it.
    const ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

size_t RecvAll(int fd, void* data, size_t n) {
  auto* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return got;
    }
    if (r == 0) return got;  // EOF
    got += static_cast<size_t>(r);
  }
  return got;
}

bool ProbeSocketDir(const std::string& dir, std::string* error) {
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0) {
    if (::mkdir(dir.c_str(), 0755) != 0) {
      if (error != nullptr) {
        *error = "cannot create socket dir " + dir + ": " +
                 std::strerror(errno);
      }
      return false;
    }
  } else if (!S_ISDIR(st.st_mode)) {
    if (error != nullptr) *error = "socket dir is not a directory: " + dir;
    return false;
  }
  const std::string probe = dir + "/.imdiff_probe";
  if (!ProbeWritable(probe)) {
    if (error != nullptr) *error = "socket dir is not writable: " + dir;
    return false;
  }
  return true;
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::lstat(path.c_str(), &st) == 0;
}

}  // namespace net
}  // namespace imdiff
