#include "net/frame.h"

#include "net/socket.h"
#include "net/wire.h"

namespace imdiff {
namespace net {
namespace {

// Larger prefixes are corruption (or a protocol mismatch), not real frames.
constexpr uint32_t kMaxFramePayload = 1u << 30;

}  // namespace

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(frame.payload.size()));
  w.U8(frame.type);
  std::vector<uint8_t> bytes = w.Take();
  bytes.insert(bytes.end(), frame.payload.begin(), frame.payload.end());
  return bytes;
}

bool WriteFrame(int fd, const Frame& frame) {
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  return SendAll(fd, bytes.data(), bytes.size());
}

ReadResult ReadFrame(int fd, Frame* out) {
  uint8_t header[5];
  if (RecvAll(fd, header, sizeof(header)) != sizeof(header)) {
    return ReadResult::kClosed;
  }
  WireReader r(header, sizeof(header));
  uint32_t length = 0;
  r.U32(&length);
  r.U8(&out->type);
  if (length > kMaxFramePayload) return ReadResult::kClosed;
  out->payload.resize(length);
  if (length > 0 && RecvAll(fd, out->payload.data(), length) != length) {
    return ReadResult::kClosed;
  }
  return ReadResult::kOk;
}

}  // namespace net
}  // namespace imdiff
