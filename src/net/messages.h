// Typed messages of the router <-> worker protocol (DESIGN.md §16).
//
// Control messages (publish/drain/export/import/snapshot/health/metrics) are
// strict request/response with one outstanding request per shard; Submit and
// ScoredBlock are fire-and-forget streams riding the same FIFO connection.
// Every Decode validates the frame type, every field read, and full payload
// consumption, so a corrupt frame is rejected as a unit (the connection is
// dropped) rather than half-applied.

#ifndef IMDIFF_NET_MESSAGES_H_
#define IMDIFF_NET_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"

namespace imdiff {
namespace net {

enum class MsgType : uint8_t {
  kHello = 1,         // worker -> router, first frame of every connection
  kPublish = 2,       // router -> worker: warm-load a checkpoint
  kPublishResult = 3,
  kSubmit = 4,        // router -> worker: one tenant sample (fire-and-forget)
  kScoredBlock = 5,   // worker -> router: one scored block (fire-and-forget)
  kDrain = 6,         // router -> worker: barrier; respond when idle
  kDrainResult = 7,
  kExportState = 8,   // destructive session export (resharding move)
  kExportResult = 9,
  kImportState = 10,  // inject a session snapshot into the worker's stash
  kImportResult = 11,
  kSnapshot = 12,     // non-destructive export of every session
  kSnapshotResult = 13,
  kHealth = 14,
  kHealthResult = 15,
  kMetrics = 16,      // worker -> router: full MetricsToJson snapshot
  kMetricsResult = 17,
  kShutdown = 18,     // graceful: drain, stop serving, exit 0
  kCrash = 19,        // chaos: abandon state and exit immediately
};

struct HelloMsg {
  int64_t shard_id = -1;
};

struct PublishMsg {
  std::string name;
  std::string checkpoint_path;
  int64_t num_features = 0;
  uint64_t config_seed = 0;
  std::vector<float> stats_min;  // train-split normalization (MinMaxStats)
  std::vector<float> stats_max;
};

struct PublishResultMsg {
  int64_t version = -1;  // <= 0: load failed past every retry
};

struct SubmitMsg {
  std::string tenant;
  std::vector<float> sample;
  std::vector<uint8_t> observed;  // empty = fully observed
};

struct ScoredBlockMsg {
  std::string tenant;
  int64_t block_index = 0;
  int64_t start = 0;  // global stream position of the first score
  int64_t degrade_level = 0;
  int64_t precision = 0;  // Precision the block was scored at (0 = fp32)
  double latency_seconds = 0.0;
  std::vector<float> scores;
};

struct DrainMsg {
  uint64_t token = 0;
};

// Cumulative worker totals (not per-drain deltas): idempotent under the
// transport's at-least-once delivery.
struct DrainResultMsg {
  uint64_t token = 0;
  int64_t accepted = 0;
  int64_t shed = 0;
  int64_t alerts = 0;
  int64_t degraded_blocks = 0;
  int64_t precision_drops = 0;  // blocks scored below fp32
  // Continuous-refresh activity (DESIGN.md §18): refresh promotions applied
  // and shadow blocks dual-scored on this worker. Shadow blocks themselves
  // never cross the wire — only these counts do.
  int64_t promotions = 0;
  int64_t shadow_blocks = 0;
};

// One serialized session: `state` is the SerializeSession byte format
// (serve/session_manager.h) — the OnlineDetector streaming state plus the
// per-session block counter.
struct SessionBlob {
  std::string tenant;
  std::vector<uint8_t> state;
};

struct ExportStateMsg {
  std::string tenant;
};

struct ExportResultMsg {
  uint8_t found = 0;
  SessionBlob session;
};

struct ImportStateMsg {
  SessionBlob session;
};

struct ImportResultMsg {
  uint8_t ok = 0;
};

struct SnapshotMsg {
  uint64_t token = 0;
};

struct SnapshotResultMsg {
  uint64_t token = 0;
  std::vector<SessionBlob> sessions;
};

struct HealthMsg {};

struct HealthResultMsg {
  int64_t pid = 0;
  int64_t accepted = 0;
  int64_t shed = 0;
  int64_t resident_sessions = 0;
  int64_t stashed_sessions = 0;
};

struct MetricsMsg {};

struct MetricsResultMsg {
  std::string json;
};

Frame Encode(const HelloMsg& m);
Frame Encode(const PublishMsg& m);
Frame Encode(const PublishResultMsg& m);
Frame Encode(const SubmitMsg& m);
Frame Encode(const ScoredBlockMsg& m);
Frame Encode(const DrainMsg& m);
Frame Encode(const DrainResultMsg& m);
Frame Encode(const ExportStateMsg& m);
Frame Encode(const ExportResultMsg& m);
Frame Encode(const ImportStateMsg& m);
Frame Encode(const ImportResultMsg& m);
Frame Encode(const SnapshotMsg& m);
Frame Encode(const SnapshotResultMsg& m);
Frame Encode(const HealthMsg& m);
Frame Encode(const HealthResultMsg& m);
Frame Encode(const MetricsMsg& m);
Frame Encode(const MetricsResultMsg& m);
// Payload-less control frames.
Frame MakeControlFrame(MsgType type);

bool Decode(const Frame& f, HelloMsg* m);
bool Decode(const Frame& f, PublishMsg* m);
bool Decode(const Frame& f, PublishResultMsg* m);
bool Decode(const Frame& f, SubmitMsg* m);
bool Decode(const Frame& f, ScoredBlockMsg* m);
bool Decode(const Frame& f, DrainMsg* m);
bool Decode(const Frame& f, DrainResultMsg* m);
bool Decode(const Frame& f, ExportStateMsg* m);
bool Decode(const Frame& f, ExportResultMsg* m);
bool Decode(const Frame& f, ImportStateMsg* m);
bool Decode(const Frame& f, ImportResultMsg* m);
bool Decode(const Frame& f, SnapshotMsg* m);
bool Decode(const Frame& f, SnapshotResultMsg* m);
bool Decode(const Frame& f, HealthResultMsg* m);
bool Decode(const Frame& f, MetricsResultMsg* m);

}  // namespace net
}  // namespace imdiff

#endif  // IMDIFF_NET_MESSAGES_H_
