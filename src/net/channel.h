// Reliable framed channels over unix-domain sockets, with fault injection
// and deterministic reconnect (DESIGN.md §16).
//
// ClientChannel (the router side) pairs one sender thread with one reader
// thread over a single fd. Recovery has exactly one owner — the reader:
//
//   - A send failure (a real EPIPE, or the injected "transport.drop" /
//     "transport.short_write" faults) half-closes the socket (SHUT_WR) and
//     parks the sender. The half-close matters: frames already in flight
//     from the peer are still drained by the reader before it sees EOF, so
//     breaking the send direction never loses reverse-direction traffic.
//   - The reader hits EOF (after draining), closes the fd, redials with the
//     seeded BackoffSchedule, and wakes the sender, which resends the failed
//     frame. Frames whose write completed are never resent.
//   - An unexpected EOF (peer crashed) takes the same redial path; when every
//     attempt fails the channel goes down and both sides unblock.
//
// ServerChannel (the worker side) owns a listener and serves one connection
// at a time: accept, send the hello frame, flush frames queued while
// disconnected, then read until EOF and re-accept. Sends that race a broken
// connection are queued and re-delivered on the next accept, so a worker's
// scored blocks survive a router-initiated reconnect.

#ifndef IMDIFF_NET_CHANNEL_H_
#define IMDIFF_NET_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "net/frame.h"
#include "net/socket.h"
#include "utils/fault.h"

namespace imdiff {
namespace net {

class ClientChannel {
 public:
  // `inject_faults` gates the transport.drop / transport.short_write points:
  // faults are injected on the dialing side only, where the reconnect+resend
  // recovery is lossless by construction (see header comment).
  ClientChannel(std::string path, BackoffPolicy reconnect, uint64_t seed,
                bool inject_faults = true);
  ~ClientChannel();

  ClientChannel(const ClientChannel&) = delete;
  ClientChannel& operator=(const ClientChannel&) = delete;

  // Initial dial (bounded seeded retries, covering the worker-spawn race).
  bool Connect();

  // Sends one frame, riding the recovery loop above; false when the channel
  // went down (peer unreachable past every redial). One sender at a time.
  bool Send(const Frame& frame);

  enum class Status { kFrame, kDown };
  // Reader-thread call: blocks for the next frame, transparently rebuilding
  // the connection. kDown is terminal.
  Status Recv(Frame* out);

  // Arms the next EOF as expected (kShutdown/kCrash was sent): the reader
  // reports kDown without redialing.
  void ExpectClose();

  bool down() const;

  // Terminal close from the owner; wakes sender and reader.
  void Close();

  const std::string& path() const { return path_; }

 private:
  enum class State { kDisconnected, kConnected, kBroken, kDown };

  const std::string path_;
  const BackoffPolicy reconnect_;
  const uint64_t seed_;
  const bool inject_faults_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::kDisconnected;
  int fd_ = -1;
  uint64_t generation_ = 0;  // redial count; salts the backoff seed
  bool expect_close_ = false;
  bool closing_ = false;
  std::mutex send_mu_;  // serializes Send callers
};

class ServerChannel {
 public:
  explicit ServerChannel(UnixListener listener);
  ~ServerChannel();

  ServerChannel(const ServerChannel&) = delete;
  ServerChannel& operator=(const ServerChannel&) = delete;

  // Sent first on every (re)connection, before queued frames — the worker's
  // shard-id handshake.
  void set_hello(Frame hello);

  enum class Status { kFrame, kDown };
  // Dispatch-loop call: accepts a connection when there is none, then reads
  // the next frame; EOF loops back to accept. kDown only after Close.
  Status Next(Frame* out);

  // Thread-safe; a frame that cannot be delivered now (no connection, or the
  // write failed) is queued and flushed on the next accept. Returns false
  // only after Close.
  bool Send(const Frame& frame);

  // Terminal: closes the connection and the listener (unlinking the socket
  // path), wakes a blocked Next.
  void Close();

 private:
  UnixListener listener_;
  std::mutex mu_;  // guards fd_/queue_/closing_ and serializes writes
  int fd_ = -1;
  bool closing_ = false;
  Frame hello_;
  bool has_hello_ = false;
  std::deque<Frame> queue_;
};

}  // namespace net
}  // namespace imdiff

#endif  // IMDIFF_NET_CHANNEL_H_
