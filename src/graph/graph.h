// Forward-only fused execution graph for the frozen ImTransformer denoiser.
//
// The autograd layer stack (src/nn) is built for training: every Forward
// allocates tape nodes, arena tensors for each intermediate, and walks
// shape/broadcast logic per call. Inference under the serving path replays
// the exact same op sequence thousands of times with fixed shapes, so this
// module captures that sequence ONCE per (model version, batch shape, degrade
// level) and lowers it onto the flat kernels in src/tensor:
//
//  - Capture: a GraphContext walks the frozen module tree (via the read-only
//    accessors on ImTransformer) and linearizes one reverse-diffusion chunk
//    into a small op list. Linear weights are prepacked into GEMM panels
//    (gemm::PackBFull) at capture time; LayerNorm -> MatMul -> GELU chains in
//    the encoder feed-forward are fused into single row passes.
//  - Static arena plan: every intermediate gets a [first-def, last-use]
//    interval over the op list, and a first-fit linear-scan allocator assigns
//    fixed offsets into ONE arena block acquired at capture. Steady-state
//    scoring therefore performs zero arena free-list requests and zero shape
//    logic — the op interpreter only moves floats.
//  - Numerics: lowering reuses the exact kernels (or replicates the exact
//    scalar expressions) of the legacy stack, in both the SIMD and the
//    forced-scalar build modes, so scores stay bitwise identical to the
//    autograd path for a fixed (content, seed, model, degrade level) — the
//    DESIGN.md §12 contract. The first execution per (context, kernel mode)
//    is validated against the legacy stack by the caller (see
//    ImDiffusionDetector::ScoreWindowBatch); a mismatch disables the cache
//    and increments graph.validation_failures rather than shipping a wrong
//    score.
//
// Escape hatch: IMDIFF_GRAPH=0 in the environment (or SetGraphEnabled(false))
// routes every chunk through the legacy layer stack. Captured graphs hold raw
// weight pointers, so a GraphCache must be invalidated whenever the owning
// detector's model is replaced (Fit / LoadModel); the registry hot-swap path
// publishes a fresh detector and thus a fresh cache.
//
// Metrics: graph.captures, graph.executions, graph.validation_failures
// counters and the graph.plan_bytes gauge.

#ifndef IMDIFF_GRAPH_GRAPH_H_
#define IMDIFF_GRAPH_GRAPH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "core/im_transformer.h"
#include "diffusion/schedule.h"
#include "tensor/precision.h"
#include "tensor/tensor.h"

namespace imdiff {
namespace graph {

// True when the graph executor should be used: IMDIFF_GRAPH unset or != "0"
// in the environment (read once, cached), unless overridden.
bool GraphEnabled();
// Runtime override for tests and benchmarks; wins over the environment.
void SetGraphEnabled(bool on);

// Everything a capture needs about the frozen denoiser and the chunk shape.
// Built by ImDiffusionDetector (which owns the model) — the raw pointers must
// outlive the captured context.
struct DenoiserSpec {
  const ImTransformer* model = nullptr;
  const NoiseSchedule* schedule = nullptr;
  std::vector<Tensor> policy_masks;  // [K, L] each, 1 = observed
  std::vector<int> vote_ts;          // forward-index vote steps, descending
  int chain_begin = 0;               // first t of the (possibly truncated) chain
  int64_t bsz = 0;                   // windows per chunk
  bool conditional = false;
  bool stochastic_sampling = false;
  bool score_on_x0 = true;
  // Scoring precision (DESIGN.md §17). Non-fp32 captures prepack weights
  // into the quant panel formats and lower every Linear onto the quantized
  // kernels; attention QK^T / attn x V and all norms stay fp32.
  Precision precision = Precision::kF32;
};

// One captured, lowered, and arena-planned reverse-diffusion chunk executor.
// Not thread-safe: a context scores one chunk at a time (GraphCache pools
// idle contexts so concurrent chunks each hold their own).
class GraphContext {
 public:
  explicit GraphContext(const DenoiserSpec& spec);
  ~GraphContext();
  GraphContext(const GraphContext&) = delete;
  GraphContext& operator=(const GraphContext&) = delete;

  int64_t bsz() const;

  // Scores one chunk: `windows` points at bsz() row-major [K, L] windows,
  // `seeds` at bsz() per-window seeds. Replicates the legacy chunk body of
  // ScoreWindowBatch bit-for-bit; results land in step_diff().
  void ScoreChunk(const float* windows, const uint64_t* seeds);

  // Accumulated signed residuals per vote step ([bsz, K, L] each), valid
  // until the next ScoreChunk call.
  const std::vector<Tensor>& step_diff() const;

  // First-execution validation bookkeeping, tracked per kernel mode (SIMD /
  // forced-scalar) because the two modes produce different bit patterns.
  bool validated_for_current_mode() const;
  void mark_validated_for_current_mode();

  // Size of the static arena plan (the single block backing all
  // intermediates), for benchmarks and the graph.plan_bytes gauge.
  size_t plan_bytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Pool of captured contexts for one detector, keyed by (chunk batch size,
// degrade level, precision). Thread-safe. Invalidation = dropping the whole
// cache (the detector swaps in a fresh GraphCache when its model changes).
class GraphCache {
 public:
  using Factory = std::function<std::unique_ptr<GraphContext>()>;

  // Returns an idle context for the key, or captures a new one via `make`.
  // Returns nullptr when the cache has been disabled.
  std::unique_ptr<GraphContext> Acquire(int64_t bsz, int degrade_level,
                                        Precision precision,
                                        const Factory& make);
  // Returns a context to the pool (no-op when disabled).
  void Release(int64_t bsz, int degrade_level, Precision precision,
               std::unique_ptr<GraphContext> ctx);

  // Permanently stops handing out contexts — set after a validation failure
  // so every later chunk takes the legacy stack.
  void Disable();
  bool disabled() const { return disabled_.load(std::memory_order_acquire); }

 private:
  std::mutex mu_;
  std::map<std::tuple<int64_t, int, int>,
           std::vector<std::unique_ptr<GraphContext>>>
      pool_;
  std::atomic<bool> disabled_{false};
};

}  // namespace graph
}  // namespace imdiff

#endif  // IMDIFF_GRAPH_GRAPH_H_
