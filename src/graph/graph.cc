#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "diffusion/ddpm.h"
#include "tensor/arena.h"
#include "utils/check.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"
#include "tensor/simd.h"
#include "utils/metrics.h"
#include "utils/rng.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace graph {

namespace {

std::atomic<int>& GraphFlag() {
  static std::atomic<int> flag{-1};  // -1: environment not consulted yet
  return flag;
}

}  // namespace

bool GraphEnabled() {
  int v = GraphFlag().load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("IMDIFF_GRAPH");
    v = (e != nullptr && std::strcmp(e, "0") == 0) ? 0 : 1;
    GraphFlag().store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void SetGraphEnabled(bool on) {
  GraphFlag().store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace {

// One frozen Linear lowered for the executor: raw weight/bias pointers into
// the model's tensors plus (when a vector ISA is compiled in) the weight
// prepacked into GEMM panels at capture time. Packing is pure data movement,
// so the prepacked path is bitwise identical to MatMul's per-call packing.
// Non-fp32 captures instead prepack into the quant panel formats (every
// build — the quant kernels carry scalar bodies), which matches the
// per-call pack of quant::LinearInto bit for bit.
struct Weight {
  const float* w = nullptr;     // [in, out]
  const float* bias = nullptr;  // [out], null when the layer has no bias
  int64_t in = 0;
  int64_t out = 0;
#if defined(IMDIFF_SIMD_ANY)
  std::vector<float> packed;
#endif
  quant::PackedBf16 packed_bf16;  // filled when precision == kBf16
  quant::PackedInt8 packed_int8;  // filled when precision == kInt8
};

struct Norm {
  const float* gamma = nullptr;
  const float* beta = nullptr;
};

enum class OpKind {
  kStacked,            // interleave (x_masked, noise_ref, mask) -> [R, 3]
  kLinear,             // dst = relu?(src @ W + b)
  kAddRowBcast,        // dst_row = src_row + se_row(block, policy, t)
  kAddSide,            // x_row += side_rows(block)[token]
  kPermuteToSpatial,   // [B,K,L,D] -> [B,L,K,D]
  kPermuteFromSpatial, // [B,L,K,D] -> [B,K,L,D]
  kAttention,          // x += MHSA(LayerNorm(x)), fused LN+QKV / per-head / wo
  kFfn,                // x += fc2(GELU(fc1(LayerNorm(x)))), one fused row pass
  kGate,               // dst = tanh(filter) * sigmoid(gate) from [R, 2D]
  kResSkip,            // h = (h + rs[:D]) * s;  skip (=|+)= rs[D:]
  kScale,              // dst = src * s
};

// Aux-buffer slot names for kAttention.
enum : int {
  kAtLn = 0,   // LayerNorm scratch rows [R', D]
  kAtTmp,      // pre-split QKV gemm rows (heads > 1 only)
  kAtQ,        // q in head-split layout [bp*H, len, Dh]
  kAtK,
  kAtV,
  kAtScores,   // [bp*H, len, len]
  kAtCtx,      // per-head context [bp*H, len, Dh]
  kAtMerged,   // merged context [R', D] (== kAtCtx when heads == 1)
  kAtBpack,    // per-item GEMM panel scratch (SIMD builds only)
  kAtSlots
};

struct Op {
  OpKind kind = OpKind::kStacked;
  int src = -1;
  int dst = -1;
  int w[4] = {-1, -1, -1, -1};
  int norm = -1;
  int buf[kAtSlots] = {-1, -1, -1, -1, -1, -1, -1, -1, -1};
  int block = -1;
  int64_t rows = 0;
  int64_t bp = 0;      // attention: batch of independent sequences
  int64_t len = 0;     // attention: sequence length
  int64_t dhead = 0;
  int heads = 0;
  bool relu = false;
  bool first = false;  // kResSkip: first block assigns skip instead of +=
  float scale = 0.0f;
};

// A slot in the static arena plan. Pinned buffers (chain state, per-policy
// noise, per-execute uniform rows, vote outputs' scratch) live for the whole
// context; planned buffers carry a [first, last] op interval and share
// memory via first-fit linear scan.
struct BufferInfo {
  size_t floats = 0;
  bool pinned = false;
  int first = -1;
  int last = -1;
  size_t offset = 0;
};

constexpr size_t kAlignFloats = 16;  // keep 64-byte alignment inside the block

size_t AlignUp(size_t f) { return (f + kAlignFloats - 1) & ~(kAlignFloats - 1); }

}  // namespace

struct GraphContext::Impl {
  // ---- Frozen inputs ----------------------------------------------------
  const ImTransformer* model = nullptr;
  const NoiseSchedule* sched = nullptr;
  std::vector<int> vote_ts;
  int chain_begin = 0;
  bool conditional = false;
  bool stoch = false;
  bool score_x0 = true;
  Precision precision = Precision::kF32;

  // ---- Shape constants --------------------------------------------------
  int64_t B = 0, K = 0, L = 0, KL = 0, R = 0;
  int64_t D = 0, E = 0, S2 = 0, FF = 0, Dh = 0;
  int NB = 0, H = 0, P = 0, Tp = 0;

  // ---- Lowered program --------------------------------------------------
  std::vector<Weight> weights;
  std::vector<Norm> norms;
  std::vector<Op> ops;
  std::vector<BufferInfo> bufs;

  // ---- Capture-time constant tensors ------------------------------------
  std::vector<Tensor> mask_tile;  // per policy, [B, K, L]
  std::vector<Tensor> inv_tile;   // per policy, [B, K, L]
  Tensor side_const;              // [KL, 2*side]
  std::vector<Tensor> step_diff;  // per vote step, [B, K, L]

  // ---- Static arena plan -------------------------------------------------
  size_t total_floats = 0;
  std::unique_ptr<ArenaBuffer> block;
  float* base = nullptr;

  // Pinned buffer ids.
  int bc_cur = -1, bc_xm = -1, bc_nr = -1, bc_x0h = -1, bc_eps = -1;
  int bc_ref = -1, bc_chain = -1, bc_z = -1;
  int bc_sin = -1, bc_mlpa = -1, bc_mlpb = -1, bc_comb = -1;
  int bc_se = -1, bc_sider = -1;

  // Per-(policy, window) sampling streams, rebuilt each chunk.
  std::vector<std::vector<Rng>> rngs;

  // Per-(policy, t) dynamic pointers consulted by the op interpreter.
  const float* dyn_mask = nullptr;
  int dyn_policy = 0;
  int dyn_t = 0;

  std::atomic<bool> ok_simd{false};
  std::atomic<bool> ok_scalar{false};

  Counter* executions = nullptr;

  // ---- Capture ----------------------------------------------------------

  int AddWeight(const nn::Linear& lin) {
    Weight w;
    w.w = lin.weight().data();
    w.bias = lin.has_bias() ? lin.bias().data() : nullptr;
    w.in = lin.in_features();
    w.out = lin.out_features();
    PackWeight(&w);
    weights.push_back(std::move(w));
    return static_cast<int>(weights.size()) - 1;
  }

  // Capture-time prepack for the active precision. For fused weights built
  // from concatenated columns (LN+QKV) the per-column int8 absmax scales are
  // identical to the scales of the separate packs, so fusion does not change
  // the quantization.
  void PackWeight(Weight* w) {
    switch (precision) {
      case Precision::kBf16:
        quant::PackBf16(w->w, w->in, w->out, false, &w->packed_bf16);
        break;
      case Precision::kInt8:
        quant::PackInt8(w->w, w->in, w->out, false, &w->packed_int8);
        break;
      case Precision::kF32:
#if defined(IMDIFF_SIMD_ANY)
        w->packed.resize(gemm::PackedBFloats(w->in, w->out));
        gemm::PackBFull(w->w, w->in, w->out, false, w->packed.data());
#endif
        break;
    }
  }

  int AddNorm(const nn::LayerNorm& n) {
    norms.push_back(Norm{n.gamma().data(), n.beta().data()});
    return static_cast<int>(norms.size()) - 1;
  }

  int NewBuf(size_t floats, bool pinned) {
    BufferInfo b;
    b.floats = floats;
    b.pinned = pinned;
    bufs.push_back(b);
    return static_cast<int>(bufs.size()) - 1;
  }

  // Records that the op about to be pushed reads or writes `id`.
  void Touch(int id) {
    if (id < 0) return;
    BufferInfo& b = bufs[static_cast<size_t>(id)];
    if (b.pinned) return;
    const int at = static_cast<int>(ops.size());
    if (b.first < 0) b.first = at;
    b.last = at;
  }

  float* Buf(int id) { return base + bufs[static_cast<size_t>(id)].offset; }

  struct EncIds {
    bool present = false;
    int wq = -1, wk = -1, wv = -1, wo = -1;
    int fc1 = -1, fc2 = -1;
    int norm1 = -1, norm2 = -1;
  };

  struct BlockIds {
    int step_proj = -1;
    EncIds temporal, spatial;
    int side_proj = -1, gate_proj = -1, out_proj = -1;
  };
  std::vector<BlockIds> blocks;

  // Uniform-row weight ids.
  int w_input = -1, w_mlp1 = -1, w_mlp2 = -1, w_head1 = -1, w_head2 = -1;

  // Shared planned scratch ids (sized for the worst of temporal/spatial).
  int pb_ln = -1, pb_tmp = -1, pb_q = -1, pb_k = -1, pb_v = -1;
  int pb_scores = -1, pb_ctx = -1, pb_att = -1, pb_bpack = -1, pb_ffh = -1;

  EncIds CaptureEncoder(const nn::TransformerEncoderLayer* enc) {
    EncIds ids;
    if (enc == nullptr) return ids;
    ids.present = true;
    const nn::MultiHeadSelfAttention& a = enc->attn();
    IMDIFF_CHECK_EQ(static_cast<int64_t>(H), a.num_heads());
    IMDIFF_CHECK_EQ(Dh, a.d_head());
    ids.wq = AddWeight(a.wq());
    ids.wk = AddWeight(a.wk());
    ids.wv = AddWeight(a.wv());
    ids.wo = AddWeight(a.wo());
    IMDIFF_CHECK(enc->ff().activation() == nn::Mlp::Activation::kGelu);
    ids.fc1 = AddWeight(enc->ff().fc1());
    ids.fc2 = AddWeight(enc->ff().fc2());
    ids.norm1 = AddNorm(enc->norm1());
    ids.norm2 = AddNorm(enc->norm2());
    return ids;
  }

  void EmitLinear(int wid, int src, int dst, int64_t rows, bool relu) {
    Op op;
    op.kind = OpKind::kLinear;
    op.src = src;
    op.dst = dst;
    op.w[0] = wid;
    op.rows = rows;
    op.relu = relu;
    Touch(src);
    Touch(dst);
    ops.push_back(op);
  }

  void EmitEncoder(const EncIds& enc, int xbuf, int64_t bp, int64_t len) {
    {
      Op op;
      op.kind = OpKind::kAttention;
      op.src = op.dst = xbuf;
      op.w[0] = enc.wq;
      op.w[1] = enc.wk;
      op.w[2] = enc.wv;
      op.w[3] = enc.wo;
      op.norm = enc.norm1;
      op.bp = bp;
      op.len = len;
      op.heads = H;
      op.dhead = Dh;
      op.rows = bp * len;
      op.buf[kAtLn] = pb_ln;
      op.buf[kAtTmp] = H > 1 ? pb_tmp : -1;
      op.buf[kAtQ] = pb_q;
      op.buf[kAtK] = pb_k;
      op.buf[kAtV] = pb_v;
      op.buf[kAtScores] = pb_scores;
      op.buf[kAtCtx] = pb_ctx;
      op.buf[kAtMerged] = H > 1 ? pb_att : pb_ctx;
      op.buf[kAtBpack] = pb_bpack;
      for (int i = 0; i < kAtSlots; ++i) Touch(op.buf[i]);
      Touch(xbuf);
      ops.push_back(op);
    }
    {
      Op op;
      op.kind = OpKind::kFfn;
      op.src = op.dst = xbuf;
      op.w[0] = enc.fc1;
      op.w[1] = enc.fc2;
      op.norm = enc.norm2;
      op.rows = bp * len;
      op.buf[kAtLn] = pb_ln;
      op.buf[kAtTmp] = pb_ffh;
      Touch(pb_ln);
      Touch(pb_ffh);
      Touch(xbuf);
      ops.push_back(op);
    }
  }

  void Capture(const DenoiserSpec& spec) {
    model = spec.model;
    sched = spec.schedule;
    vote_ts = spec.vote_ts;
    chain_begin = spec.chain_begin;
    conditional = spec.conditional;
    stoch = spec.stochastic_sampling;
    score_x0 = spec.score_on_x0;
    precision = spec.precision;

    const ImTransformerConfig& mc = model->config();
    B = spec.bsz;
    K = mc.num_features;
    L = mc.window;
    KL = K * L;
    R = B * KL;
    D = mc.hidden;
    E = mc.step_embed_dim;
    S2 = 2 * mc.side_dim;
    FF = mc.ff_dim;
    NB = mc.num_blocks;
    H = mc.num_heads;
    Dh = D / static_cast<int64_t>(H);
    P = static_cast<int>(spec.policy_masks.size());
    Tp = chain_begin + 1;
    IMDIFF_CHECK_GT(P, 0);
    IMDIFF_CHECK_GT(B, 0);

    // Policy masks tiled over the chunk, and their complements — the exact
    // data movement of ScoreWindowBatch's TileMask/Complement.
    for (int p = 0; p < P; ++p) {
      const Tensor& m2d = spec.policy_masks[static_cast<size_t>(p)];
      IMDIFF_CHECK_EQ(m2d.numel(), KL);
      Tensor tiled = Tensor::Uninitialized({B, K, L});
      float* pt = tiled.mutable_data();
      for (int64_t b = 0; b < B; ++b) {
        std::copy_n(m2d.data(), KL, pt + b * KL);
      }
      Tensor inv = Tensor::Uninitialized({B, K, L});
      float* pi = inv.mutable_data();
      for (int64_t i = 0; i < R; ++i) pi[i] = 1.0f - pt[i];
      mask_tile.push_back(std::move(tiled));
      inv_tile.push_back(std::move(inv));
    }

    // Side information rows [KL, 2*side]: feature-embedding row of the
    // token's feature, then the token's sinusoidal time row — the concat the
    // legacy forward rebuilds per call.
    {
      const int64_t side = S2 / 2;
      const float* feat = model->feature_embed().table().data();
      const float* time = model->time_embed().data();
      side_const = Tensor::Uninitialized({KL, S2});
      float* po = side_const.mutable_data();
      for (int64_t j = 0; j < K; ++j) {
        for (int64_t l = 0; l < L; ++l) {
          float* row = po + (j * L + l) * S2;
          std::copy_n(feat + j * side, side, row);
          std::copy_n(time + l * side, side, row + side);
        }
      }
    }

    for (size_t s = 0; s < vote_ts.size(); ++s) {
      step_diff.emplace_back(Shape{B, K, L});
    }

    // ---- Weights ---------------------------------------------------------
    w_input = AddWeight(model->input_proj());
    IMDIFF_CHECK(model->step_mlp().activation() == nn::Mlp::Activation::kSilu);
    w_mlp1 = AddWeight(model->step_mlp().fc1());
    w_mlp2 = AddWeight(model->step_mlp().fc2());
    w_head1 = AddWeight(model->head1());
    w_head2 = AddWeight(model->head2());
    for (const auto& rb : model->residual_blocks()) {
      BlockIds ids;
      ids.step_proj = AddWeight(*rb.step_proj);
      ids.temporal = CaptureEncoder(rb.temporal.get());
      ids.spatial = CaptureEncoder(rb.spatial.get());
      ids.side_proj = AddWeight(*rb.side_proj);
      ids.gate_proj = AddWeight(*rb.gate_proj);
      ids.out_proj = AddWeight(*rb.out_proj);
      blocks.push_back(ids);
    }

    // ---- Pinned buffers --------------------------------------------------
    const size_t r = static_cast<size_t>(R);
    bc_cur = NewBuf(r, true);
    bc_xm = NewBuf(r, true);
    bc_nr = NewBuf(r, true);
    bc_x0h = score_x0 ? NewBuf(r, true) : -1;
    bc_eps = NewBuf(r, true);
    bc_ref = NewBuf(static_cast<size_t>(P) * r, true);
    bc_chain = NewBuf(static_cast<size_t>(P) * r, true);
    bc_z = stoch ? NewBuf(static_cast<size_t>(KL), true) : -1;
    bc_sin = NewBuf(static_cast<size_t>(Tp * E), true);
    bc_mlpa = NewBuf(static_cast<size_t>(Tp * E), true);
    bc_mlpb = NewBuf(static_cast<size_t>(Tp * E), true);
    bc_comb = NewBuf(static_cast<size_t>(P) * static_cast<size_t>(Tp * E), true);
    bc_se = NewBuf(static_cast<size_t>(NB) * static_cast<size_t>(P) *
                       static_cast<size_t>(Tp * D),
                   true);
    bc_sider = NewBuf(static_cast<size_t>(NB) * static_cast<size_t>(KL * D),
                      true);

    // ---- Planned (liveness-managed) buffers ------------------------------
    const bool any_enc = [&] {
      for (const auto& bi : blocks) {
        if (bi.temporal.present || bi.spatial.present) return true;
      }
      return false;
    }();
    const bool any_spatial = [&] {
      for (const auto& bi : blocks) {
        if (bi.spatial.present) return true;
      }
      return false;
    }();
    const size_t rd = static_cast<size_t>(R * D);
    const int pb_stacked = NewBuf(static_cast<size_t>(R * 3), false);
    const int pb_h = NewBuf(rd, false);
    const int pb_hin = NewBuf(rd, false);
    const int pb_hs = any_spatial ? NewBuf(rd, false) : -1;
    if (any_enc) {
      pb_ln = NewBuf(rd, false);
      pb_tmp = H > 1 ? NewBuf(rd, false) : -1;
      pb_q = NewBuf(rd, false);
      pb_k = NewBuf(rd, false);
      pb_v = NewBuf(rd, false);
      // Worst case over the temporal ([B*K*H, L, L]) and spatial
      // ([B*L*H, K, K]) score matrices, shared by every encoder op.
      const size_t sc = static_cast<size_t>(
          std::max(B * K * H * L * L, B * L * H * K * K));
      pb_scores = NewBuf(sc, false);
      pb_ctx = NewBuf(rd, false);
      pb_att = H > 1 ? NewBuf(rd, false) : -1;
      pb_ffh = NewBuf(static_cast<size_t>(R * FF), false);
#if defined(IMDIFF_SIMD_ANY)
      const size_t items =
          static_cast<size_t>(std::max(B * K * H, B * L * H));
      const size_t panel = gemm::PanelFloats(std::max({Dh, L, K}));
      pb_bpack = NewBuf(items * panel, false);
#endif
    }
    const int pb_fg = NewBuf(static_cast<size_t>(R * 2 * D), false);
    const int pb_gated = NewBuf(rd, false);
    const int pb_rs = NewBuf(static_cast<size_t>(R * 2 * D), false);
    const int pb_skip = NewBuf(rd, false);
    const int pb_o1 = NewBuf(rd, false);
    const int pb_o2 = NewBuf(rd, false);

    // ---- Op list: one denoiser forward -----------------------------------
    {
      Op op;
      op.kind = OpKind::kStacked;
      op.dst = pb_stacked;
      op.rows = R;
      Touch(pb_stacked);
      ops.push_back(op);
    }
    EmitLinear(w_input, pb_stacked, pb_h, R, false);
    for (int bi = 0; bi < NB; ++bi) {
      const BlockIds& ids = blocks[static_cast<size_t>(bi)];
      {
        Op op;
        op.kind = OpKind::kAddRowBcast;
        op.src = pb_h;
        op.dst = pb_hin;
        op.block = bi;
        op.rows = R;
        Touch(pb_h);
        Touch(pb_hin);
        ops.push_back(op);
      }
      if (ids.temporal.present) {
        EmitEncoder(ids.temporal, pb_hin, B * K, L);
      }
      if (ids.spatial.present) {
        Op pi;
        pi.kind = OpKind::kPermuteToSpatial;
        pi.src = pb_hin;
        pi.dst = pb_hs;
        pi.rows = R;
        Touch(pb_hin);
        Touch(pb_hs);
        ops.push_back(pi);
        EmitEncoder(ids.spatial, pb_hs, B * L, K);
        Op po;
        po.kind = OpKind::kPermuteFromSpatial;
        po.src = pb_hs;
        po.dst = pb_hin;
        po.rows = R;
        Touch(pb_hs);
        Touch(pb_hin);
        ops.push_back(po);
      }
      {
        Op op;
        op.kind = OpKind::kAddSide;
        op.src = op.dst = pb_hin;
        op.block = bi;
        op.rows = R;
        Touch(pb_hin);
        ops.push_back(op);
      }
      EmitLinear(ids.gate_proj, pb_hin, pb_fg, R, false);
      {
        Op op;
        op.kind = OpKind::kGate;
        op.src = pb_fg;
        op.dst = pb_gated;
        op.rows = R;
        Touch(pb_fg);
        Touch(pb_gated);
        ops.push_back(op);
      }
      EmitLinear(ids.out_proj, pb_gated, pb_rs, R, false);
      {
        Op op;
        op.kind = OpKind::kResSkip;
        op.src = pb_rs;
        op.dst = pb_h;
        op.buf[0] = pb_skip;
        op.rows = R;
        op.first = bi == 0;
        op.scale = 1.0f / std::sqrt(2.0f);
        Touch(pb_rs);
        Touch(pb_h);
        Touch(pb_skip);
        ops.push_back(op);
      }
    }
    {
      Op op;
      op.kind = OpKind::kScale;
      op.src = pb_skip;
      op.dst = pb_o1;
      op.rows = R;
      op.scale = 1.0f / std::sqrt(static_cast<float>(NB));
      Touch(pb_skip);
      Touch(pb_o1);
      ops.push_back(op);
    }
    EmitLinear(w_head1, pb_o1, pb_o2, R, true);
    EmitLinear(w_head2, pb_o2, bc_eps, R, false);

    PlanOffsets();
    block = std::make_unique<ArenaBuffer>(total_floats);
    base = block->data();

    if (stoch) rngs.resize(static_cast<size_t>(P));

    MetricsRegistry::Global().GetCounter("graph.captures")->Increment();
    MetricsRegistry::Global()
        .GetGauge("graph.plan_bytes")
        ->Set(static_cast<double>(plan_bytes()));
    executions = MetricsRegistry::Global().GetCounter("graph.executions");
  }

  // First-fit linear-scan assignment of planned buffers into one block,
  // after the pinned region. Holes are coalesced on free.
  void PlanOffsets() {
    size_t cursor = 0;
    for (BufferInfo& b : bufs) {
      if (!b.pinned) continue;
      b.offset = cursor;
      cursor += AlignUp(b.floats);
    }
    std::vector<std::vector<int>> alloc_at(ops.size());
    std::vector<std::vector<int>> free_at(ops.size());
    for (size_t id = 0; id < bufs.size(); ++id) {
      const BufferInfo& b = bufs[id];
      if (b.pinned || b.first < 0) continue;
      alloc_at[static_cast<size_t>(b.first)].push_back(static_cast<int>(id));
      free_at[static_cast<size_t>(b.last)].push_back(static_cast<int>(id));
    }
    std::vector<std::pair<size_t, size_t>> holes;  // (offset, floats), sorted
    size_t high = cursor;
    for (size_t i = 0; i < ops.size(); ++i) {
      for (int id : alloc_at[i]) {
        BufferInfo& b = bufs[static_cast<size_t>(id)];
        const size_t need = AlignUp(b.floats);
        size_t best = holes.size();
        for (size_t hidx = 0; hidx < holes.size(); ++hidx) {
          if (holes[hidx].second >= need &&
              (best == holes.size() ||
               holes[hidx].second < holes[best].second)) {
            best = hidx;
          }
        }
        if (best < holes.size()) {
          b.offset = holes[best].first;
          holes[best].first += need;
          holes[best].second -= need;
          if (holes[best].second == 0) {
            holes.erase(holes.begin() + static_cast<int64_t>(best));
          }
        } else {
          b.offset = high;
          high += need;
        }
      }
      for (int id : free_at[i]) {
        const BufferInfo& b = bufs[static_cast<size_t>(id)];
        const size_t off = b.offset;
        const size_t sz = AlignUp(b.floats);
        auto it = std::lower_bound(
            holes.begin(), holes.end(), std::make_pair(off, size_t{0}));
        it = holes.insert(it, {off, sz});
        // Coalesce with the following hole, then the preceding one.
        const size_t at = static_cast<size_t>(it - holes.begin());
        if (at + 1 < holes.size() &&
            holes[at].first + holes[at].second == holes[at + 1].first) {
          holes[at].second += holes[at + 1].second;
          holes.erase(holes.begin() + static_cast<int64_t>(at) + 1);
        }
        if (at > 0 &&
            holes[at - 1].first + holes[at - 1].second == holes[at].first) {
          holes[at - 1].second += holes[at].second;
          holes.erase(holes.begin() + static_cast<int64_t>(at));
        }
      }
    }
    total_floats = std::max(high, size_t{1});
  }

  // ---- Execution ---------------------------------------------------------

  // dst rows = relu?(src rows @ W + b) with the exact GEMM kernels and the
  // exact MatMul row partition of the layer stack.
  void RunLinear(const Weight& w, const float* a, float* c, int64_t rows,
                 bool relu) {
    const size_t grain = gemm::RowGrain(2 * w.in * w.out);
    ParallelForRange(
        ComputePool(), static_cast<size_t>(rows), grain,
        [&](size_t begin, size_t end) {
          const int64_t rb = static_cast<int64_t>(begin);
          const int64_t re = static_cast<int64_t>(end);
          GemmRowsCore(w, a, c, rows, rb, re);
          for (int64_t r = rb; r < re; ++r) {
            float* row = c + r * w.out;
            if (w.bias != nullptr) simd::AddInto(row, row, w.bias, w.out);
            if (relu) {
              for (int64_t j = 0; j < w.out; ++j) {
                row[j] = row[j] > 0.0f ? row[j] : 0.0f;
              }
            }
          }
        });
  }

  // Rows [rb, re) of LayerNorm(x) into `out` — the row body of
  // LayerNormForward (tensor_ops.cc) verbatim.
  void NormRows(const Norm& nm, const float* x, float* out, int64_t rb,
                int64_t re) {
    const float inv_n = 1.0f / static_cast<float>(D);
    for (int64_t r = rb; r < re; ++r) {
      const float* row = x + r * D;
      const float mean = simd::Sum(row, D) * inv_n;
      const float var = simd::SqDiffSum(row, mean, D) * inv_n;
      const float is = 1.0f / std::sqrt(var + 1e-5f);
      float* orow = out + r * D;
      simd::ScaledDiffInto(orow, row, mean, is, D);
      simd::FmaInto(orow, orow, nm.gamma, nm.beta, D);
    }
  }

  // Rows [rb, re) of c = a @ W (no bias, no epilogue) at the context's
  // precision — the single GEMM body every lowered Linear shares. Row-local
  // like the underlying kernels, so it is safe inside any row partition.
  void GemmRowsCore(const Weight& w, const float* a, float* c, int64_t rows,
                    int64_t rb, int64_t re) {
    if (precision == Precision::kBf16) {
      quant::GemmRowsBf16(a, w.packed_bf16, c, w.in, w.out, rb, re);
      return;
    }
    if (precision == Precision::kInt8) {
      quant::GemmRowsInt8(a, w.packed_int8, c, w.in, w.out, rb, re);
      return;
    }
#if defined(IMDIFF_SIMD_ANY)
    if (simd::Enabled()) {
      gemm::GemmRowsPrepacked(a, w.packed.data(), c, rows, w.in, w.out, rb, re);
      return;
    }
#endif
    std::memset(c + rb * w.out, 0,
                static_cast<size_t>((re - rb) * w.out) * sizeof(float));
    gemm::MatMulRowsScalar(a, w.w, c, rows, w.in, w.out, false, false, rb, re);
  }

  // Rows [rb, re) of c = a @ W + b for an encoder sub-layer, inside an
  // already-parallel row range.
  void GemmRowsBias(const Weight& w, const float* a, float* c, int64_t rows,
                    int64_t rb, int64_t re) {
    GemmRowsCore(w, a, c, rows, rb, re);
    if (w.bias != nullptr) {
      for (int64_t r = rb; r < re; ++r) {
        float* row = c + r * w.out;
        simd::AddInto(row, row, w.bias, w.out);
      }
    }
  }

  void RunAttention(const Op& op) {
    float* x = Buf(op.dst);
    float* ln = Buf(op.buf[kAtLn]);
    float* qh = Buf(op.buf[kAtQ]);
    float* kh = Buf(op.buf[kAtK]);
    float* vh = Buf(op.buf[kAtV]);
    float* scores = Buf(op.buf[kAtScores]);
    float* ctx = Buf(op.buf[kAtCtx]);
    float* merged = Buf(op.buf[kAtMerged]);
    float* tmp = op.buf[kAtTmp] >= 0 ? Buf(op.buf[kAtTmp]) : nullptr;
    const Weight& wq = weights[static_cast<size_t>(op.w[0])];
    const Weight& wk = weights[static_cast<size_t>(op.w[1])];
    const Weight& wv = weights[static_cast<size_t>(op.w[2])];
    const Weight& wo = weights[static_cast<size_t>(op.w[3])];
    const Norm& nm = norms[static_cast<size_t>(op.norm)];
    const int64_t rows = op.rows;
    const int64_t len = op.len;
    const int64_t dh = op.dhead;
    const int heads = op.heads;

    // Fused LayerNorm + QKV projections (+ head split when heads > 1).
    ParallelForRange(
        ComputePool(), static_cast<size_t>(rows), gemm::RowGrain(6 * D * D),
        [&](size_t begin, size_t end) {
          const int64_t rb = static_cast<int64_t>(begin);
          const int64_t re = static_cast<int64_t>(end);
          NormRows(nm, x, ln, rb, re);
          const Weight* ws[3] = {&wq, &wk, &wv};
          float* outs[3] = {qh, kh, vh};
          for (int wi = 0; wi < 3; ++wi) {
            float* gdst = heads > 1 ? tmp : outs[wi];
            GemmRowsBias(*ws[wi], ln, gdst, rows, rb, re);
            if (heads > 1) {
              for (int64_t r = rb; r < re; ++r) {
                const int64_t item = r / len;
                const int64_t l = r % len;
                for (int h = 0; h < heads; ++h) {
                  std::memcpy(
                      outs[wi] + (((item * heads + h) * len) + l) * dh,
                      gdst + r * D + h * dh,
                      static_cast<size_t>(dh) * sizeof(float));
                }
              }
            }
          }
        });

    // Per-(sequence, head) scaled-dot-product attention.
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
    const size_t items = static_cast<size_t>(op.bp * heads);
#if defined(IMDIFF_SIMD_ANY)
    float* bpack = op.buf[kAtBpack] >= 0 ? Buf(op.buf[kAtBpack]) : nullptr;
    const size_t panel = gemm::PanelFloats(std::max({Dh, L, K}));
#endif
    ParallelFor(
        ComputePool(), items,
        [&](size_t item) {
          const int64_t i = static_cast<int64_t>(item);
          const float* qi = qh + i * len * dh;
          const float* ki = kh + i * len * dh;
          const float* vi = vh + i * len * dh;
          float* si = scores + i * len * len;
          float* ci = ctx + i * len * dh;
#if defined(IMDIFF_SIMD_ANY)
          if (simd::Enabled()) {
            float* bp_scr = bpack + item * panel;
            gemm::GemmRowsPackedScratch(qi, ki, si, len, dh, len, false, true,
                                        0, len, bp_scr, nullptr);
            simd::ScaleInPlace(si, scale, len * len);
            for (int64_t rr = 0; rr < len; ++rr) {
              float* srow = si + rr * len;
              const float mx = simd::MaxReduce(srow, len);
              const float sum = simd::ExpSumInto(srow, srow, mx, len);
              simd::ScaleInPlace(srow, 1.0f / sum, len);
            }
            gemm::GemmRowsPackedScratch(si, vi, ci, len, len, dh, false, false,
                                        0, len, bp_scr, nullptr);
            return;
          }
#endif
          std::memset(si, 0, static_cast<size_t>(len * len) * sizeof(float));
          gemm::MatMulRowsScalar(qi, ki, si, len, dh, len, false, true, 0,
                                 len);
          simd::ScaleInPlace(si, scale, len * len);
          for (int64_t rr = 0; rr < len; ++rr) {
            float* srow = si + rr * len;
            const float mx = simd::MaxReduce(srow, len);
            const float sum = simd::ExpSumInto(srow, srow, mx, len);
            simd::ScaleInPlace(srow, 1.0f / sum, len);
          }
          std::memset(ci, 0, static_cast<size_t>(len * dh) * sizeof(float));
          gemm::MatMulRowsScalar(si, vi, ci, len, len, dh, false, false, 0,
                                 len);
        },
        gemm::RowGrain(2 * len * dh * len));

    // Merge heads (gather per range) + output projection + residual.
    ParallelForRange(
        ComputePool(), static_cast<size_t>(rows), gemm::RowGrain(2 * D * D),
        [&](size_t begin, size_t end) {
          const int64_t rb = static_cast<int64_t>(begin);
          const int64_t re = static_cast<int64_t>(end);
          if (heads > 1) {
            for (int64_t r = rb; r < re; ++r) {
              const int64_t item = r / len;
              const int64_t l = r % len;
              for (int h = 0; h < heads; ++h) {
                std::memcpy(merged + r * D + h * dh,
                            ctx + (((item * heads + h) * len) + l) * dh,
                            static_cast<size_t>(dh) * sizeof(float));
              }
            }
          }
          GemmRowsBias(wo, merged, ln, rows, rb, re);
          for (int64_t r = rb; r < re; ++r) {
            simd::AddInPlace(x + r * D, ln + r * D, D);
          }
        });
  }

  // The ISSUE's LayerNorm -> MatMul -> GELU chain, fused into one row pass:
  // x += fc2(GELU(fc1(LayerNorm(x)))).
  void RunFfn(const Op& op) {
    float* x = Buf(op.dst);
    float* ln = Buf(op.buf[kAtLn]);
    float* ffh = Buf(op.buf[kAtTmp]);
    const Weight& fc1 = weights[static_cast<size_t>(op.w[0])];
    const Weight& fc2 = weights[static_cast<size_t>(op.w[1])];
    const Norm& nm = norms[static_cast<size_t>(op.norm)];
    const int64_t rows = op.rows;
    ParallelForRange(
        ComputePool(), static_cast<size_t>(rows), gemm::RowGrain(2 * D * FF),
        [&](size_t begin, size_t end) {
          const int64_t rb = static_cast<int64_t>(begin);
          const int64_t re = static_cast<int64_t>(end);
          NormRows(nm, x, ln, rb, re);
          GemmRowsBias(fc1, ln, ffh, rows, rb, re);
          simd::GeluInto(ffh + rb * FF, ffh + rb * FF, (re - rb) * FF);
          GemmRowsBias(fc2, ffh, ln, rows, rb, re);
          for (int64_t r = rb; r < re; ++r) {
            simd::AddInPlace(x + r * D, ln + r * D, D);
          }
        });
  }

  void RunForward() {
    const float* se_rows = Buf(bc_se);
    const float* side_rows = Buf(bc_sider);
    for (const Op& op : ops) {
      switch (op.kind) {
        case OpKind::kStacked: {
          const float* xm = Buf(bc_xm);
          const float* nr = Buf(bc_nr);
          const float* mk = dyn_mask;
          float* po = Buf(op.dst);
          ParallelForRange(ComputePool(), static_cast<size_t>(op.rows),
                           gemm::kElementGrain,
                           [&](size_t begin, size_t end) {
                             for (int64_t i = static_cast<int64_t>(begin);
                                  i < static_cast<int64_t>(end); ++i) {
                               po[i * 3 + 0] = xm[i];
                               po[i * 3 + 1] = nr[i];
                               po[i * 3 + 2] = mk[i];
                             }
                           });
          break;
        }
        case OpKind::kLinear:
          RunLinear(weights[static_cast<size_t>(op.w[0])], Buf(op.src),
                    Buf(op.dst), op.rows, op.relu);
          break;
        case OpKind::kAddRowBcast: {
          const float* src = Buf(op.src);
          float* dst = Buf(op.dst);
          const float* se =
              se_rows +
              ((static_cast<int64_t>(op.block) * P + dyn_policy) * Tp +
               dyn_t) *
                  D;
          ParallelForRange(ComputePool(), static_cast<size_t>(op.rows),
                           gemm::RowGrain(D),
                           [&](size_t begin, size_t end) {
                             for (int64_t r = static_cast<int64_t>(begin);
                                  r < static_cast<int64_t>(end); ++r) {
                               simd::AddInto(dst + r * D, src + r * D, se, D);
                             }
                           });
          break;
        }
        case OpKind::kAddSide: {
          float* x = Buf(op.dst);
          const float* side = side_rows + static_cast<int64_t>(op.block) * KL * D;
          ParallelForRange(ComputePool(), static_cast<size_t>(op.rows),
                           gemm::RowGrain(D),
                           [&](size_t begin, size_t end) {
                             for (int64_t r = static_cast<int64_t>(begin);
                                  r < static_cast<int64_t>(end); ++r) {
                               simd::AddInPlace(x + r * D,
                                                side + (r % KL) * D, D);
                             }
                           });
          break;
        }
        case OpKind::kPermuteToSpatial: {
          const float* src = Buf(op.src);
          float* dst = Buf(op.dst);
          ParallelForRange(
              ComputePool(), static_cast<size_t>(op.rows), gemm::RowGrain(D),
              [&](size_t begin, size_t end) {
                for (int64_t r = static_cast<int64_t>(begin);
                     r < static_cast<int64_t>(end); ++r) {
                  const int64_t b = r / KL;
                  const int64_t rem = r % KL;
                  const int64_t l = rem / K;
                  const int64_t j = rem % K;
                  std::memcpy(dst + r * D, src + ((b * K + j) * L + l) * D,
                              static_cast<size_t>(D) * sizeof(float));
                }
              });
          break;
        }
        case OpKind::kPermuteFromSpatial: {
          const float* src = Buf(op.src);
          float* dst = Buf(op.dst);
          ParallelForRange(
              ComputePool(), static_cast<size_t>(op.rows), gemm::RowGrain(D),
              [&](size_t begin, size_t end) {
                for (int64_t r = static_cast<int64_t>(begin);
                     r < static_cast<int64_t>(end); ++r) {
                  const int64_t b = r / KL;
                  const int64_t rem = r % KL;
                  const int64_t j = rem / L;
                  const int64_t l = rem % L;
                  std::memcpy(dst + r * D, src + ((b * L + l) * K + j) * D,
                              static_cast<size_t>(D) * sizeof(float));
                }
              });
          break;
        }
        case OpKind::kAttention:
          RunAttention(op);
          break;
        case OpKind::kFfn:
          RunFfn(op);
          break;
        case OpKind::kGate: {
          const float* fg = Buf(op.src);
          float* out = Buf(op.dst);
          ParallelForRange(
              ComputePool(), static_cast<size_t>(op.rows), gemm::RowGrain(8 * D),
              [&](size_t begin, size_t end) {
                for (int64_t r = static_cast<int64_t>(begin);
                     r < static_cast<int64_t>(end); ++r) {
                  const float* frow = fg + r * 2 * D;
                  float* orow = out + r * D;
                  for (int64_t j = 0; j < D; ++j) {
                    const float tf = std::tanh(frow[j]);
                    const float sg = 1.0f / (1.0f + std::exp(-frow[D + j]));
                    orow[j] = tf * sg;
                  }
                }
              });
          break;
        }
        case OpKind::kResSkip: {
          const float* rs = Buf(op.src);
          float* h = Buf(op.dst);
          float* skip = Buf(op.buf[0]);
          const float s = op.scale;
          const bool first = op.first;
          ParallelForRange(
              ComputePool(), static_cast<size_t>(op.rows), gemm::RowGrain(4 * D),
              [&](size_t begin, size_t end) {
                for (int64_t r = static_cast<int64_t>(begin);
                     r < static_cast<int64_t>(end); ++r) {
                  const float* rr = rs + r * 2 * D;
                  float* hr = h + r * D;
                  float* sr = skip + r * D;
                  for (int64_t j = 0; j < D; ++j) {
                    const float t = hr[j] + rr[j];
                    hr[j] = t * s;
                    if (first) {
                      sr[j] = rr[D + j];
                    } else {
                      sr[j] += rr[D + j];
                    }
                  }
                }
              });
          break;
        }
        case OpKind::kScale: {
          const float* src = Buf(op.src);
          float* dst = Buf(op.dst);
          const float s = op.scale;
          ParallelForRange(ComputePool(),
                           static_cast<size_t>(op.rows * D),
                           gemm::kElementGrain,
                           [&](size_t begin, size_t end) {
                             simd::ScaleInto(
                                 dst + static_cast<int64_t>(begin),
                                 src + static_cast<int64_t>(begin), s,
                                 static_cast<int64_t>(end - begin));
                           });
          break;
        }
      }
    }
  }

  // Per-execute uniform rows: the (t, policy, block) quantities the legacy
  // stack recomputes per forward call. Row results of a GEMM depend only on
  // that row's inputs, so batching all (policy, t) rows through one call is
  // bitwise identical to the legacy per-call rows.
  void ComputeUniformRows() {
    float* sin_rows = Buf(bc_sin);
    float* mlpa = Buf(bc_mlpa);
    float* mlpb = Buf(bc_mlpb);
    float* comb = Buf(bc_comb);
    // Sinusoidal step rows for every t the chain visits — the exact
    // SinusoidalEmbedding expression (layers.cc).
    const int64_t half = E / 2;
    const float max_period = 10000.0f;
    std::memset(sin_rows, 0, static_cast<size_t>(Tp * E) * sizeof(float));
    for (int t = 0; t < Tp; ++t) {
      float* row = sin_rows + static_cast<int64_t>(t) * E;
      for (int64_t j = 0; j < half; ++j) {
        const float freq =
            std::exp(-std::log(max_period) * static_cast<float>(j) /
                     static_cast<float>(half > 1 ? half - 1 : 1));
        const float angle = static_cast<float>(t) * freq;
        row[j] = std::sin(angle);
        row[half + j] = std::cos(angle);
      }
    }
    // step_mlp: fc1 -> SiLU -> fc2 (Mlp::Forward with kSilu).
    RunLinear(weights[static_cast<size_t>(w_mlp1)], sin_rows, mlpa, Tp, false);
    simd::SiluInto(mlpa, mlpa, Tp * E);
    RunLinear(weights[static_cast<size_t>(w_mlp2)], mlpa, mlpb, Tp, false);
    // Combined step embedding per (policy, t): policy row + mlp row.
    const float* ptable = model->policy_embed().table().data();
    for (int p = 0; p < P; ++p) {
      for (int t = 0; t < Tp; ++t) {
        simd::AddInto(comb + (static_cast<int64_t>(p) * Tp + t) * E,
                      ptable + static_cast<int64_t>(p) * E,
                      mlpb + static_cast<int64_t>(t) * E, E);
      }
    }
    // Per-block step projection of every (policy, t) row, and the per-block
    // side projection of the constant side rows.
    float* se_rows = Buf(bc_se);
    float* side_rows = Buf(bc_sider);
    for (int bi = 0; bi < NB; ++bi) {
      RunLinear(weights[static_cast<size_t>(
                    blocks[static_cast<size_t>(bi)].step_proj)],
                comb, se_rows + static_cast<int64_t>(bi) * P * Tp * D,
                static_cast<int64_t>(P) * Tp, false);
      RunLinear(weights[static_cast<size_t>(
                    blocks[static_cast<size_t>(bi)].side_proj)],
                side_const.data(),
                side_rows + static_cast<int64_t>(bi) * KL * D, KL, false);
    }
  }

  void ScoreChunk(const float* windows, const uint64_t* seeds) {
    executions->Increment();
    for (Tensor& sd : step_diff) {
      std::memset(sd.mutable_data(), 0,
                  static_cast<size_t>(sd.numel()) * sizeof(float));
    }
    const float* x0 = windows;
    float* ref = Buf(bc_ref);
    float* chain = Buf(bc_chain);
    // Per-window noise in the exact legacy consumption order: policy-0
    // reference, policy-0 chain start, policy-1 reference, policy-1 chain
    // start, then the forked per-policy sampling streams.
    for (int p = 0; p < P && stoch; ++p) rngs[static_cast<size_t>(p)].clear();
    for (int64_t b = 0; b < B; ++b) {
      Rng wrng(seeds[b]);
      for (int p = 0; p < P; ++p) {
        wrng.FillNormal(ref + (static_cast<int64_t>(p) * B + b) * KL,
                        static_cast<size_t>(KL));
        wrng.FillNormal(chain + (static_cast<int64_t>(p) * B + b) * KL,
                        static_cast<size_t>(KL));
      }
      if (stoch) {
        for (int p = 0; p < P; ++p) {
          rngs[static_cast<size_t>(p)].push_back(wrng.Fork());
        }
      }
    }

    ComputeUniformRows();

    float* cur = Buf(bc_cur);
    float* xm = Buf(bc_xm);
    float* nr = Buf(bc_nr);
    float* eps = Buf(bc_eps);
    float* x0h = bc_x0h >= 0 ? Buf(bc_x0h) : nullptr;
    float* z = bc_z >= 0 ? Buf(bc_z) : nullptr;
    const size_t num_votes = vote_ts.size();
    for (int p = 0; p < P; ++p) {
      const float* mask = mask_tile[static_cast<size_t>(p)].data();
      const float* inv = inv_tile[static_cast<size_t>(p)].data();
      dyn_mask = mask;
      dyn_policy = p;
      std::memcpy(cur, chain + static_cast<int64_t>(p) * R,
                  static_cast<size_t>(R) * sizeof(float));
      if (conditional) {
        // noise_ref = x0 * mask, constant along the chain.
        simd::MulInto(nr, x0, mask, R);
      }
      const float* pref = ref + static_cast<int64_t>(p) * R;
      size_t vote_idx = 0;
      for (int t = chain_begin; t >= 0; --t) {
        dyn_t = t;
        simd::MulInto(xm, cur, inv, R);
        if (!conditional) {
          // Mul(QSampleWithNoise(x0, t, ref), mask) with the intermediate
          // rounded to float exactly as the legacy two-op sequence does.
          const float a = sched->sqrt_alpha_bar(t);
          const float bq = sched->sqrt_one_minus_alpha_bar(t);
          for (int64_t i = 0; i < R; ++i) {
            const float q = a * x0[i] + bq * pref[i];
            nr[i] = q * mask[i];
          }
        }
        RunForward();
        const bool is_vote =
            vote_idx < num_votes && t == vote_ts[vote_idx];
        if (is_vote && score_x0) {
          // PredictX0(cur, eps, t), before the posterior update.
          const float a = sched->sqrt_alpha_bar(t);
          const float bq = sched->sqrt_one_minus_alpha_bar(t);
          const float inv_a = 1.0f / a;
          for (int64_t i = 0; i < R; ++i) {
            x0h[i] = (cur[i] - bq * eps[i]) * inv_a;
          }
        }
        {
          // PosteriorMean(cur, eps, t); elementwise, safe in place.
          const float inv_sqrt_alpha = 1.0f / std::sqrt(sched->alpha(t));
          const float coef =
              sched->beta(t) / sched->sqrt_one_minus_alpha_bar(t);
          for (int64_t i = 0; i < R; ++i) {
            cur[i] = inv_sqrt_alpha * (cur[i] - coef * eps[i]);
          }
        }
        if (stoch && t > 0) {
          const float sigma = std::sqrt(sched->posterior_variance(t));
          for (int64_t b = 0; b < B; ++b) {
            rngs[static_cast<size_t>(p)][static_cast<size_t>(b)].FillNormal(
                z, static_cast<size_t>(KL));
            float* pw = cur + b * KL;
            for (int64_t i = 0; i < KL; ++i) {
              pw[i] += sigma * z[i];
            }
          }
        }
        if (is_vote) {
          const float* pc = score_x0 ? x0h : cur;
          float* ps = step_diff[vote_idx].mutable_data();
          for (int64_t i = 0; i < R; ++i) {
            if (inv[i] != 0.0f) {
              ps[i] += pc[i] - x0[i];
            }
          }
          ++vote_idx;
        }
      }
    }
  }

  size_t plan_bytes() const { return total_floats * sizeof(float); }
};

GraphContext::GraphContext(const DenoiserSpec& spec)
    : impl_(std::make_unique<Impl>()) {
  impl_->Capture(spec);
}

GraphContext::~GraphContext() = default;

int64_t GraphContext::bsz() const { return impl_->B; }

void GraphContext::ScoreChunk(const float* windows, const uint64_t* seeds) {
  impl_->ScoreChunk(windows, seeds);
}

const std::vector<Tensor>& GraphContext::step_diff() const {
  return impl_->step_diff;
}

bool GraphContext::validated_for_current_mode() const {
  return simd::Enabled() ? impl_->ok_simd.load(std::memory_order_acquire)
                         : impl_->ok_scalar.load(std::memory_order_acquire);
}

void GraphContext::mark_validated_for_current_mode() {
  if (simd::Enabled()) {
    impl_->ok_simd.store(true, std::memory_order_release);
  } else {
    impl_->ok_scalar.store(true, std::memory_order_release);
  }
}

size_t GraphContext::plan_bytes() const { return impl_->plan_bytes(); }

std::unique_ptr<GraphContext> GraphCache::Acquire(int64_t bsz,
                                                  int degrade_level,
                                                  Precision precision,
                                                  const Factory& make) {
  if (disabled()) return nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pool_.find({bsz, degrade_level, static_cast<int>(precision)});
    if (it != pool_.end() && !it->second.empty()) {
      std::unique_ptr<GraphContext> ctx = std::move(it->second.back());
      it->second.pop_back();
      return ctx;
    }
  }
  return make();
}

void GraphCache::Release(int64_t bsz, int degrade_level, Precision precision,
                         std::unique_ptr<GraphContext> ctx) {
  if (ctx == nullptr || disabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  pool_[{bsz, degrade_level, static_cast<int>(precision)}].push_back(
      std::move(ctx));
}

void GraphCache::Disable() {
  disabled_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  pool_.clear();
}

}  // namespace graph
}  // namespace imdiff
