// Reduced-precision weight-GEMM kernels for the scoring precision ladder
// (DESIGN.md §17).
//
// Two variants, both reusing the panel machinery of tensor/gemm.h (the b
// operand packed into zero-padded column panels, an MR-tall register-tiled
// microkernel, every output element stored exactly once):
//
//  - bf16: weights and activations truncate-rounded (round-to-nearest-even)
//    to bfloat16, products accumulated in fp32. The AVX-512 BF16 body pairs
//    reduction steps into vdpbf16ps lanes; the scalar body replicates the
//    same pairing with fp32 arithmetic (a bf16 x bf16 product is exact in
//    fp32, so only the instruction's internal sum order can differ — bf16
//    scalar and vector modes are therefore *separate* bit patterns, exactly
//    like the fp32 kernels' scalar/SIMD split).
//  - int8: weights quantized symmetrically per output channel (absmax / 127)
//    at pack time, activations asymmetrically per row ([0, 255], computed in
//    scalar arithmetic on every path) at call time, i32 accumulation
//    (vpdpbusd), and a fused dequantization epilogue
//        c = s_b[j] * fma(s_a[i], float(acc), min_a[i] * colsum[j])
//    written with the identical operation shape in the scalar and vector
//    bodies. Because integer accumulation is exact and the epilogue is three
//    correctly-rounded float ops, the int8 kernel is bitwise identical
//    across the scalar and SIMD paths — and across build architectures.
//
// Packing is a pure function of the weight tensor: a capture-time pack
// (graph executor) and a per-call pack (legacy layer stack) produce the same
// bits, which is what keeps graph and stack scores bitwise identical at
// every precision. Panel geometry is a fixed 32 columns (kQNR) independent
// of the compiled vector width, so packed layouts — and int8 scores — do not
// depend on the build's ISA.
//
// The paired-k (bf16) and quad-k (int8) panel layouts are exactly the AMX
// "VNNI" tile format: 16 consecutive panel words are one tile row, so on
// hardware with AMX-BF16 / AMX-INT8 the same packed buffers feed tdpbf16ps /
// tdpbusd tile kernels directly (reduction groups are padded to multiples of
// 16 — one tile height — with zeros, which contribute exact-zero products).
// The AMX int8 body accumulates the same exact integers and runs the same
// dequant epilogue, so the scalar == vector == AMX bitwise identity holds;
// the AMX bf16 body is its own bit pattern, like every bf16 kernel mode.

#ifndef IMDIFF_TENSOR_QUANT_H_
#define IMDIFF_TENSOR_QUANT_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/precision.h"

namespace imdiff {
namespace quant {

// Columns per packed panel. Fixed (not derived from simd::kVectorWidth) so
// the packed layout is identical in every build configuration.
constexpr int64_t kQNR = 32;

// f32 -> bf16 with round-to-nearest-even (the top 16 bits of the f32 pattern
// after adding the rounding bias). NaN payloads are quieted instead of being
// carried into the rounding add.
inline uint16_t Bf16FromF32(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  if ((bits & 0x7fffffffu) > 0x7f800000u) {
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  bits += 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>(bits >> 16);
}

inline float F32FromBf16(uint16_t h) {
  const uint32_t bits = static_cast<uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

// Weights packed for the bf16 kernel: per column panel, reduction steps are
// paired — word [g * kQNR + jj] of a panel holds bf16(b[2g][j]) in its low
// half and bf16(b[2g+1][j]) in its high half (zero-padded past k or the
// column edge; a zero pad contributes an exact 0 product).
struct PackedBf16 {
  std::vector<uint32_t> data;
  int64_t k = 0;
  int64_t n = 0;
};

// Weights packed for the int8 kernel: reduction steps are grouped in fours —
// word [g * kQNR + jj] of a panel holds the signed-byte quants of
// b[4g..4g+3][j]. `scale` is the per-column dequant scale s_b = absmax / 127
// and `colsum` the per-column sum of quants (an exact small integer, stored
// as float for the fused epilogue); both are zero-padded to whole panels.
struct PackedInt8 {
  std::vector<uint32_t> data;
  std::vector<float> scale;
  std::vector<float> colsum;
  int64_t k = 0;
  int64_t n = 0;
};

// Reduction-group counts (panel row strides), padded to whole AMX tile
// heights of 16. Padding groups are packed as zero words.
inline int64_t Bf16Groups(int64_t k) {
  return ((k + 1) / 2 + 15) / 16 * 16;
}
inline int64_t Int8Groups(int64_t k) {
  return ((k + 3) / 4 + 15) / 16 * 16;
}

// Words of packed storage for a logical [k, n] operand.
inline size_t Bf16PackedWords(int64_t k, int64_t n) {
  return static_cast<size_t>((n + kQNR - 1) / kQNR) *
         static_cast<size_t>(Bf16Groups(k)) * static_cast<size_t>(kQNR);
}
inline size_t Int8PackedWords(int64_t k, int64_t n) {
  return static_cast<size_t>((n + kQNR - 1) / kQNR) *
         static_cast<size_t>(Int8Groups(k)) * static_cast<size_t>(kQNR);
}

// Packs a logical [k, n] weight operand (tb: stored [n, k]). Pure functions
// of the input bytes — scalar arithmetic only, no ISA dependence.
void PackBf16(const float* b, int64_t k, int64_t n, bool tb, PackedBf16* out);
void PackInt8(const float* b, int64_t k, int64_t n, bool tb, PackedInt8* out);

// Rows [row_begin, row_end) of c[., n] = a @ B for prepacked weights; `a` is
// the non-transposed [., k] activation layout and every covered output
// element is stored exactly once (c may arrive uninitialized). Row-local:
// a row's result depends only on that row's activations and the pack, never
// on the row partition — safe under any ParallelForRange split. Dispatches
// internally between the vector body (when compiled in and simd::Enabled())
// and the scalar body.
void GemmRowsBf16(const float* a, const PackedBf16& b, float* c, int64_t k,
                  int64_t n, int64_t row_begin, int64_t row_end);
void GemmRowsInt8(const float* a, const PackedInt8& b, float* c, int64_t k,
                  int64_t n, int64_t row_begin, int64_t row_end);

// Full linear layer at a reduced precision: y[m, n] = x[m, k] @ w[k, n]
// (+ bias when non-null), packing w per call and parallelizing over rows on
// the compute pool like gemm::MatMulInto. The per-call pack is bitwise
// identical to a capture-time pack, and the bias add matches the graph
// executor's row epilogue, so this is the legacy-stack twin of the graph's
// quantized linear op. `precision` must not be kF32.
void LinearInto(const float* x, const float* w, const float* bias, float* y,
                int64_t m, int64_t k, int64_t n, Precision precision);

// True when this build carries a vector body for the precision (AVX-512
// BF16 / VNNI compiled in); false means the scalar body serves both kernel
// modes. Exposed for tests and bench labeling.
bool HasVectorBf16();
bool HasVectorInt8();

// True when the AMX tile body would serve vector-mode calls for the
// precision: compiled in (AMX-BF16 / AMX-INT8), the kernel granted tile-data
// permission by the OS, and not disabled. Exposed for tests and bench
// labeling.
bool HasAmxBf16();
bool HasAmxInt8();

// Test/bench hook: route vector-mode calls to the AVX-512 bodies even when
// AMX is available (e.g. to check the int8 AMX == AVX-512 bitwise identity
// in one process). Not consulted by scalar mode.
void SetDisableAmx(bool disable);

}  // namespace quant
}  // namespace imdiff

#endif  // IMDIFF_TENSOR_QUANT_H_
