#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/arena.h"
#include "tensor/gemm.h"
#include "tensor/simd.h"
#include "utils/check.h"
#include "utils/thread_pool.h"

// Vector bodies need both the project's AVX-512 path and the instruction-set
// extension the kernel is built on; without them the scalar body serves both
// kernel modes (for int8 that is invisible — the scalar and vector bodies are
// bitwise identical by construction).
#if defined(IMDIFF_SIMD_AVX512) && defined(__AVX512BF16__)
#define IMDIFF_QUANT_BF16_VEC 1
#endif
#if defined(IMDIFF_SIMD_AVX512) && defined(__AVX512VNNI__)
#define IMDIFF_QUANT_INT8_VEC 1
#endif

// AMX tile bodies additionally need the OS to grant tile-data state at
// runtime (Linux arch_prctl), checked once in AmxPermitted().
#if defined(IMDIFF_SIMD_AVX512) && defined(__AMX_TILE__) && \
    defined(__AMX_BF16__) && defined(__linux__)
#define IMDIFF_QUANT_AMX_BF16 1
#endif
#if defined(IMDIFF_SIMD_AVX512) && defined(__AMX_TILE__) && \
    defined(__AMX_INT8__) && defined(__linux__)
#define IMDIFF_QUANT_AMX_INT8 1
#endif
#if defined(IMDIFF_QUANT_AMX_BF16) || defined(IMDIFF_QUANT_AMX_INT8)
#define IMDIFF_QUANT_AMX_ANY 1
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include <atomic>

namespace imdiff {
namespace quant {

namespace {

using gemm::kMR;

std::atomic<bool> g_disable_amx{false};

#if defined(IMDIFF_QUANT_AMX_ANY)

// Values from the Linux uapi (asm/prctl.h, not present in every sysroot).
constexpr int kArchReqXcompPerm = 0x1023;
constexpr int kXfeatureXtiledata = 18;

// Tile palette 1, all eight registers at full 16 x 64B geometry. Loaded at
// kernel entry and released at exit so no tile state leaks across calls
// (tile registers are per-thread XSTATE).
struct TileConfig {
  uint8_t palette;
  uint8_t start_row;
  uint8_t reserved[14];
  uint16_t colsb[16];
  uint8_t rows[16];
};
static_assert(sizeof(TileConfig) == 64);

inline void LoadFullTileConfig() {
  TileConfig cfg{};
  cfg.palette = 1;
  for (int t = 0; t < 8; ++t) {
    cfg.rows[t] = 16;
    cfg.colsb[t] = 64;
  }
  _tile_loadconfig(&cfg);
}

// One process-wide permission request, cached. A denial (old kernel, seccomp)
// deterministically routes every call to the AVX-512 bodies instead.
bool AmxPermitted() {
  static const bool ok =
      syscall(SYS_arch_prctl, kArchReqXcompPerm, kXfeatureXtiledata) == 0;
  return ok;
}

inline bool AmxActive() {
  return AmxPermitted() && !g_disable_amx.load(std::memory_order_relaxed);
}

#endif  // IMDIFF_QUANT_AMX_ANY

// Reads the logical b[p][j] of a [k, n] operand stored [n, k] when tb.
inline float BAt(const float* b, int64_t k, int64_t n, bool tb, int64_t p,
                 int64_t j) {
  return tb ? b[j * k + p] : b[p * n + j];
}

// Quantizes one activation row to asymmetric u8: q = rne((a - min) * inv),
// four quants per packed word (zero-padded past k). Scalar arithmetic on
// every path, so the quantized row — and therefore the whole int8 result —
// is a pure function of the row's floats.
inline void QuantizeRowA(const float* a, int64_t k, uint32_t* words,
                         float* s_a, float* min_a) {
  float mn = a[0];
  float mx = a[0];
  for (int64_t p = 1; p < k; ++p) {
    mn = a[p] < mn ? a[p] : mn;
    mx = a[p] > mx ? a[p] : mx;
  }
  // Canonicalize -0 to +0 so the reduction's tie-breaking (which zero wins)
  // can never leak into min_a — the vector quantizer reduces in a different
  // order but lands on the same bits.
  mn = mn + 0.0f;
  const float range = mx - mn;
  const float inv = range > 0.0f ? 255.0f / range : 0.0f;
  *s_a = range > 0.0f ? range / 255.0f : 0.0f;
  *min_a = mn;
  const int64_t k4 = (k + 3) / 4;
  for (int64_t g = 0; g < k4; ++g) {
    uint32_t w = 0;
    const int64_t lim = std::min<int64_t>(4, k - 4 * g);
    for (int64_t bb = 0; bb < lim; ++bb) {
      long q = std::lrintf((a[4 * g + bb] - mn) * inv);
      q = q < 0 ? 0 : (q > 255 ? 255 : q);
      w |= static_cast<uint32_t>(q) << (8 * bb);
    }
    words[g] = w;
  }
}

// Converts one activation row to paired bf16 words (zero-padded past k).
inline void ConvertRowBf16(const float* a, int64_t k, uint32_t* words) {
  const int64_t k2 = (k + 1) / 2;
  for (int64_t g = 0; g < k2; ++g) {
    const uint32_t lo = Bf16FromF32(a[2 * g]);
    const uint32_t hi =
        2 * g + 1 < k ? Bf16FromF32(a[2 * g + 1]) : 0u;
    words[g] = lo | (hi << 16);
  }
}

#if defined(IMDIFF_QUANT_BF16_VEC)

// Vector row conversion: vcvtne2ps2bf16 emits 32 consecutive bf16 lanes, and
// consecutive 16-bit lanes viewed as 32-bit words are exactly the paired-k
// layout. Same round-to-nearest-even as the scalar converter on normal
// values; zero-padded past k via masked loads.
inline void ConvertRowBf16Vec(const float* a, int64_t k, uint32_t* words) {
  const int64_t k2 = (k + 1) / 2;
  int64_t p = 0;
  int64_t g = 0;
  for (; p + 32 <= k; p += 32, g += 16) {
    const __m512 lo = _mm512_loadu_ps(a + p);
    const __m512 hi = _mm512_loadu_ps(a + p + 16);
    _mm512_storeu_si512(words + g,
                        (__m512i)_mm512_cvtne2ps_pbh(hi, lo));
  }
  const int64_t rem = k - p;
  if (rem > 0) {
    const __mmask16 mlo =
        rem >= 16 ? static_cast<__mmask16>(0xffff)
                  : static_cast<__mmask16>((1u << rem) - 1u);
    const __mmask16 mhi =
        rem > 16 ? static_cast<__mmask16>((1u << (rem - 16)) - 1u)
                 : static_cast<__mmask16>(0);
    const __m512 lo = _mm512_maskz_loadu_ps(mlo, a + p);
    const __m512 hi = _mm512_maskz_loadu_ps(mhi, a + p + 16);
    const __mmask16 mw = static_cast<__mmask16>((1u << (k2 - g)) - 1u);
    _mm512_mask_storeu_epi32(words + g, mw,
                             (__m512i)_mm512_cvtne2ps_pbh(hi, lo));
  }
}

// MR x kQNR bf16 register tile over paired-k panels: two fp32 accumulators
// per row, one vdpbf16ps per (row, half-panel, pair-group). Accumulators are
// named variables, not an array — GCC keeps an indexed array on the stack
// and spills every iteration, which halves throughput.
template <int MR>
void MicroKernelBf16(const uint32_t* arows, int64_t k2, const uint32_t* panel,
                     float* c, int64_t n, int64_t j0, int64_t jr) {
  __m512 a00 = _mm512_setzero_ps(), a01 = a00;
  __m512 a10 = a00, a11 = a00;
  __m512 a20 = a00, a21 = a00;
  __m512 a30 = a00, a31 = a00;
  for (int64_t g = 0; g < k2; ++g) {
    const __m512i b0 = _mm512_loadu_si512(panel + g * kQNR);
    const __m512i b1 = _mm512_loadu_si512(panel + g * kQNR + 16);
    __m512i av = _mm512_set1_epi32(static_cast<int>(arows[g]));
    a00 = _mm512_dpbf16_ps(a00, (__m512bh)av, (__m512bh)b0);
    a01 = _mm512_dpbf16_ps(a01, (__m512bh)av, (__m512bh)b1);
    if constexpr (MR > 1) {
      av = _mm512_set1_epi32(static_cast<int>(arows[k2 + g]));
      a10 = _mm512_dpbf16_ps(a10, (__m512bh)av, (__m512bh)b0);
      a11 = _mm512_dpbf16_ps(a11, (__m512bh)av, (__m512bh)b1);
    }
    if constexpr (MR > 2) {
      av = _mm512_set1_epi32(static_cast<int>(arows[2 * k2 + g]));
      a20 = _mm512_dpbf16_ps(a20, (__m512bh)av, (__m512bh)b0);
      a21 = _mm512_dpbf16_ps(a21, (__m512bh)av, (__m512bh)b1);
    }
    if constexpr (MR > 3) {
      av = _mm512_set1_epi32(static_cast<int>(arows[3 * k2 + g]));
      a30 = _mm512_dpbf16_ps(a30, (__m512bh)av, (__m512bh)b0);
      a31 = _mm512_dpbf16_ps(a31, (__m512bh)av, (__m512bh)b1);
    }
  }
  const __m512 acc0[4] = {a00, a10, a20, a30};
  const __m512 acc1[4] = {a01, a11, a21, a31};
  if (jr == kQNR) {
    for (int r = 0; r < MR; ++r) {
      _mm512_storeu_ps(c + r * n + j0, acc0[r]);
      _mm512_storeu_ps(c + r * n + j0 + 16, acc1[r]);
    }
  } else {
    float tmp[kQNR];
    for (int r = 0; r < MR; ++r) {
      _mm512_storeu_ps(tmp, acc0[r]);
      _mm512_storeu_ps(tmp + 16, acc1[r]);
      std::memcpy(c + r * n + j0, tmp, sizeof(float) * static_cast<size_t>(jr));
    }
  }
}

void GemmRowsBf16Vec(const uint32_t* abuf, int64_t k2, int64_t pstride,
                     const PackedBf16& b, float* c, int64_t n,
                     int64_t row_begin, int64_t rows) {
  for (int64_t j0 = 0; j0 < n; j0 += kQNR) {
    const int64_t jr = std::min<int64_t>(kQNR, n - j0);
    const uint32_t* panel =
        b.data.data() + (j0 / kQNR) * (pstride * kQNR);
    for (int64_t i0 = 0; i0 < rows; i0 += kMR) {
      const int64_t mr = std::min<int64_t>(kMR, rows - i0);
      const uint32_t* arows = abuf + i0 * k2;
      float* crow = c + (row_begin + i0) * n;
      switch (mr) {
        case 1:
          MicroKernelBf16<1>(arows, k2, panel, crow, n, j0, jr);
          break;
        case 2:
          MicroKernelBf16<2>(arows, k2, panel, crow, n, j0, jr);
          break;
        case 3:
          MicroKernelBf16<3>(arows, k2, panel, crow, n, j0, jr);
          break;
        default:
          MicroKernelBf16<4>(arows, k2, panel, crow, n, j0, jr);
          break;
      }
    }
  }
}

#endif  // IMDIFF_QUANT_BF16_VEC

// Scalar bf16 body reading the same paired-k panels: per pair group the low
// then the high product is accumulated (each product exact in fp32), which
// fixes the sum order as a function of (k, j) alone.
void GemmRowsBf16Scalar(const uint32_t* abuf, int64_t k2, int64_t pstride,
                        const PackedBf16& b, float* c, int64_t n,
                        int64_t row_begin, int64_t rows) {
  for (int64_t r = 0; r < rows; ++r) {
    const uint32_t* arow = abuf + r * k2;
    float* crow = c + (row_begin + r) * n;
    for (int64_t j0 = 0; j0 < n; j0 += kQNR) {
      const int64_t jr = std::min<int64_t>(kQNR, n - j0);
      const uint32_t* panel = b.data.data() + (j0 / kQNR) * (pstride * kQNR);
      for (int64_t jj = 0; jj < jr; ++jj) {
        float acc = 0.0f;
        for (int64_t g = 0; g < k2; ++g) {
          const uint32_t aw = arow[g];
          const uint32_t bw = panel[g * kQNR + jj];
          acc = simd::Madd(F32FromBf16(static_cast<uint16_t>(aw)),
                           F32FromBf16(static_cast<uint16_t>(bw)), acc);
          acc = simd::Madd(F32FromBf16(static_cast<uint16_t>(aw >> 16)),
                           F32FromBf16(static_cast<uint16_t>(bw >> 16)), acc);
        }
        crow[j0 + jj] = acc;
      }
    }
  }
}

#if defined(IMDIFF_QUANT_INT8_VEC)

// Vector row quantization, bitwise identical to QuantizeRowA: min/max is
// exact under any reduction order once -0 is canonicalized, and each lane's
// (a - mn) * inv / convert / clamp is the same correctly-rounded elementwise
// arithmetic as the scalar path (cvtps2dq and lrintf both round to nearest
// even). The sub-16 tail reuses the scalar per-element ops verbatim.
inline void QuantizeRowAVec(const float* a, int64_t k, uint32_t* words,
                            float* s_a, float* min_a) {
  __m512 vmn = _mm512_set1_ps(std::numeric_limits<float>::infinity());
  __m512 vmx = _mm512_set1_ps(-std::numeric_limits<float>::infinity());
  int64_t p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m512 v = _mm512_loadu_ps(a + p);
    vmn = _mm512_min_ps(vmn, v);
    vmx = _mm512_max_ps(vmx, v);
  }
  float mn = _mm512_reduce_min_ps(vmn);
  float mx = _mm512_reduce_max_ps(vmx);
  for (int64_t t = p; t < k; ++t) {
    mn = a[t] < mn ? a[t] : mn;
    mx = a[t] > mx ? a[t] : mx;
  }
  mn = mn + 0.0f;
  const float range = mx - mn;
  const float inv = range > 0.0f ? 255.0f / range : 0.0f;
  *s_a = range > 0.0f ? range / 255.0f : 0.0f;
  *min_a = mn;
  const __m512 vsub = _mm512_set1_ps(mn);
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m512i vzero = _mm512_setzero_si512();
  const __m512i vhi = _mm512_set1_epi32(255);
  int64_t q = 0;
  for (p = 0; p + 16 <= k; p += 16, q += 4) {
    const __m512 v = _mm512_loadu_ps(a + p);
    __m512i qi = _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_sub_ps(v, vsub),
                                                  vinv));
    qi = _mm512_min_epi32(_mm512_max_epi32(qi, vzero), vhi);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(words + q),
                     _mm512_cvtepi32_epi8(qi));
  }
  const int64_t k4 = (k + 3) / 4;
  for (int64_t g = q; g < k4; ++g) {
    uint32_t w = 0;
    const int64_t lim = std::min<int64_t>(4, k - 4 * g);
    for (int64_t bb = 0; bb < lim; ++bb) {
      long qv = std::lrintf((a[4 * g + bb] - mn) * inv);
      qv = qv < 0 ? 0 : (qv > 255 ? 255 : qv);
      w |= static_cast<uint32_t>(qv) << (8 * bb);
    }
    words[g] = w;
  }
}

// MR x kQNR int8 register tile over quad-k panels: two i32 accumulators per
// row, one vpdpbusd per (row, half-panel, quad-group), then the fused
// dequant epilogue — the same three float ops as the scalar body.
template <int MR>
void MicroKernelInt8(const uint32_t* arows, int64_t k4, const uint32_t* panel,
                     const float* scale, const float* colsum, const float* s_a,
                     const float* min_a, float* c, int64_t n, int64_t j0,
                     int64_t jr) {
  __m512i a00 = _mm512_setzero_si512(), a01 = a00;
  __m512i a10 = a00, a11 = a00;
  __m512i a20 = a00, a21 = a00;
  __m512i a30 = a00, a31 = a00;
  for (int64_t g = 0; g < k4; ++g) {
    const __m512i b0 = _mm512_loadu_si512(panel + g * kQNR);
    const __m512i b1 = _mm512_loadu_si512(panel + g * kQNR + 16);
    __m512i av = _mm512_set1_epi32(static_cast<int>(arows[g]));
    a00 = _mm512_dpbusd_epi32(a00, av, b0);
    a01 = _mm512_dpbusd_epi32(a01, av, b1);
    if constexpr (MR > 1) {
      av = _mm512_set1_epi32(static_cast<int>(arows[k4 + g]));
      a10 = _mm512_dpbusd_epi32(a10, av, b0);
      a11 = _mm512_dpbusd_epi32(a11, av, b1);
    }
    if constexpr (MR > 2) {
      av = _mm512_set1_epi32(static_cast<int>(arows[2 * k4 + g]));
      a20 = _mm512_dpbusd_epi32(a20, av, b0);
      a21 = _mm512_dpbusd_epi32(a21, av, b1);
    }
    if constexpr (MR > 3) {
      av = _mm512_set1_epi32(static_cast<int>(arows[3 * k4 + g]));
      a30 = _mm512_dpbusd_epi32(a30, av, b0);
      a31 = _mm512_dpbusd_epi32(a31, av, b1);
    }
  }
  const __m512i acc0[4] = {a00, a10, a20, a30};
  const __m512i acc1[4] = {a01, a11, a21, a31};
  const __m512 sb0 = _mm512_loadu_ps(scale + j0);
  const __m512 sb1 = _mm512_loadu_ps(scale + j0 + 16);
  const __m512 cs0 = _mm512_loadu_ps(colsum + j0);
  const __m512 cs1 = _mm512_loadu_ps(colsum + j0 + 16);
  for (int r = 0; r < MR; ++r) {
    const __m512 vsa = _mm512_set1_ps(s_a[r]);
    const __m512 vmin = _mm512_set1_ps(min_a[r]);
    const __m512 d0 = _mm512_mul_ps(
        sb0, _mm512_fmadd_ps(vsa, _mm512_cvtepi32_ps(acc0[r]),
                             _mm512_mul_ps(vmin, cs0)));
    const __m512 d1 = _mm512_mul_ps(
        sb1, _mm512_fmadd_ps(vsa, _mm512_cvtepi32_ps(acc1[r]),
                             _mm512_mul_ps(vmin, cs1)));
    if (jr == kQNR) {
      _mm512_storeu_ps(c + r * n + j0, d0);
      _mm512_storeu_ps(c + r * n + j0 + 16, d1);
    } else {
      float tmp[kQNR];
      _mm512_storeu_ps(tmp, d0);
      _mm512_storeu_ps(tmp + 16, d1);
      std::memcpy(c + r * n + j0, tmp, sizeof(float) * static_cast<size_t>(jr));
    }
  }
}

void GemmRowsInt8Vec(const uint32_t* abuf, const float* s_a, const float* min_a,
                     int64_t k4, int64_t pstride, const PackedInt8& b, float* c,
                     int64_t n, int64_t row_begin, int64_t rows) {
  for (int64_t j0 = 0; j0 < n; j0 += kQNR) {
    const int64_t jr = std::min<int64_t>(kQNR, n - j0);
    const uint32_t* panel = b.data.data() + (j0 / kQNR) * (pstride * kQNR);
    for (int64_t i0 = 0; i0 < rows; i0 += kMR) {
      const int64_t mr = std::min<int64_t>(kMR, rows - i0);
      const uint32_t* arows = abuf + i0 * k4;
      float* crow = c + (row_begin + i0) * n;
      switch (mr) {
        case 1:
          MicroKernelInt8<1>(arows, k4, panel, b.scale.data(), b.colsum.data(),
                             s_a + i0, min_a + i0, crow, n, j0, jr);
          break;
        case 2:
          MicroKernelInt8<2>(arows, k4, panel, b.scale.data(), b.colsum.data(),
                             s_a + i0, min_a + i0, crow, n, j0, jr);
          break;
        case 3:
          MicroKernelInt8<3>(arows, k4, panel, b.scale.data(), b.colsum.data(),
                             s_a + i0, min_a + i0, crow, n, j0, jr);
          break;
        default:
          MicroKernelInt8<4>(arows, k4, panel, b.scale.data(), b.colsum.data(),
                             s_a + i0, min_a + i0, crow, n, j0, jr);
          break;
      }
    }
  }
}

#endif  // IMDIFF_QUANT_INT8_VEC

// Scalar int8 body: the identical integer accumulation (u8 x s8 products
// summed into i32, exact) and the identical dequant expression as the vector
// body — bitwise equal to it by construction.
void GemmRowsInt8Scalar(const uint32_t* abuf, const float* s_a,
                        const float* min_a, int64_t k4, int64_t pstride,
                        const PackedInt8& b, float* c, int64_t n,
                        int64_t row_begin, int64_t rows) {
  for (int64_t r = 0; r < rows; ++r) {
    const uint32_t* arow = abuf + r * k4;
    const float sa = s_a[r];
    const float mn = min_a[r];
    float* crow = c + (row_begin + r) * n;
    for (int64_t j0 = 0; j0 < n; j0 += kQNR) {
      const int64_t jr = std::min<int64_t>(kQNR, n - j0);
      const uint32_t* panel = b.data.data() + (j0 / kQNR) * (pstride * kQNR);
      for (int64_t jj = 0; jj < jr; ++jj) {
        int32_t acc = 0;
        for (int64_t g = 0; g < k4; ++g) {
          const uint32_t aw = arow[g];
          const uint32_t bw = panel[g * kQNR + jj];
          for (int bb = 0; bb < 4; ++bb) {
            const int32_t av = static_cast<int32_t>((aw >> (8 * bb)) & 0xffu);
            const int32_t bv =
                static_cast<int8_t>((bw >> (8 * bb)) & 0xffu);
            acc += av * bv;
          }
        }
        const int64_t j = j0 + jj;
        crow[j] = b.scale[static_cast<size_t>(j)] *
                  std::fmaf(sa, static_cast<float>(acc),
                            mn * b.colsum[static_cast<size_t>(j)]);
      }
    }
  }
}

#if defined(IMDIFF_QUANT_AMX_BF16)

// AMX bf16 body: 16-row x 32-column output tiles, one tdpbf16ps per
// (half-panel, 16-group block). The packed panels are loaded as B tiles
// unchanged; `abuf` rows and groups are zero-padded to tile multiples by the
// caller. Row-local like every body — a row's result reads only its own
// A-tile row.
void AmxGemmBf16(const uint32_t* abuf, int64_t K2, const PackedBf16& b,
                 float* c, int64_t n, int64_t row_begin, int64_t rows) {
  LoadFullTileConfig();
  alignas(64) float cbuf[16 * kQNR];
  for (int64_t j0 = 0; j0 < n; j0 += kQNR) {
    const int64_t jr = std::min<int64_t>(kQNR, n - j0);
    const uint32_t* panel = b.data.data() + (j0 / kQNR) * (K2 * kQNR);
    for (int64_t i0 = 0; i0 < rows; i0 += 16) {
      const int64_t mr = std::min<int64_t>(16, rows - i0);
      _tile_zero(0);
      _tile_zero(1);
      for (int64_t g = 0; g < K2; g += 16) {
        _tile_loadd(2, abuf + i0 * K2 + g, static_cast<int>(K2 * 4));
        _tile_loadd(3, panel + g * kQNR, kQNR * 4);
        _tile_loadd(4, panel + g * kQNR + 16, kQNR * 4);
        _tile_dpbf16ps(0, 2, 3);
        _tile_dpbf16ps(1, 2, 4);
      }
      float* cdst = c + (row_begin + i0) * n + j0;
      if (mr == 16 && jr == kQNR) {
        _tile_stored(0, cdst, static_cast<int>(n * 4));
        _tile_stored(1, cdst + 16, static_cast<int>(n * 4));
      } else {
        _tile_stored(0, cbuf, kQNR * 4);
        _tile_stored(1, cbuf + 16, kQNR * 4);
        for (int64_t r = 0; r < mr; ++r) {
          std::memcpy(cdst + r * n, cbuf + r * kQNR,
                      sizeof(float) * static_cast<size_t>(jr));
        }
      }
    }
  }
  _tile_release();
}

#endif  // IMDIFF_QUANT_AMX_BF16

#if defined(IMDIFF_QUANT_AMX_INT8)

// AMX int8 body: tdpbusd accumulates the identical exact integers as
// vpdpbusd and the scalar loop, and the dequant epilogue below is the same
// elementwise float ops as the AVX-512 body — so int8 stays bitwise
// identical across scalar, vector, and AMX.
void AmxGemmInt8(const uint32_t* abuf, const float* s_a, const float* min_a,
                 int64_t K4, const PackedInt8& b, float* c, int64_t n,
                 int64_t row_begin, int64_t rows) {
  LoadFullTileConfig();
  alignas(64) int32_t acc[16 * kQNR];
  float tmp[kQNR];
  for (int64_t j0 = 0; j0 < n; j0 += kQNR) {
    const int64_t jr = std::min<int64_t>(kQNR, n - j0);
    const uint32_t* panel = b.data.data() + (j0 / kQNR) * (K4 * kQNR);
    const __m512 sb0 = _mm512_loadu_ps(b.scale.data() + j0);
    const __m512 sb1 = _mm512_loadu_ps(b.scale.data() + j0 + 16);
    const __m512 cs0 = _mm512_loadu_ps(b.colsum.data() + j0);
    const __m512 cs1 = _mm512_loadu_ps(b.colsum.data() + j0 + 16);
    for (int64_t i0 = 0; i0 < rows; i0 += 16) {
      const int64_t mr = std::min<int64_t>(16, rows - i0);
      _tile_zero(0);
      _tile_zero(1);
      for (int64_t g = 0; g < K4; g += 16) {
        _tile_loadd(2, abuf + i0 * K4 + g, static_cast<int>(K4 * 4));
        _tile_loadd(3, panel + g * kQNR, kQNR * 4);
        _tile_loadd(4, panel + g * kQNR + 16, kQNR * 4);
        _tile_dpbusd(0, 2, 3);
        _tile_dpbusd(1, 2, 4);
      }
      _tile_stored(0, acc, kQNR * 4);
      _tile_stored(1, acc + 16, kQNR * 4);
      for (int64_t r = 0; r < mr; ++r) {
        const __m512 vsa = _mm512_set1_ps(s_a[i0 + r]);
        const __m512 vmin = _mm512_set1_ps(min_a[i0 + r]);
        const __m512i a0 = _mm512_loadu_si512(acc + r * kQNR);
        const __m512i a1 = _mm512_loadu_si512(acc + r * kQNR + 16);
        const __m512 d0 = _mm512_mul_ps(
            sb0, _mm512_fmadd_ps(vsa, _mm512_cvtepi32_ps(a0),
                                 _mm512_mul_ps(vmin, cs0)));
        const __m512 d1 = _mm512_mul_ps(
            sb1, _mm512_fmadd_ps(vsa, _mm512_cvtepi32_ps(a1),
                                 _mm512_mul_ps(vmin, cs1)));
        float* cdst = c + (row_begin + i0 + r) * n + j0;
        if (jr == kQNR) {
          _mm512_storeu_ps(cdst, d0);
          _mm512_storeu_ps(cdst + 16, d1);
        } else {
          _mm512_storeu_ps(tmp, d0);
          _mm512_storeu_ps(tmp + 16, d1);
          std::memcpy(cdst, tmp, sizeof(float) * static_cast<size_t>(jr));
        }
      }
    }
  }
  _tile_release();
}

#endif  // IMDIFF_QUANT_AMX_INT8

}  // namespace

void PackBf16(const float* b, int64_t k, int64_t n, bool tb, PackedBf16* out) {
  out->k = k;
  out->n = n;
  out->data.assign(Bf16PackedWords(k, n), 0u);
  const int64_t k2 = (k + 1) / 2;
  const int64_t pstride = Bf16Groups(k);
  for (int64_t j0 = 0; j0 < n; j0 += kQNR) {
    const int64_t jr = std::min<int64_t>(kQNR, n - j0);
    uint32_t* panel = out->data.data() + (j0 / kQNR) * (pstride * kQNR);
    for (int64_t g = 0; g < k2; ++g) {
      for (int64_t jj = 0; jj < jr; ++jj) {
        const uint32_t lo = Bf16FromF32(BAt(b, k, n, tb, 2 * g, j0 + jj));
        const uint32_t hi =
            2 * g + 1 < k ? Bf16FromF32(BAt(b, k, n, tb, 2 * g + 1, j0 + jj))
                          : 0u;
        panel[g * kQNR + jj] = lo | (hi << 16);
      }
    }
  }
}

void PackInt8(const float* b, int64_t k, int64_t n, bool tb, PackedInt8* out) {
  out->k = k;
  out->n = n;
  const size_t padded_n =
      static_cast<size_t>((n + kQNR - 1) / kQNR) * static_cast<size_t>(kQNR);
  out->data.assign(Int8PackedWords(k, n), 0u);
  out->scale.assign(padded_n, 0.0f);
  out->colsum.assign(padded_n, 0.0f);
  const int64_t k4 = (k + 3) / 4;
  const int64_t pstride = Int8Groups(k);
  std::vector<int8_t> q(static_cast<size_t>(k));
  for (int64_t j = 0; j < n; ++j) {
    float absmax = 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      const float v = std::fabs(BAt(b, k, n, tb, p, j));
      absmax = v > absmax ? v : absmax;
    }
    const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
    out->scale[static_cast<size_t>(j)] = absmax > 0.0f ? absmax / 127.0f : 0.0f;
    int32_t sum = 0;
    for (int64_t p = 0; p < k; ++p) {
      long qi = std::lrintf(BAt(b, k, n, tb, p, j) * inv);
      qi = qi < -127 ? -127 : (qi > 127 ? 127 : qi);
      q[static_cast<size_t>(p)] = static_cast<int8_t>(qi);
      sum += static_cast<int32_t>(qi);
    }
    // Exact: |sum| <= 127 * k stays far inside float's integer range.
    out->colsum[static_cast<size_t>(j)] = static_cast<float>(sum);
    uint32_t* panel = out->data.data() + (j / kQNR) * (pstride * kQNR);
    const int64_t jj = j % kQNR;
    for (int64_t g = 0; g < k4; ++g) {
      uint32_t w = 0;
      const int64_t lim = std::min<int64_t>(4, k - 4 * g);
      for (int64_t bb = 0; bb < lim; ++bb) {
        w |= static_cast<uint32_t>(
                 static_cast<uint8_t>(q[static_cast<size_t>(4 * g + bb)]))
             << (8 * bb);
      }
      panel[g * kQNR + jj] = w;
    }
  }
}

void GemmRowsBf16(const float* a, const PackedBf16& b, float* c, int64_t k,
                  int64_t n, int64_t row_begin, int64_t row_end) {
  IMDIFF_CHECK_EQ(k, b.k);
  const int64_t rows = row_end - row_begin;
  if (rows <= 0 || n <= 0) return;
  const int64_t k2 = (k + 1) / 2;
  const int64_t pstride = Bf16Groups(k);
#if defined(IMDIFF_QUANT_AMX_BF16)
  if (simd::Enabled() && AmxActive()) {
    // A-side rows and groups padded with zeros to whole tiles.
    const int64_t rows16 = (rows + 15) / 16 * 16;
    ArenaBuffer scratch(static_cast<size_t>(rows16 * pstride));
    uint32_t* abuf = reinterpret_cast<uint32_t*>(scratch.data());
    std::memset(abuf, 0, sizeof(uint32_t) * static_cast<size_t>(rows16 * pstride));
    for (int64_t r = 0; r < rows; ++r) {
      ConvertRowBf16Vec(a + (row_begin + r) * k, k, abuf + r * pstride);
    }
    AmxGemmBf16(abuf, pstride, b, c, n, row_begin, rows);
    return;
  }
#endif
  // Word scratch drawn from the arena through its float façade; the buffer
  // is only ever accessed as uint32_t.
  ArenaBuffer scratch(static_cast<size_t>(rows * k2));
  uint32_t* abuf = reinterpret_cast<uint32_t*>(scratch.data());
#if defined(IMDIFF_QUANT_BF16_VEC)
  if (simd::Enabled()) {
    for (int64_t r = 0; r < rows; ++r) {
      ConvertRowBf16Vec(a + (row_begin + r) * k, k, abuf + r * k2);
    }
    GemmRowsBf16Vec(abuf, k2, pstride, b, c, n, row_begin, rows);
    return;
  }
#endif
  for (int64_t r = 0; r < rows; ++r) {
    ConvertRowBf16(a + (row_begin + r) * k, k, abuf + r * k2);
  }
  GemmRowsBf16Scalar(abuf, k2, pstride, b, c, n, row_begin, rows);
}

void GemmRowsInt8(const float* a, const PackedInt8& b, float* c, int64_t k,
                  int64_t n, int64_t row_begin, int64_t row_end) {
  IMDIFF_CHECK_EQ(k, b.k);
  const int64_t rows = row_end - row_begin;
  if (rows <= 0 || n <= 0) return;
  const int64_t k4 = (k + 3) / 4;
  const int64_t pstride = Int8Groups(k);
#if defined(IMDIFF_QUANT_AMX_INT8)
  if (simd::Enabled() && AmxActive()) {
    const int64_t rows16 = (rows + 15) / 16 * 16;
    ArenaBuffer scratch(
        static_cast<size_t>(rows16 * pstride + 2 * rows16));
    uint32_t* abuf = reinterpret_cast<uint32_t*>(scratch.data());
    std::memset(abuf, 0,
                sizeof(uint32_t) * static_cast<size_t>(rows16 * pstride));
    float* s_a = scratch.data() + rows16 * pstride;
    float* min_a = s_a + rows16;
    for (int64_t r = 0; r < rows; ++r) {
      QuantizeRowAVec(a + (row_begin + r) * k, k, abuf + r * pstride, s_a + r,
                      min_a + r);
    }
    AmxGemmInt8(abuf, s_a, min_a, pstride, b, c, n, row_begin, rows);
    return;
  }
#endif
  ArenaBuffer scratch(static_cast<size_t>(rows * k4 + 2 * rows));
  uint32_t* abuf = reinterpret_cast<uint32_t*>(scratch.data());
  float* s_a = scratch.data() + rows * k4;
  float* min_a = s_a + rows;
#if defined(IMDIFF_QUANT_INT8_VEC)
  if (simd::Enabled()) {
    for (int64_t r = 0; r < rows; ++r) {
      QuantizeRowAVec(a + (row_begin + r) * k, k, abuf + r * k4, s_a + r,
                      min_a + r);
    }
    GemmRowsInt8Vec(abuf, s_a, min_a, k4, pstride, b, c, n, row_begin, rows);
    return;
  }
#endif
  for (int64_t r = 0; r < rows; ++r) {
    QuantizeRowA(a + (row_begin + r) * k, k, abuf + r * k4, s_a + r,
                 min_a + r);
  }
  GemmRowsInt8Scalar(abuf, s_a, min_a, k4, pstride, b, c, n, row_begin, rows);
}

void LinearInto(const float* x, const float* w, const float* bias, float* y,
                int64_t m, int64_t k, int64_t n, Precision precision) {
  IMDIFF_CHECK(precision != Precision::kF32);
  if (precision == Precision::kBf16) {
    PackedBf16 packed;
    PackBf16(w, k, n, false, &packed);
    ParallelForRange(ComputePool(), static_cast<size_t>(m),
                     gemm::RowGrain(2 * k * n), [&](size_t begin, size_t end) {
                       GemmRowsBf16(x, packed, y, k, n,
                                    static_cast<int64_t>(begin),
                                    static_cast<int64_t>(end));
                     });
  } else {
    PackedInt8 packed;
    PackInt8(w, k, n, false, &packed);
    ParallelForRange(ComputePool(), static_cast<size_t>(m),
                     gemm::RowGrain(2 * k * n), [&](size_t begin, size_t end) {
                       GemmRowsInt8(x, packed, y, k, n,
                                    static_cast<int64_t>(begin),
                                    static_cast<int64_t>(end));
                     });
  }
  if (bias != nullptr) {
    for (int64_t r = 0; r < m; ++r) {
      float* row = y + r * n;
      simd::AddInto(row, row, bias, n);
    }
  }
}

bool HasVectorBf16() {
#if defined(IMDIFF_QUANT_BF16_VEC)
  return true;
#else
  return false;
#endif
}

bool HasVectorInt8() {
#if defined(IMDIFF_QUANT_INT8_VEC)
  return true;
#else
  return false;
#endif
}

bool HasAmxBf16() {
#if defined(IMDIFF_QUANT_AMX_BF16)
  return AmxActive();
#else
  return false;
#endif
}

bool HasAmxInt8() {
#if defined(IMDIFF_QUANT_AMX_INT8)
  return AmxActive();
#else
  return false;
#endif
}

void SetDisableAmx(bool disable) {
  g_disable_amx.store(disable, std::memory_order_relaxed);
}

}  // namespace quant
}  // namespace imdiff
