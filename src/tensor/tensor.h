// Dense row-major float32 tensor.
//
// The storage is shared (std::shared_ptr) so that copies, reshapes, and
// autograd bookkeeping are cheap. Tensors are logically written once after
// construction; in-place mutation via mutable_data() is reserved for the code
// that created the tensor.
//
// Backing buffers come from the process-wide size-bucketed Arena
// (tensor/arena.h): when the last reference to a storage drops, its buffer
// returns to a free list and the next same-bucket tensor reuses it without
// touching the system allocator. Tensor(shape) zero-fills as before;
// Tensor::Uninitialized(shape) skips the fill for outputs every element of
// which is about to be written (the kernel layer's default).

#ifndef IMDIFF_TENSOR_TENSOR_H_
#define IMDIFF_TENSOR_TENSOR_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "tensor/arena.h"
#include "utils/check.h"
#include "utils/rng.h"

namespace imdiff {

using Shape = std::vector<int64_t>;

// Number of elements covered by a shape.
int64_t NumElements(const Shape& shape);

// Human-readable "[a, b, c]" rendering.
std::string ShapeToString(const Shape& shape);

namespace detail {

// Arena-backed float buffer; exactly one TensorStorage owns each acquisition.
class TensorStorage {
 public:
  TensorStorage() : data_(nullptr), size_(0) {}
  explicit TensorStorage(size_t n)
      : data_(Arena::Global().Acquire(n)), size_(n) {}
  ~TensorStorage() { Arena::Global().Release(data_, size_); }

  TensorStorage(const TensorStorage&) = delete;
  TensorStorage& operator=(const TensorStorage&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  float* data_;
  size_t size_;
};

}  // namespace detail

class Tensor {
 public:
  // An empty 0-element tensor.
  Tensor() : shape_{0}, data_(std::make_shared<detail::TensorStorage>()) {}

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape) : Tensor(std::move(shape), kUninitialized) {
    if (numel() > 0) {
      std::memset(data_->data(), 0, data_->size() * sizeof(float));
    }
  }

  Tensor(Shape shape, const std::vector<float>& values)
      : Tensor(std::move(shape), kUninitialized) {
    IMDIFF_CHECK_EQ(numel(), static_cast<int64_t>(values.size()));
    if (!values.empty()) {
      std::memcpy(data_->data(), values.data(),
                  values.size() * sizeof(float));
    }
  }

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  // ---- Factories ------------------------------------------------------

  // Allocation without the zero fill, for outputs that are fully written by
  // the caller before any element is read. Reused arena buffers carry stale
  // contents, so every element MUST be stored.
  static Tensor Uninitialized(Shape shape) {
    return Tensor(std::move(shape), kUninitialized);
  }

  static Tensor Zeros(const Shape& shape) { return Tensor(shape); }
  static Tensor Full(const Shape& shape, float value);
  static Tensor Scalar(float value) { return Tensor({1}, {value}); }
  // iid N(0, stddev^2) entries.
  static Tensor Randn(const Shape& shape, Rng& rng, float stddev = 1.0f);
  // iid U[lo, hi) entries.
  static Tensor Rand(const Shape& shape, Rng& rng, float lo = 0.0f,
                     float hi = 1.0f);

  // ---- Introspection ---------------------------------------------------

  const Shape& shape() const { return shape_; }
  int64_t dim(size_t axis) const {
    IMDIFF_CHECK_LT(axis, shape_.size());
    return shape_[axis];
  }
  size_t ndim() const { return shape_.size(); }
  int64_t numel() const { return static_cast<int64_t>(data_->size()); }

  const float* data() const { return data_->data(); }
  float* mutable_data() { return data_->data(); }

  float flat(int64_t i) const {
    IMDIFF_CHECK(i >= 0 && i < numel()) << "index" << i;
    return data_->data()[static_cast<size_t>(i)];
  }
  void set_flat(int64_t i, float v) {
    IMDIFF_CHECK(i >= 0 && i < numel()) << "index" << i;
    data_->data()[static_cast<size_t>(i)] = v;
  }

  // 2D / 3D / 4D element accessors (debug-friendly; hot loops index data()).
  float at(int64_t i, int64_t j) const {
    IMDIFF_CHECK_EQ(ndim(), 2u);
    return data_->data()[static_cast<size_t>(i * shape_[1] + j)];
  }
  float at(int64_t i, int64_t j, int64_t k) const {
    IMDIFF_CHECK_EQ(ndim(), 3u);
    return data_->data()[static_cast<size_t>((i * shape_[1] + j) * shape_[2] +
                                             k)];
  }
  float at(int64_t i, int64_t j, int64_t k, int64_t l) const {
    IMDIFF_CHECK_EQ(ndim(), 4u);
    return data_->data()[static_cast<size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
  }

  // ---- Shape manipulation (storage-sharing) ----------------------------

  // Returns a tensor viewing the same storage with a new shape. One dimension
  // may be -1 (inferred).
  Tensor Reshape(Shape new_shape) const;

  // Deep copy with distinct storage.
  Tensor Clone() const {
    Tensor out = Uninitialized(shape_);
    if (numel() > 0) {
      std::memcpy(out.mutable_data(), data(),
                  static_cast<size_t>(numel()) * sizeof(float));
    }
    return out;
  }

  std::string ToString(int64_t max_elements = 32) const;

 private:
  struct UninitializedTag {};
  static constexpr UninitializedTag kUninitialized{};

  Tensor(Shape shape, UninitializedTag)
      : shape_(std::move(shape)),
        data_(std::make_shared<detail::TensorStorage>(
            static_cast<size_t>(NumElements(shape_)))) {}

  Shape shape_;
  std::shared_ptr<detail::TensorStorage> data_;
};

}  // namespace imdiff

#endif  // IMDIFF_TENSOR_TENSOR_H_
