// Dense row-major float32 tensor.
//
// The storage is shared (std::shared_ptr) so that copies, reshapes, and
// autograd bookkeeping are cheap. Tensors are logically written once after
// construction; in-place mutation via mutable_data() is reserved for the code
// that created the tensor.

#ifndef IMDIFF_TENSOR_TENSOR_H_
#define IMDIFF_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "utils/check.h"
#include "utils/rng.h"

namespace imdiff {

using Shape = std::vector<int64_t>;

// Number of elements covered by a shape.
int64_t NumElements(const Shape& shape);

// Human-readable "[a, b, c]" rendering.
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  // An empty 0-element tensor.
  Tensor() : shape_{0}, data_(std::make_shared<std::vector<float>>()) {}

  // Uninitialized-to-zero tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(std::make_shared<std::vector<float>>(NumElements(shape_), 0.0f)) {}

  Tensor(Shape shape, std::vector<float> values)
      : shape_(std::move(shape)),
        data_(std::make_shared<std::vector<float>>(std::move(values))) {
    IMDIFF_CHECK_EQ(NumElements(shape_), static_cast<int64_t>(data_->size()));
  }

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  // ---- Factories ------------------------------------------------------

  static Tensor Zeros(const Shape& shape) { return Tensor(shape); }
  static Tensor Full(const Shape& shape, float value);
  static Tensor Scalar(float value) { return Tensor({1}, {value}); }
  // iid N(0, stddev^2) entries.
  static Tensor Randn(const Shape& shape, Rng& rng, float stddev = 1.0f);
  // iid U[lo, hi) entries.
  static Tensor Rand(const Shape& shape, Rng& rng, float lo = 0.0f,
                     float hi = 1.0f);

  // ---- Introspection ---------------------------------------------------

  const Shape& shape() const { return shape_; }
  int64_t dim(size_t axis) const {
    IMDIFF_CHECK_LT(axis, shape_.size());
    return shape_[axis];
  }
  size_t ndim() const { return shape_.size(); }
  int64_t numel() const { return static_cast<int64_t>(data_->size()); }

  const float* data() const { return data_->data(); }
  float* mutable_data() { return data_->data(); }
  const std::vector<float>& vec() const { return *data_; }

  float flat(int64_t i) const {
    IMDIFF_CHECK(i >= 0 && i < numel()) << "index" << i;
    return (*data_)[static_cast<size_t>(i)];
  }
  void set_flat(int64_t i, float v) {
    IMDIFF_CHECK(i >= 0 && i < numel()) << "index" << i;
    (*data_)[static_cast<size_t>(i)] = v;
  }

  // 2D / 3D / 4D element accessors (debug-friendly; hot loops index data()).
  float at(int64_t i, int64_t j) const {
    IMDIFF_CHECK_EQ(ndim(), 2u);
    return (*data_)[static_cast<size_t>(i * shape_[1] + j)];
  }
  float at(int64_t i, int64_t j, int64_t k) const {
    IMDIFF_CHECK_EQ(ndim(), 3u);
    return (*data_)[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
  }
  float at(int64_t i, int64_t j, int64_t k, int64_t l) const {
    IMDIFF_CHECK_EQ(ndim(), 4u);
    return (*data_)[static_cast<size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
  }

  // ---- Shape manipulation (storage-sharing) ----------------------------

  // Returns a tensor viewing the same storage with a new shape. One dimension
  // may be -1 (inferred).
  Tensor Reshape(Shape new_shape) const;

  // Deep copy with distinct storage.
  Tensor Clone() const { return Tensor(shape_, *data_); }

  std::string ToString(int64_t max_elements = 32) const;

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> data_;
};

}  // namespace imdiff

#endif  // IMDIFF_TENSOR_TENSOR_H_
