#include "tensor/arena.h"

#include <cstdlib>
#include <cstring>
#include <new>

#include "utils/fault.h"
#include "utils/metrics.h"

namespace imdiff {
namespace {

constexpr size_t kAlignment = 64;

float* SystemAlloc(size_t floats) {
  return static_cast<float*>(::operator new(
      floats * sizeof(float), std::align_val_t{kAlignment}));
}

void SystemFree(float* p) noexcept {
  ::operator delete(p, std::align_val_t{kAlignment});
}

bool PoolingEnabledFromEnv() {
  const char* e = std::getenv("IMDIFF_ARENA");
  return !(e != nullptr && e[0] == '0' && e[1] == '\0');
}

}  // namespace

Arena::Arena()
    : hits_(MetricsRegistry::Global().GetCounter("arena.hits")),
      misses_(MetricsRegistry::Global().GetCounter("arena.misses")),
      fallbacks_(MetricsRegistry::Global().GetCounter("arena.fallback")),
      live_bytes_(MetricsRegistry::Global().GetGauge("arena.live_bytes")),
      pooled_bytes_(MetricsRegistry::Global().GetGauge("arena.pooled_bytes")),
      faults_(&FaultRegistry::Global()),
      fault_alloc_(FaultRegistry::Global().GetPoint("arena.alloc")) {
  pooling_.store(PoolingEnabledFromEnv(), std::memory_order_relaxed);
}

Arena& Arena::Global() {
  // Leaked singleton: Tensors (and thus Release calls) may outlive static
  // destruction order, so the arena must never be destroyed.
  static Arena* const arena = new Arena();
  return *arena;
}

int Arena::BucketIndex(size_t n) {
  if (n > BucketFloats(kNumBuckets - 1)) return -1;
  int b = 0;
  while (BucketFloats(b) < n) ++b;
  return b;
}

float* Arena::Acquire(size_t n) {
  if (n == 0) return nullptr;
  const int b = BucketIndex(n);
  if (b < 0) {
    // Oversize: straight to the system allocator, exact size.
    misses_->Increment();
    live_bytes_->Add(static_cast<double>(n * sizeof(float)));
    return SystemAlloc(n);
  }
  const size_t cap = BucketFloats(b);
  // Injected allocator fault: pretend the free lists are unusable and fall
  // back to a plain system allocation. The buffer is still bucket-capacity
  // sized, so it recycles into the free list safely on Release — the fault
  // degrades throughput (arena.fallback counts it), never correctness.
  if (faults_->armed() && fault_alloc_->Fire()) {
    fallbacks_->Increment();
    misses_->Increment();
    live_bytes_->Add(static_cast<double>(cap * sizeof(float)));
    return SystemAlloc(cap);
  }
  if (pooling_.load(std::memory_order_relaxed)) {
    Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mu);
    if (!bucket.free_list.empty()) {
      float* p = bucket.free_list.back();
      bucket.free_list.pop_back();
      hits_->Increment();
      const double bytes = static_cast<double>(cap * sizeof(float));
      pooled_bytes_->Add(-bytes);
      live_bytes_->Add(bytes);
      return p;
    }
  }
  misses_->Increment();
  live_bytes_->Add(static_cast<double>(cap * sizeof(float)));
  return SystemAlloc(cap);
}

void Arena::Release(float* p, size_t n) noexcept {
  if (p == nullptr || n == 0) return;
  const int b = BucketIndex(n);
  if (b < 0) {
    live_bytes_->Add(-static_cast<double>(n * sizeof(float)));
    SystemFree(p);
    return;
  }
  const double bytes = static_cast<double>(BucketFloats(b) * sizeof(float));
  live_bytes_->Add(-bytes);
  if (pooling_.load(std::memory_order_relaxed) &&
      pooled_bytes_->value() + bytes <= static_cast<double>(kMaxPooledBytes)) {
    Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mu);
    bucket.free_list.push_back(p);
    pooled_bytes_->Add(bytes);
    return;
  }
  SystemFree(p);
}

Arena::Stats Arena::stats() const {
  Stats s;
  s.hits = hits_->value();
  s.misses = misses_->value();
  s.live_bytes = static_cast<int64_t>(live_bytes_->value());
  s.pooled_bytes = static_cast<int64_t>(pooled_bytes_->value());
  return s;
}

void Arena::Trim() {
  for (int b = 0; b < kNumBuckets; ++b) {
    Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mu);
    const double bytes =
        static_cast<double>(BucketFloats(b) * sizeof(float));
    for (float* p : bucket.free_list) {
      SystemFree(p);
      pooled_bytes_->Add(-bytes);
    }
    bucket.free_list.clear();
  }
}

}  // namespace imdiff
