#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "utils/thread_pool.h"

namespace imdiff {
namespace {

// Minimum flops a ParallelForRange chunk should carry before the kernels
// split work across the compute pool; below this, task overhead dominates.
constexpr int64_t kGrainFlops = 16384;

// Rows [begin, end) of a grain computed so that each parallel chunk holds at
// least kGrainFlops worth of per-row work.
size_t RowGrain(int64_t flops_per_row) {
  return static_cast<size_t>(
      std::max<int64_t>(1, kGrainFlops / std::max<int64_t>(1, flops_per_row)));
}

// Computes row-major strides for a shape.
std::vector<int64_t> Strides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (size_t i = shape.size(); i-- > 1;) {
    strides[i - 1] = strides[i] * shape[i];
  }
  return strides;
}

// Rows [row_begin, row_end) of the 2D matmul c[m,n] += a[m,k] * b[k,n], with
// optional logical transposition of a and/or b. Pointers address contiguous
// row-major blocks. Each call writes only its own c rows, so disjoint row
// ranges may run concurrently with bitwise-identical results.
void MatMulRows(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n, bool ta, bool tb, int64_t row_begin,
                int64_t row_end) {
  if (!ta && !tb) {
    // ikj ordering with 4-way unrolling over k: streams b rows and amortizes
    // the c-row traffic across four partial products.
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* crow = c + i * n;
      const float* arow = a + i * k;
      int64_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const float a0 = arow[p], a1 = arow[p + 1];
        const float a2 = arow[p + 2], a3 = arow[p + 3];
        const float* b0 = b + p * n;
        const float* b1 = b0 + n;
        const float* b2 = b1 + n;
        const float* b3 = b2 + n;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
      }
      for (; p < k; ++p) {
        const float av = arow[p];
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (ta && !tb) {
    // a is [k,m] physically: c[i][j] += sum_p a[p][i] b[p][j], unrolled 4x
    // over the reduction dim p.
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* crow = c + i * n;
      int64_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const float a0 = a[p * m + i], a1 = a[(p + 1) * m + i];
        const float a2 = a[(p + 2) * m + i], a3 = a[(p + 3) * m + i];
        const float* b0 = b + p * n;
        const float* b1 = b0 + n;
        const float* b2 = b1 + n;
        const float* b3 = b2 + n;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
      }
      for (; p < k; ++p) {
        const float av = a[p * m + i];
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!ta && tb) {
    // b is [n,k] physically: dot products of contiguous rows.
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
    }
  } else {
    // a [k,m], b [n,k].
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * brow[p];
        crow[j] += acc;
      }
    }
  }
}

// Full 2D matmul, parallelized over output rows on the compute pool. Nested
// calls (e.g. from a batch-level parallel section) run inline.
void MatMulKernel(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, bool ta, bool tb) {
  ParallelForRange(ComputePool(), static_cast<size_t>(m), RowGrain(2 * k * n),
                   [&](size_t begin, size_t end) {
                     MatMulRows(a, b, c, m, k, n, ta, tb,
                                static_cast<int64_t>(begin),
                                static_cast<int64_t>(end));
                   });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b, bool transpose_a,
              bool transpose_b) {
  IMDIFF_CHECK_EQ(a.ndim(), 2u);
  IMDIFF_CHECK_EQ(b.ndim(), 2u);
  const int64_t m = transpose_a ? a.dim(1) : a.dim(0);
  const int64_t k = transpose_a ? a.dim(0) : a.dim(1);
  const int64_t kb = transpose_b ? b.dim(1) : b.dim(0);
  const int64_t n = transpose_b ? b.dim(0) : b.dim(1);
  IMDIFF_CHECK_EQ(k, kb) << "matmul inner dims" << ShapeToString(a.shape())
                         << ShapeToString(b.shape());
  Tensor c({m, n});
  MatMulKernel(a.data(), b.data(), c.mutable_data(), m, k, n, transpose_a,
               transpose_b);
  return c;
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b, bool transpose_a,
                     bool transpose_b) {
  IMDIFF_CHECK_EQ(a.ndim(), 3u);
  IMDIFF_CHECK_EQ(b.ndim(), 3u);
  IMDIFF_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t batch = a.dim(0);
  const int64_t m = transpose_a ? a.dim(2) : a.dim(1);
  const int64_t k = transpose_a ? a.dim(1) : a.dim(2);
  const int64_t kb = transpose_b ? b.dim(2) : b.dim(1);
  const int64_t n = transpose_b ? b.dim(1) : b.dim(2);
  IMDIFF_CHECK_EQ(k, kb) << "bmm inner dims" << ShapeToString(a.shape())
                         << ShapeToString(b.shape());
  Tensor c({batch, m, n});
  const int64_t a_step = a.dim(1) * a.dim(2);
  const int64_t b_step = b.dim(1) * b.dim(2);
  const int64_t c_step = m * n;
  // Batch-level parallelism; the per-batch MatMulKernel detects it is running
  // on a pool worker and computes its rows inline.
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.mutable_data();
  ParallelFor(
      ComputePool(), static_cast<size_t>(batch),
      [&](size_t idx) {
        const int64_t i = static_cast<int64_t>(idx);
        MatMulKernel(pa + i * a_step, pb + i * b_step, pc + i * c_step, m, k, n,
                     transpose_a, transpose_b);
      },
      RowGrain(2 * m * k * n));
  return c;
}

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const size_t nd = std::max(a.size(), b.size());
  Shape out(nd, 1);
  for (size_t i = 0; i < nd; ++i) {
    const int64_t da = i < nd - a.size() ? 1 : a[i - (nd - a.size())];
    const int64_t db = i < nd - b.size() ? 1 : b[i - (nd - b.size())];
    IMDIFF_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast" << ShapeToString(a) << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

namespace {

template <typename Op>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, Op op) {
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.mutable_data();
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = op(pa[i], pb[i]);
    return out;
  }
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  Tensor out(out_shape);
  const size_t nd = out_shape.size();
  // Effective strides for a and b in the output coordinate system: 0 where the
  // input dimension is broadcast.
  std::vector<int64_t> sa(nd, 0), sb(nd, 0);
  {
    const auto stra = Strides(a.shape());
    const auto strb = Strides(b.shape());
    for (size_t i = 0; i < nd; ++i) {
      if (i >= nd - a.shape().size()) {
        const size_t ai = i - (nd - a.shape().size());
        sa[i] = a.shape()[ai] == 1 ? 0 : stra[ai];
      }
      if (i >= nd - b.shape().size()) {
        const size_t bi = i - (nd - b.shape().size());
        sb[i] = b.shape()[bi] == 1 ? 0 : strb[bi];
      }
    }
  }
  std::vector<int64_t> idx(nd, 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.mutable_data();
  const int64_t n = out.numel();
  int64_t off_a = 0, off_b = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    po[flat] = op(pa[off_a], pb[off_b]);
    // Increment multi-index from the last axis.
    for (size_t d = nd; d-- > 0;) {
      ++idx[d];
      off_a += sa[d];
      off_b += sb[d];
      if (idx[d] < out_shape[d]) break;
      off_a -= sa[d] * out_shape[d];
      off_b -= sb[d] * out_shape[d];
      idx[d] = 0;
    }
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x / y; });
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  // Align target to t's rank with leading 1s, sum over broadcast axes.
  const size_t nd = t.ndim();
  Shape aligned(nd, 1);
  for (size_t i = 0; i < target.size(); ++i) {
    aligned[nd - target.size() + i] = target[i];
  }
  Tensor out = t;
  for (size_t axis = 0; axis < nd; ++axis) {
    if (aligned[axis] == 1 && out.dim(axis) != 1) {
      out = ReduceSumAxis(out, axis, /*keepdim=*/true);
    }
  }
  return out.Reshape(target);
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.mutable_data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] * s;
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.mutable_data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + s;
  return out;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.mutable_data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

Tensor Permute(const Tensor& t, const std::vector<size_t>& perm) {
  IMDIFF_CHECK_EQ(perm.size(), t.ndim());
  const size_t nd = t.ndim();
  Shape out_shape(nd);
  for (size_t i = 0; i < nd; ++i) out_shape[i] = t.dim(perm[i]);
  Tensor out(out_shape);
  const auto in_strides = Strides(t.shape());
  // Stride of the output's i-th axis inside the input buffer.
  std::vector<int64_t> gather(nd);
  for (size_t i = 0; i < nd; ++i) gather[i] = in_strides[perm[i]];
  std::vector<int64_t> idx(nd, 0);
  const float* pin = t.data();
  float* pout = out.mutable_data();
  const int64_t n = t.numel();
  int64_t off = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    pout[flat] = pin[off];
    for (size_t d = nd; d-- > 0;) {
      ++idx[d];
      off += gather[d];
      if (idx[d] < out_shape[d]) break;
      off -= gather[d] * out_shape[d];
      idx[d] = 0;
    }
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, size_t axis) {
  IMDIFF_CHECK(!parts.empty());
  const size_t nd = parts[0].ndim();
  IMDIFF_CHECK_LT(axis, nd);
  Shape out_shape = parts[0].shape();
  out_shape[axis] = 0;
  for (const Tensor& p : parts) {
    IMDIFF_CHECK_EQ(p.ndim(), nd);
    for (size_t d = 0; d < nd; ++d) {
      if (d != axis) {
        IMDIFF_CHECK_EQ(p.dim(d), parts[0].dim(d));
      }
    }
    out_shape[axis] += p.dim(axis);
  }
  Tensor out(out_shape);
  // outer: product of dims before axis; inner: product after.
  int64_t outer = 1, inner = 1;
  for (size_t d = 0; d < axis; ++d) outer *= out_shape[d];
  for (size_t d = axis + 1; d < nd; ++d) inner *= out_shape[d];
  float* po = out.mutable_data();
  const int64_t out_row = out_shape[axis] * inner;
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    const int64_t p_row = p.dim(axis) * inner;
    const float* pp = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + o * out_row + offset, pp + o * p_row,
                  sizeof(float) * static_cast<size_t>(p_row));
    }
    offset += p_row;
  }
  return out;
}

Tensor Slice(const Tensor& t, size_t axis, int64_t start, int64_t len) {
  IMDIFF_CHECK_LT(axis, t.ndim());
  IMDIFF_CHECK_GE(start, 0);
  IMDIFF_CHECK_LE(start + len, t.dim(axis));
  Shape out_shape = t.shape();
  out_shape[axis] = len;
  Tensor out(out_shape);
  int64_t outer = 1, inner = 1;
  for (size_t d = 0; d < axis; ++d) outer *= t.dim(d);
  for (size_t d = axis + 1; d < t.ndim(); ++d) inner *= t.dim(d);
  const int64_t in_row = t.dim(axis) * inner;
  const int64_t out_row = len * inner;
  const float* pin = t.data();
  float* pout = out.mutable_data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(pout + o * out_row, pin + o * in_row + start * inner,
                sizeof(float) * static_cast<size_t>(out_row));
  }
  return out;
}

Tensor SliceBackward(const Tensor& grad, const Shape& full_shape, size_t axis,
                     int64_t start) {
  Tensor out(full_shape);
  int64_t outer = 1, inner = 1;
  for (size_t d = 0; d < axis; ++d) outer *= full_shape[d];
  for (size_t d = axis + 1; d < full_shape.size(); ++d) inner *= full_shape[d];
  const int64_t len = grad.dim(axis);
  const int64_t out_row = full_shape[axis] * inner;
  const int64_t g_row = len * inner;
  const float* pg = grad.data();
  float* po = out.mutable_data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(po + o * out_row + start * inner, pg + o * g_row,
                sizeof(float) * static_cast<size_t>(g_row));
  }
  return out;
}

Tensor SoftmaxLastDim(const Tensor& t) {
  IMDIFF_CHECK_GE(t.ndim(), 1u);
  const int64_t last = t.dim(t.ndim() - 1);
  const int64_t rows = t.numel() / last;
  Tensor out(t.shape());
  const float* pin = t.data();
  float* pout = out.mutable_data();
  ParallelForRange(
      ComputePool(), static_cast<size_t>(rows), RowGrain(4 * last),
      [&](size_t begin, size_t end) {
        for (int64_t r = static_cast<int64_t>(begin);
             r < static_cast<int64_t>(end); ++r) {
          const float* row = pin + r * last;
          float* orow = pout + r * last;
          float mx = row[0];
          for (int64_t j = 1; j < last; ++j) mx = std::max(mx, row[j]);
          float sum = 0.0f;
          for (int64_t j = 0; j < last; ++j) {
            orow[j] = std::exp(row[j] - mx);
            sum += orow[j];
          }
          const float inv = 1.0f / sum;
          for (int64_t j = 0; j < last; ++j) orow[j] *= inv;
        }
      });
  return out;
}

Tensor ReduceSumAxis(const Tensor& t, size_t axis, bool keepdim) {
  IMDIFF_CHECK_LT(axis, t.ndim());
  int64_t outer = 1, inner = 1;
  for (size_t d = 0; d < axis; ++d) outer *= t.dim(d);
  for (size_t d = axis + 1; d < t.ndim(); ++d) inner *= t.dim(d);
  const int64_t reduce = t.dim(axis);
  Shape out_shape = t.shape();
  if (keepdim) {
    out_shape[axis] = 1;
  } else {
    out_shape.erase(out_shape.begin() + static_cast<int64_t>(axis));
    if (out_shape.empty()) out_shape = {1};
  }
  Tensor out(out_shape);
  const float* pin = t.data();
  float* pout = out.mutable_data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t r = 0; r < reduce; ++r) {
      const float* src = pin + (o * reduce + r) * inner;
      float* dst = pout + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  return out;
}

double SumAll(const Tensor& t) {
  double acc = 0.0;
  const float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) acc += p[i];
  return acc;
}

double MeanAll(const Tensor& t) {
  IMDIFF_CHECK_GT(t.numel(), 0);
  return SumAll(t) / static_cast<double>(t.numel());
}

Tensor Conv1d(const Tensor& x, const Tensor& w, const Tensor& bias, int pad) {
  IMDIFF_CHECK_EQ(x.ndim(), 3u);
  IMDIFF_CHECK_EQ(w.ndim(), 3u);
  const int64_t batch = x.dim(0), cin = x.dim(1), length = x.dim(2);
  const int64_t cout = w.dim(0), kernel = w.dim(2);
  IMDIFF_CHECK_EQ(w.dim(1), cin);
  const int64_t lout = length + 2 * pad - kernel + 1;
  IMDIFF_CHECK_GT(lout, 0);
  Tensor y({batch, cout, lout});
  const float* px = x.data();
  const float* pw = w.data();
  float* py = y.mutable_data();
  const bool has_bias = bias.numel() > 0;
  if (has_bias) IMDIFF_CHECK_EQ(bias.numel(), cout);
  const float* pb = has_bias ? bias.data() : nullptr;
  // Each batch element writes its own [cout, lout] output block, so the batch
  // loop parallelizes with bitwise-identical results for any thread count.
  ParallelFor(
      ComputePool(), static_cast<size_t>(batch),
      [&](size_t idx) {
        const int64_t b = static_cast<int64_t>(idx);
        if (has_bias) {
          for (int64_t co = 0; co < cout; ++co) {
            float* row = py + (b * cout + co) * lout;
            for (int64_t l = 0; l < lout; ++l) row[l] = pb[co];
          }
        }
        for (int64_t co = 0; co < cout; ++co) {
          float* yrow = py + (b * cout + co) * lout;
          for (int64_t ci = 0; ci < cin; ++ci) {
            const float* xrow = px + (b * cin + ci) * length;
            const float* wrow = pw + (co * cin + ci) * kernel;
            for (int64_t kk = 0; kk < kernel; ++kk) {
              const float wv = wrow[kk];
              if (wv == 0.0f) continue;
              const int64_t in_off = kk - pad;
              const int64_t l_lo = std::max<int64_t>(0, -in_off);
              const int64_t l_hi = std::min<int64_t>(lout, length - in_off);
              for (int64_t l = l_lo; l < l_hi; ++l) {
                yrow[l] += wv * xrow[l + in_off];
              }
            }
          }
        }
      },
      RowGrain(2 * cout * cin * kernel * lout));
  return y;
}

void Conv1dBackward(const Tensor& x, const Tensor& w, int pad,
                    const Tensor& grad_out, Tensor* grad_x, Tensor* grad_w,
                    Tensor* grad_bias) {
  const int64_t batch = x.dim(0), cin = x.dim(1), length = x.dim(2);
  const int64_t cout = w.dim(0), kernel = w.dim(2);
  const int64_t lout = grad_out.dim(2);
  const float* px = x.data();
  const float* pw = w.data();
  const float* pg = grad_out.data();
  if (grad_bias != nullptr) {
    *grad_bias = Tensor({cout});
    float* pb = grad_bias->mutable_data();
    for (int64_t b = 0; b < batch; ++b)
      for (int64_t co = 0; co < cout; ++co) {
        const float* grow = pg + (b * cout + co) * lout;
        for (int64_t l = 0; l < lout; ++l) pb[co] += grow[l];
      }
  }
  if (grad_w != nullptr) {
    *grad_w = Tensor(w.shape());
    float* pgw = grad_w->mutable_data();
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t co = 0; co < cout; ++co) {
        const float* grow = pg + (b * cout + co) * lout;
        for (int64_t ci = 0; ci < cin; ++ci) {
          const float* xrow = px + (b * cin + ci) * length;
          float* wrow = pgw + (co * cin + ci) * kernel;
          for (int64_t kk = 0; kk < kernel; ++kk) {
            const int64_t in_off = kk - pad;
            const int64_t l_lo = std::max<int64_t>(0, -in_off);
            const int64_t l_hi = std::min<int64_t>(lout, length - in_off);
            float acc = 0.0f;
            for (int64_t l = l_lo; l < l_hi; ++l) {
              acc += grow[l] * xrow[l + in_off];
            }
            wrow[kk] += acc;
          }
        }
      }
    }
  }
  if (grad_x != nullptr) {
    *grad_x = Tensor(x.shape());
    float* pgx = grad_x->mutable_data();
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t co = 0; co < cout; ++co) {
        const float* grow = pg + (b * cout + co) * lout;
        for (int64_t ci = 0; ci < cin; ++ci) {
          float* xrow = pgx + (b * cin + ci) * length;
          const float* wrow = pw + (co * cin + ci) * kernel;
          for (int64_t kk = 0; kk < kernel; ++kk) {
            const float wv = wrow[kk];
            if (wv == 0.0f) continue;
            const int64_t in_off = kk - pad;
            const int64_t l_lo = std::max<int64_t>(0, -in_off);
            const int64_t l_hi = std::min<int64_t>(lout, length - in_off);
            for (int64_t l = l_lo; l < l_hi; ++l) {
              xrow[l + in_off] += wv * grow[l];
            }
          }
        }
      }
    }
  }
}

}  // namespace imdiff
