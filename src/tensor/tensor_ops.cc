#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/arena.h"
#include "tensor/gemm.h"
#include "tensor/simd.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace {

// Work-partitioning grains are shared with the inference graph executor
// through tensor/gemm.h so both paths split identically.
using gemm::kElementGrain;
using gemm::RowGrain;

// Computes row-major strides for a shape.
std::vector<int64_t> Strides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (size_t i = shape.size(); i-- > 1;) {
    strides[i - 1] = strides[i] * shape[i];
  }
  return strides;
}

// ---- GEMM -------------------------------------------------------------------
//
// The vectorized path is a packed, register-tiled kernel: the b operand is
// packed one NR-wide column panel at a time into [k, NR] layout (zero-padded
// on the right edge), which collapses the transpose_b distinction, and a
// transposed a is packed to contiguous rows once per worker range, collapsing
// transpose_a. The microkernel then accumulates an MR x NR tile entirely in
// registers over the full reduction dim and stores each output element exactly
// once — so outputs may be allocated uninitialized.
//
// Determinism: packing is pure data movement, and each output row's FMA
// sequence (p ascending within its column panel) depends only on (m, k, n),
// never on how rows are grouped into tiles or split across workers. Results
// are therefore bitwise identical for any thread count and any batch
// composition, as required by the serving-path invariants.

// Tile constants are shared with the graph executor through tensor/gemm.h.
using gemm::kMR;

#if defined(IMDIFF_SIMD_ANY)

using gemm::kNRVec;

// Packs columns [j0, j0+jr) of logical b (k x n) into panel[p * kNRVec + jj],
// zero-padding jj in [jr, kNRVec). tb means b is stored as [n, k].
void PackBPanel(const float* b, int64_t k, int64_t n, bool tb, int64_t j0,
                int64_t jr, float* panel) {
  if (!tb) {
    for (int64_t p = 0; p < k; ++p) {
      const float* src = b + p * n + j0;
      float* dst = panel + p * kNRVec;
      int64_t jj = 0;
      for (; jj < jr; ++jj) dst[jj] = src[jj];
      for (; jj < kNRVec; ++jj) dst[jj] = 0.0f;
    }
  } else {
    for (int64_t p = 0; p < k; ++p) {
      float* dst = panel + p * kNRVec;
      for (int64_t jj = 0; jj < jr; ++jj) dst[jj] = b[(j0 + jj) * k + p];
      for (int64_t jj = jr; jj < kNRVec; ++jj) dst[jj] = 0.0f;
    }
  }
}

// MR x kNRVec register tile: c[r][j0 + jj] = sum_p a[r][p] * panel[p][jj].
// `arows` holds MR contiguous rows of stride k; `jr` columns are stored.
template <int MR>
void MicroKernelVec(const float* arows, int64_t k, const float* panel, float* c,
                    int64_t n, int64_t j0, int64_t jr) {
  using simd::VecF;
  constexpr int W = simd::kVectorWidth;
  VecF acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = simd::VZero();
    acc1[r] = simd::VZero();
  }
  for (int64_t p = 0; p < k; ++p) {
    const VecF b0 = simd::VLoad(panel + p * kNRVec);
    const VecF b1 = simd::VLoad(panel + p * kNRVec + W);
    for (int r = 0; r < MR; ++r) {
      const VecF av = simd::VSet1(arows[r * k + p]);
      acc0[r] = simd::VFma(av, b0, acc0[r]);
      acc1[r] = simd::VFma(av, b1, acc1[r]);
    }
  }
  if (jr == kNRVec) {
    for (int r = 0; r < MR; ++r) {
      simd::VStore(c + r * n + j0, acc0[r]);
      simd::VStore(c + r * n + j0 + W, acc1[r]);
    }
  } else {
    float tmp[2 * W];
    for (int r = 0; r < MR; ++r) {
      simd::VStore(tmp, acc0[r]);
      simd::VStore(tmp + W, acc1[r]);
      std::memcpy(c + r * n + j0, tmp, sizeof(float) * static_cast<size_t>(jr));
    }
  }
}

// Dispatches the MR-tall microkernel over rows [0, rows) against one packed
// panel covering columns [j0, j0+jr).
void MicroKernelRows(const float* abase, int64_t k, const float* panel,
                     float* c, int64_t n, int64_t j0, int64_t jr,
                     int64_t row_begin, int64_t rows) {
  for (int64_t i0 = 0; i0 < rows; i0 += kMR) {
    const int64_t mr = std::min<int64_t>(kMR, rows - i0);
    const float* arows = abase + i0 * k;
    float* crow = c + (row_begin + i0) * n;
    switch (mr) {
      case 1:
        MicroKernelVec<1>(arows, k, panel, crow, n, j0, jr);
        break;
      case 2:
        MicroKernelVec<2>(arows, k, panel, crow, n, j0, jr);
        break;
      case 3:
        MicroKernelVec<3>(arows, k, panel, crow, n, j0, jr);
        break;
      default:
        MicroKernelVec<4>(arows, k, panel, crow, n, j0, jr);
        break;
    }
  }
}

#endif  // IMDIFF_SIMD_ANY

}  // namespace

namespace gemm {

#if defined(IMDIFF_SIMD_ANY)

// Rows [row_begin, row_end) of c[m,n] = a * b with the packed kernel and
// caller-provided scratch. Every element of those rows is stored exactly
// once.
void GemmRowsPackedScratch(const float* a, const float* b, float* c, int64_t m,
                           int64_t k, int64_t n, bool ta, bool tb,
                           int64_t row_begin, int64_t row_end, float* bpack,
                           float* apack) {
  const int64_t rows = row_end - row_begin;
  if (rows <= 0 || n <= 0) return;
  // Transposed a ([k, m] physical) is packed to contiguous rows once per
  // worker range; afterwards both layouts feed the microkernel identically.
  if (ta) {
    for (int64_t r = 0; r < rows; ++r) {
      float* dst = apack + r * k;
      const int64_t i = row_begin + r;
      for (int64_t p = 0; p < k; ++p) dst[p] = a[p * m + i];
    }
  }
  const float* abase = ta ? apack : a + row_begin * k;
  // One [k, kNRVec] panel at a time, reused across all row tiles; for the
  // model's reduction dims it stays resident in L1.
  for (int64_t j0 = 0; j0 < n; j0 += kNRVec) {
    const int64_t jr = std::min<int64_t>(kNRVec, n - j0);
    PackBPanel(b, k, n, tb, j0, jr, bpack);
    MicroKernelRows(abase, k, bpack, c, n, j0, jr, row_begin, rows);
  }
}

void PackBFull(const float* b, int64_t k, int64_t n, bool tb, float* packed) {
  for (int64_t j0 = 0; j0 < n; j0 += kNRVec) {
    const int64_t jr = std::min<int64_t>(kNRVec, n - j0);
    PackBPanel(b, k, n, tb, j0, jr,
               packed + (j0 / kNRVec) * (k * kNRVec));
  }
}

void GemmRowsPrepacked(const float* a, const float* packed_b, float* c,
                       int64_t m, int64_t k, int64_t n, int64_t row_begin,
                       int64_t row_end) {
  (void)m;
  const int64_t rows = row_end - row_begin;
  if (rows <= 0 || n <= 0) return;
  const float* abase = a + row_begin * k;
  // Identical panel/tile iteration to GemmRowsPackedScratch — only the
  // per-call PackBPanel is gone, so the FMA stream (and the result) is
  // bitwise the same.
  for (int64_t j0 = 0; j0 < n; j0 += kNRVec) {
    const int64_t jr = std::min<int64_t>(kNRVec, n - j0);
    const float* panel = packed_b + (j0 / kNRVec) * (k * kNRVec);
    MicroKernelRows(abase, k, panel, c, n, j0, jr, row_begin, rows);
  }
}

#endif  // IMDIFF_SIMD_ANY

// Scalar reference: rows [row_begin, row_end) of c += a * b with the four
// transpose layouts handled directly. Kept as the pre-SIMD kernel so the
// IMDIFF_FORCE_SCALAR path and the generic (-march-less) build measure and
// behave exactly like the original implementation. Requires its c rows to be
// zeroed (the caller memsets them; outputs are allocated uninitialized).
void MatMulRowsScalar(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n, bool ta, bool tb, int64_t row_begin,
                      int64_t row_end) {
  if (!ta && !tb) {
    // ikj ordering with 4-way unrolling over k: streams b rows and amortizes
    // the c-row traffic across four partial products.
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* crow = c + i * n;
      const float* arow = a + i * k;
      int64_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const float a0 = arow[p], a1 = arow[p + 1];
        const float a2 = arow[p + 2], a3 = arow[p + 3];
        const float* b0 = b + p * n;
        const float* b1 = b0 + n;
        const float* b2 = b1 + n;
        const float* b3 = b2 + n;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
      }
      for (; p < k; ++p) {
        const float av = arow[p];
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (ta && !tb) {
    // a is [k,m] physically: c[i][j] += sum_p a[p][i] b[p][j], unrolled 4x
    // over the reduction dim p.
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* crow = c + i * n;
      int64_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const float a0 = a[p * m + i], a1 = a[(p + 1) * m + i];
        const float a2 = a[(p + 2) * m + i], a3 = a[(p + 3) * m + i];
        const float* b0 = b + p * n;
        const float* b1 = b0 + n;
        const float* b2 = b1 + n;
        const float* b3 = b2 + n;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
      }
      for (; p < k; ++p) {
        const float av = a[p * m + i];
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!ta && tb) {
    // b is [n,k] physically: dot products of contiguous rows.
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
    }
  } else {
    // a [k,m], b [n,k].
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * brow[p];
        crow[j] += acc;
      }
    }
  }
}

// Full 2D matmul into an uninitialized c, parallelized over output rows on the
// compute pool. Nested calls (e.g. from a batch-level parallel section) run
// inline.
void MatMulInto(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n, bool ta, bool tb) {
#if defined(IMDIFF_SIMD_ANY)
  if (simd::Enabled()) {
    ParallelForRange(ComputePool(), static_cast<size_t>(m), RowGrain(2 * k * n),
                     [&](size_t begin, size_t end) {
                       const int64_t rows = static_cast<int64_t>(end - begin);
                       ArenaBuffer apack(ta ? static_cast<size_t>(rows * k)
                                            : 0);
                       ArenaBuffer bpack(PanelFloats(k));
                       GemmRowsPackedScratch(a, b, c, m, k, n, ta, tb,
                                             static_cast<int64_t>(begin),
                                             static_cast<int64_t>(end),
                                             bpack.data(), apack.data());
                     });
    return;
  }
#endif
  ParallelForRange(ComputePool(), static_cast<size_t>(m), RowGrain(2 * k * n),
                   [&](size_t begin, size_t end) {
                     // The scalar kernel accumulates, so zero exactly the rows
                     // this worker owns (c arrives uninitialized).
                     std::memset(c + static_cast<int64_t>(begin) * n, 0,
                                 sizeof(float) * static_cast<size_t>(
                                                     (end - begin) * n));
                     MatMulRowsScalar(a, b, c, m, k, n, ta, tb,
                                      static_cast<int64_t>(begin),
                                      static_cast<int64_t>(end));
                   });
}

}  // namespace gemm

Tensor MatMul(const Tensor& a, const Tensor& b, bool transpose_a,
              bool transpose_b) {
  IMDIFF_CHECK_EQ(a.ndim(), 2u);
  IMDIFF_CHECK_EQ(b.ndim(), 2u);
  const int64_t m = transpose_a ? a.dim(1) : a.dim(0);
  const int64_t k = transpose_a ? a.dim(0) : a.dim(1);
  const int64_t kb = transpose_b ? b.dim(1) : b.dim(0);
  const int64_t n = transpose_b ? b.dim(0) : b.dim(1);
  IMDIFF_CHECK_EQ(k, kb) << "matmul inner dims" << ShapeToString(a.shape())
                         << ShapeToString(b.shape());
  Tensor c = Tensor::Uninitialized({m, n});
  gemm::MatMulInto(a.data(), b.data(), c.mutable_data(), m, k, n, transpose_a,
                   transpose_b);
  return c;
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b, bool transpose_a,
                     bool transpose_b) {
  IMDIFF_CHECK_EQ(a.ndim(), 3u);
  IMDIFF_CHECK_EQ(b.ndim(), 3u);
  IMDIFF_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t batch = a.dim(0);
  const int64_t m = transpose_a ? a.dim(2) : a.dim(1);
  const int64_t k = transpose_a ? a.dim(1) : a.dim(2);
  const int64_t kb = transpose_b ? b.dim(2) : b.dim(1);
  const int64_t n = transpose_b ? b.dim(1) : b.dim(2);
  IMDIFF_CHECK_EQ(k, kb) << "bmm inner dims" << ShapeToString(a.shape())
                         << ShapeToString(b.shape());
  Tensor c = Tensor::Uninitialized({batch, m, n});
  const int64_t a_step = a.dim(1) * a.dim(2);
  const int64_t b_step = b.dim(1) * b.dim(2);
  const int64_t c_step = m * n;
  // Batch-level parallelism; the per-batch matmul detects it is running
  // on a pool worker and computes its rows inline.
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.mutable_data();
  ParallelFor(
      ComputePool(), static_cast<size_t>(batch),
      [&](size_t idx) {
        const int64_t i = static_cast<int64_t>(idx);
        gemm::MatMulInto(pa + i * a_step, pb + i * b_step, pc + i * c_step, m,
                         k, n, transpose_a, transpose_b);
      },
      gemm::RowGrain(2 * m * k * n));
  return c;
}

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const size_t nd = std::max(a.size(), b.size());
  Shape out(nd, 1);
  for (size_t i = 0; i < nd; ++i) {
    const int64_t da = i < nd - a.size() ? 1 : a[i - (nd - a.size())];
    const int64_t db = i < nd - b.size() ? 1 : b[i - (nd - b.size())];
    IMDIFF_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast" << ShapeToString(a) << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

namespace {

// General (shape-mismatched) broadcasting walk; the same-shape fast paths live
// in Add/Sub/Mul/Div below on the vector kernels.
template <typename Op>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, Op op) {
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  Tensor out = Tensor::Uninitialized(out_shape);
  const size_t nd = out_shape.size();
  // Effective strides for a and b in the output coordinate system: 0 where the
  // input dimension is broadcast.
  std::vector<int64_t> sa(nd, 0), sb(nd, 0);
  {
    const auto stra = Strides(a.shape());
    const auto strb = Strides(b.shape());
    for (size_t i = 0; i < nd; ++i) {
      if (i >= nd - a.shape().size()) {
        const size_t ai = i - (nd - a.shape().size());
        sa[i] = a.shape()[ai] == 1 ? 0 : stra[ai];
      }
      if (i >= nd - b.shape().size()) {
        const size_t bi = i - (nd - b.shape().size());
        sb[i] = b.shape()[bi] == 1 ? 0 : strb[bi];
      }
    }
  }
  std::vector<int64_t> idx(nd, 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.mutable_data();
  const int64_t n = out.numel();
  int64_t off_a = 0, off_b = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    po[flat] = op(pa[off_a], pb[off_b]);
    // Increment multi-index from the last axis.
    for (size_t d = nd; d-- > 0;) {
      ++idx[d];
      off_a += sa[d];
      off_b += sb[d];
      if (idx[d] < out_shape[d]) break;
      off_a -= sa[d] * out_shape[d];
      off_b -= sb[d] * out_shape[d];
      idx[d] = 0;
    }
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Uninitialized(a.shape());
    simd::AddInto(out.mutable_data(), a.data(), b.data(), a.numel());
    return out;
  }
  return BroadcastBinary(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Uninitialized(a.shape());
    simd::SubInto(out.mutable_data(), a.data(), b.data(), a.numel());
    return out;
  }
  return BroadcastBinary(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Uninitialized(a.shape());
    simd::MulInto(out.mutable_data(), a.data(), b.data(), a.numel());
    return out;
  }
  return BroadcastBinary(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Uninitialized(a.shape());
    simd::DivInto(out.mutable_data(), a.data(), b.data(), a.numel());
    return out;
  }
  return BroadcastBinary(a, b, [](float x, float y) { return x / y; });
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  // Align target to t's rank with leading 1s, sum over broadcast axes.
  const size_t nd = t.ndim();
  Shape aligned(nd, 1);
  for (size_t i = 0; i < target.size(); ++i) {
    aligned[nd - target.size() + i] = target[i];
  }
  Tensor out = t;
  for (size_t axis = 0; axis < nd; ++axis) {
    if (aligned[axis] == 1 && out.dim(axis) != 1) {
      out = ReduceSumAxis(out, axis, /*keepdim=*/true);
    }
  }
  return out.Reshape(target);
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = Tensor::Uninitialized(a.shape());
  simd::ScaleInto(out.mutable_data(), a.data(), s, a.numel());
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = Tensor::Uninitialized(a.shape());
  simd::AddScalarInto(out.mutable_data(), a.data(), s, a.numel());
  return out;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  float* po = out.mutable_data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

namespace {

// Parallel elementwise dispatch for the fused activation kernels. The simd
// kernels are position-independent (scalar tails replicate the lane
// arithmetic), so splitting the flat range at arbitrary points is bitwise
// safe.
template <typename Kernel>
Tensor ElementwiseUnary(const Tensor& x, Kernel kernel) {
  Tensor out = Tensor::Uninitialized(x.shape());
  const float* px = x.data();
  float* po = out.mutable_data();
  ParallelForRange(ComputePool(), static_cast<size_t>(x.numel()),
                   kElementGrain, [&](size_t begin, size_t end) {
                     kernel(po + begin, px + begin,
                            static_cast<int64_t>(end - begin));
                   });
  return out;
}

template <typename Kernel>
Tensor ElementwiseUnaryGrad(const Tensor& x, const Tensor& grad,
                            Kernel kernel) {
  IMDIFF_CHECK(x.shape() == grad.shape());
  Tensor out = Tensor::Uninitialized(x.shape());
  const float* px = x.data();
  const float* pg = grad.data();
  float* po = out.mutable_data();
  ParallelForRange(ComputePool(), static_cast<size_t>(x.numel()),
                   kElementGrain, [&](size_t begin, size_t end) {
                     kernel(po + begin, px + begin, pg + begin,
                            static_cast<int64_t>(end - begin));
                   });
  return out;
}

}  // namespace

Tensor GeluForward(const Tensor& x) {
  return ElementwiseUnary(x, [](float* o, const float* p, int64_t n) {
    simd::GeluInto(o, p, n);
  });
}

Tensor GeluBackward(const Tensor& x, const Tensor& grad) {
  return ElementwiseUnaryGrad(
      x, grad, [](float* o, const float* p, const float* g, int64_t n) {
        simd::GeluGradInto(o, p, g, n);
      });
}

Tensor SiluForward(const Tensor& x) {
  return ElementwiseUnary(x, [](float* o, const float* p, int64_t n) {
    simd::SiluInto(o, p, n);
  });
}

Tensor SiluBackward(const Tensor& x, const Tensor& grad) {
  return ElementwiseUnaryGrad(
      x, grad, [](float* o, const float* p, const float* g, int64_t n) {
        simd::SiluGradInto(o, p, g, n);
      });
}

void LayerNormForward(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                      float eps, Tensor* y, Tensor* xhat, Tensor* inv_std) {
  IMDIFF_CHECK_GE(x.ndim(), 1u);
  const int64_t last = x.dim(x.ndim() - 1);
  IMDIFF_CHECK_EQ(gamma.numel(), last);
  IMDIFF_CHECK_EQ(beta.numel(), last);
  const int64_t rows = last > 0 ? x.numel() / last : 0;
  *y = Tensor::Uninitialized(x.shape());
  *xhat = Tensor::Uninitialized(x.shape());
  *inv_std = Tensor::Uninitialized({rows});
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  float* py = y->mutable_data();
  float* ph = xhat->mutable_data();
  float* ps = inv_std->mutable_data();
  const float inv_n = 1.0f / static_cast<float>(last);
  // Row-local: every value a row produces is a function of that row alone, so
  // the row partition cannot affect results.
  ParallelForRange(
      ComputePool(), static_cast<size_t>(rows), RowGrain(8 * last),
      [&](size_t begin, size_t end) {
        for (int64_t r = static_cast<int64_t>(begin);
             r < static_cast<int64_t>(end); ++r) {
          const float* row = px + r * last;
          const float mean = simd::Sum(row, last) * inv_n;
          const float var = simd::SqDiffSum(row, mean, last) * inv_n;
          const float is = 1.0f / std::sqrt(var + eps);
          float* hrow = ph + r * last;
          simd::ScaledDiffInto(hrow, row, mean, is, last);
          simd::FmaInto(py + r * last, hrow, pg, pb, last);
          ps[r] = is;
        }
      });
}

Tensor Permute(const Tensor& t, const std::vector<size_t>& perm) {
  IMDIFF_CHECK_EQ(perm.size(), t.ndim());
  const size_t nd = t.ndim();
  Shape out_shape(nd);
  for (size_t i = 0; i < nd; ++i) out_shape[i] = t.dim(perm[i]);
  Tensor out = Tensor::Uninitialized(out_shape);
  const auto in_strides = Strides(t.shape());
  // Stride of the output's i-th axis inside the input buffer.
  std::vector<int64_t> gather(nd);
  for (size_t i = 0; i < nd; ++i) gather[i] = in_strides[perm[i]];
  std::vector<int64_t> idx(nd, 0);
  const float* pin = t.data();
  float* pout = out.mutable_data();
  const int64_t n = t.numel();
  int64_t off = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    pout[flat] = pin[off];
    for (size_t d = nd; d-- > 0;) {
      ++idx[d];
      off += gather[d];
      if (idx[d] < out_shape[d]) break;
      off -= gather[d] * out_shape[d];
      idx[d] = 0;
    }
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, size_t axis) {
  IMDIFF_CHECK(!parts.empty());
  const size_t nd = parts[0].ndim();
  IMDIFF_CHECK_LT(axis, nd);
  Shape out_shape = parts[0].shape();
  out_shape[axis] = 0;
  for (const Tensor& p : parts) {
    IMDIFF_CHECK_EQ(p.ndim(), nd);
    for (size_t d = 0; d < nd; ++d) {
      if (d != axis) {
        IMDIFF_CHECK_EQ(p.dim(d), parts[0].dim(d));
      }
    }
    out_shape[axis] += p.dim(axis);
  }
  Tensor out = Tensor::Uninitialized(out_shape);
  // outer: product of dims before axis; inner: product after.
  int64_t outer = 1, inner = 1;
  for (size_t d = 0; d < axis; ++d) outer *= out_shape[d];
  for (size_t d = axis + 1; d < nd; ++d) inner *= out_shape[d];
  float* po = out.mutable_data();
  const int64_t out_row = out_shape[axis] * inner;
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    const int64_t p_row = p.dim(axis) * inner;
    const float* pp = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + o * out_row + offset, pp + o * p_row,
                  sizeof(float) * static_cast<size_t>(p_row));
    }
    offset += p_row;
  }
  return out;
}

Tensor Slice(const Tensor& t, size_t axis, int64_t start, int64_t len) {
  IMDIFF_CHECK_LT(axis, t.ndim());
  IMDIFF_CHECK_GE(start, 0);
  IMDIFF_CHECK_LE(start + len, t.dim(axis));
  Shape out_shape = t.shape();
  out_shape[axis] = len;
  Tensor out = Tensor::Uninitialized(out_shape);
  int64_t outer = 1, inner = 1;
  for (size_t d = 0; d < axis; ++d) outer *= t.dim(d);
  for (size_t d = axis + 1; d < t.ndim(); ++d) inner *= t.dim(d);
  const int64_t in_row = t.dim(axis) * inner;
  const int64_t out_row = len * inner;
  const float* pin = t.data();
  float* pout = out.mutable_data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(pout + o * out_row, pin + o * in_row + start * inner,
                sizeof(float) * static_cast<size_t>(out_row));
  }
  return out;
}

Tensor SliceBackward(const Tensor& grad, const Shape& full_shape, size_t axis,
                     int64_t start) {
  // Needs the zero fill: only the [start, start+len) band is written.
  Tensor out(full_shape);
  int64_t outer = 1, inner = 1;
  for (size_t d = 0; d < axis; ++d) outer *= full_shape[d];
  for (size_t d = axis + 1; d < full_shape.size(); ++d) inner *= full_shape[d];
  const int64_t len = grad.dim(axis);
  const int64_t out_row = full_shape[axis] * inner;
  const int64_t g_row = len * inner;
  const float* pg = grad.data();
  float* po = out.mutable_data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(po + o * out_row + start * inner, pg + o * g_row,
                sizeof(float) * static_cast<size_t>(g_row));
  }
  return out;
}

Tensor SoftmaxLastDim(const Tensor& t) {
  IMDIFF_CHECK_GE(t.ndim(), 1u);
  const int64_t last = t.dim(t.ndim() - 1);
  const int64_t rows = t.numel() / last;
  Tensor out = Tensor::Uninitialized(t.shape());
  const float* pin = t.data();
  float* pout = out.mutable_data();
  // Fused max / exp+sum / scale passes on the vector kernels; row-local, so
  // results are independent of the row partition and of where a row sits in
  // the batch.
  ParallelForRange(ComputePool(), static_cast<size_t>(rows), RowGrain(8 * last),
                   [&](size_t begin, size_t end) {
                     for (int64_t r = static_cast<int64_t>(begin);
                          r < static_cast<int64_t>(end); ++r) {
                       const float* row = pin + r * last;
                       float* orow = pout + r * last;
                       const float mx = simd::MaxReduce(row, last);
                       const float sum = simd::ExpSumInto(orow, row, mx, last);
                       simd::ScaleInPlace(orow, 1.0f / sum, last);
                     }
                   });
  return out;
}

Tensor ReduceSumAxis(const Tensor& t, size_t axis, bool keepdim) {
  IMDIFF_CHECK_LT(axis, t.ndim());
  int64_t outer = 1, inner = 1;
  for (size_t d = 0; d < axis; ++d) outer *= t.dim(d);
  for (size_t d = axis + 1; d < t.ndim(); ++d) inner *= t.dim(d);
  const int64_t reduce = t.dim(axis);
  Shape out_shape = t.shape();
  if (keepdim) {
    out_shape[axis] = 1;
  } else {
    out_shape.erase(out_shape.begin() + static_cast<int64_t>(axis));
    if (out_shape.empty()) out_shape = {1};
  }
  // Accumulates into the zero fill; element order matches the scalar original
  // (vector adds are lane-independent), so results are unchanged.
  Tensor out(out_shape);
  const float* pin = t.data();
  float* pout = out.mutable_data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t r = 0; r < reduce; ++r) {
      const float* src = pin + (o * reduce + r) * inner;
      float* dst = pout + o * inner;
      simd::AddInPlace(dst, src, inner);
    }
  }
  return out;
}

double SumAll(const Tensor& t) {
  double acc = 0.0;
  const float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) acc += p[i];
  return acc;
}

double MeanAll(const Tensor& t) {
  IMDIFF_CHECK_GT(t.numel(), 0);
  return SumAll(t) / static_cast<double>(t.numel());
}

Tensor Conv1d(const Tensor& x, const Tensor& w, const Tensor& bias, int pad) {
  IMDIFF_CHECK_EQ(x.ndim(), 3u);
  IMDIFF_CHECK_EQ(w.ndim(), 3u);
  const int64_t batch = x.dim(0), cin = x.dim(1), length = x.dim(2);
  const int64_t cout = w.dim(0), kernel = w.dim(2);
  IMDIFF_CHECK_EQ(w.dim(1), cin);
  const int64_t lout = length + 2 * pad - kernel + 1;
  IMDIFF_CHECK_GT(lout, 0);
  Tensor y = Tensor::Uninitialized({batch, cout, lout});
  const float* px = x.data();
  const float* pw = w.data();
  float* py = y.mutable_data();
  const bool has_bias = bias.numel() > 0;
  if (has_bias) IMDIFF_CHECK_EQ(bias.numel(), cout);
  const float* pb = has_bias ? bias.data() : nullptr;
  // Each batch element writes its own [cout, lout] output block, so the batch
  // loop parallelizes with bitwise-identical results for any thread count.
  ParallelFor(
      ComputePool(), static_cast<size_t>(batch),
      [&](size_t idx) {
        const int64_t b = static_cast<int64_t>(idx);
        for (int64_t co = 0; co < cout; ++co) {
          float* yrow = py + (b * cout + co) * lout;
          if (has_bias) {
            const float bv = pb[co];
            for (int64_t l = 0; l < lout; ++l) yrow[l] = bv;
          } else {
            std::memset(yrow, 0, sizeof(float) * static_cast<size_t>(lout));
          }
          for (int64_t ci = 0; ci < cin; ++ci) {
            const float* xrow = px + (b * cin + ci) * length;
            const float* wrow = pw + (co * cin + ci) * kernel;
            for (int64_t kk = 0; kk < kernel; ++kk) {
              const float wv = wrow[kk];
              if (wv == 0.0f) continue;
              const int64_t in_off = kk - pad;
              const int64_t l_lo = std::max<int64_t>(0, -in_off);
              const int64_t l_hi = std::min<int64_t>(lout, length - in_off);
              simd::Axpy(wv, xrow + l_lo + in_off, yrow + l_lo, l_hi - l_lo);
            }
          }
        }
      },
      RowGrain(2 * cout * cin * kernel * lout));
  return y;
}

void Conv1dBackward(const Tensor& x, const Tensor& w, int pad,
                    const Tensor& grad_out, Tensor* grad_x, Tensor* grad_w,
                    Tensor* grad_bias) {
  const int64_t batch = x.dim(0), cin = x.dim(1), length = x.dim(2);
  const int64_t cout = w.dim(0), kernel = w.dim(2);
  const int64_t lout = grad_out.dim(2);
  const float* px = x.data();
  const float* pw = w.data();
  const float* pg = grad_out.data();
  // Gradient buffers keep the zeroing constructor: they are scatter-accumulated.
  if (grad_bias != nullptr) {
    *grad_bias = Tensor({cout});
    float* pb = grad_bias->mutable_data();
    for (int64_t b = 0; b < batch; ++b)
      for (int64_t co = 0; co < cout; ++co) {
        const float* grow = pg + (b * cout + co) * lout;
        pb[co] += simd::Sum(grow, lout);
      }
  }
  if (grad_w != nullptr) {
    *grad_w = Tensor(w.shape());
    float* pgw = grad_w->mutable_data();
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t co = 0; co < cout; ++co) {
        const float* grow = pg + (b * cout + co) * lout;
        for (int64_t ci = 0; ci < cin; ++ci) {
          const float* xrow = px + (b * cin + ci) * length;
          float* wrow = pgw + (co * cin + ci) * kernel;
          for (int64_t kk = 0; kk < kernel; ++kk) {
            const int64_t in_off = kk - pad;
            const int64_t l_lo = std::max<int64_t>(0, -in_off);
            const int64_t l_hi = std::min<int64_t>(lout, length - in_off);
            wrow[kk] +=
                simd::Dot(grow + l_lo, xrow + l_lo + in_off, l_hi - l_lo);
          }
        }
      }
    }
  }
  if (grad_x != nullptr) {
    *grad_x = Tensor(x.shape());
    float* pgx = grad_x->mutable_data();
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t co = 0; co < cout; ++co) {
        const float* grow = pg + (b * cout + co) * lout;
        for (int64_t ci = 0; ci < cin; ++ci) {
          float* xrow = pgx + (b * cin + ci) * length;
          const float* wrow = pw + (co * cin + ci) * kernel;
          for (int64_t kk = 0; kk < kernel; ++kk) {
            const float wv = wrow[kk];
            if (wv == 0.0f) continue;
            const int64_t in_off = kk - pad;
            const int64_t l_lo = std::max<int64_t>(0, -in_off);
            const int64_t l_hi = std::min<int64_t>(lout, length - in_off);
            simd::Axpy(wv, grow + l_lo, xrow + l_lo + in_off, l_hi - l_lo);
          }
        }
      }
    }
  }
}

}  // namespace imdiff
