// Raw (non-differentiable) tensor kernels.
//
// These functions implement the numeric primitives used by the autograd layer
// in src/nn. Broadcasting follows NumPy rules: shapes align from the trailing
// dimension, and each aligned pair must be equal or contain a 1.

#ifndef IMDIFF_TENSOR_TENSOR_OPS_H_
#define IMDIFF_TENSOR_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace imdiff {

// ---- Matrix products ------------------------------------------------------

// 2D product: a [m,k] x b [k,n] -> [m,n]. transpose_a / transpose_b treat the
// input as transposed (shapes given pre-transpose).
Tensor MatMul(const Tensor& a, const Tensor& b, bool transpose_a = false,
              bool transpose_b = false);

// Batched 3D product: a [B,m,k] x b [B,k,n] -> [B,m,n] with the same
// transposition flags per batch element.
Tensor BatchedMatMul(const Tensor& a, const Tensor& b, bool transpose_a = false,
                     bool transpose_b = false);

// ---- Broadcasting element-wise ops -----------------------------------------

// Shape of a op b under NumPy broadcasting; aborts if incompatible.
Shape BroadcastShape(const Shape& a, const Shape& b);

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// Reduces `t` by summation down to `target` (inverse of broadcasting);
// used when propagating gradients through broadcast ops.
Tensor ReduceToShape(const Tensor& t, const Shape& target);

// ---- Scalar / unary ---------------------------------------------------------

Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);
// Applies `f` element-wise.
Tensor Map(const Tensor& a, const std::function<float(float)>& f);

// ---- Structural -------------------------------------------------------------

// Permutes axes: out[idx[perm]] = in[idx]. perm is a permutation of
// [0, ndim).
Tensor Permute(const Tensor& t, const std::vector<size_t>& perm);

// Concatenates along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, size_t axis);

// Extracts t[..., start:start+len, ...] along `axis`.
Tensor Slice(const Tensor& t, size_t axis, int64_t start, int64_t len);

// Scatter-adds `grad` (a slice-shaped tensor) back into a zero tensor of shape
// `full_shape` at [start, start+len) along `axis`. Used by Slice backward.
Tensor SliceBackward(const Tensor& grad, const Shape& full_shape, size_t axis,
                     int64_t start);

// ---- Fused NN kernels --------------------------------------------------------
//
// Vectorized forward/backward primitives for the transformer blocks in
// src/nn (attention.cc / layers.cc route here through the autograd ops).
// All run the SIMD layer in tensor/simd.h with its scalar fallback.

// tanh-approximated GELU, elementwise.
Tensor GeluForward(const Tensor& x);
// grad * gelu'(x), elementwise.
Tensor GeluBackward(const Tensor& x, const Tensor& grad);
// x * sigmoid(x), elementwise.
Tensor SiluForward(const Tensor& x);
// grad * silu'(x), elementwise.
Tensor SiluBackward(const Tensor& x, const Tensor& grad);

// Fused LayerNorm forward over the last dimension. Writes the normalized
// output into *y, the pre-affine normalized rows into *xhat (saved for the
// backward pass), and the per-row 1/std into *inv_std (shape {rows}). Every
// output element is written.
void LayerNormForward(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                      float eps, Tensor* y, Tensor* xhat, Tensor* inv_std);

// ---- Reductions / softmax ----------------------------------------------------

// Softmax along the last dimension.
Tensor SoftmaxLastDim(const Tensor& t);

// Sum over one axis. keepdim keeps a 1-sized axis in place.
Tensor ReduceSumAxis(const Tensor& t, size_t axis, bool keepdim);

double SumAll(const Tensor& t);
double MeanAll(const Tensor& t);

// ---- Convolution --------------------------------------------------------------

// 1D convolution, stride 1, zero padding `pad` on both sides:
//   x [B, Cin, L], w [Cout, Cin, K], bias [Cout] (may be empty) -> [B, Cout, Lout]
// with Lout = L + 2*pad - K + 1.
Tensor Conv1d(const Tensor& x, const Tensor& w, const Tensor& bias, int pad);

// Gradients of Conv1d. Any output pointer may be null to skip it.
void Conv1dBackward(const Tensor& x, const Tensor& w, int pad,
                    const Tensor& grad_out, Tensor* grad_x, Tensor* grad_w,
                    Tensor* grad_bias);

}  // namespace imdiff

#endif  // IMDIFF_TENSOR_TENSOR_OPS_H_
