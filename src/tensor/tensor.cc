#include "tensor/tensor.h"

#include <sstream>

#ifdef __GLIBC__
#include <malloc.h>
#endif

namespace imdiff {
namespace {

// Oversize tensors (above the arena's largest bucket) still reach malloc.
// With glibc's default 128 KiB mmap threshold each of those becomes an
// mmap/munmap pair (kernel page zeroing dominates). Raising the threshold
// keeps the chunks on the heap for reuse.
struct MallocTuning {
  MallocTuning() {
#ifdef __GLIBC__
    mallopt(M_MMAP_THRESHOLD, 512 * 1024 * 1024);
    mallopt(M_TRIM_THRESHOLD, 512 * 1024 * 1024);
#endif
  }
};
const MallocTuning kMallocTuning;

}  // namespace
}  // namespace imdiff

namespace imdiff {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    IMDIFF_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Tensor Tensor::Full(const Shape& shape, float value) {
  Tensor t = Uninitialized(shape);
  float* p = t.mutable_data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) p[i] = value;
  return t;
}

Tensor Tensor::Randn(const Shape& shape, Rng& rng, float stddev) {
  Tensor t = Uninitialized(shape);
  float* p = t.mutable_data();
  const int64_t n = t.numel();
  rng.FillNormal(p, static_cast<size_t>(n));
  if (stddev != 1.0f) {
    for (int64_t i = 0; i < n; ++i) p[i] *= stddev;
  }
  return t;
}

Tensor Tensor::Rand(const Shape& shape, Rng& rng, float lo, float hi) {
  Tensor t = Uninitialized(shape);
  float* p = t.mutable_data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Reshape(Shape new_shape) const {
  int64_t known = 1;
  int infer = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      IMDIFF_CHECK_EQ(infer, -1) << "at most one -1 dimension";
      infer = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer >= 0) {
    IMDIFF_CHECK_GT(known, 0);
    IMDIFF_CHECK_EQ(numel() % known, 0)
        << "cannot infer dim for" << ShapeToString(new_shape);
    new_shape[static_cast<size_t>(infer)] = numel() / known;
  }
  IMDIFF_CHECK_EQ(NumElements(new_shape), numel())
      << ShapeToString(shape_) << "->" << ShapeToString(new_shape);
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_) << " {";
  int64_t n = std::min<int64_t>(numel(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << flat(i);
  }
  if (n < numel()) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace imdiff
