// Scoring precision levels (DESIGN.md §17).
//
// Precision is the second axis of the serving degradation ladder: before the
// deadline chooser truncates denoising steps it can drop the denoiser's
// weight GEMMs from fp32 to bf16 and then to per-channel int8 (kernels in
// tensor/quant.h). A precision level names a complete numeric contract —
// scores are a pure function of (content, seed, model, degrade level,
// precision), and two runs at the same precision are bitwise identical.
//
// Two override mechanisms mirror the IMDIFF_FORCE_SCALAR pattern:
//  - IMDIFF_PRECISION={fp32,bf16,int8} in the environment (read once,
//    cached) forces every seeded scoring call to that precision, which is
//    how the CI matrix runs the whole tier-1 suite quantized.
//  - SetForcePrecision()/ClearForcePrecision() from tests, winning over the
//    environment.
// Both are consumed only at the scoring entry points (ScoreWindowBatch /
// RunSeeded); the training path never observes them, because the quantized
// forward is inference-only (it produces constants, not autograd nodes).
//
// ScopedPrecision is the hand-off into the legacy layer stack: the scoring
// path sets it around a chunk and nn::Linear::Forward consults
// ActivePrecision() to pick the quantized GEMM. It is thread-local, and each
// scoring chunk runs its model forwards on a single pool thread, so a guard
// in the chunk body covers every layer the chunk executes.

#ifndef IMDIFF_TENSOR_PRECISION_H_
#define IMDIFF_TENSOR_PRECISION_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace imdiff {

enum class Precision : uint8_t { kF32 = 0, kBf16 = 1, kInt8 = 2 };

inline constexpr int kNumPrecisions = 3;

inline const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8:
      return "int8";
    default:
      return "fp32";
  }
}

inline bool ParsePrecision(const char* s, Precision* out) {
  if (s == nullptr) return false;
  if (std::strcmp(s, "fp32") == 0 || std::strcmp(s, "f32") == 0) {
    *out = Precision::kF32;
    return true;
  }
  if (std::strcmp(s, "bf16") == 0) {
    *out = Precision::kBf16;
    return true;
  }
  if (std::strcmp(s, "int8") == 0) {
    *out = Precision::kInt8;
    return true;
  }
  return false;
}

namespace detail {
// -2: environment not consulted yet; -1: no override; >= 0: forced value.
inline std::atomic<int>& ForcePrecisionFlag() {
  static std::atomic<int> flag{-2};
  return flag;
}
}  // namespace detail

// True (with *out set) when IMDIFF_PRECISION or SetForcePrecision forces a
// precision for scoring calls.
inline bool ForcedPrecision(Precision* out) {
  int v = detail::ForcePrecisionFlag().load(std::memory_order_relaxed);
  if (v == -2) {
    Precision p;
    v = ParsePrecision(std::getenv("IMDIFF_PRECISION"), &p)
            ? static_cast<int>(p)
            : -1;
    detail::ForcePrecisionFlag().store(v, std::memory_order_relaxed);
  }
  if (v < 0) return false;
  *out = static_cast<Precision>(v);
  return true;
}

// Runtime override for tests; wins over the environment.
inline void SetForcePrecision(Precision p) {
  detail::ForcePrecisionFlag().store(static_cast<int>(p),
                                     std::memory_order_relaxed);
}
inline void ClearForcePrecision() {
  detail::ForcePrecisionFlag().store(-1, std::memory_order_relaxed);
}

// The precision a scoring call should actually run at: the forced override
// when present, else the caller's request.
inline Precision ResolvePrecision(Precision requested) {
  Precision forced;
  return ForcedPrecision(&forced) ? forced : requested;
}

// RAII guard removing any precision override (environment or
// SetForcePrecision) for the enclosing scope and restoring it on exit. Tests
// that deliberately compare precisions against each other need every call's
// requested precision honored — under the CI matrix's IMDIFF_PRECISION legs
// their fp32 baseline would otherwise silently resolve to the forced rung.
class ScopedPrecisionOverrideClear {
 public:
  ScopedPrecisionOverrideClear() : had_(ForcedPrecision(&prev_)) {
    ClearForcePrecision();
  }
  ~ScopedPrecisionOverrideClear() {
    if (had_) {
      SetForcePrecision(prev_);
    } else {
      ClearForcePrecision();
    }
  }
  ScopedPrecisionOverrideClear(const ScopedPrecisionOverrideClear&) = delete;
  ScopedPrecisionOverrideClear& operator=(const ScopedPrecisionOverrideClear&) =
      delete;

 private:
  Precision prev_ = Precision::kF32;
  bool had_;
};

namespace detail {
inline thread_local Precision g_active_precision = Precision::kF32;
}  // namespace detail

// Precision the current thread's layer-stack forwards should run at.
inline Precision ActivePrecision() { return detail::g_active_precision; }

// RAII guard setting ActivePrecision() for the enclosing scope.
class ScopedPrecision {
 public:
  explicit ScopedPrecision(Precision p) : prev_(detail::g_active_precision) {
    detail::g_active_precision = p;
  }
  ~ScopedPrecision() { detail::g_active_precision = prev_; }
  ScopedPrecision(const ScopedPrecision&) = delete;
  ScopedPrecision& operator=(const ScopedPrecision&) = delete;

 private:
  Precision prev_;
};

}  // namespace imdiff

#endif  // IMDIFF_TENSOR_PRECISION_H_
