// Portable SIMD layer for the float32 kernels in src/tensor and src/nn.
//
// The instruction set is selected at compile time: AVX-512F when the compiler
// targets it, else AVX2+FMA (e.g. -march=native on x86), NEON on aarch64, and
// a plain scalar path otherwise. Every kernel also carries a runtime scalar fallback,
// reachable two ways:
//   - IMDIFF_FORCE_SCALAR=1 in the environment (read once, cached), or
//   - simd::SetForceScalar(true) from tests.
// The fallback exists so vectorized results can always be diffed against a
// reference on the same binary (see tests/simd_test.cc) and so the generic
// (-march-less) build path never rots.
//
// Determinism contract (DESIGN.md §12): a kernel's result for one element
// must depend only on that element's inputs, never on where the element lands
// relative to a vector-lane boundary. Elementwise kernels therefore process
// remainder tails with a scalar replica of the *same* arithmetic the vector
// lanes perform (same polynomial, same fused-multiply-add shape), which keeps
// serving-path scores bitwise independent of batch composition. Transcendental
// kernels (exp/tanh-family) use our own polynomial in both the vector body and
// the scalar tail, not libm, for the same reason. Reductions (Sum, Dot,
// MaxReduce) use a fixed lane-strided order that depends only on the length.
//
// FMA and the changed reduction orders mean results may drift from the old
// scalar kernels within float tolerance; bitwise reproducibility is only
// promised within one build configuration (see the numerics policy in
// DESIGN.md §12).

#ifndef IMDIFF_TENSOR_SIMD_H_
#define IMDIFF_TENSOR_SIMD_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__AVX512F__)
#define IMDIFF_SIMD_AVX512 1
// GCC 12 flags the undefined-passthrough arg inside the no-mask avx512
// intrinsics (bug 105593); the pragma scopes the suppression to that header.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#pragma GCC diagnostic pop
#else
#include <immintrin.h>
#endif
#elif defined(__AVX2__) && defined(__FMA__)
#define IMDIFF_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON)
#define IMDIFF_SIMD_NEON 1
#include <arm_neon.h>
#endif

#if defined(IMDIFF_SIMD_AVX512) || defined(IMDIFF_SIMD_AVX2) || \
    defined(IMDIFF_SIMD_NEON)
#define IMDIFF_SIMD_ANY 1
#endif

namespace imdiff {
namespace simd {

// ---- Configuration ---------------------------------------------------------

#if defined(IMDIFF_SIMD_AVX512)
inline constexpr int kVectorWidth = 16;
#elif defined(IMDIFF_SIMD_AVX2)
inline constexpr int kVectorWidth = 8;
#elif defined(IMDIFF_SIMD_NEON)
inline constexpr int kVectorWidth = 4;
#else
inline constexpr int kVectorWidth = 1;
#endif

inline const char* IsaName() {
#if defined(IMDIFF_SIMD_AVX512)
  return "avx512f";
#elif defined(IMDIFF_SIMD_AVX2)
  return "avx2-fma";
#elif defined(IMDIFF_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

namespace detail {
inline std::atomic<int>& ForceScalarFlag() {
  static std::atomic<int> flag{-1};  // -1: environment not consulted yet
  return flag;
}
}  // namespace detail

// True when the scalar fallback is active, either via the IMDIFF_FORCE_SCALAR
// environment variable (read once) or SetForceScalar.
inline bool ForceScalar() {
  int v = detail::ForceScalarFlag().load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("IMDIFF_FORCE_SCALAR");
    v = (e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0) ? 1 : 0;
    detail::ForceScalarFlag().store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

// Runtime override for tests and benchmarks; wins over the environment.
inline void SetForceScalar(bool on) {
  detail::ForceScalarFlag().store(on ? 1 : 0, std::memory_order_relaxed);
}

// True when a vectorized body should run (ISA compiled in and not overridden).
inline bool Enabled() {
#if defined(IMDIFF_SIMD_ANY)
  return !ForceScalar();
#else
  return false;
#endif
}

// ---- Scalar building blocks -------------------------------------------------
//
// Madd is the scalar replica of a vector fused-multiply-add lane: on FMA
// hardware it compiles to a scalar fma instruction, so remainder tails produce
// bit-identical values to the vector body. Without FMA there is no vector
// body, so the unfused form is consistent by construction.

inline float Madd(float a, float b, float c) {
#if defined(__FMA__) || defined(__AVX512F__) || defined(__ARM_FEATURE_FMA) || \
    defined(IMDIFF_SIMD_NEON)
  return __builtin_fmaf(a, b, c);
#else
  return a * b + c;
#endif
}

// Cephes-style expf: identical constants and operation shape in the scalar and
// vector implementations, so exp(x) is a pure function of x regardless of
// which body computed it. Max relative error ~2e-7 over the clamped range.
namespace detail {
inline constexpr float kExpHi = 88.3762626647950f;
inline constexpr float kExpLo = -87.3365478515625f;
inline constexpr float kLog2e = 1.44269504088896341f;
inline constexpr float kExpC1 = 0.693359375f;
inline constexpr float kExpC2 = -2.12194440e-4f;
inline constexpr float kExpP0 = 1.9875691500e-4f;
inline constexpr float kExpP1 = 1.3981999507e-3f;
inline constexpr float kExpP2 = 8.3334519073e-3f;
inline constexpr float kExpP3 = 4.1665795894e-2f;
inline constexpr float kExpP4 = 1.6666665459e-1f;
inline constexpr float kExpP5 = 5.0000001201e-1f;
}  // namespace detail

inline float ExpScalar(float x) {
  using namespace detail;
  x = x > kExpHi ? kExpHi : x;
  x = x < kExpLo ? kExpLo : x;
  const float fx = std::floor(Madd(x, kLog2e, 0.5f));
  x = Madd(fx, -kExpC1, x);
  x = Madd(fx, -kExpC2, x);
  float y = kExpP0;
  y = Madd(y, x, kExpP1);
  y = Madd(y, x, kExpP2);
  y = Madd(y, x, kExpP3);
  y = Madd(y, x, kExpP4);
  y = Madd(y, x, kExpP5);
  y = Madd(y, x * x, x + 1.0f);
  // y * 2^fx via exponent-bit arithmetic (fx is integral in [-126, 127]).
  const int32_t e = (static_cast<int32_t>(fx) + 127) << 23;
  float pow2;
  std::memcpy(&pow2, &e, sizeof(pow2));
  return y * pow2;
}

// tanh via the exp kernel: 1 - 2 / (exp(2x) + 1). Saturates cleanly because
// ExpScalar clamps its argument.
inline float TanhScalar(float x) {
  return 1.0f - 2.0f / (ExpScalar(2.0f * x) + 1.0f);
}

inline float SigmoidScalar(float x) {
  return 1.0f / (1.0f + ExpScalar(-x));
}

inline constexpr float kGeluCoef = 0.7978845608028654f;  // sqrt(2/pi)
inline constexpr float kGeluCubic = 0.044715f;

inline float GeluScalar(float x) {
  const float inner = kGeluCoef * Madd(kGeluCubic * x * x, x, x);
  return 0.5f * x * (1.0f + TanhScalar(inner));
}

inline float GeluGradScalar(float x) {
  const float inner = kGeluCoef * Madd(kGeluCubic * x * x, x, x);
  const float t = TanhScalar(inner);
  const float dinner = kGeluCoef * Madd(3.0f * kGeluCubic * x, x, 1.0f);
  return Madd(0.5f * x * (1.0f - t * t), dinner, 0.5f * (1.0f + t));
}

inline float SiluScalar(float x) { return x * SigmoidScalar(x); }

inline float SiluGradScalar(float x) {
  const float s = SigmoidScalar(x);
  return s * Madd(x, 1.0f - s, 1.0f);
}

// ---- Vector type ------------------------------------------------------------

#if defined(IMDIFF_SIMD_AVX512)

using VecF = __m512;
inline VecF VLoad(const float* p) { return _mm512_loadu_ps(p); }
inline void VStore(float* p, VecF v) { _mm512_storeu_ps(p, v); }
inline VecF VSet1(float s) { return _mm512_set1_ps(s); }
inline VecF VZero() { return _mm512_setzero_ps(); }
inline VecF VAdd(VecF a, VecF b) { return _mm512_add_ps(a, b); }
inline VecF VSub(VecF a, VecF b) { return _mm512_sub_ps(a, b); }
inline VecF VMul(VecF a, VecF b) { return _mm512_mul_ps(a, b); }
inline VecF VDiv(VecF a, VecF b) { return _mm512_div_ps(a, b); }
inline VecF VMax(VecF a, VecF b) { return _mm512_max_ps(a, b); }
inline VecF VMin(VecF a, VecF b) { return _mm512_min_ps(a, b); }
// a*b + c, single rounding.
inline VecF VFma(VecF a, VecF b, VecF c) { return _mm512_fmadd_ps(a, b, c); }
inline VecF VFloor(VecF a) {
  return _mm512_roundscale_ps(a, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
}

// extractf64x4 + cast instead of extractf32x8 keeps this AVX512F-only (no DQ).
inline __m256 VLow256(VecF v) { return _mm512_castps512_ps256(v); }
inline __m256 VHigh256(VecF v) {
  return _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(v), 1));
}

inline float VHsum(VecF v) {
  const __m256 h = _mm256_add_ps(VLow256(v), VHigh256(v));
  const __m128 lo = _mm256_castps256_ps128(h);
  const __m128 hi = _mm256_extractf128_ps(h, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

inline float VHmax(VecF v) {
  const __m256 h = _mm256_max_ps(VLow256(v), VHigh256(v));
  const __m128 lo = _mm256_castps256_ps128(h);
  const __m128 hi = _mm256_extractf128_ps(h, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

// Vector exp: same constants/shape as ExpScalar.
inline VecF VExp(VecF x) {
  using namespace detail;
  x = VMin(x, VSet1(kExpHi));
  x = VMax(x, VSet1(kExpLo));
  const VecF fx = VFloor(VFma(x, VSet1(kLog2e), VSet1(0.5f)));
  x = VFma(fx, VSet1(-kExpC1), x);
  x = VFma(fx, VSet1(-kExpC2), x);
  VecF y = VSet1(kExpP0);
  y = VFma(y, x, VSet1(kExpP1));
  y = VFma(y, x, VSet1(kExpP2));
  y = VFma(y, x, VSet1(kExpP3));
  y = VFma(y, x, VSet1(kExpP4));
  y = VFma(y, x, VSet1(kExpP5));
  y = VFma(y, VMul(x, x), VAdd(x, VSet1(1.0f)));
  const __m512i e =
      _mm512_slli_epi32(_mm512_add_epi32(_mm512_cvtps_epi32(fx),
                                         _mm512_set1_epi32(127)),
                        23);
  return VMul(y, _mm512_castsi512_ps(e));
}

#elif defined(IMDIFF_SIMD_AVX2)

using VecF = __m256;
inline VecF VLoad(const float* p) { return _mm256_loadu_ps(p); }
inline void VStore(float* p, VecF v) { _mm256_storeu_ps(p, v); }
inline VecF VSet1(float s) { return _mm256_set1_ps(s); }
inline VecF VZero() { return _mm256_setzero_ps(); }
inline VecF VAdd(VecF a, VecF b) { return _mm256_add_ps(a, b); }
inline VecF VSub(VecF a, VecF b) { return _mm256_sub_ps(a, b); }
inline VecF VMul(VecF a, VecF b) { return _mm256_mul_ps(a, b); }
inline VecF VDiv(VecF a, VecF b) { return _mm256_div_ps(a, b); }
inline VecF VMax(VecF a, VecF b) { return _mm256_max_ps(a, b); }
inline VecF VMin(VecF a, VecF b) { return _mm256_min_ps(a, b); }
// a*b + c, single rounding.
inline VecF VFma(VecF a, VecF b, VecF c) { return _mm256_fmadd_ps(a, b, c); }
inline VecF VFloor(VecF a) { return _mm256_floor_ps(a); }

inline float VHsum(VecF v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

inline float VHmax(VecF v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

// Vector exp: same constants/shape as ExpScalar.
inline VecF VExp(VecF x) {
  using namespace detail;
  x = VMin(x, VSet1(kExpHi));
  x = VMax(x, VSet1(kExpLo));
  const VecF fx = VFloor(VFma(x, VSet1(kLog2e), VSet1(0.5f)));
  x = VFma(fx, VSet1(-kExpC1), x);
  x = VFma(fx, VSet1(-kExpC2), x);
  VecF y = VSet1(kExpP0);
  y = VFma(y, x, VSet1(kExpP1));
  y = VFma(y, x, VSet1(kExpP2));
  y = VFma(y, x, VSet1(kExpP3));
  y = VFma(y, x, VSet1(kExpP4));
  y = VFma(y, x, VSet1(kExpP5));
  y = VFma(y, VMul(x, x), VAdd(x, VSet1(1.0f)));
  const __m256i e =
      _mm256_slli_epi32(_mm256_add_epi32(_mm256_cvtps_epi32(fx),
                                         _mm256_set1_epi32(127)),
                        23);
  return VMul(y, _mm256_castsi256_ps(e));
}

#elif defined(IMDIFF_SIMD_NEON)

using VecF = float32x4_t;
inline VecF VLoad(const float* p) { return vld1q_f32(p); }
inline void VStore(float* p, VecF v) { vst1q_f32(p, v); }
inline VecF VSet1(float s) { return vdupq_n_f32(s); }
inline VecF VZero() { return vdupq_n_f32(0.0f); }
inline VecF VAdd(VecF a, VecF b) { return vaddq_f32(a, b); }
inline VecF VSub(VecF a, VecF b) { return vsubq_f32(a, b); }
inline VecF VMul(VecF a, VecF b) { return vmulq_f32(a, b); }
inline VecF VDiv(VecF a, VecF b) { return vdivq_f32(a, b); }
inline VecF VMax(VecF a, VecF b) { return vmaxq_f32(a, b); }
inline VecF VMin(VecF a, VecF b) { return vminq_f32(a, b); }
inline VecF VFma(VecF a, VecF b, VecF c) { return vfmaq_f32(c, a, b); }
inline VecF VFloor(VecF a) { return vrndmq_f32(a); }
inline float VHsum(VecF v) { return vaddvq_f32(v); }
inline float VHmax(VecF v) { return vmaxvq_f32(v); }

inline VecF VExp(VecF x) {
  using namespace detail;
  x = VMin(x, VSet1(kExpHi));
  x = VMax(x, VSet1(kExpLo));
  const VecF fx = VFloor(VFma(x, VSet1(kLog2e), VSet1(0.5f)));
  x = VFma(fx, VSet1(-kExpC1), x);
  x = VFma(fx, VSet1(-kExpC2), x);
  VecF y = VSet1(kExpP0);
  y = VFma(y, x, VSet1(kExpP1));
  y = VFma(y, x, VSet1(kExpP2));
  y = VFma(y, x, VSet1(kExpP3));
  y = VFma(y, x, VSet1(kExpP4));
  y = VFma(y, x, VSet1(kExpP5));
  y = VFma(y, VMul(x, x), VAdd(x, VSet1(1.0f)));
  const int32x4_t e =
      vshlq_n_s32(vaddq_s32(vcvtq_s32_f32(fx), vdupq_n_s32(127)), 23);
  return VMul(y, vreinterpretq_f32_s32(e));
}

#endif  // vector type

// ---- Array kernels ----------------------------------------------------------
//
// Each kernel dispatches once per call on Enabled(); within a call the vector
// body covers the largest multiple of the lane width and the scalar tail uses
// lane-identical arithmetic.

// sum_i a[i] * b[i]. Lane-strided partial sums; order depends only on n.
inline float Dot(const float* a, const float* b, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    VecF acc = VZero();
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      acc = VFma(VLoad(a + i), VLoad(b + i), acc);
    }
    float s = VHsum(acc);
    for (; i < n; ++i) s = Madd(a[i], b[i], s);
    return s;
  }
#endif
  float s = 0.0f;
  for (int64_t i = 0; i < n; ++i) s = Madd(a[i], b[i], s);
  return s;
}

// y[i] += alpha * x[i].
inline void Axpy(float alpha, const float* x, float* y, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    const VecF va = VSet1(alpha);
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(y + i, VFma(va, VLoad(x + i), VLoad(y + i)));
    }
    for (; i < n; ++i) y[i] = Madd(alpha, x[i], y[i]);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) y[i] = Madd(alpha, x[i], y[i]);
}

// y[i] += x[i].
inline void AddInPlace(float* y, const float* x, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(y + i, VAdd(VLoad(y + i), VLoad(x + i)));
    }
    for (; i < n; ++i) y[i] += x[i];
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

inline void AddInto(float* out, const float* a, const float* b, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VAdd(VLoad(a + i), VLoad(b + i)));
    }
    for (; i < n; ++i) out[i] = a[i] + b[i];
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

inline void SubInto(float* out, const float* a, const float* b, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VSub(VLoad(a + i), VLoad(b + i)));
    }
    for (; i < n; ++i) out[i] = a[i] - b[i];
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

inline void MulInto(float* out, const float* a, const float* b, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VMul(VLoad(a + i), VLoad(b + i)));
    }
    for (; i < n; ++i) out[i] = a[i] * b[i];
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

inline void DivInto(float* out, const float* a, const float* b, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VDiv(VLoad(a + i), VLoad(b + i)));
    }
    for (; i < n; ++i) out[i] = a[i] / b[i];
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] / b[i];
}

// out[i] = a[i] * b[i] + c[i] (single rounding on FMA hardware).
inline void FmaInto(float* out, const float* a, const float* b, const float* c,
                    int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VFma(VLoad(a + i), VLoad(b + i), VLoad(c + i)));
    }
    for (; i < n; ++i) out[i] = Madd(a[i], b[i], c[i]);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = Madd(a[i], b[i], c[i]);
}

inline void ScaleInto(float* out, const float* x, float s, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    const VecF vs = VSet1(s);
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VMul(VLoad(x + i), vs));
    }
    for (; i < n; ++i) out[i] = x[i] * s;
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] * s;
}

inline void ScaleInPlace(float* y, float s, int64_t n) { ScaleInto(y, y, s, n); }

inline void AddScalarInto(float* out, const float* x, float s, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    const VecF vs = VSet1(s);
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VAdd(VLoad(x + i), vs));
    }
    for (; i < n; ++i) out[i] = x[i] + s;
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] + s;
}

// out[i] = (x[i] - mean) * scale — the LayerNorm normalization step.
inline void ScaledDiffInto(float* out, const float* x, float mean, float scale,
                           int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    const VecF vm = VSet1(mean);
    const VecF vs = VSet1(scale);
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VMul(VSub(VLoad(x + i), vm), vs));
    }
    for (; i < n; ++i) out[i] = (x[i] - mean) * scale;
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = (x[i] - mean) * scale;
}

inline float Sum(const float* x, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    VecF acc = VZero();
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      acc = VAdd(acc, VLoad(x + i));
    }
    float s = VHsum(acc);
    for (; i < n; ++i) s += x[i];
    return s;
  }
#endif
  float s = 0.0f;
  for (int64_t i = 0; i < n; ++i) s += x[i];
  return s;
}

// max_i x[i]; n must be >= 1.
inline float MaxReduce(const float* x, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    VecF acc = VLoad(x);
    int64_t i = kVectorWidth;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      acc = VMax(acc, VLoad(x + i));
    }
    float m = VHmax(acc);
    for (; i < n; ++i) m = x[i] > m ? x[i] : m;
    return m;
  }
#endif
  float m = x[0];
  for (int64_t i = 1; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

// sum_i (x[i] - mean)^2 — the LayerNorm variance numerator.
inline float SqDiffSum(const float* x, float mean, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    const VecF vm = VSet1(mean);
    VecF acc = VZero();
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      const VecF d = VSub(VLoad(x + i), vm);
      acc = VFma(d, d, acc);
    }
    float s = VHsum(acc);
    for (; i < n; ++i) {
      const float d = x[i] - mean;
      s = Madd(d, d, s);
    }
    return s;
  }
#endif
  float s = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float d = x[i] - mean;
    s = Madd(d, d, s);
  }
  return s;
}

// Fused softmax numerator: out[i] = exp(x[i] - sub); returns sum_i out[i].
inline float ExpSumInto(float* out, const float* x, float sub, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    const VecF vs = VSet1(sub);
    VecF acc = VZero();
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      const VecF e = VExp(VSub(VLoad(x + i), vs));
      VStore(out + i, e);
      acc = VAdd(acc, e);
    }
    float s = VHsum(acc);
    for (; i < n; ++i) {
      out[i] = ExpScalar(x[i] - sub);
      s += out[i];
    }
    return s;
  }
#endif
  float s = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    out[i] = ExpScalar(x[i] - sub);
    s += out[i];
  }
  return s;
}

inline void ExpInto(float* out, const float* x, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VExp(VLoad(x + i)));
    }
    for (; i < n; ++i) out[i] = ExpScalar(x[i]);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = ExpScalar(x[i]);
}

#if defined(IMDIFF_SIMD_ANY)
// Vector replicas of the tanh/gelu/silu scalar helpers.
inline VecF VTanh(VecF x) {
  const VecF one = VSet1(1.0f);
  const VecF two = VSet1(2.0f);
  return VSub(one, VDiv(two, VAdd(VExp(VMul(two, x)), one)));
}

inline VecF VSigmoid(VecF x) {
  const VecF one = VSet1(1.0f);
  return VDiv(one, VAdd(one, VExp(VSub(VZero(), x))));
}

inline VecF VGelu(VecF x) {
  const VecF inner =
      VMul(VSet1(kGeluCoef), VFma(VMul(VSet1(kGeluCubic), VMul(x, x)), x, x));
  return VMul(VMul(VSet1(0.5f), x), VAdd(VSet1(1.0f), VTanh(inner)));
}

inline VecF VGeluGrad(VecF x) {
  const VecF inner =
      VMul(VSet1(kGeluCoef), VFma(VMul(VSet1(kGeluCubic), VMul(x, x)), x, x));
  const VecF t = VTanh(inner);
  const VecF dinner = VMul(
      VSet1(kGeluCoef), VFma(VMul(VSet1(3.0f * kGeluCubic), x), x, VSet1(1.0f)));
  const VecF sech2 = VSub(VSet1(1.0f), VMul(t, t));
  return VFma(VMul(VMul(VSet1(0.5f), x), sech2), dinner,
              VMul(VSet1(0.5f), VAdd(VSet1(1.0f), t)));
}

inline VecF VSilu(VecF x) { return VMul(x, VSigmoid(x)); }

inline VecF VSiluGrad(VecF x) {
  const VecF s = VSigmoid(x);
  return VMul(s, VFma(x, VSub(VSet1(1.0f), s), VSet1(1.0f)));
}
#endif  // IMDIFF_SIMD_ANY

inline void GeluInto(float* out, const float* x, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VGelu(VLoad(x + i)));
    }
    for (; i < n; ++i) out[i] = GeluScalar(x[i]);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = GeluScalar(x[i]);
}

// out[i] = g[i] * gelu'(x[i]).
inline void GeluGradInto(float* out, const float* x, const float* g,
                         int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VMul(VLoad(g + i), VGeluGrad(VLoad(x + i))));
    }
    for (; i < n; ++i) out[i] = g[i] * GeluGradScalar(x[i]);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = g[i] * GeluGradScalar(x[i]);
}

inline void SiluInto(float* out, const float* x, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VSilu(VLoad(x + i)));
    }
    for (; i < n; ++i) out[i] = SiluScalar(x[i]);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = SiluScalar(x[i]);
}

// out[i] = g[i] * silu'(x[i]).
inline void SiluGradInto(float* out, const float* x, const float* g,
                         int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VMul(VLoad(g + i), VSiluGrad(VLoad(x + i))));
    }
    for (; i < n; ++i) out[i] = g[i] * SiluGradScalar(x[i]);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = g[i] * SiluGradScalar(x[i]);
}

inline void TanhInto(float* out, const float* x, int64_t n) {
#if defined(IMDIFF_SIMD_ANY)
  if (Enabled() && n >= kVectorWidth) {
    int64_t i = 0;
    for (; i + kVectorWidth <= n; i += kVectorWidth) {
      VStore(out + i, VTanh(VLoad(x + i)));
    }
    for (; i < n; ++i) out[i] = TanhScalar(x[i]);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = TanhScalar(x[i]);
}

}  // namespace simd
}  // namespace imdiff

#endif  // IMDIFF_TENSOR_SIMD_H_
