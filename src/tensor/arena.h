// Thread-safe size-bucketed arena for tensor storage.
//
// Every Tensor's backing buffer is acquired from the process-wide arena and
// released back to a per-size-class free list when the last reference drops.
// The reverse-diffusion hot path allocates and frees the same handful of
// intermediate shapes hundreds of times per window, so after the first
// denoising step nearly every acquisition is a free-list hit — no malloc, no
// page zeroing.
//
// Lifetime rules (DESIGN.md §12):
//  - The arena is process-lifetime and append-only in structure: buffers are
//    recycled only after their owning Tensor storage is destroyed, so holding
//    a Tensor anywhere (model registry, serving session stash, window-score
//    cache) is always safe. There is no epoch/reset operation that could
//    invalidate live buffers.
//  - Trim() releases pooled (free-list) memory back to the system; it never
//    touches live buffers.
//  - Buffers are 64-byte aligned and sized up to the bucket boundary, so a
//    recycled buffer is always large enough for any request mapping to its
//    bucket. Contents are NOT zeroed on reuse; Tensor's zeroing constructor
//    clears explicitly and Tensor::Uninitialized skips the clear.
//
// Observability: arena.hits / arena.misses counters and arena.live_bytes /
// arena.pooled_bytes gauges in the global metrics registry (handles cached at
// construction — the hot path never takes the registry lock).
//
// IMDIFF_ARENA=0 in the environment (or set_pooling_enabled(false)) disables
// recycling: every acquisition is a fresh system allocation and every release
// frees, which is the baseline the allocations/op bench rows compare against.

#ifndef IMDIFF_TENSOR_ARENA_H_
#define IMDIFF_TENSOR_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace imdiff {

class Counter;
class FaultPoint;
class FaultRegistry;
class Gauge;

class Arena {
 public:
  // Size classes are powers of two from 2^kMinShift to 2^kMaxShift floats
  // (256 B to 64 MiB); larger requests bypass the free lists entirely.
  static constexpr int kMinShift = 6;
  static constexpr int kMaxShift = 24;
  static constexpr int kNumBuckets = kMaxShift - kMinShift + 1;
  // Pooled (idle free-list) memory above this bound is returned to the
  // system instead of being cached.
  static constexpr int64_t kMaxPooledBytes = int64_t{512} * 1024 * 1024;

  static Arena& Global();

  // 64-byte-aligned buffer with capacity for at least `n` floats; contents
  // are unspecified. Returns nullptr when n == 0.
  float* Acquire(size_t n);

  // Returns a buffer obtained from Acquire(n). Safe from any thread.
  void Release(float* p, size_t n) noexcept;

  struct Stats {
    int64_t hits = 0;          // acquisitions served from a free list
    int64_t misses = 0;        // acquisitions that hit the system allocator
    int64_t live_bytes = 0;    // bytes currently owned by live buffers
    int64_t pooled_bytes = 0;  // bytes parked in free lists
  };
  Stats stats() const;

  // Frees all pooled buffers (live buffers are untouched).
  void Trim();

  // Disables/enables free-list recycling (see header comment).
  void set_pooling_enabled(bool enabled) {
    pooling_.store(enabled, std::memory_order_relaxed);
  }
  bool pooling_enabled() const {
    return pooling_.load(std::memory_order_relaxed);
  }

  // Bucket index for a request of n floats, or -1 for oversize requests.
  static int BucketIndex(size_t n);
  // Capacity in floats of bucket `b`.
  static size_t BucketFloats(int b) { return size_t{1} << (kMinShift + b); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

 private:
  Arena();
  ~Arena() = default;  // process-lifetime; pooled buffers die with the process

  struct Bucket {
    std::mutex mu;
    std::vector<float*> free_list;
  };

  Bucket buckets_[kNumBuckets];
  std::atomic<bool> pooling_{true};

  // Metrics handles (registry-owned, process lifetime).
  Counter* hits_;
  Counter* misses_;
  Counter* fallbacks_;
  Gauge* live_bytes_;
  Gauge* pooled_bytes_;
  // Fault-injection handles, cached like the metrics handles so the hot path
  // never resolves registry entries. When the "arena.alloc" point fires, the
  // acquisition skips the free lists and takes a plain system allocation
  // (bucket capacity, so the buffer recycles safely), counted by
  // arena.fallback — the degradation path for allocator faults.
  FaultRegistry* faults_;
  FaultPoint* fault_alloc_;
};

// RAII scratch buffer for kernel-internal temporaries (e.g. packed GEMM
// panels) that want arena recycling without a Tensor wrapper.
class ArenaBuffer {
 public:
  explicit ArenaBuffer(size_t n) : n_(n), p_(Arena::Global().Acquire(n)) {}
  ~ArenaBuffer() { Arena::Global().Release(p_, n_); }

  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  float* data() { return p_; }
  const float* data() const { return p_; }
  size_t size() const { return n_; }

 private:
  size_t n_;
  float* p_;
};

}  // namespace imdiff

#endif  // IMDIFF_TENSOR_ARENA_H_
