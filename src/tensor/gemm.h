// Exported GEMM kernels for the inference graph executor (src/graph).
//
// These are the exact kernels compiled behind MatMul/BatchedMatMul in
// tensor_ops.cc — not reimplementations. The executor calls them directly so
// captured graphs produce bit-identical floats to the layer stack: a given
// output element's FMA sequence depends only on (m, k, n) and the element's
// inputs, never on row grouping, thread partition, or whether the b operand
// was packed per-call or prepacked at capture (packing is pure data
// movement). What the executor adds is memory control: caller-provided
// scratch and capture-time weight prepacking, so steady-state scoring issues
// zero arena free-list requests.

#ifndef IMDIFF_TENSOR_GEMM_H_
#define IMDIFF_TENSOR_GEMM_H_

#include <cstddef>
#include <cstdint>

#include "tensor/simd.h"

namespace imdiff {
namespace gemm {

// Minimum flops a ParallelForRange chunk should carry before the kernels
// split work across the compute pool; below this, task overhead dominates.
constexpr int64_t kGrainFlops = 16384;

// Rows [begin, end) of a grain computed so that each parallel chunk holds at
// least kGrainFlops worth of per-row work.
inline size_t RowGrain(int64_t flops_per_row) {
  const int64_t f = flops_per_row < 1 ? 1 : flops_per_row;
  const int64_t g = kGrainFlops / f;
  return static_cast<size_t>(g < 1 ? 1 : g);
}

// Grain for flat elementwise kernels (~4 flops per element assumed).
constexpr size_t kElementGrain = 4096;

// Rows of the a operand the vector microkernel processes per call.
constexpr int64_t kMR = 4;

// Scalar reference kernel: rows [row_begin, row_end) of c += a * b with the
// four transpose layouts handled directly. Accumulates — the caller must
// zero exactly the c rows it passes. This is the generic-build and
// IMDIFF_FORCE_SCALAR code path.
void MatMulRowsScalar(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n, bool ta, bool tb,
                      int64_t row_begin, int64_t row_end);

#if defined(IMDIFF_SIMD_ANY)

// Columns per packed b panel: two vector registers wide.
constexpr int64_t kNRVec = 2 * simd::kVectorWidth;

// Floats of scratch one [k, kNRVec] b panel needs.
inline size_t PanelFloats(int64_t k) {
  return static_cast<size_t>(k) * static_cast<size_t>(kNRVec);
}

// Packed vector kernel for rows [row_begin, row_end) of c = a * b, with the
// panel scratch supplied by the caller instead of drawn from the arena:
// `bpack` must hold PanelFloats(k) floats; `apack` must hold
// (row_end - row_begin) * k floats when `ta` is set (may be null otherwise).
// Every element of the covered rows is stored exactly once (c may arrive
// uninitialized). Bitwise identical to the arena-scratch path inside MatMul.
void GemmRowsPackedScratch(const float* a, const float* b, float* c, int64_t m,
                           int64_t k, int64_t n, bool ta, bool tb,
                           int64_t row_begin, int64_t row_end, float* bpack,
                           float* apack);

// Capture-time full pack of a logical [k, n] b operand (tb: stored [n, k])
// into ceil(n / kNRVec) consecutive zero-padded [k, kNRVec] panels —
// PackedBFloats(k, n) floats. Pure data movement: feeding the packed panels
// to GemmRowsPrepacked reproduces the per-panel packing bitwise.
inline size_t PackedBFloats(int64_t k, int64_t n) {
  return static_cast<size_t>((n + kNRVec - 1) / kNRVec) * PanelFloats(k);
}
void PackBFull(const float* b, int64_t k, int64_t n, bool tb, float* packed);

// Rows [row_begin, row_end) of c = a * packed_b with b prepacked by
// PackBFull. `a` must be the non-transposed [m, k] layout (the executor's
// activations always are). Zero scratch, zero packing work per call.
void GemmRowsPrepacked(const float* a, const float* packed_b, float* c,
                       int64_t m, int64_t k, int64_t n, int64_t row_begin,
                       int64_t row_end);

#endif  // IMDIFF_SIMD_ANY

// Full 2D matmul into caller memory with the exact dispatch and compute-pool
// partitioning of MatMul (tensor_ops.cc): packed vector kernel when
// simd::Enabled(), scalar reference otherwise. c may arrive uninitialized.
void MatMulInto(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n, bool ta, bool tb);

}  // namespace gemm
}  // namespace imdiff

#endif  // IMDIFF_TENSOR_GEMM_H_
