#include "baselines/iforest.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"

namespace imdiff {
namespace {

// Average path length of an unsuccessful BST search over n points.
double AveragePathLength(double n) {
  if (n <= 1.0) return 0.0;
  const double h = std::log(n - 1.0) + 0.5772156649015329;  // harmonic approx
  return 2.0 * h - 2.0 * (n - 1.0) / n;
}

}  // namespace

IsolationForest::IsolationForest(const IsolationForestConfig& config)
    : config_(config) {}

std::vector<std::vector<float>> IsolationForest::Featurize(
    const Tensor& series) const {
  const int64_t length = series.dim(0);
  const int64_t k = series.dim(1);
  const int ctx = config_.context;
  std::vector<std::vector<float>> out(static_cast<size_t>(length));
  const float* p = series.data();
  for (int64_t t = 0; t < length; ++t) {
    std::vector<float>& row = out[static_cast<size_t>(t)];
    row.reserve(static_cast<size_t>(k * (1 + ctx)));
    for (int64_t j = 0; j < k; ++j) row.push_back(p[t * k + j]);
    for (int c = 1; c <= ctx; ++c) {
      const int64_t prev = std::max<int64_t>(0, t - c);
      for (int64_t j = 0; j < k; ++j) {
        row.push_back(p[t * k + j] - p[prev * k + j]);
      }
    }
  }
  return out;
}

void IsolationForest::Fit(const Tensor& train) {
  IMDIFF_CHECK_EQ(train.ndim(), 2u);
  const auto data = Featurize(train);
  num_features_ = static_cast<int64_t>(data[0].size());
  const int n = static_cast<int>(data.size());
  const int psi = std::min(config_.subsample, n);
  const int max_depth =
      static_cast<int>(std::ceil(std::log2(std::max(2, psi))));
  c_norm_ = AveragePathLength(static_cast<double>(psi));

  Rng rng(config_.seed);
  trees_.clear();
  trees_.resize(static_cast<size_t>(config_.num_trees));
  std::vector<int> indices(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) indices[static_cast<size_t>(i)] = i;
  for (Tree& tree : trees_) {
    std::shuffle(indices.begin(), indices.end(), rng.engine());
    std::vector<int> sample(indices.begin(), indices.begin() + psi);
    BuildNode(tree, sample, 0, psi, 0, max_depth, data, rng);
  }
}

int IsolationForest::BuildNode(Tree& tree, std::vector<int>& points, int begin,
                               int end, int depth, int max_depth,
                               const std::vector<std::vector<float>>& data,
                               Rng& rng) {
  const int idx = static_cast<int>(tree.nodes.size());
  tree.nodes.push_back(Node{});
  const int count = end - begin;
  if (count <= 1 || depth >= max_depth) {
    tree.nodes[static_cast<size_t>(idx)].size = count;
    return idx;
  }
  // Pick a split feature with spread; give up after a few tries.
  int feature = -1;
  float lo = 0.0f, hi = 0.0f;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int f =
        static_cast<int>(rng.UniformInt(0, num_features_ - 1));
    lo = hi = data[static_cast<size_t>(points[static_cast<size_t>(begin)])]
                  [static_cast<size_t>(f)];
    for (int i = begin + 1; i < end; ++i) {
      const float v = data[static_cast<size_t>(points[static_cast<size_t>(i)])]
                          [static_cast<size_t>(f)];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi > lo) {
      feature = f;
      break;
    }
  }
  if (feature < 0) {
    tree.nodes[static_cast<size_t>(idx)].size = count;
    return idx;
  }
  const float threshold = static_cast<float>(rng.Uniform(lo, hi));
  // Partition in place.
  int mid = begin;
  for (int i = begin; i < end; ++i) {
    if (data[static_cast<size_t>(points[static_cast<size_t>(i)])]
            [static_cast<size_t>(feature)] < threshold) {
      std::swap(points[static_cast<size_t>(i)],
                points[static_cast<size_t>(mid)]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) {
    tree.nodes[static_cast<size_t>(idx)].size = count;
    return idx;
  }
  tree.nodes[static_cast<size_t>(idx)].feature = feature;
  tree.nodes[static_cast<size_t>(idx)].threshold = threshold;
  const int left =
      BuildNode(tree, points, begin, mid, depth + 1, max_depth, data, rng);
  const int right =
      BuildNode(tree, points, mid, end, depth + 1, max_depth, data, rng);
  tree.nodes[static_cast<size_t>(idx)].left = left;
  tree.nodes[static_cast<size_t>(idx)].right = right;
  return idx;
}

double IsolationForest::PathLength(const Tree& tree,
                                   const std::vector<float>& x) const {
  int idx = 0;
  double depth = 0.0;
  for (;;) {
    const Node& node = tree.nodes[static_cast<size_t>(idx)];
    if (node.feature < 0) {
      return depth + AveragePathLength(static_cast<double>(node.size));
    }
    idx = x[static_cast<size_t>(node.feature)] < node.threshold ? node.left
                                                                : node.right;
    depth += 1.0;
  }
}

DetectionResult IsolationForest::Run(const Tensor& test) {
  IMDIFF_CHECK(!trees_.empty()) << "Fit must be called before Run";
  const auto data = Featurize(test);
  DetectionResult result;
  result.scores.reserve(data.size());
  for (const auto& x : data) {
    double mean_path = 0.0;
    for (const Tree& tree : trees_) mean_path += PathLength(tree, x);
    mean_path /= static_cast<double>(trees_.size());
    result.scores.push_back(
        static_cast<float>(std::pow(2.0, -mean_path / c_norm_)));
  }
  return result;
}

}  // namespace imdiff
