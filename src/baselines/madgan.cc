#include "baselines/madgan.h"

#include <algorithm>
#include <cmath>

#include "baselines/nn_common.h"
#include "nn/optimizer.h"

namespace imdiff {

using nn::Var;

Var MadGanDetector::Encode(const Tensor& batch) const {
  Var h = RunGru(*enc_rnn_, Var(batch));
  return enc_head_->Forward(h);  // [B, W, Z]
}

Var MadGanDetector::GenerateFromZ(const Var& z) const {
  Var h = RunLstm(*gen_rnn_, z);
  return gen_head_->Forward(h);  // [B, W, K]
}

Var MadGanDetector::Discriminate(const Var& x) const {
  Var final_h;
  RunLstm(*disc_rnn_, x, &final_h);
  return disc_head_->Forward(final_h);  // [B, 1]
}

void MadGanDetector::Fit(const Tensor& train) {
  num_features_ = train.dim(1);
  rng_ = std::make_unique<Rng>(config_.seed);
  enc_rnn_ = std::make_unique<nn::GruCell>(num_features_, config_.hidden, *rng_);
  enc_head_ = std::make_unique<nn::Linear>(config_.hidden, config_.latent, *rng_);
  gen_rnn_ = std::make_unique<nn::LstmCell>(config_.latent, config_.hidden, *rng_);
  gen_head_ = std::make_unique<nn::Linear>(config_.hidden, num_features_, *rng_);
  disc_rnn_ = std::make_unique<nn::LstmCell>(num_features_, config_.hidden, *rng_);
  disc_head_ = std::make_unique<nn::Linear>(config_.hidden, 1, *rng_);

  Tensor windows = WindowBatch(train, config_.window, config_.train_stride);
  const int64_t n = windows.dim(0);

  std::vector<Var> g_params;
  for (const auto* m : std::initializer_list<const nn::Module*>{
           enc_rnn_.get(), enc_head_.get(), gen_rnn_.get(), gen_head_.get()}) {
    for (const Var& p : m->Parameters()) g_params.push_back(p);
  }
  std::vector<Var> d_params;
  for (const auto* m : std::initializer_list<const nn::Module*>{
           disc_rnn_.get(), disc_head_.get()}) {
    for (const Var& p : m->Parameters()) d_params.push_back(p);
  }
  nn::Adam::Options opt;
  opt.lr = config_.lr;
  nn::Adam g_adam(g_params, opt);
  nn::Adam d_adam(d_params, opt);

  std::vector<int64_t> order = baselines::Iota(n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng_->engine());
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t bsz = std::min<int64_t>(config_.batch_size, n - start);
      Tensor batch = baselines::GatherWindows(windows, order, start, bsz);

      // Discriminator: real windows vs generated-from-noise windows.
      {
        Tensor z_noise =
            Tensor::Randn({bsz, config_.window, config_.latent}, *rng_);
        Var fake = GenerateFromZ(Var(std::move(z_noise)));
        Var fake_detached(fake.value());
        Var d_loss = Add(nn::MeanV(nn::SoftplusV(nn::Neg(Discriminate(Var(batch))))),
                         nn::MeanV(nn::SoftplusV(Discriminate(fake_detached))));
        nn::Backward(d_loss);
        d_adam.Step();
        g_adam.ZeroGrad();
      }
      // Generator + encoder: reconstruct real windows and fool D.
      {
        Var xhat = GenerateFromZ(Encode(batch));
        Var recon = nn::MseLossV(xhat, batch);
        Var adv = nn::MeanV(nn::SoftplusV(nn::Neg(Discriminate(xhat))));
        Var g_loss = Add(recon, nn::ScaleV(adv, 0.1f));
        nn::Backward(g_loss);
        g_adam.Step();
        d_adam.ZeroGrad();
      }
    }
  }
}

DetectionResult MadGanDetector::Run(const Tensor& test) {
  IMDIFF_CHECK(gen_head_ != nullptr) << "Fit must be called before Run";
  const int64_t length = test.dim(0);
  const int64_t window = config_.window;
  const auto starts = WindowStarts(length, window, window);
  Tensor windows = WindowBatch(test, window, window);
  const int64_t n = windows.dim(0);
  std::vector<std::vector<float>> window_scores;
  const std::vector<int64_t> order = baselines::Iota(n);
  for (int64_t start = 0; start < n; start += 16) {
    const int64_t bsz = std::min<int64_t>(16, n - start);
    Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
    Tensor xhat = GenerateFromZ(Encode(batch)).value();
    auto recon_errors = baselines::PerStepError(xhat, batch);
    // Discriminator abnormality per window: 1 - sigmoid(logit).
    Tensor logits = Discriminate(Var(batch)).value();
    for (int64_t b = 0; b < bsz; ++b) {
      const float d_prob =
          1.0f / (1.0f + std::exp(-logits.flat(b)));
      const float abnormality = 1.0f - d_prob;
      auto& row = recon_errors[static_cast<size_t>(b)];
      for (float& v : row) {
        v = config_.dr_lambda * v + (1.0f - config_.dr_lambda) * abnormality;
      }
      window_scores.push_back(std::move(row));
    }
  }
  DetectionResult result;
  result.scores = OverlapAverage(window_scores, starts, length, window);
  return result;
}

}  // namespace imdiff
