#include "baselines/tranad.h"

#include <algorithm>
#include <cmath>

#include "baselines/nn_common.h"
#include "nn/optimizer.h"

namespace imdiff {

using nn::Var;

Var TranAdDetector::Encode(const Tensor& batch, const Tensor& focus) const {
  const int64_t bsz = batch.dim(0);
  const int64_t window = config_.window;
  // Concatenate the window with the focus score along features: [B, W, 2K].
  Tensor joint = Concat({batch, focus}, 2);
  Var h = input_proj_->Forward(Var(std::move(joint)));  // [B, W, d]
  h = nn::AddConst(h, pos_embed_.Reshape({1, window, config_.d_model}));
  h = layer1_->Forward(h);
  if (config_.num_layers > 1) h = layer2_->Forward(h);
  (void)bsz;
  return h;
}

Var TranAdDetector::Phase1(const Tensor& batch) const {
  Tensor zero_focus = Tensor::Zeros(batch.shape());
  return decoder1_->Forward(Encode(batch, zero_focus));  // [B, W, K]
}

Var TranAdDetector::Phase2(const Tensor& batch, const Tensor& focus) const {
  return decoder2_->Forward(Encode(batch, focus));  // [B, W, K]
}

void TranAdDetector::Fit(const Tensor& train) {
  num_features_ = train.dim(1);
  rng_ = std::make_unique<Rng>(config_.seed);
  const int64_t d = config_.d_model;
  input_proj_ = std::make_unique<nn::Linear>(2 * num_features_, d, *rng_);
  {
    std::vector<int64_t> positions(static_cast<size_t>(config_.window));
    for (int64_t l = 0; l < config_.window; ++l) {
      positions[static_cast<size_t>(l)] = l;
    }
    pos_embed_ = nn::SinusoidalEmbedding(positions, d);
  }
  layer1_ = std::make_unique<nn::TransformerEncoderLayer>(
      d, config_.num_heads, 2 * d, *rng_);
  layer2_ = std::make_unique<nn::TransformerEncoderLayer>(
      d, config_.num_heads, 2 * d, *rng_);
  decoder1_ = std::make_unique<nn::Linear>(d, num_features_, *rng_);
  decoder2_ = std::make_unique<nn::Linear>(d, num_features_, *rng_);

  Tensor windows = WindowBatch(train, config_.window, config_.train_stride);
  const int64_t n = windows.dim(0);
  std::vector<Var> params;
  for (const auto* m : std::initializer_list<const nn::Module*>{
           input_proj_.get(), layer1_.get(), layer2_.get(), decoder1_.get(),
           decoder2_.get()}) {
    for (const Var& p : m->Parameters()) params.push_back(p);
  }
  nn::Adam::Options opt;
  opt.lr = config_.lr;
  nn::Adam adam(params, opt);

  std::vector<int64_t> order = baselines::Iota(n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // TranAD's annealing: early epochs favour phase-1 reconstruction, later
    // epochs the self-conditioned phase 2.
    const float w1 = std::pow(config_.epsilon, static_cast<float>(epoch + 1));
    const float w2 = 1.0f - w1;
    std::shuffle(order.begin(), order.end(), rng_->engine());
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t bsz = std::min<int64_t>(config_.batch_size, n - start);
      Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
      Var o1 = Phase1(batch);
      // Focus score from phase 1, detached (self-conditioning input).
      Tensor focus(batch.shape());
      {
        const float* po = o1.value().data();
        const float* pb = batch.data();
        float* pf = focus.mutable_data();
        const int64_t m = focus.numel();
        for (int64_t i = 0; i < m; ++i) {
          const float diff = po[i] - pb[i];
          pf[i] = diff * diff;
        }
      }
      Var o2 = Phase2(batch, focus);
      Var loss = Add(nn::ScaleV(nn::MseLossV(o1, batch), w1),
                     nn::ScaleV(nn::MseLossV(o2, batch), w2));
      nn::Backward(loss);
      adam.Step();
    }
  }
}

DetectionResult TranAdDetector::Run(const Tensor& test) {
  IMDIFF_CHECK(decoder2_ != nullptr) << "Fit must be called before Run";
  const int64_t length = test.dim(0);
  const int64_t window = config_.window;
  const auto starts = WindowStarts(length, window, window);
  Tensor windows = WindowBatch(test, window, window);
  const int64_t n = windows.dim(0);
  std::vector<std::vector<float>> window_scores;
  const std::vector<int64_t> order = baselines::Iota(n);
  for (int64_t start = 0; start < n; start += 16) {
    const int64_t bsz = std::min<int64_t>(16, n - start);
    Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
    Tensor o1 = Phase1(batch).value();
    Tensor focus(batch.shape());
    {
      const float* po = o1.data();
      const float* pb = batch.data();
      float* pf = focus.mutable_data();
      const int64_t m = focus.numel();
      for (int64_t i = 0; i < m; ++i) {
        const float diff = po[i] - pb[i];
        pf[i] = diff * diff;
      }
    }
    Tensor o2 = Phase2(batch, focus).value();
    auto e1 = baselines::PerStepError(o1, batch);
    auto e2 = baselines::PerStepError(o2, batch);
    for (int64_t b = 0; b < bsz; ++b) {
      auto& row = e1[static_cast<size_t>(b)];
      for (size_t w = 0; w < row.size(); ++w) {
        row[w] = 0.5f * (row[w] + e2[static_cast<size_t>(b)][w]);
      }
      window_scores.push_back(std::move(row));
    }
  }
  DetectionResult result;
  result.scores = OverlapAverage(window_scores, starts, length, window);
  return result;
}

}  // namespace imdiff
