#include "baselines/lstm_ad.h"

#include <algorithm>

#include "baselines/nn_common.h"
#include "nn/optimizer.h"

namespace imdiff {

using nn::Var;

Var LstmAdDetector::ForecastBatch(const Tensor& batch) const {
  const int64_t bsz = batch.dim(0);
  const int64_t k = batch.dim(2);
  // History part: [B, history, K].
  Tensor history = Slice(batch, 1, 0, config_.history);
  Var h1 = RunLstm(*lstm1_, Var(std::move(history)));
  Var final_h;
  RunLstm(*lstm2_, h1, &final_h);  // [B, hidden]
  Var pred = head_->Forward(final_h);  // [B, K]
  return ReshapeV(pred, {bsz, k});
}

void LstmAdDetector::Fit(const Tensor& train) {
  num_features_ = train.dim(1);
  rng_ = std::make_unique<Rng>(config_.seed);
  lstm1_ = std::make_unique<nn::LstmCell>(num_features_, config_.hidden, *rng_);
  lstm2_ = std::make_unique<nn::LstmCell>(config_.hidden, config_.hidden, *rng_);
  head_ = std::make_unique<nn::Linear>(config_.hidden, num_features_, *rng_);

  const int64_t window = config_.history + 1;
  Tensor windows = WindowBatch(train, window, config_.train_stride);
  const int64_t n = windows.dim(0);
  std::vector<Var> params = lstm1_->Parameters();
  for (const Var& p : lstm2_->Parameters()) params.push_back(p);
  for (const Var& p : head_->Parameters()) params.push_back(p);
  nn::Adam::Options opt;
  opt.lr = config_.lr;
  nn::Adam adam(params, opt);

  std::vector<int64_t> order = baselines::Iota(n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng_->engine());
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t bsz = std::min<int64_t>(config_.batch_size, n - start);
      Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
      Var pred = ForecastBatch(batch);
      Tensor target =
          Slice(batch, 1, config_.history, 1).Reshape({bsz, num_features_});
      nn::Var loss = nn::MseLossV(pred, target);
      nn::Backward(loss);
      adam.Step();
    }
  }
}

DetectionResult LstmAdDetector::Run(const Tensor& test) {
  IMDIFF_CHECK(head_ != nullptr) << "Fit must be called before Run";
  const int64_t length = test.dim(0);
  const int64_t k = test.dim(1);
  const int64_t window = config_.history + 1;
  DetectionResult result;
  result.scores.assign(static_cast<size_t>(length), 0.0f);
  if (length < window) return result;

  // One window per forecastable timestamp (stride 1).
  Tensor windows = WindowBatch(test, window, 1);
  const auto starts = WindowStarts(length, window, 1);
  const int64_t n = windows.dim(0);
  const std::vector<int64_t> order = baselines::Iota(n);
  const int64_t batch_size = 64;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t bsz = std::min<int64_t>(batch_size, n - start);
    Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
    Tensor pred = ForecastBatch(batch).value();
    Tensor target =
        Slice(batch, 1, config_.history, 1).Reshape({bsz, k});
    const float* pp = pred.data();
    const float* pt = target.data();
    for (int64_t b = 0; b < bsz; ++b) {
      float acc = 0.0f;
      for (int64_t j = 0; j < k; ++j) {
        const float d = pp[b * k + j] - pt[b * k + j];
        acc += d * d;
      }
      const int64_t pos = starts[static_cast<size_t>(start + b)] + window - 1;
      result.scores[static_cast<size_t>(pos)] = acc / static_cast<float>(k);
    }
  }
  return result;
}

}  // namespace imdiff
