#include "baselines/mtad_gat.h"

#include <algorithm>

#include "baselines/nn_common.h"
#include "nn/optimizer.h"

namespace imdiff {

using nn::Var;

MtadGatDetector::Outputs MtadGatDetector::ForwardBatch(
    const Tensor& batch) const {
  const int64_t bsz = batch.dim(0);
  const int64_t window = config_.window;
  const int64_t k = num_features_;
  Tensor input = Slice(batch, 1, 0, window);  // [B, W, K]
  Var x(input);

  // Time-oriented attention: tokens = timesteps.
  Var ht = temporal_attn_->Forward(temporal_in_->Forward(x));  // [B, W, d]

  // Feature-oriented attention: tokens = features, each summarized by its
  // window values.
  Var xf = PermuteV(x, {0, 2, 1});                       // [B, K, W]
  Var hf = feature_attn_->Forward(feature_in_->Forward(xf));  // [B, K, d]
  // Pool feature context and broadcast over time.
  Var pooled = nn::ScaleV(
      ReshapeV(nn::MatMulV(ReshapeV(PermuteV(hf, {0, 2, 1}), {-1, k}),
                           Var(Tensor::Full({k, 1}, 1.0f))),
               {bsz, 1, config_.d_model}),
      1.0f / static_cast<float>(k));
  Var hf_broadcast =
      Add(Var(Tensor::Zeros({bsz, window, config_.d_model})),
          feature_pool_->Forward(pooled));  // [B, W, d]

  // Joint representation -> GRU.
  Var joint = nn::ConcatV({ht, hf_broadcast, x}, 2);  // [B, W, 2d+K]
  Var final_h;
  Var states = RunGru(*gru_, joint, &final_h);  // [B, W, H], [B, H]

  Outputs out;
  out.forecast = forecast_head_->Forward(final_h);      // [B, K]
  out.reconstruction = recon_head_->Forward(states);    // [B, W, K]
  return out;
}

void MtadGatDetector::Fit(const Tensor& train) {
  num_features_ = train.dim(1);
  rng_ = std::make_unique<Rng>(config_.seed);
  const int64_t d = config_.d_model;
  temporal_in_ = std::make_unique<nn::Linear>(num_features_, d, *rng_);
  temporal_attn_ =
      std::make_unique<nn::TransformerEncoderLayer>(d, 4, 2 * d, *rng_);
  feature_in_ = std::make_unique<nn::Linear>(config_.window, d, *rng_);
  feature_attn_ =
      std::make_unique<nn::TransformerEncoderLayer>(d, 4, 2 * d, *rng_);
  feature_pool_ = std::make_unique<nn::Linear>(d, d, *rng_);
  gru_ = std::make_unique<nn::GruCell>(2 * d + num_features_, config_.hidden,
                                       *rng_);
  forecast_head_ =
      std::make_unique<nn::Linear>(config_.hidden, num_features_, *rng_);
  recon_head_ =
      std::make_unique<nn::Linear>(config_.hidden, num_features_, *rng_);

  Tensor windows =
      WindowBatch(train, config_.window + 1, config_.train_stride);
  const int64_t n = windows.dim(0);
  std::vector<Var> params;
  for (const auto* m : std::initializer_list<const nn::Module*>{
           temporal_in_.get(), temporal_attn_.get(), feature_in_.get(),
           feature_attn_.get(), feature_pool_.get(), gru_.get(),
           forecast_head_.get(), recon_head_.get()}) {
    for (const Var& p : m->Parameters()) params.push_back(p);
  }
  nn::Adam::Options opt;
  opt.lr = config_.lr;
  nn::Adam adam(params, opt);

  std::vector<int64_t> order = baselines::Iota(n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng_->engine());
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t bsz = std::min<int64_t>(config_.batch_size, n - start);
      Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
      Outputs out = ForwardBatch(batch);
      Tensor target_next = Slice(batch, 1, config_.window, 1)
                               .Reshape({bsz, num_features_});
      Tensor target_window = Slice(batch, 1, 0, config_.window);
      Var loss = Add(nn::MseLossV(out.forecast, target_next),
                     nn::MseLossV(out.reconstruction, target_window));
      nn::Backward(loss);
      adam.Step();
    }
  }
}

DetectionResult MtadGatDetector::Run(const Tensor& test) {
  IMDIFF_CHECK(recon_head_ != nullptr) << "Fit must be called before Run";
  const int64_t length = test.dim(0);
  const int64_t window = config_.window;
  const int64_t k = num_features_;
  // Stride W/2 so forecast errors cover most timestamps; recon errors are
  // averaged over overlaps.
  const int64_t stride = std::max<int64_t>(1, window / 2);
  const auto starts = WindowStarts(length, window + 1, stride);
  Tensor windows = WindowBatch(test, window + 1, stride);
  const int64_t n = windows.dim(0);
  std::vector<std::vector<float>> window_scores;
  const std::vector<int64_t> order = baselines::Iota(n);
  for (int64_t start = 0; start < n; start += 16) {
    const int64_t bsz = std::min<int64_t>(16, n - start);
    Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
    Outputs out = ForwardBatch(batch);
    Tensor recon = out.reconstruction.value();
    Tensor forecast = out.forecast.value();
    Tensor target_window = Slice(batch, 1, 0, window);
    auto recon_err = baselines::PerStepError(recon, target_window);
    const float* pf = forecast.data();
    const float* pb = batch.data();
    for (int64_t b = 0; b < bsz; ++b) {
      // Forecast error applies to the last (forecasted) step.
      float facc = 0.0f;
      for (int64_t j = 0; j < k; ++j) {
        const float d =
            pf[b * k + j] - pb[(b * (window + 1) + window) * k + j];
        facc += d * d;
      }
      facc /= static_cast<float>(k);
      std::vector<float> row(static_cast<size_t>(window + 1), 0.0f);
      for (int64_t w = 0; w < window; ++w) {
        row[static_cast<size_t>(w)] =
            (1.0f - config_.gamma) *
            recon_err[static_cast<size_t>(b)][static_cast<size_t>(w)];
      }
      row[static_cast<size_t>(window)] += config_.gamma * facc;
      window_scores.push_back(std::move(row));
    }
  }
  DetectionResult result;
  result.scores = OverlapAverage(window_scores, starts, length, window + 1);
  return result;
}

}  // namespace imdiff
