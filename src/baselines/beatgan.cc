#include "baselines/beatgan.h"

#include <algorithm>

#include "baselines/nn_common.h"
#include "nn/optimizer.h"

namespace imdiff {

using nn::Var;

Var BeatGanDetector::Generate(const Tensor& batch) const {
  // [B, W, K] -> [B, K, W] for convolution.
  Var x = PermuteV(Var(batch), {0, 2, 1});
  Var h = nn::ReluV(enc1_->Forward(x));
  h = nn::ReluV(enc2_->Forward(h));  // bottleneck channels
  h = nn::ReluV(dec1_->Forward(h));
  h = dec2_->Forward(h);             // [B, K, W]
  return PermuteV(h, {0, 2, 1});
}

Var BeatGanDetector::Discriminate(const Var& x_bwk) const {
  Var x = PermuteV(x_bwk, {0, 2, 1});
  Var h = nn::ReluV(d1_->Forward(x));
  h = nn::ReluV(d2_->Forward(h));           // [B, C, W]
  // Global average pool over time.
  const int64_t c = h.dim(1);
  const int64_t w = h.dim(2);
  Var pooled = nn::ScaleV(
      ReshapeV(nn::MatMulV(ReshapeV(h, {-1, w}),
                           Var(Tensor::Full({w, 1}, 1.0f))),
               {h.dim(0), c}),
      1.0f / static_cast<float>(w));
  return d_head_->Forward(pooled);  // [B, 1] logits
}

void BeatGanDetector::Fit(const Tensor& train) {
  num_features_ = train.dim(1);
  rng_ = std::make_unique<Rng>(config_.seed);
  const int64_t c = config_.channels;
  enc1_ = std::make_unique<nn::Conv1dLayer>(num_features_, c, 5, 2, *rng_);
  enc2_ = std::make_unique<nn::Conv1dLayer>(c, config_.bottleneck, 5, 2, *rng_);
  dec1_ = std::make_unique<nn::Conv1dLayer>(config_.bottleneck, c, 5, 2, *rng_);
  dec2_ = std::make_unique<nn::Conv1dLayer>(c, num_features_, 5, 2, *rng_);
  d1_ = std::make_unique<nn::Conv1dLayer>(num_features_, c, 5, 2, *rng_);
  d2_ = std::make_unique<nn::Conv1dLayer>(c, config_.bottleneck, 5, 2, *rng_);
  d_head_ = std::make_unique<nn::Linear>(config_.bottleneck, 1, *rng_);

  Tensor windows = WindowBatch(train, config_.window, config_.train_stride);
  const int64_t n = windows.dim(0);

  std::vector<Var> g_params;
  for (const auto* m : std::initializer_list<const nn::Module*>{
           enc1_.get(), enc2_.get(), dec1_.get(), dec2_.get()}) {
    for (const Var& p : m->Parameters()) g_params.push_back(p);
  }
  std::vector<Var> d_params;
  for (const auto* m : std::initializer_list<const nn::Module*>{
           d1_.get(), d2_.get(), d_head_.get()}) {
    for (const Var& p : m->Parameters()) d_params.push_back(p);
  }
  nn::Adam::Options opt;
  opt.lr = config_.lr;
  nn::Adam g_adam(g_params, opt);
  nn::Adam d_adam(d_params, opt);

  std::vector<int64_t> order = baselines::Iota(n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng_->engine());
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t bsz = std::min<int64_t>(config_.batch_size, n - start);
      Tensor batch = baselines::GatherWindows(windows, order, start, bsz);

      // Discriminator step: real -> 1, reconstruction -> 0.
      {
        Var fake = Generate(batch);
        // Detach the generator output by re-wrapping its value.
        Var fake_detached(fake.value());
        Var d_real = Discriminate(Var(batch));
        Var d_fake = Discriminate(fake_detached);
        // BCE with logits: softplus(-logit) for target 1, softplus(logit)
        // for target 0.
        Var d_loss = Add(nn::MeanV(nn::SoftplusV(nn::Neg(d_real))),
                         nn::MeanV(nn::SoftplusV(d_fake)));
        nn::Backward(d_loss);
        d_adam.Step();
        g_adam.ZeroGrad();  // drop any spill into generator params
      }
      // Generator step: reconstruction + fool the discriminator.
      {
        Var fake = Generate(batch);
        Var recon = nn::MseLossV(fake, batch);
        Var adv = nn::MeanV(nn::SoftplusV(nn::Neg(Discriminate(fake))));
        Var g_loss = Add(recon, nn::ScaleV(adv, config_.adv_weight));
        nn::Backward(g_loss);
        g_adam.Step();
        d_adam.ZeroGrad();
      }
    }
  }
}

DetectionResult BeatGanDetector::Run(const Tensor& test) {
  IMDIFF_CHECK(dec2_ != nullptr) << "Fit must be called before Run";
  const int64_t length = test.dim(0);
  const int64_t window = config_.window;
  const auto starts = WindowStarts(length, window, window);
  Tensor windows = WindowBatch(test, window, window);
  const int64_t n = windows.dim(0);
  std::vector<std::vector<float>> window_scores;
  const std::vector<int64_t> order = baselines::Iota(n);
  for (int64_t start = 0; start < n; start += 16) {
    const int64_t bsz = std::min<int64_t>(16, n - start);
    Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
    Tensor xhat = Generate(batch).value();
    auto errors = baselines::PerStepError(xhat, batch);
    for (auto& row : errors) window_scores.push_back(std::move(row));
  }
  DetectionResult result;
  result.scores = OverlapAverage(window_scores, starts, length, window);
  return result;
}

}  // namespace imdiff
