#include "baselines/omni_anomaly.h"

#include <algorithm>

#include "baselines/nn_common.h"
#include "nn/optimizer.h"

namespace imdiff {

using nn::Var;

Var OmniAnomalyDetector::Reconstruct(const Tensor& batch, Var* mu_out,
                                     Var* logvar_out) const {
  Var h = RunGru(*encoder_, Var(batch));        // [B, W, H]
  Var mu = mu_head_->Forward(h);                // [B, W, Z]
  Var logvar = logvar_head_->Forward(h);        // [B, W, Z]
  // Reparameterization with a fresh standard-normal draw.
  Tensor eps = Tensor::Randn(mu.shape(), *rng_);
  Var sigma = nn::ExpV(nn::ScaleV(logvar, 0.5f));
  Var z = Add(mu, Mul(sigma, Var(std::move(eps))));
  Var dec = RunGru(*decoder_, z);               // [B, W, H]
  if (mu_out != nullptr) *mu_out = mu;
  if (logvar_out != nullptr) *logvar_out = logvar;
  return out_head_->Forward(dec);               // [B, W, K]
}

void OmniAnomalyDetector::Fit(const Tensor& train) {
  num_features_ = train.dim(1);
  rng_ = std::make_unique<Rng>(config_.seed);
  encoder_ = std::make_unique<nn::GruCell>(num_features_, config_.hidden, *rng_);
  mu_head_ = std::make_unique<nn::Linear>(config_.hidden, config_.latent, *rng_);
  logvar_head_ =
      std::make_unique<nn::Linear>(config_.hidden, config_.latent, *rng_);
  decoder_ = std::make_unique<nn::GruCell>(config_.latent, config_.hidden, *rng_);
  out_head_ = std::make_unique<nn::Linear>(config_.hidden, num_features_, *rng_);

  Tensor windows = WindowBatch(train, config_.window, config_.train_stride);
  const int64_t n = windows.dim(0);
  std::vector<Var> params;
  for (const auto* m :
       std::initializer_list<const nn::Module*>{encoder_.get(), mu_head_.get(),
                                                logvar_head_.get(),
                                                decoder_.get(), out_head_.get()}) {
    for (const Var& p : m->Parameters()) params.push_back(p);
  }
  nn::Adam::Options opt;
  opt.lr = config_.lr;
  nn::Adam adam(params, opt);

  std::vector<int64_t> order = baselines::Iota(n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng_->engine());
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t bsz = std::min<int64_t>(config_.batch_size, n - start);
      Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
      Var mu, logvar;
      Var xhat = Reconstruct(batch, &mu, &logvar);
      Var recon = nn::MseLossV(xhat, batch);
      // KL(q || N(0,I)) = -0.5 mean(1 + logvar - mu^2 - exp(logvar)).
      Var kl = nn::ScaleV(
          nn::MeanV(Sub(Add(nn::ExpV(logvar), Mul(mu, mu)),
                        nn::AddScalarV(logvar, 1.0f))),
          0.5f);
      Var loss = Add(recon, nn::ScaleV(kl, config_.kl_weight));
      nn::Backward(loss);
      adam.Step();
    }
  }
}

DetectionResult OmniAnomalyDetector::Run(const Tensor& test) {
  IMDIFF_CHECK(out_head_ != nullptr) << "Fit must be called before Run";
  const int64_t length = test.dim(0);
  const int64_t window = config_.window;
  const auto starts = WindowStarts(length, window, window);
  Tensor windows = WindowBatch(test, window, window);
  const int64_t n = windows.dim(0);
  std::vector<std::vector<float>> window_scores;
  const std::vector<int64_t> order = baselines::Iota(n);
  const int64_t batch_size = 16;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t bsz = std::min<int64_t>(batch_size, n - start);
    Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
    Tensor xhat = Reconstruct(batch, nullptr, nullptr).value();
    auto errors = baselines::PerStepError(xhat, batch);
    for (auto& row : errors) window_scores.push_back(std::move(row));
  }
  DetectionResult result;
  result.scores = OverlapAverage(window_scores, starts, length, window);
  return result;
}

}  // namespace imdiff
