// MSCRED (Zhang et al., AAAI 2019): multi-scale signature matrices (pairwise
// channel inner products over several window sizes) encode inter-metric
// correlation; an encoder-recurrent-decoder reconstructs them and the
// residual of the reconstructed signatures is the anomaly score.
//
// Simplification vs the original (DESIGN.md §4): the convolutional
// encoder/decoder + attention-ConvLSTM stack is replaced by an MLP encoder, a
// GRU over the signature sequence, and an MLP decoder; the signature-matrix
// representation and residual scoring are kept.

#ifndef IMDIFF_BASELINES_MSCRED_H_
#define IMDIFF_BASELINES_MSCRED_H_

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace imdiff {

struct MscredConfig {
  std::vector<int64_t> scales = {10, 25, 50};  // signature window sizes
  int64_t segment_stride = 10;  // signature sampling interval
  int64_t sequence = 8;         // signatures per training sequence
  int64_t hidden = 48;
  int epochs = 12;
  int batch_size = 16;
  float lr = 1e-3f;
  uint64_t seed = 1;
};

class MscredDetector : public AnomalyDetector {
 public:
  explicit MscredDetector(const MscredConfig& config) : config_(config) {}

  std::string name() const override { return "MSCRED"; }
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

 private:
  // Signature matrices for a [L, K] series: one flattened
  // [num_scales * K * K] vector per sampled step. `positions` receives the
  // timestamp of each signature.
  Tensor ComputeSignatures(const Tensor& series,
                           std::vector<int64_t>* positions) const;
  // Reconstruct a [B, S, D] signature sequence.
  nn::Var Reconstruct(const Tensor& batch) const;

  MscredConfig config_;
  int64_t num_features_ = 0;
  int64_t signature_dim_ = 0;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<nn::Linear> encoder_;
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::Linear> decoder_;
};

}  // namespace imdiff

#endif  // IMDIFF_BASELINES_MSCRED_H_
