// MTAD-GAT (Zhao et al., ICDM 2020): feature-oriented and time-oriented
// graph-attention layers feeding a GRU, trained jointly on forecasting and
// reconstruction; the anomaly score combines both errors.
//
// Simplification vs the original (DESIGN.md §4): the VAE reconstruction
// branch is a deterministic decoder, and the GAT layers are realized as
// self-attention over the feature / time axes (attention is the defining
// mechanism of GAT on a fully connected graph).

#ifndef IMDIFF_BASELINES_MTAD_GAT_H_
#define IMDIFF_BASELINES_MTAD_GAT_H_

#include <memory>
#include <string>

#include "core/detector.h"
#include "nn/attention.h"
#include "nn/rnn.h"

namespace imdiff {

struct MtadGatConfig {
  int64_t window = 40;
  int64_t d_model = 32;
  int64_t hidden = 32;
  float gamma = 0.5f;  // forecast-vs-reconstruction score weight
  int epochs = 8;
  int batch_size = 16;
  int64_t train_stride = 8;
  float lr = 1e-3f;
  uint64_t seed = 1;
};

class MtadGatDetector : public AnomalyDetector {
 public:
  explicit MtadGatDetector(const MtadGatConfig& config) : config_(config) {}

  std::string name() const override { return "MTAD-GAT"; }
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

 private:
  struct Outputs {
    nn::Var forecast;        // [B, K] next-step prediction
    nn::Var reconstruction;  // [B, W, K]
  };
  // batch is [B, W+1, K]: first W steps are input, last is forecast target.
  Outputs ForwardBatch(const Tensor& batch) const;

  MtadGatConfig config_;
  int64_t num_features_ = 0;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<nn::Linear> temporal_in_;   // K -> d
  std::unique_ptr<nn::TransformerEncoderLayer> temporal_attn_;
  std::unique_ptr<nn::Linear> feature_in_;    // W -> d
  std::unique_ptr<nn::TransformerEncoderLayer> feature_attn_;
  std::unique_ptr<nn::Linear> feature_pool_;  // d -> d
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::Linear> forecast_head_; // hidden -> K
  std::unique_ptr<nn::Linear> recon_head_;    // hidden -> K (per step)
};

}  // namespace imdiff

#endif  // IMDIFF_BASELINES_MTAD_GAT_H_
