// InterFusion (Li et al., KDD 2021): hierarchical stochastic model with an
// inter-metric (global, per-window) latent and a temporal (per-step) latent,
// decoded jointly to reconstruct the window; the reconstruction error is the
// anomaly score.
//
// Simplification vs the original (DESIGN.md §4): the two-view hierarchical
// VAE is kept (global inter-metric latent + per-step temporal latent) but the
// MCMC-based test-time imputation is omitted.

#ifndef IMDIFF_BASELINES_INTERFUSION_H_
#define IMDIFF_BASELINES_INTERFUSION_H_

#include <memory>
#include <string>

#include "core/detector.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace imdiff {

struct InterFusionConfig {
  int64_t window = 50;
  int64_t hidden = 32;
  int64_t latent_temporal = 8;
  int64_t latent_global = 8;
  float kl_weight = 0.05f;
  int epochs = 10;
  int batch_size = 16;
  int64_t train_stride = 10;
  float lr = 1e-3f;
  uint64_t seed = 1;
};

class InterFusionDetector : public AnomalyDetector {
 public:
  explicit InterFusionDetector(const InterFusionConfig& config)
      : config_(config) {}

  std::string name() const override { return "InterFusion"; }
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

 private:
  struct LatentStats {
    nn::Var mu_t, logvar_t;  // temporal latent stats [B, W, Zt]
    nn::Var mu_g, logvar_g;  // global latent stats [B, Zg]
  };
  nn::Var Reconstruct(const Tensor& batch, LatentStats* stats) const;

  InterFusionConfig config_;
  int64_t num_features_ = 0;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<nn::GruCell> encoder_;
  std::unique_ptr<nn::Linear> mu_t_head_;
  std::unique_ptr<nn::Linear> logvar_t_head_;
  std::unique_ptr<nn::Linear> mu_g_head_;      // from mean-pooled hidden
  std::unique_ptr<nn::Linear> logvar_g_head_;
  std::unique_ptr<nn::GruCell> decoder_;
  std::unique_ptr<nn::Linear> out_head_;
};

}  // namespace imdiff

#endif  // IMDIFF_BASELINES_INTERFUSION_H_
