// LSTM-AD (Malhotra et al., ESANN 2015): stacked-LSTM one-step-ahead
// forecaster; the squared prediction error is the anomaly score.

#ifndef IMDIFF_BASELINES_LSTM_AD_H_
#define IMDIFF_BASELINES_LSTM_AD_H_

#include <memory>
#include <string>

#include "core/detector.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace imdiff {

struct LstmAdConfig {
  int64_t history = 25;   // input window length
  int64_t hidden = 32;
  int epochs = 8;
  int batch_size = 32;
  int64_t train_stride = 2;
  float lr = 1e-3f;
  uint64_t seed = 1;
};

class LstmAdDetector : public AnomalyDetector {
 public:
  explicit LstmAdDetector(const LstmAdConfig& config) : config_(config) {}

  std::string name() const override { return "LSTM-AD"; }
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

 private:
  // Forecast for each window in a [B, history+1, K] batch; returns [B, K].
  nn::Var ForecastBatch(const Tensor& batch) const;

  LstmAdConfig config_;
  int64_t num_features_ = 0;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<nn::LstmCell> lstm1_;
  std::unique_ptr<nn::LstmCell> lstm2_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace imdiff

#endif  // IMDIFF_BASELINES_LSTM_AD_H_
