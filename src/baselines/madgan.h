// MAD-GAN (Li et al., ICANN 2019): LSTM generator + LSTM discriminator.
// The anomaly score is the DR-score: a convex combination of reconstruction
// error and the discriminator's abnormality estimate.
//
// Simplification vs the original (DESIGN.md §4): the test-time latent-space
// inversion by gradient search is replaced by a jointly trained encoder
// (AE-GAN style), which supplies the latent used for reconstruction.

#ifndef IMDIFF_BASELINES_MADGAN_H_
#define IMDIFF_BASELINES_MADGAN_H_

#include <memory>
#include <string>

#include "core/detector.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace imdiff {

struct MadGanConfig {
  int64_t window = 40;
  int64_t hidden = 32;
  int64_t latent = 8;
  float dr_lambda = 0.7f;  // weight on reconstruction in the DR-score
  int epochs = 10;
  int batch_size = 16;
  int64_t train_stride = 10;
  float lr = 1e-3f;
  uint64_t seed = 1;
};

class MadGanDetector : public AnomalyDetector {
 public:
  explicit MadGanDetector(const MadGanConfig& config) : config_(config) {}

  std::string name() const override { return "MAD-GAN"; }
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

 private:
  nn::Var Encode(const Tensor& batch) const;      // [B,W,K] -> z [B,W,Z]
  nn::Var GenerateFromZ(const nn::Var& z) const;  // z -> [B,W,K]
  nn::Var Discriminate(const nn::Var& x) const;   // [B,W,K] -> logits [B,1]

  MadGanConfig config_;
  int64_t num_features_ = 0;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<nn::GruCell> enc_rnn_;
  std::unique_ptr<nn::Linear> enc_head_;
  std::unique_ptr<nn::LstmCell> gen_rnn_;
  std::unique_ptr<nn::Linear> gen_head_;
  std::unique_ptr<nn::LstmCell> disc_rnn_;
  std::unique_ptr<nn::Linear> disc_head_;
};

}  // namespace imdiff

#endif  // IMDIFF_BASELINES_MADGAN_H_
