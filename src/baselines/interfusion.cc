#include "baselines/interfusion.h"

#include <algorithm>

#include "baselines/nn_common.h"
#include "nn/optimizer.h"

namespace imdiff {

using nn::Var;

Var InterFusionDetector::Reconstruct(const Tensor& batch,
                                     LatentStats* stats) const {
  const int64_t bsz = batch.dim(0);
  const int64_t window = config_.window;
  Var h = RunGru(*encoder_, Var(batch));  // [B, W, H]

  // Temporal latent per step.
  Var mu_t = mu_t_head_->Forward(h);
  Var logvar_t = logvar_t_head_->Forward(h);
  Tensor eps_t = Tensor::Randn(mu_t.shape(), *rng_);
  Var z_t = Add(mu_t, Mul(nn::ExpV(nn::ScaleV(logvar_t, 0.5f)),
                          Var(std::move(eps_t))));

  // Global inter-metric latent from mean-pooled hidden states.
  Var pooled = nn::ScaleV(
      ReshapeV(nn::MatMulV(ReshapeV(PermuteV(h, {0, 2, 1}), {-1, window}),
                           Var(Tensor::Full({window, 1}, 1.0f))),
               {bsz, config_.hidden}),
      1.0f / static_cast<float>(window));
  Var mu_g = mu_g_head_->Forward(pooled);        // [B, Zg]
  Var logvar_g = logvar_g_head_->Forward(pooled);
  Tensor eps_g = Tensor::Randn(mu_g.shape(), *rng_);
  Var z_g = Add(mu_g, Mul(nn::ExpV(nn::ScaleV(logvar_g, 0.5f)),
                          Var(std::move(eps_g))));

  // Broadcast z_g over time and decode [z_t, z_g].
  Var z_g_b = Add(Var(Tensor::Zeros({bsz, window, config_.latent_global})),
                  ReshapeV(z_g, {bsz, 1, config_.latent_global}));
  Var z = nn::ConcatV({z_t, z_g_b}, 2);
  Var dec = RunGru(*decoder_, z);
  if (stats != nullptr) {
    stats->mu_t = mu_t;
    stats->logvar_t = logvar_t;
    stats->mu_g = mu_g;
    stats->logvar_g = logvar_g;
  }
  return out_head_->Forward(dec);  // [B, W, K]
}

void InterFusionDetector::Fit(const Tensor& train) {
  num_features_ = train.dim(1);
  rng_ = std::make_unique<Rng>(config_.seed);
  encoder_ = std::make_unique<nn::GruCell>(num_features_, config_.hidden, *rng_);
  mu_t_head_ =
      std::make_unique<nn::Linear>(config_.hidden, config_.latent_temporal, *rng_);
  logvar_t_head_ =
      std::make_unique<nn::Linear>(config_.hidden, config_.latent_temporal, *rng_);
  mu_g_head_ =
      std::make_unique<nn::Linear>(config_.hidden, config_.latent_global, *rng_);
  logvar_g_head_ =
      std::make_unique<nn::Linear>(config_.hidden, config_.latent_global, *rng_);
  decoder_ = std::make_unique<nn::GruCell>(
      config_.latent_temporal + config_.latent_global, config_.hidden, *rng_);
  out_head_ = std::make_unique<nn::Linear>(config_.hidden, num_features_, *rng_);

  Tensor windows = WindowBatch(train, config_.window, config_.train_stride);
  const int64_t n = windows.dim(0);
  std::vector<Var> params;
  for (const auto* m : std::initializer_list<const nn::Module*>{
           encoder_.get(), mu_t_head_.get(), logvar_t_head_.get(),
           mu_g_head_.get(), logvar_g_head_.get(), decoder_.get(),
           out_head_.get()}) {
    for (const Var& p : m->Parameters()) params.push_back(p);
  }
  nn::Adam::Options opt;
  opt.lr = config_.lr;
  nn::Adam adam(params, opt);

  auto kl_term = [](const Var& mu, const Var& logvar) {
    return nn::ScaleV(
        nn::MeanV(Sub(Add(nn::ExpV(logvar), Mul(mu, mu)),
                      nn::AddScalarV(logvar, 1.0f))),
        0.5f);
  };

  std::vector<int64_t> order = baselines::Iota(n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng_->engine());
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t bsz = std::min<int64_t>(config_.batch_size, n - start);
      Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
      LatentStats stats;
      Var xhat = Reconstruct(batch, &stats);
      Var loss = Add(
          nn::MseLossV(xhat, batch),
          nn::ScaleV(Add(kl_term(stats.mu_t, stats.logvar_t),
                         kl_term(stats.mu_g, stats.logvar_g)),
                     config_.kl_weight));
      nn::Backward(loss);
      adam.Step();
    }
  }
}

DetectionResult InterFusionDetector::Run(const Tensor& test) {
  IMDIFF_CHECK(out_head_ != nullptr) << "Fit must be called before Run";
  const int64_t length = test.dim(0);
  const int64_t window = config_.window;
  const auto starts = WindowStarts(length, window, window);
  Tensor windows = WindowBatch(test, window, window);
  const int64_t n = windows.dim(0);
  std::vector<std::vector<float>> window_scores;
  const std::vector<int64_t> order = baselines::Iota(n);
  for (int64_t start = 0; start < n; start += 16) {
    const int64_t bsz = std::min<int64_t>(16, n - start);
    Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
    Tensor xhat = Reconstruct(batch, nullptr).value();
    auto errors = baselines::PerStepError(xhat, batch);
    for (auto& row : errors) window_scores.push_back(std::move(row));
  }
  DetectionResult result;
  result.scores = OverlapAverage(window_scores, starts, length, window);
  return result;
}

}  // namespace imdiff
