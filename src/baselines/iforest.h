// Isolation Forest (Liu, Ting & Zhou, 2008/2012).
//
// Classic tree-ensemble anomaly detector: anomalies isolate in fewer random
// splits. Fit builds trees on subsamples of the training points; the score of
// a test point is 2^(-E[h(x)] / c(ψ)) where h is the path length and c the
// average unsuccessful-search length of a BST.

#ifndef IMDIFF_BASELINES_IFOREST_H_
#define IMDIFF_BASELINES_IFOREST_H_

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "utils/rng.h"

namespace imdiff {

struct IsolationForestConfig {
  int num_trees = 100;
  int subsample = 256;
  uint64_t seed = 1;
  // Context window: each point is featurized as the concatenation of the
  // current values and the deltas to `context` steps back, letting the forest
  // see short-term dynamics (0 = raw values only).
  int context = 1;
};

class IsolationForest : public AnomalyDetector {
 public:
  explicit IsolationForest(const IsolationForestConfig& config);

  std::string name() const override { return "IForest"; }
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

 private:
  struct Node {
    int feature = -1;       // -1 = leaf
    float threshold = 0.0f;
    int left = -1;
    int right = -1;
    int size = 0;           // points at this (external) node
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  std::vector<std::vector<float>> Featurize(const Tensor& series) const;
  int BuildNode(Tree& tree, std::vector<int>& points, int begin, int end,
                int depth, int max_depth,
                const std::vector<std::vector<float>>& data, Rng& rng);
  double PathLength(const Tree& tree, const std::vector<float>& x) const;

  IsolationForestConfig config_;
  std::vector<Tree> trees_;
  double c_norm_ = 1.0;
  int64_t num_features_ = 0;
};

}  // namespace imdiff

#endif  // IMDIFF_BASELINES_IFOREST_H_
