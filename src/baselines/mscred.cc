#include "baselines/mscred.h"

#include <algorithm>

#include "baselines/nn_common.h"
#include "nn/optimizer.h"

namespace imdiff {

using nn::Var;

Tensor MscredDetector::ComputeSignatures(
    const Tensor& series, std::vector<int64_t>* positions) const {
  const int64_t length = series.dim(0);
  const int64_t k = series.dim(1);
  const int64_t max_scale =
      *std::max_element(config_.scales.begin(), config_.scales.end());
  const int64_t dim =
      static_cast<int64_t>(config_.scales.size()) * k * k;
  std::vector<int64_t> steps;
  for (int64_t t = max_scale; t < length; t += config_.segment_stride) {
    steps.push_back(t);
  }
  if (steps.empty()) steps.push_back(std::min(max_scale, length - 1));
  Tensor out({static_cast<int64_t>(steps.size()), dim});
  float* po = out.mutable_data();
  const float* p = series.data();
  for (size_t si = 0; si < steps.size(); ++si) {
    const int64_t t = steps[si];
    float* row = po + static_cast<int64_t>(si) * dim;
    int64_t offset = 0;
    for (int64_t scale : config_.scales) {
      const int64_t begin = std::max<int64_t>(0, t - scale);
      const float inv = 1.0f / static_cast<float>(t - begin + 1);
      for (int64_t i = 0; i < k; ++i) {
        for (int64_t j = 0; j < k; ++j) {
          float acc = 0.0f;
          for (int64_t tau = begin; tau <= t; ++tau) {
            acc += p[tau * k + i] * p[tau * k + j];
          }
          row[offset + i * k + j] = acc * inv;
        }
      }
      offset += k * k;
    }
  }
  if (positions != nullptr) *positions = std::move(steps);
  return out;
}

Var MscredDetector::Reconstruct(const Tensor& batch) const {
  Var h = nn::ReluV(encoder_->Forward(Var(batch)));  // [B, S, H]
  Var states = RunGru(*gru_, h);                     // [B, S, H]
  return decoder_->Forward(states);                  // [B, S, D]
}

void MscredDetector::Fit(const Tensor& train) {
  num_features_ = train.dim(1);
  rng_ = std::make_unique<Rng>(config_.seed);
  std::vector<int64_t> positions;
  Tensor signatures = ComputeSignatures(train, &positions);  // [N, D]
  signature_dim_ = signatures.dim(1);
  encoder_ = std::make_unique<nn::Linear>(signature_dim_, config_.hidden, *rng_);
  gru_ = std::make_unique<nn::GruCell>(config_.hidden, config_.hidden, *rng_);
  decoder_ = std::make_unique<nn::Linear>(config_.hidden, signature_dim_, *rng_);

  // Sequences of consecutive signatures.
  Tensor sequences = WindowBatch(signatures, config_.sequence, 2);
  const int64_t n = sequences.dim(0);
  std::vector<Var> params = encoder_->Parameters();
  for (const Var& p : gru_->Parameters()) params.push_back(p);
  for (const Var& p : decoder_->Parameters()) params.push_back(p);
  nn::Adam::Options opt;
  opt.lr = config_.lr;
  nn::Adam adam(params, opt);

  std::vector<int64_t> order = baselines::Iota(n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng_->engine());
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t bsz = std::min<int64_t>(config_.batch_size, n - start);
      Tensor batch = baselines::GatherWindows(sequences, order, start, bsz);
      Var recon = Reconstruct(batch);
      Var loss = nn::MseLossV(recon, batch);
      nn::Backward(loss);
      adam.Step();
    }
  }
}

DetectionResult MscredDetector::Run(const Tensor& test) {
  IMDIFF_CHECK(decoder_ != nullptr) << "Fit must be called before Run";
  const int64_t length = test.dim(0);
  std::vector<int64_t> positions;
  Tensor signatures = ComputeSignatures(test, &positions);  // [N, D]
  const int64_t n = signatures.dim(0);
  // Reconstruct the whole signature sequence in chunks of `sequence`.
  std::vector<float> sig_scores(static_cast<size_t>(n), 0.0f);
  for (int64_t start = 0; start < n; start += config_.sequence) {
    const int64_t len = std::min<int64_t>(config_.sequence, n - start);
    Tensor chunk({1, len, signature_dim_});
    std::copy_n(signatures.data() + start * signature_dim_,
                len * signature_dim_, chunk.mutable_data());
    Tensor recon = Reconstruct(chunk).value();
    for (int64_t s = 0; s < len; ++s) {
      float acc = 0.0f;
      for (int64_t d = 0; d < signature_dim_; ++d) {
        const float diff = recon.flat(s * signature_dim_ + d) -
                           chunk.flat(s * signature_dim_ + d);
        acc += diff * diff;
      }
      sig_scores[static_cast<size_t>(start + s)] =
          acc / static_cast<float>(signature_dim_);
    }
  }
  // Upsample signature scores to timestamps: each timestamp takes the score
  // of the nearest signature at or after it.
  DetectionResult result;
  result.scores.assign(static_cast<size_t>(length), 0.0f);
  size_t si = 0;
  for (int64_t t = 0; t < length; ++t) {
    while (si + 1 < positions.size() && positions[si] < t) ++si;
    result.scores[static_cast<size_t>(t)] = sig_scores[si];
  }
  return result;
}

}  // namespace imdiff
