// GDN — Graph Deviation Network (Deng & Hooi, AAAI 2021): learned sensor
// embeddings define a top-k similarity graph; a graph-attention layer
// aggregates neighbour histories to forecast each sensor's next value; the
// anomaly score is the maximum robustly-normalized per-sensor deviation.
//
// Simplification vs the original (DESIGN.md §4): the meta-learning extension
// is omitted; the adjacency is recomputed from the embeddings once per epoch.

#ifndef IMDIFF_BASELINES_GDN_H_
#define IMDIFF_BASELINES_GDN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "nn/layers.h"

namespace imdiff {

struct GdnConfig {
  int64_t history = 20;   // input window per sensor
  int64_t embed_dim = 16;
  int top_k = 5;          // neighbours per sensor
  int epochs = 10;
  int batch_size = 32;
  int64_t train_stride = 2;
  float lr = 1e-3f;
  uint64_t seed = 1;
};

class GdnDetector : public AnomalyDetector {
 public:
  explicit GdnDetector(const GdnConfig& config) : config_(config) {}

  std::string name() const override { return "GDN"; }
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

 private:
  // Forecast next value per sensor for a [B, history+1, K] batch -> [B, K].
  nn::Var ForecastBatch(const Tensor& batch) const;
  // Recomputes the top-k adjacency mask from the current embeddings.
  void RefreshGraph();

  GdnConfig config_;
  int64_t num_features_ = 0;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<nn::Embedding> sensor_embed_;  // [K, E]
  std::unique_ptr<nn::Linear> hist_proj_;        // history -> E
  std::unique_ptr<nn::Mlp> out_mlp_;             // 2E -> 1
  Tensor adjacency_mask_;                        // [K, K]: 0 allowed, -1e9 blocked
  // Robust normalization statistics from the train-forecast residuals.
  std::vector<float> err_median_;
  std::vector<float> err_iqr_;
};

}  // namespace imdiff

#endif  // IMDIFF_BASELINES_GDN_H_
