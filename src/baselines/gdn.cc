#include "baselines/gdn.h"

#include <algorithm>
#include <cmath>

#include "baselines/nn_common.h"
#include "nn/optimizer.h"

namespace imdiff {

using nn::Var;

void GdnDetector::RefreshGraph() {
  const int64_t k = num_features_;
  const Tensor& table = sensor_embed_->Parameters()[0].value();  // [K, E]
  const int64_t e = table.dim(1);
  adjacency_mask_ = Tensor::Full({k, k}, -1e9f);
  const float* pt = table.data();
  float* pm = adjacency_mask_.mutable_data();
  for (int64_t i = 0; i < k; ++i) {
    // Cosine similarity to every other sensor.
    std::vector<std::pair<float, int64_t>> sims;
    double ni = 0.0;
    for (int64_t d = 0; d < e; ++d) ni += static_cast<double>(pt[i * e + d]) * pt[i * e + d];
    ni = std::sqrt(ni) + 1e-9;
    for (int64_t j = 0; j < k; ++j) {
      if (j == i) continue;
      double dot = 0.0, nj = 0.0;
      for (int64_t d = 0; d < e; ++d) {
        dot += static_cast<double>(pt[i * e + d]) * pt[j * e + d];
        nj += static_cast<double>(pt[j * e + d]) * pt[j * e + d];
      }
      nj = std::sqrt(nj) + 1e-9;
      sims.emplace_back(static_cast<float>(dot / (ni * nj)), j);
    }
    std::partial_sort(sims.begin(),
                      sims.begin() + std::min<size_t>(sims.size(),
                                                      static_cast<size_t>(config_.top_k)),
                      sims.end(), std::greater<>());
    const size_t kk = std::min<size_t>(sims.size(), static_cast<size_t>(config_.top_k));
    for (size_t s = 0; s < kk; ++s) {
      pm[i * k + sims[s].second] = 0.0f;
    }
    pm[i * k + i] = 0.0f;  // self loop
  }
}

Var GdnDetector::ForecastBatch(const Tensor& batch) const {
  const int64_t bsz = batch.dim(0);
  const int64_t k = num_features_;
  const int64_t e = config_.embed_dim;
  // Histories per sensor: [B, history, K] -> [B, K, history].
  Tensor hist = Permute(Slice(batch, 1, 0, config_.history), {0, 2, 1});
  Var h = hist_proj_->Forward(Var(std::move(hist)));  // [B, K, E]

  // Attention weights from embeddings, masked to the top-k graph:
  // A = softmax(E E^T + mask) (constant across the batch).
  Var embed = sensor_embed_->Parameters()[0];          // [K, E]
  Var scores = nn::MatMulV(embed, embed, false, true); // [K, K]
  scores = nn::AddConst(scores, adjacency_mask_);
  Var attn = nn::SoftmaxV(scores);                     // [K, K]
  // Broadcast to the batch: [B, K, K] via zero-add.
  Var attn_b = Add(Var(Tensor::Zeros({bsz, k, k})),
                   ReshapeV(attn, {1, k, k}));
  Var z = nn::BatchedMatMulV(attn_b, h);               // [B, K, E]

  // Output MLP on [aggregated, own embedding].
  Var embed_b = Add(Var(Tensor::Zeros({bsz, k, e})), ReshapeV(embed, {1, k, e}));
  Var features = nn::ConcatV({z, embed_b}, 2);         // [B, K, 2E]
  Var out = out_mlp_->Forward(features);               // [B, K, 1]
  return ReshapeV(out, {bsz, k});
}

void GdnDetector::Fit(const Tensor& train) {
  num_features_ = train.dim(1);
  rng_ = std::make_unique<Rng>(config_.seed);
  sensor_embed_ =
      std::make_unique<nn::Embedding>(num_features_, config_.embed_dim, *rng_);
  hist_proj_ =
      std::make_unique<nn::Linear>(config_.history, config_.embed_dim, *rng_);
  out_mlp_ = std::make_unique<nn::Mlp>(2 * config_.embed_dim,
                                       2 * config_.embed_dim, 1, *rng_);

  const int64_t window = config_.history + 1;
  Tensor windows = WindowBatch(train, window, config_.train_stride);
  const int64_t n = windows.dim(0);
  std::vector<Var> params = sensor_embed_->Parameters();
  for (const Var& p : hist_proj_->Parameters()) params.push_back(p);
  for (const Var& p : out_mlp_->Parameters()) params.push_back(p);
  nn::Adam::Options opt;
  opt.lr = config_.lr;
  nn::Adam adam(params, opt);

  std::vector<int64_t> order = baselines::Iota(n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    RefreshGraph();
    std::shuffle(order.begin(), order.end(), rng_->engine());
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t bsz = std::min<int64_t>(config_.batch_size, n - start);
      Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
      Var pred = ForecastBatch(batch);
      Tensor target =
          Slice(batch, 1, config_.history, 1).Reshape({bsz, num_features_});
      Var loss = nn::MseLossV(pred, target);
      nn::Backward(loss);
      adam.Step();
    }
  }
  RefreshGraph();

  // Robust per-sensor residual statistics on the training data (for the
  // max-deviation score).
  err_median_.assign(static_cast<size_t>(num_features_), 0.0f);
  err_iqr_.assign(static_cast<size_t>(num_features_), 1.0f);
  std::vector<std::vector<float>> residuals(
      static_cast<size_t>(num_features_));
  const std::vector<int64_t> order2 = baselines::Iota(n);
  for (int64_t start = 0; start < n; start += 64) {
    const int64_t bsz = std::min<int64_t>(64, n - start);
    Tensor batch = baselines::GatherWindows(windows, order2, start, bsz);
    Tensor pred = ForecastBatch(batch).value();
    Tensor target =
        Slice(batch, 1, config_.history, 1).Reshape({bsz, num_features_});
    for (int64_t b = 0; b < bsz; ++b) {
      for (int64_t j = 0; j < num_features_; ++j) {
        residuals[static_cast<size_t>(j)].push_back(
            std::abs(pred.flat(b * num_features_ + j) -
                     target.flat(b * num_features_ + j)));
      }
    }
  }
  for (int64_t j = 0; j < num_features_; ++j) {
    auto& r = residuals[static_cast<size_t>(j)];
    if (r.empty()) continue;
    std::sort(r.begin(), r.end());
    const auto q = [&](double p) {
      return r[static_cast<size_t>(p * (r.size() - 1))];
    };
    err_median_[static_cast<size_t>(j)] = q(0.5);
    err_iqr_[static_cast<size_t>(j)] = std::max(1e-4f, q(0.75) - q(0.25));
  }
}

DetectionResult GdnDetector::Run(const Tensor& test) {
  IMDIFF_CHECK(out_mlp_ != nullptr) << "Fit must be called before Run";
  const int64_t length = test.dim(0);
  const int64_t window = config_.history + 1;
  DetectionResult result;
  result.scores.assign(static_cast<size_t>(length), 0.0f);
  if (length < window) return result;
  Tensor windows = WindowBatch(test, window, 1);
  const auto starts = WindowStarts(length, window, 1);
  const int64_t n = windows.dim(0);
  const std::vector<int64_t> order = baselines::Iota(n);
  for (int64_t start = 0; start < n; start += 64) {
    const int64_t bsz = std::min<int64_t>(64, n - start);
    Tensor batch = baselines::GatherWindows(windows, order, start, bsz);
    Tensor pred = ForecastBatch(batch).value();
    Tensor target =
        Slice(batch, 1, config_.history, 1).Reshape({bsz, num_features_});
    for (int64_t b = 0; b < bsz; ++b) {
      float max_dev = 0.0f;
      for (int64_t j = 0; j < num_features_; ++j) {
        const float err = std::abs(pred.flat(b * num_features_ + j) -
                                   target.flat(b * num_features_ + j));
        const float dev = (err - err_median_[static_cast<size_t>(j)]) /
                          err_iqr_[static_cast<size_t>(j)];
        max_dev = std::max(max_dev, dev);
      }
      const int64_t pos = starts[static_cast<size_t>(start + b)] + window - 1;
      result.scores[static_cast<size_t>(pos)] = max_dev;
    }
  }
  return result;
}

}  // namespace imdiff
