// BeatGAN (Zhou et al., IJCAI 2019): adversarially regularized convolutional
// autoencoder. The generator reconstructs windows; a discriminator pushes the
// reconstructions toward the data manifold. The anomaly score is the
// per-timestep reconstruction error.

#ifndef IMDIFF_BASELINES_BEATGAN_H_
#define IMDIFF_BASELINES_BEATGAN_H_

#include <memory>
#include <string>

#include "core/detector.h"
#include "nn/layers.h"

namespace imdiff {

struct BeatGanConfig {
  int64_t window = 50;
  int64_t channels = 16;     // conv width
  int64_t bottleneck = 8;
  float adv_weight = 0.1f;   // generator adversarial loss weight
  int epochs = 10;
  int batch_size = 16;
  int64_t train_stride = 10;
  float lr = 1e-3f;
  uint64_t seed = 1;
};

class BeatGanDetector : public AnomalyDetector {
 public:
  explicit BeatGanDetector(const BeatGanConfig& config) : config_(config) {}

  std::string name() const override { return "BeatGAN"; }
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

 private:
  // batch [B, W, K] -> reconstruction [B, W, K].
  nn::Var Generate(const Tensor& batch) const;
  // batch-var [B, W, K] -> discriminator logits [B, 1].
  nn::Var Discriminate(const nn::Var& x) const;

  BeatGanConfig config_;
  int64_t num_features_ = 0;
  std::unique_ptr<Rng> rng_;
  // Generator: conv encoder-decoder over [B, K, W].
  std::unique_ptr<nn::Conv1dLayer> enc1_;
  std::unique_ptr<nn::Conv1dLayer> enc2_;
  std::unique_ptr<nn::Conv1dLayer> dec1_;
  std::unique_ptr<nn::Conv1dLayer> dec2_;
  // Discriminator.
  std::unique_ptr<nn::Conv1dLayer> d1_;
  std::unique_ptr<nn::Conv1dLayer> d2_;
  std::unique_ptr<nn::Linear> d_head_;
};

}  // namespace imdiff

#endif  // IMDIFF_BASELINES_BEATGAN_H_
