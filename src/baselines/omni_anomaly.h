// OmniAnomaly (Su et al., KDD 2019): GRU + VAE with per-timestep stochastic
// latents; the reconstruction error of the test window is the anomaly score
// and POT selects the operating threshold.
//
// Simplification vs the original (see DESIGN.md §4): planar normalizing flows
// and the linear Gaussian state-space connection are omitted; the GRU-VAE
// backbone and POT thresholding are kept.

#ifndef IMDIFF_BASELINES_OMNI_ANOMALY_H_
#define IMDIFF_BASELINES_OMNI_ANOMALY_H_

#include <memory>
#include <string>

#include "core/detector.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace imdiff {

struct OmniAnomalyConfig {
  int64_t window = 50;
  int64_t hidden = 32;
  int64_t latent = 8;
  float kl_weight = 0.05f;
  int epochs = 10;
  int batch_size = 16;
  int64_t train_stride = 10;
  float lr = 1e-3f;
  uint64_t seed = 1;
};

class OmniAnomalyDetector : public AnomalyDetector {
 public:
  explicit OmniAnomalyDetector(const OmniAnomalyConfig& config)
      : config_(config) {}

  std::string name() const override { return "OmniAnomaly"; }
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

 private:
  // Reconstruction of a [B, W, K] batch; outputs xhat plus latent stats.
  nn::Var Reconstruct(const Tensor& batch, nn::Var* mu, nn::Var* logvar) const;

  OmniAnomalyConfig config_;
  int64_t num_features_ = 0;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<nn::GruCell> encoder_;
  std::unique_ptr<nn::Linear> mu_head_;
  std::unique_ptr<nn::Linear> logvar_head_;
  std::unique_ptr<nn::GruCell> decoder_;
  std::unique_ptr<nn::Linear> out_head_;
};

}  // namespace imdiff

#endif  // IMDIFF_BASELINES_OMNI_ANOMALY_H_
