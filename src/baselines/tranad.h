// TranAD (Tuli et al., VLDB 2022): transformer encoder with two decoders and
// adversarial self-conditioning. Phase 1 reconstructs the window; its squared
// error becomes the focus score fed back as conditioning for phase 2. The
// training loss anneals between the two reconstructions; the anomaly score is
// the mean of both phases' errors.

#ifndef IMDIFF_BASELINES_TRANAD_H_
#define IMDIFF_BASELINES_TRANAD_H_

#include <memory>
#include <string>

#include "core/detector.h"
#include "nn/attention.h"

namespace imdiff {

struct TranAdConfig {
  int64_t window = 30;
  int64_t d_model = 32;
  int num_layers = 2;
  int num_heads = 4;
  float epsilon = 0.9f;  // annealing base for the phase weights
  int epochs = 10;
  int batch_size = 16;
  int64_t train_stride = 5;
  float lr = 1e-3f;
  uint64_t seed = 1;
};

class TranAdDetector : public AnomalyDetector {
 public:
  explicit TranAdDetector(const TranAdConfig& config) : config_(config) {}

  std::string name() const override { return "TranAD"; }
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

 private:
  // Encodes [x ; focus] and decodes with the given decoder head.
  nn::Var Encode(const Tensor& batch, const Tensor& focus) const;
  nn::Var Phase1(const Tensor& batch) const;
  nn::Var Phase2(const Tensor& batch, const Tensor& focus) const;

  TranAdConfig config_;
  int64_t num_features_ = 0;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<nn::Linear> input_proj_;  // 2K -> d
  Tensor pos_embed_;                        // [W, d] sinusoidal constant
  std::unique_ptr<nn::TransformerEncoderLayer> layer1_;
  std::unique_ptr<nn::TransformerEncoderLayer> layer2_;
  std::unique_ptr<nn::Linear> decoder1_;    // d -> K
  std::unique_ptr<nn::Linear> decoder2_;    // d -> K
};

}  // namespace imdiff

#endif  // IMDIFF_BASELINES_TRANAD_H_
