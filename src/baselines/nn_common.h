// Shared helpers for the neural-network baseline detectors.

#ifndef IMDIFF_BASELINES_NN_COMMON_H_
#define IMDIFF_BASELINES_NN_COMMON_H_

#include <numeric>
#include <vector>

#include "data/windowing.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace imdiff {
namespace baselines {

// Gathers windows[order[start .. start+bsz)] into a contiguous batch.
inline Tensor GatherWindows(const Tensor& windows,
                            const std::vector<int64_t>& order, int64_t start,
                            int64_t bsz) {
  const int64_t per = windows.dim(1) * windows.dim(2);
  Tensor out({bsz, windows.dim(1), windows.dim(2)});
  for (int64_t b = 0; b < bsz; ++b) {
    std::copy_n(windows.data() + order[static_cast<size_t>(start + b)] * per,
                per, out.mutable_data() + b * per);
  }
  return out;
}

// Identity order [0, n).
inline std::vector<int64_t> Iota(int64_t n) {
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

// Mean squared error over the feature axis for each (window, timestep):
// pred/target are [B, W, K]; result[b][w] = mean_k (pred - target)^2.
inline std::vector<std::vector<float>> PerStepError(const Tensor& pred,
                                                    const Tensor& target) {
  const int64_t batch = pred.dim(0);
  const int64_t window = pred.dim(1);
  const int64_t k = pred.dim(2);
  std::vector<std::vector<float>> out(
      static_cast<size_t>(batch),
      std::vector<float>(static_cast<size_t>(window), 0.0f));
  const float* pp = pred.data();
  const float* pt = target.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t w = 0; w < window; ++w) {
      float acc = 0.0f;
      const int64_t off = (b * window + w) * k;
      for (int64_t j = 0; j < k; ++j) {
        const float d = pp[off + j] - pt[off + j];
        acc += d * d;
      }
      out[static_cast<size_t>(b)][static_cast<size_t>(w)] =
          acc / static_cast<float>(k);
    }
  }
  return out;
}

}  // namespace baselines
}  // namespace imdiff

#endif  // IMDIFF_BASELINES_NN_COMMON_H_
