#include "metrics/range_auc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "utils/check.h"

namespace imdiff {

std::vector<double> SoftenLabels(const std::vector<uint8_t>& labels,
                                 int64_t buffer) {
  const int64_t n = static_cast<int64_t>(labels.size());
  std::vector<double> soft(labels.size(), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    if (labels[static_cast<size_t>(i)] != 0) soft[static_cast<size_t>(i)] = 1.0;
  }
  if (buffer <= 0) return soft;
  // For each point outside segments, soft value decays with distance to the
  // nearest segment: sqrt(1 - d/buffer).
  // Forward pass for distance-to-previous-anomaly, backward for next.
  std::vector<int64_t> dist(labels.size(), buffer + 1);
  int64_t last = -(buffer + 1);
  for (int64_t i = 0; i < n; ++i) {
    if (labels[static_cast<size_t>(i)] != 0) last = i;
    dist[static_cast<size_t>(i)] = std::min(dist[static_cast<size_t>(i)], i - last);
  }
  last = n + buffer + 1;
  for (int64_t i = n - 1; i >= 0; --i) {
    if (labels[static_cast<size_t>(i)] != 0) last = i;
    dist[static_cast<size_t>(i)] = std::min(dist[static_cast<size_t>(i)], last - i);
  }
  for (int64_t i = 0; i < n; ++i) {
    if (labels[static_cast<size_t>(i)] != 0) continue;
    const int64_t d = dist[static_cast<size_t>(i)];
    if (d <= buffer) {
      soft[static_cast<size_t>(i)] =
          std::sqrt(1.0 - static_cast<double>(d) / static_cast<double>(buffer + 1));
    }
  }
  return soft;
}

namespace {

// Shared sweep: sorts by descending score and walks thresholds, yielding the
// cumulative positive mass (soft labels) and negative mass above each cut.
struct SweepPoint {
  double pos_mass;  // sum of soft labels with score >= threshold
  double neg_mass;  // sum of (1 - soft) with score >= threshold
  double count;     // number of points above threshold
};

std::vector<SweepPoint> Sweep(const std::vector<float>& scores,
                              const std::vector<double>& soft) {
  IMDIFF_CHECK_EQ(scores.size(), soft.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  std::vector<SweepPoint> points;
  points.reserve(scores.size() + 1);
  points.push_back({0.0, 0.0, 0.0});
  double pos = 0.0, neg = 0.0, count = 0.0;
  for (size_t idx = 0; idx < order.size(); ++idx) {
    const size_t i = order[idx];
    pos += soft[i];
    neg += 1.0 - soft[i];
    count += 1.0;
    // Only emit at distinct-score boundaries (ties handled jointly).
    if (idx + 1 == order.size() ||
        scores[order[idx + 1]] != scores[order[idx]]) {
      points.push_back({pos, neg, count});
    }
  }
  return points;
}

}  // namespace

double RangeAucRoc(const std::vector<float>& scores,
                   const std::vector<uint8_t>& labels, int64_t buffer) {
  IMDIFF_CHECK_EQ(scores.size(), labels.size());
  const std::vector<double> soft = SoftenLabels(labels, buffer);
  const auto points = Sweep(scores, soft);
  const double total_pos = points.back().pos_mass;
  const double total_neg = points.back().neg_mass;
  if (total_pos <= 0.0 || total_neg <= 0.0) return 0.0;
  double auc = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    const double tpr0 = points[i - 1].pos_mass / total_pos;
    const double tpr1 = points[i].pos_mass / total_pos;
    const double fpr0 = points[i - 1].neg_mass / total_neg;
    const double fpr1 = points[i].neg_mass / total_neg;
    auc += (fpr1 - fpr0) * 0.5 * (tpr0 + tpr1);
  }
  return auc;
}

double RangeAucPr(const std::vector<float>& scores,
                  const std::vector<uint8_t>& labels, int64_t buffer) {
  IMDIFF_CHECK_EQ(scores.size(), labels.size());
  const std::vector<double> soft = SoftenLabels(labels, buffer);
  const auto points = Sweep(scores, soft);
  const double total_pos = points.back().pos_mass;
  if (total_pos <= 0.0) return 0.0;
  // Trapezoidal integration of precision over recall.
  double auc = 0.0;
  double prev_recall = 0.0;
  double prev_precision = 1.0;
  for (size_t i = 1; i < points.size(); ++i) {
    const double recall = points[i].pos_mass / total_pos;
    const double precision =
        points[i].count > 0.0 ? points[i].pos_mass / points[i].count : 1.0;
    auc += (recall - prev_recall) * 0.5 * (precision + prev_precision);
    prev_recall = recall;
    prev_precision = precision;
  }
  return auc;
}

}  // namespace imdiff
