// Nonparametric dynamic thresholding (Hundman et al., KDD 2018).
//
// The paper (§5.2.1) names this as the remedy for the fixed-threshold
// precision loss it observes on SWaT/SMAP: instead of one global threshold,
// each sliding history window picks the smallest threshold μ + zσ (z from a
// candidate grid) that maximizes the normalized reduction in mean/std once
// the flagged points are removed, penalized by the number of flagged points
// and contiguous flagged sequences.

#ifndef IMDIFF_METRICS_DYNAMIC_THRESHOLD_H_
#define IMDIFF_METRICS_DYNAMIC_THRESHOLD_H_

#include <cstdint>
#include <vector>

namespace imdiff {

struct DynamicThresholdConfig {
  // History window the statistics are computed over.
  int64_t window = 400;
  // Hop between re-evaluations of the threshold.
  int64_t stride = 100;
  // Candidate z values for μ + zσ.
  std::vector<float> z_candidates = {2.0f, 2.5f, 3.0f, 3.5f, 4.0f,
                                     5.0f, 6.0f, 8.0f, 10.0f};
};

// Returns the per-timestamp binary decision for `scores` under dynamic
// thresholding. Each position is decided by the window covering it (the most
// recent window for the tail).
std::vector<uint8_t> DynamicThreshold(const std::vector<float>& scores,
                                      const DynamicThresholdConfig& config);

// The threshold selected for a single score window; exposed for testing.
float SelectWindowThreshold(const std::vector<float>& window_scores,
                            const std::vector<float>& z_candidates);

}  // namespace imdiff

#endif  // IMDIFF_METRICS_DYNAMIC_THRESHOLD_H_
