// Streaming score-distribution drift statistics for the continuous-refresh
// loop (DESIGN.md §18).
//
// The refresh trainer dual-scores a seeded fraction of traffic against a
// shadow model and must decide — deterministically, from bounded state —
// whether the live and shadow score distributions differ enough to promote
// the shadow. The primitives here are:
//
//  - QuantileSketch: a Greenwald-Khanna streaming quantile summary. Memory is
//    O(1/eps · log(eps·n)); any quantile query is answered within eps·n rank
//    error. Everything is deterministic in the insertion sequence (no
//    randomized sampling), so two replays that feed the same scores in the
//    same order produce bitwise-identical summaries — the property the
//    promotion-determinism CI gate relies on.
//  - Psi / KsDistance: population stability index and Kolmogorov-Smirnov
//    distance between two sketches, the drift verdict's distance measures.
//  - AlertAgreement: paired live-vs-shadow block-alert agreement counts.

#ifndef IMDIFF_METRICS_DRIFT_H_
#define IMDIFF_METRICS_DRIFT_H_

#include <cstdint>
#include <vector>

namespace imdiff {

// Greenwald-Khanna quantile sketch. Add() is amortized O(size); Quantile()
// and Rank() are O(size). Not thread-safe (callers hold their own lock).
class QuantileSketch {
 public:
  // `epsilon` bounds the rank error of every query to epsilon * count().
  explicit QuantileSketch(double epsilon = 0.01);

  void Add(double value);

  // Value whose rank is within epsilon * count() of q * count(). Requires
  // count() > 0. q is clamped to [0, 1].
  double Quantile(double q) const;

  // Estimated number of inserted values <= `value`, within epsilon * count().
  double Rank(double value) const;

  // Empirical CDF at `value`: Rank(value) / count(); 0 when empty.
  double Cdf(double value) const;

  int64_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  // Mean of every inserted value (exact, not sketched); 0 when empty.
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  void Reset();

 private:
  struct Entry {
    double value = 0.0;
    int64_t g = 0;      // rmin(i) - rmin(i-1)
    int64_t delta = 0;  // rmax(i) - rmin(i)
  };

  void Compress();

  double epsilon_;
  int64_t count_ = 0;
  int64_t since_compress_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::vector<Entry> entries_;  // sorted by value
};

// Population stability index of `actual` against `expected` over `bins`
// equal-mass bins of the expected distribution: sum (a_i - e_i) * ln(a_i /
// e_i) with fractions floored at 1e-6. ~0 for matching distributions; common
// practice reads >= 0.25 as a material shift. Returns 0 when either sketch is
// empty.
double Psi(const QuantileSketch& expected, const QuantileSketch& actual,
           int bins = 10);

// Kolmogorov-Smirnov distance: max |CDF_a - CDF_b| evaluated on a merged
// grid of `resolution` quantiles from each sketch. Returns 0 when either is
// empty.
double KsDistance(const QuantileSketch& a, const QuantileSketch& b,
                  int resolution = 64);

// Paired block-alert agreement between the live and shadow model. A pair
// with no alert on either side counts as agreement — on an all-normal stream
// two models that both stay silent agree perfectly (Rate() == 1), which is
// the zero-alert edge case the verdict must not misread as divergence.
struct AlertAgreement {
  int64_t both = 0;
  int64_t live_only = 0;
  int64_t shadow_only = 0;
  int64_t neither = 0;

  void Record(bool live_alert, bool shadow_alert);
  int64_t pairs() const { return both + live_only + shadow_only + neither; }
  // Agreeing fraction; 1.0 with no pairs yet (no evidence of divergence).
  double Rate() const;
  void Reset() { *this = AlertAgreement(); }
};

}  // namespace imdiff

#endif  // IMDIFF_METRICS_DRIFT_H_
