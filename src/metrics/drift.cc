#include "metrics/drift.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"

namespace imdiff {

QuantileSketch::QuantileSketch(double epsilon) : epsilon_(epsilon) {
  IMDIFF_CHECK_GT(epsilon, 0.0);
  IMDIFF_CHECK_LT(epsilon, 0.5);
}

void QuantileSketch::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;

  // Insert before the first entry with a larger value, keeping entries_
  // sorted. New interior tuples get delta = floor(2 eps n) - 1 (the loosest
  // allowed uncertainty); boundary tuples are exact (delta = 0).
  const int64_t band = static_cast<int64_t>(2.0 * epsilon_ * count_);
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), value,
      [](double v, const Entry& e) { return v < e.value; });
  Entry entry;
  entry.value = value;
  entry.g = 1;
  entry.delta =
      (it == entries_.begin() || it == entries_.end()) ? 0 : std::max<int64_t>(band - 1, 0);
  entries_.insert(it, entry);
  ++count_;

  if (++since_compress_ >= static_cast<int64_t>(1.0 / (2.0 * epsilon_))) {
    Compress();
    since_compress_ = 0;
  }
}

void QuantileSketch::Compress() {
  if (entries_.size() < 3) return;
  const int64_t band = static_cast<int64_t>(2.0 * epsilon_ * count_);
  // Merge neighbors back-to-front; the last entry is never absorbed so max()
  // queries stay exact.
  std::vector<Entry> out;
  out.reserve(entries_.size());
  out.push_back(entries_.back());
  for (size_t idx = entries_.size() - 1; idx-- > 0;) {
    Entry& prev = out.back();
    const Entry& cur = entries_[idx];
    if (idx > 0 && cur.g + prev.g + prev.delta <= band) {
      prev.g += cur.g;  // absorb cur into its successor
    } else {
      out.push_back(cur);
    }
  }
  std::reverse(out.begin(), out.end());
  entries_ = std::move(out);
}

double QuantileSketch::Quantile(double q) const {
  IMDIFF_CHECK_GT(count_, 0) << "quantile of an empty sketch";
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count_);
  // Pick the entry whose rank interval midpoint is closest to the target;
  // the g + delta <= 2 eps n invariant bounds the error to eps n.
  double best_value = entries_.front().value;
  double best_error = -1.0;
  int64_t rmin = 0;
  for (const Entry& e : entries_) {
    rmin += e.g;
    const double mid = static_cast<double>(rmin) + static_cast<double>(e.delta) / 2.0;
    const double error = std::abs(mid - target);
    if (best_error < 0.0 || error < best_error) {
      best_error = error;
      best_value = e.value;
    }
  }
  return best_value;
}

double QuantileSketch::Rank(double value) const {
  if (count_ == 0) return 0.0;
  if (value < min_) return 0.0;
  if (value >= max_) return static_cast<double>(count_);
  // Midpoint rank of the largest entry with value <= `value`.
  int64_t rmin = 0;
  double rank = 0.0;
  for (const Entry& e : entries_) {
    if (e.value > value) break;
    rmin += e.g;
    rank = static_cast<double>(rmin) + static_cast<double>(e.delta) / 2.0;
  }
  return rank;
}

double QuantileSketch::Cdf(double value) const {
  return count_ == 0 ? 0.0 : Rank(value) / static_cast<double>(count_);
}

void QuantileSketch::Reset() {
  count_ = 0;
  since_compress_ = 0;
  min_ = max_ = sum_ = 0.0;
  entries_.clear();
}

double Psi(const QuantileSketch& expected, const QuantileSketch& actual,
           int bins) {
  IMDIFF_CHECK_GT(bins, 1);
  if (expected.count() == 0 || actual.count() == 0) return 0.0;
  constexpr double kFloor = 1e-6;
  double psi = 0.0;
  double prev_edge_cdf = 0.0;
  for (int i = 1; i <= bins; ++i) {
    // Equal-mass bins of the expected distribution; the i-th bin's expected
    // fraction is exactly 1/bins by construction.
    const double edge_cdf =
        i == bins ? 1.0
                  : actual.Cdf(expected.Quantile(static_cast<double>(i) / bins));
    const double e = 1.0 / static_cast<double>(bins);
    const double a =
        std::max(kFloor, std::max(0.0, edge_cdf - prev_edge_cdf));
    prev_edge_cdf = std::max(prev_edge_cdf, edge_cdf);
    psi += (a - e) * std::log(a / e);
  }
  return psi;
}

double KsDistance(const QuantileSketch& a, const QuantileSketch& b,
                  int resolution) {
  IMDIFF_CHECK_GT(resolution, 1);
  if (a.count() == 0 || b.count() == 0) return 0.0;
  double ks = 0.0;
  for (int i = 0; i <= resolution; ++i) {
    const double q = static_cast<double>(i) / resolution;
    const double va = a.Quantile(q);
    const double vb = b.Quantile(q);
    ks = std::max(ks, std::abs(a.Cdf(va) - b.Cdf(va)));
    ks = std::max(ks, std::abs(a.Cdf(vb) - b.Cdf(vb)));
  }
  return ks;
}

void AlertAgreement::Record(bool live_alert, bool shadow_alert) {
  if (live_alert && shadow_alert) {
    ++both;
  } else if (live_alert) {
    ++live_only;
  } else if (shadow_alert) {
    ++shadow_only;
  } else {
    ++neither;
  }
}

double AlertAgreement::Rate() const {
  const int64_t total = pairs();
  if (total == 0) return 1.0;
  return static_cast<double>(both + neither) / static_cast<double>(total);
}

}  // namespace imdiff
