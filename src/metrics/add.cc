#include "metrics/add.h"

#include "data/dataset.h"
#include "utils/check.h"

namespace imdiff {

double AverageDetectionDelay(const std::vector<uint8_t>& labels,
                             const std::vector<uint8_t>& predictions) {
  IMDIFF_CHECK_EQ(labels.size(), predictions.size());
  const int64_t n = static_cast<int64_t>(labels.size());
  const auto segments = FindSegments(labels);
  if (segments.empty()) return 0.0;
  double total = 0.0;
  for (const AnomalySegment& seg : segments) {
    int64_t delay = n - seg.start;  // penalty when never detected
    for (int64_t t = seg.start; t < n; ++t) {
      if (predictions[static_cast<size_t>(t)] != 0) {
        delay = t - seg.start;
        break;
      }
    }
    total += static_cast<double>(delay);
  }
  return total / static_cast<double>(segments.size());
}

}  // namespace imdiff
