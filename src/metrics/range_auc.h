// Range-based, threshold-independent accuracy (Paparrizos et al., VLDB 2022,
// "Volume Under the Surface").
//
// Binary labels are first softened with continuous buffer regions of width
// `buffer` around every anomalous segment (sqrt-decaying ramp), then AUC-ROC
// and AUC-PR are computed on the soft labels, rewarding detections near the
// true range without requiring a threshold choice.

#ifndef IMDIFF_METRICS_RANGE_AUC_H_
#define IMDIFF_METRICS_RANGE_AUC_H_

#include <cstdint>
#include <vector>

namespace imdiff {

// Soft label curve in [0,1]: 1 inside segments, sqrt ramp over `buffer` steps
// on each side, 0 elsewhere.
std::vector<double> SoftenLabels(const std::vector<uint8_t>& labels,
                                 int64_t buffer);

// Range AUC-ROC on the softened labels.
double RangeAucRoc(const std::vector<float>& scores,
                   const std::vector<uint8_t>& labels, int64_t buffer = 20);

// Range AUC-PR on the softened labels (the paper's R-AUC-PR columns).
double RangeAucPr(const std::vector<float>& scores,
                  const std::vector<uint8_t>& labels, int64_t buffer = 20);

}  // namespace imdiff

#endif  // IMDIFF_METRICS_RANGE_AUC_H_
