#include "metrics/dynamic_threshold.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"

namespace imdiff {
namespace {

struct MeanStd {
  double mean = 0.0;
  double std_dev = 0.0;
};

MeanStd ComputeMeanStd(const std::vector<float>& values) {
  MeanStd out;
  if (values.empty()) return out;
  for (float v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (float v : values) {
    var += (v - out.mean) * (v - out.mean);
  }
  out.std_dev = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

}  // namespace

float SelectWindowThreshold(const std::vector<float>& window_scores,
                            const std::vector<float>& z_candidates) {
  IMDIFF_CHECK(!window_scores.empty());
  IMDIFF_CHECK(!z_candidates.empty());
  const MeanStd base = ComputeMeanStd(window_scores);
  if (base.std_dev < 1e-12) {
    // Constant scores: nothing is anomalous; return an unreachable threshold.
    return static_cast<float>(base.mean) + 1.0f;
  }
  double best_objective = -1.0;
  float best_threshold =
      static_cast<float>(base.mean + z_candidates.back() * base.std_dev);
  for (float z : z_candidates) {
    const float threshold = static_cast<float>(base.mean + z * base.std_dev);
    // Partition scores and count flagged points / contiguous sequences.
    std::vector<float> kept;
    kept.reserve(window_scores.size());
    int64_t flagged = 0;
    int64_t sequences = 0;
    bool in_sequence = false;
    for (float v : window_scores) {
      if (v >= threshold) {
        ++flagged;
        if (!in_sequence) {
          ++sequences;
          in_sequence = true;
        }
      } else {
        kept.push_back(v);
        in_sequence = false;
      }
    }
    if (flagged == 0 || kept.empty()) continue;
    const MeanStd pruned = ComputeMeanStd(kept);
    const double delta_mean = (base.mean - pruned.mean) / std::max(base.mean, 1e-12);
    const double delta_std =
        (base.std_dev - pruned.std_dev) / std::max(base.std_dev, 1e-12);
    const double objective =
        (delta_mean + delta_std) /
        (static_cast<double>(flagged) +
         static_cast<double>(sequences) * static_cast<double>(sequences));
    if (objective > best_objective) {
      best_objective = objective;
      best_threshold = threshold;
    }
  }
  return best_threshold;
}

std::vector<uint8_t> DynamicThreshold(const std::vector<float>& scores,
                                      const DynamicThresholdConfig& config) {
  const int64_t n = static_cast<int64_t>(scores.size());
  std::vector<uint8_t> out(scores.size(), 0);
  if (n == 0) return out;
  const int64_t window = std::min<int64_t>(config.window, n);
  IMDIFF_CHECK_GT(window, 0);
  const int64_t stride = std::max<int64_t>(1, config.stride);
  for (int64_t start = 0; start < n; start += stride) {
    // History window ending at the current evaluation block.
    const int64_t hist_begin = std::max<int64_t>(0, start + stride - window);
    const int64_t hist_end = std::min(n, start + stride);
    std::vector<float> history(scores.begin() + hist_begin,
                               scores.begin() + hist_end);
    const float threshold =
        SelectWindowThreshold(history, config.z_candidates);
    const int64_t block_end = std::min(n, start + stride);
    for (int64_t t = start; t < block_end; ++t) {
      if (scores[static_cast<size_t>(t)] >= threshold) {
        out[static_cast<size_t>(t)] = 1;
      }
    }
  }
  return out;
}

}  // namespace imdiff
