// Peaks-Over-Threshold (POT) thresholding via extreme value theory
// (Siffer et al., KDD 2017), as used by OmniAnomaly for automatic threshold
// selection. Exceedances over an initial high quantile are fit with a
// Generalized Pareto Distribution; the final threshold targets a risk level q.

#ifndef IMDIFF_METRICS_POT_H_
#define IMDIFF_METRICS_POT_H_

#include <vector>

namespace imdiff {

struct PotConfig {
  double initial_quantile = 0.98;  // u = this quantile of the scores
  double risk = 1e-3;              // target exceedance probability
};

// Returns the POT threshold for `scores`. Falls back to the initial quantile
// when the GPD fit is degenerate (too few exceedances or zero variance).
float PotThreshold(const std::vector<float>& scores, const PotConfig& config);

// Method-of-moments GPD fit on exceedances (y > 0): returns {shape γ,
// scale σ}; used internally and exposed for testing.
struct GpdFit {
  double shape = 0.0;
  double scale = 1.0;
  bool valid = false;
};
GpdFit FitGpdMoments(const std::vector<float>& exceedances);

}  // namespace imdiff

#endif  // IMDIFF_METRICS_POT_H_
