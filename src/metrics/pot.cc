#include "metrics/pot.h"

#include <algorithm>
#include <cmath>

#include "metrics/classification.h"
#include "utils/check.h"

namespace imdiff {

GpdFit FitGpdMoments(const std::vector<float>& exceedances) {
  GpdFit fit;
  if (exceedances.size() < 8) return fit;
  double mean = 0.0;
  for (float v : exceedances) mean += v;
  mean /= static_cast<double>(exceedances.size());
  double var = 0.0;
  for (float v : exceedances) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(exceedances.size());
  if (mean <= 0.0 || var <= 1e-12) return fit;
  // Method of moments for GPD: shape = 0.5 (1 - mean^2/var),
  // scale = 0.5 mean (mean^2/var + 1).
  const double ratio = mean * mean / var;
  fit.shape = 0.5 * (1.0 - ratio);
  fit.scale = 0.5 * mean * (ratio + 1.0);
  fit.valid = fit.scale > 0.0;
  return fit;
}

float PotThreshold(const std::vector<float>& scores, const PotConfig& config) {
  IMDIFF_CHECK(!scores.empty());
  const float u = Quantile(scores, config.initial_quantile);
  std::vector<float> exceedances;
  for (float s : scores) {
    if (s > u) exceedances.push_back(s - u);
  }
  const GpdFit fit = FitGpdMoments(exceedances);
  if (!fit.valid) return u;
  const double n = static_cast<double>(scores.size());
  const double nu = static_cast<double>(exceedances.size());
  const double arg = config.risk * n / nu;
  double threshold;
  if (std::abs(fit.shape) < 1e-6) {
    // γ -> 0 limit: exponential tail.
    threshold = u - fit.scale * std::log(arg);
  } else {
    threshold = u + fit.scale / fit.shape * (std::pow(arg, -fit.shape) - 1.0);
  }
  // Keep the threshold within the observed score range neighbourhood.
  const float max_score = *std::max_element(scores.begin(), scores.end());
  return std::min(static_cast<float>(threshold), max_score * 1.5f);
}

}  // namespace imdiff
