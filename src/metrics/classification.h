// Point-wise anomaly-detection accuracy metrics with the point-adjustment
// protocol used throughout the MTS anomaly detection literature (Su et al.
// 2019): if any timestamp inside a true anomalous segment is flagged, the
// whole segment counts as detected.

#ifndef IMDIFF_METRICS_CLASSIFICATION_H_
#define IMDIFF_METRICS_CLASSIFICATION_H_

#include <cstdint>
#include <vector>

namespace imdiff {

struct BinaryMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
};

// Plain point-wise metrics.
BinaryMetrics ComputeMetrics(const std::vector<uint8_t>& labels,
                             const std::vector<uint8_t>& predictions);

// Expands predictions with the point-adjust protocol: any hit inside a true
// segment marks the entire segment as predicted.
std::vector<uint8_t> PointAdjust(const std::vector<uint8_t>& labels,
                                 const std::vector<uint8_t>& predictions);

// Point-adjusted metrics (the Table 2/3 protocol).
BinaryMetrics ComputeAdjustedMetrics(const std::vector<uint8_t>& labels,
                                     const std::vector<uint8_t>& predictions);

// Thresholds scores at `threshold` (>= is anomalous).
std::vector<uint8_t> ThresholdScores(const std::vector<float>& scores,
                                     float threshold);

// Grid-searches a threshold over score quantiles and returns the one
// maximizing point-adjusted F1 (the protocol the baselines' papers use when
// no threshold rule is given). Outputs the metrics at the best threshold.
float BestF1Threshold(const std::vector<float>& scores,
                      const std::vector<uint8_t>& labels, int num_candidates,
                      BinaryMetrics* best_metrics);

// q-th quantile (0..1) of a score vector (linear interpolation).
float Quantile(std::vector<float> values, double q);

}  // namespace imdiff

#endif  // IMDIFF_METRICS_CLASSIFICATION_H_
