#include "metrics/classification.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"

namespace imdiff {

BinaryMetrics ComputeMetrics(const std::vector<uint8_t>& labels,
                             const std::vector<uint8_t>& predictions) {
  IMDIFF_CHECK_EQ(labels.size(), predictions.size());
  BinaryMetrics m;
  for (size_t i = 0; i < labels.size(); ++i) {
    const bool truth = labels[i] != 0;
    const bool pred = predictions[i] != 0;
    if (truth && pred) ++m.tp;
    if (!truth && pred) ++m.fp;
    if (truth && !pred) ++m.fn;
  }
  m.precision = m.tp + m.fp > 0
                    ? static_cast<double>(m.tp) / static_cast<double>(m.tp + m.fp)
                    : 0.0;
  m.recall = m.tp + m.fn > 0
                 ? static_cast<double>(m.tp) / static_cast<double>(m.tp + m.fn)
                 : 0.0;
  m.f1 = m.precision + m.recall > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

std::vector<uint8_t> PointAdjust(const std::vector<uint8_t>& labels,
                                 const std::vector<uint8_t>& predictions) {
  IMDIFF_CHECK_EQ(labels.size(), predictions.size());
  std::vector<uint8_t> adjusted = predictions;
  const size_t n = labels.size();
  size_t i = 0;
  while (i < n) {
    if (labels[i] == 0) {
      ++i;
      continue;
    }
    size_t j = i;
    bool hit = false;
    while (j < n && labels[j] != 0) {
      hit = hit || predictions[j] != 0;
      ++j;
    }
    if (hit) {
      for (size_t t = i; t < j; ++t) adjusted[t] = 1;
    }
    i = j;
  }
  return adjusted;
}

BinaryMetrics ComputeAdjustedMetrics(const std::vector<uint8_t>& labels,
                                     const std::vector<uint8_t>& predictions) {
  return ComputeMetrics(labels, PointAdjust(labels, predictions));
}

std::vector<uint8_t> ThresholdScores(const std::vector<float>& scores,
                                     float threshold) {
  std::vector<uint8_t> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i] = scores[i] >= threshold ? 1 : 0;
  }
  return out;
}

float Quantile(std::vector<float> values, double q) {
  IMDIFF_CHECK(!values.empty());
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return static_cast<float>(values[lo] * (1.0 - frac) + values[hi] * frac);
}

float BestF1Threshold(const std::vector<float>& scores,
                      const std::vector<uint8_t>& labels, int num_candidates,
                      BinaryMetrics* best_metrics) {
  IMDIFF_CHECK_EQ(scores.size(), labels.size());
  IMDIFF_CHECK_GT(num_candidates, 1);
  float best_threshold = 0.0f;
  BinaryMetrics best;
  best.f1 = -1.0;
  for (int c = 0; c < num_candidates; ++c) {
    // Sweep the upper score range, where anomaly thresholds live.
    const double q = 0.5 + 0.5 * static_cast<double>(c) / (num_candidates - 1);
    const float threshold = Quantile(scores, q);
    const BinaryMetrics m =
        ComputeAdjustedMetrics(labels, ThresholdScores(scores, threshold));
    if (m.f1 > best.f1) {
      best = m;
      best_threshold = threshold;
    }
  }
  if (best_metrics != nullptr) *best_metrics = best;
  return best_threshold;
}

}  // namespace imdiff
