// Average (Sequence) Detection Delay — ADD (Doshi et al., IJCNN 2022; Eq. 13
// of the paper). For each true anomalous event starting at ρ_i, the delay is
// the gap until the first alarm at or after ρ_i; undetected events are
// penalized with the remaining sequence length.

#ifndef IMDIFF_METRICS_ADD_H_
#define IMDIFF_METRICS_ADD_H_

#include <cstdint>
#include <vector>

namespace imdiff {

// Mean detection delay over all anomalous events. Returns 0 when the label
// vector contains no events.
double AverageDetectionDelay(const std::vector<uint8_t>& labels,
                             const std::vector<uint8_t>& predictions);

}  // namespace imdiff

#endif  // IMDIFF_METRICS_ADD_H_
