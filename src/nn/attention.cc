#include "nn/attention.h"

#include <cmath>

namespace imdiff {
namespace nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t d_model,
                                               int64_t num_heads, Rng& rng)
    : d_model_(d_model),
      num_heads_(num_heads),
      d_head_(d_model / num_heads),
      wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng) {
  IMDIFF_CHECK_EQ(d_model % num_heads, 0)
      << "d_model" << d_model << "not divisible by heads" << num_heads;
}

Var MultiHeadSelfAttention::Forward(const Var& x) const {
  IMDIFF_CHECK_EQ(x.ndim(), 3u);
  IMDIFF_CHECK_EQ(x.dim(2), d_model_);
  const int64_t batch = x.dim(0);
  const int64_t length = x.dim(1);

  // Project and split heads: [B,L,D] -> [B,L,H,Dh] -> [B,H,L,Dh] -> [B*H,L,Dh].
  auto split_heads = [&](const Var& v) {
    Var h = ReshapeV(v, {batch, length, num_heads_, d_head_});
    h = PermuteV(h, {0, 2, 1, 3});
    return ReshapeV(h, {batch * num_heads_, length, d_head_});
  };
  Var q = split_heads(wq_.Forward(x));
  Var k = split_heads(wk_.Forward(x));
  Var v = split_heads(wv_.Forward(x));

  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  Var scores = ScaleV(BatchedMatMulV(q, k, false, true), scale);
  Var attn = SoftmaxV(scores);              // [B*H, L, L]
  Var ctx = BatchedMatMulV(attn, v);        // [B*H, L, Dh]

  // Merge heads back: [B*H,L,Dh] -> [B,H,L,Dh] -> [B,L,H,Dh] -> [B,L,D].
  ctx = ReshapeV(ctx, {batch, num_heads_, length, d_head_});
  ctx = PermuteV(ctx, {0, 2, 1, 3});
  ctx = ReshapeV(ctx, {batch, length, d_model_});
  return wo_.Forward(ctx);
}

std::vector<Var> MultiHeadSelfAttention::Parameters() const {
  std::vector<Var> params;
  for (const Linear* lin : {&wq_, &wk_, &wv_, &wo_}) {
    for (const Var& p : lin->Parameters()) params.push_back(p);
  }
  return params;
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t d_model,
                                                 int64_t num_heads,
                                                 int64_t d_ff, Rng& rng)
    : attn_(d_model, num_heads, rng),
      norm1_(d_model),
      norm2_(d_model),
      ff_(d_model, d_ff, d_model, rng, Mlp::Activation::kGelu) {}

Var TransformerEncoderLayer::Forward(const Var& x) const {
  Var h = Add(x, attn_.Forward(norm1_.Forward(x)));
  return Add(h, ff_.Forward(norm2_.Forward(h)));
}

std::vector<Var> TransformerEncoderLayer::Parameters() const {
  std::vector<Var> params = attn_.Parameters();
  for (const Var& p : norm1_.Parameters()) params.push_back(p);
  for (const Var& p : norm2_.Parameters()) params.push_back(p);
  for (const Var& p : ff_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace nn
}  // namespace imdiff
