#include "nn/serialize.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "utils/fault.h"

namespace imdiff {
namespace nn {
namespace {

constexpr char kMagic[4] = {'I', 'M', 'D', 'F'};

}  // namespace

void SaveParameters(const std::vector<Var>& params, const std::string& path) {
  // Stage into a sibling temp file and commit with an atomic rename: a crash
  // anywhere before the rename leaves `path` untouched.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    IMDIFF_CHECK(out.good()) << "cannot open for writing:" << tmp;
    out.write(kMagic, 4);
    const uint32_t count = static_cast<uint32_t>(params.size());
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const Var& p : params) {
      if (IMDIFF_FAULT("serialize.save_io")) {
        throw std::runtime_error(
            "SaveParameters: injected mid-stream I/O fault");
      }
      const Tensor& t = p.value();
      const uint32_t ndim = static_cast<uint32_t>(t.ndim());
      out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
      for (size_t d = 0; d < t.ndim(); ++d) {
        const int64_t dim = t.dim(d);
        out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
      }
      out.write(reinterpret_cast<const char*>(t.data()),
                static_cast<std::streamsize>(sizeof(float) * t.numel()));
    }
    out.flush();
    IMDIFF_CHECK(out.good()) << "write failed:" << tmp;
  }
  IMDIFF_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0)
      << "cannot commit checkpoint:" << path;
}

bool LoadParameters(std::vector<Var>& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  char magic[4];
  in.read(magic, 4);
  if (!in.good() || std::memcmp(magic, kMagic, 4) != 0) return false;
  uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good() || count != params.size()) return false;
  // Stage every tensor before touching params: a truncated or
  // shape-mismatched file must leave the model byte-identical (callers fall
  // back to training from the current weights on failure).
  std::vector<std::vector<float>> staged;
  staged.reserve(params.size());
  for (const Var& p : params) {
    uint32_t ndim = 0;
    in.read(reinterpret_cast<char*>(&ndim), sizeof(ndim));
    if (!in.good() || ndim != p.value().ndim()) return false;
    for (size_t d = 0; d < ndim; ++d) {
      int64_t dim = 0;
      in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
      if (!in.good() || dim != p.value().dim(d)) return false;
    }
    std::vector<float> payload(static_cast<size_t>(p.value().numel()));
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(sizeof(float) * payload.size()));
    if (!in.good()) return false;
    staged.push_back(std::move(payload));
  }
  // Full file parsed successfully; commit.
  for (size_t i = 0; i < params.size(); ++i) {
    std::copy(staged[i].begin(), staged[i].end(),
              params[i].mutable_value().mutable_data());
  }
  return true;
}

}  // namespace nn
}  // namespace imdiff
