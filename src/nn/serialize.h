// Binary (de)serialization of model parameters.
//
// Format: magic "IMDF", uint32 count, then per tensor: uint32 ndim,
// int64 dims..., float payload. Loading requires identical shapes (the model
// must be constructed with the same configuration first).

#ifndef IMDIFF_NN_SERIALIZE_H_
#define IMDIFF_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/autograd.h"

namespace imdiff {
namespace nn {

// Writes all parameter values to `path`. Aborts on IO failure.
void SaveParameters(const std::vector<Var>& params, const std::string& path);

// Loads values into `params` in order. Returns false (without aborting) when
// the file is missing or malformed, so callers can fall back to training.
// Transactional: on failure `params` is left byte-identical — all tensors
// are staged and committed only after the whole file parses.
bool LoadParameters(std::vector<Var>& params, const std::string& path);

}  // namespace nn
}  // namespace imdiff

#endif  // IMDIFF_NN_SERIALIZE_H_
