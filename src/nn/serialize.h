// Binary (de)serialization of model parameters.
//
// Format: magic "IMDF", uint32 count, then per tensor: uint32 ndim,
// int64 dims..., float payload. Loading requires identical shapes (the model
// must be constructed with the same configuration first).

#ifndef IMDIFF_NN_SERIALIZE_H_
#define IMDIFF_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/autograd.h"

namespace imdiff {
namespace nn {

// Writes all parameter values to `path`. Aborts on IO failure.
// Crash-safe: the payload is written to `path + ".tmp"` and moved into place
// with std::rename only after a successful flush, so a crash (or injected
// failure) mid-save can never leave a truncated/corrupt file at `path` — any
// previously committed checkpoint survives intact. The serving-layer model
// registry relies on this to warm-load checkpoints unconditionally.
void SaveParameters(const std::vector<Var>& params, const std::string& path);

// Test-only failure injection: makes the next SaveParameters call throw
// std::runtime_error after `tensor_index` tensors have been written to the
// temporary file (simulating a crash mid-stream, before the rename commit).
// Pass a negative value to disable. Not thread-safe; tests only.
void SetSaveFailurePointForTesting(int tensor_index);

// Loads values into `params` in order. Returns false (without aborting) when
// the file is missing or malformed, so callers can fall back to training.
// Transactional: on failure `params` is left byte-identical — all tensors
// are staged and committed only after the whole file parses.
bool LoadParameters(std::vector<Var>& params, const std::string& path);

}  // namespace nn
}  // namespace imdiff

#endif  // IMDIFF_NN_SERIALIZE_H_
