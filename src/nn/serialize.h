// Binary (de)serialization of model parameters.
//
// Format: magic "IMDF", uint32 count, then per tensor: uint32 ndim,
// int64 dims..., float payload. Loading requires identical shapes (the model
// must be constructed with the same configuration first).

#ifndef IMDIFF_NN_SERIALIZE_H_
#define IMDIFF_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/autograd.h"

namespace imdiff {
namespace nn {

// Writes all parameter values to `path`. Aborts on real IO failure.
// Crash-safe: the payload is written to `path + ".tmp"` and moved into place
// with std::rename only after a successful flush, so a crash (or injected
// failure) mid-save can never leave a truncated/corrupt file at `path` — any
// previously committed checkpoint survives intact. The serving-layer model
// registry relies on this to warm-load checkpoints unconditionally.
//
// Fault injection: the "serialize.save_io" point (utils/fault.h) is checked
// once per tensor; when it fires, the save throws std::runtime_error before
// the rename commit, simulating a mid-stream I/O crash. This is the one
// recoverable (thrown, not aborted) failure in the save path — the registry's
// retrying saver catches it; real stream errors still IMDIFF_CHECK-abort.
void SaveParameters(const std::vector<Var>& params, const std::string& path);

// Loads values into `params` in order. Returns false (without aborting) when
// the file is missing or malformed, so callers can fall back to training.
// Transactional: on failure `params` is left byte-identical — all tensors
// are staged and committed only after the whole file parses.
bool LoadParameters(std::vector<Var>& params, const std::string& path);

}  // namespace nn
}  // namespace imdiff

#endif  // IMDIFF_NN_SERIALIZE_H_
