#include "nn/optimizer.h"

#include <cmath>

namespace imdiff {
namespace nn {

Adam::Adam(std::vector<Var> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    IMDIFF_CHECK(p.requires_grad());
    m_.push_back(Tensor::Zeros(p.shape()));
    v_.push_back(Tensor::Zeros(p.shape()));
  }
}

void Adam::Step() {
  ++step_;
  // Optional global-norm gradient clipping.
  float clip_scale = 1.0f;
  if (options_.grad_clip_norm > 0.0f) {
    double sq = 0.0;
    for (const Var& p : params_) {
      if (!p.has_grad()) continue;
      const float* g = p.grad().data();
      const int64_t n = p.grad().numel();
      for (int64_t i = 0; i < n; ++i) sq += static_cast<double>(g[i]) * g[i];
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.grad_clip_norm) {
      clip_scale = options_.grad_clip_norm / static_cast<float>(norm);
    }
  }
  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    float* pm = m_[i].mutable_data();
    float* pv = v_[i].mutable_data();
    float* pw = p.mutable_value().mutable_data();
    const int64_t n = p.value().numel();
    for (int64_t j = 0; j < n; ++j) {
      const float gj = g[j] * clip_scale;
      pm[j] = options_.beta1 * pm[j] + (1.0f - options_.beta1) * gj;
      pv[j] = options_.beta2 * pv[j] + (1.0f - options_.beta2) * gj * gj;
      const float mhat = pm[j] / bc1;
      const float vhat = pv[j] / bc2;
      float update = options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
      if (options_.weight_decay > 0.0f) {
        update += options_.lr * options_.weight_decay * pw[j];
      }
      pw[j] -= update;
    }
  }
  ZeroGrad();
}

void Adam::ZeroGrad() {
  for (Var& p : params_) p.ClearGrad();
}

Sgd::Sgd(std::vector<Var> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const Var& p : params_) velocity_.push_back(Tensor::Zeros(p.shape()));
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    float* pw = p.mutable_value().mutable_data();
    const int64_t n = p.value().numel();
    if (momentum_ > 0.0f) {
      float* pv = velocity_[i].mutable_data();
      for (int64_t j = 0; j < n; ++j) {
        pv[j] = momentum_ * pv[j] + g[j];
        pw[j] -= lr_ * pv[j];
      }
    } else {
      for (int64_t j = 0; j < n; ++j) pw[j] -= lr_ * g[j];
    }
  }
  ZeroGrad();
}

void Sgd::ZeroGrad() {
  for (Var& p : params_) p.ClearGrad();
}

}  // namespace nn
}  // namespace imdiff
