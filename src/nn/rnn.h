// Recurrent cells (LSTM, GRU) and sequence runners.
//
// Cells operate on [B, D] slices; the runners unroll over the time axis of a
// [B, L, D] input inside the autograd graph, so backpropagation through time
// falls out of the ordinary Backward() pass.

#ifndef IMDIFF_NN_RNN_H_
#define IMDIFF_NN_RNN_H_

#include <vector>

#include "nn/layers.h"

namespace imdiff {
namespace nn {

// Standard LSTM cell.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_dim, int64_t hidden_dim, Rng& rng);

  struct State {
    Var h;  // [B, H]
    Var c;  // [B, H]
  };

  // One step: x [B, D], state -> new state.
  State Step(const Var& x, const State& state) const;
  // Zero initial state for batch size B.
  State InitialState(int64_t batch) const;

  std::vector<Var> Parameters() const override;
  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear wx_;  // [D, 4H], gate order i,f,g,o
  Linear wh_;  // [H, 4H] (no bias; wx_ carries it)
};

// Standard GRU cell.
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, Rng& rng);

  // One step: x [B, D], h [B, H] -> new h.
  Var Step(const Var& x, const Var& h) const;
  Var InitialState(int64_t batch) const;

  std::vector<Var> Parameters() const override;
  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear wx_zr_;  // [D, 2H] for update/reset gates
  Linear wh_zr_;  // [H, 2H]
  Linear wx_n_;   // [D, H] candidate
  Linear wh_n_;   // [H, H]
};

// Runs a cell across the time axis. x: [B, L, D]. Returns the hidden state at
// every step, concatenated to [B, L, H].
Var RunLstm(const LstmCell& cell, const Var& x);
Var RunGru(const GruCell& cell, const Var& x);

// As above but also exposes the final hidden state [B, H].
Var RunLstm(const LstmCell& cell, const Var& x, Var* final_hidden);
Var RunGru(const GruCell& cell, const Var& x, Var* final_hidden);

}  // namespace nn
}  // namespace imdiff

#endif  // IMDIFF_NN_RNN_H_
