// Multi-head self-attention and a pre-norm transformer encoder layer.
//
// These are the building blocks of the ImTransformer (src/core) — which
// applies them along the temporal axis and the feature (spatial) axis — and
// of the TranAD baseline.

#ifndef IMDIFF_NN_ATTENTION_H_
#define IMDIFF_NN_ATTENTION_H_

#include <vector>

#include "nn/layers.h"

namespace imdiff {
namespace nn {

// Scaled dot-product multi-head self-attention over [B, L, D] inputs.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t d_model, int64_t num_heads, Rng& rng);

  // x: [B, L, D] -> [B, L, D].
  Var Forward(const Var& x) const;
  std::vector<Var> Parameters() const override;

  // Read-only access for the inference graph capturer (src/graph).
  int64_t num_heads() const { return num_heads_; }
  int64_t d_head() const { return d_head_; }
  const Linear& wq() const { return wq_; }
  const Linear& wk() const { return wk_; }
  const Linear& wv() const { return wv_; }
  const Linear& wo() const { return wo_; }

 private:
  int64_t d_model_;
  int64_t num_heads_;
  int64_t d_head_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

// Pre-norm transformer encoder layer:
//   x = x + Attention(LayerNorm(x))
//   x = x + FeedForward(LayerNorm(x))
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t d_model, int64_t num_heads, int64_t d_ff,
                          Rng& rng);

  // x: [B, L, D] -> [B, L, D].
  Var Forward(const Var& x) const;
  std::vector<Var> Parameters() const override;

  // Read-only submodule access for the inference graph capturer (src/graph).
  const MultiHeadSelfAttention& attn() const { return attn_; }
  const LayerNorm& norm1() const { return norm1_; }
  const LayerNorm& norm2() const { return norm2_; }
  const Mlp& ff() const { return ff_; }

 private:
  MultiHeadSelfAttention attn_;
  LayerNorm norm1_;
  LayerNorm norm2_;
  Mlp ff_;
};

}  // namespace nn
}  // namespace imdiff

#endif  // IMDIFF_NN_ATTENTION_H_
