// Multi-head self-attention and a pre-norm transformer encoder layer.
//
// These are the building blocks of the ImTransformer (src/core) — which
// applies them along the temporal axis and the feature (spatial) axis — and
// of the TranAD baseline.

#ifndef IMDIFF_NN_ATTENTION_H_
#define IMDIFF_NN_ATTENTION_H_

#include <vector>

#include "nn/layers.h"

namespace imdiff {
namespace nn {

// Scaled dot-product multi-head self-attention over [B, L, D] inputs.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t d_model, int64_t num_heads, Rng& rng);

  // x: [B, L, D] -> [B, L, D].
  Var Forward(const Var& x) const;
  std::vector<Var> Parameters() const override;

 private:
  int64_t d_model_;
  int64_t num_heads_;
  int64_t d_head_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

// Pre-norm transformer encoder layer:
//   x = x + Attention(LayerNorm(x))
//   x = x + FeedForward(LayerNorm(x))
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t d_model, int64_t num_heads, int64_t d_ff,
                          Rng& rng);

  // x: [B, L, D] -> [B, L, D].
  Var Forward(const Var& x) const;
  std::vector<Var> Parameters() const override;

 private:
  MultiHeadSelfAttention attn_;
  LayerNorm norm1_;
  LayerNorm norm2_;
  Mlp ff_;
};

}  // namespace nn
}  // namespace imdiff

#endif  // IMDIFF_NN_ATTENTION_H_
