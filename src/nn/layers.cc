#include "nn/layers.h"

#include <cmath>

#include "tensor/precision.h"
#include "tensor/quant.h"

namespace imdiff {
namespace nn {

int64_t ParameterCount(const Module& m) {
  int64_t n = 0;
  for (const Var& p : m.Parameters()) n += p.value().numel();
  return n;
}

namespace {

// Xavier/Glorot uniform initialization.
Tensor XavierUniform(const Shape& shape, int64_t fan_in, int64_t fan_out,
                     Rng& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand(shape, rng, -limit, limit);
}

}  // namespace

Linear::Linear(int64_t in, int64_t out, Rng& rng, bool bias)
    : in_(in), out_(out) {
  w_ = Var(XavierUniform({in, out}, in, out, rng), /*requires_grad=*/true);
  if (bias) {
    b_ = Var(Tensor::Zeros({out}), /*requires_grad=*/true);
  }
}

Var Linear::Forward(const Var& x) const {
  IMDIFF_CHECK_EQ(x.dim(x.ndim() - 1), in_);
  Shape out_shape = x.shape();
  out_shape.back() = out_;
  const Precision prec = ActivePrecision();
  if (prec != Precision::kF32) {
    // Reduced-precision forward (DESIGN.md §17): the same quantized kernels
    // the graph executor captures, so graph and stack scores stay bitwise
    // identical per precision. Inference-only — the result is a constant,
    // never an autograd node; training never sets a non-fp32 ActivePrecision.
    const Tensor& xv = x.value();
    Tensor y = Tensor::Uninitialized(out_shape);
    quant::LinearInto(xv.data(), w_.value().data(),
                      b_.defined() ? b_.value().data() : nullptr,
                      y.mutable_data(), xv.numel() / in_, in_, out_, prec);
    return Var(std::move(y));
  }
  Var x2 = ReshapeV(x, {-1, in_});
  Var y = MatMulV(x2, w_);
  if (b_.defined()) y = Add(y, b_);
  return ReshapeV(y, std::move(out_shape));
}

std::vector<Var> Linear::Parameters() const {
  std::vector<Var> params = {w_};
  if (b_.defined()) params.push_back(b_);
  return params;
}

Conv1dLayer::Conv1dLayer(int64_t cin, int64_t cout, int64_t kernel, int pad,
                         Rng& rng, bool bias)
    : pad_(pad) {
  const int64_t fan_in = cin * kernel;
  const int64_t fan_out = cout * kernel;
  w_ = Var(XavierUniform({cout, cin, kernel}, fan_in, fan_out, rng),
           /*requires_grad=*/true);
  if (bias) {
    b_ = Var(Tensor::Zeros({cout}), /*requires_grad=*/true);
  }
}

Var Conv1dLayer::Forward(const Var& x) const {
  return Conv1dV(x, w_, b_, pad_);
}

std::vector<Var> Conv1dLayer::Parameters() const {
  std::vector<Var> params = {w_};
  if (b_.defined()) params.push_back(b_);
  return params;
}

LayerNorm::LayerNorm(int64_t dim)
    : gamma_(Var(Tensor::Full({dim}, 1.0f), /*requires_grad=*/true)),
      beta_(Var(Tensor::Zeros({dim}), /*requires_grad=*/true)) {}

Var LayerNorm::Forward(const Var& x) const {
  return LayerNormV(x, gamma_, beta_);
}

std::vector<Var> LayerNorm::Parameters() const { return {gamma_, beta_}; }

Embedding::Embedding(int64_t num_embeddings, int64_t dim, Rng& rng) {
  table_ = Var(Tensor::Randn({num_embeddings, dim}, rng, 0.02f),
               /*requires_grad=*/true);
}

Var Embedding::Forward(const std::vector<int64_t>& indices) const {
  return GatherRowsV(table_, indices);
}

std::vector<Var> Embedding::Parameters() const { return {table_}; }

Mlp::Mlp(int64_t in, int64_t hidden, int64_t out, Rng& rng, Activation act)
    : fc1_(in, hidden, rng), fc2_(hidden, out, rng), act_(act) {}

Var Mlp::Forward(const Var& x) const {
  Var h = fc1_.Forward(x);
  switch (act_) {
    case Activation::kRelu:
      h = ReluV(h);
      break;
    case Activation::kGelu:
      h = GeluV(h);
      break;
    case Activation::kSilu:
      h = SiluV(h);
      break;
    case Activation::kTanh:
      h = TanhV(h);
      break;
  }
  return fc2_.Forward(h);
}

std::vector<Var> Mlp::Parameters() const {
  std::vector<Var> params = fc1_.Parameters();
  for (const Var& p : fc2_.Parameters()) params.push_back(p);
  return params;
}

Tensor SinusoidalEmbedding(const std::vector<int64_t>& positions, int64_t dim,
                           float max_period) {
  IMDIFF_CHECK_GE(dim, 2);
  const int64_t half = dim / 2;
  Tensor out({static_cast<int64_t>(positions.size()), dim});
  float* po = out.mutable_data();
  for (size_t i = 0; i < positions.size(); ++i) {
    float* row = po + static_cast<int64_t>(i) * dim;
    for (int64_t j = 0; j < half; ++j) {
      const float freq = std::exp(
          -std::log(max_period) * static_cast<float>(j) /
          static_cast<float>(half > 1 ? half - 1 : 1));
      const float angle = static_cast<float>(positions[i]) * freq;
      row[j] = std::sin(angle);
      row[half + j] = std::cos(angle);
    }
    // Odd dim: leave the final column zero.
  }
  return out;
}

}  // namespace nn
}  // namespace imdiff
