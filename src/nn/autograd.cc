#include "nn/autograd.h"

#include <cmath>
#include <unordered_set>
#include <utility>

#include "tensor/arena.h"
#include "tensor/simd.h"

namespace imdiff {
namespace nn {

namespace {

// Creates an interior node. requires_grad is inherited from parents.
Var MakeOp(Tensor value, std::vector<VarNodePtr> parents,
           std::function<void(VarNode&)> backward) {
  auto node = std::make_shared<VarNode>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  bool needs = false;
  for (const auto& p : node->parents) needs = needs || p->requires_grad;
  node->requires_grad = needs;
  if (needs) node->backward = std::move(backward);
  return Var::FromNode(node);
}

Tensor Transpose2D(const Tensor& t) { return Permute(t, {1, 0}); }
Tensor Transpose3D(const Tensor& t) { return Permute(t, {0, 2, 1}); }

}  // namespace

void VarNode::AccumulateGrad(const Tensor& g) {
  IMDIFF_CHECK(g.shape() == value.shape())
      << "grad shape" << ShapeToString(g.shape()) << "vs value"
      << ShapeToString(value.shape());
  if (!has_grad) {
    grad = g.Clone();
    has_grad = true;
    return;
  }
  simd::AddInPlace(grad.mutable_data(), g.data(), grad.numel());
}

Var::Var(Tensor value, bool requires_grad) {
  node_ = std::make_shared<VarNode>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Var::grad() const {
  IMDIFF_CHECK(node_ != nullptr && node_->has_grad) << "no gradient";
  return node_->grad;
}

void Var::ClearGrad() {
  if (node_) {
    node_->has_grad = false;
    node_->grad = Tensor();
  }
}

Var Var::FromNode(VarNodePtr node) {
  Var v;
  v.node_ = std::move(node);
  return v;
}

void Backward(const Var& loss) {
  IMDIFF_CHECK(loss.defined());
  // Iterative post-order DFS to get a topological order.
  std::vector<VarNode*> order;
  std::unordered_set<VarNode*> visited;
  std::vector<std::pair<VarNode*, size_t>> stack;
  stack.emplace_back(loss.node().get(), 0);
  visited.insert(loss.node().get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      VarNode* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Seed and propagate in reverse topological order.
  loss.node()->AccumulateGrad(Tensor::Full(loss.shape(), 1.0f));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VarNode* node = *it;
    if (node->backward && node->has_grad) node->backward(*node);
  }
}

// ---- Arithmetic -------------------------------------------------------------

Var Add(const Var& a, const Var& b) {
  return MakeOp(imdiff::Add(a.value(), b.value()), {a.node(), b.node()},
                [](VarNode& n) {
                  auto& pa = n.parents[0];
                  auto& pb = n.parents[1];
                  if (pa->requires_grad)
                    pa->AccumulateGrad(ReduceToShape(n.grad, pa->value.shape()));
                  if (pb->requires_grad)
                    pb->AccumulateGrad(ReduceToShape(n.grad, pb->value.shape()));
                });
}

Var Sub(const Var& a, const Var& b) {
  return MakeOp(imdiff::Sub(a.value(), b.value()), {a.node(), b.node()},
                [](VarNode& n) {
                  auto& pa = n.parents[0];
                  auto& pb = n.parents[1];
                  if (pa->requires_grad)
                    pa->AccumulateGrad(ReduceToShape(n.grad, pa->value.shape()));
                  if (pb->requires_grad)
                    pb->AccumulateGrad(
                        ReduceToShape(Scale(n.grad, -1.0f), pb->value.shape()));
                });
}

Var Mul(const Var& a, const Var& b) {
  return MakeOp(imdiff::Mul(a.value(), b.value()), {a.node(), b.node()},
                [](VarNode& n) {
                  auto& pa = n.parents[0];
                  auto& pb = n.parents[1];
                  if (pa->requires_grad)
                    pa->AccumulateGrad(ReduceToShape(
                        imdiff::Mul(n.grad, pb->value), pa->value.shape()));
                  if (pb->requires_grad)
                    pb->AccumulateGrad(ReduceToShape(
                        imdiff::Mul(n.grad, pa->value), pb->value.shape()));
                });
}

Var Neg(const Var& a) { return ScaleV(a, -1.0f); }

Var ScaleV(const Var& a, float s) {
  return MakeOp(Scale(a.value(), s), {a.node()}, [s](VarNode& n) {
    n.parents[0]->AccumulateGrad(Scale(n.grad, s));
  });
}

Var AddScalarV(const Var& a, float s) {
  return MakeOp(AddScalar(a.value(), s), {a.node()}, [](VarNode& n) {
    n.parents[0]->AccumulateGrad(n.grad);
  });
}

Var MulConst(const Var& a, const Tensor& c) {
  return MakeOp(imdiff::Mul(a.value(), c), {a.node()}, [c](VarNode& n) {
    n.parents[0]->AccumulateGrad(
        ReduceToShape(imdiff::Mul(n.grad, c), n.parents[0]->value.shape()));
  });
}

Var AddConst(const Var& a, const Tensor& c) {
  return MakeOp(imdiff::Add(a.value(), c), {a.node()}, [](VarNode& n) {
    n.parents[0]->AccumulateGrad(
        ReduceToShape(n.grad, n.parents[0]->value.shape()));
  });
}

// ---- Linear algebra -----------------------------------------------------------

Var MatMulV(const Var& a, const Var& b, bool transpose_a, bool transpose_b) {
  return MakeOp(
      MatMul(a.value(), b.value(), transpose_a, transpose_b),
      {a.node(), b.node()}, [transpose_a, transpose_b](VarNode& n) {
        auto& pa = n.parents[0];
        auto& pb = n.parents[1];
        if (pa->requires_grad) {
          Tensor da = MatMul(n.grad, pb->value, false, !transpose_b);
          if (transpose_a) da = Transpose2D(da);
          pa->AccumulateGrad(da);
        }
        if (pb->requires_grad) {
          Tensor db = MatMul(pa->value, n.grad, !transpose_a, false);
          if (transpose_b) db = Transpose2D(db);
          pb->AccumulateGrad(db);
        }
      });
}

Var BatchedMatMulV(const Var& a, const Var& b, bool transpose_a,
                   bool transpose_b) {
  return MakeOp(
      BatchedMatMul(a.value(), b.value(), transpose_a, transpose_b),
      {a.node(), b.node()}, [transpose_a, transpose_b](VarNode& n) {
        auto& pa = n.parents[0];
        auto& pb = n.parents[1];
        if (pa->requires_grad) {
          Tensor da = BatchedMatMul(n.grad, pb->value, false, !transpose_b);
          if (transpose_a) da = Transpose3D(da);
          pa->AccumulateGrad(da);
        }
        if (pb->requires_grad) {
          Tensor db = BatchedMatMul(pa->value, n.grad, !transpose_a, false);
          if (transpose_b) db = Transpose3D(db);
          pb->AccumulateGrad(db);
        }
      });
}

Var Conv1dV(const Var& x, const Var& w, const Var& bias, int pad) {
  const bool has_bias = bias.defined();
  Tensor y = Conv1d(x.value(), w.value(),
                    has_bias ? bias.value() : Tensor(), pad);
  std::vector<VarNodePtr> parents = {x.node(), w.node()};
  if (has_bias) parents.push_back(bias.node());
  return MakeOp(std::move(y), std::move(parents), [pad, has_bias](VarNode& n) {
    auto& px = n.parents[0];
    auto& pw = n.parents[1];
    Tensor gx, gw, gb;
    Tensor* gx_ptr = px->requires_grad ? &gx : nullptr;
    Tensor* gw_ptr = pw->requires_grad ? &gw : nullptr;
    Tensor* gb_ptr =
        has_bias && n.parents[2]->requires_grad ? &gb : nullptr;
    Conv1dBackward(px->value, pw->value, pad, n.grad, gx_ptr, gw_ptr, gb_ptr);
    if (gx_ptr != nullptr) px->AccumulateGrad(gx);
    if (gw_ptr != nullptr) pw->AccumulateGrad(gw);
    if (gb_ptr != nullptr) n.parents[2]->AccumulateGrad(gb);
  });
}

Var DropoutV(const Var& x, float p, Rng& rng) {
  if (p <= 0.0f) return x;
  IMDIFF_CHECK_LT(p, 1.0f);
  Tensor mask = Tensor::Uninitialized(x.shape());
  const float keep_scale = 1.0f / (1.0f - p);
  float* pm = mask.mutable_data();
  const int64_t n = mask.numel();
  for (int64_t i = 0; i < n; ++i) {
    pm[i] = rng.Bernoulli(p) ? 0.0f : keep_scale;
  }
  return MulConst(x, mask);
}

// ---- Structure ------------------------------------------------------------------

Var ReshapeV(const Var& a, Shape shape) {
  const Shape original = a.shape();
  return MakeOp(a.value().Reshape(std::move(shape)), {a.node()},
                [original](VarNode& n) {
                  n.parents[0]->AccumulateGrad(n.grad.Reshape(original));
                });
}

Var PermuteV(const Var& a, std::vector<size_t> perm) {
  std::vector<size_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) inverse[perm[i]] = i;
  return MakeOp(Permute(a.value(), perm), {a.node()},
                [inverse](VarNode& n) {
                  n.parents[0]->AccumulateGrad(Permute(n.grad, inverse));
                });
}

Var ConcatV(const std::vector<Var>& parts, size_t axis) {
  std::vector<Tensor> values;
  std::vector<VarNodePtr> nodes;
  values.reserve(parts.size());
  for (const Var& p : parts) {
    values.push_back(p.value());
    nodes.push_back(p.node());
  }
  return MakeOp(Concat(values, axis), std::move(nodes), [axis](VarNode& n) {
    int64_t offset = 0;
    for (auto& p : n.parents) {
      const int64_t len = p->value.dim(axis);
      if (p->requires_grad) {
        p->AccumulateGrad(Slice(n.grad, axis, offset, len));
      }
      offset += len;
    }
  });
}

Var SliceV(const Var& a, size_t axis, int64_t start, int64_t len) {
  const Shape full = a.shape();
  return MakeOp(Slice(a.value(), axis, start, len), {a.node()},
                [full, axis, start](VarNode& n) {
                  n.parents[0]->AccumulateGrad(
                      SliceBackward(n.grad, full, axis, start));
                });
}

Var GatherRowsV(const Var& table, const std::vector<int64_t>& indices) {
  IMDIFF_CHECK_EQ(table.ndim(), 2u);
  const int64_t d = table.dim(1);
  Tensor out = Tensor::Uninitialized({static_cast<int64_t>(indices.size()), d});
  for (size_t i = 0; i < indices.size(); ++i) {
    IMDIFF_CHECK(indices[i] >= 0 && indices[i] < table.dim(0));
    std::copy_n(table.value().data() + indices[i] * d, d,
                out.mutable_data() + static_cast<int64_t>(i) * d);
  }
  return MakeOp(std::move(out), {table.node()}, [indices, d](VarNode& n) {
    // Scatter-add into the zero fill (rows may repeat).
    Tensor dt(n.parents[0]->value.shape());
    float* pd = dt.mutable_data();
    const float* pg = n.grad.data();
    for (size_t i = 0; i < indices.size(); ++i) {
      simd::AddInPlace(pd + indices[i] * d, pg + static_cast<int64_t>(i) * d,
                       d);
    }
    n.parents[0]->AccumulateGrad(dt);
  });
}

// ---- Nonlinearities ---------------------------------------------------------------

namespace {

// Generic unary op: value = f(x); backward multiplies the incoming grad by
// dfdx computed from the saved input and output.
Var UnaryOp(const Var& a, const std::function<float(float)>& f,
            std::function<float(float x, float y)> dfdx) {
  Tensor value = Map(a.value(), f);
  Tensor saved_y = value;
  return MakeOp(std::move(value), {a.node()},
                [saved_y, dfdx = std::move(dfdx)](VarNode& n) {
                  const Tensor& x = n.parents[0]->value;
                  Tensor dx = Tensor::Uninitialized(x.shape());
                  const float* px = x.data();
                  const float* py = saved_y.data();
                  const float* pg = n.grad.data();
                  float* pd = dx.mutable_data();
                  const int64_t m = x.numel();
                  for (int64_t i = 0; i < m; ++i) {
                    pd[i] = pg[i] * dfdx(px[i], py[i]);
                  }
                  n.parents[0]->AccumulateGrad(dx);
                });
}

}  // namespace

Var ReluV(const Var& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var GeluV(const Var& a) {
  // Fused vectorized forward/backward (tensor/tensor_ops.h).
  return MakeOp(GeluForward(a.value()), {a.node()}, [](VarNode& n) {
    n.parents[0]->AccumulateGrad(GeluBackward(n.parents[0]->value, n.grad));
  });
}

Var SiluV(const Var& a) {
  return MakeOp(SiluForward(a.value()), {a.node()}, [](VarNode& n) {
    n.parents[0]->AccumulateGrad(SiluBackward(n.parents[0]->value, n.grad));
  });
}

Var TanhV(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Var SigmoidV(const Var& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Var ExpV(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Var SoftplusV(const Var& a) {
  return UnaryOp(
      a,
      [](float x) {
        // Numerically stable softplus.
        return x > 20.0f ? x : std::log1p(std::exp(x));
      },
      [](float x, float) { return 1.0f / (1.0f + std::exp(-x)); });
}

Var SoftmaxV(const Var& a) {
  Tensor y = SoftmaxLastDim(a.value());
  Tensor saved_y = y;
  return MakeOp(std::move(y), {a.node()}, [saved_y](VarNode& n) {
    const int64_t last = saved_y.dim(saved_y.ndim() - 1);
    const int64_t rows = saved_y.numel() / last;
    Tensor dx = Tensor::Uninitialized(saved_y.shape());
    const float* py = saved_y.data();
    const float* pg = n.grad.data();
    float* pd = dx.mutable_data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* yrow = py + r * last;
      const float* grow = pg + r * last;
      float* drow = pd + r * last;
      const float dot = simd::Dot(grow, yrow, last);
      // drow = y * (g - dot)
      simd::AddScalarInto(drow, grow, -dot, last);
      simd::MulInto(drow, drow, yrow, last);
    }
    n.parents[0]->AccumulateGrad(dx);
  });
}

Var LayerNormV(const Var& x, const Var& gamma, const Var& beta, float eps) {
  const int64_t last = x.dim(x.ndim() - 1);
  IMDIFF_CHECK_EQ(gamma.value().numel(), last);
  IMDIFF_CHECK_EQ(beta.value().numel(), last);
  const int64_t rows = x.value().numel() / last;
  Tensor y, xhat, inv_std;
  LayerNormForward(x.value(), gamma.value(), beta.value(), eps, &y, &xhat,
                   &inv_std);
  return MakeOp(
      std::move(y), {x.node(), gamma.node(), beta.node()},
      [xhat, inv_std, last, rows](VarNode& n) {
        auto& px_node = n.parents[0];
        auto& pg_node = n.parents[1];
        auto& pb_node = n.parents[2];
        const float* pg = n.grad.data();
        const float* ph = xhat.data();
        const float* pgam = pg_node->value.data();
        if (pg_node->requires_grad || pb_node->requires_grad) {
          // Accumulates into the zero fill across rows.
          Tensor dgamma({last});
          Tensor dbeta({last});
          float* pdg = dgamma.mutable_data();
          float* pdb = dbeta.mutable_data();
          for (int64_t r = 0; r < rows; ++r) {
            const float* grow = pg + r * last;
            const float* hrow = ph + r * last;
            simd::FmaInto(pdg, grow, hrow, pdg, last);
            simd::AddInPlace(pdb, grow, last);
          }
          if (pg_node->requires_grad)
            pg_node->AccumulateGrad(dgamma.Reshape(pg_node->value.shape()));
          if (pb_node->requires_grad)
            pb_node->AccumulateGrad(dbeta.Reshape(pb_node->value.shape()));
        }
        if (px_node->requires_grad) {
          Tensor dx = Tensor::Uninitialized(px_node->value.shape());
          float* pd = dx.mutable_data();
          const float* pis = inv_std.data();
          const float inv_n = 1.0f / static_cast<float>(last);
          ArenaBuffer gi(static_cast<size_t>(last));  // grad * gamma, per row
          for (int64_t r = 0; r < rows; ++r) {
            const float* grow = pg + r * last;
            const float* hrow = ph + r * last;
            float* drow = pd + r * last;
            simd::MulInto(gi.data(), grow, pgam, last);
            const float sum_g = simd::Sum(gi.data(), last);
            const float sum_gh = simd::Dot(gi.data(), hrow, last);
            const float is = pis[r];
            // drow = is * (gi - inv_n*sum_g - hrow * inv_n*sum_gh)
            simd::AddScalarInto(drow, gi.data(), -inv_n * sum_g, last);
            simd::Axpy(-inv_n * sum_gh, hrow, drow, last);
            simd::ScaleInPlace(drow, is, last);
          }
          px_node->AccumulateGrad(dx);
        }
      });
}

// ---- Reductions / losses -------------------------------------------------------------

Var SumV(const Var& a) {
  Tensor value({1}, {static_cast<float>(SumAll(a.value()))});
  return MakeOp(std::move(value), {a.node()}, [](VarNode& n) {
    n.parents[0]->AccumulateGrad(
        Tensor::Full(n.parents[0]->value.shape(), n.grad.flat(0)));
  });
}

Var MeanV(const Var& a) {
  const float inv_n = 1.0f / static_cast<float>(a.value().numel());
  Tensor value({1}, {static_cast<float>(MeanAll(a.value()))});
  return MakeOp(std::move(value), {a.node()}, [inv_n](VarNode& n) {
    n.parents[0]->AccumulateGrad(
        Tensor::Full(n.parents[0]->value.shape(), n.grad.flat(0) * inv_n));
  });
}

Var MseLossV(const Var& pred, const Tensor& target) {
  IMDIFF_CHECK(pred.shape() == target.shape());
  Tensor diff = imdiff::Sub(pred.value(), target);
  double acc = 0.0;
  const float* pd = diff.data();
  const int64_t n = diff.numel();
  for (int64_t i = 0; i < n; ++i) acc += static_cast<double>(pd[i]) * pd[i];
  Tensor value({1}, {static_cast<float>(acc / n)});
  return MakeOp(std::move(value), {pred.node()}, [diff](VarNode& nd) {
    const float scale = 2.0f * nd.grad.flat(0) / diff.numel();
    nd.parents[0]->AccumulateGrad(Scale(diff, scale));
  });
}

Var MaskedMseLossV(const Var& pred, const Tensor& target, const Tensor& mask) {
  IMDIFF_CHECK(pred.shape() == target.shape());
  IMDIFF_CHECK(pred.shape() == mask.shape());
  Tensor diff = imdiff::Mul(imdiff::Sub(pred.value(), target), mask);
  double acc = 0.0;
  const float* pd = diff.data();
  const int64_t n = diff.numel();
  for (int64_t i = 0; i < n; ++i) acc += static_cast<double>(pd[i]) * pd[i];
  double mask_sum = SumAll(mask);
  if (mask_sum < 1.0) mask_sum = 1.0;
  Tensor value({1}, {static_cast<float>(acc / mask_sum)});
  const float inv_mask_sum = static_cast<float>(1.0 / mask_sum);
  return MakeOp(std::move(value), {pred.node()},
                [diff, inv_mask_sum](VarNode& nd) {
                  // d/dpred = 2 * diff * mask / mask_sum; diff already carries
                  // the mask factor (mask is 0/1 so mask^2 == mask).
                  const float scale = 2.0f * nd.grad.flat(0) * inv_mask_sum;
                  nd.parents[0]->AccumulateGrad(Scale(diff, scale));
                });
}

}  // namespace nn
}  // namespace imdiff
