// Reverse-mode automatic differentiation on Tensors.
//
// A Var wraps a Tensor value plus an optional gradient and a backward closure.
// Ops build a dynamic graph; Backward(loss) topologically sorts it and
// accumulates gradients into every reachable Var with requires_grad set.
// Graphs are rebuilt every iteration (define-by-run), so only parameters keep
// gradients across iterations (cleared by the optimizer).

#ifndef IMDIFF_NN_AUTOGRAD_H_
#define IMDIFF_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace imdiff {
namespace nn {

struct VarNode;
using VarNodePtr = std::shared_ptr<VarNode>;

struct VarNode {
  Tensor value;
  Tensor grad;  // allocated lazily by AccumulateGrad
  bool has_grad = false;
  bool requires_grad = false;
  std::vector<VarNodePtr> parents;
  // Propagates this node's grad into its parents. Null for leaves.
  std::function<void(VarNode&)> backward;

  // Adds g into grad (allocating on first use).
  void AccumulateGrad(const Tensor& g);
};

// Value-semantics handle to a graph node.
class Var {
 public:
  Var() : node_(nullptr) {}
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  const Tensor& grad() const;
  bool has_grad() const { return node_ && node_->has_grad; }
  bool requires_grad() const { return node_ && node_->requires_grad; }
  void ClearGrad();

  const Shape& shape() const { return node_->value.shape(); }
  int64_t dim(size_t axis) const { return node_->value.dim(axis); }
  size_t ndim() const { return node_->value.ndim(); }

  VarNodePtr node() const { return node_; }
  static Var FromNode(VarNodePtr node);

 private:
  VarNodePtr node_;
};

// Runs reverse-mode differentiation from `loss` (any shape; the seed gradient
// is all-ones). Gradients accumulate into every requires_grad Var reached.
void Backward(const Var& loss);

// ---- Arithmetic -------------------------------------------------------------

Var Add(const Var& a, const Var& b);        // broadcasting
Var Sub(const Var& a, const Var& b);        // broadcasting
Var Mul(const Var& a, const Var& b);        // broadcasting
Var Neg(const Var& a);
Var ScaleV(const Var& a, float s);
Var AddScalarV(const Var& a, float s);
// Element-wise multiply by a constant (non-differentiated) tensor, e.g. a
// mask. Shapes must broadcast.
Var MulConst(const Var& a, const Tensor& c);
Var AddConst(const Var& a, const Tensor& c);

inline Var operator+(const Var& a, const Var& b) { return Add(a, b); }
inline Var operator-(const Var& a, const Var& b) { return Sub(a, b); }
inline Var operator*(const Var& a, const Var& b) { return Mul(a, b); }

// ---- Linear algebra -----------------------------------------------------------

Var MatMulV(const Var& a, const Var& b, bool transpose_a = false,
            bool transpose_b = false);
Var BatchedMatMulV(const Var& a, const Var& b, bool transpose_a = false,
                   bool transpose_b = false);

// 1D convolution (stride 1, symmetric zero padding): x [B,Cin,L],
// w [Cout,Cin,K], bias [Cout] (pass an undefined Var for no bias).
Var Conv1dV(const Var& x, const Var& w, const Var& bias, int pad);

// Inverted dropout: zeroes entries with probability p and rescales the rest
// by 1/(1-p). Identity when p == 0.
Var DropoutV(const Var& x, float p, Rng& rng);

// ---- Structure ------------------------------------------------------------------

Var ReshapeV(const Var& a, Shape shape);
Var PermuteV(const Var& a, std::vector<size_t> perm);
Var ConcatV(const std::vector<Var>& parts, size_t axis);
Var SliceV(const Var& a, size_t axis, int64_t start, int64_t len);
// Gathers rows of a 2D table [num, d] by index -> [indices.size(), d].
Var GatherRowsV(const Var& table, const std::vector<int64_t>& indices);

// ---- Nonlinearities ---------------------------------------------------------------

Var ReluV(const Var& a);
Var GeluV(const Var& a);    // tanh approximation
Var SiluV(const Var& a);    // x * sigmoid(x)
Var TanhV(const Var& a);
Var SigmoidV(const Var& a);
Var ExpV(const Var& a);
Var SoftplusV(const Var& a);
Var SoftmaxV(const Var& a);  // last dim
// Layer normalization over the last dimension with affine parameters.
// gamma/beta have shape [last_dim].
Var LayerNormV(const Var& x, const Var& gamma, const Var& beta,
               float eps = 1e-5f);

// ---- Reductions / losses -------------------------------------------------------------

Var SumV(const Var& a);     // -> [1]
Var MeanV(const Var& a);    // -> [1]
// Mean squared error against a constant target.
Var MseLossV(const Var& pred, const Tensor& target);
// MSE restricted to mask==1 entries, normalized by the mask sum.
Var MaskedMseLossV(const Var& pred, const Tensor& target, const Tensor& mask);

}  // namespace nn
}  // namespace imdiff

#endif  // IMDIFF_NN_AUTOGRAD_H_
