// Gradient-descent optimizers over autograd parameters.

#ifndef IMDIFF_NN_OPTIMIZER_H_
#define IMDIFF_NN_OPTIMIZER_H_

#include <vector>

#include "nn/autograd.h"

namespace imdiff {
namespace nn {

// Adam (Kingma & Ba). Holds per-parameter first/second-moment buffers.
class Adam {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;  // decoupled (AdamW-style)
    // Gradients are clipped to this global L2 norm before the update;
    // <= 0 disables clipping.
    float grad_clip_norm = 5.0f;
  };

  Adam(std::vector<Var> params, Options options);

  // Applies one update from the accumulated gradients, then clears them.
  void Step();
  // Clears gradients without updating.
  void ZeroGrad();

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }
  int64_t step_count() const { return step_; }

 private:
  std::vector<Var> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  Options options_;
  int64_t step_ = 0;
};

// Plain SGD, optionally with momentum. Used by a few baselines.
class Sgd {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0f);

  void Step();
  void ZeroGrad();

 private:
  std::vector<Var> params_;
  std::vector<Tensor> velocity_;
  float lr_;
  float momentum_;
};

}  // namespace nn
}  // namespace imdiff

#endif  // IMDIFF_NN_OPTIMIZER_H_
