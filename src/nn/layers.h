// Neural-network building blocks on top of the autograd Var graph.

#ifndef IMDIFF_NN_LAYERS_H_
#define IMDIFF_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "nn/autograd.h"
#include "utils/rng.h"

namespace imdiff {
namespace nn {

// Base class for anything holding trainable parameters.
class Module {
 public:
  virtual ~Module() = default;
  // Returns handles to every trainable parameter (shared graph nodes).
  virtual std::vector<Var> Parameters() const = 0;
};

// Total number of scalar parameters across a module.
int64_t ParameterCount(const Module& m);

// Fully connected layer: y = x W + b with W [in, out].
// Accepts inputs of any rank; the last dimension must equal `in`.
class Linear : public Module {
 public:
  Linear(int64_t in, int64_t out, Rng& rng, bool bias = true);

  Var Forward(const Var& x) const;
  std::vector<Var> Parameters() const override;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }

  // Read-only weight access for the inference graph capturer (src/graph),
  // which lowers the frozen layer onto flat kernels.
  const Tensor& weight() const { return w_.value(); }
  bool has_bias() const { return b_.defined(); }
  const Tensor& bias() const { return b_.value(); }

 private:
  int64_t in_;
  int64_t out_;
  Var w_;  // [in, out]
  Var b_;  // [out] (undefined when bias == false)
};

// 1D convolution layer over [B, Cin, L] -> [B, Cout, L'] (stride 1).
class Conv1dLayer : public Module {
 public:
  Conv1dLayer(int64_t cin, int64_t cout, int64_t kernel, int pad, Rng& rng,
              bool bias = true);

  Var Forward(const Var& x) const;
  std::vector<Var> Parameters() const override;

 private:
  int pad_;
  Var w_;  // [Cout, Cin, K]
  Var b_;  // [Cout]
};

// Layer normalization over the last dimension, with learned scale/shift.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim);

  Var Forward(const Var& x) const;
  std::vector<Var> Parameters() const override;

  // Read-only parameter access for the inference graph capturer (src/graph).
  const Tensor& gamma() const { return gamma_.value(); }
  const Tensor& beta() const { return beta_.value(); }

 private:
  Var gamma_;  // [dim], init 1
  Var beta_;   // [dim], init 0
};

// Learned embedding table: index -> row of [num_embeddings, dim].
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng& rng);

  // Returns [indices.size(), dim].
  Var Forward(const std::vector<int64_t>& indices) const;
  std::vector<Var> Parameters() const override;

  // Read-only table access for the inference graph capturer (src/graph).
  const Tensor& table() const { return table_.value(); }

 private:
  Var table_;
};

// Two-layer MLP with a configurable hidden activation.
class Mlp : public Module {
 public:
  enum class Activation { kRelu, kGelu, kSilu, kTanh };

  Mlp(int64_t in, int64_t hidden, int64_t out, Rng& rng,
      Activation act = Activation::kRelu);

  Var Forward(const Var& x) const;
  std::vector<Var> Parameters() const override;

  // Read-only submodule access for the inference graph capturer (src/graph).
  const Linear& fc1() const { return fc1_; }
  const Linear& fc2() const { return fc2_; }
  Activation activation() const { return act_; }

 private:
  Linear fc1_;
  Linear fc2_;
  Activation act_;
};

// Sinusoidal positional / diffusion-step embedding (constant, no params):
// returns [positions.size(), dim] with interleaved sin/cos at geometric
// frequencies, as in Vaswani et al. and DDPM step embeddings.
Tensor SinusoidalEmbedding(const std::vector<int64_t>& positions, int64_t dim,
                           float max_period = 10000.0f);

}  // namespace nn
}  // namespace imdiff

#endif  // IMDIFF_NN_LAYERS_H_
