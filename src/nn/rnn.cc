#include "nn/rnn.h"

namespace imdiff {
namespace nn {

LstmCell::LstmCell(int64_t input_dim, int64_t hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim),
      wx_(input_dim, 4 * hidden_dim, rng),
      wh_(hidden_dim, 4 * hidden_dim, rng, /*bias=*/false) {}

LstmCell::State LstmCell::Step(const Var& x, const State& state) const {
  Var gates = Add(wx_.Forward(x), wh_.Forward(state.h));  // [B, 4H]
  Var i = SigmoidV(SliceV(gates, 1, 0, hidden_dim_));
  Var f = SigmoidV(SliceV(gates, 1, hidden_dim_, hidden_dim_));
  Var g = TanhV(SliceV(gates, 1, 2 * hidden_dim_, hidden_dim_));
  Var o = SigmoidV(SliceV(gates, 1, 3 * hidden_dim_, hidden_dim_));
  Var c = Add(Mul(f, state.c), Mul(i, g));
  Var h = Mul(o, TanhV(c));
  return {h, c};
}

LstmCell::State LstmCell::InitialState(int64_t batch) const {
  return {Var(Tensor::Zeros({batch, hidden_dim_})),
          Var(Tensor::Zeros({batch, hidden_dim_}))};
}

std::vector<Var> LstmCell::Parameters() const {
  std::vector<Var> params = wx_.Parameters();
  for (const Var& p : wh_.Parameters()) params.push_back(p);
  return params;
}

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim),
      wx_zr_(input_dim, 2 * hidden_dim, rng),
      wh_zr_(hidden_dim, 2 * hidden_dim, rng, /*bias=*/false),
      wx_n_(input_dim, hidden_dim, rng),
      wh_n_(hidden_dim, hidden_dim, rng, /*bias=*/false) {}

Var GruCell::Step(const Var& x, const Var& h) const {
  Var zr = Add(wx_zr_.Forward(x), wh_zr_.Forward(h));  // [B, 2H]
  Var z = SigmoidV(SliceV(zr, 1, 0, hidden_dim_));
  Var r = SigmoidV(SliceV(zr, 1, hidden_dim_, hidden_dim_));
  Var n = TanhV(Add(wx_n_.Forward(x), Mul(r, wh_n_.Forward(h))));
  // h' = (1 - z) * n + z * h
  Var one_minus_z = AddScalarV(Neg(z), 1.0f);
  return Add(Mul(one_minus_z, n), Mul(z, h));
}

Var GruCell::InitialState(int64_t batch) const {
  return Var(Tensor::Zeros({batch, hidden_dim_}));
}

std::vector<Var> GruCell::Parameters() const {
  std::vector<Var> params = wx_zr_.Parameters();
  for (const Var& p : wh_zr_.Parameters()) params.push_back(p);
  for (const Var& p : wx_n_.Parameters()) params.push_back(p);
  for (const Var& p : wh_n_.Parameters()) params.push_back(p);
  return params;
}

namespace {

// Shared unrolling loop; `step` advances the recurrent state and returns the
// hidden output for one timestep.
template <typename StepFn>
Var Unroll(const Var& x, StepFn step, Var* final_hidden) {
  IMDIFF_CHECK_EQ(x.ndim(), 3u);
  const int64_t batch = x.dim(0);
  const int64_t length = x.dim(1);
  const int64_t input_dim = x.dim(2);
  std::vector<Var> outputs;
  outputs.reserve(static_cast<size_t>(length));
  Var h;
  for (int64_t t = 0; t < length; ++t) {
    Var xt = ReshapeV(SliceV(x, 1, t, 1), {batch, input_dim});
    h = step(xt);
    outputs.push_back(ReshapeV(h, {batch, 1, h.dim(1)}));
  }
  if (final_hidden != nullptr) *final_hidden = h;
  return ConcatV(outputs, 1);
}

}  // namespace

Var RunLstm(const LstmCell& cell, const Var& x, Var* final_hidden) {
  LstmCell::State state = cell.InitialState(x.dim(0));
  return Unroll(
      x,
      [&](const Var& xt) {
        state = cell.Step(xt, state);
        return state.h;
      },
      final_hidden);
}

Var RunLstm(const LstmCell& cell, const Var& x) {
  return RunLstm(cell, x, nullptr);
}

Var RunGru(const GruCell& cell, const Var& x, Var* final_hidden) {
  Var h = cell.InitialState(x.dim(0));
  return Unroll(
      x,
      [&](const Var& xt) {
        h = cell.Step(xt, h);
        return h;
      },
      final_hidden);
}

Var RunGru(const GruCell& cell, const Var& x) {
  return RunGru(cell, x, nullptr);
}

}  // namespace nn
}  // namespace imdiff
