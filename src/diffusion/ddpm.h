// Generic Gaussian diffusion (DDPM) utilities: forward corruption, the
// ε-prediction training target, and ancestral reverse sampling.
//
// The ImDiffusion core (src/core) builds its unconditional *imputation*
// sampler on top of these primitives; the reconstruction-style ablation uses
// them directly.

#ifndef IMDIFF_DIFFUSION_DDPM_H_
#define IMDIFF_DIFFUSION_DDPM_H_

#include <functional>

#include "diffusion/schedule.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace imdiff {

// Gaussian diffusion over arbitrary-shape tensors with a fixed schedule.
class GaussianDiffusion {
 public:
  explicit GaussianDiffusion(const ScheduleConfig& config)
      : schedule_(config) {}

  const NoiseSchedule& schedule() const { return schedule_; }
  int num_steps() const { return schedule_.num_steps(); }

  // Closed-form forward sample x_t = sqrt(ᾱ_t) x0 + sqrt(1-ᾱ_t) ε with
  // ε ~ N(0, I). If eps_out is non-null the sampled noise is returned for use
  // as the training target.
  Tensor QSample(const Tensor& x0, int t, Rng& rng, Tensor* eps_out) const;

  // Same, but with caller-provided noise (used when the noise must be stored,
  // e.g. ImDiffusion's unmasked-region reference noise).
  Tensor QSampleWithNoise(const Tensor& x0, int t, const Tensor& eps) const;

  // DDPM posterior mean given x_t and the predicted noise ε̂ (Eq. 5):
  //   μ = 1/sqrt(α_t) (x_t - β_t / sqrt(1-ᾱ_t) ε̂)
  Tensor PosteriorMean(const Tensor& x_t, const Tensor& eps_pred, int t) const;

  // One ancestral reverse step: μ + sqrt(β̃_t) z (z = 0 at t == 0).
  Tensor PStep(const Tensor& x_t, const Tensor& eps_pred, int t,
               Rng& rng) const;

  // Estimate of x0 implied by (x_t, ε̂): (x_t - sqrt(1-ᾱ_t) ε̂)/sqrt(ᾱ_t).
  Tensor PredictX0(const Tensor& x_t, const Tensor& eps_pred, int t) const;

 private:
  NoiseSchedule schedule_;
};

}  // namespace imdiff

#endif  // IMDIFF_DIFFUSION_DDPM_H_
