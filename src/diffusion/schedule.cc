#include "diffusion/schedule.h"

#include <cmath>

#include "utils/check.h"

namespace imdiff {

NoiseSchedule::NoiseSchedule(const ScheduleConfig& config) {
  const int steps = config.num_steps;
  IMDIFF_CHECK_GT(steps, 0);
  beta_.resize(static_cast<size_t>(steps));
  switch (config.type) {
    case ScheduleType::kLinear: {
      for (int t = 0; t < steps; ++t) {
        const float frac =
            steps == 1 ? 0.0f : static_cast<float>(t) / (steps - 1);
        beta_[t] = config.beta_start + frac * (config.beta_end - config.beta_start);
      }
      break;
    }
    case ScheduleType::kQuadratic: {
      const float s0 = std::sqrt(config.beta_start);
      const float s1 = std::sqrt(config.beta_end);
      for (int t = 0; t < steps; ++t) {
        const float frac =
            steps == 1 ? 0.0f : static_cast<float>(t) / (steps - 1);
        const float s = s0 + frac * (s1 - s0);
        beta_[t] = s * s;
      }
      break;
    }
    case ScheduleType::kCosine: {
      constexpr float kOffset = 0.008f;
      auto f = [&](float u) {
        const float v = (u + kOffset) / (1.0f + kOffset) *
                        (3.14159265358979323846f / 2.0f);
        const float c = std::cos(v);
        return c * c;
      };
      float prev = f(0.0f);
      float bar = 1.0f;
      for (int t = 0; t < steps; ++t) {
        const float cur = f(static_cast<float>(t + 1) / steps);
        float b = 1.0f - cur / prev;
        if (b < 1e-5f) b = 1e-5f;
        if (b > 0.999f) b = 0.999f;
        beta_[t] = b;
        prev = cur;
        bar *= 1.0f - b;
      }
      break;
    }
  }
  alpha_.resize(beta_.size());
  alpha_bar_.resize(beta_.size());
  sqrt_alpha_bar_.resize(beta_.size());
  sqrt_one_minus_alpha_bar_.resize(beta_.size());
  posterior_var_.resize(beta_.size());
  float bar = 1.0f;
  for (size_t t = 0; t < beta_.size(); ++t) {
    alpha_[t] = 1.0f - beta_[t];
    const float prev_bar = bar;
    bar *= alpha_[t];
    alpha_bar_[t] = bar;
    sqrt_alpha_bar_[t] = std::sqrt(bar);
    sqrt_one_minus_alpha_bar_[t] = std::sqrt(1.0f - bar);
    posterior_var_[t] =
        t == 0 ? beta_[0] : (1.0f - prev_bar) / (1.0f - bar) * beta_[t];
  }
}

size_t NoiseSchedule::Check(int t) const {
  IMDIFF_CHECK(t >= 0 && t < num_steps()) << "step" << t;
  return static_cast<size_t>(t);
}

}  // namespace imdiff
