#include "diffusion/ddpm.h"

#include <cmath>

namespace imdiff {

Tensor GaussianDiffusion::QSample(const Tensor& x0, int t, Rng& rng,
                                  Tensor* eps_out) const {
  Tensor eps = Tensor::Randn(x0.shape(), rng);
  Tensor x_t = QSampleWithNoise(x0, t, eps);
  if (eps_out != nullptr) *eps_out = std::move(eps);
  return x_t;
}

Tensor GaussianDiffusion::QSampleWithNoise(const Tensor& x0, int t,
                                           const Tensor& eps) const {
  IMDIFF_CHECK(x0.shape() == eps.shape());
  const float a = schedule_.sqrt_alpha_bar(t);
  const float b = schedule_.sqrt_one_minus_alpha_bar(t);
  Tensor out = Tensor::Uninitialized(x0.shape());
  const float* px = x0.data();
  const float* pe = eps.data();
  float* po = out.mutable_data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = a * px[i] + b * pe[i];
  return out;
}

Tensor GaussianDiffusion::PosteriorMean(const Tensor& x_t,
                                        const Tensor& eps_pred, int t) const {
  IMDIFF_CHECK(x_t.shape() == eps_pred.shape());
  const float inv_sqrt_alpha = 1.0f / std::sqrt(schedule_.alpha(t));
  const float coef = schedule_.beta(t) / schedule_.sqrt_one_minus_alpha_bar(t);
  Tensor out = Tensor::Uninitialized(x_t.shape());
  const float* px = x_t.data();
  const float* pe = eps_pred.data();
  float* po = out.mutable_data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) {
    po[i] = inv_sqrt_alpha * (px[i] - coef * pe[i]);
  }
  return out;
}

Tensor GaussianDiffusion::PStep(const Tensor& x_t, const Tensor& eps_pred,
                                int t, Rng& rng) const {
  Tensor mean = PosteriorMean(x_t, eps_pred, t);
  if (t == 0) return mean;
  const float sigma = std::sqrt(schedule_.posterior_variance(t));
  float* pm = mean.mutable_data();
  const int64_t n = mean.numel();
  for (int64_t i = 0; i < n; ++i) {
    pm[i] += sigma * static_cast<float>(rng.Normal());
  }
  return mean;
}

Tensor GaussianDiffusion::PredictX0(const Tensor& x_t, const Tensor& eps_pred,
                                    int t) const {
  const float a = schedule_.sqrt_alpha_bar(t);
  const float b = schedule_.sqrt_one_minus_alpha_bar(t);
  Tensor out = Tensor::Uninitialized(x_t.shape());
  const float* px = x_t.data();
  const float* pe = eps_pred.data();
  float* po = out.mutable_data();
  const int64_t n = out.numel();
  const float inv_a = 1.0f / a;
  for (int64_t i = 0; i < n; ++i) po[i] = (px[i] - b * pe[i]) * inv_a;
  return out;
}

}  // namespace imdiff
