// DDPM noise schedules (Ho et al. 2020, Sec. 3.3 of the paper).
//
// Provides the β_t sequence, the cumulative ᾱ_t products, and the posterior
// variances β̃_t used by the reverse process.

#ifndef IMDIFF_DIFFUSION_SCHEDULE_H_
#define IMDIFF_DIFFUSION_SCHEDULE_H_

#include <cstddef>
#include <vector>

namespace imdiff {

enum class ScheduleType {
  kLinear,     // β linearly spaced in [beta_start, beta_end]
  kQuadratic,  // sqrt(β) linearly spaced (CSDI's default)
  kCosine,     // Nichol & Dhariwal cosine ᾱ schedule
};

struct ScheduleConfig {
  ScheduleType type = ScheduleType::kQuadratic;
  int num_steps = 50;  // T
  float beta_start = 1e-4f;
  float beta_end = 0.2f;
};

// Precomputed diffusion schedule. Index t is 0-based: t in [0, T).
class NoiseSchedule {
 public:
  explicit NoiseSchedule(const ScheduleConfig& config);

  int num_steps() const { return static_cast<int>(beta_.size()); }
  float beta(int t) const { return beta_[Check(t)]; }
  float alpha(int t) const { return alpha_[Check(t)]; }
  // ᾱ_t = prod_{i<=t} α_i.
  float alpha_bar(int t) const { return alpha_bar_[Check(t)]; }
  float sqrt_alpha_bar(int t) const { return sqrt_alpha_bar_[Check(t)]; }
  float sqrt_one_minus_alpha_bar(int t) const {
    return sqrt_one_minus_alpha_bar_[Check(t)];
  }
  // Posterior variance β̃_t = (1-ᾱ_{t-1})/(1-ᾱ_t) β_t (β_0 at t == 0).
  float posterior_variance(int t) const { return posterior_var_[Check(t)]; }

 private:
  size_t Check(int t) const;

  std::vector<float> beta_;
  std::vector<float> alpha_;
  std::vector<float> alpha_bar_;
  std::vector<float> sqrt_alpha_bar_;
  std::vector<float> sqrt_one_minus_alpha_bar_;
  std::vector<float> posterior_var_;
};

}  // namespace imdiff

#endif  // IMDIFF_DIFFUSION_SCHEDULE_H_
