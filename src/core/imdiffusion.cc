#include "core/imdiffusion.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "data/windowing.h"
#include "metrics/classification.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "utils/logging.h"
#include "utils/metrics.h"
#include "utils/thread_pool.h"

namespace imdiff {
namespace {

// [N, W, K] -> [N, K, W] (the model's feature-major layout).
Tensor WindowsToBkl(const Tensor& windows) {
  return Permute(windows, {0, 2, 1});
}

// Tiles a [K, L] mask to [B, K, L].
Tensor TileMask(const Tensor& mask, int64_t batch) {
  Tensor out = Tensor::Uninitialized({batch, mask.dim(0), mask.dim(1)});
  const int64_t n = mask.numel();
  float* po = out.mutable_data();
  for (int64_t b = 0; b < batch; ++b) {
    std::copy_n(mask.data(), n, po + b * n);
  }
  return out;
}

Tensor Complement(const Tensor& mask) {
  Tensor out = Tensor::Uninitialized(mask.shape());
  const float* pm = mask.data();
  float* po = out.mutable_data();
  const int64_t n = mask.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = 1.0f - pm[i];
  return out;
}

}  // namespace

ImDiffusionConfig PaperImDiffusionConfig() {
  ImDiffusionConfig config;
  config.model.window = 100;
  config.model.hidden = 128;
  config.model.num_blocks = 4;
  config.model.num_heads = 8;
  config.model.ff_dim = 256;
  config.schedule.num_steps = 50;
  config.num_masked_windows = 5;
  config.epochs = 40;
  config.vote_last_steps = 30;
  config.vote_stride = 3;
  return config;
}

ImDiffusionConfig FastImDiffusionConfig() {
  ImDiffusionConfig config;
  config.model.window = 100;
  config.model.hidden = 24;
  config.model.num_blocks = 2;
  config.model.num_heads = 1;
  config.model.ff_dim = 48;
  config.model.step_embed_dim = 32;
  config.model.side_dim = 16;
  config.schedule.num_steps = 16;  // T scaled from 50
  // With few steps the terminal ᾱ_T must still be ~0 so that starting the
  // reverse chain from pure noise is in-distribution (T=50 with β_end=0.2
  // achieves this in the paper's setting).
  config.schedule.beta_end = 0.7f;
  config.num_masked_windows = 5;
  config.epochs = 30;
  config.batch_size = 8;
  config.lr = 2e-3f;
  config.train_stride = 10;
  // With the scaled-down denoiser, mid-chain imputations carry little signal
  // relative to the final steps; voting over the last 6 of 16 steps keeps the
  // ensemble's variance reduction without diluting the decision (the paper's
  // 30-of-50 span assumes a far stronger denoiser).
  config.vote_last_steps = 6;
  config.vote_stride = 1;
  // Single-chain imputation on CPU: posterior-mean (DDIM-style) sampling
  // replaces averaging many stochastic chains.
  config.stochastic_sampling = false;
  return config;
}

ImDiffusionDetector::ImDiffusionDetector(const ImDiffusionConfig& config)
    : config_(config) {}

std::string ImDiffusionDetector::name() const {
  switch (config_.mask_strategy) {
    case MaskStrategy::kForecasting:
      return "ImDiffusion-Forecasting";
    case MaskStrategy::kReconstruction:
      return "ImDiffusion-Reconstruction";
    case MaskStrategy::kRandom:
      return config_.conditional ? "ImDiffusion-RandomMask-Cond"
                                 : "ImDiffusion-RandomMask";
    case MaskStrategy::kGrating:
      break;
  }
  if (config_.conditional) return "ImDiffusion-Conditional";
  if (!config_.ensemble) return "ImDiffusion-NonEnsemble";
  if (!config_.model.use_spatial) return "ImDiffusion-NoSpatial";
  if (!config_.model.use_temporal) return "ImDiffusion-NoTemporal";
  return "ImDiffusion";
}

MinMaxStats ImDiffusionDetector::FitRawWindow(const Tensor& raw,
                                              const MinMaxStats* reuse_stats) {
  IMDIFF_CHECK_EQ(raw.ndim(), 2u);
  IMDIFF_CHECK_GE(raw.dim(0), config_.model.window)
      << "refresh window shorter than the model window";
  const MinMaxStats stats = reuse_stats != nullptr ? *reuse_stats
                                                   : FitMinMax(raw);
  Fit(ApplyMinMax(raw, stats));
  return stats;
}

MinMaxStats ImDiffusionDetector::FitRawSegments(
    const std::vector<Tensor>& segments, const MinMaxStats* reuse_stats) {
  const int64_t window = config_.model.window;
  std::vector<const Tensor*> usable;
  int64_t k = -1;
  for (const Tensor& seg : segments) {
    IMDIFF_CHECK_EQ(seg.ndim(), 2u);
    if (k < 0) k = seg.dim(1);
    IMDIFF_CHECK_EQ(seg.dim(1), k);
    if (seg.dim(0) >= window) usable.push_back(&seg);
  }
  IMDIFF_CHECK(!usable.empty())
      << "no refresh segment reaches the model window";

  MinMaxStats stats;
  if (reuse_stats != nullptr) {
    stats = *reuse_stats;
  } else {
    stats = FitMinMax(*usable[0]);
    for (size_t i = 1; i < usable.size(); ++i) {
      const MinMaxStats s = FitMinMax(*usable[i]);
      for (size_t j = 0; j < stats.min.size(); ++j) {
        stats.min[j] = std::min(stats.min[j], s.min[j]);
        stats.max[j] = std::max(stats.max[j], s.max[j]);
      }
    }
  }

  // Cut windows within each segment independently, then stack: a training
  // window never spans the join between two segments.
  std::vector<Tensor> batches;
  int64_t total = 0;
  for (const Tensor* seg : usable) {
    Tensor b = WindowsToBkl(
        WindowBatch(ApplyMinMax(*seg, stats), window, config_.train_stride));
    total += b.dim(0);
    batches.push_back(std::move(b));
  }
  Tensor windows({total, k, window});
  float* out = windows.mutable_data();
  for (const Tensor& b : batches) {
    std::copy(b.data(), b.data() + b.numel(), out);
    out += b.numel();
  }
  FitWindowBatch(windows, k);
  return stats;
}

void ImDiffusionDetector::Fit(const Tensor& train) {
  IMDIFF_CHECK_EQ(train.ndim(), 2u);
  Tensor windows = WindowsToBkl(WindowBatch(
      train, config_.model.window, config_.train_stride));  // [N, K, L]
  FitWindowBatch(windows, train.dim(1));
}

void ImDiffusionDetector::FitWindowBatch(const Tensor& windows, int64_t k) {
  IMDIFF_TRACE_SCOPE("train.fit_seconds");
  IMDIFF_CHECK_EQ(windows.ndim(), 3u);
  IMDIFF_CHECK_EQ(windows.dim(1), k);
  IMDIFF_CHECK_EQ(windows.dim(2), config_.model.window);
  IMDIFF_CHECK_GT(windows.dim(0), 0);
  config_.model.num_features = k;
  config_.model.num_diffusion_steps = config_.schedule.num_steps;
  config_.model.num_policies = 2;

  rng_ = std::make_unique<Rng>(config_.seed);
  model_ = std::make_unique<ImTransformer>(config_.model, *rng_);
  diffusion_ = std::make_unique<GaussianDiffusion>(config_.schedule);
  {
    // Captured graphs hold raw pointers into the previous model's weights.
    std::lock_guard<std::mutex> lock(graph_mu_);
    graph_cache_.reset();
  }
  loss_history_.clear();

  const int64_t window = config_.model.window;
  const int64_t num_windows = windows.dim(0);
  const int64_t per_window = k * window;

  nn::Adam::Options opt;
  opt.lr = config_.lr;
  const std::vector<nn::Var> params = model_->Parameters();
  nn::Adam adam(params, opt);

  MetricsRegistry& registry = MetricsRegistry::Global();
  Gauge* const epoch_loss_gauge = registry.GetGauge("train.epoch_loss");
  Gauge* const grad_norm_gauge = registry.GetGauge("train.grad_norm");
  Counter* const epochs_counter = registry.GetCounter("train.epochs");

  const int num_steps = config_.schedule.num_steps;
  std::vector<int64_t> order(static_cast<size_t>(num_windows));
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    IMDIFF_TRACE_SCOPE("train.epoch_seconds");
    std::shuffle(order.begin(), order.end(), rng_->engine());
    double epoch_loss = 0.0;
    int batches = 0;
    for (int64_t start = 0; start < num_windows;
         start += config_.batch_size) {
      IMDIFF_TRACE_SCOPE("train.step_seconds");
      const int64_t bsz =
          std::min<int64_t>(config_.batch_size, num_windows - start);
      Tensor x0 = Tensor::Uninitialized({bsz, k, window});
      for (int64_t b = 0; b < bsz; ++b) {
        std::copy_n(windows.data() + order[static_cast<size_t>(start + b)] *
                                         per_window,
                    per_window, x0.mutable_data() + b * per_window);
      }
      const int t = static_cast<int>(rng_->UniformInt(0, num_steps - 1));
      const int num_policies = NumPolicies(config_.mask_strategy);
      const int policy =
          num_policies > 1 ? static_cast<int>(rng_->UniformInt(0, 1)) : 0;
      auto mask_pair =
          MakeMaskPair(config_.mask_strategy, k, window,
                       config_.num_masked_windows, rng_.get());
      const Tensor& mask2d = policy == 0 ? mask_pair.first : mask_pair.second;
      Tensor mask = TileMask(mask2d, bsz);
      Tensor inv_mask = Complement(mask);

      Tensor eps = Tensor::Randn(x0.shape(), *rng_);
      Tensor x_t = diffusion_->QSampleWithNoise(x0, t, eps);
      Tensor x_masked = Mul(x_t, inv_mask);
      // Unconditional reference (§4.1): the unmasked values carried through
      // the forward process with their ground-truth noise — hidden behind
      // noise at large t, recoverable step-by-step in the reverse process.
      // Conditional ablation: the raw observed values instead.
      Tensor noise_ref = Mul(config_.conditional ? x0 : x_t, mask);

      std::vector<int64_t> policies(static_cast<size_t>(bsz), policy);
      nn::Var pred = model_->Forward(x_masked, noise_ref, mask, t, policies);
      nn::Var loss = nn::MaskedMseLossV(pred, eps, inv_mask);
      nn::Backward(loss);
      if (MetricsEnabled()) {
        double grad_sq = 0.0;
        for (const nn::Var& p : params) {
          if (!p.has_grad()) continue;
          const float* g = p.grad().data();
          const int64_t n = p.grad().numel();
          for (int64_t i = 0; i < n; ++i) {
            grad_sq += static_cast<double>(g[i]) * g[i];
          }
        }
        grad_norm_gauge->Set(std::sqrt(grad_sq));
      }
      adam.Step();
      epoch_loss += loss.value().flat(0);
      ++batches;
    }
    const float mean_loss =
        batches > 0 ? static_cast<float>(epoch_loss / batches) : 0.0f;
    loss_history_.push_back(mean_loss);
    epoch_loss_gauge->Set(mean_loss);
    epochs_counter->Increment();
    if (config_.verbose) {
      IMDIFF_LOG(Info) << name() << " epoch " << epoch << " loss "
                       << mean_loss;
    }
  }
}

DetectionResult ImDiffusionDetector::Run(const Tensor& test) {
  return RunWithTrace(test, nullptr);
}

std::vector<int> ImDiffusionDetector::VoteSteps() const {
  // Vote steps along the reverse chain, expressed as forward index t;
  // s = T - t is the reverse-step number (s == T is the fully denoised step).
  const int num_steps = config_.schedule.num_steps;
  const int vote_span = std::min(config_.vote_last_steps, num_steps);
  std::vector<int> vote_ts;
  for (int t = 0; t < vote_span; t += config_.vote_stride) vote_ts.push_back(t);
  std::sort(vote_ts.begin(), vote_ts.end(), std::greater<int>());
  return vote_ts;
}

int ImDiffusionDetector::ChainStartForDegradeLevel(int degrade_level) const {
  // Truncating the reverse process degrades accuracy smoothly (the imputation
  // starts from a noisier estimate) while keeping every ensemble vote: all
  // vote steps lie in [0, vote_span), so any start >= vote_span - 1 executes
  // the complete voting tail.
  const int num_steps = config_.schedule.num_steps;
  const int vote_span = std::min(config_.vote_last_steps, num_steps);
  if (degrade_level <= 0) return num_steps - 1;
  if (degrade_level == 1) return vote_span - 1 + (num_steps - vote_span) / 2;
  return vote_span - 1;
}

int64_t ImDiffusionDetector::InferenceStride() const {
  // Forecasting imputes only the second half-window; use stride W/2 so that
  // (almost) every timestamp is predicted once. Other strategies cover every
  // point with one window.
  const int64_t window = config_.model.window;
  return config_.mask_strategy == MaskStrategy::kForecasting
             ? std::max<int64_t>(1, window / 2)
             : window;
}

void ImDiffusionDetector::RunChain(
    const Tensor& x0, const Tensor& mask, const Tensor& inv_mask,
    const Tensor& ref_noise, const Tensor& chain_start,
    const std::vector<int64_t>& policies, const std::vector<int>& vote_ts,
    int chain_begin, Rng* chunk_rng, std::vector<Rng>* per_window_rngs,
    std::vector<Tensor>* step_diff, std::vector<Tensor>* step_val) const {
  IMDIFF_CHECK_LT(chain_begin, config_.schedule.num_steps);
  IMDIFF_CHECK(vote_ts.empty() || chain_begin >= vote_ts.front())
      << "truncated chain would skip vote steps";
  const size_t num_votes = vote_ts.size();
  const int64_t bsz = x0.dim(0);
  const int64_t per_window = x0.dim(1) * x0.dim(2);
  Tensor cur = chain_start;  // x_{chain_begin} (pure noise, see header)
  size_t vote_idx = 0;
  std::vector<float> z;
  for (int t = chain_begin; t >= 0; --t) {
    // One denoising step for this (chunk, policy): model forward plus
    // the posterior update. The paper's per-step diagnostics (step-wise
    // imputation quality) hang off this distribution.
    IMDIFF_TRACE_SCOPE("diffusion.step_seconds");
    Tensor x_masked = Mul(cur, inv_mask);
    // Unconditional reference (§4.1): the unmasked values carried through the
    // forward process with their ground-truth noise. The conditional ablation
    // feeds the raw values at every step instead.
    Tensor noise_ref =
        Mul(config_.conditional ? x0 : diffusion_->QSampleWithNoise(x0, t, ref_noise),
            mask);
    Tensor eps_pred =
        model_->Forward(x_masked, noise_ref, mask, t, policies).value();
    // Step's fully-denoised estimate, used for scoring when score_on_x0.
    Tensor x0_hat;
    const bool is_vote = vote_idx < num_votes && t == vote_ts[vote_idx];
    if (is_vote && config_.score_on_x0) {
      x0_hat = diffusion_->PredictX0(cur, eps_pred, t);
    }
    if (!config_.stochastic_sampling) {
      cur = diffusion_->PosteriorMean(cur, eps_pred, t);
    } else if (chunk_rng != nullptr) {
      cur = diffusion_->PStep(cur, eps_pred, t, *chunk_rng);
    } else {
      // Seeded path: posterior mean plus per-window sampling noise, each
      // window drawing from its own generator so the chain is bitwise
      // independent of which windows happen to share the chunk.
      IMDIFF_CHECK(per_window_rngs != nullptr);
      cur = diffusion_->PosteriorMean(cur, eps_pred, t);
      if (t > 0) {
        const float sigma =
            std::sqrt(diffusion_->schedule().posterior_variance(t));
        float* pc = cur.mutable_data();
        z.resize(static_cast<size_t>(per_window));
        for (int64_t b = 0; b < bsz; ++b) {
          (*per_window_rngs)[static_cast<size_t>(b)].FillNormal(z);
          float* pw = pc + b * per_window;
          for (int64_t i = 0; i < per_window; ++i) {
            pw[i] += sigma * z[static_cast<size_t>(i)];
          }
        }
      }
    }
    // Record if this is a vote step (vote_ts is descending in t).
    if (is_vote) {
      // Imputed-region signed residual vs ground truth.
      const float* pc = config_.score_on_x0 ? x0_hat.data() : cur.data();
      const float* px = x0.data();
      const float* pi = inv_mask.data();
      float* ps = (*step_diff)[vote_idx].mutable_data();
      const int64_t n = cur.numel();
      for (int64_t i = 0; i < n; ++i) {
        if (pi[i] != 0.0f) {
          ps[i] += pc[i] - px[i];
        }
      }
      if (step_val != nullptr) {
        float* pv = (*step_val)[vote_idx].mutable_data();
        for (int64_t i = 0; i < n; ++i) {
          if (pi[i] != 0.0f) pv[i] += pc[i];
        }
      }
      ++vote_idx;
    }
  }
}

void ImDiffusionDetector::ErrorRowsFromDiff(
    const std::vector<Tensor>& step_diff, int64_t bsz, int64_t row_offset,
    std::vector<std::vector<std::vector<float>>>* rows) const {
  // Reduce over features -> per-(window, position) error: squared
  // moving-average bias of the signed residual (robust to zero-mean noise)
  // plus a weighted raw squared term (retains point spikes).
  const int64_t k = config_.model.num_features;
  const int64_t window = config_.model.window;
  const size_t num_votes = step_diff.size();
  const int64_t bias_half = std::max(1, config_.bias_window) / 2;
  std::vector<float> bias(static_cast<size_t>(window));
  std::vector<float> max_err(static_cast<size_t>(window));
  for (size_t s = 0; s < num_votes; ++s) {
    const float* ps = step_diff[s].data();
    for (int64_t b = 0; b < bsz; ++b) {
      auto& row = (*rows)[s][static_cast<size_t>(row_offset + b)];
      row.assign(static_cast<size_t>(window), 0.0f);
      std::fill(max_err.begin(), max_err.end(), 0.0f);
      for (int64_t j = 0; j < k; ++j) {
        const float* drow = ps + (b * k + j) * window;
        for (int64_t l = 0; l < window; ++l) {
          const int64_t lo = std::max<int64_t>(0, l - bias_half);
          const int64_t hi = std::min<int64_t>(window - 1, l + bias_half);
          float acc = 0.0f;
          for (int64_t m = lo; m <= hi; ++m) acc += drow[m];
          bias[static_cast<size_t>(l)] = acc / static_cast<float>(hi - lo + 1);
        }
        for (int64_t l = 0; l < window; ++l) {
          const float d = drow[l];
          const float bl = bias[static_cast<size_t>(l)];
          const float e = bl * bl + config_.raw_error_weight * d * d;
          row[static_cast<size_t>(l)] += e;
          max_err[static_cast<size_t>(l)] =
              std::max(max_err[static_cast<size_t>(l)], e);
        }
      }
      // Feature aggregation: mean catches broad deviations, max keeps
      // single-channel anomalies from being diluted by K.
      for (int64_t l = 0; l < window; ++l) {
        row[static_cast<size_t>(l)] =
            0.5f * (row[static_cast<size_t>(l)] / static_cast<float>(k) +
                    max_err[static_cast<size_t>(l)]);
      }
    }
  }
}

std::vector<float> ImDiffusionDetector::SeriesFromWindows(
    const std::vector<std::vector<float>>& window_rows,
    const std::vector<int64_t>& starts, int64_t length) const {
  // Scatter window errors back to series positions (overlap-averaged), with
  // positions lacking coverage dropped from scoring (score 0).
  const int64_t window = config_.model.window;
  std::vector<float> series = OverlapAverage(window_rows, starts, length, window);
  if (config_.mask_strategy == MaskStrategy::kForecasting) {
    // Zero out the uncovered warm-up prefix.
    for (int64_t l = 0; l < std::min<int64_t>(window / 2, length); ++l) {
      series[static_cast<size_t>(l)] = 0.0f;
    }
  } else {
    // The first masked sub-window of the series is imputed with one-sided
    // context only; treat it as warm-up (forecasting baselines likewise
    // skip their history prefix).
    const int64_t warmup =
        std::min<int64_t>(window / (2 * config_.num_masked_windows), length);
    for (int64_t l = 0; l < warmup; ++l) {
      series[static_cast<size_t>(l)] = 0.0f;
    }
  }
  return series;
}

DetectionResult ImDiffusionDetector::ReduceSeries(
    const std::vector<std::vector<std::vector<float>>>& step_window_errors,
    const std::vector<int64_t>& starts, int64_t length,
    double* mean_final_error,
    std::vector<std::vector<float>>* step_series_out,
    std::vector<std::vector<uint8_t>>* step_labels_out,
    std::vector<int>* votes_out) const {
  const size_t num_votes = step_window_errors.size();

  // Centered moving average over the error series (width error_smoothing).
  auto smooth = [&](std::vector<float> series) {
    const int w = config_.error_smoothing;
    if (w <= 1) return series;
    std::vector<float> out(series.size(), 0.0f);
    const int64_t n = static_cast<int64_t>(series.size());
    const int64_t half = w / 2;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t lo = std::max<int64_t>(0, i - half);
      const int64_t hi = std::min(n - 1, i + half);
      float acc = 0.0f;
      for (int64_t j = lo; j <= hi; ++j) acc += series[static_cast<size_t>(j)];
      out[static_cast<size_t>(i)] = acc / static_cast<float>(hi - lo + 1);
    }
    return out;
  };

  std::vector<std::vector<float>> step_series(num_votes);
  for (size_t s = 0; s < num_votes; ++s) {
    step_series[s] = smooth(SeriesFromWindows(step_window_errors[s], starts, length));
  }
  // The final (fully denoised) step is the last entry (t == vote_ts.back(),
  // which is the smallest t; when vote_stride > 1 the true final step t=0 is
  // always included because vote_ts starts at 0).
  const std::vector<float>& final_errors = step_series.back();
  if (mean_final_error != nullptr) {
    *mean_final_error =
        std::accumulate(final_errors.begin(), final_errors.end(), 0.0) /
        std::max<size_t>(1, final_errors.size());
  }

  // Eq. 12: tau_s = (Sum E_final / Sum E_s) tau_final.
  const float tau_final = Quantile(final_errors, config_.tau_quantile);
  const double sum_final =
      std::accumulate(final_errors.begin(), final_errors.end(), 0.0);
  std::vector<std::vector<uint8_t>> step_labels(num_votes);
  std::vector<int> votes(static_cast<size_t>(length), 0);
  std::vector<float> soft_votes(static_cast<size_t>(length), 0.0f);
  for (size_t s = 0; s < num_votes; ++s) {
    const double sum_s =
        std::accumulate(step_series[s].begin(), step_series[s].end(), 0.0);
    const float ratio =
        sum_s > 0.0 ? static_cast<float>(sum_final / sum_s) : 1.0f;
    const float tau_s = ratio * tau_final;
    step_labels[s].resize(static_cast<size_t>(length));
    for (int64_t l = 0; l < length; ++l) {
      const float e = step_series[s][static_cast<size_t>(l)];
      const bool hit = tau_s > 0.0f ? e >= tau_s : false;
      step_labels[s][static_cast<size_t>(l)] = hit ? 1 : 0;
      votes[static_cast<size_t>(l)] += hit ? 1 : 0;
      // Soft vote: continuous threshold margin (gives the ensemble score a
      // fine-grained ordering for threshold-free metrics).
      if (tau_s > 0.0f) {
        soft_votes[static_cast<size_t>(l)] += std::min(e / tau_s, 50.0f);
      }
    }
  }

  DetectionResult result;
  result.labels.resize(static_cast<size_t>(length));
  for (int64_t l = 0; l < length; ++l) {
    result.labels[static_cast<size_t>(l)] =
        votes[static_cast<size_t>(l)] > config_.vote_threshold ? 1 : 0;
  }
  if (config_.ensemble) {
    result.scores.resize(static_cast<size_t>(length));
    for (int64_t l = 0; l < length; ++l) {
      result.scores[static_cast<size_t>(l)] =
          soft_votes[static_cast<size_t>(l)] / static_cast<float>(num_votes);
    }
  } else {
    result.scores = final_errors;
    // Non-ensemble rule: threshold the final-step error directly.
    for (int64_t l = 0; l < length; ++l) {
      result.labels[static_cast<size_t>(l)] =
          final_errors[static_cast<size_t>(l)] >= tau_final ? 1 : 0;
    }
  }

  // Raw (pre-calibration) final-step error channel for cross-model
  // comparison — see DetectionResult::raw_errors.
  result.raw_errors = final_errors;

  if (step_series_out != nullptr) *step_series_out = std::move(step_series);
  if (step_labels_out != nullptr) *step_labels_out = std::move(step_labels);
  if (votes_out != nullptr) *votes_out = std::move(votes);
  return result;
}

DetectionResult ImDiffusionDetector::RunWithTrace(const Tensor& test,
                                                  StepTrace* trace) {
  IMDIFF_TRACE_SCOPE("detector.run_seconds");
  IMDIFF_CHECK(model_ != nullptr) << "Fit must be called before Run";
  IMDIFF_CHECK_EQ(test.ndim(), 2u);
  const int64_t k = test.dim(1);
  IMDIFF_CHECK_EQ(k, config_.model.num_features);
  const int64_t window = config_.model.window;
  const int64_t length = test.dim(0);

  const int64_t stride = InferenceStride();
  const std::vector<int64_t> starts = WindowStarts(length, window, stride);
  Tensor windows = WindowsToBkl(WindowBatch(test, window, stride));
  const int64_t num_windows = windows.dim(0);
  const int64_t per_window = k * window;

  const std::vector<int> vote_ts = VoteSteps();
  const size_t num_votes = vote_ts.size();

  const int num_policies = NumPolicies(config_.mask_strategy);

  // Per vote step: per-window per-position squared-error (mean over features)
  // restricted to imputed coordinates; coverage marks which positions were
  // imputed at all (relevant for forecasting).
  std::vector<std::vector<std::vector<float>>> step_window_errors(
      num_votes,
      std::vector<std::vector<float>>(
          static_cast<size_t>(num_windows),
          std::vector<float>(static_cast<size_t>(window), 0.0f)));
  std::vector<std::vector<std::vector<float>>> step_window_imputed(
      trace != nullptr ? num_votes : 0,
      std::vector<std::vector<float>>(
          static_cast<size_t>(num_windows),
          std::vector<float>(static_cast<size_t>(window), 0.0f)));
  // Masks are deterministic per policy for grating/forecast/reconstruction;
  // for random masking draw one pair shared by all windows of this run.
  auto mask_pair = MakeMaskPair(config_.mask_strategy, k, window,
                                config_.num_masked_windows, rng_.get());

  // Window chunks are independent, so the reverse-diffusion imputation below
  // runs them in parallel on the compute pool. All randomness is taken from
  // rng_ serially up front, in the exact per-(chunk, policy) order the serial
  // loop consumed it, so scores are bitwise identical for every thread count:
  // the chain-start noise and the unmasked-region reference noise are
  // pre-drawn, and (when stochastic_sampling) each (chunk, policy) chain gets
  // its own serially-forked generator for the per-step sampling noise.
  const int64_t num_chunks =
      (num_windows + config_.infer_batch - 1) / config_.infer_batch;
  std::vector<std::vector<Tensor>> pre_ref_noise(
      static_cast<size_t>(num_chunks));
  std::vector<std::vector<Tensor>> pre_chain_start(
      static_cast<size_t>(num_chunks));
  std::vector<std::vector<Rng>> chain_rngs(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t chunk = c * config_.infer_batch;
    const int64_t bsz =
        std::min<int64_t>(config_.infer_batch, num_windows - chunk);
    const Shape shape{bsz, k, window};
    for (int policy = 0; policy < num_policies; ++policy) {
      pre_ref_noise[static_cast<size_t>(c)].push_back(
          Tensor::Randn(shape, *rng_));
      pre_chain_start[static_cast<size_t>(c)].push_back(
          Tensor::Randn(shape, *rng_));
      if (config_.stochastic_sampling) {
        chain_rngs[static_cast<size_t>(c)].push_back(rng_->Fork());
      }
    }
  }

  Counter* const windows_scored =
      MetricsRegistry::Global().GetCounter("detector.windows_scored");
  ParallelFor(ComputePool(), static_cast<size_t>(num_chunks), [&](size_t ci) {
    // Per-chunk scoring latency: the full reverse-diffusion imputation and
    // error reduction for one batch of windows (the unit the pool schedules).
    IMDIFF_TRACE_SCOPE("detector.window_score_seconds");
    const int64_t chunk = static_cast<int64_t>(ci) * config_.infer_batch;
    const int64_t bsz =
        std::min<int64_t>(config_.infer_batch, num_windows - chunk);
    windows_scored->Increment(bsz);
    Tensor x0 = Tensor::Uninitialized({bsz, k, window});
    std::copy_n(windows.data() + chunk * per_window, bsz * per_window,
                x0.mutable_data());

    // Per vote step, accumulated (over policies) signed residual and imputed
    // values per (window, feature, position); each coordinate is masked in
    // exactly one policy, so accumulation assigns each entry once. Tensors
    // share storage when copied, so each entry must be constructed
    // independently.
    std::vector<Tensor> step_diff;
    std::vector<Tensor> step_val;
    step_diff.reserve(num_votes);
    for (size_t s = 0; s < num_votes; ++s) {
      step_diff.emplace_back(Shape{bsz, k, window});
      if (trace != nullptr) step_val.emplace_back(Shape{bsz, k, window});
    }

    for (int policy = 0; policy < num_policies; ++policy) {
      const Tensor& mask2d =
          policy == 0 ? mask_pair.first : mask_pair.second;
      Tensor mask = TileMask(mask2d, bsz);
      Tensor inv_mask = Complement(mask);
      std::vector<int64_t> policies(static_cast<size_t>(bsz), policy);
      RunChain(x0, mask, inv_mask,
               pre_ref_noise[ci][static_cast<size_t>(policy)],
               pre_chain_start[ci][static_cast<size_t>(policy)], policies,
               vote_ts, config_.schedule.num_steps - 1,
               config_.stochastic_sampling
                   ? &chain_rngs[ci][static_cast<size_t>(policy)]
                   : nullptr,
               nullptr, &step_diff, trace != nullptr ? &step_val : nullptr);
    }

    ErrorRowsFromDiff(step_diff, bsz, chunk, &step_window_errors);
    if (trace != nullptr) {
      for (size_t s = 0; s < num_votes; ++s) {
        const float* pv = step_val[s].data();
        for (int64_t b = 0; b < bsz; ++b) {
          auto& vrow = step_window_imputed[s][static_cast<size_t>(chunk + b)];
          for (int64_t l = 0; l < window; ++l) {
            vrow[static_cast<size_t>(l)] = pv[(b * k + 0) * window + l];
          }
        }
      }
    }
  });

  std::vector<std::vector<float>> step_series;
  std::vector<std::vector<uint8_t>> step_labels;
  std::vector<int> votes;
  DetectionResult result = ReduceSeries(
      step_window_errors, starts, length, &last_mean_error_,
      trace != nullptr ? &step_series : nullptr,
      trace != nullptr ? &step_labels : nullptr,
      trace != nullptr ? &votes : nullptr);

  if (trace != nullptr) {
    trace->steps.clear();
    const int num_steps = config_.schedule.num_steps;
    for (int t : vote_ts) trace->steps.push_back(num_steps - t);
    trace->step_errors = std::move(step_series);
    trace->step_labels = std::move(step_labels);
    trace->votes = std::move(votes);
    trace->step_imputed.assign(num_votes, {});
    for (size_t s = 0; s < num_votes; ++s) {
      trace->step_imputed[s] = SeriesFromWindows(step_window_imputed[s], starts, length);
    }
  }
  return result;
}

ImDiffusionDetector::WindowPlan ImDiffusionDetector::PlanWindows(
    const Tensor& series) const {
  IMDIFF_CHECK(model_ != nullptr) << "Fit or LoadModel must be called first";
  IMDIFF_CHECK_EQ(series.ndim(), 2u);
  IMDIFF_CHECK_EQ(series.dim(1), config_.model.num_features);
  WindowPlan plan;
  const int64_t window = config_.model.window;
  const int64_t stride = InferenceStride();
  plan.length = series.dim(0);
  plan.starts = WindowStarts(plan.length, window, stride);
  plan.windows = WindowsToBkl(WindowBatch(series, window, stride));
  return plan;
}

namespace {

// Loose catastrophe gates for first-execution validation of reduced-precision
// graph captures against the fp32 legacy stack: a correct bf16/int8 lowering
// lands orders of magnitude below these, a wrong one (bad pack geometry,
// swapped scales) blows through them. Accuracy proper is judged end-to-end by
// the eval accuracy gate, not here.
float PrecisionRelL2Gate(Precision p) {
  return p == Precision::kInt8 ? 0.5f : 0.25f;
}

// Relative L2 distance between a reduced-precision step tensor and its fp32
// reference; +inf when the quantized result carries a non-finite value.
float StepRelL2(const Tensor& quantized, const Tensor& ref) {
  const float* q = quantized.data();
  const float* f = ref.data();
  const int64_t n = ref.numel();
  double num = 0.0, den = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(q[i])) return std::numeric_limits<float>::infinity();
    const double d = static_cast<double>(q[i]) - static_cast<double>(f[i]);
    num += d * d;
    den += static_cast<double>(f[i]) * static_cast<double>(f[i]);
  }
  return static_cast<float>(std::sqrt(num / (den + 1e-30)));
}

}  // namespace

std::vector<ImDiffusionDetector::WindowScore>
ImDiffusionDetector::ScoreWindowBatch(const Tensor& windows,
                                      const std::vector<uint64_t>& seeds,
                                      int degrade_level,
                                      Precision precision) const {
  IMDIFF_CHECK(model_ != nullptr) << "Fit or LoadModel must be called first";
  const Precision prec = ResolvePrecision(precision);
  IMDIFF_CHECK_EQ(windows.ndim(), 3u);
  const int64_t num_windows = windows.dim(0);
  const int64_t k = windows.dim(1);
  const int64_t window = windows.dim(2);
  IMDIFF_CHECK_EQ(k, config_.model.num_features);
  IMDIFF_CHECK_EQ(window, config_.model.window);
  IMDIFF_CHECK_EQ(static_cast<int64_t>(seeds.size()), num_windows);
  IMDIFF_CHECK(config_.mask_strategy != MaskStrategy::kRandom)
      << "seeded scoring requires a deterministic mask strategy";
  std::vector<WindowScore> result(static_cast<size_t>(num_windows));
  if (num_windows == 0) return result;

  IMDIFF_TRACE_SCOPE("detector.batch_score_seconds");
  const std::vector<int> vote_ts = VoteSteps();
  const size_t num_votes = vote_ts.size();
  const int chain_begin = ChainStartForDegradeLevel(degrade_level);
  const int num_policies = NumPolicies(config_.mask_strategy);
  const int64_t per_window = k * window;

  // The complementary masks are only needed to capture a new graph or to run
  // the legacy stack; steady-state graph scoring touches neither, so they are
  // built lazily (once) to keep warm calls off the arena entirely.
  std::mutex mask_mu;
  std::unique_ptr<std::pair<Tensor, Tensor>> lazy_masks;
  auto masks = [&]() -> const std::pair<Tensor, Tensor>& {
    std::lock_guard<std::mutex> lock(mask_mu);
    if (lazy_masks == nullptr) {
      lazy_masks = std::make_unique<std::pair<Tensor, Tensor>>(
          MakeMaskPair(config_.mask_strategy, k, window,
                       config_.num_masked_windows, nullptr));
    }
    return *lazy_masks;
  };

  // Grab (or lazily create) this detector's captured-graph pool. The local
  // shared_ptr keeps it alive even if Fit/LoadModel swaps the model — and
  // thus the cache — out from under a concurrent scoring call.
  std::shared_ptr<graph::GraphCache> gcache;
  if (graph::GraphEnabled()) {
    std::lock_guard<std::mutex> lock(graph_mu_);
    if (graph_cache_ == nullptr) {
      graph_cache_ = std::make_shared<graph::GraphCache>();
    }
    gcache = graph_cache_;
  }

  std::vector<std::vector<std::vector<float>>> rows(
      num_votes,
      std::vector<std::vector<float>>(static_cast<size_t>(num_windows)));
  const int64_t num_chunks =
      (num_windows + config_.infer_batch - 1) / config_.infer_batch;
  Counter* const windows_scored =
      MetricsRegistry::Global().GetCounter("detector.windows_scored");

  // Legacy (autograd layer stack) chunk body at precision `p`; also the
  // reference a freshly captured graph is validated against on its first
  // execution per kernel mode (DESIGN.md §12, §17). The ScopedPrecision guard
  // routes every nn::Linear inside RunChain through the quantized kernels for
  // non-fp32 p — the same kernels a graph capture at p lowers onto.
  auto legacy_chunk = [&](int64_t chunk, int64_t bsz, Precision p,
                          std::vector<Tensor>* step_diff) {
    ScopedPrecision precision_guard(p);
    Tensor x0 = Tensor::Uninitialized({bsz, k, window});
    std::copy_n(windows.data() + chunk * per_window, bsz * per_window,
                x0.mutable_data());

    // Every noise draw comes from a per-window generator seeded by the
    // caller, consumed in a fixed per-window order (policy-0 reference,
    // policy-0 chain start, policy-1 reference, policy-1 chain start, then
    // forked per-policy sampling streams). A window's chain is therefore
    // identical no matter which windows it shares the chunk with.
    std::vector<Tensor> ref_noise;
    std::vector<Tensor> chain_start;
    for (int policy = 0; policy < num_policies; ++policy) {
      ref_noise.emplace_back(Shape{bsz, k, window});
      chain_start.emplace_back(Shape{bsz, k, window});
    }
    std::vector<std::vector<Rng>> window_rngs(
        static_cast<size_t>(num_policies));
    std::vector<float> scratch(static_cast<size_t>(per_window));
    for (int64_t b = 0; b < bsz; ++b) {
      Rng wrng(seeds[static_cast<size_t>(chunk + b)]);
      for (int policy = 0; policy < num_policies; ++policy) {
        wrng.FillNormal(scratch);
        std::copy(scratch.begin(), scratch.end(),
                  ref_noise[static_cast<size_t>(policy)].mutable_data() +
                      b * per_window);
        wrng.FillNormal(scratch);
        std::copy(scratch.begin(), scratch.end(),
                  chain_start[static_cast<size_t>(policy)].mutable_data() +
                      b * per_window);
      }
      if (config_.stochastic_sampling) {
        for (int policy = 0; policy < num_policies; ++policy) {
          window_rngs[static_cast<size_t>(policy)].push_back(wrng.Fork());
        }
      }
    }

    step_diff->reserve(num_votes);
    for (size_t s = 0; s < num_votes; ++s) {
      step_diff->emplace_back(Shape{bsz, k, window});
    }
    for (int policy = 0; policy < num_policies; ++policy) {
      const Tensor& mask2d = policy == 0 ? masks().first : masks().second;
      Tensor mask = TileMask(mask2d, bsz);
      Tensor inv_mask = Complement(mask);
      std::vector<int64_t> policies(static_cast<size_t>(bsz), policy);
      RunChain(x0, mask, inv_mask, ref_noise[static_cast<size_t>(policy)],
               chain_start[static_cast<size_t>(policy)], policies, vote_ts,
               chain_begin, nullptr,
               config_.stochastic_sampling
                   ? &window_rngs[static_cast<size_t>(policy)]
                   : nullptr,
               step_diff, nullptr);
    }
  };

  ParallelFor(ComputePool(), static_cast<size_t>(num_chunks), [&](size_t ci) {
    IMDIFF_TRACE_SCOPE("detector.window_score_seconds");
    const int64_t chunk = static_cast<int64_t>(ci) * config_.infer_batch;
    const int64_t bsz =
        std::min<int64_t>(config_.infer_batch, num_windows - chunk);
    windows_scored->Increment(bsz);

    if (gcache != nullptr && !gcache->disabled()) {
      std::unique_ptr<graph::GraphContext> ctx =
          gcache->Acquire(bsz, degrade_level, prec, [&]() {
            const std::pair<Tensor, Tensor>& mp = masks();
            graph::DenoiserSpec spec;
            spec.model = model_.get();
            spec.schedule = &diffusion_->schedule();
            for (int policy = 0; policy < num_policies; ++policy) {
              spec.policy_masks.push_back(policy == 0 ? mp.first : mp.second);
            }
            spec.vote_ts = vote_ts;
            spec.chain_begin = chain_begin;
            spec.bsz = bsz;
            spec.conditional = config_.conditional;
            spec.stochastic_sampling = config_.stochastic_sampling;
            spec.score_on_x0 = config_.score_on_x0;
            spec.precision = prec;
            return std::make_unique<graph::GraphContext>(spec);
          });
      if (ctx != nullptr) {
        ctx->ScoreChunk(windows.data() + chunk * per_window,
                        seeds.data() + chunk);
        if (ctx->validated_for_current_mode()) {
          ErrorRowsFromDiff(ctx->step_diff(), bsz, chunk, &rows);
          gcache->Release(bsz, degrade_level, prec, std::move(ctx));
          return;
        }
        // First execution of this capture in the current kernel mode:
        // validate against the legacy stack before trusting it. The lowering
        // check is a memcmp against the legacy stack at the SAME precision —
        // identical kernels, so any difference means the capture is wrong for
        // this build. Non-fp32 captures additionally pass a tolerance gate
        // against the fp32 legacy stack, which catches a quantization path
        // that is self-consistent but numerically broken. Either failure
        // scores with the same-precision legacy result (keeping graph-on ==
        // graph-off bitwise) and permanently disables the cache.
        std::vector<Tensor> ref_diff;
        legacy_chunk(chunk, bsz, prec, &ref_diff);
        bool match = ref_diff.size() == ctx->step_diff().size();
        for (size_t s = 0; match && s < ref_diff.size(); ++s) {
          match = std::memcmp(ref_diff[s].data(), ctx->step_diff()[s].data(),
                              static_cast<size_t>(ref_diff[s].numel()) *
                                  sizeof(float)) == 0;
        }
        if (match && prec != Precision::kF32) {
          std::vector<Tensor> f32_diff;
          legacy_chunk(chunk, bsz, Precision::kF32, &f32_diff);
          const float gate = PrecisionRelL2Gate(prec);
          for (size_t s = 0; match && s < f32_diff.size(); ++s) {
            match = StepRelL2(ctx->step_diff()[s], f32_diff[s]) <= gate;
          }
        }
        if (match) {
          ctx->mark_validated_for_current_mode();
          ErrorRowsFromDiff(ctx->step_diff(), bsz, chunk, &rows);
          gcache->Release(bsz, degrade_level, prec, std::move(ctx));
        } else {
          MetricsRegistry::Global()
              .GetCounter("graph.validation_failures")
              ->Increment();
          gcache->Disable();
          ErrorRowsFromDiff(ref_diff, bsz, chunk, &rows);
        }
        return;
      }
    }

    std::vector<Tensor> step_diff;
    legacy_chunk(chunk, bsz, prec, &step_diff);
    ErrorRowsFromDiff(step_diff, bsz, chunk, &rows);
  });

  for (int64_t w = 0; w < num_windows; ++w) {
    result[static_cast<size_t>(w)].step_errors.resize(num_votes);
    for (size_t s = 0; s < num_votes; ++s) {
      result[static_cast<size_t>(w)].step_errors[s] =
          std::move(rows[s][static_cast<size_t>(w)]);
    }
  }
  return result;
}

DetectionResult ImDiffusionDetector::ReduceWindowScores(
    const std::vector<WindowScore>& scores, const std::vector<int64_t>& starts,
    int64_t length) const {
  IMDIFF_CHECK_EQ(scores.size(), starts.size());
  const size_t num_votes = VoteSteps().size();
  std::vector<std::vector<std::vector<float>>> rows(
      num_votes, std::vector<std::vector<float>>(scores.size()));
  for (size_t w = 0; w < scores.size(); ++w) {
    IMDIFF_CHECK_EQ(scores[w].step_errors.size(), num_votes)
        << "window score from a different vote configuration";
    for (size_t s = 0; s < num_votes; ++s) {
      rows[s][w] = scores[w].step_errors[s];
    }
  }
  return ReduceSeries(rows, starts, length, nullptr, nullptr, nullptr,
                      nullptr);
}

DetectionResult ImDiffusionDetector::RunSeeded(const Tensor& test,
                                               uint64_t seed, int degrade_level,
                                               Precision precision) const {
  WindowPlan plan = PlanWindows(test);
  const int64_t n = plan.windows.dim(0);
  std::vector<uint64_t> seeds(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    seeds[static_cast<size_t>(i)] = MixSeed(seed, static_cast<uint64_t>(i));
  }
  return ReduceWindowScores(
      ScoreWindowBatch(plan.windows, seeds, degrade_level, precision),
      plan.starts, plan.length);
}

Tensor ImDiffusionDetector::ImputeWindow(const Tensor& window,
                                         const Tensor& observed_mask,
                                         uint64_t seed) const {
  IMDIFF_CHECK(model_ != nullptr) << "Fit or LoadModel must be called first";
  IMDIFF_CHECK_EQ(window.ndim(), 2u);
  const int64_t k = window.dim(0);
  const int64_t w = window.dim(1);
  IMDIFF_CHECK_EQ(k, config_.model.num_features);
  IMDIFF_CHECK_EQ(w, config_.model.window);
  IMDIFF_CHECK_EQ(observed_mask.ndim(), 2u);
  IMDIFF_CHECK_EQ(observed_mask.dim(0), k);
  IMDIFF_CHECK_EQ(observed_mask.dim(1), w);
  const int64_t per_window = k * w;

  Tensor x0 = Tensor::Uninitialized({1, k, w});
  std::copy_n(window.data(), per_window, x0.mutable_data());
  Tensor mask = TileMask(observed_mask, 1);
  Tensor inv_mask = Complement(mask);

  // Fixed per-seed draw order: reference noise, chain start, then the forked
  // sampling stream — one chain, conditioned on the caller's genuine
  // missingness pattern instead of a synthetic grating policy mask.
  Rng wrng(seed);
  Tensor ref_noise(Shape{1, k, w});
  Tensor chain_start(Shape{1, k, w});
  std::vector<float> scratch(static_cast<size_t>(per_window));
  wrng.FillNormal(scratch);
  std::copy(scratch.begin(), scratch.end(), ref_noise.mutable_data());
  wrng.FillNormal(scratch);
  std::copy(scratch.begin(), scratch.end(), chain_start.mutable_data());
  std::vector<Rng> window_rngs;
  window_rngs.push_back(wrng.Fork());

  // Run the full reverse chain with the final step (t = 0) as the only vote,
  // capturing the fully denoised estimate over the missing region.
  const std::vector<int> vote_ts = {0};
  const int chain_begin = config_.schedule.num_steps - 1;
  std::vector<Tensor> step_diff;
  step_diff.emplace_back(Shape{1, k, w});
  std::vector<Tensor> step_val;
  step_val.emplace_back(Shape{1, k, w});
  const std::vector<int64_t> policies = {0};
  RunChain(x0, mask, inv_mask, ref_noise, chain_start, policies, vote_ts,
           chain_begin, nullptr,
           config_.stochastic_sampling ? &window_rngs : nullptr, &step_diff,
           &step_val);

  Tensor out = window.Clone();
  float* po = out.mutable_data();
  const float* pv = step_val[0].data();
  const float* pi = inv_mask.data();
  for (int64_t i = 0; i < per_window; ++i) {
    if (pi[i] != 0.0f) po[i] = pv[i];
  }
  return out;
}

void ImDiffusionDetector::SaveModel(const std::string& path) const {
  IMDIFF_CHECK(model_ != nullptr) << "nothing to save before Fit/LoadModel";
  nn::SaveParameters(model_->Parameters(), path);
}

bool ImDiffusionDetector::LoadModel(const std::string& path,
                                    int64_t num_features) {
  IMDIFF_CHECK_GT(num_features, 0);
  config_.model.num_features = num_features;
  config_.model.num_diffusion_steps = config_.schedule.num_steps;
  config_.model.num_policies = 2;
  rng_ = std::make_unique<Rng>(config_.seed);
  model_ = std::make_unique<ImTransformer>(config_.model, *rng_);
  diffusion_ = std::make_unique<GaussianDiffusion>(config_.schedule);
  {
    // Drop captures of the replaced model (raw weight pointers go stale).
    std::lock_guard<std::mutex> lock(graph_mu_);
    graph_cache_.reset();
  }
  std::vector<nn::Var> params = model_->Parameters();
  if (!nn::LoadParameters(params, path)) {
    // Never serve randomly initialized weights: leave the detector unfitted.
    model_.reset();
    diffusion_.reset();
    return false;
  }
  return true;
}

}  // namespace imdiff
