#include "core/im_transformer.h"

#include <cmath>

namespace imdiff {

using nn::Var;

ImTransformer::ImTransformer(const ImTransformerConfig& config, Rng& rng)
    : config_(config) {
  const int64_t d = config_.hidden;
  input_proj_ = std::make_unique<nn::Linear>(3, d, rng);
  step_mlp_ = std::make_unique<nn::Mlp>(config_.step_embed_dim,
                                        config_.step_embed_dim,
                                        config_.step_embed_dim, rng,
                                        nn::Mlp::Activation::kSilu);
  policy_embed_ = std::make_unique<nn::Embedding>(config_.num_policies,
                                                  config_.step_embed_dim, rng);
  feature_embed_ =
      std::make_unique<nn::Embedding>(config_.num_features, config_.side_dim, rng);
  {
    std::vector<int64_t> positions(static_cast<size_t>(config_.window));
    for (int64_t l = 0; l < config_.window; ++l) {
      positions[static_cast<size_t>(l)] = l;
    }
    time_embed_ = nn::SinusoidalEmbedding(positions, config_.side_dim);
  }
  blocks_.resize(static_cast<size_t>(config_.num_blocks));
  for (auto& block : blocks_) {
    block.step_proj =
        std::make_unique<nn::Linear>(config_.step_embed_dim, d, rng);
    if (config_.use_temporal) {
      block.temporal = std::make_unique<nn::TransformerEncoderLayer>(
          d, config_.num_heads, config_.ff_dim, rng);
    }
    if (config_.use_spatial) {
      block.spatial = std::make_unique<nn::TransformerEncoderLayer>(
          d, config_.num_heads, config_.ff_dim, rng);
    }
    block.side_proj = std::make_unique<nn::Linear>(2 * config_.side_dim, d, rng);
    block.gate_proj = std::make_unique<nn::Linear>(d, 2 * d, rng);
    block.out_proj = std::make_unique<nn::Linear>(d, 2 * d, rng);
  }
  head1_ = std::make_unique<nn::Linear>(d, d, rng);
  head2_ = std::make_unique<nn::Linear>(d, 1, rng);
}

Var ImTransformer::Forward(const Tensor& x_masked, const Tensor& noise_ref,
                           const Tensor& mask, int t,
                           const std::vector<int64_t>& policies) const {
  IMDIFF_CHECK_EQ(x_masked.ndim(), 3u);
  const int64_t batch = x_masked.dim(0);
  const int64_t k = x_masked.dim(1);
  const int64_t length = x_masked.dim(2);
  IMDIFF_CHECK_EQ(k, config_.num_features);
  IMDIFF_CHECK_EQ(length, config_.window);
  IMDIFF_CHECK_EQ(static_cast<int64_t>(policies.size()), batch);
  IMDIFF_CHECK(x_masked.shape() == noise_ref.shape());
  IMDIFF_CHECK(x_masked.shape() == mask.shape());
  const int64_t d = config_.hidden;
  const int64_t tokens = k * length;  // token order: (k, l), l contiguous

  // Stack the three input channels as the last axis: [B, K*L, 3].
  Tensor stacked({batch, tokens, 3});
  {
    const float* px = x_masked.data();
    const float* pr = noise_ref.data();
    const float* pm = mask.data();
    float* po = stacked.mutable_data();
    const int64_t n = batch * tokens;
    for (int64_t i = 0; i < n; ++i) {
      po[i * 3 + 0] = px[i];
      po[i * 3 + 1] = pr[i];
      po[i * 3 + 2] = pm[i];
    }
  }
  Var h = input_proj_->Forward(Var(std::move(stacked)));  // [B, K*L, D]

  // Diffusion-step embedding: sinusoidal(t) -> MLP; plus policy embedding.
  // Combined per batch element, then projected per block and broadcast over
  // tokens as [B, 1, D].
  Var step_embed;
  {
    Tensor sin = nn::SinusoidalEmbedding({t}, config_.step_embed_dim);  // [1, E]
    Var s = step_mlp_->Forward(Var(std::move(sin)));                    // [1, E]
    Var p = policy_embed_->Forward(policies);                           // [B, E]
    step_embed = Add(p, s);                                             // [B, E]
  }

  // Complementary side info per token: concat(feature embedding, sinusoidal
  // time embedding) -> [1, K*L, 2*side], built inside the graph so the
  // feature embedding trains.
  Var side_var;
  {
    std::vector<int64_t> feat_idx(static_cast<size_t>(tokens));
    for (int64_t j = 0; j < k; ++j) {
      for (int64_t l = 0; l < length; ++l) {
        feat_idx[static_cast<size_t>(j * length + l)] = j;
      }
    }
    Var feat_rows = feature_embed_->Forward(feat_idx);  // [K*L, side]
    Tensor time_rows({tokens, config_.side_dim});
    {
      const float* pt = time_embed_.data();
      float* po = time_rows.mutable_data();
      for (int64_t j = 0; j < k; ++j) {
        std::copy_n(pt, length * config_.side_dim,
                    po + j * length * config_.side_dim);
      }
    }
    side_var = nn::ConcatV({feat_rows, Var(std::move(time_rows))}, 1);
    side_var = ReshapeV(side_var, {1, tokens, 2 * config_.side_dim});
  }

  Var skip_sum;
  for (const auto& block : blocks_) {
    // Inject diffusion-step + policy embedding.
    Var se = block.step_proj->Forward(step_embed);           // [B, D]
    Var h_in = Add(h, ReshapeV(se, {batch, 1, d}));          // broadcast tokens

    // Temporal transformer: [B, K, L, D] -> [B*K, L, D].
    if (block.temporal != nullptr) {
      Var ht = ReshapeV(h_in, {batch * k, length, d});
      ht = block.temporal->Forward(ht);
      h_in = ReshapeV(ht, {batch, tokens, d});
    }
    // Spatial transformer: [B, K, L, D] -> [B, L, K, D] -> [B*L, K, D].
    if (block.spatial != nullptr) {
      Var hs = ReshapeV(h_in, {batch, k, length, d});
      hs = PermuteV(hs, {0, 2, 1, 3});
      hs = ReshapeV(hs, {batch * length, k, d});
      hs = block.spatial->Forward(hs);
      hs = ReshapeV(hs, {batch, length, k, d});
      hs = PermuteV(hs, {0, 2, 1, 3});
      h_in = ReshapeV(hs, {batch, tokens, d});
    }

    // Complementary information residual head (Fig. 5b).
    h_in = Add(h_in, block.side_proj->Forward(side_var));

    // Gated activation (DiffWave): tanh(filter) * sigmoid(gate).
    Var fg = block.gate_proj->Forward(h_in);  // [B, K*L, 2D]
    Var filter = SliceV(fg, 2, 0, d);
    Var gate = SliceV(fg, 2, d, d);
    Var gated = Mul(TanhV(filter), SigmoidV(gate));

    // Residual + skip split.
    Var rs = block.out_proj->Forward(gated);  // [B, K*L, 2D]
    Var residual = SliceV(rs, 2, 0, d);
    Var skip = SliceV(rs, 2, d, d);
    h = ScaleV(Add(h, residual), 1.0f / std::sqrt(2.0f));
    skip_sum = skip_sum.defined() ? Add(skip_sum, skip) : skip;
  }

  Var out = ScaleV(skip_sum, 1.0f / std::sqrt(static_cast<float>(
                                  config_.num_blocks)));
  out = ReluV(head1_->Forward(out));
  out = head2_->Forward(out);                    // [B, K*L, 1]
  return ReshapeV(out, {batch, k, length});      // ε̂
}

std::vector<Var> ImTransformer::Parameters() const {
  std::vector<Var> params;
  auto append = [&params](const std::vector<Var>& p) {
    params.insert(params.end(), p.begin(), p.end());
  };
  append(input_proj_->Parameters());
  append(step_mlp_->Parameters());
  append(policy_embed_->Parameters());
  append(feature_embed_->Parameters());
  for (const auto& block : blocks_) {
    append(block.step_proj->Parameters());
    if (block.temporal != nullptr) append(block.temporal->Parameters());
    if (block.spatial != nullptr) append(block.spatial->Parameters());
    append(block.side_proj->Parameters());
    append(block.gate_proj->Parameters());
    append(block.out_proj->Parameters());
  }
  append(head1_->Parameters());
  append(head2_->Parameters());
  return params;
}

}  // namespace imdiff
