// Common interface implemented by ImDiffusion and every baseline detector.

#ifndef IMDIFF_CORE_DETECTOR_H_
#define IMDIFF_CORE_DETECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace imdiff {

// Output of one detection pass over a test series.
struct DetectionResult {
  // Per-timestamp anomaly score, higher = more anomalous. Always present.
  std::vector<float> scores;
  // Optional built-in binary decision (detectors with an internal rule, e.g.
  // ImDiffusion's ensemble voting). Empty when the detector defers
  // thresholding to the harness.
  std::vector<uint8_t> labels;
  // Optional per-timestamp raw reconstruction error, BEFORE any per-series
  // threshold calibration (for ImDiffusion: the smoothed final-step imputed
  // error). Unlike `scores` — which Eq. 12 self-calibrates against the scored
  // series' own error quantile, making its mean nearly scale-invariant — the
  // raw error is scale-sensitive, so two models scoring the same normalized
  // inputs are directly comparable on it. The continuous-refresh drift
  // verdict sketches this channel. Empty for detectors without it.
  std::vector<float> raw_errors;
};

// A self-supervised anomaly detector: fit on an anomaly-free series, score a
// test series per timestamp.
class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  virtual std::string name() const = 0;

  // Trains on a [L, K] series assumed anomaly-free.
  virtual void Fit(const Tensor& train) = 0;

  // Scores a [L, K] test series. Fit must have been called.
  virtual DetectionResult Run(const Tensor& test) = 0;
};

}  // namespace imdiff

#endif  // IMDIFF_CORE_DETECTOR_H_
