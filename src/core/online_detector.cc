#include "core/online_detector.h"

#include <algorithm>

#include "utils/check.h"
#include "utils/metrics.h"

namespace imdiff {

OnlineDetector::OnlineDetector(AnomalyDetector* detector,
                               const Options& options)
    : detector_(detector), options_(options) {
  IMDIFF_CHECK_GT(options_.block, 0);
  IMDIFF_CHECK_GE(options_.context, 0);
}

void OnlineDetector::Fit(const Tensor& raw_train) {
  IMDIFF_CHECK_EQ(raw_train.ndim(), 2u);
  num_features_ = raw_train.dim(1);
  stats_ = FitMinMax(raw_train);
  detector_->Fit(ApplyMinMax(raw_train, stats_));
}

void OnlineDetector::SetNormalization(const MinMaxStats& stats) {
  IMDIFF_CHECK(!stats.min.empty());
  IMDIFF_CHECK_EQ(stats.min.size(), stats.max.size());
  num_features_ = static_cast<int64_t>(stats.min.size());
  stats_ = stats;
}

bool OnlineDetector::AppendBuffered(const std::vector<float>& sample,
                                    ReadyBlock* ready) {
  return AppendBuffered(sample, {}, ready);
}

bool OnlineDetector::AppendBuffered(const std::vector<float>& sample,
                                    const std::vector<uint8_t>& observed,
                                    ReadyBlock* ready) {
  IMDIFF_CHECK_GT(num_features_, 0)
      << "Fit or SetNormalization must be called before Append";
  IMDIFF_CHECK_EQ(static_cast<int64_t>(sample.size()), num_features_);
  IMDIFF_CHECK(observed.empty() ||
               static_cast<int64_t>(observed.size()) == num_features_);
  // Normalize the incoming sample with the training statistics; missing
  // features get the carry-forward fill instead (see header).
  std::vector<float> normalized(sample.size());
  if (fill_.empty()) fill_.assign(static_cast<size_t>(num_features_), 0.5f);
  int64_t filled = 0;
  for (int64_t j = 0; j < num_features_; ++j) {
    if (!observed.empty() && observed[static_cast<size_t>(j)] == 0) {
      normalized[static_cast<size_t>(j)] = fill_[static_cast<size_t>(j)];
      ++filled;
      continue;
    }
    const float range = stats_.max[static_cast<size_t>(j)] -
                        stats_.min[static_cast<size_t>(j)];
    const float inv = range > 1e-9f ? 1.0f / range : 0.0f;
    const float value = std::clamp(
        (sample[static_cast<size_t>(j)] - stats_.min[static_cast<size_t>(j)]) *
            inv,
        -1.0f, 2.0f);
    normalized[static_cast<size_t>(j)] = value;
    fill_[static_cast<size_t>(j)] = value;
  }
  if (filled > 0) {
    MetricsRegistry::Global()
        .GetCounter("online.missing_filled")
        ->Increment(filled);
  }
  buffer_.push_back(std::move(normalized));
  const int64_t max_buffer = options_.context + options_.block;
  while (static_cast<int64_t>(buffer_.size()) > max_buffer) {
    buffer_.pop_front();
  }
  ++total_samples_;
  ++pending_;

  if (pending_ < options_.block) return false;
  pending_ = 0;
  IMDIFF_CHECK(ready != nullptr);

  const int64_t buffered = static_cast<int64_t>(buffer_.size());
  Tensor series({buffered, num_features_});
  float* p = series.mutable_data();
  for (int64_t i = 0; i < buffered; ++i) {
    std::copy(buffer_[static_cast<size_t>(i)].begin(),
              buffer_[static_cast<size_t>(i)].end(), p + i * num_features_);
  }
  ready->series = std::move(series);
  ready->total_at_ready = total_samples_;
  ready->block = options_.block;
  return true;
}

OnlineDetector::Alert OnlineDetector::MakeAlert(const ReadyBlock& ready,
                                                const DetectionResult& result) {
  const int64_t buffered = ready.series.dim(0);
  // A windowed detector may legitimately return fewer scores than the block
  // size on a short first block (it cannot score positions before its first
  // full window), but never more than it was given, and labels must line up
  // with scores. Clamp the emitted tail to what is actually available —
  // `scores.end() - emit` with emit > size would be UB.
  IMDIFF_CHECK_LE(result.scores.size(), static_cast<size_t>(buffered))
      << "wrapped detector returned more scores than samples";
  IMDIFF_CHECK(result.labels.empty() ||
               result.labels.size() == result.scores.size())
      << "wrapped detector returned mismatched labels"
      << "(" << result.labels.size() << " vs " << result.scores.size() << ")";
  Alert alert;
  const int64_t emit =
      std::min({ready.block, buffered,
                static_cast<int64_t>(result.scores.size())});
  alert.start = ready.total_at_ready - emit;
  alert.scores.assign(result.scores.end() - emit, result.scores.end());
  if (!result.labels.empty()) {
    alert.labels.assign(result.labels.end() - emit, result.labels.end());
  }
  if (result.raw_errors.size() == result.scores.size()) {
    alert.raw_errors.assign(result.raw_errors.end() - emit,
                            result.raw_errors.end());
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("online.blocks_scored")->Increment();
  registry.GetCounter("online.samples_emitted")->Increment(emit);
  return alert;
}

OnlineDetector::Alert OnlineDetector::Append(const std::vector<float>& sample) {
  IMDIFF_CHECK(detector_ != nullptr)
      << "Append needs a wrapped detector; deferred mode (null detector)"
      << "uses AppendBuffered + MakeAlert";
  ReadyBlock ready;
  if (!AppendBuffered(sample, &ready)) return Alert{};

  // Block scoring latency is the paper's §6 timeliness signal: a block must
  // score faster than it accumulates (30 s per sample in production).
  IMDIFF_TRACE_SCOPE("online.block_score_seconds");
  const DetectionResult result = detector_->Run(ready.series);
  return MakeAlert(ready, result);
}

OnlineDetector::State OnlineDetector::ExportState() const {
  State state;
  state.num_features = num_features_;
  state.total_samples = total_samples_;
  state.pending = pending_;
  state.stats = stats_;
  state.buffer.assign(buffer_.begin(), buffer_.end());
  state.fill = fill_;
  return state;
}

void OnlineDetector::ImportState(const State& state) {
  num_features_ = state.num_features;
  total_samples_ = state.total_samples;
  pending_ = state.pending;
  stats_ = state.stats;
  buffer_.assign(state.buffer.begin(), state.buffer.end());
  fill_ = state.fill;
}

void OnlineDetector::Reset() {
  buffer_.clear();
  total_samples_ = 0;
  pending_ = 0;
  fill_.clear();
}

}  // namespace imdiff
