#include "core/masking.h"

#include "utils/check.h"

namespace imdiff {

Tensor MakeGratingMask(int64_t num_features, int64_t window,
                       int num_masked_windows, int policy) {
  IMDIFF_CHECK_GT(num_masked_windows, 0);
  IMDIFF_CHECK(policy == 0 || policy == 1);
  const int num_subwindows = 2 * num_masked_windows;
  IMDIFF_CHECK_GE(window, num_subwindows);
  Tensor mask = Tensor::Full({num_features, window}, 1.0f);
  float* p = mask.mutable_data();
  for (int64_t l = 0; l < window; ++l) {
    // Sub-window index via even partition (handles window % num_subwindows).
    const int sub = static_cast<int>(l * num_subwindows / window);
    const bool masked = (sub % 2) == policy;
    if (masked) {
      for (int64_t k = 0; k < num_features; ++k) p[k * window + l] = 0.0f;
    }
  }
  return mask;
}

std::pair<Tensor, Tensor> MakeMaskPair(MaskStrategy strategy,
                                       int64_t num_features, int64_t window,
                                       int num_masked_windows, Rng* rng) {
  switch (strategy) {
    case MaskStrategy::kGrating: {
      return {MakeGratingMask(num_features, window, num_masked_windows, 0),
              MakeGratingMask(num_features, window, num_masked_windows, 1)};
    }
    case MaskStrategy::kRandom: {
      IMDIFF_CHECK(rng != nullptr) << "random masking needs an Rng";
      Tensor m0({num_features, window});
      Tensor m1({num_features, window});
      float* p0 = m0.mutable_data();
      float* p1 = m1.mutable_data();
      const int64_t n = m0.numel();
      for (int64_t i = 0; i < n; ++i) {
        const bool observed = rng->Bernoulli(0.5);
        p0[i] = observed ? 1.0f : 0.0f;
        p1[i] = observed ? 0.0f : 1.0f;
      }
      return {std::move(m0), std::move(m1)};
    }
    case MaskStrategy::kForecasting: {
      Tensor m = Tensor::Full({num_features, window}, 1.0f);
      float* p = m.mutable_data();
      const int64_t split = window / 2;
      for (int64_t k = 0; k < num_features; ++k) {
        for (int64_t l = split; l < window; ++l) p[k * window + l] = 0.0f;
      }
      return {m, m.Clone()};
    }
    case MaskStrategy::kReconstruction: {
      Tensor m = Tensor::Zeros({num_features, window});
      return {m, m.Clone()};
    }
  }
  IMDIFF_CHECK(false) << "unreachable";
  return {Tensor(), Tensor()};
}

Tensor MaskFromObserved(const std::vector<uint8_t>& observed,
                        int64_t num_features, int64_t window) {
  IMDIFF_CHECK_EQ(static_cast<int64_t>(observed.size()),
                  num_features * window);
  Tensor mask({num_features, window});
  float* p = mask.mutable_data();
  for (int64_t l = 0; l < window; ++l) {
    for (int64_t k = 0; k < num_features; ++k) {
      // observed is time-major (stream layout), the mask feature-major.
      p[k * window + l] =
          observed[static_cast<size_t>(l * num_features + k)] ? 1.0f : 0.0f;
    }
  }
  return mask;
}

int NumPolicies(MaskStrategy strategy) {
  switch (strategy) {
    case MaskStrategy::kGrating:
    case MaskStrategy::kRandom:
      return 2;
    case MaskStrategy::kForecasting:
    case MaskStrategy::kReconstruction:
      return 1;
  }
  return 1;
}

}  // namespace imdiff
