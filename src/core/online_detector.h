// Online streaming wrapper around an AnomalyDetector, matching the paper's
// §6 deployment mode: samples arrive one at a time (30 s latency samples in
// production); once a full detection window has accumulated, the window is
// scored and per-timestamp alerts are emitted with bounded delay.

#ifndef IMDIFF_CORE_ONLINE_DETECTOR_H_
#define IMDIFF_CORE_ONLINE_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/detector.h"
#include "data/dataset.h"

namespace imdiff {

// Streams samples into a fitted detector. The wrapper owns the normalization
// statistics (fit on the training history) so raw production samples can be
// pushed directly.
class OnlineDetector {
 public:
  struct Options {
    // Samples per scored block. Smaller blocks reduce alert latency at the
    // cost of more frequent inference; the block is padded with recent
    // history up to the detector's preferred context before scoring.
    int64_t block = 100;
    // History samples retained in front of each block for context.
    int64_t context = 100;
  };

  // `detector` must outlive this wrapper. Fit() must be called before
  // streaming.
  OnlineDetector(AnomalyDetector* detector, const Options& options);

  // Fits the wrapped detector on raw (unnormalized) training history and
  // records its normalization statistics.
  void Fit(const Tensor& raw_train);

  // Emitted scores/labels for one block of timestamps.
  struct Alert {
    int64_t start = 0;                // global index of the block's first sample
    std::vector<float> scores;        // per-timestamp
    std::vector<uint8_t> labels;      // detector's built-in rule (may be empty)
  };

  // Appends one [K] sample. Returns an Alert when a block boundary was
  // crossed and the block was scored; otherwise an Alert with empty scores.
  // The alert may carry fewer than `block` scores when the wrapped detector
  // cannot score the whole block yet (e.g. a windowed detector on a first
  // block shorter than its window); `start` always indexes the first emitted
  // score.
  Alert Append(const std::vector<float>& sample);

  // Total samples streamed so far.
  int64_t total_samples() const { return total_samples_; }

 private:
  AnomalyDetector* detector_;
  Options options_;
  MinMaxStats stats_;
  int64_t num_features_ = 0;
  int64_t total_samples_ = 0;
  // Normalized rolling buffer: up to context_ + block samples.
  std::deque<std::vector<float>> buffer_;
  int64_t pending_ = 0;  // samples accumulated toward the current block
};

}  // namespace imdiff

#endif  // IMDIFF_CORE_ONLINE_DETECTOR_H_
