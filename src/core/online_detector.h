// Online streaming wrapper around an AnomalyDetector, matching the paper's
// §6 deployment mode: samples arrive one at a time (30 s latency samples in
// production); once a full detection window has accumulated, the window is
// scored and per-timestamp alerts are emitted with bounded delay.
//
// Two usage modes:
//  - Standalone (Append): each full block is scored synchronously through the
//    wrapped detector — the original single-stream mode.
//  - Deferred (AppendBuffered + MakeAlert): the buffering and the scoring are
//    split so an external scheduler (the serving layer's cross-session
//    micro-batcher, src/serve) can score many sessions' blocks in one batched
//    pass. ExportState/ImportState snapshot the streaming state losslessly so
//    a session manager can LRU-evict idle sessions and rehydrate them later
//    with bitwise-identical continuation.

#ifndef IMDIFF_CORE_ONLINE_DETECTOR_H_
#define IMDIFF_CORE_ONLINE_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/detector.h"
#include "data/dataset.h"

namespace imdiff {

// Streams samples into a fitted detector. The wrapper owns the normalization
// statistics (fit on the training history) so raw production samples can be
// pushed directly.
class OnlineDetector {
 public:
  struct Options {
    // Samples per scored block. Smaller blocks reduce alert latency at the
    // cost of more frequent inference; the block is padded with recent
    // history up to the detector's preferred context before scoring.
    int64_t block = 100;
    // History samples retained in front of each block for context.
    int64_t context = 100;
  };

  // `detector` must outlive this wrapper; it may be null when only the
  // deferred path (AppendBuffered + MakeAlert) is used — the serving layer's
  // sessions score through the shared registry model, not the wrapper.
  // Fit() (or SetNormalization with a pre-fitted detector) must be called
  // before streaming.
  OnlineDetector(AnomalyDetector* detector, const Options& options);

  // Fits the wrapped detector on raw (unnormalized) training history and
  // records its normalization statistics.
  void Fit(const Tensor& raw_train);

  // Adopts normalization statistics without (re)fitting the wrapped
  // detector. Serving mode: the detector is pre-fitted once, shared
  // read-only across many sessions, and each session only needs the
  // normalization of its training history.
  void SetNormalization(const MinMaxStats& stats);

  // Emitted scores/labels for one block of timestamps.
  struct Alert {
    int64_t start = 0;                // global index of the block's first sample
    std::vector<float> scores;        // per-timestamp
    std::vector<uint8_t> labels;      // detector's built-in rule (may be empty)
    // Raw pre-calibration error tail (DetectionResult::raw_errors); empty
    // when the wrapped detector does not expose it. The refresh drift
    // verdict prefers this channel over the self-calibrated scores.
    std::vector<float> raw_errors;
  };

  // A full block ready for scoring: the normalized context+block series plus
  // the bookkeeping MakeAlert needs to emit the scored tail.
  struct ReadyBlock {
    Tensor series;               // [buffered, K] normalized context + block
    int64_t total_at_ready = 0;  // total_samples() when the block filled
    int64_t block = 0;           // configured block size
  };

  // Appends one [K] sample. Returns an Alert when a block boundary was
  // crossed and the block was scored; otherwise an Alert with empty scores.
  // The alert may carry fewer than `block` scores when the wrapped detector
  // cannot score the whole block yet (e.g. a windowed detector on a first
  // block shorter than its window); `start` always indexes the first emitted
  // score.
  Alert Append(const std::vector<float>& sample);

  // Buffering half of Append: normalizes and buffers one sample; returns
  // true when a block boundary was crossed and fills `ready`. The caller
  // owns scoring (possibly batched across sessions) and converts the
  // detector result into an Alert with MakeAlert.
  bool AppendBuffered(const std::vector<float>& sample, ReadyBlock* ready);

  // Missing-aware variant: observed[j] == 0 marks feature j of this sample
  // as missing (sensor dropout / outage gap, see data/ugly_stream.h). The
  // raw value at a missing feature is never read; the buffered series gets
  // the feature's last observed normalized value instead (0.5 — the training
  // mid-range — before any observation). The fill is a pure function of the
  // stream's observed history, so block series, window seeds, and the
  // serving layer's position-keyed window-score cache all stay bitwise
  // deterministic, and stash/rehydrate (the fill state travels in State)
  // preserves that determinism across evictions. `online.missing_filled`
  // counts filled elements. An empty `observed` means fully observed.
  bool AppendBuffered(const std::vector<float>& sample,
                      const std::vector<uint8_t>& observed, ReadyBlock* ready);

  // Emission half of Append: clamps the detector result to the block tail.
  // Static so alerts can be emitted even after the originating session was
  // evicted (the ReadyBlock carries everything needed).
  static Alert MakeAlert(const ReadyBlock& ready, const DetectionResult& result);

  // Lossless snapshot of the streaming state (normalization stats, rolling
  // buffer, counters). The wrapped detector is NOT included: in serving it
  // is shared read-only and owned by the model registry.
  struct State {
    int64_t num_features = 0;
    int64_t total_samples = 0;
    int64_t pending = 0;
    MinMaxStats stats;
    std::vector<std::vector<float>> buffer;
    // Carry-forward fill values for missing features (normalized); empty
    // when the stream never saw a missing element.
    std::vector<float> fill;
  };
  State ExportState() const;
  void ImportState(const State& state);

  // Drops buffered samples and counters, keeping normalization and the
  // wrapped detector's fit.
  void Reset();

  // Total samples streamed so far.
  int64_t total_samples() const { return total_samples_; }
  const Options& options() const { return options_; }
  const MinMaxStats& normalization() const { return stats_; }

 private:
  AnomalyDetector* detector_;
  Options options_;
  MinMaxStats stats_;
  int64_t num_features_ = 0;
  int64_t total_samples_ = 0;
  // Normalized rolling buffer: up to context_ + block samples.
  std::deque<std::vector<float>> buffer_;
  int64_t pending_ = 0;  // samples accumulated toward the current block
  // Last observed normalized value per feature, used to fill missing
  // elements. Lazily sized on the first missing-aware append.
  std::vector<float> fill_;
};

}  // namespace imdiff

#endif  // IMDIFF_CORE_ONLINE_DETECTOR_H_
