// Data-masking strategies for imputation-based anomaly detection (paper
// §4.2).
//
// Masks are [K, L] tensors with 1 = observed (unmasked) and 0 = missing
// (to impute), matching the paper's mask M. The two policies p ∈ {0, 1} are
// mutually complementary so every point is imputed by exactly one policy.

#ifndef IMDIFF_CORE_MASKING_H_
#define IMDIFF_CORE_MASKING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "utils/rng.h"

namespace imdiff {

enum class MaskStrategy {
  kGrating,  // equal-interval staggered windows along time (paper default)
  kRandom,   // iid Bernoulli(0.5) element masking (CSDI-style)
  // Ablation modes that reduce imputation to the classic tasks:
  kForecasting,     // first half observed, second half missing
  kReconstruction,  // everything missing
};

// Grating mask for one policy: the window of length L is cut into
// 2 * num_masked_windows equal sub-windows; policy 0 masks the even ones,
// policy 1 the odd ones. Masks span all K features (Fig. 3).
Tensor MakeGratingMask(int64_t num_features, int64_t window,
                       int num_masked_windows, int policy);

// Complementary mask pair for the given strategy. For kRandom the pair is a
// Bernoulli draw and its complement (rng required). For kForecasting /
// kReconstruction only policy 0 is meaningful; policy 1 repeats it so callers
// can treat every strategy uniformly.
std::pair<Tensor, Tensor> MakeMaskPair(MaskStrategy strategy,
                                       int64_t num_features, int64_t window,
                                       int num_masked_windows, Rng* rng);

// Number of distinct mask policies a strategy uses at inference (2 for
// grating/random, 1 for forecasting/reconstruction).
int NumPolicies(MaskStrategy strategy);

// Converts genuinely-missing-data flags into this module's mask convention:
// `observed` holds window*num_features time-major flags (index t*K + k, the
// layout of streamed [L, K] samples), the result is a [K, window]
// feature-major tensor with 1 = observed — the shape the denoiser and
// ImDiffusionDetector::ImputeWindow consume. This is the bridge that routes
// real missingness (sensor dropouts, outage gaps; see data/ugly_stream.h)
// through the same machinery the synthetic grating masks use.
Tensor MaskFromObserved(const std::vector<uint8_t>& observed,
                        int64_t num_features, int64_t window);

}  // namespace imdiff

#endif  // IMDIFF_CORE_MASKING_H_
