// ImTransformer: the denoising network of ImDiffusion (paper §4.4, Fig. 5).
//
// A stack of residual blocks in the DiffWave/CSDI style. Each block mixes in
// the diffusion-step embedding and masking-policy embedding, applies a
// temporal transformer layer (attention over the time axis, per feature) and
// a spatial transformer layer (attention over the feature axis, per
// timestep), combines the result with the complementary time/feature side
// information, and emits a gated residual plus a skip connection. The summed
// skips are projected to the ε prediction.

#ifndef IMDIFF_CORE_IM_TRANSFORMER_H_
#define IMDIFF_CORE_IM_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"

namespace imdiff {

struct ImTransformerConfig {
  int64_t num_features = 8;   // K
  int64_t window = 100;       // L
  int64_t hidden = 64;        // residual channel dim (paper: 128)
  int num_blocks = 4;         // residual blocks (paper: 4)
  int num_heads = 4;
  int64_t ff_dim = 128;       // transformer feed-forward width
  int64_t step_embed_dim = 64;
  int64_t side_dim = 32;      // time/feature complementary embedding width
  int num_policies = 2;       // grating mask policies
  int num_diffusion_steps = 50;
  // Ablations (§5.3.5): drop the spatial or temporal transformer.
  bool use_temporal = true;
  bool use_spatial = true;
};

// The ε_Θ(X_t^{M0}, t | ε_t^{M1}, p) network.
class ImTransformer : public nn::Module {
 public:
  ImTransformer(const ImTransformerConfig& config, Rng& rng);

  // Predicts the noise for a batch of windows.
  //   x_masked  [B, K, L]: corrupted values on the masked (to-impute) region,
  //                        zero on the observed region
  //   noise_ref [B, K, L]: reference for the observed region (forward noise
  //                        in the unconditional model, raw values in the
  //                        conditional ablation), zero on the masked region
  //   mask      [B, K, L]: 1 = observed
  //   t: diffusion step (shared across the batch)
  //   policies: mask policy index per batch element
  // Returns ε̂ [B, K, L] as an autograd Var (differentiable wrt parameters).
  nn::Var Forward(const Tensor& x_masked, const Tensor& noise_ref,
                  const Tensor& mask, int t,
                  const std::vector<int64_t>& policies) const;

  std::vector<nn::Var> Parameters() const override;
  const ImTransformerConfig& config() const { return config_; }

  struct ResidualBlock {
    std::unique_ptr<nn::Linear> step_proj;    // D_step -> D
    std::unique_ptr<nn::TransformerEncoderLayer> temporal;
    std::unique_ptr<nn::TransformerEncoderLayer> spatial;
    std::unique_ptr<nn::Linear> side_proj;    // 2*side -> D
    std::unique_ptr<nn::Linear> gate_proj;    // D -> 2D (filter/gate)
    std::unique_ptr<nn::Linear> out_proj;     // D -> 2D (residual/skip)
  };

  // Read-only access for the inference graph capturer (src/graph), which
  // lowers the frozen network onto flat kernels without touching autograd.
  const nn::Linear& input_proj() const { return *input_proj_; }
  const nn::Mlp& step_mlp() const { return *step_mlp_; }
  const nn::Embedding& policy_embed() const { return *policy_embed_; }
  const nn::Embedding& feature_embed() const { return *feature_embed_; }
  const Tensor& time_embed() const { return time_embed_; }
  const std::vector<ResidualBlock>& residual_blocks() const { return blocks_; }
  const nn::Linear& head1() const { return *head1_; }
  const nn::Linear& head2() const { return *head2_; }

 private:

  ImTransformerConfig config_;
  std::unique_ptr<nn::Linear> input_proj_;    // 3 -> D (x, ref, mask channels)
  std::unique_ptr<nn::Mlp> step_mlp_;         // sinusoidal -> D_step
  std::unique_ptr<nn::Embedding> policy_embed_;  // [num_policies, D_step]
  std::unique_ptr<nn::Embedding> feature_embed_; // [K, side]
  Tensor time_embed_;                          // [L, side] sinusoidal constant
  std::vector<ResidualBlock> blocks_;
  std::unique_ptr<nn::Linear> head1_;          // D -> D
  std::unique_ptr<nn::Linear> head2_;          // D -> 1
};

}  // namespace imdiff

#endif  // IMDIFF_CORE_IM_TRANSFORMER_H_
