// The ImDiffusion anomaly detector (paper §4).
//
// Pipeline: grating (or random) masking creates complementary missing-value
// patterns; an unconditional imputed diffusion model (ImTransformer denoiser)
// is trained with the ε-prediction objective restricted to the masked region
// (Eq. 11); at inference the reverse chain imputes the masked values, the
// per-step imputed errors E_t form the ensemble signal (Algorithm 1), and the
// rescaled thresholds of Eq. 12 plus the vote count V_l yield the anomaly
// decision.

#ifndef IMDIFF_CORE_IMDIFFUSION_H_
#define IMDIFF_CORE_IMDIFFUSION_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/im_transformer.h"
#include "data/dataset.h"
#include "core/masking.h"
#include "diffusion/ddpm.h"
#include "graph/graph.h"
#include "tensor/precision.h"
#include "utils/rng.h"

namespace imdiff {

struct ImDiffusionConfig {
  // Model (K is filled in from the data at Fit time).
  ImTransformerConfig model;
  // Diffusion schedule; schedule.num_steps is the paper's T (Table 1: 50).
  ScheduleConfig schedule;
  // Masking (Table 1: 5 masked + 5 unmasked grating windows).
  MaskStrategy mask_strategy = MaskStrategy::kGrating;
  int num_masked_windows = 5;
  // Conditional ablation (§5.3.3): feed raw observed values instead of the
  // forward noise as the unmasked-region reference.
  bool conditional = false;
  // Ensemble voting (§4.5); false = final-step error only.
  bool ensemble = true;
  // Reverse-process sampling noise. true follows the paper's DDPM ancestral
  // sampler; false uses the posterior mean only (DDIM-style σ=0), which
  // stabilizes single-chain imputation — useful at CPU scale where averaging
  // many chains (as CSDI does) is unaffordable.
  bool stochastic_sampling = true;

  // Training.
  int epochs = 20;
  int batch_size = 8;
  float lr = 1e-3f;
  int64_t train_stride = 50;

  // Inference.
  int infer_batch = 16;
  // Vote over every `vote_stride`-th of the last `vote_last_steps` reverse
  // steps (paper: every 3rd of the last 30).
  int vote_last_steps = 30;
  int vote_stride = 3;
  // τ_T: upper percentile of final-step imputed errors (Eq. 12 baseline).
  double tau_quantile = 0.97;
  // Per-step error construction. The paper scores with the raw squared
  // imputation error; production series additionally carry zero-mean noise
  // bursts that spike the squared error without being anomalies. The bias
  // term — the squared moving average of the *signed* residual over
  // `bias_window` steps — cancels symmetric noise while preserving
  // systematic deviations (level shifts, drifts). The final per-step error
  // is  mean_k( bias² + raw_error_weight · d² ).
  int bias_window = 5;
  float raw_error_weight = 0.4f;
  // Additional moving average over the combined error series (1 = off).
  int error_smoothing = 1;
  // ξ: votes required to mark an anomaly.
  int vote_threshold = 5;
  // Per-step error target: true scores each vote step against the x̂0
  // projection implied by (x_t, ε̂) — the step's fully-denoised estimate,
  // matching the refined step-wise imputations of the paper's Fig. 8.
  // false scores against the raw intermediate chain state X_{t-1}.
  bool score_on_x0 = true;

  uint64_t seed = 1;
  bool verbose = false;
};

// Returns a config scaled for single-core CPU runs (smaller hidden dim,
// fewer blocks/steps/epochs). `paper` = Table 1 values.
ImDiffusionConfig PaperImDiffusionConfig();
ImDiffusionConfig FastImDiffusionConfig();

class ImDiffusionDetector : public AnomalyDetector {
 public:
  explicit ImDiffusionDetector(const ImDiffusionConfig& config);

  std::string name() const override;
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

  // Fit entry point for the serving layer's continuous refresh (DESIGN.md
  // §18): takes a RAW (unnormalized) [L, K] sample window — e.g. the
  // registry-assembled sliding window of recent stream samples — normalizes,
  // and runs Fit. With `reuse_stats` the window is normalized in THAT space
  // (the refresh loop passes the live version's stats: streaming sessions
  // keep normalizing with the stats they were created under, so a candidate
  // must be trained — and shadow-scored — in the same space to be
  // comparable and promotable). Without it, fresh per-channel min-max
  // statistics are fitted on the window. Returns the statistics used, for
  // publishing alongside the model. Requires L >= the configured model
  // window.
  MinMaxStats FitRawWindow(const Tensor& raw,
                           const MinMaxStats* reuse_stats = nullptr);

  // Segment-aware variant: each entry is one CONTIGUOUS raw [L_i, K] series
  // (e.g. one tenant's recent samples). Training windows are cut within each
  // segment only — a window never spans the artificial discontinuity between
  // two tenants' series, which would otherwise dominate a refresh window
  // assembled from many short per-tenant runs and teach the candidate to
  // reproduce join garbage. Segments shorter than the model window are
  // skipped; at least one usable segment is required.
  MinMaxStats FitRawSegments(const std::vector<Tensor>& segments,
                             const MinMaxStats* reuse_stats = nullptr);

  // Step-by-step introspection of the ensemble inference, for the Fig. 8
  // style analysis. Entries are ordered along the reverse chain.
  struct StepTrace {
    std::vector<int> steps;                         // reverse-step index s=1..T
    std::vector<std::vector<float>> step_errors;    // per-step E_s, length L
    std::vector<std::vector<float>> step_imputed;   // imputed channel-0 series
    std::vector<std::vector<uint8_t>> step_labels;  // per-step Y_s (Eq. 12)
    std::vector<int> votes;                         // V_l per timestamp
  };
  DetectionResult RunWithTrace(const Tensor& test, StepTrace* trace);

  // ---- Seeded scoring (serving path, src/serve) ------------------------
  //
  // Run() consumes the detector's fit-time RNG stream, so its scores depend
  // on call order — fine for batch evaluation, unusable for a server where
  // many sessions share one fitted model. The seeded path below derives all
  // inference noise from caller-provided per-window seeds instead: results
  // are a pure function of (window content, seed, config), bitwise
  // independent of batch composition, chunking, call order, and thread
  // count. That is what lets the micro-batcher score windows from many
  // tenants in one batched reverse-diffusion pass — and cache repeated
  // windows — while staying bitwise identical to serial per-session replay.
  // All seeded-path methods are const and safe to call concurrently.

  // Per-window result of a seeded scoring pass: step_errors[s][l] is the
  // vote-step-s imputation error at window position l.
  struct WindowScore {
    std::vector<std::vector<float>> step_errors;
  };

  // Windowing plan for one series under this detector's inference stride.
  struct WindowPlan {
    Tensor windows;               // [N, K, W] feature-major
    std::vector<int64_t> starts;  // window start offsets in the series
    int64_t length = 0;           // series length
  };
  WindowPlan PlanWindows(const Tensor& series) const;

  // Scores N windows ([N, K, W]; possibly from different series/sessions) in
  // shared reverse-diffusion chunks of `infer_batch`. seeds[i] drives all
  // noise for window i. Requires a deterministic mask strategy (not kRandom).
  //
  // `degrade_level` > 0 trades accuracy for latency by truncating the reverse
  // chain (the serving layer's deadline-degradation knob, DESIGN.md §13): the
  // chain starts at ChainStartForDegradeLevel(degrade_level) instead of T-1,
  // treating the pure-noise start as an over-noised x_t. Every vote step is
  // always executed, so WindowScores from any level have identical shapes.
  //
  // `precision` runs every denoiser weight GEMM at a reduced precision
  // (DESIGN.md §17) — the other axis of the serving degradation ladder. The
  // request is filtered through ResolvePrecision(), so IMDIFF_PRECISION /
  // SetForcePrecision win over the argument. Scores remain a pure function
  // of (content, seed, degrade_level, precision).
  std::vector<WindowScore> ScoreWindowBatch(
      const Tensor& windows, const std::vector<uint64_t>& seeds,
      int degrade_level = 0, Precision precision = Precision::kF32) const;

  // First forward-index step t of the (possibly truncated) reverse chain for
  // a degradation level: level 0 = the full chain (T-1); level 1 = halfway
  // between the full chain and the vote span; level >= 2 = the vote span
  // only (the cheapest chain that still produces every ensemble vote).
  int ChainStartForDegradeLevel(int degrade_level) const;

  // Per-series tail of Run(): scatters window scores back onto the series
  // (overlap-averaged), applies the Eq. 12 rescaled thresholds and ensemble
  // voting. `scores` must be in PlanWindows order for `starts`.
  DetectionResult ReduceWindowScores(const std::vector<WindowScore>& scores,
                                     const std::vector<int64_t>& starts,
                                     int64_t length) const;

  // Full seeded pass over one series: PlanWindows + ScoreWindowBatch (window
  // i seeded with MixSeed(seed, i)) + ReduceWindowScores. A pure function of
  // (test, seed, degrade_level, precision, config); unlike Run() it does not
  // touch the fit-time RNG.
  DetectionResult RunSeeded(const Tensor& test, uint64_t seed,
                            int degrade_level = 0,
                            Precision precision = Precision::kF32) const;

  // Imputes the genuinely missing entries of one [K, W] window with the
  // seeded reverse chain: `observed_mask` ([K, W], 1 = observed, e.g. from
  // MaskFromObserved) plays the role the synthetic grating mask plays at
  // scoring time, so the observed region conditions the chain and the
  // missing region is denoised from pure noise. Returns a [K, W] tensor
  // equal to `window` at observed entries and to the chain's final denoised
  // estimate at missing ones. A pure function of (window, mask, seed,
  // config) — same bitwise-determinism contract as ScoreWindowBatch — and
  // safe to call concurrently. This is the entry point that lets streams
  // with real missing data (data/ugly_stream.h) exercise the paper's
  // imputation machinery directly instead of being zero- or stale-filled.
  Tensor ImputeWindow(const Tensor& window, const Tensor& observed_mask,
                      uint64_t seed) const;

  // ---- Checkpointing (model registry, src/serve) -----------------------

  // Writes the fitted denoiser weights (crash-safe, see nn/serialize).
  void SaveModel(const std::string& path) const;
  // Builds the denoiser for `num_features` channels from this detector's
  // config and warm-loads weights saved by SaveModel. Returns false (leaving
  // the detector unfitted) when the file is missing or mismatched.
  bool LoadModel(const std::string& path, int64_t num_features);
  bool fitted() const { return model_ != nullptr; }

  // Mean final-step imputed error over the last Run (Fig. 7 signal).
  double last_mean_error() const { return last_mean_error_; }
  const std::vector<float>& train_loss_history() const { return loss_history_; }
  const ImDiffusionConfig& config() const { return config_; }
  const ImTransformer* model() const { return model_.get(); }

 private:
  // Vote steps expressed as forward index t, descending (see Run).
  std::vector<int> VoteSteps() const;
  int64_t InferenceStride() const;
  // One (chunk, policy) reverse-diffusion chain: denoises from `chain_start`
  // (treated as x_{chain_begin}) down to t=0, accumulating the imputed-region
  // signed residual (and optionally the imputed values) into
  // step_diff/step_val at each vote step. `chain_begin` is T-1 for the full
  // chain or ChainStartForDegradeLevel(level) for a truncated one (it must be
  // >= the largest vote step so every vote executes). Sampling noise comes
  // from `chunk_rng` (Run path: one stream for the whole chunk) or
  // `per_window_rngs` (seeded path: one stream per window, so results do not
  // depend on which windows share a chunk); with neither, the posterior mean
  // is used.
  void RunChain(const Tensor& x0, const Tensor& mask, const Tensor& inv_mask,
                const Tensor& ref_noise, const Tensor& chain_start,
                const std::vector<int64_t>& policies,
                const std::vector<int>& vote_ts, int chain_begin,
                Rng* chunk_rng, std::vector<Rng>* per_window_rngs,
                std::vector<Tensor>* step_diff,
                std::vector<Tensor>* step_val) const;
  // Reduces a chunk's accumulated signed residuals to per-(window, position)
  // errors (squared moving-average bias + weighted raw term, feature
  // mean/max aggregation), writing rows[s][row_offset + b].
  void ErrorRowsFromDiff(
      const std::vector<Tensor>& step_diff, int64_t bsz, int64_t row_offset,
      std::vector<std::vector<std::vector<float>>>* rows) const;
  // Scatters per-window rows onto the series and zeroes the warm-up prefix.
  std::vector<float> SeriesFromWindows(
      const std::vector<std::vector<float>>& window_rows,
      const std::vector<int64_t>& starts, int64_t length) const;
  // Shared trainer: (re)initializes the model and runs the training loop
  // over a pre-cut [N, K, W] window batch (Fit cuts one series with
  // train_stride; FitRawSegments cuts each segment independently).
  void FitWindowBatch(const Tensor& windows, int64_t k);
  // Eq. 12 + ensemble voting over assembled per-step window errors.
  DetectionResult ReduceSeries(
      const std::vector<std::vector<std::vector<float>>>& step_window_errors,
      const std::vector<int64_t>& starts, int64_t length,
      double* mean_final_error,
      std::vector<std::vector<float>>* step_series_out,
      std::vector<std::vector<uint8_t>>* step_labels_out,
      std::vector<int>* votes_out) const;

  ImDiffusionConfig config_;
  std::unique_ptr<ImTransformer> model_;
  std::unique_ptr<GaussianDiffusion> diffusion_;
  std::unique_ptr<Rng> rng_;
  std::vector<float> loss_history_;
  double last_mean_error_ = 0.0;

  // Captured-graph pool for the seeded scoring path (src/graph). Created
  // lazily on the first graph-enabled ScoreWindowBatch and dropped wholesale
  // whenever model_ is replaced (Fit / LoadModel), so a stale capture — which
  // holds raw pointers into the old model's weights — can never execute.
  // shared_ptr because in-flight scoring calls must keep the cache they
  // acquired alive across a concurrent invalidation.
  mutable std::mutex graph_mu_;
  mutable std::shared_ptr<graph::GraphCache> graph_cache_;
};

}  // namespace imdiff

#endif  // IMDIFF_CORE_IMDIFFUSION_H_
