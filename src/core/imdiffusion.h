// The ImDiffusion anomaly detector (paper §4).
//
// Pipeline: grating (or random) masking creates complementary missing-value
// patterns; an unconditional imputed diffusion model (ImTransformer denoiser)
// is trained with the ε-prediction objective restricted to the masked region
// (Eq. 11); at inference the reverse chain imputes the masked values, the
// per-step imputed errors E_t form the ensemble signal (Algorithm 1), and the
// rescaled thresholds of Eq. 12 plus the vote count V_l yield the anomaly
// decision.

#ifndef IMDIFF_CORE_IMDIFFUSION_H_
#define IMDIFF_CORE_IMDIFFUSION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/im_transformer.h"
#include "core/masking.h"
#include "diffusion/ddpm.h"
#include "utils/rng.h"

namespace imdiff {

struct ImDiffusionConfig {
  // Model (K is filled in from the data at Fit time).
  ImTransformerConfig model;
  // Diffusion schedule; schedule.num_steps is the paper's T (Table 1: 50).
  ScheduleConfig schedule;
  // Masking (Table 1: 5 masked + 5 unmasked grating windows).
  MaskStrategy mask_strategy = MaskStrategy::kGrating;
  int num_masked_windows = 5;
  // Conditional ablation (§5.3.3): feed raw observed values instead of the
  // forward noise as the unmasked-region reference.
  bool conditional = false;
  // Ensemble voting (§4.5); false = final-step error only.
  bool ensemble = true;
  // Reverse-process sampling noise. true follows the paper's DDPM ancestral
  // sampler; false uses the posterior mean only (DDIM-style σ=0), which
  // stabilizes single-chain imputation — useful at CPU scale where averaging
  // many chains (as CSDI does) is unaffordable.
  bool stochastic_sampling = true;

  // Training.
  int epochs = 20;
  int batch_size = 8;
  float lr = 1e-3f;
  int64_t train_stride = 50;

  // Inference.
  int infer_batch = 16;
  // Vote over every `vote_stride`-th of the last `vote_last_steps` reverse
  // steps (paper: every 3rd of the last 30).
  int vote_last_steps = 30;
  int vote_stride = 3;
  // τ_T: upper percentile of final-step imputed errors (Eq. 12 baseline).
  double tau_quantile = 0.97;
  // Per-step error construction. The paper scores with the raw squared
  // imputation error; production series additionally carry zero-mean noise
  // bursts that spike the squared error without being anomalies. The bias
  // term — the squared moving average of the *signed* residual over
  // `bias_window` steps — cancels symmetric noise while preserving
  // systematic deviations (level shifts, drifts). The final per-step error
  // is  mean_k( bias² + raw_error_weight · d² ).
  int bias_window = 5;
  float raw_error_weight = 0.4f;
  // Additional moving average over the combined error series (1 = off).
  int error_smoothing = 1;
  // ξ: votes required to mark an anomaly.
  int vote_threshold = 5;
  // Per-step error target: true scores each vote step against the x̂0
  // projection implied by (x_t, ε̂) — the step's fully-denoised estimate,
  // matching the refined step-wise imputations of the paper's Fig. 8.
  // false scores against the raw intermediate chain state X_{t-1}.
  bool score_on_x0 = true;

  uint64_t seed = 1;
  bool verbose = false;
};

// Returns a config scaled for single-core CPU runs (smaller hidden dim,
// fewer blocks/steps/epochs). `paper` = Table 1 values.
ImDiffusionConfig PaperImDiffusionConfig();
ImDiffusionConfig FastImDiffusionConfig();

class ImDiffusionDetector : public AnomalyDetector {
 public:
  explicit ImDiffusionDetector(const ImDiffusionConfig& config);

  std::string name() const override;
  void Fit(const Tensor& train) override;
  DetectionResult Run(const Tensor& test) override;

  // Step-by-step introspection of the ensemble inference, for the Fig. 8
  // style analysis. Entries are ordered along the reverse chain.
  struct StepTrace {
    std::vector<int> steps;                         // reverse-step index s=1..T
    std::vector<std::vector<float>> step_errors;    // per-step E_s, length L
    std::vector<std::vector<float>> step_imputed;   // imputed channel-0 series
    std::vector<std::vector<uint8_t>> step_labels;  // per-step Y_s (Eq. 12)
    std::vector<int> votes;                         // V_l per timestamp
  };
  DetectionResult RunWithTrace(const Tensor& test, StepTrace* trace);

  // Mean final-step imputed error over the last Run (Fig. 7 signal).
  double last_mean_error() const { return last_mean_error_; }
  const std::vector<float>& train_loss_history() const { return loss_history_; }
  const ImDiffusionConfig& config() const { return config_; }
  const ImTransformer* model() const { return model_.get(); }

 private:
  ImDiffusionConfig config_;
  std::unique_ptr<ImTransformer> model_;
  std::unique_ptr<GaussianDiffusion> diffusion_;
  std::unique_ptr<Rng> rng_;
  std::vector<float> loss_history_;
  double last_mean_error_ = 0.0;
};

}  // namespace imdiff

#endif  // IMDIFF_CORE_IMDIFFUSION_H_
